#!/usr/bin/env bash
# Full check: the test suite under ASan+UBSan (plus sharded perf-label
# sweeps), the same suite under TSan with the host shard sweeps actually
# parallel (PERFCLOUD_SHARDS=4, both claim disciplines, wheel time core
# pinned), the zero-steady-state-allocation gate on the release build, and
# determinism gates diffing real bench output across shard counts,
# schedulers, emission modes, and time-queue backends (wheel vs heap).
# Usage: scripts/check.sh [extra ctest args...]
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== ASan + UBSan =="
cmake --preset asan
cmake --build --preset asan -j "$(nproc)"
UBSAN_OPTIONS=halt_on_error=1 ctest --preset asan -j "$(nproc)" "$@"
# The perf-label tests again, sharded, under both claim disciplines: the
# slot-store/arena hot path and the identifier's key-based pair state run
# their multi-host scenarios with ASan watching for stale-slot reads after
# VM eviction and host crashes.
UBSAN_OPTIONS=halt_on_error=1 PERFCLOUD_SHARDS=4 ctest --preset asan -L perf -j "$(nproc)"
UBSAN_OPTIONS=halt_on_error=1 PERFCLOUD_SHARDS=4 PERFCLOUD_SCHED=static \
  ctest --preset asan -L perf -j "$(nproc)"

echo "== TSan, sharded (PERFCLOUD_SHARDS=4) =="
# Every sharded periodic in every test runs its host-local tasks across 4
# threads, so the pool's handoffs and the thread-confinement of the
# hypervisor/monitor/node-manager pipelines are exercised under TSan. The
# fault tests (pc_faults_tests, label "faults") are part of the suite, so
# chaos runs — host crashes, blackouts, lossy cap channels — get the same
# sanitizer sweeps as everything else.
cmake --preset tsan
cmake --build --preset tsan -j "$(nproc)"
# Default schedule is work-stealing, so this sweep runs the cost-sorted
# CAS-claim path (growing chunks, EWMA rebalance) under TSan everywhere.
PERFCLOUD_SHARDS=4 ctest --preset tsan -j "$(nproc)" "$@"
# And the static claim discipline, via the scheduler/fast-path tests
# (label "perf") which also drive full multi-host scenarios.
PERFCLOUD_SHARDS=4 PERFCLOUD_SCHED=static ctest --preset tsan -L perf -j "$(nproc)"
# The policy tests once more under TSan with the static discipline: the
# policy's barrier hook folds every host's monitor/controller state on the
# engine thread right after the parallel half, which is exactly the
# boundary a racy shard handoff would corrupt.
PERFCLOUD_SHARDS=4 PERFCLOUD_SCHED=static ctest --preset tsan -L policy -j "$(nproc)"
# The perf-label tests with the timer-wheel time core pinned explicitly
# (it is the default, but the pin keeps this sweep meaningful if the
# default ever changes): the wheel feeds the sharded periodics that every
# thread handoff above hangs off, so TSan must see the wheel-driven
# schedule, not just the heap reference.
PERFCLOUD_SHARDS=4 PERFCLOUD_TIMEQ=wheel ctest --preset tsan -L perf -j "$(nproc)"

echo "== shard + scheduler determinism gate =="
# A multi-host figure bench must emit byte-identical stdout for any shard
# count AND either claim discipline; wall-clock time is the only thing the
# scheduler is allowed to change.
cmake --preset release
cmake --build --preset release -j "$(nproc)" --target ext_heterogeneous
tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT
PERFCLOUD_SHARDS=1 ./build-release/bench/ext_heterogeneous > "$tmpdir/shards1.txt" 2> /dev/null
for variant in "4 ws" "1 static" "4 static"; do
  read -r n sched <<< "$variant"
  PERFCLOUD_SHARDS=$n PERFCLOUD_SCHED=$sched \
    ./build-release/bench/ext_heterogeneous > "$tmpdir/shards$n-$sched.txt" 2> /dev/null
  diff "$tmpdir/shards1.txt" "$tmpdir/shards$n-$sched.txt"
done
# The heap time-queue backend against the wheel-driven baseline (the wheel
# is the default, so shards1.txt above already used it): swapping the time
# core may change wall-clock only, never an output byte.
PERFCLOUD_TIMEQ=heap ./build-release/bench/ext_heterogeneous \
  > "$tmpdir/shards1-heap.txt" 2> /dev/null
diff "$tmpdir/shards1.txt" "$tmpdir/shards1-heap.txt"
echo "ext_heterogeneous: byte-identical output across shard counts, schedulers, and time queues"

echo "== zero-steady-state-allocation gate =="
# The release build (no sanitizer allocator inflating counts) runs the
# AllocGate suite: a warmed control quantum — monitor, detect, identify,
# bookkeeping — must perform zero heap allocations, and the suite
# self-checks that the counting operator-new hook is linked and counting
# before trusting any zero.
cmake --build --preset release -j "$(nproc)" --target pc_perf_tests
./build-release/tests/pc_perf_tests --gtest_filter='AllocGate.*'

echo "== sync-vs-async emission gate =="
# micro_emit runs one PerfCloud scenario three times (no sink, sync sink,
# async writer thread) plus a heavy synthetic stream, and hard-fails inside
# the binary unless the simulation fingerprint is unchanged by observation.
# The diff below re-checks the emitted files byte for byte from the outside.
cmake --build --preset release -j "$(nproc)" --target micro_emit
( cd "$tmpdir" && "$OLDPWD/build-release/bench/micro_emit" > micro_emit.log )
diff "$tmpdir/emit_sync.csv" "$tmpdir/emit_async.csv"
diff "$tmpdir/emit_sync.jsonl" "$tmpdir/emit_async.jsonl"
diff "$tmpdir/emit_synth_sync.csv" "$tmpdir/emit_synth_async.csv"
diff "$tmpdir/emit_synth_sync.jsonl" "$tmpdir/emit_synth_async.jsonl"
echo "micro_emit: sync and async emission byte-identical (cluster + synthetic)"

echo "== packed-placement migration determinism gate =="
# micro_migrate drives the §IV-D escalation path with live migrations in
# flight (packed placement manufactures the collision) and prints only
# simulation results to stdout; it also hard-fails internally if its packed
# live-migration run differs between explicit shards 1 and 4. The diff
# re-checks the env-driven path from the outside: migrations, escalations,
# pre-copy inflows, pauses, and node-manager state handoffs may not change a
# single output bit with the host sweeps actually parallel. (The new
# migration/fault tests themselves run under TSan above via the full suite.)
cmake --build --preset release -j "$(nproc)" --target micro_migrate
( cd "$tmpdir" && PERFCLOUD_SHARDS=1 "$OLDPWD/build-release/bench/micro_migrate" \
    > migrate_shards1.txt )
( cd "$tmpdir" && PERFCLOUD_SHARDS=4 "$OLDPWD/build-release/bench/micro_migrate" \
    > migrate_shards4.txt )
( cd "$tmpdir" && PERFCLOUD_SHARDS=4 PERFCLOUD_SCHED=static \
    "$OLDPWD/build-release/bench/micro_migrate" > migrate_shards4_static.txt )
diff "$tmpdir/migrate_shards1.txt" "$tmpdir/migrate_shards4.txt"
diff "$tmpdir/migrate_shards1.txt" "$tmpdir/migrate_shards4_static.txt"
echo "micro_migrate: byte-identical output across shard counts and schedulers"

echo "== migration-policy determinism gate =="
# micro_policy folds cluster-wide state (every host's monitors, controllers,
# deviation signals) each policy interval and issues live migrations from
# the barrier phase; its stdout is pure simulation output, so the decision
# layer may not change a single bit with the host sweeps actually parallel.
# The binary also hard-fails internally if the scored run differs between
# explicit shards 1 and 4.
cmake --build --preset release -j "$(nproc)" --target micro_policy
( cd "$tmpdir" && PERFCLOUD_SHARDS=1 "$OLDPWD/build-release/bench/micro_policy" \
    > policy_shards1.txt )
( cd "$tmpdir" && PERFCLOUD_SHARDS=4 "$OLDPWD/build-release/bench/micro_policy" \
    > policy_shards4.txt )
( cd "$tmpdir" && PERFCLOUD_SHARDS=4 PERFCLOUD_SCHED=static \
    "$OLDPWD/build-release/bench/micro_policy" > policy_shards4_static.txt )
diff "$tmpdir/policy_shards1.txt" "$tmpdir/policy_shards4.txt"
diff "$tmpdir/policy_shards1.txt" "$tmpdir/policy_shards4_static.txt"
echo "micro_policy: byte-identical output across shard counts and schedulers"

echo "== fault-plan determinism gate =="
# A chaos run (host crash + blackout + disk degrade + cap-command loss +
# VM stall + task failures) must be byte-identical — stdout AND the emitted
# trace/event files — for any shard count and for sync vs async emission.
# Faults may only change what the simulation does, never whether it is
# deterministic.
cmake --build --preset release -j "$(nproc)" --target chaos_resilience
for mode in s1-async s4-async s1-sync s4-static-async s1-heap-async; do
  mkdir -p "$tmpdir/chaos-$mode"
done
PERFCLOUD_SHARDS=1 ./build-release/examples/chaos_resilience \
  "$tmpdir/chaos-s1-async" async > "$tmpdir/chaos-s1-async/stdout.txt"
PERFCLOUD_SHARDS=4 ./build-release/examples/chaos_resilience \
  "$tmpdir/chaos-s4-async" async > "$tmpdir/chaos-s4-async/stdout.txt"
PERFCLOUD_SHARDS=1 ./build-release/examples/chaos_resilience \
  "$tmpdir/chaos-s1-sync" sync > "$tmpdir/chaos-s1-sync/stdout.txt"
# The static claim discipline under a full chaos plan: scheduler choice
# must be invisible even when hosts crash mid-run.
PERFCLOUD_SHARDS=4 PERFCLOUD_SCHED=static ./build-release/examples/chaos_resilience \
  "$tmpdir/chaos-s4-static-async" async > "$tmpdir/chaos-s4-static-async/stdout.txt"
# The heap time-queue backend under the full chaos plan: fault timers,
# crash cleanups, and blackout windows are all scheduled through the time
# core, so this is the harshest place for the wheel (the default above)
# and the heap to disagree by even one bit.
PERFCLOUD_SHARDS=1 PERFCLOUD_TIMEQ=heap ./build-release/examples/chaos_resilience \
  "$tmpdir/chaos-s1-heap-async" async > "$tmpdir/chaos-s1-heap-async/stdout.txt"
for f in stdout.txt chaos_trace.csv chaos_events.jsonl; do
  diff "$tmpdir/chaos-s1-async/$f" "$tmpdir/chaos-s4-async/$f"
  diff "$tmpdir/chaos-s1-async/$f" "$tmpdir/chaos-s1-sync/$f"
  diff "$tmpdir/chaos-s1-async/$f" "$tmpdir/chaos-s4-static-async/$f"
  diff "$tmpdir/chaos-s1-async/$f" "$tmpdir/chaos-s1-heap-async/$f"
done
echo "chaos_resilience: byte-identical across shard counts, schedulers, emission modes, and time queues"
