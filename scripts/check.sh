#!/usr/bin/env bash
# Build and run the full test suite under AddressSanitizer + UBSan.
# Usage: scripts/check.sh [extra ctest args...]
set -euo pipefail

cd "$(dirname "$0")/.."

cmake --preset asan
cmake --build --preset asan -j "$(nproc)"
UBSAN_OPTIONS=halt_on_error=1 ctest --preset asan -j "$(nproc)" "$@"
