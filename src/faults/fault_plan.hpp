// Declarative, seeded fault schedule (the chaos layer's input).
//
// A FaultPlan is an ordered list of FaultSpecs: what breaks, where, when,
// for how long, and how hard. Plans are pure data — nothing happens until a
// FaultInjector arms one against a running engine — so the same plan can be
// replayed against any shard count or emission mode and must produce
// byte-identical simulations (the chaos analogue of the golden-trace gates).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace perfcloud::faults {

/// Everything the chaos layer knows how to break.
enum class FaultKind {
  /// The hypervisor dies and takes every resident VM with it. The cloud
  /// manager re-places the victims on surviving hosts (spread or packed),
  /// the framework kills the lost attempts and re-runs those tasks.
  /// Recovery brings the host back empty; it only rejoins placement.
  kHostCrash,
  /// The guest is paused (no demand, no grants) and resumes on recovery —
  /// the VM-level freeze that turns a worker into a straggler.
  kVmStall,
  /// The host's block device serves at `magnitude` times its healthy
  /// throughput (IOPS and bandwidth ceilings both scale).
  kDiskDegrade,
  /// The host's performance monitor goes dark: no samples are recorded for
  /// the targeted VM (or the whole host) until recovery. Exercises the
  /// paper's missing-as-zero correlation rule end to end.
  kMonitorBlackout,
  /// Each node-manager actuation (set/clear CPU quota or blkio throttle) is
  /// silently dropped with probability `magnitude`, forcing the CUBIC
  /// controllers to re-converge through a lossy control channel.
  kCapCommandLoss,
  /// Every running task attempt fails independently at `magnitude` per
  /// attempt-second (the framework's retry loop re-runs them). The
  /// Framework::set_task_failure_rate knob is the degenerate form of this
  /// fault: a kTaskFailure injected at t=0 that never recovers.
  kTaskFailure,
};

[[nodiscard]] std::string_view to_string(FaultKind kind);

/// One scheduled fault. `magnitude` is kind-specific (see FaultKind).
struct FaultSpec {
  FaultKind kind = FaultKind::kHostCrash;
  /// Target host (every kind except kVmStall and kTaskFailure).
  std::string host;
  /// Target VM (kVmStall; optional for kMonitorBlackout: -1 darkens the
  /// whole host's monitor, >= 0 only that VM's samples).
  int vm_id = -1;
  double inject_at_s = 0.0;
  /// Seconds until recovery; < 0 means the fault never recovers.
  double duration_s = -1.0;
  double magnitude = 1.0;
  /// kHostCrash only: re-place victims packed onto the least-index surviving
  /// host instead of spread over the least-populated ones.
  bool packed_replacement = false;

  [[nodiscard]] bool recovers() const { return duration_s >= 0.0; }
  [[nodiscard]] double recover_at_s() const { return inject_at_s + duration_s; }
  /// "host_crash host=host-0" / "vm_stall vm=7" — the label used in emitted
  /// events and error messages.
  [[nodiscard]] std::string label() const;
};

/// Ordered, validated collection of FaultSpecs plus the seed the injector
/// derives per-host randomness (cap-loss drop decisions) from. The seed is
/// independent of the engine's RNG so that attaching a plan — even a
/// non-empty one — never perturbs the simulation's existing random streams.
class FaultPlan {
 public:
  FaultPlan() = default;
  explicit FaultPlan(std::uint64_t seed) : seed_(seed) {}

  // --- Builder helpers (validated; all throw std::invalid_argument) ---
  FaultPlan& host_crash(std::string host, double at_s, double duration_s = -1.0,
                        bool packed_replacement = false);
  FaultPlan& vm_stall(int vm_id, double at_s, double duration_s);
  FaultPlan& disk_degrade(std::string host, double at_s, double duration_s, double factor);
  FaultPlan& monitor_blackout(std::string host, double at_s, double duration_s, int vm_id = -1);
  FaultPlan& cap_command_loss(std::string host, double at_s, double duration_s,
                              double drop_probability);
  FaultPlan& task_failure(double rate_per_s, double at_s, double duration_s = -1.0);

  /// Validate and append a spec. Rejects malformed specs (negative times,
  /// out-of-range magnitudes, missing targets) and specs whose active
  /// interval overlaps an earlier spec of the same kind on the same target —
  /// overlap would make apply/revert order-dependent.
  FaultPlan& add(FaultSpec spec);

  [[nodiscard]] const std::vector<FaultSpec>& specs() const { return specs_; }
  [[nodiscard]] std::size_t size() const { return specs_.size(); }
  [[nodiscard]] bool empty() const { return specs_.empty(); }
  [[nodiscard]] std::uint64_t seed() const { return seed_; }
  void set_seed(std::uint64_t seed) { seed_ = seed; }

 private:
  std::vector<FaultSpec> specs_;
  std::uint64_t seed_ = 0xfa17;
};

}  // namespace perfcloud::faults
