// FaultInjector: executes a FaultPlan against a running simulation.
//
// The injector registers one-shot engine events for every spec's inject and
// recover times. Engine events run on the engine thread between quanta —
// after the periodics due at that timestamp, before the next quantum — so
// every fault lands at a deterministic point in the schedule regardless of
// shard count, mirroring how escalation/migration are fenced behind the
// shard barrier. Nothing here ever runs inside a shard task, and nothing
// here ever touches the engine's RNG: cap-loss randomness derives from the
// plan's own seed, so arming a plan (even a non-empty one) leaves every
// pre-existing random stream byte-identical.
//
// A fault whose target cannot be resolved when it fires (unknown host, VM
// already gone, no node manager registered for the host) is marked failed
// and counted — the run continues; chaos schedules routinely outlive their
// targets.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "cloud/cloud_manager.hpp"
#include "core/node_manager.hpp"
#include "faults/fault_plan.hpp"
#include "sim/emit.hpp"
#include "workloads/framework.hpp"

namespace perfcloud::faults {

class FaultInjector {
 public:
  /// The plan is copied; the injector owns its execution state.
  FaultInjector(cloud::CloudManager& cloud, FaultPlan plan);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Framework whose workers HostCrash kills/rebinds and whose task-failure
  /// rate the TaskFailure kind drives. Optional — without it those two kinds
  /// fail when they fire. Call before arm().
  void set_framework(wl::ScaleOutFramework* framework) { framework_ = framework; }

  /// Register a host's node manager (MonitorBlackout and CapCommandLoss act
  /// through it; HostCrash drops its dead-VM controller state). Keyed by
  /// NodeManager::host_name(). Call before arm().
  void register_node_manager(core::NodeManager& nm);

  /// Route fault/recovery records through `sink` as first-class events under
  /// one "faults" source: "inject <label>" / "recover <label>" rows (value =
  /// magnitude) plus faults_injected / faults_recovered / faults_failed
  /// counters. Call during setup; nullptr detaches.
  void set_emit_sink(sim::EmitSink* sink);

  /// Schedule every spec's inject/recover against the cloud's engine. Call
  /// exactly once, during setup (all inject times must still be in the
  /// future). An empty plan arms to nothing — a pure no-op.
  void arm();

  // --- Counters (also mirrored into the sink) ---
  [[nodiscard]] int injected() const { return injected_; }
  [[nodiscard]] int recovered() const { return recovered_; }
  [[nodiscard]] int failed() const { return failed_; }
  /// Specs not yet fired (scheduled but still in the future).
  [[nodiscard]] int pending() const;
  /// Specs injected and not yet recovered (including never-recovering ones).
  [[nodiscard]] int active() const;

  [[nodiscard]] const FaultPlan& plan() const { return plan_; }

 private:
  enum class Phase { kPending, kActive, kDone, kFailed };

  void apply(std::size_t index);
  void revert(std::size_t index);

  void apply_host_crash(const FaultSpec& spec);
  void apply_vm_stall(const FaultSpec& spec, bool paused);
  void apply_disk_degrade(const FaultSpec& spec, double factor);
  void apply_monitor_blackout(const FaultSpec& spec, bool dark);
  void apply_cap_command_loss(const FaultSpec& spec, std::size_t index, bool active);
  void apply_task_failure(const FaultSpec& spec, double rate);

  [[nodiscard]] core::NodeManager& node_manager(const std::string& host);
  /// Per-spec seed for kinds that need randomness, derived from the plan
  /// seed and the spec index only — never from the engine.
  [[nodiscard]] std::uint64_t spec_seed(std::size_t index) const;
  void emit(const std::string& kind, const FaultSpec& spec, double value);

  cloud::CloudManager& cloud_;
  FaultPlan plan_;
  wl::ScaleOutFramework* framework_ = nullptr;
  std::map<std::string, core::NodeManager*> node_managers_;
  sim::EmitSink* sink_ = nullptr;
  sim::EmitSink::SourceId sink_source_ = 0;
  std::vector<Phase> phases_;
  bool armed_ = false;
  int injected_ = 0;
  int recovered_ = 0;
  int failed_ = 0;
};

}  // namespace perfcloud::faults
