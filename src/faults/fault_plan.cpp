#include "faults/fault_plan.hpp"

#include <limits>
#include <stdexcept>
#include <utility>

namespace perfcloud::faults {

std::string_view to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kHostCrash: return "host_crash";
    case FaultKind::kVmStall: return "vm_stall";
    case FaultKind::kDiskDegrade: return "disk_degrade";
    case FaultKind::kMonitorBlackout: return "monitor_blackout";
    case FaultKind::kCapCommandLoss: return "cap_command_loss";
    case FaultKind::kTaskFailure: return "task_failure";
  }
  return "unknown";
}

std::string FaultSpec::label() const {
  std::string out{to_string(kind)};
  if (!host.empty()) out += " host=" + host;
  if (vm_id >= 0) out += " vm=" + std::to_string(vm_id);
  return out;
}

namespace {

[[noreturn]] void reject(const FaultSpec& spec, const std::string& why) {
  throw std::invalid_argument("FaultPlan: " + spec.label() + ": " + why);
}

bool needs_host(FaultKind kind) {
  return kind != FaultKind::kVmStall && kind != FaultKind::kTaskFailure;
}

/// Two specs target the same thing when kind, host, and VM all match.
bool same_target(const FaultSpec& a, const FaultSpec& b) {
  return a.kind == b.kind && a.host == b.host && a.vm_id == b.vm_id;
}

bool intervals_overlap(const FaultSpec& a, const FaultSpec& b) {
  const double a_end = a.recovers() ? a.recover_at_s() : std::numeric_limits<double>::infinity();
  const double b_end = b.recovers() ? b.recover_at_s() : std::numeric_limits<double>::infinity();
  return a.inject_at_s < b_end && b.inject_at_s < a_end;
}

}  // namespace

FaultPlan& FaultPlan::add(FaultSpec spec) {
  if (spec.inject_at_s < 0.0) reject(spec, "inject time must be >= 0");
  if (needs_host(spec.kind) && spec.host.empty()) reject(spec, "target host required");
  if (spec.kind == FaultKind::kVmStall && spec.vm_id < 0) reject(spec, "target VM required");
  switch (spec.kind) {
    case FaultKind::kVmStall:
      if (!spec.recovers()) reject(spec, "a stall must have a finite duration");
      break;
    case FaultKind::kDiskDegrade:
      if (!(spec.magnitude > 0.0 && spec.magnitude <= 1.0)) {
        reject(spec, "degradation factor must be in (0, 1]");
      }
      break;
    case FaultKind::kCapCommandLoss:
      if (!(spec.magnitude >= 0.0 && spec.magnitude <= 1.0)) {
        reject(spec, "drop probability must be in [0, 1]");
      }
      break;
    case FaultKind::kTaskFailure:
      if (spec.magnitude < 0.0) reject(spec, "failure rate must be >= 0");
      break;
    case FaultKind::kHostCrash:
    case FaultKind::kMonitorBlackout:
      break;
  }
  for (const FaultSpec& prior : specs_) {
    if (same_target(prior, spec) && intervals_overlap(prior, spec)) {
      reject(spec, "overlaps an earlier " + std::string(to_string(prior.kind)) +
                       " on the same target (apply/revert would be order-dependent)");
    }
  }
  specs_.push_back(std::move(spec));
  return *this;
}

FaultPlan& FaultPlan::host_crash(std::string host, double at_s, double duration_s,
                                 bool packed_replacement) {
  return add(FaultSpec{.kind = FaultKind::kHostCrash,
                       .host = std::move(host),
                       .inject_at_s = at_s,
                       .duration_s = duration_s,
                       .packed_replacement = packed_replacement});
}

FaultPlan& FaultPlan::vm_stall(int vm_id, double at_s, double duration_s) {
  return add(FaultSpec{.kind = FaultKind::kVmStall,
                       .vm_id = vm_id,
                       .inject_at_s = at_s,
                       .duration_s = duration_s});
}

FaultPlan& FaultPlan::disk_degrade(std::string host, double at_s, double duration_s,
                                   double factor) {
  return add(FaultSpec{.kind = FaultKind::kDiskDegrade,
                       .host = std::move(host),
                       .inject_at_s = at_s,
                       .duration_s = duration_s,
                       .magnitude = factor});
}

FaultPlan& FaultPlan::monitor_blackout(std::string host, double at_s, double duration_s,
                                       int vm_id) {
  return add(FaultSpec{.kind = FaultKind::kMonitorBlackout,
                       .host = std::move(host),
                       .vm_id = vm_id,
                       .inject_at_s = at_s,
                       .duration_s = duration_s});
}

FaultPlan& FaultPlan::cap_command_loss(std::string host, double at_s, double duration_s,
                                       double drop_probability) {
  return add(FaultSpec{.kind = FaultKind::kCapCommandLoss,
                       .host = std::move(host),
                       .inject_at_s = at_s,
                       .duration_s = duration_s,
                       .magnitude = drop_probability});
}

FaultPlan& FaultPlan::task_failure(double rate_per_s, double at_s, double duration_s) {
  return add(FaultSpec{.kind = FaultKind::kTaskFailure,
                       .inject_at_s = at_s,
                       .duration_s = duration_s,
                       .magnitude = rate_per_s});
}

}  // namespace perfcloud::faults
