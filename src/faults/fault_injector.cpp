#include "faults/fault_injector.hpp"

#include <stdexcept>
#include <utility>

#include "cloud/placement.hpp"
#include "sim/rng.hpp"

namespace perfcloud::faults {

FaultInjector::FaultInjector(cloud::CloudManager& cloud, FaultPlan plan)
    : cloud_(cloud), plan_(std::move(plan)), phases_(plan_.size(), Phase::kPending) {}

void FaultInjector::register_node_manager(core::NodeManager& nm) {
  node_managers_[nm.host_name()] = &nm;
}

void FaultInjector::set_emit_sink(sim::EmitSink* sink) {
  sink_ = sink;
  if (sink_ != nullptr) sink_source_ = sink_->add_event_source("faults");
}

void FaultInjector::arm() {
  if (armed_) throw std::logic_error("FaultInjector::arm called twice");
  armed_ = true;
  sim::Engine& engine = cloud_.engine();
  for (std::size_t i = 0; i < plan_.size(); ++i) {
    const FaultSpec& spec = plan_.specs()[i];
    engine.at(sim::SimTime(spec.inject_at_s), [this, i](sim::SimTime) { apply(i); });
    if (spec.recovers()) {
      engine.at(sim::SimTime(spec.recover_at_s()), [this, i](sim::SimTime) { revert(i); });
    }
  }
}

int FaultInjector::pending() const {
  int n = 0;
  for (const Phase p : phases_) n += p == Phase::kPending ? 1 : 0;
  return n;
}

int FaultInjector::active() const {
  int n = 0;
  for (const Phase p : phases_) n += p == Phase::kActive ? 1 : 0;
  return n;
}

core::NodeManager& FaultInjector::node_manager(const std::string& host) {
  const auto it = node_managers_.find(host);
  if (it == node_managers_.end()) {
    throw std::invalid_argument("no node manager registered for host " + host);
  }
  return *it->second;
}

std::uint64_t FaultInjector::spec_seed(std::size_t index) const {
  std::uint64_t state = plan_.seed() + 0x9e3779b97f4a7c15ULL * (index + 1);
  return sim::splitmix64(state);
}

void FaultInjector::emit(const std::string& kind, const FaultSpec& spec, double value) {
  if (sink_ == nullptr) return;
  sink_->emit_event(sink_source_, cloud_.engine().now(), kind + " " + spec.label(), value);
}

void FaultInjector::apply(std::size_t index) {
  const FaultSpec& spec = plan_.specs()[index];
  try {
    switch (spec.kind) {
      case FaultKind::kHostCrash: apply_host_crash(spec); break;
      case FaultKind::kVmStall: apply_vm_stall(spec, true); break;
      case FaultKind::kDiskDegrade: apply_disk_degrade(spec, spec.magnitude); break;
      case FaultKind::kMonitorBlackout: apply_monitor_blackout(spec, true); break;
      case FaultKind::kCapCommandLoss: apply_cap_command_loss(spec, index, true); break;
      case FaultKind::kTaskFailure: apply_task_failure(spec, spec.magnitude); break;
    }
  } catch (const std::exception&) {
    phases_[index] = Phase::kFailed;
    ++failed_;
    emit("inject_failed", spec, spec.magnitude);
    if (sink_ != nullptr) sink_->bump_counter(sink_source_, "faults_failed");
    return;
  }
  phases_[index] = Phase::kActive;
  ++injected_;
  emit("inject", spec, spec.magnitude);
  if (sink_ != nullptr) sink_->bump_counter(sink_source_, "faults_injected");
}

void FaultInjector::revert(std::size_t index) {
  if (phases_[index] != Phase::kActive) return;  // inject failed or never ran
  const FaultSpec& spec = plan_.specs()[index];
  try {
    switch (spec.kind) {
      case FaultKind::kHostCrash: cloud_.restore_host(spec.host); break;
      case FaultKind::kVmStall: apply_vm_stall(spec, false); break;
      case FaultKind::kDiskDegrade: apply_disk_degrade(spec, 1.0); break;
      case FaultKind::kMonitorBlackout: apply_monitor_blackout(spec, false); break;
      case FaultKind::kCapCommandLoss: apply_cap_command_loss(spec, index, false); break;
      case FaultKind::kTaskFailure: apply_task_failure(spec, 0.0); break;
    }
  } catch (const std::exception&) {
    phases_[index] = Phase::kFailed;
    ++failed_;
    emit("recover_failed", spec, spec.magnitude);
    if (sink_ != nullptr) sink_->bump_counter(sink_source_, "faults_failed");
    return;
  }
  phases_[index] = Phase::kDone;
  ++recovered_;
  emit("recover", spec, spec.magnitude);
  if (sink_ != nullptr) sink_->bump_counter(sink_source_, "faults_recovered");
}

void FaultInjector::apply_host_crash(const FaultSpec& spec) {
  const sim::SimTime now = cloud_.engine().now();
  // 1. Kill the attempts running on doomed worker VMs while they still
  //    exist (removal touches the live worker objects).
  const std::vector<cloud::VmRecord> victims = cloud_.vms_on_host(spec.host);
  if (framework_ != nullptr) {
    std::vector<int> victim_ids;
    victim_ids.reserve(victims.size());
    for (const cloud::VmRecord& r : victims) victim_ids.push_back(r.id);
    framework_->on_worker_vms_lost(victim_ids, now);
  }
  // 2. The dying host's node manager must forget its per-VM control state:
  //    actuating a cap on a destroyed VM id would throw.
  const auto nm = node_managers_.find(spec.host);
  if (nm != node_managers_.end()) {
    for (const cloud::VmRecord& r : victims) nm->second->forget_vm(r.id);
  }
  // 3. Kill the host; re-place the victims on the survivors with fresh ids.
  //    Replacements come back guest-less (the guest died with the host);
  //    worker replacements get a new ScaleOutWorker, bystanders stay empty.
  const std::vector<virt::VmConfig> lost = cloud_.crash_host(spec.host);
  const std::vector<cloud::Replacement> placed =
      cloud::place_replacements(cloud_, lost, spec.packed_replacement);
  if (framework_ != nullptr) {
    for (const cloud::Replacement& r : placed) {
      if (!framework_->has_worker_vm(r.old_id)) continue;
      virt::Vm* vm = cloud_.host(r.host).find(r.new_id);
      framework_->rebind_worker(r.old_id, *vm, r.host);
    }
  }
}

void FaultInjector::apply_vm_stall(const FaultSpec& spec, bool paused) {
  // Resolve the VM through the registry each time: it may have migrated (or
  // died in a crash) between inject and recover.
  for (const cloud::VmRecord& r : cloud_.all_vms()) {
    if (r.id != spec.vm_id) continue;
    cloud_.host(r.host).find(r.id)->set_paused(paused);
    return;
  }
  throw std::invalid_argument("VM " + std::to_string(spec.vm_id) + " not found");
}

void FaultInjector::apply_disk_degrade(const FaultSpec& spec, double factor) {
  // Through the hypervisor, not the raw server: a degraded disk must end
  // the host's quiescence so the idle fast path cannot mask the fault.
  cloud_.host(spec.host).set_disk_degradation(factor);
}

void FaultInjector::apply_monitor_blackout(const FaultSpec& spec, bool dark) {
  core::PerformanceMonitor& monitor = node_manager(spec.host).monitor();
  if (spec.vm_id >= 0) {
    monitor.set_blackout(spec.vm_id, dark);
  } else {
    monitor.set_blackout_all(dark);
  }
}

void FaultInjector::apply_cap_command_loss(const FaultSpec& spec, std::size_t index,
                                           bool active) {
  core::NodeManager& nm = node_manager(spec.host);
  if (active) {
    nm.set_cap_command_loss(spec.magnitude, spec_seed(index));
  } else {
    nm.clear_cap_command_loss();
  }
}

void FaultInjector::apply_task_failure(const FaultSpec& spec, double rate) {
  (void)spec;
  if (framework_ == nullptr) {
    throw std::logic_error("TaskFailure fault needs a framework (set_framework)");
  }
  framework_->set_task_failure_rate(rate);
}

}  // namespace perfcloud::faults
