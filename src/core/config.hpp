// PerfCloud configuration: the paper's parameter set (§III-C, §III-D).
#pragma once

#include <cstddef>

namespace perfcloud::core {

struct PerfCloudConfig {
  // --- Sampling (§III-D.1) ---
  double sample_interval_s = 5.0;  ///< Monitor + control period.
  double ewma_alpha = 0.5;         ///< Smoothing of 5 s samples.

  // --- Detection thresholds (§III-A, §III-C) ---
  /// H for the std-dev of blkio.io_wait_time / blkio.io_serviced (ms/op)
  /// across a high-priority application's VMs on one host.
  double io_deviation_threshold = 10.0;
  /// H for the std-dev of CPI across the application's VMs.
  double cpi_deviation_threshold = 1.0;
  /// Ignore a VM's iowait-ratio sample when it served fewer ops than this
  /// during the interval: a VM doing only daemon-heartbeat I/O carries no
  /// evidence about contention, and its ratio would be pure noise.
  double min_ops_per_interval = 20.0;

  // --- Antagonist identification (§III-B) ---
  double correlation_threshold = 0.8;
  /// Use |r| >= threshold instead of r >= threshold. The paper states the
  /// positive form, but a saturated fairly-shared device produces *inverse*
  /// co-movement (the antagonist's grant shrinks exactly when the victims'
  /// waits — and the deviation signal — grow), and that strong linear
  /// dependence is equally incriminating. Innocent bystanders sit near 0
  /// either way.
  bool use_absolute_correlation = true;
  /// Minimum victim-signal samples before correlating (Fig 5c: three
  /// intervals suffice).
  std::size_t min_correlation_samples = 3;
  /// Correlate over at most this many recent samples (older behaviour of a
  /// suspect should not dilute a fresh interference episode).
  std::size_t correlation_window = 12;
  /// Correlation alone cannot separate a *cause* from a fellow victim: a
  /// bystander with a real working set sees its own miss rate rise when an
  /// aggressor thrashes the LLC, co-moving with the victim signal. The
  /// paper's §III-B hint — "VMs showing high LLC miss rates are more likely
  /// to put pressure" — becomes a magnitude gate: a suspect qualifies only
  /// if its mean usage over the window is at least this fraction of the
  /// heaviest suspect's.
  double min_usage_fraction = 0.25;
  /// Bound each suspect-side monitor series (I/O throughput, LLC miss rate)
  /// to this many most-recent samples; 0 = unbounded. Identification looks
  /// at most `correlation_window` samples back, so any bound >= that window
  /// yields identical decisions while monitor memory stops growing over long
  /// runs. Default 0 because the small-scale figure benches plot entire
  /// suspect histories; the large-scale benches bound it.
  std::size_t monitor_series_capacity = 0;
  /// A suspect whose correlation crossed the threshold within this many
  /// seconds is still considered identified when contention is detected:
  /// the clearest correlation evidence appears at the antagonist's arrival,
  /// which may precede the deviation signal crossing its threshold by an
  /// interval or two.
  double identification_memory_s = 600.0;

  // --- Escalation (§IV-D) ---
  /// When more than one high-priority application shares this host, notify
  /// the cloud manager to separate them by VM migration ("complementary
  /// solutions such as VM migration", §IV-D). Off by default: it changes
  /// placement, which experiments usually want under their own control.
  bool escalate_app_collisions = false;

  // --- CUBIC control (Eq. 1, §III-C) ---
  double beta = 0.8;    ///< Multiplicative decrease: C <- (1 - beta) C.
  double gamma = 0.005; ///< Cubic growth scale (caps normalized to [0, ~]).
  /// Never throttle below this fraction of the antagonist's baseline usage
  /// (a VM must keep making some progress).
  double min_cap_fraction = 0.05;
  /// Once the cubic recovery grows the cap past this multiple of the
  /// baseline, the throttle is removed entirely and the controller retires.
  /// Kept well above 1: while probing, the cap exceeds the antagonist's
  /// usage and is non-binding anyway, but the controller must stay attached
  /// so a renewed deviation spike re-throttles immediately (the paper's
  /// Fig 10 shows exactly such a re-throttle event) — identification by
  /// correlation cannot always be repeated once throttling has flattened
  /// the antagonist's usage signal.
  double cap_lift_fraction = 3.0;
};

}  // namespace perfcloud::core
