// Interference detector: turns per-VM samples into the paper's two
// deviation signals and threshold decisions (§III-A).
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "core/config.hpp"
#include "core/monitor.hpp"

namespace perfcloud::core {

/// One application group's deviation signals at one sample time.
struct DetectionResult {
  double io_deviation = 0.0;   ///< Std-dev of blkio iowait ratio (ms/op).
  double cpi_deviation = 0.0;  ///< Std-dev of CPI.
  bool io_contended = false;   ///< io_deviation > H_io.
  bool cpu_contended = false;  ///< cpi_deviation > H_cpi.
  std::size_t io_samples = 0;  ///< VMs that contributed an iowait sample.
  std::size_t cpi_samples = 0;
};

class InterferenceDetector {
 public:
  explicit InterferenceDetector(PerfCloudConfig cfg) : cfg_(cfg) {}

  /// Evaluate the deviation signals over the given application VMs' latest
  /// samples. VMs with missing metrics (idle during the interval) do not
  /// contribute: an idle VM carries no evidence about contention.
  [[nodiscard]] DetectionResult evaluate(std::span<const VmSample* const> app_vms) const;

 private:
  PerfCloudConfig cfg_;
  /// Per-call scratch, capacity retained across quanta so a steady-state
  /// evaluation allocates nothing. Each node manager owns its detector and
  /// calls it from its own shard task only, so mutable scratch is safe.
  mutable std::vector<double> ratios_;
  mutable std::vector<double> cpis_;
};

}  // namespace perfcloud::core
