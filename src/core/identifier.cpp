#include "core/identifier.hpp"

#include <algorithm>
#include <cmath>

#include "sim/correlation.hpp"

namespace perfcloud::core {

namespace {

/// Shared threshold logic: a suspect is an antagonist when its correlation
/// evidence crosses the threshold AND it is heavy enough relative to the
/// heaviest suspect (the §III-B magnitude gate). When every suspect's
/// windowed usage is zero the gate fails for all of them: `usage >= f * 0`
/// would otherwise hold trivially, flagging idle suspects whose correlation
/// is a numerical artifact — an idle VM puts pressure on nothing.
///
/// Operates on out[start..], which holds exactly usage.size() scores of the
/// current call (out may carry earlier victims' finalized scores before
/// `start`).
void finalize_scores(const PerfCloudConfig& cfg, const std::vector<double>& usage,
                     double max_usage, std::vector<SuspectScore>& out, std::size_t start) {
  for (std::size_t i = 0; i < usage.size(); ++i) {
    SuspectScore& score = out[start + i];
    const double evidence =
        cfg.use_absolute_correlation ? std::abs(score.correlation) : score.correlation;
    const bool heavy_enough = max_usage > 0.0 && usage[i] >= cfg.min_usage_fraction * max_usage;
    score.antagonist = evidence >= cfg.correlation_threshold && heavy_enough;
  }
}

}  // namespace

std::vector<SuspectScore> AntagonistIdentifier::score(
    const sim::TimeSeries& victim_signal, std::span<const SuspectSignal> suspects) const {
  std::vector<SuspectScore> out;
  if (victim_signal.size() < cfg_.min_correlation_samples) return out;
  out.reserve(suspects.size());

  std::vector<double> usage(suspects.size(), 0.0);
  double max_usage = 0.0;
  for (std::size_t i = 0; i < suspects.size(); ++i) {
    if (suspects[i].series != nullptr) {
      usage[i] = sim::windowed_mean_missing_as_zero(victim_signal, *suspects[i].series,
                                                    cfg_.correlation_window);
    }
    max_usage = std::max(max_usage, usage[i]);
  }

  for (std::size_t i = 0; i < suspects.size(); ++i) {
    const SuspectSignal& s = suspects[i];
    SuspectScore score;
    score.vm_id = s.vm_id;
    if (s.series != nullptr) {
      score.correlation =
          sim::pearson_missing_as_zero(victim_signal, *s.series, cfg_.correlation_window);
    }
    out.push_back(score);
  }
  finalize_scores(cfg_, usage, max_usage, out, 0);
  return out;
}

AntagonistIdentifier::PairState& AntagonistIdentifier::pair_state(
    VictimKey victim, int vm_id, const sim::TimeSeries& victim_signal) {
  sim::SlotMap<PairState>& per_victim = *pairs_.try_emplace(victim).first;
  PairState* state = per_victim.find(vm_id);
  if (state == nullptr) {
    // Construct the accumulator only on the miss path: building (and
    // discarding) a RollingCorrelation per lookup would allocate its ring
    // every quantum.
    state = per_victim
                .try_emplace(vm_id,
                             PairState{sim::RollingCorrelation(cfg_.correlation_window), 0})
                .first;
    // A pair discovered mid-run only needs the victim's current window: the
    // rolling accumulator would evict anything older anyway.
    const std::size_t n = victim_signal.size();
    state->consumed = n > cfg_.correlation_window ? n - cfg_.correlation_window : 0;
  }
  return *state;
}

void AntagonistIdentifier::score_incremental(VictimKey victim,
                                             const sim::TimeSeries& victim_signal,
                                             std::span<const SuspectSignal> suspects,
                                             std::vector<SuspectScore>& out) {
  if (victim_signal.size() < cfg_.min_correlation_samples) return;
  const std::size_t start = out.size();

  const std::size_t n = victim_signal.size();
  usage_.clear();
  usage_.resize(suspects.size(), 0.0);
  double max_usage = 0.0;

  for (std::size_t i = 0; i < suspects.size(); ++i) {
    const SuspectSignal& s = suspects[i];
    SuspectScore score;
    score.vm_id = s.vm_id;
    if (s.series != nullptr) {
      PairState& st = pair_state(victim, s.vm_id, victim_signal);
      if (st.consumed > n) {
        // The victim series shrank (cleared/restarted): replay its window.
        st.corr.reset();
        st.consumed = n > cfg_.correlation_window ? n - cfg_.correlation_window : 0;
      }
      for (std::size_t k = st.consumed; k < n; ++k) {
        const sim::SimTime t = victim_signal.time(k);
        const double y = s.series->value_at(t).value_or(0.0);
        st.corr.push(victim_signal.value(k), y);
      }
      st.consumed = n;
      score.correlation = st.corr.correlation();
      usage_[i] = st.corr.mean_y();
    }
    max_usage = std::max(max_usage, usage_[i]);
    out.push_back(score);
  }
  finalize_scores(cfg_, usage_, max_usage, out, start);
}

void AntagonistIdentifier::forget_suspect(int vm_id) {
  using Pairs = sim::SlotMap<sim::SlotMap<PairState>>;
  for (int key = pairs_.first_key(); key != Pairs::kEnd; key = pairs_.next_key(key)) {
    pairs_.at(key).erase(vm_id);
  }
}

std::vector<SuspectScore> AntagonistIdentifier::score_incremental(
    VictimKey victim, const sim::TimeSeries& victim_signal,
    std::span<const SuspectSignal> suspects) {
  std::vector<SuspectScore> out;
  score_incremental(victim, victim_signal, suspects, out);
  return out;
}

}  // namespace perfcloud::core
