#include "core/identifier.hpp"

#include <algorithm>
#include <cmath>

#include "sim/correlation.hpp"

namespace perfcloud::core {

namespace {

/// Shared threshold logic: a suspect is an antagonist when its correlation
/// evidence crosses the threshold AND it is heavy enough relative to the
/// heaviest suspect (the §III-B magnitude gate). When every suspect's
/// windowed usage is zero the gate fails for all of them: `usage >= f * 0`
/// would otherwise hold trivially, flagging idle suspects whose correlation
/// is a numerical artifact — an idle VM puts pressure on nothing.
void finalize_scores(const PerfCloudConfig& cfg, const std::vector<double>& usage,
                     double max_usage, std::vector<SuspectScore>& out) {
  for (std::size_t i = 0; i < out.size(); ++i) {
    SuspectScore& score = out[i];
    const double evidence =
        cfg.use_absolute_correlation ? std::abs(score.correlation) : score.correlation;
    const bool heavy_enough = max_usage > 0.0 && usage[i] >= cfg.min_usage_fraction * max_usage;
    score.antagonist = evidence >= cfg.correlation_threshold && heavy_enough;
  }
}

}  // namespace

std::vector<SuspectScore> AntagonistIdentifier::score(
    const sim::TimeSeries& victim_signal, const std::vector<SuspectSignal>& suspects) const {
  std::vector<SuspectScore> out;
  if (victim_signal.size() < cfg_.min_correlation_samples) return out;
  out.reserve(suspects.size());

  std::vector<double> usage(suspects.size(), 0.0);
  double max_usage = 0.0;
  for (std::size_t i = 0; i < suspects.size(); ++i) {
    if (suspects[i].series != nullptr) {
      usage[i] = sim::windowed_mean_missing_as_zero(victim_signal, *suspects[i].series,
                                                    cfg_.correlation_window);
    }
    max_usage = std::max(max_usage, usage[i]);
  }

  for (std::size_t i = 0; i < suspects.size(); ++i) {
    const SuspectSignal& s = suspects[i];
    SuspectScore score;
    score.vm_id = s.vm_id;
    if (s.series != nullptr) {
      score.correlation =
          sim::pearson_missing_as_zero(victim_signal, *s.series, cfg_.correlation_window);
    }
    out.push_back(score);
  }
  finalize_scores(cfg_, usage, max_usage, out);
  return out;
}

AntagonistIdentifier::PairState& AntagonistIdentifier::pair_state(const sim::TimeSeries* victim,
                                                                  int vm_id) {
  const auto key = std::make_pair(victim, vm_id);
  auto it = pairs_.find(key);
  if (it == pairs_.end()) {
    it = pairs_.try_emplace(key, PairState{sim::RollingCorrelation(cfg_.correlation_window), 0})
             .first;
    // A pair discovered mid-run only needs the victim's current window: the
    // rolling accumulator would evict anything older anyway.
    const std::size_t n = victim->size();
    it->second.consumed = n > cfg_.correlation_window ? n - cfg_.correlation_window : 0;
  }
  return it->second;
}

std::vector<SuspectScore> AntagonistIdentifier::score_incremental(
    const sim::TimeSeries& victim_signal, const std::vector<SuspectSignal>& suspects) {
  std::vector<SuspectScore> out;
  if (victim_signal.size() < cfg_.min_correlation_samples) return out;
  out.reserve(suspects.size());

  const std::size_t n = victim_signal.size();
  std::vector<double> usage(suspects.size(), 0.0);
  double max_usage = 0.0;

  for (std::size_t i = 0; i < suspects.size(); ++i) {
    const SuspectSignal& s = suspects[i];
    SuspectScore score;
    score.vm_id = s.vm_id;
    if (s.series != nullptr) {
      PairState& st = pair_state(&victim_signal, s.vm_id);
      if (st.consumed > n) {
        // The victim series shrank (cleared/restarted): replay its window.
        st.corr.reset();
        st.consumed = n > cfg_.correlation_window ? n - cfg_.correlation_window : 0;
      }
      for (std::size_t k = st.consumed; k < n; ++k) {
        const sim::SimTime t = victim_signal.time(k);
        const double y = s.series->value_at(t).value_or(0.0);
        st.corr.push(victim_signal.value(k), y);
      }
      st.consumed = n;
      score.correlation = st.corr.correlation();
      usage[i] = st.corr.mean_y();
    }
    max_usage = std::max(max_usage, usage[i]);
    out.push_back(score);
  }
  finalize_scores(cfg_, usage, max_usage, out);
  return out;
}

}  // namespace perfcloud::core
