#include "core/identifier.hpp"

#include <cmath>

#include "sim/correlation.hpp"

namespace perfcloud::core {

std::vector<SuspectScore> AntagonistIdentifier::score(
    const sim::TimeSeries& victim_signal, const std::vector<SuspectSignal>& suspects) const {
  std::vector<SuspectScore> out;
  if (victim_signal.size() < cfg_.min_correlation_samples) return out;
  out.reserve(suspects.size());

  std::vector<double> usage(suspects.size(), 0.0);
  double max_usage = 0.0;
  for (std::size_t i = 0; i < suspects.size(); ++i) {
    if (suspects[i].series != nullptr) {
      usage[i] = sim::windowed_mean_missing_as_zero(victim_signal, *suspects[i].series,
                                                    cfg_.correlation_window);
    }
    max_usage = std::max(max_usage, usage[i]);
  }

  for (std::size_t i = 0; i < suspects.size(); ++i) {
    const SuspectSignal& s = suspects[i];
    SuspectScore score;
    score.vm_id = s.vm_id;
    if (s.series != nullptr) {
      score.correlation =
          sim::pearson_missing_as_zero(victim_signal, *s.series, cfg_.correlation_window);
    }
    const double evidence =
        cfg_.use_absolute_correlation ? std::abs(score.correlation) : score.correlation;
    const bool heavy_enough = usage[i] >= cfg_.min_usage_fraction * max_usage;
    score.antagonist = evidence >= cfg_.correlation_threshold && heavy_enough;
    out.push_back(score);
  }
  return out;
}

}  // namespace perfcloud::core
