#include "core/cubic.hpp"

#include <algorithm>
#include <cmath>

namespace perfcloud::core {

CubicController::CubicController(const PerfCloudConfig& cfg, double baseline)
    : cfg_(cfg), baseline_(baseline) {}

double CubicController::step(bool contended) {
  if (contended) {
    cap_max_ = cap_;
    cap_ = std::max((1.0 - cfg_.beta) * cap_, cfg_.min_cap_fraction);
    t_ = 0;
    ever_decreased_ = true;
  } else {
    ++t_;
    const double k = std::cbrt(cfg_.beta * cap_max_ / cfg_.gamma);
    const double t = static_cast<double>(t_);
    const double cubic = cfg_.gamma * (t - k) * (t - k) * (t - k) + cap_max_;
    // The cubic is the *target*; the cap never moves backwards during
    // recovery (the curve starts below the post-decrease cap for small T).
    cap_ = std::max(cap_, cubic);
  }
  return cap_;
}

}  // namespace perfcloud::core
