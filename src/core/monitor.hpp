// Performance monitor: the per-host metric collection half of PerfCloud
// (§III-D.1).
//
// Every sampling interval it reads each resident VM's cumulative cgroup
// counters through the hypervisor (as the real system does via libvirt and
// perf_event), computes interval deltas, smooths them with an EWMA, and
// appends them to per-VM time series:
//   - high-priority VMs: block-iowait ratio (ms/op) and CPI;
//   - low-priority VMs: I/O throughput (bytes/s), LLC miss rate (misses/s),
//     and CPU usage (cores) — the suspect-side signals and the baselines
//     used to initialize resource caps.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <vector>

#include "core/config.hpp"
#include "sim/ewma.hpp"
#include "sim/time_series.hpp"
#include "virt/hypervisor.hpp"

namespace perfcloud::core {

/// The smoothed interval metrics of one VM at one sample time.
struct VmSample {
  std::optional<double> iowait_ratio_ms;  ///< Missing when the VM did ~no I/O.
  std::optional<double> cpi;              ///< Missing when no instructions retired.
  double io_throughput_bps = 0.0;
  double io_ops_per_s = 0.0;
  std::optional<double> llc_miss_rate;    ///< Missing when the VM ran nothing.
  double cpu_usage_cores = 0.0;
};

class PerformanceMonitor {
 public:
  PerformanceMonitor(virt::Hypervisor& hv, PerfCloudConfig cfg)
      : hv_(hv), cfg_(cfg) {}

  /// Take one sample of every resident VM at time `now`. Call exactly once
  /// per interval, after the host's arbitration tick.
  void sample(sim::SimTime now);

  /// Latest sample of a VM; nullptr before the first sample.
  [[nodiscard]] const VmSample* latest(int vm_id) const;

  /// Suspect-side series used by the antagonist identifier.
  [[nodiscard]] const sim::TimeSeries& io_throughput_series(int vm_id) const;
  [[nodiscard]] const sim::TimeSeries& llc_miss_series(int vm_id) const;

  /// Observation baselines for cap initialization ("the VM's observed CPU
  /// usage or I/O throughput", §III-C); smoothed current values.
  [[nodiscard]] double observed_io_bps(int vm_id) const;
  [[nodiscard]] double observed_cpu_cores(int vm_id) const;

  // --- Fault hooks (MonitorBlackout) ---
  /// Drop every sample of one VM (no series appends, no latest) until
  /// cleared. On recovery the next interval only re-primes the cumulative
  /// baseline — otherwise the whole blackout's worth of counter deltas would
  /// land in one sample as a spike.
  void set_blackout(int vm_id, bool dark);
  /// Darken (or clear) the whole host's monitor at once.
  void set_blackout_all(bool dark);
  [[nodiscard]] bool blacked_out(int vm_id) const {
    return blackout_all_ || blackout_.contains(vm_id);
  }

 private:
  struct PerVm {
    virt::CgroupStats prev;
    bool has_prev = false;
    int iowait_updates = 0;
    int cpi_updates = 0;
    sim::Ewma iowait_ratio;
    sim::Ewma cpi;
    sim::Ewma io_bps;
    sim::Ewma llc_rate;
    sim::Ewma cpu_cores;
    VmSample latest;
    bool has_latest = false;
    sim::TimeSeries io_series;
    sim::TimeSeries llc_series;
  };

  PerVm& state(int vm_id);

  virt::Hypervisor& hv_;
  PerfCloudConfig cfg_;
  std::map<int, PerVm> vms_;
  std::set<int> blackout_;     ///< Individually darkened VM ids.
  bool blackout_all_ = false;  ///< Whole-host blackout.
  static const sim::TimeSeries kEmptySeries;
};

}  // namespace perfcloud::core
