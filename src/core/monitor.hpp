// Performance monitor: the per-host metric collection half of PerfCloud
// (§III-D.1).
//
// Every sampling interval it reads each resident VM's cumulative cgroup
// counters through the hypervisor (as the real system does via libvirt and
// perf_event), computes interval deltas, smooths them with an EWMA, and
// appends them to per-VM time series:
//   - high-priority VMs: block-iowait ratio (ms/op) and CPI;
//   - low-priority VMs: I/O throughput (bytes/s), LLC miss rate (misses/s),
//     and CPU usage (cores) — the suspect-side signals and the baselines
//     used to initialize resource caps.
//
// Memory layout (DESIGN.md §5l): per-VM state is a structure of arrays.
// Each VM owns one *row*, and every field lives in its own parallel column
// (counter baseline, per-metric EWMA value + seeded flag, update counts,
// latest sample, series). A sample is two phases: a gather pass walks the
// resident VMs once, folding counter reads into flat per-metric delta
// columns, then one kernel loop per metric sweeps those columns. Each VM is
// an independent lane computing exactly the expressions the row-at-a-time
// code computed, in the same per-lane order, so every EWMA value — and every
// output byte downstream — is bit-identical to the AoS layout.
#pragma once

#include <cstdint>
#include <optional>
#include <set>
#include <span>
#include <vector>

#include "core/config.hpp"
#include "sim/slot_store.hpp"
#include "sim/time_series.hpp"
#include "virt/hypervisor.hpp"

namespace perfcloud::core {

/// The smoothed interval metrics of one VM at one sample time.
struct VmSample {
  std::optional<double> iowait_ratio_ms;  ///< Missing when the VM did ~no I/O.
  std::optional<double> cpi;              ///< Missing when no instructions retired.
  double io_throughput_bps = 0.0;
  double io_ops_per_s = 0.0;
  std::optional<double> llc_miss_rate;    ///< Missing when the VM ran nothing.
  double cpu_usage_cores = 0.0;
};

class PerformanceMonitor {
 public:
  PerformanceMonitor(virt::Hypervisor& hv, PerfCloudConfig cfg)
      : hv_(hv), cfg_(cfg) {}

  /// Take one sample of every resident VM at time `now`. Call exactly once
  /// per interval, after the host's arbitration tick.
  void sample(sim::SimTime now);

  // --- Idle-host fast path ---
  /// True when the last full sample saw every resident VM fully settled —
  /// counter baseline primed, all interval deltas zero, no blackout — and no
  /// hypervisor activity has happened since. While this holds (and the host
  /// stays quiescent), cgroup counters cannot change, so `record_settled`
  /// reproduces the next full sample without reading a single counter.
  [[nodiscard]] bool can_fast_sample() const;
  /// The fast-path equivalent of `sample(now)`, valid only while
  /// can_fast_sample(): replays exactly the appends and EWMA decays a full
  /// sample performs on a settled host (zero deltas feed the throughput and
  /// CPU smoothers, one io_series point per VM; the gated metrics — iowait,
  /// CPI, LLC — record nothing, as they would with zero deltas). Series
  /// stay byte-identical to the slow path.
  void record_settled(sim::SimTime now);

  /// Latest sample of a VM; nullptr before the first sample. The pointer is
  /// valid until the next sample()/record_settled() call (per-VM state lives
  /// in dense columns; sampling a never-seen VM may move it).
  [[nodiscard]] const VmSample* latest(int vm_id) const;

  /// Batch form of latest(): out[i] = latest(ids[i]). One pass over the id
  /// list; the per-quantum sweep hands a whole application group's VM ids
  /// here instead of issuing per-id lookups.
  void latest_batch(std::span<const int> ids, const VmSample** out) const;

  /// Suspect-side series used by the antagonist identifier.
  [[nodiscard]] const sim::TimeSeries& io_throughput_series(int vm_id) const;
  [[nodiscard]] const sim::TimeSeries& llc_miss_series(int vm_id) const;

  /// Batch form of the two series lookups: io_out[i]/llc_out[i] for ids[i]
  /// (never nullptr — unknown ids get the shared empty series, matching the
  /// scalar accessors). The sweep gathers the whole suspect list once per
  /// quantum, not once per application group.
  void series_batch(std::span<const int> ids, const sim::TimeSeries** io_out,
                    const sim::TimeSeries** llc_out) const;

  /// Observation baselines for cap initialization ("the VM's observed CPU
  /// usage or I/O throughput", §III-C); smoothed current values. The LLC
  /// miss rate is the third axis of the policy layer's usage vectors
  /// (src/policy/ complementary-placement scoring).
  [[nodiscard]] double observed_io_bps(int vm_id) const;
  [[nodiscard]] double observed_cpu_cores(int vm_id) const;
  [[nodiscard]] double observed_llc_rate(int vm_id) const;

  /// Migration handoff: drop every trace of a VM that left this host —
  /// counter baseline, EWMAs, series, latest sample. If the VM ever comes
  /// back, its first sample re-primes the cumulative baseline (its counters
  /// kept growing on the other host; a kept baseline would book all of that
  /// as one interval's delta). Unknown ids are a no-op. NOT used on the
  /// crash path: a crashed VM's series stay frozen for post-mortem reads,
  /// and its id never returns.
  void forget_vm(int vm_id);

  // --- Fault hooks (MonitorBlackout) ---
  /// Drop every sample of one VM (no series appends, no latest) until
  /// cleared. On recovery the next interval only re-primes the cumulative
  /// baseline — otherwise the whole blackout's worth of counter deltas would
  /// land in one sample as a spike.
  void set_blackout(int vm_id, bool dark);
  /// Darken (or clear) the whole host's monitor at once.
  void set_blackout_all(bool dark);
  [[nodiscard]] bool blacked_out(int vm_id) const {
    return blackout_all_ || blackout_.contains(vm_id);
  }

 private:
  /// Row of a VM, creating (or recycling) one on first sight.
  std::uint32_t row(int vm_id);
  /// Construct a recycled row's columns fresh, as if never used.
  void reset_row(std::uint32_t r);
  /// Append one default-constructed element to every column.
  void push_row();

  virt::Hypervisor& hv_;
  PerfCloudConfig cfg_;

  /// VM id -> row. Two array indexes per lookup; entries of departed VMs
  /// are erased and their rows recycled through free_rows_ (cloud-wide VM
  /// ids are never reused, so a recycled row can never be mistaken for its
  /// previous tenant).
  sim::SlotMap<std::uint32_t> row_of_;
  std::vector<std::uint32_t> free_rows_;

  // --- Persistent per-row columns (all parallel, indexed by row) ---
  std::vector<virt::CgroupStats> prev_;   ///< Cumulative-counter baseline.
  std::vector<std::uint8_t> has_prev_;
  std::vector<std::uint32_t> iowait_updates_;
  std::vector<std::uint32_t> cpi_updates_;
  // One EWMA per metric, stored as a value column plus a seeded flag; the
  // smoothing factor is the config's single alpha, shared by every lane.
  std::vector<double> ew_iowait_;
  std::vector<double> ew_cpi_;
  std::vector<double> ew_io_bps_;
  std::vector<double> ew_llc_;
  std::vector<double> ew_cpu_;
  std::vector<std::uint8_t> sd_iowait_;
  std::vector<std::uint8_t> sd_cpi_;
  std::vector<std::uint8_t> sd_io_bps_;
  std::vector<std::uint8_t> sd_llc_;
  std::vector<std::uint8_t> sd_cpu_;
  std::vector<VmSample> latest_;
  std::vector<std::uint8_t> has_latest_;
  std::vector<sim::TimeSeries> io_series_;
  std::vector<sim::TimeSeries> llc_series_;

  // --- Per-sample batch columns (capacity reused; steady state allocates
  // nothing). rows_[k] is the k-th sampled lane's row; d_*_[k] its interval
  // deltas, in hypervisor residency order.
  std::vector<std::uint32_t> rows_;
  std::vector<double> d_wait_ms_;
  std::vector<double> d_ops_;
  std::vector<double> d_bytes_;
  std::vector<double> d_cycles_;
  std::vector<double> d_instr_;
  std::vector<double> d_misses_;
  std::vector<double> d_cpu_;

  std::set<int> blackout_;     ///< Individually darkened VM ids.
  bool blackout_all_ = false;  ///< Whole-host blackout.
  bool settled_ = false;       ///< Last full sample saw only settled VMs.
  std::uint64_t settled_epoch_ = 0;  ///< hv activity epoch at that sample.
  static const sim::TimeSeries kEmptySeries;
};

}  // namespace perfcloud::core
