// Performance monitor: the per-host metric collection half of PerfCloud
// (§III-D.1).
//
// Every sampling interval it reads each resident VM's cumulative cgroup
// counters through the hypervisor (as the real system does via libvirt and
// perf_event), computes interval deltas, smooths them with an EWMA, and
// appends them to per-VM time series:
//   - high-priority VMs: block-iowait ratio (ms/op) and CPI;
//   - low-priority VMs: I/O throughput (bytes/s), LLC miss rate (misses/s),
//     and CPU usage (cores) — the suspect-side signals and the baselines
//     used to initialize resource caps.
#pragma once

#include <cstdint>
#include <optional>
#include <set>
#include <vector>

#include "core/config.hpp"
#include "sim/ewma.hpp"
#include "sim/slot_store.hpp"
#include "sim/time_series.hpp"
#include "virt/hypervisor.hpp"

namespace perfcloud::core {

/// The smoothed interval metrics of one VM at one sample time.
struct VmSample {
  std::optional<double> iowait_ratio_ms;  ///< Missing when the VM did ~no I/O.
  std::optional<double> cpi;              ///< Missing when no instructions retired.
  double io_throughput_bps = 0.0;
  double io_ops_per_s = 0.0;
  std::optional<double> llc_miss_rate;    ///< Missing when the VM ran nothing.
  double cpu_usage_cores = 0.0;
};

class PerformanceMonitor {
 public:
  PerformanceMonitor(virt::Hypervisor& hv, PerfCloudConfig cfg)
      : hv_(hv), cfg_(cfg) {}

  /// Take one sample of every resident VM at time `now`. Call exactly once
  /// per interval, after the host's arbitration tick.
  void sample(sim::SimTime now);

  // --- Idle-host fast path ---
  /// True when the last full sample saw every resident VM fully settled —
  /// counter baseline primed, all interval deltas zero, no blackout — and no
  /// hypervisor activity has happened since. While this holds (and the host
  /// stays quiescent), cgroup counters cannot change, so `record_settled`
  /// reproduces the next full sample without reading a single counter.
  [[nodiscard]] bool can_fast_sample() const;
  /// The fast-path equivalent of `sample(now)`, valid only while
  /// can_fast_sample(): replays exactly the appends and EWMA decays a full
  /// sample performs on a settled host (zero deltas feed the throughput and
  /// CPU smoothers, one io_series point per VM; the gated metrics — iowait,
  /// CPI, LLC — record nothing, as they would with zero deltas). Series
  /// stay byte-identical to the slow path.
  void record_settled(sim::SimTime now);

  /// Latest sample of a VM; nullptr before the first sample. The pointer is
  /// valid until the next sample()/record_settled() call (per-VM state lives
  /// in a dense slot store; sampling a never-seen VM may move it).
  [[nodiscard]] const VmSample* latest(int vm_id) const;

  /// Suspect-side series used by the antagonist identifier.
  [[nodiscard]] const sim::TimeSeries& io_throughput_series(int vm_id) const;
  [[nodiscard]] const sim::TimeSeries& llc_miss_series(int vm_id) const;

  /// Observation baselines for cap initialization ("the VM's observed CPU
  /// usage or I/O throughput", §III-C); smoothed current values. The LLC
  /// miss rate is the third axis of the policy layer's usage vectors
  /// (src/policy/ complementary-placement scoring).
  [[nodiscard]] double observed_io_bps(int vm_id) const;
  [[nodiscard]] double observed_cpu_cores(int vm_id) const;
  [[nodiscard]] double observed_llc_rate(int vm_id) const;

  /// Migration handoff: drop every trace of a VM that left this host —
  /// counter baseline, EWMAs, series, latest sample. If the VM ever comes
  /// back, its first sample re-primes the cumulative baseline (its counters
  /// kept growing on the other host; a kept baseline would book all of that
  /// as one interval's delta). Unknown ids are a no-op. NOT used on the
  /// crash path: a crashed VM's series stay frozen for post-mortem reads,
  /// and its id never returns.
  void forget_vm(int vm_id);

  // --- Fault hooks (MonitorBlackout) ---
  /// Drop every sample of one VM (no series appends, no latest) until
  /// cleared. On recovery the next interval only re-primes the cumulative
  /// baseline — otherwise the whole blackout's worth of counter deltas would
  /// land in one sample as a spike.
  void set_blackout(int vm_id, bool dark);
  /// Darken (or clear) the whole host's monitor at once.
  void set_blackout_all(bool dark);
  [[nodiscard]] bool blacked_out(int vm_id) const {
    return blackout_all_ || blackout_.contains(vm_id);
  }

 private:
  struct PerVm {
    virt::CgroupStats prev;
    bool has_prev = false;
    int iowait_updates = 0;
    int cpi_updates = 0;
    sim::Ewma iowait_ratio;
    sim::Ewma cpi;
    sim::Ewma io_bps;
    sim::Ewma llc_rate;
    sim::Ewma cpu_cores;
    VmSample latest;
    bool has_latest = false;
    sim::TimeSeries io_series;
    sim::TimeSeries llc_series;
  };

  PerVm& state(int vm_id);

  virt::Hypervisor& hv_;
  PerfCloudConfig cfg_;
  /// Keyed by VM id: two array indexes per lookup, and the per-quantum walk
  /// over hv_.vms() touches per-VM state in contiguous slots instead of
  /// red-black tree nodes. Entries of departed VMs linger (ids are never
  /// reused cloud-wide, so they are simply unreachable).
  sim::SlotMap<PerVm> vms_;
  std::set<int> blackout_;     ///< Individually darkened VM ids.
  bool blackout_all_ = false;  ///< Whole-host blackout.
  bool settled_ = false;       ///< Last full sample saw only settled VMs.
  std::uint64_t settled_epoch_ = 0;  ///< hv activity epoch at that sample.
  static const sim::TimeSeries kEmptySeries;
};

}  // namespace perfcloud::core
