// CUBIC-congestion-control-inspired resource-cap controller (Eq. 1, §III-C).
//
// Caps are normalized: 1.0 means the antagonist's observed baseline usage at
// initialization. While the victim's deviation signal exceeds its threshold
// the cap shrinks multiplicatively by (1 - beta); otherwise it recovers
// along the cubic  C(T) = gamma * (T - K)^3 + C_max,  K = cbrt(beta*C_max/gamma),
// which yields the paper's three regions: fast initial growth toward C_max,
// a conservative plateau around it, and aggressive probing beyond it.
#pragma once

#include "core/config.hpp"

namespace perfcloud::core {

class CubicController {
 public:
  /// `baseline` is the observed resource usage (bytes/s or cores) of the
  /// antagonist at controller creation; the initial cap equals it (§III-C:
  /// "initialized to be equal to the VM's observed CPU usage or I/O
  /// throughput").
  CubicController(const PerfCloudConfig& cfg, double baseline);

  /// Advance one control interval. `contended` is I(t) > H for the resource
  /// this controller owns. Returns the new normalized cap.
  double step(bool contended);

  /// Normalized cap (1.0 = baseline usage).
  [[nodiscard]] double cap() const { return cap_; }
  /// Cap in native units (cap() * baseline).
  [[nodiscard]] double cap_absolute() const { return cap_ * baseline_; }
  [[nodiscard]] double baseline() const { return baseline_; }
  /// Cap level at the last multiplicative decrease (C_max in Eq. 1).
  [[nodiscard]] double cap_max() const { return cap_max_; }
  /// Intervals since the last decrease (T_i in Eq. 1).
  [[nodiscard]] int intervals_since_decrease() const { return t_; }
  /// True once recovery grew the cap past the lift threshold: the throttle
  /// should be removed and the controller retired.
  [[nodiscard]] bool lifted() const { return cap_ >= cfg_.cap_lift_fraction; }
  /// True if the controller ever throttled (at least one decrease).
  [[nodiscard]] bool ever_decreased() const { return ever_decreased_; }

 private:
  PerfCloudConfig cfg_;
  double baseline_;
  double cap_ = 1.0;
  double cap_max_ = 1.0;
  int t_ = 0;
  bool ever_decreased_ = false;
};

}  // namespace perfcloud::core
