// Node manager: the per-host PerfCloud agent (Algorithm 1, §III-D.2).
//
// Every control interval it (1) fetches the host's VM records from the
// cloud manager — priorities and application grouping, so placement changes
// are picked up automatically; (2) samples the performance monitor;
// (3) computes the deviation signals for each high-priority application;
// (4) identifies antagonists by cross-correlation; and (5) runs the CUBIC
// cap controllers and actuates CPU quotas and blkio throttles through the
// hypervisor.
//
// Memory layout (DESIGN.md §5i): all per-quantum state is keyed by dense
// integer ids — interned AppIds for per-application signals and sink
// columns, VM ids for controllers, identification stamps, and cap history —
// and lives in slot-indexed stores, so the steady-state quantum walks
// contiguous arrays and allocates nothing. The registry view (app grouping
// + suspects) is cached against the cloud's registry version and rebuilt
// only when placement changes. Per-quantum scratch (sample pointers,
// suspect signal lists, antagonist ids) comes from the shard's bump arena,
// reset at the quantum barrier.
#pragma once

#include <map>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "cloud/cloud_manager.hpp"
#include "core/config.hpp"
#include "core/cubic.hpp"
#include "core/detector.hpp"
#include "core/identifier.hpp"
#include "core/monitor.hpp"
#include "sim/emit.hpp"
#include "sim/interner.hpp"
#include "sim/rng.hpp"
#include "sim/slot_store.hpp"

namespace perfcloud::core {

class NodeManager {
 public:
  /// Interned application id (see cloud::CloudManager::app_interner()).
  using AppId = sim::Interner::Id;

  NodeManager(cloud::CloudManager& cloud, std::string host_name, PerfCloudConfig cfg = {});

  NodeManager(const NodeManager&) = delete;
  NodeManager& operator=(const NodeManager&) = delete;

  /// Register this host's control pipeline with the cloud manager's shard
  /// sweep (one batched engine periodic for all node managers, not one
  /// each). Call after the cloud has started ticking (the monitor must
  /// sample post-arbitration counters).
  void start();

  /// One Algorithm-1 iteration; exposed for tests and benches. Equivalent
  /// to local_step + escalation, run back to back.
  void control_step(sim::SimTime now);

  /// The host-local half of an iteration: sample, detect, identify, run the
  /// cap controllers and actuate on this host's hypervisor. Thread-confined
  /// — touches only this node manager's state, this host's hypervisor, and
  /// read-only cloud-registry queries — so the shard sweep runs all hosts'
  /// local steps in parallel. A detected high-priority application collision
  /// is only *recorded* here (escalation migrates VMs across hosts).
  ///
  /// Quiescent hosts take an O(1) early-out (try_quiescent_step) that is
  /// state-identical to the full pipeline: the monitor records the same
  /// settled samples, the same counters bump, and — with no protected apps,
  /// no suspects with signal, and no live controllers — detection,
  /// identification, and control would all have been no-ops.
  void local_step(sim::SimTime now);

  /// The cross-host half: if local_step flagged an application collision,
  /// ask the cloud manager to separate the apps (§IV-D). Runs after the
  /// sweep barrier, sequentially in host order.
  void run_pending_escalation(sim::SimTime now);

  /// Monitoring-only mode: sample and compute signals but never actuate.
  /// Used by the "default system" baseline and by the detection figures.
  void set_control_enabled(bool enabled) { control_enabled_ = enabled; }

  /// Route this node manager's observation output through `sink` instead of
  /// leaving it to end-of-run series assembly: deviation-signal samples of
  /// the given high-priority applications become trace columns
  /// ("<host>/<app>/io_dev" and ".../cpi_dev"), cap updates and fresh
  /// antagonist identifications become report events, and per-host counters
  /// feed the run summary. Emission happens inside local_step — thread-
  /// confined to this host's shard task; the sink stages it and writes off
  /// the barrier. Call during setup, before the first control interval. The
  /// in-memory series remain (the identifier correlates against them and
  /// the figure benches read them); what moves off the control path is the
  /// formatting and file output.
  void attach_sink(sim::EmitSink& sink, const std::vector<std::string>& app_ids);

  // --- Fault hooks ---
  /// CapCommandLoss: while active, every actuation (set/clear CPU quota or
  /// blkio throttle) is silently dropped with probability `drop_probability`.
  /// The drop decisions come from a dedicated RNG seeded here — never from
  /// the engine's stream — and are drawn only per actuation attempt, so they
  /// are identical across shard counts. Dropped *clears* leave a stale cap
  /// in place until the controller's next interval, exactly the failure mode
  /// the CUBIC loop must re-converge through.
  void set_cap_command_loss(double drop_probability, std::uint64_t seed);
  void clear_cap_command_loss();
  [[nodiscard]] long cap_commands_dropped() const { return cap_commands_dropped_; }

  /// HostCrash cleanup: drop all controller and identification state of a VM
  /// that no longer exists (actuating on a dead VM id would throw). Cap
  /// history is kept — it is plot data, not control state. The VM's slots
  /// are recycled; a later VM can never see its predecessor's state because
  /// cloud-wide VM ids are never reused and recycled slots are constructed
  /// fresh. Monitor series of the dead VM linger unreachable (crashed VMs
  /// never return); contrast the migration handoff below, which retires
  /// them because a migrated VM CAN come back.
  void forget_vm(int vm_id);

  [[nodiscard]] const std::string& host_name() const { return host_; }

  /// First time each suspect was ever identified (per resource) — detection/
  /// identification-latency scoring for the chaos experiments. Unlike the
  /// rolling identification memory, these never update after the first cross.
  /// Cold insert-only state, kept as ordered maps for cheap iteration by the
  /// chaos report.
  [[nodiscard]] const std::map<int, sim::SimTime>& io_first_identified() const {
    return io_first_identified_;
  }
  [[nodiscard]] const std::map<int, sim::SimTime>& cpu_first_identified() const {
    return cpu_first_identified_;
  }

  // --- Policy-facing introspection (src/policy/, engine thread only) ---
  // The ClusterView aggregator folds these into its per-host state every
  // policy interval, post-barrier. All of them are allocation-free: the
  // armed-but-idle policy tick is part of the zero-steady-state-allocation
  // contract.
  /// The node manager's parameter set (thresholds, floor fraction, interval).
  [[nodiscard]] const PerfCloudConfig& config() const { return cfg_; }
  /// Latest deviation-signal sample of one protected application on this
  /// host; negative when the app has no samples here.
  [[nodiscard]] double latest_io_deviation(AppId app) const {
    const sim::TimeSeries* s = io_signals_.find(app);
    return s == nullptr || s->empty() ? -1.0 : s->value(s->size() - 1);
  }
  [[nodiscard]] double latest_cpi_deviation(AppId app) const {
    const sim::TimeSeries* s = cpi_signals_.find(app);
    return s == nullptr || s->empty() ? -1.0 : s->value(s->size() - 1);
  }
  /// Visit the protected (high-priority) applications resident on this host
  /// as of the last registry refresh, in app-name order: fn(AppId).
  template <typename Fn>
  void for_each_protected_app(Fn&& fn) const {
    for (const AppGroup& g : view_apps_) fn(g.app);
  }
  /// Visit every live cap controller of one resource in ascending VM-id
  /// order: fn(vm_id, normalized_cap, ever_decreased). A controller exists
  /// only for an identified antagonist, so "capped" implies "identified";
  /// ever_decreased distinguishes a cap actually driven down from the 1.0 a
  /// fresh controller starts at.
  template <typename Fn>
  void for_each_io_cap(Fn&& fn) const {
    visit_caps(io_controllers_, std::forward<Fn>(fn));
  }
  template <typename Fn>
  void for_each_cpu_cap(Fn&& fn) const {
    visit_caps(cpu_controllers_, std::forward<Fn>(fn));
  }

  // --- Introspection for tests and figure benches (cold path) ---
  [[nodiscard]] PerformanceMonitor& monitor() { return monitor_; }
  /// Deviation-signal series of one high-priority application on this host.
  /// Heterogeneous lookup: the name resolves through the app interner, no
  /// temporary std::string and no string-keyed tree walk.
  [[nodiscard]] const sim::TimeSeries& io_signal(std::string_view app_id) const;
  [[nodiscard]] const sim::TimeSeries& cpi_signal(std::string_view app_id) const;
  /// Normalized-cap series of a throttled VM (1.0 = baseline usage); empty
  /// if the VM was never throttled for that resource.
  [[nodiscard]] const sim::TimeSeries& io_cap_series(int vm_id) const;
  [[nodiscard]] const sim::TimeSeries& cpu_cap_series(int vm_id) const;
  /// Latest antagonist correlation scores (per resource), for Fig 5/6.
  [[nodiscard]] const std::vector<SuspectScore>& last_io_scores() const { return io_scores_; }
  [[nodiscard]] const std::vector<SuspectScore>& last_cpu_scores() const { return cpu_scores_; }

 private:
  enum class Resource { kIo, kCpu };

  /// One high-priority application's VMs on this host, plus the low-priority
  /// suspect list — the parsed registry view local_step consumes. Rebuilt
  /// from the cloud registry only when its version changes; between
  /// placement changes the per-quantum cost is one integer compare.
  struct AppGroup {
    AppId app = sim::Interner::kInvalid;
    std::vector<int> vm_ids;  ///< Registry (boot) order.
  };

  /// Migration handoff (DESIGN.md §5j), registered with the cloud manager
  /// in start(). On kDeparting from THIS host: retire the departing VM's
  /// caps through the still-resident cgroup (the controller that owns them
  /// does not travel), then drop controller/identification state
  /// (forget_vm) plus its monitor slot and identifier pair columns. On
  /// kArrived at THIS host: drop any stale monitor/identifier state from a
  /// previous residency, so the first sample re-primes the cumulative
  /// counter baseline instead of booking everything the VM did elsewhere
  /// as one interval's delta spike.
  void on_migration(const cloud::MigrationEvent& ev);

  /// Re-parse the host's registry records if the cloud registry changed.
  /// Groups are ordered by application *name* (the emission/iteration order
  /// the string-keyed maps used to give for free), suspects in registry
  /// order.
  void refresh_view();

  /// The idle-host fast path: true when this interval was handled without
  /// touching the registry, the detector, or the controllers. Valid only
  /// when the hypervisor is quiescent, the monitor's settled state is
  /// current, no high-priority application resides here (cached against the
  /// cloud registry version), and no cap controller is live.
  bool try_quiescent_step(sim::SimTime now);

  void run_resource_control(Resource res, bool contended, std::span<const int> antagonists,
                            sim::SimTime now);
  [[nodiscard]] sim::TimeSeries& signal(sim::SlotMap<sim::TimeSeries>& store, AppId app);

  template <typename Fn>
  static void visit_caps(const sim::SlotMap<CubicController>& controllers, Fn&& fn) {
    for (int id = controllers.first_key(); id != sim::SlotMap<CubicController>::kEnd;
         id = controllers.next_key(id)) {
      const CubicController& ctrl = controllers.at(id);
      fn(id, ctrl.cap(), ctrl.ever_decreased());
    }
  }

  struct SinkColumns {
    sim::EmitSink::SourceId io_dev = 0;
    sim::EmitSink::SourceId cpi_dev = 0;
  };

  cloud::CloudManager& cloud_;
  std::string host_;
  /// This host's hypervisor, resolved once (it outlives crashes: the object
  /// survives, only its VMs die) so the per-interval fast path skips the
  /// cloud manager's name lookup.
  virt::Hypervisor& hv_;
  PerfCloudConfig cfg_;
  sim::EmitSink* sink_ = nullptr;
  sim::EmitSink::SourceId sink_source_ = 0;
  sim::SlotMap<SinkColumns> sink_columns_;  ///< Keyed by AppId.
  // Slot-keyed summary counters, registered in attach_sink: per-quantum
  // bumps are one array index, no string lookup on the control path.
  sim::EmitSink::CounterId ctr_intervals_ = 0;
  sim::EmitSink::CounterId ctr_io_ident_ = 0;
  sim::EmitSink::CounterId ctr_cpu_ident_ = 0;
  sim::EmitSink::CounterId ctr_cap_dropped_ = 0;
  PerformanceMonitor monitor_;
  InterferenceDetector detector_;
  AntagonistIdentifier identifier_;
  bool control_enabled_ = true;
  bool started_ = false;
  bool escalation_pending_ = false;
  /// Registry version at which an escalation ran and changed nothing —
  /// the collision is unresolvable with the cloud as-is (no admissible
  /// destination), so re-running the scan every quantum is pure overhead
  /// (and allocates, violating the steady-state contract). Any registry
  /// mutation bumps the version and re-arms escalation. 0 = never no-oped.
  std::uint64_t escalation_noop_version_ = 0;

  // Per-application deviation signals, keyed by AppId.
  sim::SlotMap<sim::TimeSeries> io_signals_;
  sim::SlotMap<sim::TimeSeries> cpi_signals_;
  // Per-VM control state, keyed by VM id (dense slot stores; see §5i).
  sim::SlotMap<CubicController> io_controllers_;
  sim::SlotMap<CubicController> cpu_controllers_;
  // Most recent time each suspect's correlation crossed the threshold.
  sim::SlotMap<sim::SimTime> io_identified_at_;
  sim::SlotMap<sim::SimTime> cpu_identified_at_;
  // First time it ever crossed (insert-only; chaos-experiment scoring).
  std::map<int, sim::SimTime> io_first_identified_;
  std::map<int, sim::SimTime> cpu_first_identified_;
  // CapCommandLoss fault state (see set_cap_command_loss).
  bool cap_loss_active_ = false;
  double cap_loss_p_ = 0.0;
  sim::Rng cap_loss_rng_{0};
  long cap_commands_dropped_ = 0;
  // Cap history persists after a controller retires (Fig 10 plots it).
  sim::SlotMap<sim::TimeSeries> io_cap_history_;
  sim::SlotMap<sim::TimeSeries> cpu_cap_history_;
  std::vector<SuspectScore> io_scores_;
  std::vector<SuspectScore> cpu_scores_;
  // Cached registry view (see refresh_view), keyed to the cloud registry
  // version. view_version_ == 0 means never built (versions start at 1).
  std::uint64_t view_version_ = 0;
  std::vector<AppGroup> view_apps_;
  std::vector<int> view_suspects_;
  bool cached_protected_apps_ = true;
  static const sim::TimeSeries kEmptySeries;
};

}  // namespace perfcloud::core
