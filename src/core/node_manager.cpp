#include "core/node_manager.hpp"

#include <algorithm>

namespace perfcloud::core {

const sim::TimeSeries NodeManager::kEmptySeries{};

namespace {
constexpr double kMinIoBaselineBps = 1.0e6;   // never throttle below-noise usage to zero
constexpr double kMinCpuBaselineCores = 0.2;
}  // namespace

NodeManager::NodeManager(cloud::CloudManager& cloud, std::string host_name, PerfCloudConfig cfg)
    : cloud_(cloud),
      host_(std::move(host_name)),
      hv_(cloud.host(host_)),
      cfg_(cfg),
      monitor_(hv_, cfg),
      detector_(cfg),
      identifier_(cfg) {}

void NodeManager::start() {
  if (started_) return;
  started_ = true;
  cloud_.register_host_pipeline(
      cfg_.sample_interval_s, [this](sim::SimTime now) { local_step(now); },
      [this](sim::SimTime now) { run_pending_escalation(now); });
}

void NodeManager::attach_sink(sim::EmitSink& sink, const std::vector<std::string>& app_ids) {
  sink_ = &sink;
  sink_source_ = sink.add_event_source(host_);
  for (const std::string& app : app_ids) {
    sink_columns_.try_emplace(
        app, SinkColumns{sink.add_trace_column(host_ + "/" + app + "/io_dev"),
                         sink.add_trace_column(host_ + "/" + app + "/cpi_dev")});
  }
}

sim::TimeSeries& NodeManager::signal(std::map<std::string, sim::TimeSeries>& store,
                                     const std::string& app_id) {
  return store.try_emplace(app_id, sim::TimeSeries(app_id)).first->second;
}

void NodeManager::control_step(sim::SimTime now) {
  local_step(now);
  run_pending_escalation(now);
}

void NodeManager::run_pending_escalation(sim::SimTime now) {
  (void)now;
  if (!escalation_pending_) return;
  escalation_pending_ = false;
  cloud_.resolve_high_priority_collision(host_);
}

bool NodeManager::try_quiescent_step(sim::SimTime now) {
  if (!virt::idle_fastpath_enabled()) return false;
  // Live controllers still step (and actuate) every interval even without
  // contention — the cubic recovery must run to completion.
  if (!io_controllers_.empty() || !cpu_controllers_.empty()) return false;
  if (!hv_.is_quiescent(now) || !monitor_.can_fast_sample()) return false;
  // A host carrying a protected application appends a deviation-signal
  // sample (and possibly sink columns) every interval even when idle, so it
  // must run the full pipeline. The registry summary is cached: between
  // placement changes this check is one integer compare, not a scan.
  if (cached_registry_version_ != cloud_.registry_version()) {
    cached_registry_version_ = cloud_.registry_version();
    cached_protected_apps_ = false;
    for (const cloud::VmRecord& r : cloud_.vms_on_host(host_)) {
      if (r.priority == virt::Priority::kHigh && !r.app_id.empty()) {
        cached_protected_apps_ = true;
        break;
      }
    }
  }
  if (cached_protected_apps_) return false;

  // Replay exactly what the full pipeline does on a quiescent, app-free
  // host: settled monitor samples, cleared scores, no escalation, and the
  // interval counter. Detection, identification, and control all reduce to
  // no-ops with no apps and no controllers.
  monitor_.record_settled(now);
  escalation_pending_ = false;
  io_scores_.clear();
  cpu_scores_.clear();
  if (sink_ != nullptr) sink_->bump_counter(sink_source_, "control_intervals");
  return true;
}

void NodeManager::local_step(sim::SimTime now) {
  if (try_quiescent_step(now)) return;
  monitor_.sample(now);

  // Fetch the current VM registry for this host (Nova API in the paper):
  // placement or priority changes since the last interval are picked up here.
  const std::vector<cloud::VmRecord> records = cloud_.vms_on_host(host_);

  std::map<std::string, std::vector<int>> apps;  // high-priority app -> VM ids
  std::vector<int> suspects;                     // low-priority VM ids
  for (const cloud::VmRecord& r : records) {
    if (r.priority == virt::Priority::kHigh && !r.app_id.empty()) {
      apps[r.app_id].push_back(r.id);
    } else if (r.priority == virt::Priority::kLow) {
      suspects.push_back(r.id);
    }
  }

  // §IV-D escalation: two high-priority applications on one host cannot
  // both be protected by throttling third parties — the cloud manager must
  // separate them by migration. Migration mutates cross-host state, so it
  // is only flagged here and runs after the shard-sweep barrier; the next
  // interval sees one group.
  escalation_pending_ = cfg_.escalate_app_collisions && apps.size() > 1;

  bool any_io_contended = false;
  bool any_cpu_contended = false;
  std::vector<int> io_antagonists;
  std::vector<int> cpu_antagonists;
  io_scores_.clear();
  cpu_scores_.clear();

  for (const auto& [app_id, vm_ids] : apps) {
    std::vector<const VmSample*> samples;
    samples.reserve(vm_ids.size());
    for (int id : vm_ids) samples.push_back(monitor_.latest(id));
    const DetectionResult det = detector_.evaluate(samples);

    sim::TimeSeries& io_sig = signal(io_signals_, app_id);
    sim::TimeSeries& cpi_sig = signal(cpi_signals_, app_id);
    io_sig.add(now, det.io_deviation);
    cpi_sig.add(now, det.cpi_deviation);
    if (sink_ != nullptr) {
      const auto cols = sink_columns_.find(app_id);
      if (cols != sink_columns_.end()) {
        sink_->emit_sample(cols->second.io_dev, now, det.io_deviation);
        sink_->emit_sample(cols->second.cpi_dev, now, det.cpi_deviation);
      }
    }
    any_io_contended |= det.io_contended;
    any_cpu_contended |= det.cpu_contended;

    // Correlate the victim signal with every suspect's usage signal.
    std::vector<SuspectSignal> io_suspects;
    std::vector<SuspectSignal> cpu_suspects;
    for (int id : suspects) {
      io_suspects.push_back(SuspectSignal{id, &monitor_.io_throughput_series(id)});
      cpu_suspects.push_back(SuspectSignal{id, &monitor_.llc_miss_series(id)});
    }
    // Record an identification timestamp; emit a report event only when the
    // suspect was not already identified within the memory horizon, so the
    // event stream marks identification *episodes*, not every interval of a
    // sustained one.
    //
    // Blackout guard: while a suspect's monitor is dark, its series carry
    // only zero-fill — no new evidence — so it may KEEP an identification it
    // already earned (the memory horizon decays it) but can never NEWLY
    // cross the threshold. The identifier itself cannot tell "dark" from
    // "idle"; the node manager can, because it owns the monitor.
    const auto record_identification = [&](std::map<int, sim::SimTime>& ids,
                                           std::map<int, sim::SimTime>& first,
                                           const SuspectScore& s, const char* kind) {
      first.try_emplace(s.vm_id, now);
      const auto [it, inserted] = ids.try_emplace(s.vm_id, now);
      const bool fresh = inserted || now - it->second > cfg_.identification_memory_s;
      it->second = now;
      if (fresh && sink_ != nullptr) {
        sink_->emit_event(sink_source_, now, kind + std::string(" vm=") + std::to_string(s.vm_id),
                          s.correlation);
        sink_->bump_counter(sink_source_, std::string(kind) + "_identifications");
      }
    };
    for (const SuspectScore& s : identifier_.score_incremental(io_sig, io_suspects)) {
      io_scores_.push_back(s);
      if (s.antagonist && !monitor_.blacked_out(s.vm_id)) {
        record_identification(io_identified_at_, io_first_identified_, s, "io_antagonist");
      }
    }
    for (const SuspectScore& s : identifier_.score_incremental(cpi_sig, cpu_suspects)) {
      cpu_scores_.push_back(s);
      if (s.antagonist && !monitor_.blacked_out(s.vm_id)) {
        record_identification(cpu_identified_at_, cpu_first_identified_, s, "cpu_antagonist");
      }
    }
  }
  if (sink_ != nullptr) sink_->bump_counter(sink_source_, "control_intervals");

  // A suspect stays identified for a while after its correlation peak: the
  // strongest evidence appears at the antagonist's arrival, which may lead
  // the deviation signal's threshold crossing by an interval or two.
  const auto recently_identified = [&](const std::map<int, sim::SimTime>& ids, int vm_id) {
    const auto it = ids.find(vm_id);
    return it != ids.end() && now - it->second <= cfg_.identification_memory_s;
  };
  if (any_io_contended) {
    for (int id : suspects) {
      if (recently_identified(io_identified_at_, id)) io_antagonists.push_back(id);
    }
  }
  if (any_cpu_contended) {
    for (int id : suspects) {
      if (recently_identified(cpu_identified_at_, id)) cpu_antagonists.push_back(id);
    }
  }

  if (!control_enabled_) return;
  run_resource_control(Resource::kIo, any_io_contended, io_antagonists, now);
  run_resource_control(Resource::kCpu, any_cpu_contended, cpu_antagonists, now);
}

void NodeManager::set_cap_command_loss(double drop_probability, std::uint64_t seed) {
  cap_loss_active_ = true;
  cap_loss_p_ = drop_probability;
  cap_loss_rng_ = sim::Rng(seed);
}

void NodeManager::clear_cap_command_loss() {
  cap_loss_active_ = false;
  cap_loss_p_ = 0.0;
}

void NodeManager::forget_vm(int vm_id) {
  io_controllers_.erase(vm_id);
  cpu_controllers_.erase(vm_id);
  io_identified_at_.erase(vm_id);
  cpu_identified_at_.erase(vm_id);
}

void NodeManager::run_resource_control(Resource res, bool contended,
                                       const std::vector<int>& antagonists, sim::SimTime now) {
  auto& controllers = res == Resource::kIo ? io_controllers_ : cpu_controllers_;
  virt::Hypervisor& hv = hv_;

  // CapCommandLoss fault: each actuation attempt may be silently eaten by
  // the (simulated) lossy control channel. One RNG draw per attempt, from
  // the fault's own stream — engine randomness is never touched.
  const auto actuate = [&](auto&& fn) {
    if (cap_loss_active_ && cap_loss_rng_.bernoulli(cap_loss_p_)) {
      ++cap_commands_dropped_;
      if (sink_ != nullptr) sink_->bump_counter(sink_source_, "cap_commands_dropped");
      return;
    }
    fn();
  };

  // Instantiate controllers for newly identified antagonists; the initial
  // cap equals the VM's currently observed usage (Eq. 1 initialization).
  auto& history = res == Resource::kIo ? io_cap_history_ : cpu_cap_history_;
  for (int vm_id : antagonists) {
    if (controllers.contains(vm_id)) continue;
    const double baseline =
        res == Resource::kIo
            ? std::max(monitor_.observed_io_bps(vm_id), kMinIoBaselineBps)
            : std::max(monitor_.observed_cpu_cores(vm_id), kMinCpuBaselineCores);
    controllers.emplace(vm_id, std::make_unique<CubicController>(cfg_, baseline));
    history.try_emplace(vm_id, sim::TimeSeries("cap-vm-" + std::to_string(vm_id)));
  }

  // Step every active controller. Once a VM is under control it stays
  // under control until the cubic recovery lifts its cap: throttling often
  // destroys the correlation that identified it (its usage signal is
  // flattened), so membership cannot be re-derived each interval.
  for (auto it = controllers.begin(); it != controllers.end();) {
    const int vm_id = it->first;
    CubicController& ctrl = *it->second;
    ctrl.step(contended);
    history.at(vm_id).add(now, ctrl.cap());
    if (sink_ != nullptr) {
      sink_->emit_event(sink_source_, now,
                        (res == Resource::kIo ? "io_cap vm=" : "cpu_cap vm=") +
                            std::to_string(vm_id),
                        ctrl.cap());
    }

    if (ctrl.lifted()) {
      if (res == Resource::kIo) {
        actuate([&] { hv.clear_blkio_throttle(vm_id); });
      } else {
        actuate([&] { hv.clear_vcpu_quota(vm_id); });
      }
      it = controllers.erase(it);
      continue;
    }
    if (res == Resource::kIo) {
      actuate([&] { hv.set_blkio_throttle(vm_id, ctrl.cap_absolute()); });
    } else {
      actuate([&] { hv.set_vcpu_quota(vm_id, ctrl.cap_absolute()); });
    }
    ++it;
  }
}

const sim::TimeSeries& NodeManager::io_signal(const std::string& app_id) const {
  const auto it = io_signals_.find(app_id);
  return it == io_signals_.end() ? kEmptySeries : it->second;
}

const sim::TimeSeries& NodeManager::cpi_signal(const std::string& app_id) const {
  const auto it = cpi_signals_.find(app_id);
  return it == cpi_signals_.end() ? kEmptySeries : it->second;
}

const sim::TimeSeries& NodeManager::io_cap_series(int vm_id) const {
  const auto it = io_cap_history_.find(vm_id);
  return it == io_cap_history_.end() ? kEmptySeries : it->second;
}

const sim::TimeSeries& NodeManager::cpu_cap_series(int vm_id) const {
  const auto it = cpu_cap_history_.find(vm_id);
  return it == cpu_cap_history_.end() ? kEmptySeries : it->second;
}

}  // namespace perfcloud::core
