#include "core/node_manager.hpp"

#include <algorithm>

#include "sim/arena.hpp"

namespace perfcloud::core {

const sim::TimeSeries NodeManager::kEmptySeries{};

namespace {
constexpr double kMinIoBaselineBps = 1.0e6;   // never throttle below-noise usage to zero
constexpr double kMinCpuBaselineCores = 0.2;
}  // namespace

NodeManager::NodeManager(cloud::CloudManager& cloud, std::string host_name, PerfCloudConfig cfg)
    : cloud_(cloud),
      host_(std::move(host_name)),
      hv_(cloud.host(host_)),
      cfg_(cfg),
      monitor_(hv_, cfg),
      detector_(cfg),
      identifier_(cfg) {}

void NodeManager::start() {
  if (started_) return;
  started_ = true;
  cloud_.register_host_pipeline(
      cfg_.sample_interval_s, [this](sim::SimTime now) { local_step(now); },
      [this](sim::SimTime now) { run_pending_escalation(now); });
  // Migration handoff: fires on the engine thread (migrations only happen
  // in barrier phases or engine events), so it may touch this host's state
  // freely.
  cloud_.add_migration_listener([this](const cloud::MigrationEvent& ev) { on_migration(ev); });
}

void NodeManager::on_migration(const cloud::MigrationEvent& ev) {
  if (ev.phase == cloud::MigrationPhase::kDeparting && ev.src == host_) {
    // The VM is still resident here: retire any applied caps through the
    // hypervisor. The cap is control state owned by THIS host's controller;
    // the controller does not travel, so a cap that travelled would throttle
    // the VM forever with nobody tracking it (the destination's controller
    // starts from its own identification). Cleared directly — the lossy
    // cap-command channel models a per-host control path, not the
    // management-plane migration protocol.
    const virt::Vm* vm = hv_.find(ev.vm_id);
    if (vm != nullptr) {
      if (vm->cgroup().blkio_throttle_bps() != hw::kNoCap) hv_.clear_blkio_throttle(ev.vm_id);
      if (vm->cgroup().cpu_quota_cores() != hw::kNoCap) hv_.clear_vcpu_quota(ev.vm_id);
    }
    forget_vm(ev.vm_id);
    monitor_.forget_vm(ev.vm_id);
    identifier_.forget_suspect(ev.vm_id);
  } else if (ev.phase == cloud::MigrationPhase::kArrived && ev.dst == host_) {
    // Stale state from a PREVIOUS residency of this VM here: the monitor
    // slot still holds the old cumulative-counter baseline (the counters
    // kept growing on the other host — the first delta would be a spike)
    // and the identifier's pair columns hold a correlation window against
    // usage observed elsewhere. Retire both; they rebuild from the first
    // post-arrival sample.
    forget_vm(ev.vm_id);
    monitor_.forget_vm(ev.vm_id);
    identifier_.forget_suspect(ev.vm_id);
  }
}

void NodeManager::attach_sink(sim::EmitSink& sink, const std::vector<std::string>& app_ids) {
  sink_ = &sink;
  sink_source_ = sink.add_event_source(host_);
  ctr_intervals_ = sink.add_counter(sink_source_, "control_intervals");
  ctr_io_ident_ = sink.add_counter(sink_source_, "io_antagonist_identifications");
  ctr_cpu_ident_ = sink.add_counter(sink_source_, "cpu_antagonist_identifications");
  ctr_cap_dropped_ = sink.add_counter(sink_source_, "cap_commands_dropped");
  for (const std::string& app : app_ids) {
    const AppId id = cloud_.app_interner().intern(app);
    sink_columns_.try_emplace(
        id, SinkColumns{sink.add_trace_column(host_ + "/" + app + "/io_dev"),
                        sink.add_trace_column(host_ + "/" + app + "/cpi_dev")});
  }
}

sim::TimeSeries& NodeManager::signal(sim::SlotMap<sim::TimeSeries>& store, AppId app) {
  sim::TimeSeries* s = store.find(app);
  if (s == nullptr) {
    // Name the series only on the miss path: building the temporary
    // TimeSeries per lookup would copy the app name string every interval.
    s = store.try_emplace(app, sim::TimeSeries(cloud_.app_interner().name(app))).first;
  }
  return *s;
}

void NodeManager::control_step(sim::SimTime now) {
  local_step(now);
  run_pending_escalation(now);
}

void NodeManager::run_pending_escalation(sim::SimTime now) {
  (void)now;
  if (!escalation_pending_) return;
  escalation_pending_ = false;
  const std::uint64_t version = cloud_.registry_version();
  const int moved = cloud_.resolve_high_priority_collision(host_);
  if (moved == 0 && cloud_.registry_version() == version) {
    // Nothing moved and nothing else changed placement either: the
    // collision is unresolvable until the registry changes. Remember the
    // version so local_step stops re-flagging the same dead end every
    // quantum (any boot/migration/crash/restore re-arms it).
    escalation_noop_version_ = version;
  }
}

void NodeManager::refresh_view() {
  const std::uint64_t version = cloud_.registry_version();
  if (view_version_ == version) return;
  view_version_ = version;
  view_apps_.clear();
  view_suspects_.clear();
  // Fetch the current VM registry for this host (Nova API in the paper):
  // placement or priority changes since the last interval are picked up here.
  cloud_.for_each_vm_on_host(host_, [this](const cloud::VmRecord& r) {
    if (r.priority == virt::Priority::kHigh && r.app != sim::Interner::kInvalid) {
      AppGroup* group = nullptr;
      for (AppGroup& g : view_apps_) {
        if (g.app == r.app) {
          group = &g;
          break;
        }
      }
      if (group == nullptr) {
        group = &view_apps_.emplace_back();
        group->app = r.app;
      }
      group->vm_ids.push_back(r.id);
    } else if (r.priority == virt::Priority::kLow) {
      view_suspects_.push_back(r.id);
    }
  });
  // Name order, not AppId order: the emission and iteration order of the
  // string-keyed maps this view replaced — byte-identity depends on it.
  // (AppId order follows interning order, i.e. boot order, which differs.)
  const sim::Interner& interner = cloud_.app_interner();
  std::sort(view_apps_.begin(), view_apps_.end(),
            [&interner](const AppGroup& a, const AppGroup& b) {
              return interner.name(a.app) < interner.name(b.app);
            });
  cached_protected_apps_ = !view_apps_.empty();
}

bool NodeManager::try_quiescent_step(sim::SimTime now) {
  if (!virt::idle_fastpath_enabled()) return false;
  // Live controllers still step (and actuate) every interval even without
  // contention — the cubic recovery must run to completion.
  if (!io_controllers_.empty() || !cpu_controllers_.empty()) return false;
  if (!hv_.is_quiescent(now) || !monitor_.can_fast_sample()) return false;
  // A host carrying a protected application appends a deviation-signal
  // sample (and possibly sink columns) every interval even when idle, so it
  // must run the full pipeline. The registry view is cached: between
  // placement changes this check is one integer compare, not a scan.
  refresh_view();
  if (cached_protected_apps_) return false;

  // Replay exactly what the full pipeline does on a quiescent, app-free
  // host: settled monitor samples, cleared scores, no escalation, and the
  // interval counter. Detection, identification, and control all reduce to
  // no-ops with no apps and no controllers.
  monitor_.record_settled(now);
  escalation_pending_ = false;
  io_scores_.clear();
  cpu_scores_.clear();
  if (sink_ != nullptr) sink_->bump_counter_id(ctr_intervals_);
  return true;
}

void NodeManager::local_step(sim::SimTime now) {
  if (try_quiescent_step(now)) return;
  monitor_.sample(now);
  refresh_view();

  // §IV-D escalation: two high-priority applications on one host cannot
  // both be protected by throttling third parties — the cloud manager must
  // separate them by migration. Migration mutates cross-host state, so it
  // is only flagged here and runs after the shard-sweep barrier; the next
  // interval sees one group. view_apps_ holds only high-priority apps
  // (refresh_view filters), so low-priority neighbours never trigger this.
  // The no-op guard: when an escalation at this exact registry version
  // already found nothing movable, don't re-flag until placement changes
  // (one integer compare — this line stays on the AllocGate path).
  escalation_pending_ = cfg_.escalate_app_collisions && view_apps_.size() > 1 &&
                        view_version_ != escalation_noop_version_;

  bool any_io_contended = false;
  bool any_cpu_contended = false;
  io_scores_.clear();
  cpu_scores_.clear();

  // Per-quantum scratch lives in the shard's bump arena: rewound when this
  // step returns, reset (consolidated) by the pool at the sweep barrier.
  sim::Arena& arena = sim::scratch_arena();
  const sim::ArenaScope scratch(arena);

  // The suspect signal lists are the same for every application group (they
  // depend only on the registry's suspect set), so gather them once per
  // quantum, above the group loop. Nothing inside the loop mutates the
  // monitor, so the series pointers stay valid throughout.
  sim::ArenaVec<const sim::TimeSeries*> suspect_io(arena);
  sim::ArenaVec<const sim::TimeSeries*> suspect_llc(arena);
  suspect_io.resize(view_suspects_.size());
  suspect_llc.resize(view_suspects_.size());
  monitor_.series_batch({view_suspects_.data(), view_suspects_.size()}, suspect_io.data(),
                        suspect_llc.data());
  sim::ArenaVec<SuspectSignal> io_suspects(arena);
  sim::ArenaVec<SuspectSignal> cpu_suspects(arena);
  io_suspects.reserve(view_suspects_.size());
  cpu_suspects.reserve(view_suspects_.size());
  for (std::size_t i = 0; i < view_suspects_.size(); ++i) {
    io_suspects.push_back(SuspectSignal{view_suspects_[i], suspect_io[i]});
    cpu_suspects.push_back(SuspectSignal{view_suspects_[i], suspect_llc[i]});
  }

  for (const AppGroup& g : view_apps_) {
    // Per-app scratch rewinds before the next group runs, so the arena's
    // high-water mark scales with the largest group, not the sum.
    const sim::ArenaScope app_scratch(arena);
    sim::ArenaVec<const VmSample*> samples(arena);
    samples.resize(g.vm_ids.size());
    monitor_.latest_batch({g.vm_ids.data(), g.vm_ids.size()}, samples.data());
    const DetectionResult det = detector_.evaluate({samples.data(), samples.size()});

    sim::TimeSeries& io_sig = signal(io_signals_, g.app);
    sim::TimeSeries& cpi_sig = signal(cpi_signals_, g.app);
    io_sig.add(now, det.io_deviation);
    cpi_sig.add(now, det.cpi_deviation);
    if (sink_ != nullptr) {
      const SinkColumns* cols = sink_columns_.find(g.app);
      if (cols != nullptr) {
        sink_->emit_sample(cols->io_dev, now, det.io_deviation);
        sink_->emit_sample(cols->cpi_dev, now, det.cpi_deviation);
      }
    }
    any_io_contended |= det.io_contended;
    any_cpu_contended |= det.cpu_contended;

    // Record an identification timestamp; emit a report event only when the
    // suspect was not already identified within the memory horizon, so the
    // event stream marks identification *episodes*, not every interval of a
    // sustained one.
    //
    // Blackout guard: while a suspect's monitor is dark, its series carry
    // only zero-fill — no new evidence — so it may KEEP an identification it
    // already earned (the memory horizon decays it) but can never NEWLY
    // cross the threshold. The identifier itself cannot tell "dark" from
    // "idle"; the node manager can, because it owns the monitor.
    const auto record_identification = [&](sim::SlotMap<sim::SimTime>& ids,
                                           std::map<int, sim::SimTime>& first,
                                           const SuspectScore& s, const char* kind,
                                           sim::EmitSink::CounterId ctr) {
      first.try_emplace(s.vm_id, now);
      const auto [stamp, inserted] = ids.try_emplace(s.vm_id, now);
      const bool fresh = inserted || now - *stamp > cfg_.identification_memory_s;
      *stamp = now;
      if (fresh && sink_ != nullptr) {
        sink_->emit_event(sink_source_, now, kind + std::string(" vm=") + std::to_string(s.vm_id),
                          s.correlation);
        sink_->bump_counter_id(ctr);
      }
    };
    // Victim keys 2*app / 2*app+1: stable per deviation signal for the run's
    // lifetime (AppIds are never reassigned), per the identifier's contract.
    const std::size_t io_start = io_scores_.size();
    identifier_.score_incremental(2 * g.app, io_sig, {io_suspects.data(), io_suspects.size()},
                                  io_scores_);
    for (std::size_t i = io_start; i < io_scores_.size(); ++i) {
      const SuspectScore& s = io_scores_[i];
      if (s.antagonist && !monitor_.blacked_out(s.vm_id)) {
        record_identification(io_identified_at_, io_first_identified_, s, "io_antagonist",
                              ctr_io_ident_);
      }
    }
    const std::size_t cpu_start = cpu_scores_.size();
    identifier_.score_incremental(2 * g.app + 1, cpi_sig,
                                  {cpu_suspects.data(), cpu_suspects.size()}, cpu_scores_);
    for (std::size_t i = cpu_start; i < cpu_scores_.size(); ++i) {
      const SuspectScore& s = cpu_scores_[i];
      if (s.antagonist && !monitor_.blacked_out(s.vm_id)) {
        record_identification(cpu_identified_at_, cpu_first_identified_, s, "cpu_antagonist",
                              ctr_cpu_ident_);
      }
    }
  }
  if (sink_ != nullptr) sink_->bump_counter_id(ctr_intervals_);

  // A suspect stays identified for a while after its correlation peak: the
  // strongest evidence appears at the antagonist's arrival, which may lead
  // the deviation signal's threshold crossing by an interval or two.
  const auto recently_identified = [&](const sim::SlotMap<sim::SimTime>& ids, int vm_id) {
    const sim::SimTime* t = ids.find(vm_id);
    return t != nullptr && now - *t <= cfg_.identification_memory_s;
  };
  sim::ArenaVec<int> io_antagonists(arena);
  sim::ArenaVec<int> cpu_antagonists(arena);
  if (any_io_contended) {
    for (int id : view_suspects_) {
      if (recently_identified(io_identified_at_, id)) io_antagonists.push_back(id);
    }
  }
  if (any_cpu_contended) {
    for (int id : view_suspects_) {
      if (recently_identified(cpu_identified_at_, id)) cpu_antagonists.push_back(id);
    }
  }

  if (!control_enabled_) return;
  run_resource_control(Resource::kIo, any_io_contended,
                       {io_antagonists.data(), io_antagonists.size()}, now);
  run_resource_control(Resource::kCpu, any_cpu_contended,
                       {cpu_antagonists.data(), cpu_antagonists.size()}, now);
}

void NodeManager::set_cap_command_loss(double drop_probability, std::uint64_t seed) {
  cap_loss_active_ = true;
  cap_loss_p_ = drop_probability;
  cap_loss_rng_ = sim::Rng(seed);
}

void NodeManager::clear_cap_command_loss() {
  cap_loss_active_ = false;
  cap_loss_p_ = 0.0;
}

void NodeManager::forget_vm(int vm_id) {
  io_controllers_.erase(vm_id);
  cpu_controllers_.erase(vm_id);
  io_identified_at_.erase(vm_id);
  cpu_identified_at_.erase(vm_id);
}

void NodeManager::run_resource_control(Resource res, bool contended,
                                       std::span<const int> antagonists, sim::SimTime now) {
  auto& controllers = res == Resource::kIo ? io_controllers_ : cpu_controllers_;
  virt::Hypervisor& hv = hv_;

  // CapCommandLoss fault: each actuation attempt may be silently eaten by
  // the (simulated) lossy control channel. One RNG draw per attempt, from
  // the fault's own stream — engine randomness is never touched.
  const auto actuate = [&](auto&& fn) {
    if (cap_loss_active_ && cap_loss_rng_.bernoulli(cap_loss_p_)) {
      ++cap_commands_dropped_;
      if (sink_ != nullptr) sink_->bump_counter_id(ctr_cap_dropped_);
      return;
    }
    fn();
  };

  // Instantiate controllers for newly identified antagonists; the initial
  // cap equals the VM's currently observed usage (Eq. 1 initialization).
  auto& history = res == Resource::kIo ? io_cap_history_ : cpu_cap_history_;
  for (int vm_id : antagonists) {
    if (controllers.contains(vm_id)) continue;
    const double baseline =
        res == Resource::kIo
            ? std::max(monitor_.observed_io_bps(vm_id), kMinIoBaselineBps)
            : std::max(monitor_.observed_cpu_cores(vm_id), kMinCpuBaselineCores);
    controllers.try_emplace(vm_id, CubicController(cfg_, baseline));
    if (!history.contains(vm_id)) {
      history.try_emplace(vm_id, sim::TimeSeries("cap-vm-" + std::to_string(vm_id)));
    }
  }

  // Step every active controller, in ascending VM-id order (the iteration
  // order of the map this store replaced — the event stream depends on it).
  // Once a VM is under control it stays under control until the cubic
  // recovery lifts its cap: throttling often destroys the correlation that
  // identified it (its usage signal is flattened), so membership cannot be
  // re-derived each interval.
  for (int vm_id = controllers.first_key(); vm_id != sim::SlotMap<CubicController>::kEnd;) {
    const int next_id = controllers.next_key(vm_id);
    CubicController& ctrl = controllers.at(vm_id);
    ctrl.step(contended);
    history.at(vm_id).add(now, ctrl.cap());
    if (sink_ != nullptr) {
      sink_->emit_event(sink_source_, now,
                        (res == Resource::kIo ? "io_cap vm=" : "cpu_cap vm=") +
                            std::to_string(vm_id),
                        ctrl.cap());
    }

    if (ctrl.lifted()) {
      if (res == Resource::kIo) {
        actuate([&] { hv.clear_blkio_throttle(vm_id); });
      } else {
        actuate([&] { hv.clear_vcpu_quota(vm_id); });
      }
      controllers.erase(vm_id);
    } else {
      if (res == Resource::kIo) {
        actuate([&] { hv.set_blkio_throttle(vm_id, ctrl.cap_absolute()); });
      } else {
        actuate([&] { hv.set_vcpu_quota(vm_id, ctrl.cap_absolute()); });
      }
    }
    vm_id = next_id;
  }
}

const sim::TimeSeries& NodeManager::io_signal(std::string_view app_id) const {
  const AppId app = cloud_.app_interner().lookup(app_id);
  const sim::TimeSeries* s = app == sim::Interner::kInvalid ? nullptr : io_signals_.find(app);
  return s == nullptr ? kEmptySeries : *s;
}

const sim::TimeSeries& NodeManager::cpi_signal(std::string_view app_id) const {
  const AppId app = cloud_.app_interner().lookup(app_id);
  const sim::TimeSeries* s = app == sim::Interner::kInvalid ? nullptr : cpi_signals_.find(app);
  return s == nullptr ? kEmptySeries : *s;
}

const sim::TimeSeries& NodeManager::io_cap_series(int vm_id) const {
  const sim::TimeSeries* s = io_cap_history_.find(vm_id);
  return s == nullptr ? kEmptySeries : *s;
}

const sim::TimeSeries& NodeManager::cpu_cap_series(int vm_id) const {
  const sim::TimeSeries* s = cpu_cap_history_.find(vm_id);
  return s == nullptr ? kEmptySeries : *s;
}

}  // namespace perfcloud::core
