#include "core/monitor.hpp"

namespace perfcloud::core {

const sim::TimeSeries PerformanceMonitor::kEmptySeries{};

PerformanceMonitor::PerVm& PerformanceMonitor::state(int vm_id) {
  const auto [s, inserted] = vms_.try_emplace(vm_id);
  if (inserted) {
    s->iowait_ratio = sim::Ewma(cfg_.ewma_alpha);
    s->cpi = sim::Ewma(cfg_.ewma_alpha);
    s->io_bps = sim::Ewma(cfg_.ewma_alpha);
    s->llc_rate = sim::Ewma(cfg_.ewma_alpha);
    s->cpu_cores = sim::Ewma(cfg_.ewma_alpha);
    s->io_series.set_capacity(cfg_.monitor_series_capacity);
    s->llc_series.set_capacity(cfg_.monitor_series_capacity);
  }
  return *s;
}

void PerformanceMonitor::sample(sim::SimTime now) {
  const double dt = cfg_.sample_interval_s;
  // Settledness for the fast path: every VM primed and every delta zero.
  // Recorded against the hypervisor's activity epoch BEFORE the counter
  // reads — if activity lands mid-sample the recorded epoch is stale and
  // can_fast_sample stays false, which is the safe direction.
  bool all_settled = !blackout_all_ && blackout_.empty();
  const std::uint64_t epoch = hv_.activity_epoch();
  for (const auto& vm : hv_.vms()) {
    PerVm& s = state(vm->id());
    if (blackout_all_ || blackout_.contains(vm->id())) {
      // Dark: record nothing, and forget the counter baseline so the first
      // post-blackout interval re-primes instead of emitting the cumulative
      // delta of the whole dark period as one spike.
      s.has_prev = false;
      s.has_latest = false;
      continue;
    }
    const virt::CgroupStats& cur = vm->cgroup().stats();
    if (!s.has_prev) {
      s.prev = cur;
      s.has_prev = true;
      all_settled = false;
      continue;
    }
    const double d_wait_ms = cur.io_wait_time_ms - s.prev.io_wait_time_ms;
    const double d_ops = cur.io_serviced_ops - s.prev.io_serviced_ops;
    const double d_bytes = cur.io_service_bytes - s.prev.io_service_bytes;
    const double d_cycles = cur.cycles - s.prev.cycles;
    const double d_instr = cur.instructions - s.prev.instructions;
    const double d_misses = cur.llc_misses - s.prev.llc_misses;
    const double d_cpu = cur.cpu_time_s - s.prev.cpu_time_s;
    s.prev = cur;
    all_settled = all_settled && d_wait_ms == 0.0 && d_ops == 0.0 && d_bytes == 0.0 &&
                  d_cycles == 0.0 && d_instr == 0.0 && d_misses == 0.0 && d_cpu == 0.0;

    // The first EWMA update of a metric is the raw sample — one noisy
    // interval would masquerade as a trend. Deviations are only meaningful
    // once every contributing VM's smoother is warmed, so a metric is
    // reported from its second update onward.
    VmSample sample;
    if (d_ops >= cfg_.min_ops_per_interval) {
      const double v = s.iowait_ratio.update(d_wait_ms / d_ops);
      if (++s.iowait_updates >= 2) sample.iowait_ratio_ms = v;
    }
    if (d_instr > 0.0) {
      const double v = s.cpi.update(d_cycles / d_instr);
      if (++s.cpi_updates >= 2) sample.cpi = v;
    }
    sample.io_throughput_bps = s.io_bps.update(d_bytes / dt);
    sample.io_ops_per_s = d_ops / dt;
    sample.cpu_usage_cores = s.cpu_cores.update(d_cpu / dt);
    // "LLC miss rates are not counted when the VM is not running any
    // workload" (§III-B): a sample exists only when the VM burned CPU.
    if (d_cpu > 0.05 * dt) {
      sample.llc_miss_rate = s.llc_rate.update(d_misses / dt);
      s.llc_series.add(now, *sample.llc_miss_rate);
    }
    s.io_series.add(now, sample.io_throughput_bps);

    s.latest = sample;
    s.has_latest = true;
  }
  settled_ = all_settled;
  settled_epoch_ = epoch;
}

bool PerformanceMonitor::can_fast_sample() const {
  return settled_ && settled_epoch_ == hv_.activity_epoch() && !blackout_all_ &&
         blackout_.empty();
}

void PerformanceMonitor::record_settled(sim::SimTime now) {
  for (const auto& vm : hv_.vms()) {
    PerVm& s = state(vm->id());
    // Exactly what the zero-delta branch of sample() records: the gated
    // metrics (iowait, CPI, LLC) skip, the always-on smoothers decay on a
    // zero sample, and the throughput series gains one point.
    VmSample sample;
    sample.io_throughput_bps = s.io_bps.update(0.0);
    sample.io_ops_per_s = 0.0;
    sample.cpu_usage_cores = s.cpu_cores.update(0.0);
    s.io_series.add(now, sample.io_throughput_bps);
    s.latest = sample;
    s.has_latest = true;
  }
}

void PerformanceMonitor::forget_vm(int vm_id) {
  vms_.erase(vm_id);
  // The slot population changed; force the next sample down the full path
  // (eviction/adoption bumped the hypervisor's activity epoch anyway, but
  // don't rely on it from here).
  settled_ = false;
}

void PerformanceMonitor::set_blackout(int vm_id, bool dark) {
  if (dark) {
    blackout_.insert(vm_id);
  } else {
    blackout_.erase(vm_id);
  }
  settled_ = false;
}

void PerformanceMonitor::set_blackout_all(bool dark) {
  blackout_all_ = dark;
  settled_ = false;
}

const VmSample* PerformanceMonitor::latest(int vm_id) const {
  const PerVm* s = vms_.find(vm_id);
  if (s == nullptr || !s->has_latest) return nullptr;
  return &s->latest;
}

const sim::TimeSeries& PerformanceMonitor::io_throughput_series(int vm_id) const {
  const PerVm* s = vms_.find(vm_id);
  return s == nullptr ? kEmptySeries : s->io_series;
}

const sim::TimeSeries& PerformanceMonitor::llc_miss_series(int vm_id) const {
  const PerVm* s = vms_.find(vm_id);
  return s == nullptr ? kEmptySeries : s->llc_series;
}

double PerformanceMonitor::observed_io_bps(int vm_id) const {
  const PerVm* s = vms_.find(vm_id);
  return s == nullptr ? 0.0 : s->io_bps.value();
}

double PerformanceMonitor::observed_cpu_cores(int vm_id) const {
  const PerVm* s = vms_.find(vm_id);
  return s == nullptr ? 0.0 : s->cpu_cores.value();
}

double PerformanceMonitor::observed_llc_rate(int vm_id) const {
  const PerVm* s = vms_.find(vm_id);
  return s == nullptr ? 0.0 : s->llc_rate.value();
}

}  // namespace perfcloud::core
