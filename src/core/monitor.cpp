#include "core/monitor.hpp"

namespace perfcloud::core {

const sim::TimeSeries PerformanceMonitor::kEmptySeries{};

namespace {

/// One EWMA lane step, identical to sim::Ewma::update: the first sample
/// seeds the value raw, later samples fold in with weight alpha.
inline double ewma_step(double& value, std::uint8_t& seeded, double alpha, double sample) {
  if (seeded == 0) {
    value = sample;
    seeded = 1;
  } else {
    value = alpha * sample + (1.0 - alpha) * value;
  }
  return value;
}

}  // namespace

void PerformanceMonitor::push_row() {
  prev_.emplace_back();
  has_prev_.push_back(0);
  iowait_updates_.push_back(0);
  cpi_updates_.push_back(0);
  ew_iowait_.push_back(0.0);
  ew_cpi_.push_back(0.0);
  ew_io_bps_.push_back(0.0);
  ew_llc_.push_back(0.0);
  ew_cpu_.push_back(0.0);
  sd_iowait_.push_back(0);
  sd_cpi_.push_back(0);
  sd_io_bps_.push_back(0);
  sd_llc_.push_back(0);
  sd_cpu_.push_back(0);
  latest_.emplace_back();
  has_latest_.push_back(0);
  io_series_.emplace_back();
  llc_series_.emplace_back();
}

void PerformanceMonitor::reset_row(std::uint32_t r) {
  prev_[r] = virt::CgroupStats{};
  has_prev_[r] = 0;
  iowait_updates_[r] = 0;
  cpi_updates_[r] = 0;
  ew_iowait_[r] = 0.0;
  ew_cpi_[r] = 0.0;
  ew_io_bps_[r] = 0.0;
  ew_llc_[r] = 0.0;
  ew_cpu_[r] = 0.0;
  sd_iowait_[r] = 0;
  sd_cpi_[r] = 0;
  sd_io_bps_[r] = 0;
  sd_llc_[r] = 0;
  sd_cpu_[r] = 0;
  latest_[r] = VmSample{};
  has_latest_[r] = 0;
  io_series_[r].clear();
  llc_series_[r].clear();
}

std::uint32_t PerformanceMonitor::row(int vm_id) {
  const auto [slot, inserted] = row_of_.try_emplace(vm_id, 0u);
  if (!inserted) return *slot;
  std::uint32_t r;
  if (!free_rows_.empty()) {
    r = free_rows_.back();
    free_rows_.pop_back();
    reset_row(r);
  } else {
    r = static_cast<std::uint32_t>(prev_.size());
    push_row();
  }
  io_series_[r].set_capacity(cfg_.monitor_series_capacity);
  llc_series_[r].set_capacity(cfg_.monitor_series_capacity);
  *slot = r;
  return r;
}

void PerformanceMonitor::sample(sim::SimTime now) {
  const double dt = cfg_.sample_interval_s;
  const double alpha = cfg_.ewma_alpha;
  // Settledness for the fast path: every VM primed and every delta zero.
  // Recorded against the hypervisor's activity epoch BEFORE the counter
  // reads — if activity lands mid-sample the recorded epoch is stale and
  // can_fast_sample stays false, which is the safe direction.
  bool all_settled = !blackout_all_ && blackout_.empty();
  const std::uint64_t epoch = hv_.activity_epoch();
  const bool any_dark = blackout_all_ || !blackout_.empty();

  // Phase 1 — gather: one walk over the resident VMs folds the counter
  // reads into flat delta columns. The rare lanes (dark, unprimed) resolve
  // here and never enter the batch.
  rows_.clear();
  d_wait_ms_.clear();
  d_ops_.clear();
  d_bytes_.clear();
  d_cycles_.clear();
  d_instr_.clear();
  d_misses_.clear();
  d_cpu_.clear();
  for (const auto& vm : hv_.vms()) {
    const std::uint32_t r = row(vm->id());
    if (any_dark && (blackout_all_ || blackout_.contains(vm->id()))) {
      // Dark: record nothing, and forget the counter baseline so the first
      // post-blackout interval re-primes instead of emitting the cumulative
      // delta of the whole dark period as one spike.
      has_prev_[r] = 0;
      has_latest_[r] = 0;
      continue;
    }
    const virt::CgroupStats& cur = vm->cgroup().stats();
    if (has_prev_[r] == 0) {
      prev_[r] = cur;
      has_prev_[r] = 1;
      all_settled = false;
      continue;
    }
    virt::CgroupStats& prev = prev_[r];
    const double d_wait_ms = cur.io_wait_time_ms - prev.io_wait_time_ms;
    const double d_ops = cur.io_serviced_ops - prev.io_serviced_ops;
    const double d_bytes = cur.io_service_bytes - prev.io_service_bytes;
    const double d_cycles = cur.cycles - prev.cycles;
    const double d_instr = cur.instructions - prev.instructions;
    const double d_misses = cur.llc_misses - prev.llc_misses;
    const double d_cpu = cur.cpu_time_s - prev.cpu_time_s;
    prev = cur;
    all_settled = all_settled && d_wait_ms == 0.0 && d_ops == 0.0 && d_bytes == 0.0 &&
                  d_cycles == 0.0 && d_instr == 0.0 && d_misses == 0.0 && d_cpu == 0.0;
    rows_.push_back(r);
    d_wait_ms_.push_back(d_wait_ms);
    d_ops_.push_back(d_ops);
    d_bytes_.push_back(d_bytes);
    d_cycles_.push_back(d_cycles);
    d_instr_.push_back(d_instr);
    d_misses_.push_back(d_misses);
    d_cpu_.push_back(d_cpu);
  }

  // Phase 2 — kernels: one loop per metric over the batch. Every lane's
  // arithmetic is confined to its own row's columns, so running the lanes
  // metric-major instead of VM-major changes no individual result.
  const std::size_t n = rows_.size();
  for (std::size_t k = 0; k < n; ++k) {
    latest_[rows_[k]] = VmSample{};
    has_latest_[rows_[k]] = 1;
  }
  // The first EWMA update of a metric is the raw sample — one noisy
  // interval would masquerade as a trend. Deviations are only meaningful
  // once every contributing VM's smoother is warmed, so a metric is
  // reported from its second update onward.
  for (std::size_t k = 0; k < n; ++k) {
    if (d_ops_[k] >= cfg_.min_ops_per_interval) {
      const std::uint32_t r = rows_[k];
      const double v = ewma_step(ew_iowait_[r], sd_iowait_[r], alpha, d_wait_ms_[k] / d_ops_[k]);
      if (++iowait_updates_[r] >= 2) latest_[r].iowait_ratio_ms = v;
    }
  }
  for (std::size_t k = 0; k < n; ++k) {
    if (d_instr_[k] > 0.0) {
      const std::uint32_t r = rows_[k];
      const double v = ewma_step(ew_cpi_[r], sd_cpi_[r], alpha, d_cycles_[k] / d_instr_[k]);
      if (++cpi_updates_[r] >= 2) latest_[r].cpi = v;
    }
  }
  for (std::size_t k = 0; k < n; ++k) {
    const std::uint32_t r = rows_[k];
    latest_[r].io_throughput_bps = ewma_step(ew_io_bps_[r], sd_io_bps_[r], alpha, d_bytes_[k] / dt);
    latest_[r].io_ops_per_s = d_ops_[k] / dt;
  }
  for (std::size_t k = 0; k < n; ++k) {
    const std::uint32_t r = rows_[k];
    latest_[r].cpu_usage_cores = ewma_step(ew_cpu_[r], sd_cpu_[r], alpha, d_cpu_[k] / dt);
  }
  // "LLC miss rates are not counted when the VM is not running any
  // workload" (§III-B): a sample exists only when the VM burned CPU.
  for (std::size_t k = 0; k < n; ++k) {
    if (d_cpu_[k] > 0.05 * dt) {
      const std::uint32_t r = rows_[k];
      const double v = ewma_step(ew_llc_[r], sd_llc_[r], alpha, d_misses_[k] / dt);
      latest_[r].llc_miss_rate = v;
      llc_series_[r].add(now, v);
    }
  }
  for (std::size_t k = 0; k < n; ++k) {
    const std::uint32_t r = rows_[k];
    io_series_[r].add(now, latest_[r].io_throughput_bps);
  }

  settled_ = all_settled;
  settled_epoch_ = epoch;
}

bool PerformanceMonitor::can_fast_sample() const {
  return settled_ && settled_epoch_ == hv_.activity_epoch() && !blackout_all_ &&
         blackout_.empty();
}

void PerformanceMonitor::record_settled(sim::SimTime now) {
  const double alpha = cfg_.ewma_alpha;
  for (const auto& vm : hv_.vms()) {
    const std::uint32_t r = row(vm->id());
    // Exactly what the zero-delta branch of sample() records: the gated
    // metrics (iowait, CPI, LLC) skip, the always-on smoothers decay on a
    // zero sample, and the throughput series gains one point.
    VmSample sample;
    sample.io_throughput_bps = ewma_step(ew_io_bps_[r], sd_io_bps_[r], alpha, 0.0);
    sample.io_ops_per_s = 0.0;
    sample.cpu_usage_cores = ewma_step(ew_cpu_[r], sd_cpu_[r], alpha, 0.0);
    io_series_[r].add(now, sample.io_throughput_bps);
    latest_[r] = sample;
    has_latest_[r] = 1;
  }
}

void PerformanceMonitor::forget_vm(int vm_id) {
  const std::uint32_t* r = row_of_.find(vm_id);
  if (r != nullptr) {
    free_rows_.push_back(*r);
    row_of_.erase(vm_id);
  }
  // The row population changed; force the next sample down the full path
  // (eviction/adoption bumped the hypervisor's activity epoch anyway, but
  // don't rely on it from here).
  settled_ = false;
}

void PerformanceMonitor::set_blackout(int vm_id, bool dark) {
  if (dark) {
    blackout_.insert(vm_id);
  } else {
    blackout_.erase(vm_id);
  }
  settled_ = false;
}

void PerformanceMonitor::set_blackout_all(bool dark) {
  blackout_all_ = dark;
  settled_ = false;
}

const VmSample* PerformanceMonitor::latest(int vm_id) const {
  const std::uint32_t* r = row_of_.find(vm_id);
  if (r == nullptr || has_latest_[*r] == 0) return nullptr;
  return &latest_[*r];
}

void PerformanceMonitor::latest_batch(std::span<const int> ids, const VmSample** out) const {
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const std::uint32_t* r = row_of_.find(ids[i]);
    out[i] = (r == nullptr || has_latest_[*r] == 0) ? nullptr : &latest_[*r];
  }
}

const sim::TimeSeries& PerformanceMonitor::io_throughput_series(int vm_id) const {
  const std::uint32_t* r = row_of_.find(vm_id);
  return r == nullptr ? kEmptySeries : io_series_[*r];
}

const sim::TimeSeries& PerformanceMonitor::llc_miss_series(int vm_id) const {
  const std::uint32_t* r = row_of_.find(vm_id);
  return r == nullptr ? kEmptySeries : llc_series_[*r];
}

void PerformanceMonitor::series_batch(std::span<const int> ids, const sim::TimeSeries** io_out,
                                      const sim::TimeSeries** llc_out) const {
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const std::uint32_t* r = row_of_.find(ids[i]);
    io_out[i] = r == nullptr ? &kEmptySeries : &io_series_[*r];
    llc_out[i] = r == nullptr ? &kEmptySeries : &llc_series_[*r];
  }
}

double PerformanceMonitor::observed_io_bps(int vm_id) const {
  const std::uint32_t* r = row_of_.find(vm_id);
  return r == nullptr ? 0.0 : ew_io_bps_[*r];
}

double PerformanceMonitor::observed_cpu_cores(int vm_id) const {
  const std::uint32_t* r = row_of_.find(vm_id);
  return r == nullptr ? 0.0 : ew_cpu_[*r];
}

double PerformanceMonitor::observed_llc_rate(int vm_id) const {
  const std::uint32_t* r = row_of_.find(vm_id);
  return r == nullptr ? 0.0 : ew_llc_[*r];
}

}  // namespace perfcloud::core
