#include "core/detector.hpp"

#include "sim/stats.hpp"

namespace perfcloud::core {

DetectionResult InterferenceDetector::evaluate(std::span<const VmSample* const> app_vms) const {
  std::vector<double>& ratios = ratios_;
  std::vector<double>& cpis = cpis_;
  ratios.clear();
  cpis.clear();
  for (const VmSample* s : app_vms) {
    if (s == nullptr) continue;
    if (s->iowait_ratio_ms) ratios.push_back(*s->iowait_ratio_ms);
    if (s->cpi) cpis.push_back(*s->cpi);
  }
  DetectionResult r;
  r.io_samples = ratios.size();
  r.cpi_samples = cpis.size();
  r.io_deviation = sim::stddev_of(ratios);
  r.cpi_deviation = sim::stddev_of(cpis);
  r.io_contended = r.io_deviation > cfg_.io_deviation_threshold;
  r.cpu_contended = r.cpi_deviation > cfg_.cpi_deviation_threshold;
  return r;
}

}  // namespace perfcloud::core
