// Antagonist identification by online cross-correlation (§III-B).
//
// A colocated low-priority VM is an antagonist for a resource when the
// Pearson correlation between the victim application's deviation signal and
// the suspect's resource-usage signal (I/O throughput for disk, LLC miss
// rate for processor resources) reaches the threshold. Suspect samples
// missing at some victim sample times are treated as zero.
#pragma once

#include <vector>

#include "core/config.hpp"
#include "sim/time_series.hpp"

namespace perfcloud::core {

struct SuspectSignal {
  int vm_id = 0;
  const sim::TimeSeries* series = nullptr;
};

struct SuspectScore {
  int vm_id = 0;
  double correlation = 0.0;
  bool antagonist = false;
};

class AntagonistIdentifier {
 public:
  explicit AntagonistIdentifier(PerfCloudConfig cfg) : cfg_(cfg) {}

  /// Score every suspect against the victim deviation signal. Returns an
  /// empty vector until the victim signal has the configured minimum number
  /// of samples (Fig 5c: three suffice).
  [[nodiscard]] std::vector<SuspectScore> score(const sim::TimeSeries& victim_signal,
                                                const std::vector<SuspectSignal>& suspects) const;

 private:
  PerfCloudConfig cfg_;
};

}  // namespace perfcloud::core
