// Antagonist identification by online cross-correlation (§III-B).
//
// A colocated low-priority VM is an antagonist for a resource when the
// Pearson correlation between the victim application's deviation signal and
// the suspect's resource-usage signal (I/O throughput for disk, LLC miss
// rate for processor resources) reaches the threshold. Suspect samples
// missing at some victim sample times are treated as zero.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/config.hpp"
#include "sim/rolling_correlation.hpp"
#include "sim/slot_store.hpp"
#include "sim/time_series.hpp"

namespace perfcloud::core {

struct SuspectSignal {
  int vm_id = 0;
  const sim::TimeSeries* series = nullptr;
};

struct SuspectScore {
  int vm_id = 0;
  double correlation = 0.0;
  bool antagonist = false;
};

class AntagonistIdentifier {
 public:
  /// Stable caller-assigned identity of one victim deviation signal. One
  /// identifier serves several victim signals (I/O and CPI, per
  /// application); keys must be small non-negative ints, distinct per
  /// signal, and must never be reassigned to a different series while the
  /// old one's window is still relevant. The node manager uses
  /// 2*app / 2*app+1 for an application's I/O / CPI signals.
  ///
  /// (Earlier revisions keyed pair state by the victim's TimeSeries
  /// address, which could silently resurrect a dead victim's accumulators
  /// when the allocator reused the address — an ABA hazard the explicit
  /// key removes.)
  using VictimKey = std::int32_t;

  explicit AntagonistIdentifier(PerfCloudConfig cfg) : cfg_(cfg) {}

  /// Score every suspect against the victim deviation signal. Appends
  /// nothing until the victim signal has the configured minimum number of
  /// samples (Fig 5c: three suffice).
  ///
  /// Batch path: re-aligns and re-sums the whole correlation window,
  /// O(window + log n) per suspect per call. Kept for one-shot analyses
  /// (figure benches) and as the reference the incremental path is tested
  /// against.
  [[nodiscard]] std::vector<SuspectScore> score(const sim::TimeSeries& victim_signal,
                                                std::span<const SuspectSignal> suspects) const;

  /// Same scores, computed incrementally: per (victim key, suspect VM) pair
  /// a RollingCorrelation accumulator ingests only the victim samples that
  /// arrived since the previous call (normally one per control interval),
  /// aligning each against the suspect at that timestamp (missing -> 0).
  /// Amortized O(1) per suspect per call instead of O(window + log n).
  /// Appends this call's scores to `out` (the hot path accumulates scores
  /// of several victim signals in one retained vector — no per-call
  /// allocation once warm).
  ///
  /// Requirements: the suspect series objects must be stable in memory for
  /// the duration of the call, and the victim series append-only in time
  /// between calls under the same key. A victim series that shrank
  /// (cleared) resets its pair states. Bounded (ring-buffer) suspect series
  /// are fine as long as their capacity covers the correlation window.
  void score_incremental(VictimKey victim, const sim::TimeSeries& victim_signal,
                         std::span<const SuspectSignal> suspects,
                         std::vector<SuspectScore>& out);

  /// Convenience wrapper returning a fresh vector (tests, benches).
  [[nodiscard]] std::vector<SuspectScore> score_incremental(
      VictimKey victim, const sim::TimeSeries& victim_signal,
      std::span<const SuspectSignal> suspects);

  /// Migration handoff: drop the suspect's pair state under EVERY victim
  /// key. Its correlation windows hold usage observed on this host; if the
  /// VM returns after living elsewhere, scoring must restart from fresh
  /// accumulators, not resume a stale window. Unknown ids are a no-op.
  void forget_suspect(int vm_id);

 private:
  struct PairState {
    sim::RollingCorrelation corr;
    std::size_t consumed = 0;  ///< Victim samples already pushed.
  };

  PairState& pair_state(VictimKey victim, int vm_id, const sim::TimeSeries& victim_signal);

  PerfCloudConfig cfg_;
  /// pairs_[victim key][suspect VM id]: dense slot stores, two array
  /// indexes per lookup on the hot path. Entries for departed suspects
  /// linger; the population is bounded by VMs-per-host.
  sim::SlotMap<sim::SlotMap<PairState>> pairs_;
  /// Per-call scratch for the §III-B magnitude gate, capacity retained.
  std::vector<double> usage_;
};

}  // namespace perfcloud::core
