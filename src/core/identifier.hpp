// Antagonist identification by online cross-correlation (§III-B).
//
// A colocated low-priority VM is an antagonist for a resource when the
// Pearson correlation between the victim application's deviation signal and
// the suspect's resource-usage signal (I/O throughput for disk, LLC miss
// rate for processor resources) reaches the threshold. Suspect samples
// missing at some victim sample times are treated as zero.
#pragma once

#include <map>
#include <utility>
#include <vector>

#include "core/config.hpp"
#include "sim/rolling_correlation.hpp"
#include "sim/time_series.hpp"

namespace perfcloud::core {

struct SuspectSignal {
  int vm_id = 0;
  const sim::TimeSeries* series = nullptr;
};

struct SuspectScore {
  int vm_id = 0;
  double correlation = 0.0;
  bool antagonist = false;
};

class AntagonistIdentifier {
 public:
  explicit AntagonistIdentifier(PerfCloudConfig cfg) : cfg_(cfg) {}

  /// Score every suspect against the victim deviation signal. Returns an
  /// empty vector until the victim signal has the configured minimum number
  /// of samples (Fig 5c: three suffice).
  ///
  /// Batch path: re-aligns and re-sums the whole correlation window,
  /// O(window + log n) per suspect per call. Kept for one-shot analyses
  /// (figure benches) and as the reference the incremental path is tested
  /// against.
  [[nodiscard]] std::vector<SuspectScore> score(const sim::TimeSeries& victim_signal,
                                                const std::vector<SuspectSignal>& suspects) const;

  /// Same scores, computed incrementally: per (victim, suspect) pair a
  /// RollingCorrelation accumulator ingests only the victim samples that
  /// arrived since the previous call (normally one per control interval),
  /// aligning each against the suspect at that timestamp (missing -> 0).
  /// Amortized O(1) per suspect per call instead of O(window + log n).
  ///
  /// Requirements: both series objects must be stable in memory and
  /// append-only in time between calls (the node manager's signal stores and
  /// the monitor's per-VM series satisfy this). A victim series that shrank
  /// (cleared) resets its pair states. Bounded (ring-buffer) suspect series
  /// are fine as long as their capacity covers the correlation window.
  [[nodiscard]] std::vector<SuspectScore> score_incremental(
      const sim::TimeSeries& victim_signal, const std::vector<SuspectSignal>& suspects);

 private:
  struct PairState {
    sim::RollingCorrelation corr;
    std::size_t consumed = 0;  ///< Victim samples already pushed.
  };

  PairState& pair_state(const sim::TimeSeries* victim, int vm_id);

  PerfCloudConfig cfg_;
  /// Keyed by (victim series identity, suspect VM id): one identifier serves
  /// several victim signals (I/O and CPI, per application). Entries for
  /// departed suspects linger; the population is bounded by VMs-per-host.
  std::map<std::pair<const sim::TimeSeries*, int>, PairState> pairs_;
};

}  // namespace perfcloud::core
