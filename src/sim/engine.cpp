#include "sim/engine.hpp"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <stdexcept>
#include <string>

#include "sim/arena.hpp"

namespace perfcloud::sim {

namespace {

/// Shard counts above this are certainly a typo, not a machine.
constexpr unsigned kMaxShards = 4096;

/// EWMA weight of the latest runtime measurement in a task's cost estimate.
constexpr double kCostAlpha = 0.25;

}  // namespace

Engine::Engine(std::uint64_t seed, TimeQueueKind timeq)
    : timeq_(timeq),
      queue_(timeq),
      shards_(shards_from_env()),
      schedule_(schedule_from_env()),
      rng_(seed) {}

unsigned Engine::shards_from_env() {
  const char* env = std::getenv("PERFCLOUD_SHARDS");
  if (env == nullptr) return 1;
  const std::string s(env);
  bool digits_only = !s.empty();
  for (const char c : s) {
    if (std::isdigit(static_cast<unsigned char>(c)) == 0) digits_only = false;
  }
  // Reject garbage ("abc", "4x", "-2", "0", "") loudly: a typo silently
  // falling back to sequential execution is exactly the failure mode that
  // hides in CI for months.
  const long v = digits_only ? std::strtol(env, nullptr, 10) : 0;
  if (!digits_only || v < 1 || v > static_cast<long>(kMaxShards)) {
    throw std::invalid_argument("PERFCLOUD_SHARDS='" + s +
                                "' is not a valid shard count (expected an integer in [1, " +
                                std::to_string(kMaxShards) + "])");
  }
  return static_cast<unsigned>(v);
}

ShardSchedule Engine::schedule_from_env() {
  const char* env = std::getenv("PERFCLOUD_SCHED");
  if (env == nullptr) return ShardSchedule::kWorkStealing;
  const std::string s(env);
  if (s == "static") return ShardSchedule::kStatic;
  if (s == "ws" || s == "work-stealing" || s == "work_stealing") {
    return ShardSchedule::kWorkStealing;
  }
  throw std::invalid_argument("PERFCLOUD_SCHED='" + s +
                              "' is not a valid schedule (expected 'static' or 'ws')");
}

void Engine::set_shards(unsigned shards) {
  if (shards < 1 || shards > kMaxShards) {
    throw std::invalid_argument("Engine::set_shards: " + std::to_string(shards) +
                                " is not a valid shard count (expected an integer in [1, " +
                                std::to_string(kMaxShards) + "])");
  }
  if (pool_ != nullptr) {
    throw std::logic_error("Engine::set_shards: shard pool already running");
  }
  shards_ = shards;
}

EventHandle Engine::at(SimTime t, EventQueue::Callback cb) {
  if (t < now_) {
    throw std::invalid_argument("Engine::at: time " + std::to_string(t.seconds()) +
                                " is before now " + std::to_string(now_.seconds()));
  }
  return queue_.schedule(t, std::move(cb));
}

EventHandle Engine::after(double dt, EventQueue::Callback cb) {
  if (dt < 0.0) {
    throw std::invalid_argument("Engine::after: negative delay " + std::to_string(dt));
  }
  return queue_.schedule(now_ + dt, std::move(cb));
}

void Engine::every(double period, PeriodicFn fn, SimTime start) {
  if (!(period > 0.0)) {
    throw std::invalid_argument("Engine::every: non-positive period " + std::to_string(period));
  }
  const SimTime first = start >= now_ ? start : now_;
  periodics_.push_back(Periodic{period, std::move(fn), first});
  push_due(first, periodics_.size() - 1);
}

void Engine::push_due(SimTime next, std::size_t index) {
  if (timeq_ == TimeQueueKind::kWheel) {
    // Registration index as both key and payload: unique per outstanding
    // entry and exactly the heap's (next, index) tie-break, so batches of
    // simultaneous periodics fire in the same order under either backend.
    periodic_due_.insert(next.seconds(), index, index);
  } else {
    due_.push(DueEntry{next, index});
  }
}

SimTime Engine::next_periodic_time() const {
  if (timeq_ == TimeQueueKind::kWheel) {
    const TimerWheel::Entry* e = periodic_due_.peek();
    return e == nullptr ? SimTime::infinity() : SimTime(e->t);
  }
  return due_.empty() ? SimTime::infinity() : due_.top().next;
}

ShardedPeriodic& Engine::every_sharded(double period, SimTime start) {
  sharded_.push_back(std::make_unique<ShardedPeriodic>());
  ShardedPeriodic* sp = sharded_.back().get();
  every(period,
        [this, sp](SimTime now) {
          run_shard_tasks(*sp, now);
          if (sp->barrier_) sp->barrier_(now);
          for (const PeriodicFn& hook : post_barrier_hooks_) hook(now);
        },
        start);
  return *sp;
}

void Engine::run_shard_tasks(ShardedPeriodic& sp, SimTime now) {
  const std::vector<ShardedPeriodic::Fn>& tasks = sp.tasks_;
  if (shards_ <= 1 || tasks.size() <= 1) {
    for (const ShardedPeriodic::Fn& task : tasks) task(now);
    // Inline path is its own barrier: per-quantum scratch ends here, same
    // lifetime rule the pool enforces for its participants.
    scratch_arena().reset();
    return;
  }
  if (pool_ == nullptr) pool_ = std::make_unique<ShardPool>(shards_);
  const std::size_t n = tasks.size();

  if (schedule_ == ShardSchedule::kStatic) {
    pool_->run(n, [&](std::size_t i) { tasks[i](now); }, ShardSchedule::kStatic);
    return;
  }

  // Grow the cost model for tasks registered since the last firing. New
  // tasks start at +inf cost so the next rebalance claims them first and
  // their first measurement replaces the sentinel outright.
  const bool grew = sp.cost_ns_.size() < n;
  while (sp.cost_ns_.size() < n) {
    sp.order_.push_back(static_cast<std::uint32_t>(sp.cost_ns_.size()));
    sp.cost_ns_.push_back(std::numeric_limits<double>::infinity());
    sp.last_cost_ns_.push_back(0.0);
  }

  // Rebalance only at deterministic epochs (and when the task set grew), on
  // the engine thread. The costs feeding the sort are wall-clock and thus
  // nondeterministic — safe because claim order cannot affect any output,
  // only wall-clock time (see ShardSchedule's determinism contract).
  if (grew || sp.firings_ % ShardedPeriodic::kRebalancePeriod == 0) {
    std::stable_sort(sp.order_.begin(), sp.order_.end(),
                     [&](std::uint32_t a, std::uint32_t b) {
                       if (sp.cost_ns_[a] != sp.cost_ns_[b]) {
                         return sp.cost_ns_[a] > sp.cost_ns_[b];
                       }
                       return a < b;
                     });
  }
  ++sp.firings_;

  pool_->run(
      n,
      [&](std::size_t i) {
        const auto t0 = std::chrono::steady_clock::now();
        tasks[i](now);
        const auto t1 = std::chrono::steady_clock::now();
        // Disjoint slot per task; the pool's barrier handshake orders this
        // write before the engine thread's reads below.
        sp.last_cost_ns_[i] =
            static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
      },
      ShardSchedule::kWorkStealing, &sp.order_);

  for (std::size_t i = 0; i < n; ++i) {
    const double last = sp.last_cost_ns_[i];
    double& cost = sp.cost_ns_[i];
    cost = std::isinf(cost) ? last : kCostAlpha * last + (1.0 - kCostAlpha) * cost;
  }
}

void Engine::fire_due_periodics(SimTime t) {
  // Fire periodics in (time, registration-index) order until none is due at
  // or before t. A periodic callback may register further periodics; `every`
  // pushes their due node, and they start no earlier than `now_`, so they
  // join this batch in the correct order if due.
  if (timeq_ == TimeQueueKind::kWheel) {
    TimerWheel::Entry e;
    while (true) {
      const TimerWheel::Entry* head = periodic_due_.peek();
      if (head == nullptr || SimTime(head->t) > t) return;
      periodic_due_.pop(e);
      now_ = SimTime(e.t);
      Periodic& p = periodics_[e.payload];
      p.next = p.next + p.period;
      periodic_due_.insert(p.next.seconds(), e.payload, e.payload);
      p.fn(now_);
      if (stopped_) return;
    }
  }
  while (!due_.empty() && due_.top().next <= t) {
    const DueEntry e = due_.top();
    due_.pop();
    now_ = e.next;
    Periodic& p = periodics_[e.index];
    p.next = p.next + p.period;
    due_.push(DueEntry{p.next, e.index});
    p.fn(now_);
    if (stopped_) return;
  }
}

SimTime Engine::run_until(SimTime t_end) {
  return run_while([] { return true; }, t_end);
}

SimTime Engine::run_while(const std::function<bool()>& keep_going, SimTime t_end) {
  stopped_ = false;
  while (!stopped_ && keep_going()) {
    const SimTime next_periodic = next_periodic_time();
    const SimTime next_event = queue_.next_time();
    const SimTime next = std::min(next_periodic, next_event);
    if (next > t_end || next == SimTime::infinity()) {
      if (t_end != SimTime::infinity()) now_ = t_end;
      break;
    }
    if (next_periodic <= next_event) {
      // Periodic activities (arbitration, monitors) run before one-shot
      // events carrying the same timestamp.
      fire_due_periodics(next_periodic);
    } else {
      now_ = next_event;
      queue_.run_next();
    }
  }
  for (const PeriodicFn& hook : run_end_hooks_) hook(now_);
  return now_;
}

}  // namespace perfcloud::sim
