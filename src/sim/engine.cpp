#include "sim/engine.hpp"

#include <algorithm>
#include <cassert>
#include <limits>

namespace perfcloud::sim {

Engine::Engine(std::uint64_t seed) : rng_(seed) {}

EventHandle Engine::at(SimTime t, EventQueue::Callback cb) {
  assert(t >= now_);
  return queue_.schedule(t, std::move(cb));
}

EventHandle Engine::after(double dt, EventQueue::Callback cb) {
  assert(dt >= 0.0);
  return queue_.schedule(now_ + dt, std::move(cb));
}

void Engine::every(double period, PeriodicFn fn, SimTime start) {
  assert(period > 0.0);
  const SimTime first = start >= now_ ? start : now_;
  periodics_.push_back(Periodic{period, std::move(fn), first});
}

void Engine::fire_due_periodics(SimTime t) {
  // Fire periodics in (time, registration-index) order until none is due at
  // or before t. A periodic callback may register further periodics; those
  // start no earlier than `now_`, so index-based iteration stays valid.
  for (;;) {
    std::size_t best = periodics_.size();
    SimTime best_t = SimTime::infinity();
    for (std::size_t i = 0; i < periodics_.size(); ++i) {
      if (periodics_[i].next <= t && periodics_[i].next < best_t) {
        best = i;
        best_t = periodics_[i].next;
      }
    }
    if (best == periodics_.size()) return;
    now_ = best_t;
    Periodic& p = periodics_[best];
    p.next = p.next + p.period;
    p.fn(now_);
    if (stopped_) return;
  }
}

SimTime Engine::run_until(SimTime t_end) {
  return run_while([] { return true; }, t_end);
}

SimTime Engine::run_while(const std::function<bool()>& keep_going, SimTime t_end) {
  stopped_ = false;
  while (!stopped_ && keep_going()) {
    SimTime next_periodic = SimTime::infinity();
    for (const Periodic& p : periodics_) next_periodic = std::min(next_periodic, p.next);
    const SimTime next_event = queue_.next_time();
    const SimTime next = std::min(next_periodic, next_event);
    if (next > t_end || next == SimTime::infinity()) {
      if (t_end != SimTime::infinity()) now_ = t_end;
      break;
    }
    if (next_periodic <= next_event) {
      // Periodic activities (arbitration, monitors) run before one-shot
      // events carrying the same timestamp.
      fire_due_periodics(next_periodic);
    } else {
      now_ = next_event;
      queue_.run_next();
    }
  }
  return now_;
}

}  // namespace perfcloud::sim
