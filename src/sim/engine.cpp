#include "sim/engine.hpp"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace perfcloud::sim {

Engine::Engine(std::uint64_t seed) : shards_(shards_from_env()), rng_(seed) {}

unsigned Engine::shards_from_env() {
  if (const char* env = std::getenv("PERFCLOUD_SHARDS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v >= 1) return static_cast<unsigned>(v);
  }
  return 1;
}

void Engine::set_shards(unsigned shards) {
  if (shards < 1) throw std::invalid_argument("Engine::set_shards: shards must be >= 1");
  if (pool_ != nullptr) {
    throw std::logic_error("Engine::set_shards: shard pool already running");
  }
  shards_ = shards;
}

EventHandle Engine::at(SimTime t, EventQueue::Callback cb) {
  if (t < now_) {
    throw std::invalid_argument("Engine::at: time " + std::to_string(t.seconds()) +
                                " is before now " + std::to_string(now_.seconds()));
  }
  return queue_.schedule(t, std::move(cb));
}

EventHandle Engine::after(double dt, EventQueue::Callback cb) {
  if (dt < 0.0) {
    throw std::invalid_argument("Engine::after: negative delay " + std::to_string(dt));
  }
  return queue_.schedule(now_ + dt, std::move(cb));
}

void Engine::every(double period, PeriodicFn fn, SimTime start) {
  if (!(period > 0.0)) {
    throw std::invalid_argument("Engine::every: non-positive period " + std::to_string(period));
  }
  const SimTime first = start >= now_ ? start : now_;
  periodics_.push_back(Periodic{period, std::move(fn), first});
  due_.push(DueEntry{first, periodics_.size() - 1});
}

ShardedPeriodic& Engine::every_sharded(double period, SimTime start) {
  sharded_.push_back(std::make_unique<ShardedPeriodic>());
  ShardedPeriodic* sp = sharded_.back().get();
  every(period,
        [this, sp](SimTime now) {
          run_shard_tasks(sp->tasks_, now);
          if (sp->barrier_) sp->barrier_(now);
          for (const PeriodicFn& hook : post_barrier_hooks_) hook(now);
        },
        start);
  return *sp;
}

void Engine::run_shard_tasks(const std::vector<ShardedPeriodic::Fn>& tasks, SimTime now) {
  if (shards_ <= 1 || tasks.size() <= 1) {
    for (const ShardedPeriodic::Fn& task : tasks) task(now);
    return;
  }
  if (pool_ == nullptr) pool_ = std::make_unique<ShardPool>(shards_);
  pool_->run(tasks.size(), [&](std::size_t i) { tasks[i](now); });
}

void Engine::fire_due_periodics(SimTime t) {
  // Fire periodics in (time, registration-index) order until none is due at
  // or before t. A periodic callback may register further periodics; `every`
  // pushes their heap node, and they start no earlier than `now_`, so they
  // join this batch in the correct order if due.
  while (!due_.empty() && due_.top().next <= t) {
    const DueEntry e = due_.top();
    due_.pop();
    now_ = e.next;
    Periodic& p = periodics_[e.index];
    p.next = p.next + p.period;
    due_.push(DueEntry{p.next, e.index});
    p.fn(now_);
    if (stopped_) return;
  }
}

SimTime Engine::run_until(SimTime t_end) {
  return run_while([] { return true; }, t_end);
}

SimTime Engine::run_while(const std::function<bool()>& keep_going, SimTime t_end) {
  stopped_ = false;
  while (!stopped_ && keep_going()) {
    const SimTime next_periodic = next_periodic_time();
    const SimTime next_event = queue_.next_time();
    const SimTime next = std::min(next_periodic, next_event);
    if (next > t_end || next == SimTime::infinity()) {
      if (t_end != SimTime::infinity()) now_ = t_end;
      break;
    }
    if (next_periodic <= next_event) {
      // Periodic activities (arbitration, monitors) run before one-shot
      // events carrying the same timestamp.
      fire_due_periodics(next_periodic);
    } else {
      now_ = next_event;
      queue_.run_next();
    }
  }
  for (const PeriodicFn& hook : run_end_hooks_) hook(now_);
  return now_;
}

}  // namespace perfcloud::sim
