#include "sim/alloc_gauge.hpp"

namespace perfcloud::sim {

namespace alloc_detail {
std::atomic<std::uint64_t> g_allocs{0};
std::atomic<std::uint64_t> g_frees{0};
std::atomic<std::uint64_t> g_bytes{0};
std::atomic<bool> g_hook_linked{false};
}  // namespace alloc_detail

AllocGaugeSnapshot alloc_gauge_read() {
  return AllocGaugeSnapshot{alloc_detail::g_allocs.load(std::memory_order_relaxed),
                            alloc_detail::g_frees.load(std::memory_order_relaxed),
                            alloc_detail::g_bytes.load(std::memory_order_relaxed)};
}

bool alloc_gauge_linked() {
  return alloc_detail::g_hook_linked.load(std::memory_order_relaxed);
}

}  // namespace perfcloud::sim
