// Fundamental simulation types shared across all PerfCloud modules.
#pragma once

#include <cmath>
#include <compare>
#include <cstdint>
#include <limits>

namespace perfcloud::sim {

/// Simulated wall-clock time, in seconds since the start of the run.
///
/// A strong type over `double` so that times, durations, and plain scalars
/// cannot be mixed up silently. Arithmetic is the obvious affine algebra:
/// time - time = duration (double seconds), time +/- duration = time.
class SimTime {
 public:
  constexpr SimTime() = default;
  constexpr explicit SimTime(double seconds) : seconds_(seconds) {}

  /// Seconds since simulation start.
  [[nodiscard]] constexpr double seconds() const { return seconds_; }
  [[nodiscard]] constexpr double millis() const { return seconds_ * 1e3; }

  constexpr auto operator<=>(const SimTime&) const = default;

  constexpr SimTime operator+(double dt) const { return SimTime(seconds_ + dt); }
  constexpr SimTime operator-(double dt) const { return SimTime(seconds_ - dt); }
  constexpr double operator-(SimTime other) const { return seconds_ - other.seconds_; }
  constexpr SimTime& operator+=(double dt) {
    seconds_ += dt;
    return *this;
  }

  /// A time later than any event the simulator will ever schedule.
  [[nodiscard]] static constexpr SimTime infinity() {
    return SimTime(std::numeric_limits<double>::infinity());
  }

 private:
  double seconds_ = 0.0;
};

/// Tolerance (seconds) under which two sample timestamps count as the same
/// instant — used both when aligning suspect samples onto a victim's grid
/// (§III-B missing-as-zero alignment) and when deduping trace-grid rows.
/// One constant everywhere: if the correlation path and the trace writer
/// disagreed on what a shared sample time is, a pair could correlate as
/// aligned yet print as two rows. Well above the FP error periodic schedules
/// accumulate (repeated addition of 0.1 s drifts ~1e-10 s over 1e5 ticks)
/// and far below any real sampling interval.
inline constexpr double kTimeAlignTolS = 1e-6;

/// Number of bytes, used for I/O volumes, memory footprints and bandwidth
/// bookkeeping. Kept as double: the simulator deals in rates and fractional
/// per-tick quantities, not addressable storage.
using Bytes = double;

constexpr Bytes operator""_KiB(unsigned long long v) { return static_cast<double>(v) * 1024.0; }
constexpr Bytes operator""_MiB(unsigned long long v) { return static_cast<double>(v) * 1024.0 * 1024.0; }
constexpr Bytes operator""_GiB(unsigned long long v) {
  return static_cast<double>(v) * 1024.0 * 1024.0 * 1024.0;
}

}  // namespace perfcloud::sim
