// Worker pool for the engine's sharded periodics (quantum-barrier model).
//
// One pool per Engine, created lazily when the first sharded periodic fires
// with more than one shard configured. `run` executes a batch of independent
// host-local tasks across the pool and returns only when every task has
// completed — the time-quantum barrier. Tasks must be thread-confined: each
// may touch only its own host's state (hypervisor, monitor, node-manager
// members, per-host RNG streams) plus read-only shared data, never the
// engine, the event queue, or another host.
//
// Determinism: which worker runs which task is scheduling-dependent, but
// because tasks are confined to disjoint state and all cross-host logic runs
// sequentially after the barrier, simulation results are byte-identical for
// any shard count (pinned by ShardDeterminism tests).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace perfcloud::sim {

class ShardPool {
 public:
  /// Spawns `shards - 1` workers; the caller of `run` is the remaining shard.
  /// `shards` must be >= 1 (a 1-shard pool has no workers and runs inline).
  explicit ShardPool(unsigned shards);
  ~ShardPool();

  ShardPool(const ShardPool&) = delete;
  ShardPool& operator=(const ShardPool&) = delete;

  [[nodiscard]] unsigned shards() const {
    return static_cast<unsigned>(workers_.size()) + 1;
  }

  /// Run body(0..n-1) across the pool and wait for all of them (the
  /// barrier). Workers claim indices dynamically, so uneven per-host costs
  /// load-balance. If any task throws, the first exception captured is
  /// rethrown here after the barrier.
  void run(std::size_t n, const std::function<void(std::size_t)>& body);

 private:
  void worker_loop();
  /// Claim and execute tasks of generation `gen` until none remain.
  void drain(std::uint64_t gen);

  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  // All fields below are guarded by mu_. A generation identifies one `run`
  // batch; workers never cross generations (drain re-checks under the lock
  // before claiming each index), so a straggler waking late simply finds the
  // batch exhausted.
  std::uint64_t generation_ = 0;
  bool shutdown_ = false;
  const std::function<void(std::size_t)>* body_ = nullptr;
  std::size_t next_ = 0;
  std::size_t n_ = 0;
  std::size_t remaining_ = 0;
  std::exception_ptr error_;
};

}  // namespace perfcloud::sim
