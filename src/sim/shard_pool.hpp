// Worker pool for the engine's sharded periodics (quantum-barrier model).
//
// One pool per Engine, created lazily when the first sharded periodic fires
// with more than one shard configured. `run` executes a batch of independent
// host-local tasks across the pool and returns only when every task has
// completed — the time-quantum barrier. Tasks must be thread-confined: each
// may touch only its own host's state (hypervisor, monitor, node-manager
// members, per-host RNG streams) plus read-only shared data, never the
// engine, the event queue, or another host.
//
// Two claim disciplines:
//  - kStatic: the batch is cut into `shards` contiguous blocks and each
//    participant takes one whole block — the classic static partition. A
//    single expensive task (a straggler-victim + antagonist host) serializes
//    behind everything else in its block while the other shards idle at the
//    barrier.
//  - kWorkStealing: indices are claimed from one shared atomic cursor in
//    growing chunks, following an optional caller-provided order (the engine
//    passes a cost-sorted heavy-first order). Heavy tasks are claimed singly
//    at the head; the cheap tail is claimed in chunks to keep cursor traffic
//    low. A heavy task then occupies exactly one shard while every other
//    shard drains the rest.
//
// Determinism: which worker runs which task — and in which order — is
// scheduling-dependent under BOTH disciplines, but because tasks are
// confined to disjoint state and all cross-host logic (barrier phase, sink
// drain) runs sequentially after the barrier in (time, source-index) order,
// simulation results are byte-identical for any shard count and either
// schedule (pinned by the ShardDeterminism tests and scripts/check.sh).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace perfcloud::sim {

/// Claim discipline for a sharded batch. kWorkStealing is the engine
/// default; kStatic is kept as the measurable baseline (bench/micro_balance)
/// and as a second schedule for the output-identity gates.
enum class ShardSchedule { kStatic, kWorkStealing };

[[nodiscard]] const char* to_string(ShardSchedule s);

class ShardPool {
 public:
  /// Spawns `shards - 1` workers; the caller of `run` is the remaining shard.
  /// `shards` must be >= 1 (a 1-shard pool has no workers and runs inline).
  explicit ShardPool(unsigned shards);
  ~ShardPool();

  ShardPool(const ShardPool&) = delete;
  ShardPool& operator=(const ShardPool&) = delete;

  [[nodiscard]] unsigned shards() const {
    return static_cast<unsigned>(workers_.size()) + 1;
  }

  /// Run body(0..n-1) across the pool and wait for all of them (the
  /// barrier). `order`, when non-null, must be a permutation of [0, n) and
  /// gives the claim order (the engine passes cost-desc); null claims in
  /// index order. If any task throws, the remaining tasks still run, the
  /// barrier completes, and the first exception captured is rethrown here.
  void run(std::size_t n, const std::function<void(std::size_t)>& body,
           ShardSchedule schedule = ShardSchedule::kWorkStealing,
           const std::vector<std::uint32_t>* order = nullptr);

 private:
  void worker_loop();
  /// Claim and execute chunks of the generation-`gen` batch until none
  /// remain (or the generation has been superseded — a straggler waking
  /// late finds the claim word's generation advanced and backs off without
  /// touching batch state). On exit the participant's thread-local scratch
  /// arena is reset: the batch's tasks only ever used per-quantum scratch,
  /// and nothing may outlive the barrier.
  void drain(std::uint32_t gen);
  void drain_batch(std::uint32_t gen);

  static std::uint64_t pack(std::uint32_t gen, std::uint32_t pos) {
    return (static_cast<std::uint64_t>(gen) << 32) | pos;
  }

  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  // Batch parameters, guarded by mu_; workers copy them under the lock when
  // they wake for a new generation. A stale copy is harmless: claims go
  // through the generation-checked claim word below, so a straggler can
  // never execute (or double-execute) work from a batch it did not claim.
  std::uint32_t generation_ = 0;
  bool shutdown_ = false;
  const std::function<void(std::size_t)>* body_ = nullptr;
  const std::vector<std::uint32_t>* order_ = nullptr;
  std::size_t n_ = 0;
  ShardSchedule schedule_ = ShardSchedule::kWorkStealing;
  std::exception_ptr error_;  // first failure of the running batch

  // (generation << 32) | next-claim-index. The single CAS target every
  // participant claims chunks from; the generation tag makes claims from a
  // superseded batch fail instead of stealing the new batch's indices.
  std::atomic<std::uint64_t> claim_{0};
  // Tasks not yet completed in the current batch. The caller's barrier wait
  // is `remaining_ == 0`; the participant whose chunk completion drops it to
  // zero notifies cv_done_.
  std::atomic<std::size_t> remaining_{0};
};

}  // namespace perfcloud::sim
