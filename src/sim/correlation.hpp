// Pearson correlation, the statistic PerfCloud uses to pick antagonists out
// of the colocated-VM population (§III-B).
#pragma once

#include <span>

#include "sim/time_series.hpp"

namespace perfcloud::sim {

/// Pearson correlation coefficient of two equal-length samples.
/// Returns 0 when either side has (numerically) zero variance or fewer than
/// two points — an uninformative pair should never read as "correlated".
[[nodiscard]] double pearson(std::span<const double> x, std::span<const double> y);

/// Correlate a victim signal with a suspect signal after aligning the suspect
/// onto the victim's sample grid, substituting 0 for missing suspect samples.
/// Matching the paper: treating missing values as zero (rather than dropping
/// the pairs) avoids over-emphasizing similarity computed over little data.
[[nodiscard]] double pearson_missing_as_zero(const TimeSeries& victim, const TimeSeries& suspect);

/// Same, but restricted to the most recent `window` victim samples. Fig 5c
/// shows identification succeeding with windows as small as three samples.
[[nodiscard]] double pearson_missing_as_zero(const TimeSeries& victim, const TimeSeries& suspect,
                                             std::size_t window);

/// Mean of the suspect's samples over the victim's most recent `window`
/// sample times, missing values as zero. O(window + log n), like the
/// windowed Pearson — both run every control interval against ever-growing
/// series.
[[nodiscard]] double windowed_mean_missing_as_zero(const TimeSeries& victim,
                                                   const TimeSeries& suspect, std::size_t window);

}  // namespace perfcloud::sim
