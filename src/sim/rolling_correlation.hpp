// Incremental windowed Pearson correlation (and windowed mean), the O(1)
// replacement for re-aligning and re-summing a correlation window on every
// identifier tick.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace perfcloud::sim {

/// Windowed (x, y) sample accumulator with O(1) push and O(1) queries.
///
/// Maintains the windowed sums Σx, Σy, Σxy, Σxx, Σyy over the most recent
/// `window` pushed pairs; a ring buffer supplies the evicted pair. Two
/// numerical safeguards keep long runs honest:
///  - sums are kept of *anchored* values (x - x0, y - y0, anchored at the
///    first sample of the current epoch), so a near-constant high-magnitude
///    signal — a steadily hammering antagonist — does not cancel
///    catastrophically in n·Σxx − (Σx)²;
///  - every `kResumInterval` pushes the sums are recomputed from the ring
///    buffer with a fresh anchor, bounding add/subtract drift.
///
/// Matches the batch two-pass `pearson` to ~1e-12 on bounded-magnitude
/// series (tests pin 1e-9 on randomized gappy streams).
class RollingCorrelation {
 public:
  explicit RollingCorrelation(std::size_t window);

  /// Append one (x, y) pair, evicting the oldest once the window is full.
  void push(double x, double y);

  void reset();

  [[nodiscard]] std::size_t size() const { return count_; }
  [[nodiscard]] std::size_t window() const { return window_; }

  /// Pearson correlation over the current window. Returns 0 with fewer than
  /// two samples or (numerically) zero variance on either side, matching the
  /// batch `pearson` semantics: an uninformative pair never reads as
  /// "correlated".
  [[nodiscard]] double correlation() const;

  /// Mean of the y side over the current window; 0 when empty.
  [[nodiscard]] double mean_y() const;

 private:
  static constexpr std::uint32_t kResumInterval = 512;

  struct Pair {
    double x;
    double y;
  };

  void resum();

  std::size_t window_;
  std::vector<Pair> ring_;  ///< Insertion ring, capacity window_.
  std::size_t head_ = 0;    ///< Next write position once full.
  std::size_t count_ = 0;
  double anchor_x_ = 0.0;
  double anchor_y_ = 0.0;
  double sx_ = 0.0;   ///< Σ(x - anchor_x)
  double sy_ = 0.0;   ///< Σ(y - anchor_y)
  double sxy_ = 0.0;  ///< Σ(x - anchor_x)(y - anchor_y)
  double sxx_ = 0.0;  ///< Σ(x - anchor_x)²
  double syy_ = 0.0;  ///< Σ(y - anchor_y)²
  std::uint32_t pushes_since_resum_ = 0;
};

}  // namespace perfcloud::sim
