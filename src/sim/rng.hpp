// Deterministic random number generation for reproducible experiments.
#pragma once

#include <array>
#include <cstdint>

namespace perfcloud::sim {

/// SplitMix64: used to expand a single 64-bit seed into a full generator
/// state. Public because tests and stream-splitting use it directly.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256** pseudo-random generator (Blackman & Vigna).
///
/// Chosen over std::mt19937 for speed (the arbitration loop draws jitter for
/// every cgroup every tick) and for cheap, well-defined stream splitting:
/// `split()` derives an independent child stream, so every VM / device /
/// workload gets its own generator and experiments stay reproducible even
/// when the set of entities changes.
///
/// Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  [[nodiscard]] static constexpr result_type min() { return 0; }
  [[nodiscard]] static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()();

  /// Derive an independent child stream. Mixing in `salt` lets callers create
  /// stable per-entity streams (e.g. salt = VM id) regardless of call order.
  [[nodiscard]] Rng split(std::uint64_t salt);

  /// Uniform double in [0, 1).
  double uniform();
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [lo, hi] (inclusive).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  /// Standard normal via Box-Muller (no cached spare: keeps state trivially
  /// copyable and the draw count predictable).
  double normal();
  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);
  /// Log-normal such that the *median* of the distribution is `median` and
  /// sigma is the shape parameter. Used for multiplicative latency jitter.
  double lognormal_median(double median, double sigma);
  /// Exponential with the given mean (mean = 1/lambda).
  double exponential(double mean);
  /// Bernoulli trial.
  bool bernoulli(double p);
  /// Bounded Pareto on [lo, hi] with tail index alpha; used for heavy-tailed
  /// job-size mixes.
  double pareto(double lo, double hi, double alpha);

 private:
  std::array<std::uint64_t, 4> s_{};
};

}  // namespace perfcloud::sim
