// Counting global operator new/delete, built as the `pc_alloc_hook` OBJECT
// library so the replacement TU is always pulled into binaries that list it
// (a static-library member with no referenced symbols could be skipped by
// the linker; object files cannot). Every allocation goes through malloc and
// bumps the alloc_gauge counters — sanitizer builds keep working because
// their malloc interceptors sit underneath.
//
// Linked into the perf-label test binary (the zero-steady-state-allocation
// gate and the byte-identity sweeps run with counting active) and the micro
// benches (BENCH_*.json embed the counters via hw_context).
#include <cstdlib>
#include <new>

#include "sim/alloc_gauge.hpp"

namespace {

using perfcloud::sim::alloc_detail::g_allocs;
using perfcloud::sim::alloc_detail::g_bytes;
using perfcloud::sim::alloc_detail::g_frees;
using perfcloud::sim::alloc_detail::g_hook_linked;

[[maybe_unused]] const bool kMarkLinked = [] {
  g_hook_linked.store(true, std::memory_order_relaxed);
  return true;
}();

void* counted_alloc(std::size_t n) noexcept {
  void* p = std::malloc(n != 0 ? n : 1);
  if (p != nullptr) {
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    g_bytes.fetch_add(n, std::memory_order_relaxed);
  }
  return p;
}

void* counted_alloc_aligned(std::size_t n, std::size_t align) noexcept {
  // aligned_alloc requires the size to be a multiple of the alignment.
  const std::size_t size = (n + align - 1) / align * align;
  void* p = std::aligned_alloc(align, size != 0 ? size : align);
  if (p != nullptr) {
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    g_bytes.fetch_add(n, std::memory_order_relaxed);
  }
  return p;
}

void counted_free(void* p) noexcept {
  if (p == nullptr) return;
  g_frees.fetch_add(1, std::memory_order_relaxed);
  std::free(p);
}

}  // namespace

void* operator new(std::size_t n) {
  void* p = counted_alloc(n);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t n) {
  void* p = counted_alloc(n);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t n, const std::nothrow_t&) noexcept { return counted_alloc(n); }
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept { return counted_alloc(n); }

void* operator new(std::size_t n, std::align_val_t align) {
  void* p = counted_alloc_aligned(n, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t n, std::align_val_t align) {
  void* p = counted_alloc_aligned(n, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t n, std::align_val_t align, const std::nothrow_t&) noexcept {
  return counted_alloc_aligned(n, static_cast<std::size_t>(align));
}

void* operator new[](std::size_t n, std::align_val_t align, const std::nothrow_t&) noexcept {
  return counted_alloc_aligned(n, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { counted_free(p); }
void operator delete[](void* p) noexcept { counted_free(p); }
void operator delete(void* p, std::size_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::size_t) noexcept { counted_free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { counted_free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { counted_free(p); }
void operator delete(void* p, std::align_val_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { counted_free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { counted_free(p); }
void operator delete(void* p, std::align_val_t, const std::nothrow_t&) noexcept {
  counted_free(p);
}
void operator delete[](void* p, std::align_val_t, const std::nothrow_t&) noexcept {
  counted_free(p);
}
