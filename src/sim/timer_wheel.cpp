// Cold paths of the hierarchical timer wheel: construction, the cascade
// (advance_to), the cached-minimum rebuild (refresh_next), and test
// introspection. The per-firing path lives inline in the header.
#include "sim/timer_wheel.hpp"

#include <algorithm>
#include <bit>
#include <cassert>

namespace perfcloud::sim {

TimerWheel::TimerWheel(double tick_seconds)
    : tick_s_(tick_seconds), inv_tick_s_(1.0 / tick_seconds) {
  assert(tick_seconds > 0.0);
  bucket_head_.fill(kNil);
}

void TimerWheel::advance_to(std::uint64_t tick) {
  assert(tick >= cursor_);
  cursor_ = tick;
  // Top-down: entries relocated out of level k have remaining delta under
  // level k's own span, so they land strictly below — where the lower
  // levels' cascades (and ready_) pick them up in this same pass.
  //
  // Due entries (delta 0) are appended to ready_ raw and sorted once at
  // the end: advance_to only runs while ready_ holds no live entries (a
  // live ready entry would have beaten any linked/overflow winner), so one
  // bulk sort replaces batch-many sorted insertions — and back-of-vector
  // pops replace binary-heap sift-downs on the drain side.
  bool ready_grew = false;
  for (int level = kLevels - 1; level >= 0; --level) {
    const std::uint64_t slot = (tick >> (kSlotBits * level)) & kSlotMask;
    const std::uint32_t b = static_cast<std::uint32_t>(level) *
                                static_cast<std::uint32_t>(kSlots) +
                            static_cast<std::uint32_t>(slot);
    std::uint32_t id = bucket_head_[b];
    if (id == kNil) continue;
    bucket_head_[b] = kNil;
    occupied_[static_cast<std::size_t>(level)] &= ~(std::uint64_t{1} << slot);
    while (id != kNil) {
      Timer& tm = timers_[id];
      const std::uint32_t next = tm.next;
      if (tm.state == State::kErased) {
        // A cancelled node that waited, threaded in place, for its bucket
        // to cascade: sweep it back to the free list.
        release(id);
      } else if (const std::uint64_t ntick = tick_of(tm.t); ntick <= cursor_) {
        tm.state = State::kReady;
        ready_.push_back(HeapEntry{tm.t, tm.key, id, tm.gen});
        ready_grew = true;
      } else {
        // Cascaded deltas only shrink, so a relocation never reaches the
        // overflow heap — it relinks at a strictly lower level.
        place(id, ntick);
      }
      id = next;
    }
  }
  if (ready_grew) std::sort(ready_.begin(), ready_.end(), HeapLater{});
}

bool TimerWheel::refresh_next() {
  next_valid_ = false;
  next_id_ = kNil;
  drop_stale_ready();
  drop_stale_overflow();

  // Cascade until the next tick's batch sits in ready_ (or only the
  // overflow heap holds entries). Each iteration detaches at least one
  // occupied bucket and relocated entries descend strictly, so an entry is
  // touched at most kLevels times over its whole life: amortized O(1) per
  // pop, and — unlike scanning the winning bucket for its minimum — each
  // touch does work the eventual pop needs anyway.
  while (ready_.empty()) {
    // Next cascade moment per level: the first occupied slot in circular
    // order from the cursor's position cascades when the cursor's level
    // digit reaches it. A level never holds entries beyond its whole span,
    // so slots never alias two tick windows and a same-digit slot (offset
    // 0) is a full wrap ahead, never due now. Advancing to the earliest
    // moment skips no deadline: every entry in that slot has its tick in
    // the window starting there.
    std::uint64_t best = kFarTick;
    for (int level = 0; level < kLevels; ++level) {
      const std::uint64_t word = occupied_[static_cast<std::size_t>(level)];
      if (word == 0) continue;
      const int shift = kSlotBits * level;
      const std::uint64_t pos = (cursor_ >> shift) & kSlotMask;
      const std::uint64_t rotated = std::rotr(word, static_cast<int>(pos));
      std::uint64_t off = static_cast<std::uint64_t>(std::countr_zero(rotated));
      if (off == 0) off = kSlots;
      const std::uint64_t moment = ((cursor_ >> shift) + off) << shift;
      best = std::min(best, moment);
    }
    if (!overflow_.empty()) {
      // An overflow entry's tick can undercut the wheel's next moment (the
      // cursor advanced since it was parked; it is never relocated). If the
      // overflow front is due first, jump the cursor to it — post-jump
      // inserts then measure their delta from there — and let the final
      // compare below pick it up.
      const std::uint64_t otick = tick_of(timers_[overflow_.front().id].t);
      const std::uint64_t ot = otick == kFarTick ? kFarTick : std::max(cursor_, otick);
      if (ot <= best) {
        // Never advance to kFarTick itself: it marks non-finite deadlines,
        // not a position, and jumping there would strand every later
        // finite insert at delta 0.
        if (otick != kFarTick) advance_to(ot);
        break;
      }
    }
    if (best == kFarTick) break;  // wheel and overflow both empty
    advance_to(best);
  }

  const HeapEntry* win = ready_.empty() ? nullptr : &ready_.back();
  if (!overflow_.empty()) {
    const HeapEntry& o = overflow_.front();
    if (win == nullptr || o.t < win->t || (o.t == win->t && o.key < win->key)) win = &o;
  }
  if (win == nullptr) return false;
  next_ = Entry{win->t, win->key, timers_[win->id].payload};
  next_id_ = win->id;
  next_valid_ = true;
  return true;
}

int TimerWheel::locate(Handle h) const {
  if (!h.valid() || h.id >= timers_.size()) return kDead;
  const Timer& tm = timers_[h.id];
  if (tm.state == State::kFree || tm.state == State::kErased || tm.gen != h.gen) return kDead;
  switch (tm.state) {
    case State::kReady:
      return kInReady;
    case State::kOverflow:
      return kInOverflow;
    default:
      return static_cast<int>(tm.bucket >> kSlotBits);
  }
}

}  // namespace perfcloud::sim
