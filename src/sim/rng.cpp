#include "sim/rng.hpp"

#include <cassert>
#include <cmath>
#include <numbers>

namespace perfcloud::sim {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

Rng Rng::split(std::uint64_t salt) {
  std::uint64_t sm = (*this)() ^ (salt * 0x9e3779b97f4a7c15ULL);
  return Rng(splitmix64(sm));
}

double Rng::uniform() {
  // 53 top bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  // Modulo bias is < 2^-40 for the span sizes used here (task counts, node
  // indices); acceptable for simulation workload draws.
  return lo + static_cast<std::int64_t>((*this)() % span);
}

double Rng::normal() {
  // Box-Muller, discarding the second variate.
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::normal(double mean, double stddev) { return mean + stddev * normal(); }

double Rng::lognormal_median(double median, double sigma) {
  return median * std::exp(sigma * normal());
}

double Rng::exponential(double mean) {
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return -mean * std::log(u);
}

bool Rng::bernoulli(double p) { return uniform() < p; }

double Rng::pareto(double lo, double hi, double alpha) {
  assert(lo > 0.0 && hi > lo && alpha > 0.0);
  // Inverse-CDF sampling of the bounded Pareto distribution.
  const double u = uniform();
  const double la = std::pow(lo, alpha);
  const double ha = std::pow(hi, alpha);
  return std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha);
}

}  // namespace perfcloud::sim
