#include "sim/interner.hpp"

#include <stdexcept>

namespace perfcloud::sim {

Interner::Id Interner::intern(std::string_view name) {
  const auto it = ids_.find(name);
  if (it != ids_.end()) return it->second;
  const Id id = static_cast<Id>(names_.size());
  names_.emplace_back(name);
  ids_.emplace(names_.back(), id);
  return id;
}

Interner::Id Interner::lookup(std::string_view name) const {
  const auto it = ids_.find(name);
  return it == ids_.end() ? kInvalid : it->second;
}

const std::string& Interner::name(Id id) const {
  if (id < 0 || static_cast<std::size_t>(id) >= names_.size()) {
    throw std::out_of_range("Interner::name: unknown id " + std::to_string(id));
  }
  return names_[static_cast<std::size_t>(id)];
}

}  // namespace perfcloud::sim
