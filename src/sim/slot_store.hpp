// Dense slot-indexed store keyed by small non-negative integer ids (VM ids,
// interned AppIds): the hot-path replacement for the string/int-keyed
// red-black trees on the monitor -> detect -> identify -> control pipeline.
//
// Layout: a key -> slot indirection vector plus a contiguous slot vector.
// Lookup is two array indexes; a full key-ordered walk touches memory
// linearly instead of tree-hopping. Erased slots go on a free list and are
// recycled by later insertions — a recycled slot always receives a freshly
// constructed value, so state of an evicted VM can never resurrect under a
// new key (the fault path depends on this).
//
// Reference stability: slots live in a std::vector, so *growth* (an insert
// of a never-seen key) may move existing values. The hot path takes
// references only after the quantum's insertions are done (monitor sampling
// creates per-VM state before any pointer is handed out); anything holding a
// reference across quanta must re-fetch it.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace perfcloud::sim {

template <typename T>
class SlotMap {
 public:
  /// Sentinel returned by first_key()/next_key() when the scan is done.
  static constexpr int kEnd = -1;

  /// Value of `key`, constructing T(args...) first if absent. Returns the
  /// value and whether it was inserted. Keys must be small non-negative ints
  /// (the indirection vector is sized by the largest key ever seen).
  template <typename... Args>
  std::pair<T*, bool> try_emplace(int key, Args&&... args) {
    if (key < 0) throw std::invalid_argument("SlotMap: negative key " + std::to_string(key));
    if (static_cast<std::size_t>(key) >= slot_of_key_.size()) {
      slot_of_key_.resize(static_cast<std::size_t>(key) + 1, kEnd);
    }
    std::int32_t& slot = slot_of_key_[static_cast<std::size_t>(key)];
    if (slot != kEnd) return {&*slots_[static_cast<std::size_t>(slot)], false};
    if (!free_.empty()) {
      slot = free_.back();
      free_.pop_back();
    } else {
      slot = static_cast<std::int32_t>(slots_.size());
      slots_.emplace_back();
    }
    slots_[static_cast<std::size_t>(slot)].emplace(std::forward<Args>(args)...);
    ++size_;
    return {&*slots_[static_cast<std::size_t>(slot)], true};
  }

  [[nodiscard]] T* find(int key) {
    const std::int32_t slot = slot_index(key);
    return slot == kEnd ? nullptr : &*slots_[static_cast<std::size_t>(slot)];
  }
  [[nodiscard]] const T* find(int key) const {
    const std::int32_t slot = slot_index(key);
    return slot == kEnd ? nullptr : &*slots_[static_cast<std::size_t>(slot)];
  }

  [[nodiscard]] T& at(int key) {
    T* v = find(key);
    if (v == nullptr) throw std::out_of_range("SlotMap: no key " + std::to_string(key));
    return *v;
  }
  [[nodiscard]] const T& at(int key) const {
    const T* v = find(key);
    if (v == nullptr) throw std::out_of_range("SlotMap: no key " + std::to_string(key));
    return *v;
  }

  [[nodiscard]] bool contains(int key) const { return slot_index(key) != kEnd; }

  /// Destroys the value and recycles its slot. Returns whether `key` was
  /// present. Safe during a first_key/next_key walk for the current key.
  bool erase(int key) {
    const std::int32_t slot = slot_index(key);
    if (slot == kEnd) return false;
    slots_[static_cast<std::size_t>(slot)].reset();
    free_.push_back(slot);
    slot_of_key_[static_cast<std::size_t>(key)] = kEnd;
    --size_;
    return true;
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  // --- Key-ordered scan (ascending key; kEnd terminates) ---
  // The walk body may erase the key it is visiting; it must not insert.
  [[nodiscard]] int first_key() const { return next_from(0); }
  [[nodiscard]] int next_key(int key) const { return next_from(key + 1); }

 private:
  [[nodiscard]] std::int32_t slot_index(int key) const {
    if (key < 0 || static_cast<std::size_t>(key) >= slot_of_key_.size()) return kEnd;
    return slot_of_key_[static_cast<std::size_t>(key)];
  }

  [[nodiscard]] int next_from(int key) const {
    for (std::size_t k = static_cast<std::size_t>(key); k < slot_of_key_.size(); ++k) {
      if (slot_of_key_[k] != kEnd) return static_cast<int>(k);
    }
    return kEnd;
  }

  std::vector<std::int32_t> slot_of_key_;  ///< key -> slot, kEnd when absent.
  std::vector<std::optional<T>> slots_;    ///< engaged iff some key maps here.
  std::vector<std::int32_t> free_;         ///< recycled slots, LIFO.
  std::size_t size_ = 0;
};

}  // namespace perfcloud::sim
