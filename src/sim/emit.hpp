// Abstract emission interface for observation samples and events.
//
// The control path (node managers, cloud manager) produces trace samples,
// report events, and summary counters, but lives below the experiment layer
// that knows about files and writer threads. This interface inverts that
// dependency: producers hold a `Sink*` and emit through it; the concrete
// implementation (`exp::EventSink`) stages the records during the sharded
// phase and writes them off the barrier on a background thread.
//
// Thread-confinement contract (mirrors the shard-pool rules): every SourceId
// is owned by exactly one shard task (or by the engine thread); only the
// owner may emit through it during the sharded phase. Registration is
// engine-thread-only, during setup, before the first post-barrier drain.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "sim/types.hpp"

namespace perfcloud::sim {

class EmitSink {
 public:
  using SourceId = std::size_t;
  using CounterId = std::size_t;

  virtual ~EmitSink() = default;

  /// Register a trace column (a named sample stream destined for the CSV
  /// grid). Returns the column's id; ids order the deterministic merge.
  virtual SourceId add_trace_column(std::string column) = 0;
  /// Register an event source (a named producer of report rows / counters).
  virtual SourceId add_event_source(std::string name) = 0;

  /// Append one trace sample. Times must be non-decreasing per column.
  virtual void emit_sample(SourceId column, SimTime t, double value) = 0;
  /// Append one report row. Times must be non-decreasing per source.
  virtual void emit_event(SourceId source, SimTime t, std::string kind, double value) = 0;
  /// Add `delta` to a named summary counter of `source` (written once, at
  /// close, as the run-summary record). Takes a string_view so per-quantum
  /// bumps with literal keys construct no temporary std::string — part of
  /// the steady-state zero-allocation contract.
  virtual void bump_counter(SourceId source, std::string_view key, double delta = 1.0) = 0;

  /// Register a summary counter of `source` under `key` during setup,
  /// returning a dense id whose bumps are one array index — no string
  /// lookup on the hot path at all. A registered-but-never-bumped counter
  /// leaves no trace in the summary, exactly as if bump_counter had never
  /// seen the key; bumps by id and by name to the same key fold into one
  /// summary entry. The base implementation keeps the (source, key) pair
  /// and forwards bumps through bump_counter; sinks with a real hot path
  /// (exp::EventSink) override both for slot storage.
  virtual CounterId add_counter(SourceId source, std::string key) {
    registered_counters_.push_back(RegisteredCounter{source, std::move(key)});
    return registered_counters_.size() - 1;
  }
  /// Add `delta` to a counter registered with add_counter.
  virtual void bump_counter_id(CounterId id, double delta = 1.0) {
    const RegisteredCounter& c = registered_counters_.at(id);
    bump_counter(c.source, c.key, delta);
  }

 protected:
  struct RegisteredCounter {
    SourceId source = 0;
    std::string key;
  };
  /// Registry backing the default add_counter/bump_counter_id.
  std::vector<RegisteredCounter> registered_counters_;
};

}  // namespace perfcloud::sim
