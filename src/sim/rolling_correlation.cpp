#include "sim/rolling_correlation.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace perfcloud::sim {

RollingCorrelation::RollingCorrelation(std::size_t window) : window_(window) {
  if (window_ == 0) throw std::invalid_argument("RollingCorrelation: window must be positive");
  ring_.reserve(window_);
}

void RollingCorrelation::reset() {
  ring_.clear();
  head_ = 0;
  count_ = 0;
  sx_ = sy_ = sxy_ = sxx_ = syy_ = 0.0;
  anchor_x_ = anchor_y_ = 0.0;
  pushes_since_resum_ = 0;
}

void RollingCorrelation::push(double x, double y) {
  if (count_ == 0) {
    anchor_x_ = x;
    anchor_y_ = y;
  }
  if (count_ == window_) {
    const Pair& old = ring_[head_];
    const double ox = old.x - anchor_x_;
    const double oy = old.y - anchor_y_;
    sx_ -= ox;
    sy_ -= oy;
    sxy_ -= ox * oy;
    sxx_ -= ox * ox;
    syy_ -= oy * oy;
    ring_[head_] = Pair{x, y};
    head_ = (head_ + 1) % window_;
  } else {
    ring_.push_back(Pair{x, y});
    ++count_;
  }
  const double ax = x - anchor_x_;
  const double ay = y - anchor_y_;
  sx_ += ax;
  sy_ += ay;
  sxy_ += ax * ay;
  sxx_ += ax * ax;
  syy_ += ay * ay;
  if (++pushes_since_resum_ >= kResumInterval) resum();
}

void RollingCorrelation::resum() {
  pushes_since_resum_ = 0;
  if (count_ == 0) return;
  // Oldest element of the window (ring_[head_] once full, ring_[0] before).
  const std::size_t oldest = count_ == window_ ? head_ : 0;
  anchor_x_ = ring_[oldest].x;
  anchor_y_ = ring_[oldest].y;
  sx_ = sy_ = sxy_ = sxx_ = syy_ = 0.0;
  for (std::size_t i = 0; i < count_; ++i) {
    const Pair& p = ring_[(oldest + i) % count_];
    const double ax = p.x - anchor_x_;
    const double ay = p.y - anchor_y_;
    sx_ += ax;
    sy_ += ay;
    sxy_ += ax * ay;
    sxx_ += ax * ax;
    syy_ += ay * ay;
  }
}

double RollingCorrelation::correlation() const {
  const auto n = static_cast<double>(count_);
  if (count_ < 2) return 0.0;
  // Anchored sums make these the usual centered moments: the anchor shift
  // cancels out of Σ(x-m)(y-m) exactly, and approximately in floating point.
  const double sxx = std::max(0.0, sxx_ - sx_ * sx_ / n);
  const double syy = std::max(0.0, syy_ - sy_ * sy_ / n);
  const double sxy = sxy_ - sx_ * sy_ / n;
  // Zero-variance guard. The batch path sees an exactly-constant side as
  // variance 0; here the same window leaves cancellation residue of order
  // eps * Σ(v-anchor)² (bounded by the resum interval), so the guard must be
  // relative to that accumulated moment — a genuine signal sits at O(1) of
  // it, residue at ~1e-13.
  constexpr double kRelEps = 1e-9;
  if (sxx <= kRelEps * sxx_ || syy <= kRelEps * syy_) return 0.0;
  const double denom = std::sqrt(sxx * syy);
  if (denom <= 1e-12) return 0.0;
  return std::clamp(sxy / denom, -1.0, 1.0);
}

double RollingCorrelation::mean_y() const {
  if (count_ == 0) return 0.0;
  return anchor_y_ + sy_ / static_cast<double>(count_);
}

}  // namespace perfcloud::sim
