// String interner: maps registration-time names (application ids) to small
// dense integer ids so the per-quantum hot path can index vectors instead of
// walking string-keyed trees. Interning happens on the cold path (VM boot,
// sink attachment); the original strings stay available for emission and
// reporting via name().
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace perfcloud::sim {

class Interner {
 public:
  /// Dense id, assigned in first-intern order starting at 0.
  using Id = std::int32_t;
  static constexpr Id kInvalid = -1;

  /// Id of `name`, interning it first if unseen. Ids are stable for the
  /// interner's lifetime; interning the same string twice returns the same id.
  Id intern(std::string_view name);

  /// Id of `name` if already interned, kInvalid otherwise. Heterogeneous
  /// lookup: no temporary std::string is constructed.
  [[nodiscard]] Id lookup(std::string_view name) const;

  /// The string an id was interned from. Throws std::out_of_range on ids
  /// never returned by intern().
  [[nodiscard]] const std::string& name(Id id) const;

  [[nodiscard]] std::size_t size() const { return names_.size(); }

 private:
  std::map<std::string, Id, std::less<>> ids_;
  std::vector<std::string> names_;
};

}  // namespace perfcloud::sim
