#include "sim/time_series.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace perfcloud::sim {

void TimeSeries::add(SimTime t, double value) {
  assert(times_.empty() || t >= times_.back());
  if (capacity_ > 0 && times_.size() == capacity_) {
    times_.erase(times_.begin());
    values_.erase(values_.begin());
  }
  times_.push_back(t);
  values_.push_back(value);
}

void TimeSeries::set_capacity(std::size_t n) {
  capacity_ = n;
  if (capacity_ > 0 && times_.size() > capacity_) {
    const auto drop = static_cast<std::ptrdiff_t>(times_.size() - capacity_);
    times_.erase(times_.begin(), times_.begin() + drop);
    values_.erase(values_.begin(), values_.begin() + drop);
  }
}

void TimeSeries::clear() {
  times_.clear();
  values_.clear();
}

std::vector<double> TimeSeries::tail(std::size_t n) const {
  const std::size_t start = values_.size() > n ? values_.size() - n : 0;
  return {values_.begin() + static_cast<std::ptrdiff_t>(start), values_.end()};
}

double TimeSeries::peak() const {
  double p = 0.0;
  for (double v : values_) p = std::max(p, std::abs(v));
  return p;
}

std::vector<double> TimeSeries::normalized_by_peak() const {
  const double p = peak();
  std::vector<double> out(values_.size(), 0.0);
  if (p <= 0.0) return out;
  for (std::size_t i = 0; i < values_.size(); ++i) out[i] = values_[i] / p;
  return out;
}

std::optional<double> TimeSeries::value_at(SimTime t, double tol) const {
  if (times_.empty()) return std::nullopt;
  if (std::abs(times_.back().seconds() - t.seconds()) <= tol) return values_.back();
  const auto it = std::lower_bound(times_.begin(), times_.end(), SimTime(t.seconds() - tol));
  if (it == times_.end() || std::abs(it->seconds() - t.seconds()) > tol) return std::nullopt;
  return values_[static_cast<std::size_t>(it - times_.begin())];
}

std::optional<double> TimeSeries::at_or_before(SimTime t) const {
  const auto it = std::upper_bound(times_.begin(), times_.end(), t);
  if (it == times_.begin()) return std::nullopt;
  return values_[static_cast<std::size_t>(it - times_.begin()) - 1];
}

std::vector<double> align_to(const TimeSeries& reference, const TimeSeries& series,
                             double missing_value, double tol) {
  std::vector<double> out;
  out.reserve(reference.size());
  std::size_t j = 0;
  for (std::size_t i = 0; i < reference.size(); ++i) {
    const double t = reference.time(i).seconds();
    while (j < series.size() && series.time(j).seconds() < t - tol) ++j;
    if (j < series.size() && std::abs(series.time(j).seconds() - t) <= tol) {
      out.push_back(series.value(j));
      ++j;
    } else {
      out.push_back(missing_value);
    }
  }
  return out;
}

}  // namespace perfcloud::sim
