// Discrete-event queue: the heart of the simulation kernel.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/types.hpp"

namespace perfcloud::sim {

/// Handle returned when scheduling an event; can be used to cancel it.
/// Handles are never reused within one queue instance.
struct EventHandle {
  std::uint64_t id = 0;
  [[nodiscard]] bool valid() const { return id != 0; }
};

/// Min-heap of timed callbacks with stable FIFO ordering for simultaneous
/// events (ties broken by insertion sequence, so behaviour is deterministic).
///
/// Cancellation is lazy: cancelled entries stay in the heap and are skipped
/// on pop. This keeps cancel() O(log n)-free and is cheap because cancelled
/// events (killed speculative tasks, aborted clones) are a small fraction of
/// the total.
class EventQueue {
 public:
  using Callback = std::function<void(SimTime)>;

  /// Schedule `cb` to fire at absolute time `t`. `t` must not be in the past
  /// relative to the last popped event.
  EventHandle schedule(SimTime t, Callback cb);

  /// Cancel a scheduled event. Cancelling an already-fired or already-
  /// cancelled event is a harmless no-op. Returns true if the event was
  /// still pending.
  bool cancel(EventHandle h);

  [[nodiscard]] bool empty() const;
  [[nodiscard]] std::size_t pending() const { return live_; }

  /// Time of the next live event; SimTime::infinity() if none.
  [[nodiscard]] SimTime next_time() const;

  /// Pop and run the next live event; returns false if the queue is empty.
  bool run_next();

 private:
  struct Entry {
    SimTime t;
    std::uint64_t seq;
    std::uint64_t id;
    // Heap invariant: earliest time first, then lowest sequence number.
    bool operator>(const Entry& other) const {
      if (t != other.t) return t > other.t;
      return seq > other.seq;
    }
  };

  void drop_cancelled() const;

  mutable std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  std::vector<std::pair<std::uint64_t, Callback>> callbacks_;  // id -> cb (sorted by id)
  std::uint64_t next_id_ = 1;
  std::uint64_t next_seq_ = 0;
  std::size_t live_ = 0;

  Callback* find_callback(std::uint64_t id);
  void erase_callback(std::uint64_t id);
};

}  // namespace perfcloud::sim
