// Discrete-event queue: the heart of the simulation kernel.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/timer_wheel.hpp"
#include "sim/types.hpp"

namespace perfcloud::sim {

/// Backend of the simulation time core (event queue + engine periodics):
/// the O(log n) lazy-cancel min-heap or the O(1) hierarchical timer wheel.
/// Outputs are byte-identical either way — both order by (time, sequence).
enum class TimeQueueKind {
  kHeap,
  kWheel,
};

/// Backend selected by PERFCLOUD_TIMEQ ("heap" or "wheel"; anything else —
/// "Wheel", "fast", "" — throws std::invalid_argument rather than silently
/// falling back), defaulting to the wheel when unset.
[[nodiscard]] TimeQueueKind time_queue_from_env();

/// Handle returned when scheduling an event; can be used to cancel it.
///
/// A handle names a storage slot plus the generation the slot had when the
/// event was scheduled. Slots are recycled after an event fires or is
/// cancelled, but recycling bumps the generation, so a stale handle can
/// never cancel the wrong event (until a slot's 32-bit generation wraps,
/// i.e. after ~4 billion reuses of one slot).
struct EventHandle {
  std::uint32_t slot = 0;  ///< 1-based slot index; 0 = invalid.
  std::uint32_t generation = 0;
  [[nodiscard]] bool valid() const { return slot != 0; }
};

/// Timed callbacks with stable FIFO ordering for simultaneous events (ties
/// broken by insertion sequence, so behaviour is deterministic).
///
/// Callbacks live in a slot map: a free-list-indexed vector whose entries
/// are generation-tagged. The *ordering* of pending times is delegated to
/// the selected TimeQueueKind backend:
///  - kHeap: a min-heap of (t, seq) entries; O(log n) schedule/dispatch,
///    O(1) lazy cancellation (the stale heap entry is skipped later).
///  - kWheel: a hierarchical TimerWheel keyed by (t, seq) with the slot
///    index as payload; O(1) schedule, O(1) true cancellation, dispatch
///    amortized O(1) bucketing plus an O(log b) heap pop within the due
///    tick (b = events sharing the tick, not the whole queue).
/// Both backends dispatch in exactly (t, seq) order, so every simulation
/// output is byte-identical across them. Nothing ever searches or compacts
/// a sorted callback array.
class EventQueue {
 public:
  using Callback = std::function<void(SimTime)>;

  explicit EventQueue(TimeQueueKind kind = time_queue_from_env());

  [[nodiscard]] TimeQueueKind kind() const { return kind_; }

  /// Schedule `cb` to fire at absolute time `t`. `t` must not be in the past
  /// relative to the last popped event.
  EventHandle schedule(SimTime t, Callback cb);

  /// Cancel a scheduled event. Cancelling an already-fired or already-
  /// cancelled event is a harmless no-op. Returns true if the event was
  /// still pending.
  bool cancel(EventHandle h);

  [[nodiscard]] bool empty() const;
  [[nodiscard]] std::size_t pending() const { return live_; }

  /// Time of the next live event; SimTime::infinity() if none.
  [[nodiscard]] SimTime next_time() const;

  /// Pop and run the next live event; returns false if the queue is empty.
  bool run_next();

 private:
  static constexpr std::uint32_t kNoSlot = 0xffffffffu;

  struct Slot {
    Callback cb;
    std::uint32_t generation = 1;
    std::uint32_t next_free = kNoSlot;  ///< Free-list link; kNoSlot when live.
    bool live = false;
    TimerWheel::Handle wheel;  ///< The entry's wheel handle (kWheel only).
  };

  struct Entry {
    SimTime t;
    std::uint64_t seq;
    std::uint32_t slot;        ///< 0-based index into slots_.
    std::uint32_t generation;  ///< Slot generation at schedule time.
    // Heap invariant: earliest time first, then lowest sequence number.
    bool operator>(const Entry& other) const {
      if (t != other.t) return t > other.t;
      return seq > other.seq;
    }
  };

  /// Pop heap entries whose slot generation no longer matches (cancelled).
  void drop_cancelled() const;
  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t index);

  TimeQueueKind kind_;
  mutable std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  /// Wheel backend; mutable because peeking maintains its cached minimum.
  mutable TimerWheel wheel_;
  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kNoSlot;
  std::uint64_t next_seq_ = 0;
  std::size_t live_ = 0;
};

}  // namespace perfcloud::sim
