#include "sim/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace perfcloud::sim {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void RunningStats::reset() { *this = RunningStats{}; }

double RunningStats::mean() const { return n_ > 0 ? mean_ : 0.0; }

double RunningStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const { return min_; }
double RunningStats::max() const { return max_; }

double mean_of(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

namespace {
double sum_sq_dev(std::span<const double> xs, double mu) {
  double acc = 0.0;
  for (double x : xs) acc += (x - mu) * (x - mu);
  return acc;
}
}  // namespace

double stddev_of(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double mu = mean_of(xs);
  return std::sqrt(sum_sq_dev(xs, mu) / static_cast<double>(xs.size() - 1));
}

double population_stddev_of(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  const double mu = mean_of(xs);
  return std::sqrt(sum_sq_dev(xs, mu) / static_cast<double>(xs.size()));
}

double percentile_of(std::span<const double> xs, double q) {
  if (xs.empty()) return 0.0;
  assert(q >= 0.0 && q <= 1.0);
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

BoxStats box_stats_of(std::span<const double> xs) {
  BoxStats b;
  b.count = xs.size();
  if (xs.empty()) return b;
  b.min = percentile_of(xs, 0.0);
  b.q1 = percentile_of(xs, 0.25);
  b.median = percentile_of(xs, 0.5);
  b.q3 = percentile_of(xs, 0.75);
  b.max = percentile_of(xs, 1.0);
  b.mean = mean_of(xs);
  return b;
}

Histogram::Histogram(std::vector<double> edges) : edges_(std::move(edges)) {
  if (!std::is_sorted(edges_.begin(), edges_.end())) {
    throw std::invalid_argument("Histogram edges must be ascending");
  }
  counts_.assign(edges_.size() + 1, 0);
}

void Histogram::add(double x) {
  const auto it = std::upper_bound(edges_.begin(), edges_.end(), x);
  ++counts_[static_cast<std::size_t>(it - edges_.begin())];
  ++total_;
}

double Histogram::fraction(std::size_t bin) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(counts_.at(bin)) / static_cast<double>(total_);
}

}  // namespace perfcloud::sim
