// Process-wide heap allocation counters, fed by the optional counting
// operator new/delete replacement (alloc_hook.cpp, the `pc_alloc_hook`
// object library). Binaries that link the hook — the perf-label test binary
// and the micro benches — can bracket a code region and assert it performed
// zero heap allocations; binaries without the hook read zeros and report
// linked() == false.
//
// Counters are relaxed atomics: the zero-allocation gate runs the measured
// region single-threaded (shards=1), so the counts it reads are exact.
#pragma once

#include <atomic>
#include <cstdint>

namespace perfcloud::sim {

namespace alloc_detail {
// Written by the replaced operator new/delete in alloc_hook.cpp.
extern std::atomic<std::uint64_t> g_allocs;
extern std::atomic<std::uint64_t> g_frees;
extern std::atomic<std::uint64_t> g_bytes;
extern std::atomic<bool> g_hook_linked;
}  // namespace alloc_detail

struct AllocGaugeSnapshot {
  std::uint64_t allocs = 0;  ///< operator new calls.
  std::uint64_t frees = 0;   ///< operator delete calls (non-null).
  std::uint64_t bytes = 0;   ///< cumulative bytes requested.
};

[[nodiscard]] AllocGaugeSnapshot alloc_gauge_read();

/// True when the counting allocator hook is linked into this binary (so the
/// counters actually move). A gate must check this before trusting a zero.
[[nodiscard]] bool alloc_gauge_linked();

}  // namespace perfcloud::sim
