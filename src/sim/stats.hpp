// Streaming and batch statistics used by the performance monitor, the
// interference detector, and the experiment reporters.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace perfcloud::sim {

/// Numerically stable streaming mean/variance (Welford's algorithm).
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);
  void reset();

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const;
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double sum() const { return mean() * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Mean of a batch; 0 for an empty span.
[[nodiscard]] double mean_of(std::span<const double> xs);
/// Sample standard deviation of a batch; 0 for fewer than two samples.
/// This is the paper's deviation signal: stddev of the block-iowait ratio or
/// CPI measured across the VMs of one application on one host.
[[nodiscard]] double stddev_of(std::span<const double> xs);
/// Population standard deviation (n denominator).
[[nodiscard]] double population_stddev_of(std::span<const double> xs);

/// Linear-interpolation percentile of an unsorted batch, q in [0, 1].
/// Copies and sorts internally; intended for end-of-run reporting.
[[nodiscard]] double percentile_of(std::span<const double> xs, double q);

/// Five-number summary plus mean, used by the Fig-12 variability experiment
/// (box plots of normalized job completion time).
struct BoxStats {
  double min = 0.0;
  double q1 = 0.0;
  double median = 0.0;
  double q3 = 0.0;
  double max = 0.0;
  double mean = 0.0;
  std::size_t count = 0;
};

[[nodiscard]] BoxStats box_stats_of(std::span<const double> xs);

/// Fixed-bin histogram; used for the Fig-11 degradation-breakdown bars
/// ("fraction of jobs with < 10 % / 10-30 % / ... degradation").
class Histogram {
 public:
  /// `edges` are the interior bin edges, ascending; values below the first
  /// edge land in bin 0, values >= the last edge land in the final bin.
  explicit Histogram(std::vector<double> edges);

  void add(double x);
  [[nodiscard]] std::size_t bin_count() const { return counts_.size(); }
  [[nodiscard]] std::size_t count(std::size_t bin) const { return counts_.at(bin); }
  [[nodiscard]] std::size_t total() const { return total_; }
  /// Fraction of all samples in `bin`; 0 if no samples yet.
  [[nodiscard]] double fraction(std::size_t bin) const;

 private:
  std::vector<double> edges_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace perfcloud::sim
