#include "sim/shard_pool.hpp"

#include <algorithm>
#include <stdexcept>

#include "sim/arena.hpp"

namespace perfcloud::sim {

const char* to_string(ShardSchedule s) {
  return s == ShardSchedule::kStatic ? "static" : "work-stealing";
}

namespace {

/// Chunk size for a work-stealing claim starting at `pos` (claim-order
/// position, not task index). The head of a cost-desc order holds the heavy
/// tasks, so the first ~2*shards claims take one task each; the cheap tail
/// is claimed in linearly growing chunks to keep CAS traffic low.
std::size_t ws_chunk(std::size_t pos, unsigned shards) {
  return std::clamp<std::size_t>(pos / (2 * static_cast<std::size_t>(shards)),
                                 std::size_t{1}, std::size_t{64});
}

}  // namespace

ShardPool::ShardPool(unsigned shards) {
  if (shards < 1) throw std::invalid_argument("ShardPool: shards must be >= 1");
  workers_.reserve(shards - 1);
  for (unsigned i = 1; i < shards; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ShardPool::~ShardPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    shutdown_ = true;
  }
  cv_start_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ShardPool::run(std::size_t n, const std::function<void(std::size_t)>& body,
                    ShardSchedule schedule, const std::vector<std::uint32_t>* order) {
  if (n == 0) return;
  if (n > 0xffffffffull) throw std::invalid_argument("ShardPool: batch too large");
  if (order != nullptr && order->size() != n) {
    throw std::invalid_argument("ShardPool: claim order must cover every task");
  }
  std::uint32_t gen;
  {
    std::lock_guard<std::mutex> lk(mu_);
    body_ = &body;
    order_ = order;
    n_ = n;
    schedule_ = schedule;
    error_ = nullptr;
    gen = ++generation_;
    remaining_.store(n, std::memory_order_relaxed);
    claim_.store(pack(gen, 0), std::memory_order_release);
  }
  cv_start_.notify_all();
  drain(gen);
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lk(mu_);
    cv_done_.wait(lk, [&] { return remaining_.load(std::memory_order_acquire) == 0; });
    body_ = nullptr;
    order_ = nullptr;
    error = error_;
    error_ = nullptr;
  }
  if (error) std::rethrow_exception(error);
}

void ShardPool::drain(std::uint32_t gen) {
  drain_batch(gen);
  // Per-shard quantum scratch dies at the barrier: whatever this
  // participant's tasks carved from the thread-local arena is rewound (and
  // a grown chain consolidated) before the next batch.
  scratch_arena().reset();
}

void ShardPool::drain_batch(std::uint32_t gen) {
  // Copy the batch parameters for `gen`. If the batch is already finished
  // (or superseded), the claim loop below backs off before any of these are
  // dereferenced, so a stale copy is safe.
  const std::function<void(std::size_t)>* body;
  const std::vector<std::uint32_t>* order;
  std::size_t n;
  ShardSchedule schedule;
  unsigned shards;
  {
    std::lock_guard<std::mutex> lk(mu_);
    body = body_;
    order = order_;
    n = n_;
    schedule = schedule_;
    shards = this->shards();
  }

  // kStatic cuts the batch into `shards` contiguous blocks; a claim takes a
  // whole block. kWorkStealing claims growing chunks (heavy head singly).
  const std::size_t static_block = (n + shards - 1) / std::max(shards, 1u);

  for (;;) {
    std::uint64_t cur = claim_.load(std::memory_order_acquire);
    std::size_t pos = 0;
    std::size_t count = 0;
    for (;;) {
      if (static_cast<std::uint32_t>(cur >> 32) != gen) return;  // superseded batch
      pos = static_cast<std::size_t>(cur & 0xffffffffull);
      if (pos >= n) return;  // batch fully claimed
      const std::size_t chunk =
          schedule == ShardSchedule::kStatic ? static_block : ws_chunk(pos, shards);
      count = std::min(chunk, n - pos);
      if (claim_.compare_exchange_weak(cur, pack(gen, static_cast<std::uint32_t>(pos + count)),
                                       std::memory_order_acq_rel, std::memory_order_acquire)) {
        break;
      }
    }

    std::exception_ptr error;
    for (std::size_t k = pos; k < pos + count; ++k) {
      const std::size_t index = order != nullptr ? (*order)[k] : k;
      try {
        (*body)(index);
      } catch (...) {
        // Keep executing: the barrier must complete so the engine thread can
        // rethrow without leaving workers mid-batch.
        if (!error) error = std::current_exception();
      }
    }
    if (error) {
      std::lock_guard<std::mutex> lk(mu_);
      if (!error_) error_ = error;
    }
    if (remaining_.fetch_sub(count, std::memory_order_acq_rel) == count) {
      // Last chunk of the batch: wake the caller waiting at the barrier. The
      // empty critical section pairs with the caller's predicate check under
      // mu_ so the notification cannot be missed.
      { std::lock_guard<std::mutex> lk(mu_); }
      cv_done_.notify_all();
    }
  }
}

void ShardPool::worker_loop() {
  std::uint32_t seen = 0;
  for (;;) {
    std::uint32_t gen;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_start_.wait(lk, [&] { return shutdown_ || generation_ != seen; });
      if (shutdown_) return;
      seen = gen = generation_;
    }
    drain(gen);
  }
}

}  // namespace perfcloud::sim
