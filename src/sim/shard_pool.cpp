#include "sim/shard_pool.hpp"

#include <stdexcept>

namespace perfcloud::sim {

ShardPool::ShardPool(unsigned shards) {
  if (shards < 1) throw std::invalid_argument("ShardPool: shards must be >= 1");
  workers_.reserve(shards - 1);
  for (unsigned i = 1; i < shards; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ShardPool::~ShardPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    shutdown_ = true;
  }
  cv_start_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ShardPool::run(std::size_t n, const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  std::uint64_t gen;
  {
    std::lock_guard<std::mutex> lk(mu_);
    body_ = &body;
    next_ = 0;
    n_ = n;
    remaining_ = n;
    gen = ++generation_;
  }
  cv_start_.notify_all();
  drain(gen);
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lk(mu_);
    cv_done_.wait(lk, [&] { return remaining_ == 0; });
    body_ = nullptr;
    error = error_;
    error_ = nullptr;
  }
  if (error) std::rethrow_exception(error);
}

void ShardPool::drain(std::uint64_t gen) {
  for (;;) {
    const std::function<void(std::size_t)>* body;
    std::size_t i;
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (generation_ != gen || next_ >= n_) return;
      i = next_++;
      body = body_;
    }
    std::exception_ptr error;
    try {
      (*body)(i);
    } catch (...) {
      error = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (error && !error_) error_ = error;
      if (generation_ == gen && --remaining_ == 0) cv_done_.notify_all();
    }
  }
}

void ShardPool::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    std::uint64_t gen;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_start_.wait(lk, [&] { return shutdown_ || generation_ != seen; });
      if (shutdown_) return;
      seen = gen = generation_;
    }
    drain(gen);
  }
}

}  // namespace perfcloud::sim
