#include "sim/event_queue.hpp"

#include <algorithm>
#include <cassert>

namespace perfcloud::sim {

EventHandle EventQueue::schedule(SimTime t, Callback cb) {
  const std::uint64_t id = next_id_++;
  heap_.push(Entry{t, next_seq_++, id});
  callbacks_.emplace_back(id, std::move(cb));
  ++live_;
  return EventHandle{id};
}

EventQueue::Callback* EventQueue::find_callback(std::uint64_t id) {
  // callbacks_ stays sorted by id because ids are assigned monotonically and
  // appended in order.
  const auto it = std::lower_bound(callbacks_.begin(), callbacks_.end(), id,
                                   [](const auto& p, std::uint64_t v) { return p.first < v; });
  if (it == callbacks_.end() || it->first != id) return nullptr;
  return &it->second;
}

void EventQueue::erase_callback(std::uint64_t id) {
  const auto it = std::lower_bound(callbacks_.begin(), callbacks_.end(), id,
                                   [](const auto& p, std::uint64_t v) { return p.first < v; });
  if (it != callbacks_.end() && it->first == id) callbacks_.erase(it);
}

bool EventQueue::cancel(EventHandle h) {
  if (!h.valid()) return false;
  if (find_callback(h.id) == nullptr) return false;
  erase_callback(h.id);
  --live_;
  return true;
}

void EventQueue::drop_cancelled() const {
  // const_cast-free lazily skipping requires mutable heap_; we only remove
  // entries whose callback is gone, which does not change observable state.
  auto* self = const_cast<EventQueue*>(this);
  while (!heap_.empty()) {
    const Entry& top = heap_.top();
    if (self->find_callback(top.id) != nullptr) return;
    self->heap_.pop();
  }
}

bool EventQueue::empty() const {
  drop_cancelled();
  return heap_.empty();
}

SimTime EventQueue::next_time() const {
  drop_cancelled();
  return heap_.empty() ? SimTime::infinity() : heap_.top().t;
}

bool EventQueue::run_next() {
  drop_cancelled();
  if (heap_.empty()) return false;
  const Entry top = heap_.top();
  heap_.pop();
  Callback* cb = find_callback(top.id);
  assert(cb != nullptr);
  Callback fn = std::move(*cb);
  erase_callback(top.id);
  --live_;
  fn(top.t);
  return true;
}

}  // namespace perfcloud::sim
