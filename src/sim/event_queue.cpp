#include "sim/event_queue.hpp"

#include <cassert>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <utility>

namespace perfcloud::sim {

TimeQueueKind time_queue_from_env() {
  const char* env = std::getenv("PERFCLOUD_TIMEQ");
  if (env == nullptr) return TimeQueueKind::kWheel;
  const std::string s(env);
  if (s == "wheel") return TimeQueueKind::kWheel;
  if (s == "heap") return TimeQueueKind::kHeap;
  // Reject garbage loudly, like PERFCLOUD_SHARDS/PERFCLOUD_SCHED: a typo
  // silently picking a backend would defeat the A/B determinism gates.
  throw std::invalid_argument("PERFCLOUD_TIMEQ='" + s +
                              "' is not a valid time-queue kind (expected 'wheel' or 'heap')");
}

EventQueue::EventQueue(TimeQueueKind kind) : kind_(kind) {}

std::uint32_t EventQueue::acquire_slot() {
  if (free_head_ != kNoSlot) {
    const std::uint32_t index = free_head_;
    free_head_ = slots_[index].next_free;
    slots_[index].next_free = kNoSlot;
    slots_[index].live = true;
    return index;
  }
  slots_.push_back(Slot{});
  slots_.back().live = true;
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void EventQueue::release_slot(std::uint32_t index) {
  Slot& s = slots_[index];
  s.cb = nullptr;  // free captured state eagerly
  s.live = false;
  s.wheel = TimerWheel::Handle{};
  ++s.generation;  // stale heap entries and handles stop matching
  s.next_free = free_head_;
  free_head_ = index;
}

EventHandle EventQueue::schedule(SimTime t, Callback cb) {
  const std::uint32_t index = acquire_slot();
  Slot& s = slots_[index];
  s.cb = std::move(cb);
  if (kind_ == TimeQueueKind::kWheel) {
    // The sequence number is the wheel's tie-break key, so simultaneous
    // events fire in schedule order — exactly the heap's (t, seq) order.
    s.wheel = wheel_.insert(t.seconds(), next_seq_++, index);
  } else {
    heap_.push(Entry{t, next_seq_++, index, s.generation});
  }
  ++live_;
  return EventHandle{index + 1, s.generation};
}

bool EventQueue::cancel(EventHandle h) {
  if (!h.valid() || h.slot > slots_.size()) return false;
  const std::uint32_t index = h.slot - 1;
  Slot& s = slots_[index];
  if (!s.live || s.generation != h.generation) return false;
  if (kind_ == TimeQueueKind::kWheel) {
    const bool erased = wheel_.erase(s.wheel);
    assert(erased);
    (void)erased;
  }
  release_slot(index);
  --live_;
  return true;
}

void EventQueue::drop_cancelled() const {
  while (!heap_.empty()) {
    const Entry& top = heap_.top();
    const Slot& s = slots_[top.slot];
    if (s.live && s.generation == top.generation) return;
    heap_.pop();
  }
}

bool EventQueue::empty() const {
  if (kind_ == TimeQueueKind::kWheel) return wheel_.empty();
  drop_cancelled();
  return heap_.empty();
}

SimTime EventQueue::next_time() const {
  if (kind_ == TimeQueueKind::kWheel) {
    const TimerWheel::Entry* e = wheel_.peek();
    return e == nullptr ? SimTime::infinity() : SimTime(e->t);
  }
  drop_cancelled();
  return heap_.empty() ? SimTime::infinity() : heap_.top().t;
}

bool EventQueue::run_next() {
  if (kind_ == TimeQueueKind::kWheel) {
    TimerWheel::Entry e;
    if (!wheel_.pop(e)) return false;
    const std::uint32_t index = static_cast<std::uint32_t>(e.payload);
    Slot& s = slots_[index];
    assert(s.live);
    Callback fn = std::move(s.cb);
    release_slot(index);
    --live_;
    fn(SimTime(e.t));
    return true;
  }
  drop_cancelled();
  if (heap_.empty()) return false;
  const Entry top = heap_.top();
  heap_.pop();
  Slot& s = slots_[top.slot];
  assert(s.live && s.generation == top.generation);
  Callback fn = std::move(s.cb);
  release_slot(top.slot);
  --live_;
  fn(top.t);
  return true;
}

}  // namespace perfcloud::sim
