// Per-shard bump arena for per-quantum scratch (suspect lists, sample
// pointer vectors, deviation scratch). Each pool participant — worker
// threads and the engine thread alike — owns a thread-local arena
// (scratch_arena()); shard tasks carve allocations from it with ArenaScope /
// ArenaVec and the pool resets it when the participant leaves the batch, so
// in steady state a quantum performs zero heap allocations for scratch.
//
// Growth: when a block is exhausted a new block of twice the size is
// chained on — previous allocations stay valid for the rest of the quantum.
// reset() rewinds to offset zero and, if the arena ever chained, replaces
// the chain with one block sized to the observed high-water mark, so a
// warmed arena never allocates again.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <vector>

namespace perfcloud::sim {

class Arena {
 public:
  static constexpr std::size_t kInitialBlockBytes = 16 * 1024;

  Arena() = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Bump-allocate `bytes` aligned to `align` (a power of two). The memory
  /// is valid until the next reset()/rewind past it; nothing is destructed.
  void* allocate(std::size_t bytes, std::size_t align);

  /// Rewind everything and consolidate chained blocks into one block sized
  /// to the high-water mark (allocates only after a quantum that grew).
  void reset();

  /// Watermark for scoped rewind (ArenaScope). A mark taken before
  /// allocations A is only valid while every block A landed in still exists,
  /// i.e. until the next reset().
  struct Mark {
    std::size_t block = 0;
    std::size_t offset = 0;
  };
  [[nodiscard]] Mark mark() const { return Mark{current_, offset_}; }
  void rewind(Mark m);

  /// Total bytes handed out since the last reset (diagnostics).
  [[nodiscard]] std::size_t used() const;

 private:
  struct Block {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
  };

  void grow(std::size_t min_bytes);

  std::vector<Block> blocks_;
  std::size_t current_ = 0;  ///< Block being bumped.
  std::size_t offset_ = 0;   ///< Next free byte in blocks_[current_].
  std::size_t high_water_ = 0;
};

/// The calling thread's scratch arena. Shard tasks may use it freely: tasks
/// never migrate threads mid-run, and the pool resets each participant's
/// arena at batch exit (the barrier), never another thread's.
[[nodiscard]] Arena& scratch_arena();

/// RAII watermark: frees (rewinds) everything allocated inside the scope.
/// Scopes must nest properly within one thread.
class ArenaScope {
 public:
  explicit ArenaScope(Arena& arena) : arena_(arena), mark_(arena.mark()) {}
  ~ArenaScope() { arena_.rewind(mark_); }
  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;

 private:
  Arena& arena_;
  Arena::Mark mark_;
};

/// Minimal push_back vector on an arena, for trivially destructible scratch
/// (sample pointers, suspect signals, VM ids). Growth allocates a doubled
/// buffer from the arena and copies; the old buffer is abandoned until the
/// enclosing scope rewinds. No destructor runs for the elements.
template <typename T>
class ArenaVec {
  static_assert(std::is_trivially_destructible_v<T>,
                "ArenaVec never destroys elements; T must not need it");
  static_assert(std::is_trivially_copyable_v<T>,
                "ArenaVec grows by memcpy-style copy; T must be trivially copyable");

 public:
  explicit ArenaVec(Arena& arena) : arena_(arena) {}

  void push_back(const T& v) {
    if (size_ == capacity_) grow();
    data_[size_++] = v;
  }

  void reserve(std::size_t n) {
    if (n > capacity_) grow_to(n);
  }

  /// Set the size to `n`, value-initializing any new elements — the
  /// out-buffer shape for batch fills (monitor latest_batch/series_batch).
  void resize(std::size_t n) {
    reserve(n);
    for (std::size_t i = size_; i < n; ++i) data_[i] = T{};
    size_ = n;
  }

  [[nodiscard]] T* data() { return data_; }
  [[nodiscard]] const T* data() const { return data_; }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] T& operator[](std::size_t i) { return data_[i]; }
  [[nodiscard]] const T& operator[](std::size_t i) const { return data_[i]; }
  [[nodiscard]] T* begin() { return data_; }
  [[nodiscard]] T* end() { return data_ + size_; }
  [[nodiscard]] const T* begin() const { return data_; }
  [[nodiscard]] const T* end() const { return data_ + size_; }

 private:
  void grow() { grow_to(capacity_ == 0 ? 8 : capacity_ * 2); }

  void grow_to(std::size_t cap) {
    T* fresh = static_cast<T*>(arena_.allocate(cap * sizeof(T), alignof(T)));
    for (std::size_t i = 0; i < size_; ++i) fresh[i] = data_[i];
    data_ = fresh;
    capacity_ = cap;
  }

  Arena& arena_;
  T* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t capacity_ = 0;
};

}  // namespace perfcloud::sim
