#include "sim/correlation.hpp"

#include <cassert>
#include <cmath>
#include <vector>

namespace perfcloud::sim {

double pearson(std::span<const double> x, std::span<const double> y) {
  assert(x.size() == y.size());
  const std::size_t n = x.size();
  if (n < 2) return 0.0;
  double sx = 0.0;
  double sy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sx += x[i];
    sy += y[i];
  }
  const double mx = sx / static_cast<double>(n);
  const double my = sy / static_cast<double>(n);
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  const double denom = std::sqrt(sxx * syy);
  if (denom <= 1e-12) return 0.0;
  return sxy / denom;
}

double pearson_missing_as_zero(const TimeSeries& victim, const TimeSeries& suspect) {
  const std::vector<double> aligned = align_to(victim, suspect, /*missing_value=*/0.0);
  return pearson(victim.values(), aligned);
}

namespace {

/// Suspect samples aligned onto the victim's last `take` sample times
/// (missing -> 0), starting at victim index `start`.
std::vector<double> aligned_tail(const TimeSeries& victim, const TimeSeries& suspect,
                                 std::size_t start, std::size_t take) {
  std::vector<double> aligned(take, 0.0);
  std::size_t j = 0;
  if (take > 0 && !suspect.empty()) {
    const double t0 = victim.time(start).seconds();
    std::size_t lo = 0;
    std::size_t hi = suspect.size();
    while (lo < hi) {
      const std::size_t mid = (lo + hi) / 2;
      if (suspect.time(mid).seconds() < t0 - kTimeAlignTolS) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    j = lo;
  }
  for (std::size_t i = 0; i < take; ++i) {
    const double t = victim.time(start + i).seconds();
    while (j < suspect.size() && suspect.time(j).seconds() < t - kTimeAlignTolS) ++j;
    if (j < suspect.size() && std::abs(suspect.time(j).seconds() - t) <= kTimeAlignTolS) {
      aligned[i] = suspect.value(j);
      ++j;
    }
  }
  return aligned;
}

}  // namespace

double windowed_mean_missing_as_zero(const TimeSeries& victim, const TimeSeries& suspect,
                                     std::size_t window) {
  const std::size_t n = victim.size();
  const std::size_t take = std::min(window, n);
  if (take == 0) return 0.0;
  const std::vector<double> aligned = aligned_tail(victim, suspect, n - take, take);
  double sum = 0.0;
  for (const double v : aligned) sum += v;
  return sum / static_cast<double>(take);
}

double pearson_missing_as_zero(const TimeSeries& victim, const TimeSeries& suspect,
                               std::size_t window) {
  const std::size_t n = victim.size();
  const std::size_t take = std::min(window, n);
  const std::size_t start = n - take;
  // Align only the window: the monitor calls this every interval against
  // ever-growing series, so walking the full history would be quadratic
  // over a run.
  const std::vector<double> aligned = aligned_tail(victim, suspect, start, take);
  return pearson(victim.values().subspan(start), aligned);
}

}  // namespace perfcloud::sim
