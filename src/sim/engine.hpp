// Simulation engine: clock, event dispatch, and periodic activities.
#pragma once

#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/rng.hpp"
#include "sim/shard_pool.hpp"
#include "sim/types.hpp"

namespace perfcloud::sim {

/// A periodic activity whose work is a batch of independent host-local tasks
/// plus an optional sequential cross-host phase — the engine's sharded
/// execution unit (one per host group, not one periodic per host).
///
/// Each firing runs every task for the quantum across the engine's shard
/// pool, waits at the barrier, then runs the barrier function on the engine
/// thread. Tasks fire in index order when the engine has one shard; with
/// more shards they run concurrently, so each task must be thread-confined:
/// it may touch only its own host's state and read-only shared data — never
/// the engine (at/after/every/rng/stop), the registry it shares with sibling
/// tasks, or another host. Cross-host mutation belongs in the barrier
/// function, which runs alone.
///
/// Under the work-stealing schedule the engine measures each task's runtime,
/// folds it into a per-task EWMA, and re-sorts the claim order heavy-first
/// at deterministic rebalance epochs (every kRebalancePeriod firings, on the
/// engine thread). The measurements are wall-clock and therefore
/// nondeterministic — which is safe precisely because claim order is not
/// allowed to affect any output (see ShardSchedule).
///
/// Tasks may be appended between firings (hosts registering during setup);
/// appending from inside a task or barrier is not allowed.
class ShardedPeriodic {
 public:
  using Fn = std::function<void(SimTime)>;

  void add_task(Fn fn) { tasks_.push_back(std::move(fn)); }
  void set_barrier(Fn fn) { barrier_ = std::move(fn); }
  [[nodiscard]] std::size_t task_count() const { return tasks_.size(); }

 private:
  friend class Engine;
  std::vector<Fn> tasks_;
  Fn barrier_;
  // Work-stealing scheduler state, maintained by the engine thread between
  // pool runs. cost_ns_ is an EWMA of measured runtimes (new tasks start at
  // +inf so the next rebalance schedules them first and measures them);
  // last_cost_ns_ slots are written by whichever shard ran the task (the
  // barrier handshake orders those writes before the engine thread reads);
  // order_ is the heavy-first claim order.
  static constexpr std::uint64_t kRebalancePeriod = 16;
  std::vector<double> cost_ns_;
  std::vector<double> last_cost_ns_;
  std::vector<std::uint32_t> order_;
  std::uint64_t firings_ = 0;
};

/// Owns the simulated clock and the event queue, and drives periodic
/// activities (resource-arbitration ticks, monitor sampling, framework
/// scheduling polls).
///
/// Periodic activities registered with the same period fire in registration
/// order at each multiple of the period — deterministic, which matters
/// because arbitration must run before monitors sample its results.
///
/// The next-due periodic is tracked by the engine's time core, keyed by
/// (next_fire, registration_index). With the kHeap backend that is a
/// min-heap (O(1) peek, O(log P) re-insert per firing); with kWheel (the
/// default) both the peek and the re-arm are O(1) through a hierarchical
/// TimerWheel. Firing order — and therefore every output byte — is
/// identical across backends.
class Engine {
 public:
  using PeriodicFn = std::function<void(SimTime)>;

  explicit Engine(std::uint64_t seed = 42, TimeQueueKind timeq = time_queue_from_env());

  /// Backend of the time core (event queue + periodic re-arming), fixed at
  /// construction: PERFCLOUD_TIMEQ or the explicit constructor argument.
  [[nodiscard]] TimeQueueKind time_queue() const { return timeq_; }

  [[nodiscard]] SimTime now() const { return now_; }
  [[nodiscard]] Rng& rng() { return rng_; }

  /// Schedule a one-shot event at absolute time `t`.
  /// Throws std::invalid_argument if `t` is in the past (t < now()).
  EventHandle at(SimTime t, EventQueue::Callback cb);
  /// Schedule a one-shot event `dt` seconds from now.
  /// Throws std::invalid_argument if `dt` is negative.
  EventHandle after(double dt, EventQueue::Callback cb);
  bool cancel(EventHandle h) { return queue_.cancel(h); }

  /// Register a periodic activity firing every `period` seconds, first at
  /// time `start` (clamped up to now() if it lies in the past). Runs until
  /// the engine stops; there is no deregistration because entities live as
  /// long as the experiment.
  /// Throws std::invalid_argument if `period` is not positive.
  void every(double period, PeriodicFn fn, SimTime start = SimTime(0.0));

  /// Register a sharded periodic: one heap entry for a whole host group.
  /// Each firing runs the group's tasks across `shards()` threads, barriers,
  /// then runs its sequential phase. The returned reference stays valid for
  /// the engine's lifetime; add per-host tasks to it during setup.
  ShardedPeriodic& every_sharded(double period, SimTime start = SimTime(0.0));

  /// Run `fn` on the engine thread after every sharded periodic's firing,
  /// once its tasks have cleared the barrier and its sequential phase has
  /// run. This is the drain point for emission sinks: everything the shard
  /// tasks staged during the quantum is quiescent here. Hooks run in
  /// registration order; `fn` must outlive the engine's runs.
  void add_post_barrier_hook(PeriodicFn fn) { post_barrier_hooks_.push_back(std::move(fn)); }

  /// Run `fn` on the engine thread whenever a run_until/run_while call
  /// returns (end-of-run flush point for emission sinks). Hooks run in
  /// registration order, every time a run returns.
  void add_run_end_hook(PeriodicFn fn) { run_end_hooks_.push_back(std::move(fn)); }

  /// Worker threads for sharded periodics. Defaults to PERFCLOUD_SHARDS
  /// (a decimal integer in [1, 4096]; anything else — "abc", "0", "-2" —
  /// throws std::invalid_argument at construction rather than silently
  /// falling back) or 1 when unset; results are byte-identical for any value.
  [[nodiscard]] unsigned shards() const { return shards_; }
  /// Override the shard count. Throws std::invalid_argument outside
  /// [1, 4096] and std::logic_error once the pool exists (a sharded
  /// periodic has fired).
  void set_shards(unsigned shards);

  /// Claim discipline for sharded batches. Defaults to PERFCLOUD_SCHED
  /// ("static", or "ws"/"work-stealing"/"work_stealing"; anything else
  /// throws std::invalid_argument) or work-stealing when unset. Results are
  /// byte-identical under either schedule; only wall-clock time differs.
  [[nodiscard]] ShardSchedule schedule() const { return schedule_; }
  void set_schedule(ShardSchedule schedule) { schedule_ = schedule; }

  /// Run until the queue drains or `t_end` is reached, whichever is first.
  /// Returns the final simulated time.
  SimTime run_until(SimTime t_end);

  /// Run until `predicate()` becomes true (checked after every event) or
  /// `t_end` is reached. Used by experiment drivers to stop when a job set
  /// completes.
  SimTime run_while(const std::function<bool()>& keep_going, SimTime t_end);

  /// Request the current run_* call to return after the in-flight event.
  void stop() { stopped_ = true; }

 private:
  struct Periodic {
    double period;
    PeriodicFn fn;
    SimTime next;
  };

  /// One heap node per registered periodic, keyed by its pending fire time.
  /// Each periodic has exactly one outstanding node at any moment: firing
  /// pops it and pushes the advanced time back.
  struct DueEntry {
    SimTime next;
    std::size_t index;  ///< Registration index into periodics_.
    bool operator>(const DueEntry& other) const {
      if (next != other.next) return next > other.next;
      return index > other.index;
    }
  };

  /// Fire all periodics due at or before `t`, in a globally time-ordered,
  /// registration-stable order.
  void fire_due_periodics(SimTime t);
  /// Hand a periodic's pending fire time to the selected time core.
  void push_due(SimTime next, std::size_t index);
  [[nodiscard]] SimTime next_periodic_time() const;

  /// Run a sharded group's tasks for the quantum ending at `now`: inline in
  /// index order with one shard, across the pool (created lazily) otherwise.
  /// Under kWorkStealing this also maintains the group's cost model: tasks
  /// are timed, costs folded into per-task EWMAs, and the claim order
  /// re-sorted heavy-first at deterministic rebalance epochs.
  void run_shard_tasks(ShardedPeriodic& sp, SimTime now);
  static unsigned shards_from_env();
  static ShardSchedule schedule_from_env();

  SimTime now_{0.0};
  /// Declared before queue_/periodic_due_: both backends key off it.
  TimeQueueKind timeq_;
  EventQueue queue_;
  std::vector<Periodic> periodics_;
  /// kHeap backend for the pending fire times.
  std::priority_queue<DueEntry, std::vector<DueEntry>, std::greater<>> due_;
  /// kWheel backend: key and payload are both the registration index (one
  /// outstanding entry per periodic; periodics never deregister, so the
  /// erase path is never used). Mutable: peeking maintains the cached
  /// minimum.
  mutable TimerWheel periodic_due_;
  /// unique_ptr for address stability: firing closures hold raw pointers.
  std::vector<std::unique_ptr<ShardedPeriodic>> sharded_;
  std::vector<PeriodicFn> post_barrier_hooks_;
  std::vector<PeriodicFn> run_end_hooks_;
  unsigned shards_;
  ShardSchedule schedule_;
  std::unique_ptr<ShardPool> pool_;
  Rng rng_;
  bool stopped_ = false;
};

}  // namespace perfcloud::sim
