// Simulation engine: clock, event dispatch, and periodic activities.
#pragma once

#include <functional>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/rng.hpp"
#include "sim/types.hpp"

namespace perfcloud::sim {

/// Owns the simulated clock and the event queue, and drives periodic
/// activities (resource-arbitration ticks, monitor sampling, framework
/// scheduling polls).
///
/// Periodic activities registered with the same period fire in registration
/// order at each multiple of the period — deterministic, which matters
/// because arbitration must run before monitors sample its results.
class Engine {
 public:
  using PeriodicFn = std::function<void(SimTime)>;

  explicit Engine(std::uint64_t seed = 42);

  [[nodiscard]] SimTime now() const { return now_; }
  [[nodiscard]] Rng& rng() { return rng_; }

  /// Schedule a one-shot event at absolute time `t` (>= now).
  EventHandle at(SimTime t, EventQueue::Callback cb);
  /// Schedule a one-shot event `dt` seconds from now.
  EventHandle after(double dt, EventQueue::Callback cb);
  bool cancel(EventHandle h) { return queue_.cancel(h); }

  /// Register a periodic activity firing every `period` seconds, first at
  /// time `start`. Runs until the engine stops; there is no deregistration
  /// because entities live as long as the experiment.
  void every(double period, PeriodicFn fn, SimTime start = SimTime(0.0));

  /// Run until the queue drains or `t_end` is reached, whichever is first.
  /// Returns the final simulated time.
  SimTime run_until(SimTime t_end);

  /// Run until `predicate()` becomes true (checked after every event) or
  /// `t_end` is reached. Used by experiment drivers to stop when a job set
  /// completes.
  SimTime run_while(const std::function<bool()>& keep_going, SimTime t_end);

  /// Request the current run_* call to return after the in-flight event.
  void stop() { stopped_ = true; }

 private:
  struct Periodic {
    double period;
    PeriodicFn fn;
    SimTime next;
  };

  void pump_periodics_until(SimTime t);
  /// Fire all periodics due at exactly their next times <= t, in a globally
  /// time-ordered, registration-stable order.
  void fire_due_periodics(SimTime t);

  SimTime now_{0.0};
  EventQueue queue_;
  std::vector<Periodic> periodics_;
  Rng rng_;
  bool stopped_ = false;
};

}  // namespace perfcloud::sim
