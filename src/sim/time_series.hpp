// Time-stamped metric series used by the monitor, the antagonist identifier,
// and the figure-reproduction benches.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "sim/types.hpp"

namespace perfcloud::sim {

/// Append-only series of (time, value) samples.
///
/// Samples may be *missing* for some entities at some times (e.g. a suspect
/// VM that is idle has no LLC-miss sample); alignment helpers below implement
/// the paper's policy of treating missing values as zero rather than
/// omitting them (§III-B).
///
/// A series may be *bounded*: with a capacity set, `add` evicts the oldest
/// sample once the series is full, so it always holds the most recent
/// `capacity` samples. Monitors use this so suspect-side series stop growing
/// without bound over long runs — identification only ever looks a window
/// back. Storage stays contiguous (the spans below remain valid views of the
/// whole series), so eviction is a small front-shift of at most `capacity`
/// elements rather than a pointer-chasing ring.
class TimeSeries {
 public:
  TimeSeries() = default;
  explicit TimeSeries(std::string name) : name_(std::move(name)) {}
  TimeSeries(std::string name, std::size_t capacity)
      : name_(std::move(name)), capacity_(capacity) {}

  void add(SimTime t, double value);
  void clear();

  /// Bound the series to the most recent `n` samples (0 = unbounded).
  /// Shrinking below the current size evicts the oldest samples now.
  void set_capacity(std::size_t n);
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::size_t size() const { return times_.size(); }
  [[nodiscard]] bool empty() const { return times_.empty(); }
  [[nodiscard]] SimTime time(std::size_t i) const { return times_.at(i); }
  [[nodiscard]] double value(std::size_t i) const { return values_.at(i); }
  [[nodiscard]] std::span<const double> values() const { return values_; }
  [[nodiscard]] std::span<const SimTime> times() const { return times_; }

  /// Last `n` values (or all, if fewer exist), oldest first.
  [[nodiscard]] std::vector<double> tail(std::size_t n) const;

  /// Maximum absolute value; 0 for an empty series.
  [[nodiscard]] double peak() const;

  /// Values divided by `peak()` (series of zeros if the peak is 0). The
  /// paper's identification figures plot peak-normalized signals.
  [[nodiscard]] std::vector<double> normalized_by_peak() const;

  /// Value at the sample taken at or immediately before `t`; nullopt if the
  /// series has no sample at or before `t`.
  [[nodiscard]] std::optional<double> at_or_before(SimTime t) const;

  /// Value of the sample taken at exactly `t` (within `tol` seconds);
  /// nullopt if no sample exists there. O(1) when `t` is the newest sample
  /// time (the monitor/identifier hot path), O(log n) otherwise.
  [[nodiscard]] std::optional<double> value_at(SimTime t, double tol = kTimeAlignTolS) const;

 private:
  std::string name_;
  std::size_t capacity_ = 0;  ///< 0 = unbounded.
  std::vector<SimTime> times_;
  std::vector<double> values_;
};

/// Align `series` onto the sample grid of `reference`: for each reference
/// timestamp take the series sample at that exact time (within `tol`
/// seconds), substituting `missing_value` where none exists. This is the
/// missing-as-zero alignment PerfCloud uses before correlating victim and
/// suspect signals.
[[nodiscard]] std::vector<double> align_to(const TimeSeries& reference, const TimeSeries& series,
                                           double missing_value = 0.0,
                                           double tol = kTimeAlignTolS);

}  // namespace perfcloud::sim
