// Hierarchical timer wheel: the O(1) time core behind the event queue and
// the engine's periodic re-arming (DESIGN.md §5l).
//
// Entries are totally ordered by (time, key); `key` is the caller's
// tie-break token — the event queue passes its insertion sequence number,
// the engine passes the periodic's registration index — so the wheel
// reproduces the min-heap backend's stable FIFO order for simultaneous
// deadlines bit for bit. Keys must be unique among pending entries.
//
// Layout: kLevels levels of kSlots buckets each. Level 0 buckets single
// ticks (tick_seconds per slot); each higher level covers kSlots times the
// span of the one below, so the wheel spans kSlots^kLevels ticks from the
// cursor. Buckets are intrusive singly-linked lists over a slab of
// generation-tagged timer nodes — linking touches only the new node and
// the bucket-head array, never the previous head's cache line, which
// matters when the slab outgrows L2. Erasure is O(1) and lazy everywhere:
// a linked node is marked dead in place and swept (released) when its
// bucket cascades; heap-resident nodes release immediately and their heap
// entries go stale. One occupancy bitmap per level. Entries due at the
// cursor's tick live in a small vector (`ready_`) sorted descending by
// (t, key) and popped from the back — the tick groups them, one bulk sort
// per cascade orders within the tick. Deadlines beyond the top level's
// span (or non-finite) wait in an overflow min-heap and never cascade.
//
// Advancing: the cursor jumps straight to the next pending tick (found via
// the bitmaps, no empty-slot stepping); the slot containing that tick at
// each upper level cascades top-down, and relocated entries always land
// strictly below their old level because their remaining delta is under the
// level's span. The steady state allocates nothing: the slab and both heap
// vectors reuse their capacity, and a fire-then-rearm cycle recycles the
// winner's slab node via the free list.
#pragma once

#include <algorithm>
#include <array>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace perfcloud::sim {

class TimerWheel {
 public:
  /// Names a pending entry for O(1) cancellation. Slab nodes are recycled,
  /// but recycling bumps the generation, so a stale handle can never erase
  /// a later entry that reuses the node.
  struct Handle {
    std::uint32_t id = 0xffffffffu;
    std::uint32_t gen = 0;
    [[nodiscard]] bool valid() const { return id != 0xffffffffu; }
  };

  /// One pending deadline, as returned by peek()/pop().
  struct Entry {
    double t = 0.0;
    std::uint64_t key = 0;
    std::uint64_t payload = 0;
  };

  /// Default bucket width: a twentieth of the 1 s control quantum, fine
  /// enough that the engine's 0.1 s arbitration ticks land in distinct
  /// buckets (ordering never depends on it — only bucketing does).
  static constexpr double kDefaultTickSeconds = 0.05;

  explicit TimerWheel(double tick_seconds = kDefaultTickSeconds);

  /// Insert a deadline. `key` must be unique among pending entries; it is
  /// the FIFO tie-break for equal times. O(1).
  Handle insert(double t, std::uint64_t key, std::uint64_t payload);

  /// Erase a pending entry. Returns false for already-fired, already-erased,
  /// or stale handles. O(1) and lazy: linked entries are marked dead in
  /// place (their slab node is swept when the bucket cascades), heap-
  /// resident entries release now and their heap entries go stale.
  bool erase(Handle h);

  [[nodiscard]] bool empty() const { return live_ == 0; }
  [[nodiscard]] std::size_t size() const { return live_; }

  /// Earliest pending entry by (t, key); nullptr when empty. The pointer is
  /// valid until the next insert/erase/pop. Not const: the lookup maintains
  /// the cached minimum and drops lazily-erased heap entries.
  [[nodiscard]] const Entry* peek();

  /// Pop the earliest entry into `out`; false when empty.
  bool pop(Entry& out);

  // --- Introspection (tests/debug) ---
  /// Where a live entry currently resides: 0..kLevels-1 = wheel level,
  /// kInReady = current-tick heap, kInOverflow = beyond-horizon heap,
  /// kDead = fired/erased/stale handle.
  static constexpr int kInReady = -1;
  static constexpr int kInOverflow = -2;
  static constexpr int kDead = -3;
  [[nodiscard]] int locate(Handle h) const;
  [[nodiscard]] std::uint64_t cursor_tick() const { return cursor_; }
  [[nodiscard]] std::uint64_t tick_of(double t) const;

  static constexpr int kLevels = 4;
  static constexpr int kSlotBits = 6;
  static constexpr std::uint64_t kSlots = 64;  ///< Per level; bitmap word width.
  /// Ticks covered by the whole wheel (kSlots^kLevels); deadlines further
  /// out than this from the cursor wait in the overflow heap.
  static constexpr std::uint64_t kHorizonTicks = kSlots * kSlots * kSlots * kSlots;

 private:
  static constexpr std::uint32_t kNil = 0xffffffffu;
  static constexpr std::uint64_t kSlotMask = kSlots - 1;
  /// Bucket tick of deadlines the tick computation overflowed on (huge or
  /// non-finite t): later than every finite deadline.
  static constexpr std::uint64_t kFarTick = ~std::uint64_t{0};
  /// Tick values at or beyond this cannot be represented in the uint64 cast
  /// (and are centuries past any simulation anyway): such deadlines —
  /// including +inf — take the overflow path with a past-everything tick.
  static constexpr double kMaxTickAsDouble = 9.0e18;

  /// kErased: a linked node whose entry was cancelled — it stays threaded
  /// in its bucket (singly-linked lists cannot unlink in O(1)) until the
  /// cascade detaches the bucket and releases it.
  enum class State : std::uint8_t { kFree, kLinked, kReady, kOverflow, kErased };

  /// 40 bytes: no prev link (buckets are singly-linked) and no cached tick
  /// (tick_of is one multiply; the slab footprint at 100k live timers is
  /// the scarcer resource).
  struct Timer {
    double t = 0.0;
    std::uint64_t key = 0;
    std::uint64_t payload = 0;
    std::uint32_t gen = 1;
    std::uint32_t next = kNil;  ///< Bucket list link; free-list link when kFree.
    std::uint32_t bucket = 0;   ///< Owning bucket index (kLinked/kErased only).
    State state = State::kFree;
  };

  /// Node of ready_/overflow_. Stale once the timer's generation moved on
  /// (erase is lazy for heap/vector-resident entries). Deliberately 24
  /// bytes — ordering fields only, no payload: the per-tick bulk sort and
  /// the overflow sifts move these around, and the payload is fetched from
  /// the slab just once, when an entry becomes the cached winner (a line
  /// the imminent pop dereferences anyway).
  struct HeapEntry {
    double t;
    std::uint64_t key;
    std::uint32_t id;
    std::uint32_t gen;
  };
  /// Later-(t, key)-first ordering: the comparator of the overflow min-heap
  /// (std::push_heap/pop_heap) and the sort order of ready_ (descending, so
  /// the earliest entry is at the back). Keys are unique, so no full ties.
  struct HeapLater {
    bool operator()(const HeapEntry& a, const HeapEntry& b) const {
      if (a.t != b.t) return a.t > b.t;
      return a.key > b.key;
    }
  };

  // The per-firing path (insert/erase/peek/pop plus these helpers) is
  // defined inline below the class: the heap backend it races against is a
  // header-only std::priority_queue, and without cross-TU inlining the
  // wheel would pay several opaque calls per firing that the heap doesn't.
  std::uint32_t acquire(double t, std::uint64_t key, std::uint64_t payload);
  void release(std::uint32_t id);
  /// Route a detached timer to its bucket / ready_ / overflow_ based on its
  /// tick's distance from the cursor.
  void place(std::uint32_t id, std::uint64_t tick);
  void link(std::uint32_t id, int level, std::uint64_t tick);
  void push_ready(std::uint32_t id);
  void push_overflow(std::uint32_t id);
  /// Pop lazily-erased entries off the heap tops. Gated on the per-heap
  /// stale counters: with no pending lazy erasures these are a single
  /// branch, not two slab reads per peek.
  void drop_stale_ready();
  void drop_stale_overflow();
  /// Jump the cursor to `tick` (every pending entry's tick must be >= it)
  /// and cascade the slot containing `tick` at each level, top-down; due
  /// entries end up in ready_.
  void advance_to(std::uint64_t tick);
  /// Recompute the cached minimum; false when no live entry exists.
  bool refresh_next();

  double tick_s_;
  double inv_tick_s_;
  std::vector<Timer> timers_;   ///< Slab; nodes recycled through free_head_.
  std::uint32_t free_head_ = kNil;
  std::array<std::uint32_t, static_cast<std::size_t>(kLevels) * kSlots> bucket_head_;
  std::array<std::uint64_t, kLevels> occupied_{};  ///< One bit per slot.
  std::vector<HeapEntry> ready_;     ///< Due at the cursor tick; sorted descending.
  std::vector<HeapEntry> overflow_;  ///< Beyond the horizon, min-(t, key).
  std::uint32_t stale_ready_ = 0;    ///< Lazily-erased entries still in ready_.
  std::uint32_t stale_overflow_ = 0;
  std::uint64_t cursor_ = 0;  ///< Tick of the last linked pop; never retreats.
  std::size_t live_ = 0;
  // Cached minimum: kept through inserts (compared incrementally) and
  // invalidated by pops and by erasure of the cached winner.
  bool next_valid_ = false;
  Entry next_{};
  std::uint32_t next_id_ = kNil;
};

// --- Inline hot path ------------------------------------------------------

inline std::uint64_t TimerWheel::tick_of(double t) const {
  const double q = t * inv_tick_s_;
  // Monotone in t, with clamped endpoints: ordering correctness never
  // depends on the tick (peek/pop compare (t, key) directly), only the
  // bucketing does, so clamping is safe.
  if (!(q >= 0.0)) return 0;
  if (q >= kMaxTickAsDouble) return kFarTick;
  return static_cast<std::uint64_t>(q);
}

inline std::uint32_t TimerWheel::acquire(double t, std::uint64_t key, std::uint64_t payload) {
  std::uint32_t id;
  if (free_head_ != kNil) {
    id = free_head_;
    free_head_ = timers_[id].next;
  } else {
    id = static_cast<std::uint32_t>(timers_.size());
    timers_.push_back(Timer{});
  }
  Timer& tm = timers_[id];
  tm.t = t;
  tm.key = key;
  tm.payload = payload;
  tm.next = kNil;
  return id;
}

inline void TimerWheel::release(std::uint32_t id) {
  Timer& tm = timers_[id];
  tm.state = State::kFree;
  ++tm.gen;  // stale handles and lazy heap entries stop matching
  tm.next = free_head_;
  free_head_ = id;
}

inline void TimerWheel::link(std::uint32_t id, int level, std::uint64_t tick) {
  Timer& tm = timers_[id];
  const std::uint64_t slot = (tick >> (kSlotBits * level)) & kSlotMask;
  const std::uint32_t b = static_cast<std::uint32_t>(level) * static_cast<std::uint32_t>(kSlots) +
                          static_cast<std::uint32_t>(slot);
  tm.state = State::kLinked;
  tm.bucket = b;
  // Push-front onto a singly-linked bucket: the only lines written are the
  // new node (just filled by acquire, hot) and the head array (16 KB, hot).
  // The previous head — a random slab line — is never touched; that one
  // write per insert dominated the wheel's cost once the slab left L2.
  tm.next = bucket_head_[b];
  bucket_head_[b] = id;
  occupied_[static_cast<std::size_t>(level)] |= std::uint64_t{1} << slot;
}

inline void TimerWheel::push_ready(std::uint32_t id) {
  Timer& tm = timers_[id];
  tm.state = State::kReady;
  const HeapEntry e{tm.t, tm.key, id, tm.gen};
  // Sorted insertion (ready_ is descending, earliest at the back). Only
  // at-cursor-tick inserts come through here — the cascade path bulk
  // appends and sorts instead — and those usually belong at/near the back.
  ready_.insert(std::upper_bound(ready_.begin(), ready_.end(), e, HeapLater{}), e);
}

inline void TimerWheel::push_overflow(std::uint32_t id) {
  Timer& tm = timers_[id];
  tm.state = State::kOverflow;
  overflow_.push_back(HeapEntry{tm.t, tm.key, id, tm.gen});
  std::push_heap(overflow_.begin(), overflow_.end(), HeapLater{});
}

inline void TimerWheel::place(std::uint32_t id, std::uint64_t tick) {
  const std::uint64_t delta = tick <= cursor_ ? 0 : tick - cursor_;
  if (delta == 0) {
    push_ready(id);
    return;
  }
  if (delta >= kHorizonTicks) {
    push_overflow(id);
    return;
  }
  int level = 0;
  std::uint64_t span = kSlots;
  while (delta >= span) {
    ++level;
    span <<= kSlotBits;
  }
  link(id, level, tick);
}

inline void TimerWheel::drop_stale_ready() {
  if (stale_ready_ == 0) return;
  while (!ready_.empty() && timers_[ready_.back().id].gen != ready_.back().gen) {
    ready_.pop_back();
    --stale_ready_;
  }
}

inline void TimerWheel::drop_stale_overflow() {
  if (stale_overflow_ == 0) return;
  while (!overflow_.empty() && timers_[overflow_.front().id].gen != overflow_.front().gen) {
    std::pop_heap(overflow_.begin(), overflow_.end(), HeapLater{});
    overflow_.pop_back();
    --stale_overflow_;
  }
}

inline TimerWheel::Handle TimerWheel::insert(double t, std::uint64_t key, std::uint64_t payload) {
  const std::uint32_t id = acquire(t, key, payload);
  place(id, tick_of(t));
  ++live_;
  // Keep the cached minimum current instead of invalidating it: one compare
  // beats a rescan when inserts and pops interleave (periodic re-arming).
  if (next_valid_ && (t < next_.t || (t == next_.t && key < next_.key))) {
    next_ = Entry{t, key, payload};
    next_id_ = id;
  }
  return Handle{id, timers_[id].gen};
}

inline bool TimerWheel::erase(Handle h) {
  if (!h.valid() || h.id >= timers_.size()) return false;
  Timer& tm = timers_[h.id];
  if (tm.state == State::kFree || tm.state == State::kErased || tm.gen != h.gen) return false;
  if (tm.state == State::kLinked) {
    // Singly-linked buckets cannot unlink in O(1): mark the node dead in
    // place and let the cascade release it when the bucket detaches. Its
    // occupancy bit stays set until then — a cascade that sweeps only
    // corpses simply leaves ready_ empty and refresh_next keeps going.
    tm.state = State::kErased;
  } else {
    // kReady/kOverflow nodes release now; their heap entries go stale (the
    // generation bump stops them matching) and the counter-gated
    // drop_stale passes discard them from the top.
    if (tm.state == State::kReady) {
      ++stale_ready_;
    } else {
      ++stale_overflow_;
    }
    release(h.id);
  }
  --live_;
  if (next_valid_ && next_id_ == h.id) next_valid_ = false;
  return true;
}

inline const TimerWheel::Entry* TimerWheel::peek() {
  if (live_ == 0) return nullptr;
  if (!next_valid_ && !refresh_next()) return nullptr;
  return &next_;
}

inline bool TimerWheel::pop(Entry& out) {
  if (peek() == nullptr) return false;
  const std::uint32_t id = next_id_;
  Timer& tm = timers_[id];
  if (tm.state == State::kLinked) {
    // The winner has the minimum (t, key), hence the minimum tick: jumping
    // the cursor to it is legal, and the cascade lands the winner (and its
    // whole tick bucket) in ready_.
    advance_to(tick_of(tm.t));
  } else if (tm.state == State::kOverflow) {
    // A beyond-horizon winner still advances the cursor, so inserts after
    // the jump measure their delta from the new position instead of
    // permanently overflowing. Remaining overflow entries drain lazily in
    // heap order (never relocated — correct, just not O(1)).
    const std::uint64_t tick = tick_of(tm.t);
    if (tick != kFarTick && tick > cursor_) advance_to(tick);
  }
  if (tm.state == State::kReady) {
    drop_stale_ready();
    assert(!ready_.empty() && ready_.back().id == id);
    ready_.pop_back();
  } else {
    assert(tm.state == State::kOverflow);
    drop_stale_overflow();
    assert(!overflow_.empty() && overflow_.front().id == id);
    std::pop_heap(overflow_.begin(), overflow_.end(), HeapLater{});
    overflow_.pop_back();
  }
  out = next_;  // peek() above validated the cached winner, which is `id`
  release(id);
  --live_;
  // Common case — more of the same tick batch pending, nothing lazily
  // erased, no overflow: the new winner is ready_'s front, no refresh pass.
  if (!ready_.empty() && stale_ready_ == 0 && overflow_.empty()) {
    const HeapEntry& f = ready_.back();
    next_ = Entry{f.t, f.key, timers_[f.id].payload};
    next_id_ = f.id;
    next_valid_ = true;
  } else {
    next_valid_ = false;
  }
  return true;
}

}  // namespace perfcloud::sim
