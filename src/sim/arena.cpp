#include "sim/arena.hpp"

#include <algorithm>

namespace perfcloud::sim {

namespace {

std::size_t align_up(std::size_t n, std::size_t align) {
  return (n + align - 1) & ~(align - 1);
}

}  // namespace

void* Arena::allocate(std::size_t bytes, std::size_t align) {
  if (bytes == 0) bytes = 1;
  for (;;) {
    if (current_ < blocks_.size()) {
      Block& b = blocks_[current_];
      const std::size_t start = align_up(offset_, align);
      if (start + bytes <= b.size) {
        offset_ = start + bytes;
        return b.data.get() + start;
      }
      // This block is exhausted: charge its tail to the high-water mark and
      // move on (a later block may already exist after a rewind).
      offset_ = 0;
      ++current_;
      if (current_ < blocks_.size()) continue;
    }
    grow(bytes + align);
  }
}

void Arena::grow(std::size_t min_bytes) {
  std::size_t size = blocks_.empty() ? kInitialBlockBytes : blocks_.back().size * 2;
  size = std::max(size, min_bytes);
  blocks_.push_back(Block{std::make_unique<std::byte[]>(size), size});
  current_ = blocks_.size() - 1;
  offset_ = 0;
}

std::size_t Arena::used() const {
  std::size_t total = 0;
  for (std::size_t i = 0; i < current_ && i < blocks_.size(); ++i) total += blocks_[i].size;
  return total + offset_;
}

void Arena::reset() {
  high_water_ = std::max(high_water_, used());
  if (blocks_.size() > 1) {
    // Consolidate: one block covering everything the chain ever held, so the
    // next quantum bumps through a single contiguous block.
    const std::size_t size = std::max(high_water_, blocks_.back().size);
    blocks_.clear();
    blocks_.push_back(Block{std::make_unique<std::byte[]>(size), size});
  }
  current_ = 0;
  offset_ = 0;
}

void Arena::rewind(Mark m) {
  // The scope being unwound held the peak usage reset() will see nothing of;
  // record it so consolidation sizes the single block to the true maximum.
  high_water_ = std::max(high_water_, used());
  // Only rewind backwards; blocks past m.block stay allocated (their memory
  // is dead until reset() consolidates) so earlier marks remain valid.
  if (m.block < current_ || (m.block == current_ && m.offset <= offset_)) {
    current_ = m.block;
    offset_ = m.offset;
  }
}

Arena& scratch_arena() {
  thread_local Arena arena;
  return arena;
}

}  // namespace perfcloud::sim
