// Exponentially weighted moving average, as used by PerfCloud's performance
// monitor to smooth metric samples collected at 5-second intervals (§III-D).
#pragma once

#include <cassert>

namespace perfcloud::sim {

class Ewma {
 public:
  /// `alpha` is the weight of the newest sample in (0, 1]. alpha = 1 degrades
  /// to pass-through (no smoothing).
  explicit Ewma(double alpha = 0.3) : alpha_(alpha) { assert(alpha > 0.0 && alpha <= 1.0); }

  double update(double sample) {
    if (!seeded_) {
      value_ = sample;
      seeded_ = true;
    } else {
      value_ = alpha_ * sample + (1.0 - alpha_) * value_;
    }
    return value_;
  }

  [[nodiscard]] bool seeded() const { return seeded_; }
  [[nodiscard]] double value() const { return value_; }
  void reset() {
    seeded_ = false;
    value_ = 0.0;
  }

 private:
  double alpha_;
  double value_ = 0.0;
  bool seeded_ = false;
};

}  // namespace perfcloud::sim
