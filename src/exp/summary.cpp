#include "exp/summary.hpp"

#include <ostream>
#include <vector>

#include "exp/report.hpp"
#include "sim/stats.hpp"

namespace perfcloud::exp {

RunSummary summarize(const wl::ScaleOutFramework& framework) {
  RunSummary s;
  std::vector<double> jcts;
  for (const auto& job : framework.jobs()) {
    ++s.jobs_submitted;
    if (job->completed()) {
      ++s.jobs_completed;
      jcts.push_back(job->jct());
    } else if (job->killed()) {
      ++s.jobs_killed;
    }
    for (std::size_t st = 0; st < job->stage_count(); ++st) {
      for (const wl::TaskState& t : job->stage(st)) {
        for (const wl::AttemptRecord& a : t.attempts) {
          ++s.attempts_total;
          if (a.speculative) ++s.attempts_speculative;
          if (a.killed) ++s.attempts_killed;
        }
      }
    }
  }
  if (!jcts.empty()) {
    s.mean_jct = sim::mean_of(jcts);
    s.median_jct = sim::percentile_of(jcts, 0.5);
    s.p95_jct = sim::percentile_of(jcts, 0.95);
    s.max_jct = sim::percentile_of(jcts, 1.0);
  }
  s.utilization_efficiency = framework.utilization_efficiency();
  return s;
}

void record(sim::EmitSink& sink, sim::EmitSink::SourceId source, const RunSummary& s) {
  sink.bump_counter(source, "jobs_submitted", s.jobs_submitted);
  sink.bump_counter(source, "jobs_completed", s.jobs_completed);
  sink.bump_counter(source, "jobs_killed", s.jobs_killed);
  sink.bump_counter(source, "mean_jct_s", s.mean_jct);
  sink.bump_counter(source, "p95_jct_s", s.p95_jct);
  sink.bump_counter(source, "attempts_total", s.attempts_total);
  sink.bump_counter(source, "attempts_speculative", s.attempts_speculative);
  sink.bump_counter(source, "attempts_killed", s.attempts_killed);
  sink.bump_counter(source, "utilization_efficiency", s.utilization_efficiency);
}

void print(std::ostream& os, const RunSummary& s) {
  os << "jobs: " << s.jobs_completed << "/" << s.jobs_submitted << " completed";
  if (s.jobs_killed > 0) os << ", " << s.jobs_killed << " killed";
  os << "\nJCT: mean " << fmt(s.mean_jct, 1) << " s, median " << fmt(s.median_jct, 1)
     << " s, p95 " << fmt(s.p95_jct, 1) << " s, max " << fmt(s.max_jct, 1) << " s\n"
     << "attempts: " << s.attempts_total << " total, " << s.attempts_speculative
     << " speculative, " << s.attempts_killed << " killed/failed\n"
     << "utilization efficiency: " << fmt(s.utilization_efficiency, 3) << "\n";
}

}  // namespace perfcloud::exp
