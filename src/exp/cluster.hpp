// Experiment cluster builder: assembles engine, cloud, hosts, a virtual
// Hadoop/Spark cluster, antagonist VMs, and (optionally) PerfCloud node
// managers into one ready-to-run scenario.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cloud/cloud_manager.hpp"
#include "core/node_manager.hpp"
#include "exp/event_sink.hpp"
#include "faults/fault_injector.hpp"
#include "policy/migration_policy.hpp"
#include "sim/engine.hpp"
#include "workloads/antagonists.hpp"
#include "workloads/framework.hpp"

namespace perfcloud::exp {

/// Cluster placement discipline for the worker VMs.
enum class Placement {
  /// Round-robin over the hosts (the paper's §IV-A virtual clusters).
  kSpread,
  /// Fill hosts in provisioning order, as many VMs per host as its cores
  /// and DRAM admit — the consolidation pressure that makes high-priority
  /// collisions (and thus §IV-D migration escalations) actually happen.
  kPacked,
  /// Uniformly random host per VM (the paper's §IV-C antagonist
  /// distribution), drawn from a dedicated placement RNG seeded from
  /// `seed` — never from the engine's stream.
  kRandom,
};

struct ClusterParams {
  int hosts = 1;
  /// Worker VMs of the high-priority scale-out application, spread evenly
  /// over the hosts (paper §IV-A: 12-node cluster on 1 host, 152-node on 15;
  /// two of the paper's nodes are masters, which live inside the framework
  /// object here, so worker counts are the paper's node count minus two).
  int workers = 10;
  int vm_vcpus = 2;
  std::uint64_t seed = 42;
  /// Shard-pool threads for the engine's per-quantum host sweeps (hypervisor
  /// ticks, node-manager pipelines). 0 = keep the engine's default, which
  /// reads PERFCLOUD_SHARDS (1 when unset). Results are byte-identical for
  /// any value; >1 only buys wall-clock time on multi-host clusters.
  unsigned shards = 0;
  /// Claim discipline for the shard sweeps. Unset keeps the engine's
  /// default (PERFCLOUD_SCHED, work-stealing when unset). Like `shards`,
  /// results are byte-identical either way.
  std::optional<sim::ShardSchedule> schedule;
  /// Time-core backend (event queue + periodic re-arming). Unset keeps the
  /// engine's default (PERFCLOUD_TIMEQ, wheel when unset). Like `shards`,
  /// results are byte-identical either way.
  std::optional<sim::TimeQueueKind> timeq;
  /// When > 0, workers are spread over only the first `worker_host_limit`
  /// hosts, leaving the rest empty — the deliberately skewed clusters of
  /// bench/micro_balance (one hot shard-task, many quiescent hosts).
  /// 0 spreads over every host.
  int worker_host_limit = 0;
  /// How the worker VMs land on the hosts (see Placement).
  Placement placement = Placement::kSpread;
  /// Live-migration cost model handed to the cloud manager. Default
  /// disabled: migrations (escalations, tests) are instantaneous.
  cloud::MigrationModel migration;
  double tick_dt = 0.1;          ///< Arbitration tick.
  double sched_period = 1.0;     ///< Framework scheduling period.
  std::string app_id = "hadoop";
  hw::ServerConfig server;       ///< Template; name is overwritten per host.
  /// Heterogeneous clusters (§IV-D future work): per-host speed factors,
  /// cycled over the hosts; factor f scales the host's CPU clock by f.
  /// Empty means homogeneous. A VM on a 0.6x host really is ~40 % slower —
  /// the hardware-heterogeneity stragglers PerfCloud cannot fix and
  /// speculative execution can.
  std::vector<double> host_speed_factors;
  /// When set, enable_perfcloud also arms the cluster-wide migration policy
  /// (src/policy/) with these parameters, after the node managers start.
  std::optional<policy::PolicyParams> policy;
};

/// A built scenario. Everything hangs off the engine; run with
/// `run_until_done` / `run_for` below.
struct Cluster {
  std::unique_ptr<sim::Engine> engine;
  std::unique_ptr<cloud::CloudManager> cloud;
  std::unique_ptr<wl::ScaleOutFramework> framework;
  std::vector<std::unique_ptr<core::NodeManager>> node_managers;
  /// The armed migration policy (null unless enable_policy ran).
  std::unique_ptr<policy::MigrationPolicy> policy;
  std::vector<int> worker_vm_ids;
  std::vector<std::string> hosts;
  ClusterParams params;

  [[nodiscard]] virt::Vm& vm(int vm_id);
  /// Node manager of the given host index (empty unless enable_perfcloud ran).
  [[nodiscard]] core::NodeManager& node_manager(std::size_t host_index) {
    return *node_managers.at(host_index);
  }
};

/// Build hosts + workers + framework and start host ticking and framework
/// scheduling. PerfCloud is NOT started; call `enable_perfcloud` for that.
[[nodiscard]] Cluster make_cluster(const ClusterParams& params);

/// Attach one node manager per host. `control` false gives monitoring-only
/// node managers (the "default system" curves in Figs 3/4/9).
void enable_perfcloud(Cluster& cluster, const core::PerfCloudConfig& cfg, bool control = true);

/// Arm the cluster-wide migration policy (DESIGN.md §5k): builds the
/// MigrationPolicy over the cluster's node managers and starts it — it
/// joins the shared host pipeline's barrier phase, subscribes to migration
/// lifecycle events, and becomes the cloud's escalation destination scorer.
/// Call after enable_perfcloud (it needs the node managers); called
/// automatically by enable_perfcloud when ClusterParams::policy is set.
void enable_policy(Cluster& cluster, const policy::PolicyParams& params);

/// Wire `sink` into the cluster: the engine drains it after every sharded
/// barrier and flushes it when a run returns, the cloud manager reports
/// migrations/escalations through it, and every node manager emits its
/// deviation-signal columns and control events for the cluster's app. Call
/// after enable_perfcloud; the sink must outlive the cluster's runs.
void attach_sink(Cluster& cluster, EventSink& sink);

/// Wire a fault injector into the cluster and arm its plan: the framework
/// becomes the HostCrash/TaskFailure target, every node manager registers
/// for MonitorBlackout/CapCommandLoss, and (when `sink` is non-null) fault
/// records flow through it as a "faults" event source. Call after
/// enable_perfcloud (and after attach_sink when emitting); the injector must
/// outlive the cluster's runs. Arms exactly once — an empty plan is a pure
/// no-op.
void attach_faults(Cluster& cluster, faults::FaultInjector& injector, EventSink* sink = nullptr);

// --- Antagonist VM helpers: boot a low-priority VM running the given tool
//     on the chosen host; return its VM id. ---
int add_fio(Cluster& cluster, const std::string& host, wl::FioRandomRead::Params p = {},
            int vcpus = 2);
int add_stream(Cluster& cluster, const std::string& host, wl::StreamBenchmark::Params p = {},
               int vcpus = -1 /* default: p.threads */);
int add_oltp(Cluster& cluster, const std::string& host, wl::SysbenchOltp::Params p = {},
             int vcpus = 4);
int add_sysbench_cpu(Cluster& cluster, const std::string& host, wl::SysbenchCpu::Params p = {},
                     int vcpus = 4);
int add_dd_writer(Cluster& cluster, const std::string& host, wl::DdSequentialWriter::Params p = {},
                  int vcpus = 2);

/// Run until the framework reports every job finished (or t_max). Returns
/// final sim time.
sim::SimTime run_until_done(Cluster& cluster, double t_max_s = 36000.0);
/// Run for a fixed amount of simulated time.
sim::SimTime run_for(Cluster& cluster, double duration_s);

/// Submit one job and run it to completion; returns its completion time in
/// seconds. The cluster can be reused for consecutive jobs.
double run_job(Cluster& cluster, const wl::JobSpec& spec, double t_max_s = 36000.0);

}  // namespace perfcloud::exp
