#include "exp/chaos.hpp"

#include <algorithm>
#include <map>
#include <ostream>

#include "sim/time_series.hpp"

namespace perfcloud::exp {

namespace {

/// First time `series` reaches `threshold` at or after `since`; negative
/// when it never does.
double first_crossing(const sim::TimeSeries& series, double threshold, sim::SimTime since) {
  for (std::size_t i = 0; i < series.size(); ++i) {
    if (series.time(i) >= since && series.value(i) >= threshold) {
      return series.time(i) - since;
    }
  }
  return -1.0;
}

/// Merge min: keep the smaller non-negative latency.
void merge_latency(double& best, double candidate) {
  if (candidate < 0.0) return;
  if (best < 0.0 || candidate < best) best = candidate;
}

}  // namespace

ChaosReport chaos_report(Cluster& cluster, const core::PerfCloudConfig& cfg,
                         const std::vector<int>& true_antagonists, sim::SimTime since) {
  ChaosReport report;
  report.summary = summarize(*cluster.framework);

  std::map<int, double> first_identified;  // vm id -> earliest latency
  for (const auto& nm : cluster.node_managers) {
    merge_latency(report.detection_latency_s,
                  first_crossing(nm->io_signal(cluster.params.app_id),
                                 cfg.io_deviation_threshold, since));
    merge_latency(report.detection_latency_s,
                  first_crossing(nm->cpi_signal(cluster.params.app_id),
                                 cfg.cpi_deviation_threshold, since));
    for (const auto& ids : {nm->io_first_identified(), nm->cpu_first_identified()}) {
      for (const auto& [vm_id, t] : ids) {
        if (t < since) continue;
        const double latency = t - since;
        const auto [it, inserted] = first_identified.try_emplace(vm_id, latency);
        if (!inserted && latency < it->second) it->second = latency;
      }
    }
  }

  std::size_t true_positives = 0;
  for (const auto& [vm_id, latency] : first_identified) {
    report.identified.push_back(vm_id);
    if (std::find(true_antagonists.begin(), true_antagonists.end(), vm_id) !=
        true_antagonists.end()) {
      ++true_positives;
      merge_latency(report.identification_latency_s, latency);
    }
  }

  if (!report.identified.empty()) {
    report.precision =
        static_cast<double>(true_positives) / static_cast<double>(report.identified.size());
  }
  if (!true_antagonists.empty()) {
    report.recall =
        static_cast<double>(true_positives) / static_cast<double>(true_antagonists.size());
  }

  report.migrations_started = cluster.cloud->migrations_started();
  report.migrations_completed = cluster.cloud->migrations_completed();
  report.migrations_aborted = cluster.cloud->migrations_aborted();
  if (cluster.policy != nullptr) {
    report.policy_triggered = cluster.policy->triggered();
    report.policy_migrated = cluster.policy->migrated();
  }
  return report;
}

void print(std::ostream& os, const ChaosReport& r) {
  os << "detection latency:       "
     << (r.detection_latency_s < 0.0 ? std::string("never")
                                     : std::to_string(r.detection_latency_s) + " s")
     << "\n";
  os << "identification latency:  "
     << (r.identification_latency_s < 0.0 ? std::string("never")
                                          : std::to_string(r.identification_latency_s) + " s")
     << "\n";
  os << "identification precision " << r.precision << " recall " << r.recall << " (identified:";
  for (const int id : r.identified) os << " vm-" << id;
  if (r.identified.empty()) os << " none";
  os << ")\n";
  os << "migrations:              " << r.migrations_started << " started, "
     << r.migrations_completed << " completed, " << r.migrations_aborted << " aborted";
  if (r.policy_triggered > 0 || r.policy_migrated > 0) {
    os << " (policy: " << r.policy_triggered << " triggered, " << r.policy_migrated
       << " migrated)";
  }
  os << "\n";
}

}  // namespace perfcloud::exp
