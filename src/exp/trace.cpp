#include "exp/trace.hpp"

#include <fstream>
#include <stdexcept>

#include "exp/event_sink.hpp"

namespace perfcloud::exp {

void TraceRecorder::add(const std::string& column, const sim::TimeSeries& series) {
  entries_.push_back(Entry{column, &series});
}

void TraceRecorder::write_csv(const std::string& path) const {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("cannot open " + path);

  std::vector<std::string> columns;
  columns.reserve(entries_.size());
  for (const Entry& e : entries_) columns.push_back(e.column);
  CsvGridWriter writer(f, std::move(columns));

  // K-way merge of the series by (time, column index), feeding the streaming
  // grid writer — the same merge/format path the EventSink's writer thread
  // uses, so batch and streamed emission of identical samples produce
  // identical bytes. Replaces the materialized std::set union grid, whose
  // exact-double keys split timestamps closer than the alignment tolerance
  // into duplicate rows with spuriously empty cells.
  std::vector<std::size_t> cursor(entries_.size(), 0);
  for (;;) {
    std::size_t best = entries_.size();
    for (std::size_t c = 0; c < entries_.size(); ++c) {
      if (cursor[c] >= entries_[c].series->size()) continue;
      if (best == entries_.size() ||
          entries_[c].series->time(cursor[c]) < entries_[best].series->time(cursor[best])) {
        best = c;
      }
    }
    if (best == entries_.size()) break;
    const sim::TimeSeries& s = *entries_[best].series;
    writer.add(best, s.time(cursor[best]).seconds(), s.value(cursor[best]));
    ++cursor[best];
  }
  writer.finish();
}

}  // namespace perfcloud::exp
