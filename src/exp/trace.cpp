#include "exp/trace.hpp"

#include <cmath>
#include <fstream>
#include <set>
#include <stdexcept>

namespace perfcloud::exp {

void TraceRecorder::add(const std::string& column, const sim::TimeSeries& series) {
  entries_.push_back(Entry{column, &series});
}

void TraceRecorder::write_csv(const std::string& path) const {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("cannot open " + path);

  std::set<double> grid;
  for (const Entry& e : entries_) {
    for (std::size_t i = 0; i < e.series->size(); ++i) {
      grid.insert(e.series->time(i).seconds());
    }
  }

  f << "t";
  for (const Entry& e : entries_) f << ',' << e.column;
  f << '\n';

  // March one cursor per series along the sorted union grid.
  std::vector<std::size_t> cursor(entries_.size(), 0);
  for (const double t : grid) {
    f << t;
    for (std::size_t c = 0; c < entries_.size(); ++c) {
      const sim::TimeSeries& s = *entries_[c].series;
      std::size_t& i = cursor[c];
      while (i < s.size() && s.time(i).seconds() < t - 1e-9) ++i;
      f << ',';
      if (i < s.size() && std::abs(s.time(i).seconds() - t) <= 1e-9) {
        f << s.value(i);
        ++i;
      }
    }
    f << '\n';
  }
}

}  // namespace perfcloud::exp
