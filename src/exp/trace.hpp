// Trace recorder: dump named time series to CSV for offline plotting.
#pragma once

#include <string>
#include <vector>

#include "sim/time_series.hpp"

namespace perfcloud::exp {

/// Collects references to time series under column names and writes them as
/// one CSV aligned on the first series' timestamps (missing samples empty).
class TraceRecorder {
 public:
  /// Register a series under `column`. The series must outlive write_csv.
  void add(const std::string& column, const sim::TimeSeries& series);

  [[nodiscard]] std::size_t columns() const { return entries_.size(); }

  /// Write "t,<col1>,<col2>,..." rows; the time grid is the union of all
  /// sample times, with times closer than sim::kTimeAlignTolS collapsed into
  /// one row (a near-duplicate timestamp is the same instant everywhere else
  /// in the system, so it must not split into two half-empty rows here).
  /// Streams through the same grid writer as exp::EventSink instead of
  /// materializing the union grid. Throws std::runtime_error if the file
  /// cannot be opened.
  void write_csv(const std::string& path) const;

 private:
  struct Entry {
    std::string column;
    const sim::TimeSeries* series;
  };
  std::vector<Entry> entries_;
};

}  // namespace perfcloud::exp
