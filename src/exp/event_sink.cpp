#include "exp/event_sink.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <utility>

#include "exp/report.hpp"
#include "sim/engine.hpp"

namespace perfcloud::exp {

// --- CsvGridWriter ---

CsvGridWriter::CsvGridWriter(std::ostream& os, std::vector<std::string> columns)
    : os_(os), columns_(std::move(columns)), cells_(columns_.size()) {
  os_ << "t";
  for (const std::string& c : columns_) os_ << ',' << c;
  os_ << '\n';
}

void CsvGridWriter::add(std::size_t column, double t, double value) {
  if (column >= columns_.size()) throw std::out_of_range("CsvGridWriter: unknown column");
  if (row_open_ && t > row_t_ + sim::kTimeAlignTolS) flush_row();
  if (!row_open_) {
    row_open_ = true;
    row_t_ = t;
  } else if (t < row_t_ - sim::kTimeAlignTolS) {
    throw std::logic_error("CsvGridWriter: record at t=" + std::to_string(t) +
                           " arrived after row t=" + std::to_string(row_t_) + " was opened");
  }
  cells_[column] = value;
}

void CsvGridWriter::seal(double watermark) {
  if (row_open_ && row_t_ < watermark - sim::kTimeAlignTolS) flush_row();
}

void CsvGridWriter::finish() {
  if (row_open_) flush_row();
}

void CsvGridWriter::flush_row() {
  os_ << row_t_;
  for (std::optional<double>& cell : cells_) {
    os_ << ',';
    if (cell.has_value()) os_ << *cell;
    cell.reset();
  }
  os_ << '\n';
  row_open_ = false;
  ++rows_written_;
}

// --- EventSink ---

EventSink::EventSink(Options opt) : opt_(std::move(opt)) {
  if (!opt_.trace_csv_path.empty()) {
    trace_file_.open(opt_.trace_csv_path);
    if (!trace_file_) throw std::runtime_error("cannot open " + opt_.trace_csv_path);
  }
  if (!opt_.events_jsonl_path.empty()) {
    events_file_.open(opt_.events_jsonl_path);
    if (!events_file_) throw std::runtime_error("cannot open " + opt_.events_jsonl_path);
  }
  if (opt_.async) {
    writer_ = std::thread([this] { writer_loop(); });
  }
}

EventSink::~EventSink() {
  try {
    close();
  } catch (...) {
    // Destructors must not throw; close() explicitly to observe errors.
  }
}

EventSink::SourceId EventSink::add_trace_column(std::string column) {
  if (registration_locked_) {
    throw std::logic_error("EventSink: trace columns must be registered before the first drain");
  }
  columns_.push_back(std::move(column));
  staged_samples_.emplace_back();
  return columns_.size() - 1;
}

EventSink::SourceId EventSink::add_event_source(std::string name) {
  if (registration_locked_) {
    throw std::logic_error("EventSink: event sources must be registered before the first drain");
  }
  source_names_.push_back(std::move(name));
  staged_events_.emplace_back();
  counters_.emplace_back();
  return source_names_.size() - 1;
}

void EventSink::emit_sample(SourceId column, sim::SimTime t, double value) {
  if (closed_) throw std::logic_error("EventSink: emit_sample after close");
  staged_samples_.at(column).push_back(
      Sample{t.seconds(), static_cast<std::uint32_t>(column), value});
}

void EventSink::emit_event(SourceId source, sim::SimTime t, std::string kind, double value) {
  if (closed_) throw std::logic_error("EventSink: emit_event after close");
  staged_events_.at(source).push_back(
      Event{t.seconds(), static_cast<std::uint32_t>(source), std::move(kind), value});
}

void EventSink::bump_counter(SourceId source, std::string_view key, double delta) {
  if (closed_) throw std::logic_error("EventSink: bump_counter after close");
  auto& counters = counters_.at(source);
  const auto it = counters.find(key);
  if (it != counters.end()) {
    it->second += delta;
  } else {
    counters.emplace(std::string(key), delta);
  }
}

EventSink::CounterId EventSink::add_counter(SourceId source, std::string key) {
  if (registration_locked_) {
    throw std::logic_error("EventSink: counters must be registered before the first drain");
  }
  if (source >= source_names_.size()) throw std::out_of_range("EventSink: unknown source");
  counter_slots_.push_back(CounterSlot{source, std::move(key), 0.0, false});
  return counter_slots_.size() - 1;
}

void EventSink::bump_counter_id(CounterId id, double delta) {
  if (closed_) throw std::logic_error("EventSink: bump_counter_id after close");
  CounterSlot& slot = counter_slots_.at(id);
  slot.value += delta;
  slot.touched = true;
}

namespace {

/// Merge the per-source staged buffers into `out`, ordered by (time, source
/// index), records of one source keeping their order. Concatenating the
/// buffers in index order and stable-sorting by time alone yields exactly
/// that: the stable sort preserves the concatenation order for equal
/// timestamps. O(log n) per record beats a k-way cursor scan's O(k) once
/// sources number in the dozens, and stays correct even if a producer ever
/// staged out of time order.
template <typename Record>
void merge_staged(std::vector<std::vector<Record>>& staged, std::vector<Record>& out) {
  std::size_t total = 0;
  for (const auto& buf : staged) total += buf.size();
  out.reserve(total);
  for (auto& buf : staged) {
    for (Record& r : buf) out.push_back(std::move(r));
    buf.clear();
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const Record& a, const Record& b) { return a.t < b.t; });
}

}  // namespace

void EventSink::drain(sim::SimTime watermark) {
  if (closed_) return;
  const auto t0 = std::chrono::steady_clock::now();
  registration_locked_ = true;

  Batch batch;
  batch.watermark = watermark.seconds();
  merge_staged(staged_samples_, batch.samples);
  merge_staged(staged_events_, batch.events);

  if (!batch.samples.empty() || !batch.events.empty()) {
    samples_recorded_ += batch.samples.size();
    events_recorded_ += batch.events.size();
    ++batches_drained_;
    if (opt_.async) {
      bool writer_may_wait = false;
      {
        std::lock_guard<std::mutex> lk(mu_);
        // The writer only blocks on cv_work_ when it saw an empty queue and
        // went idle; if it is mid-batch or has work queued it will re-check
        // the queue before waiting, so the futex wake can be skipped.
        writer_may_wait = queue_.empty() && !writer_busy_;
        queue_.push_back(std::move(batch));
      }
      if (writer_may_wait) cv_work_.notify_one();
    } else {
      write_batch(batch);
    }
  }
  drain_seconds_ += std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

void EventSink::flush() {
  if (closed_) return;
  drain(sim::SimTime::infinity());
  std::exception_ptr error;
  if (opt_.async) {
    std::unique_lock<std::mutex> lk(mu_);
    cv_idle_.wait(lk, [&] { return queue_.empty() && !writer_busy_; });
    error = writer_error_;
    writer_error_ = nullptr;
  }
  if (error) std::rethrow_exception(error);
}

void EventSink::close() {
  if (closed_) return;
  flush();
  if (writer_.joinable()) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      shutdown_ = true;
    }
    cv_work_.notify_all();
    writer_.join();
  }
  closed_ = true;

  // Fold touched counter slots into the named maps before the summary is
  // written: the summary's bytes depend only on (source, key, total), so a
  // key bumped by id, by name, or both prints exactly as before. Untouched
  // slots — registered but never bumped — are skipped, matching a name-keyed
  // counter that never saw a bump.
  for (const CounterSlot& slot : counter_slots_) {
    if (!slot.touched) continue;
    auto& counters = counters_[slot.source];
    const auto it = counters.find(slot.key);
    if (it != counters.end()) {
      it->second += slot.value;
    } else {
      counters.emplace(slot.key, slot.value);
    }
  }

  if (events_file_.is_open()) {
    events_file_ << "{\"summary\":{";
    bool first_source = true;
    for (std::size_t s = 0; s < source_names_.size(); ++s) {
      if (counters_[s].empty()) continue;
      if (!first_source) events_file_ << ',';
      first_source = false;
      events_file_ << '"' << json_escape(source_names_[s]) << "\":{";
      bool first_key = true;
      for (const auto& [key, value] : counters_[s]) {
        if (!first_key) events_file_ << ',';
        first_key = false;
        events_file_ << '"' << json_escape(key) << "\":" << value;
      }
      events_file_ << '}';
    }
    events_file_ << "}}\n";
    events_file_.close();
  }
  if (trace_file_.is_open()) {
    // Header-only file when no sample ever arrived, like an empty
    // TraceRecorder.
    if (csv_ == nullptr) csv_ = std::make_unique<CsvGridWriter>(trace_file_, columns_);
    csv_->finish();
    trace_file_.close();
  }
}

void EventSink::bind(sim::Engine& engine) {
  engine.add_post_barrier_hook([this](sim::SimTime now) { drain(now); });
  engine.add_run_end_hook([this](sim::SimTime) {
    if (!closed_) flush();
  });
}

void EventSink::write_batch(const Batch& batch) {
  if (trace_file_.is_open() && (!batch.samples.empty() || csv_ != nullptr)) {
    if (csv_ == nullptr) csv_ = std::make_unique<CsvGridWriter>(trace_file_, columns_);
    for (const Sample& s : batch.samples) csv_->add(s.column, s.t, s.value);
    csv_->seal(batch.watermark);
  }
  if (events_file_.is_open()) {
    for (const Event& e : batch.events) {
      events_file_ << "{\"t\":" << e.t << ",\"source\":\""
                   << json_escape(source_names_[e.source]) << "\",\"kind\":\""
                   << json_escape(e.kind) << "\",\"value\":" << e.value << "}\n";
    }
  }
}

void EventSink::writer_loop() {
  for (;;) {
    Batch batch;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_work_.wait(lk, [&] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with nothing left to write
      batch = std::move(queue_.front());
      queue_.pop_front();
      writer_busy_ = true;
    }
    try {
      write_batch(batch);
    } catch (...) {
      std::lock_guard<std::mutex> lk(mu_);
      if (!writer_error_) writer_error_ = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lk(mu_);
      writer_busy_ = false;
      if (queue_.empty()) cv_idle_.notify_all();
    }
  }
}

}  // namespace perfcloud::exp
