// Chaos-experiment scoring: how well did PerfCloud's detection and
// identification hold up, and what did the faults cost the jobs?
//
// Companion to the faults subsystem: run the same scenario with and without
// a FaultPlan, score each run with chaos_report, and compare. "Truth" is the
// experiment's knowledge of which VM ids really are antagonists — the
// simulator knows what the production system never does, which is exactly
// why precision/recall are measurable here.
#pragma once

#include <iosfwd>
#include <vector>

#include "core/config.hpp"
#include "exp/cluster.hpp"
#include "exp/summary.hpp"
#include "sim/types.hpp"

namespace perfcloud::exp {

struct ChaosReport {
  /// Seconds from `since` until any host's deviation signal (io or cpi) of
  /// the cluster's app first crossed its threshold; < 0 = never detected.
  double detection_latency_s = -1.0;
  /// Seconds from `since` until the first TRUE antagonist was identified;
  /// < 0 = never.
  double identification_latency_s = -1.0;
  /// |identified ∩ true| / |identified|; 1.0 when nothing was identified
  /// (no accusations = no false accusations).
  double precision = 1.0;
  /// |identified ∩ true| / |true|; 1.0 when there are no true antagonists.
  double recall = 1.0;
  /// Every VM id identified (first-identification at/after `since`), both
  /// resources, all hosts, sorted ascending.
  std::vector<int> identified;
  // Placement churn over the whole run: cloud-level migration lifecycle
  // counts (escalations, policy moves, faults aborting in-flight copies)
  // plus the policy engine's own decision tally when a policy is armed.
  long migrations_started = 0;
  long migrations_completed = 0;
  long migrations_aborted = 0;
  long policy_triggered = 0;   ///< 0 unless cluster.policy is armed.
  long policy_migrated = 0;
  RunSummary summary;  ///< Job-level outcome (JCTs, re-execution waste).
};

/// Score the cluster's PerfCloud state. `true_antagonists` are the VM ids
/// the experiment actually booted as antagonists; `since` restricts scoring
/// to detections/identifications at or after that time (0 = whole run).
/// Requires enable_perfcloud to have run.
[[nodiscard]] ChaosReport chaos_report(Cluster& cluster, const core::PerfCloudConfig& cfg,
                                       const std::vector<int>& true_antagonists,
                                       sim::SimTime since = sim::SimTime(0.0));

/// Human-readable multi-line dump.
void print(std::ostream& os, const ChaosReport& r);

}  // namespace perfcloud::exp
