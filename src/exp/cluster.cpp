#include "exp/cluster.hpp"

#include <algorithm>
#include <stdexcept>

#include "cloud/placement.hpp"

namespace perfcloud::exp {

virt::Vm& Cluster::vm(int vm_id) {
  for (const std::string& h : hosts) {
    virt::Vm* vm = cloud->host(h).find(vm_id);
    if (vm != nullptr) return *vm;
  }
  throw std::invalid_argument("unknown VM id " + std::to_string(vm_id));
}

Cluster make_cluster(const ClusterParams& params) {
  Cluster c;
  c.params = params;
  c.engine = std::make_unique<sim::Engine>(
      params.seed, params.timeq.value_or(sim::time_queue_from_env()));
  if (params.shards > 0) c.engine->set_shards(params.shards);
  if (params.schedule.has_value()) c.engine->set_schedule(*params.schedule);
  c.cloud = std::make_unique<cloud::CloudManager>(*c.engine);

  for (int h = 0; h < params.hosts; ++h) {
    hw::ServerConfig cfg = params.server;
    cfg.name = "host-" + std::to_string(h);
    if (!params.host_speed_factors.empty()) {
      const double f = params.host_speed_factors[static_cast<std::size_t>(h) %
                                                 params.host_speed_factors.size()];
      cfg.cpu.clock_hz *= f;
    }
    c.cloud->add_host(cfg);
    c.hosts.push_back(cfg.name);
  }

  if (params.migration.enabled()) c.cloud->set_migration_model(params.migration);

  virt::VmConfig shape;
  shape.vcpus = params.vm_vcpus;
  shape.priority = virt::Priority::kHigh;
  std::vector<std::string> worker_hosts = c.hosts;
  if (params.worker_host_limit > 0 &&
      static_cast<std::size_t>(params.worker_host_limit) < worker_hosts.size()) {
    worker_hosts.resize(static_cast<std::size_t>(params.worker_host_limit));
  }
  switch (params.placement) {
    case Placement::kSpread:
      c.worker_vm_ids =
          cloud::place_spread(*c.cloud, worker_hosts, params.workers, shape, params.app_id);
      break;
    case Placement::kPacked: {
      // Fill each host to its admission limit: whichever of cores or DRAM
      // runs out first (the same bound CloudManager::host_has_capacity
      // enforces on migration destinations).
      const int by_cores = params.server.cpu.cores / std::max(1, shape.vcpus);
      const int by_dram = static_cast<int>(params.server.dram / shape.memory);
      const int per_host = std::max(1, std::min(by_cores, by_dram));
      c.worker_vm_ids = cloud::place_packed(*c.cloud, worker_hosts, params.workers, per_host,
                                            shape, params.app_id);
      break;
    }
    case Placement::kRandom: {
      // place_random names the VMs but does not set the app id (it places
      // anonymous antagonists in the paper); workers need the grouping.
      shape.app_id = params.app_id;
      sim::Rng placement_rng(params.seed ^ 0x9e3779b97f4a7c15ULL);
      c.worker_vm_ids = cloud::place_random(*c.cloud, worker_hosts, params.workers, shape,
                                            params.app_id, placement_rng);
      break;
    }
  }

  c.framework = std::make_unique<wl::ScaleOutFramework>(*c.engine, params.app_id);
  for (const cloud::VmRecord& r : c.cloud->all_vms()) {
    if (std::find(c.worker_vm_ids.begin(), c.worker_vm_ids.end(), r.id) !=
        c.worker_vm_ids.end()) {
      c.framework->add_worker(c.vm(r.id), r.host);
    }
  }

  // Registration order matters at equal timestamps: arbitration ticks fire
  // before framework scheduling, which fires before node managers.
  c.cloud->start_ticking(params.tick_dt);
  c.framework->start(params.sched_period);
  return c;
}

void enable_perfcloud(Cluster& cluster, const core::PerfCloudConfig& cfg, bool control) {
  if (!cluster.node_managers.empty()) throw std::logic_error("PerfCloud already enabled");
  for (const std::string& h : cluster.hosts) {
    auto nm = std::make_unique<core::NodeManager>(*cluster.cloud, h, cfg);
    nm->set_control_enabled(control);
    nm->start();
    cluster.node_managers.push_back(std::move(nm));
  }
  if (cluster.params.policy.has_value()) enable_policy(cluster, *cluster.params.policy);
}

void enable_policy(Cluster& cluster, const policy::PolicyParams& params) {
  if (cluster.policy != nullptr) throw std::logic_error("migration policy already enabled");
  if (cluster.node_managers.empty()) {
    throw std::logic_error("enable_policy requires enable_perfcloud first");
  }
  std::vector<core::NodeManager*> nms;
  nms.reserve(cluster.node_managers.size());
  for (const auto& nm : cluster.node_managers) nms.push_back(nm.get());
  cluster.policy = std::make_unique<policy::MigrationPolicy>(*cluster.cloud, std::move(nms),
                                                             params);
  cluster.policy->start();
}

void attach_sink(Cluster& cluster, EventSink& sink) {
  sink.bind(*cluster.engine);
  cluster.cloud->set_emit_sink(&sink);
  for (const auto& nm : cluster.node_managers) {
    nm->attach_sink(sink, {cluster.params.app_id});
  }
  if (cluster.policy != nullptr) cluster.policy->set_emit_sink(&sink);
}

void attach_faults(Cluster& cluster, faults::FaultInjector& injector, EventSink* sink) {
  injector.set_framework(cluster.framework.get());
  for (const auto& nm : cluster.node_managers) {
    injector.register_node_manager(*nm);
  }
  if (sink != nullptr) injector.set_emit_sink(sink);
  injector.arm();
}

namespace {
virt::Vm& boot_low_priority(Cluster& c, const std::string& host, const std::string& name,
                            int vcpus) {
  virt::VmConfig cfg;
  cfg.name = name;
  cfg.vcpus = vcpus;
  cfg.priority = virt::Priority::kLow;
  return c.cloud->boot_vm(host, cfg);
}
}  // namespace

int add_fio(Cluster& cluster, const std::string& host, wl::FioRandomRead::Params p, int vcpus) {
  virt::Vm& vm = boot_low_priority(cluster, host, "fio", vcpus);
  vm.attach(std::make_unique<wl::FioRandomRead>(p));
  return vm.id();
}

int add_stream(Cluster& cluster, const std::string& host, wl::StreamBenchmark::Params p,
               int vcpus) {
  if (vcpus < 0) vcpus = p.threads;
  virt::Vm& vm = boot_low_priority(cluster, host, "stream", vcpus);
  vm.attach(std::make_unique<wl::StreamBenchmark>(p));
  return vm.id();
}

int add_oltp(Cluster& cluster, const std::string& host, wl::SysbenchOltp::Params p, int vcpus) {
  virt::Vm& vm = boot_low_priority(cluster, host, "oltp", vcpus);
  vm.attach(std::make_unique<wl::SysbenchOltp>(p));
  return vm.id();
}

int add_sysbench_cpu(Cluster& cluster, const std::string& host, wl::SysbenchCpu::Params p,
                     int vcpus) {
  virt::Vm& vm = boot_low_priority(cluster, host, "sysbench-cpu", vcpus);
  vm.attach(std::make_unique<wl::SysbenchCpu>(p));
  return vm.id();
}

int add_dd_writer(Cluster& cluster, const std::string& host, wl::DdSequentialWriter::Params p,
                  int vcpus) {
  virt::Vm& vm = boot_low_priority(cluster, host, "dd-writer", vcpus);
  vm.attach(std::make_unique<wl::DdSequentialWriter>(p));
  return vm.id();
}

sim::SimTime run_until_done(Cluster& cluster, double t_max_s) {
  return cluster.engine->run_while([&] { return !cluster.framework->all_done(); },
                                   sim::SimTime(t_max_s));
}

sim::SimTime run_for(Cluster& cluster, double duration_s) {
  return cluster.engine->run_until(cluster.engine->now() + duration_s);
}

double run_job(Cluster& cluster, const wl::JobSpec& spec, double t_max_s) {
  const wl::JobId id = cluster.framework->submit(spec);
  cluster.engine->run_while(
      [&] {
        const wl::Job* job = cluster.framework->find_job(id);
        return job != nullptr && !job->finished();
      },
      sim::SimTime(cluster.engine->now().seconds() + t_max_s));
  const wl::Job* job = cluster.framework->find_job(id);
  if (job == nullptr || !job->completed()) {
    throw std::runtime_error("job did not complete within the time limit");
  }
  return job->jct();
}

}  // namespace perfcloud::exp
