// Run summary: one-stop aggregation of what happened to a framework's jobs.
#pragma once

#include <iosfwd>

#include "sim/emit.hpp"
#include "workloads/framework.hpp"

namespace perfcloud::exp {

struct RunSummary {
  int jobs_submitted = 0;
  int jobs_completed = 0;
  int jobs_killed = 0;       ///< Clone losers and explicit kills.
  double mean_jct = 0.0;     ///< Over completed jobs.
  double median_jct = 0.0;
  double p95_jct = 0.0;
  double max_jct = 0.0;
  double utilization_efficiency = 1.0;
  int attempts_total = 0;
  int attempts_speculative = 0;
  int attempts_killed = 0;   ///< Lost races, injected failures, clone kills.
};

/// Aggregate over every job the framework has seen so far.
[[nodiscard]] RunSummary summarize(const wl::ScaleOutFramework& framework);

/// Human-readable multi-line dump.
void print(std::ostream& os, const RunSummary& s);

/// Record the summary's fields as counters of `source` on `sink`, so they
/// land in the sink's closing summary record. Counters accumulate: record a
/// summary once per run, or deltas between runs, not both.
void record(sim::EmitSink& sink, sim::EmitSink::SourceId source, const RunSummary& s);

}  // namespace perfcloud::exp
