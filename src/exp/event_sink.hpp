// Asynchronous trace/report emission off the barrier phase.
//
// PR 2 sharded the per-quantum host pipelines, but every observation sample
// was still either recorded synchronously on the control path or assembled
// into whole-run TimeSeries unions at end-of-run. EventSink keeps the
// observation path off the control path (Alioth-style out-of-band
// monitoring): producers stage records into per-source buffers during the
// sharded phase — no locks, each buffer is owned by exactly one shard task —
// and the engine's post-barrier hook merges the staged records into one
// batch in deterministic (time, source-index) order and hands it to a
// background writer thread, which formats and writes CSV/JSONL
// incrementally. With `async = false` the same batches are written inline at
// the drain point, so the two modes produce byte-identical files for any
// shard count — the determinism proof for the writer-thread merge.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "sim/emit.hpp"
#include "sim/types.hpp"

namespace perfcloud::sim {
class Engine;
}

namespace perfcloud::exp {

/// Streams time-sorted (column, t, value) records into the aligned-grid CSV
/// format ("t,<col1>,<col2>,..."; missing cells empty). Rows are keyed by
/// timestamp with sim::kTimeAlignTolS tolerance: a record within the
/// tolerance of the open row joins it (for an already-filled column the
/// later record wins), so timestamps differing by less than the tolerance
/// produce ONE row instead of duplicate rows with spuriously empty cells.
///
/// The writer is incremental: it never buffers more than the single open
/// row, so N samples stream in O(N) time and O(columns) memory — no
/// materialized union grid. An open row is flushed once `seal` proves no
/// more records can join it.
class CsvGridWriter {
 public:
  /// Writes the header row immediately.
  CsvGridWriter(std::ostream& os, std::vector<std::string> columns);

  /// Append one record. Records must arrive sorted by time up to the row
  /// tolerance; a record earlier than the open row throws std::logic_error
  /// rather than silently corrupting the grid.
  void add(std::size_t column, double t, double value);

  /// Declare that every record with time < `watermark` - tolerance has been
  /// added: flushes the open row if it can no longer grow.
  void seal(double watermark);

  /// Flush the open row unconditionally. Idempotent.
  void finish();

  [[nodiscard]] std::size_t rows_written() const { return rows_written_; }

 private:
  void flush_row();

  std::ostream& os_;
  std::vector<std::string> columns_;
  bool row_open_ = false;
  double row_t_ = 0.0;
  std::vector<std::optional<double>> cells_;
  std::size_t rows_written_ = 0;
};

/// The staged, optionally-asynchronous emission sink (see file comment).
///
/// Threading contract (mirrors the shard-pool rules):
///  - Registration: engine thread, during setup; locked at the first drain.
///  - emit_*: only from the shard task (or engine-thread phase) that owns the
///    SourceId; per-source staging makes concurrent emission through
///    *different* sources race-free without any synchronization.
///  - drain/flush/close: engine thread only, outside the sharded phase. The
///    quantum barrier provides the happens-before between the tasks' staged
///    writes and the drain's reads.
class EventSink : public sim::EmitSink {
 public:
  struct Options {
    std::string trace_csv_path;     ///< Empty = trace samples are dropped.
    std::string events_jsonl_path;  ///< Empty = events/counters are dropped.
    /// Background writer thread (true) vs inline writes at the drain point
    /// (false). Output bytes are identical either way.
    bool async = true;
  };

  /// Opens the output files (throws std::runtime_error on failure) and, in
  /// async mode, starts the writer thread.
  explicit EventSink(Options opt);
  ~EventSink() override;

  EventSink(const EventSink&) = delete;
  EventSink& operator=(const EventSink&) = delete;

  // --- Registration (engine thread, setup only) ---
  SourceId add_trace_column(std::string column) override;
  SourceId add_event_source(std::string name) override;

  // --- Emission (owner task only) ---
  void emit_sample(SourceId column, sim::SimTime t, double value) override;
  void emit_event(SourceId source, sim::SimTime t, std::string kind, double value) override;
  void bump_counter(SourceId source, std::string_view key, double delta = 1.0) override;
  /// Slot-keyed counters: registration (setup only, like the other
  /// registrations) allocates one slot; a bump is `value += delta` on that
  /// slot — no string compare, no tree walk, no allocation ever. Touched
  /// slots merge into the named-counter maps at close(), so the summary
  /// record is byte-identical whether a key was bumped by id, by name, or
  /// both; never-bumped registrations don't appear at all.
  CounterId add_counter(SourceId source, std::string key) override;
  void bump_counter_id(CounterId id, double delta = 1.0) override;

  // --- Engine-thread drain/flush ---
  /// Post-barrier: merge everything staged during the quantum into one batch
  /// in (time, column/source-index) order — per-source buffers are already
  /// time-ordered, so this is a k-way merge — and hand it to the writer
  /// (queued in async mode, written inline otherwise). `watermark` is the
  /// barrier time: rows at earlier grid times can be finalized, rows at the
  /// watermark stay open for same-time sweeps that fire later.
  void drain(sim::SimTime watermark);

  /// drain(+inf), then block until the writer has retired every queued
  /// batch. Rethrows any writer-thread exception.
  void flush();

  /// flush(), stop the writer, append the summary record (the counters,
  /// merged in source order) to the events file, finalize the CSV grid, and
  /// close the files. Idempotent; the destructor calls it.
  void close();

  /// Wire this sink into `engine`: drain after every sharded barrier, flush
  /// whenever a run returns. The sink must outlive the engine's runs.
  void bind(sim::Engine& engine);

  // --- Introspection ---
  [[nodiscard]] bool async() const { return opt_.async; }
  [[nodiscard]] std::uint64_t samples_recorded() const { return samples_recorded_; }
  [[nodiscard]] std::uint64_t events_recorded() const { return events_recorded_; }
  [[nodiscard]] std::uint64_t batches_drained() const { return batches_drained_; }
  /// Cumulative engine-thread seconds spent inside drain() — the emission
  /// cost left on the barrier phase (merge + handoff in async mode; merge +
  /// formatting + file I/O in sync mode). What bench/micro_emit compares.
  [[nodiscard]] double drain_seconds() const { return drain_seconds_; }

 private:
  struct Sample {
    double t = 0.0;
    std::uint32_t column = 0;
    double value = 0.0;
  };
  struct Event {
    double t = 0.0;
    std::uint32_t source = 0;
    std::string kind;
    double value = 0.0;
  };
  /// One drain's worth of records, fully ordered. Batches partition time, so
  /// concatenating them in drain order is globally ordered.
  struct Batch {
    std::vector<Sample> samples;
    std::vector<Event> events;
    double watermark = 0.0;
  };

  void write_batch(const Batch& batch);
  void writer_loop();

  Options opt_;
  std::ofstream trace_file_;
  std::ofstream events_file_;
  std::unique_ptr<CsvGridWriter> csv_;  ///< Created at the first sample batch.

  std::vector<std::string> columns_;
  std::vector<std::string> source_names_;
  bool registration_locked_ = false;
  bool closed_ = false;

  // Staging: one buffer per column/source, appended only by the owning shard
  // task during the quantum, swapped out by drain() on the engine thread.
  std::vector<std::vector<Sample>> staged_samples_;
  std::vector<std::vector<Event>> staged_events_;
  /// Transparent comparator: bump_counter looks keys up by string_view and
  /// only materializes a std::string on a counter's first-ever bump.
  std::vector<std::map<std::string, double, std::less<>>> counters_;
  /// Slot-keyed counters (add_counter/bump_counter_id). Same ownership rule
  /// as staged buffers: a slot is bumped only by the task owning its source.
  struct CounterSlot {
    SourceId source = 0;
    std::string key;
    double value = 0.0;
    bool touched = false;
  };
  std::vector<CounterSlot> counter_slots_;

  // Engine-thread bookkeeping.
  std::uint64_t samples_recorded_ = 0;
  std::uint64_t events_recorded_ = 0;
  std::uint64_t batches_drained_ = 0;
  double drain_seconds_ = 0.0;

  // Writer-thread handoff (async mode). All guarded by mu_.
  std::thread writer_;
  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_idle_;
  std::deque<Batch> queue_;
  bool shutdown_ = false;
  bool writer_busy_ = false;
  std::exception_ptr writer_error_;
};

}  // namespace perfcloud::exp
