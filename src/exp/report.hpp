// Plain-text table and CSV reporting for the figure-reproduction benches.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace perfcloud::exp {

/// Fixed-width text table, printed in the style of the paper's result rows.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  Table& add_row(std::vector<std::string> cells);
  /// Convenience: format doubles with the given precision.
  Table& add_row(const std::string& label, const std::vector<double>& values, int precision = 3);

  void print(std::ostream& os) const;
  /// Comma-separated dump (same content as print).
  void write_csv(const std::string& path) const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format helper: fixed precision without trailing garbage.
[[nodiscard]] std::string fmt(double v, int precision = 3);

/// Escape `s` for embedding inside a JSON string literal (quotes,
/// backslashes, control characters). Used by the JSONL event writer.
[[nodiscard]] std::string json_escape(const std::string& s);

/// Print a standard figure banner so bench output is self-describing.
void print_banner(std::ostream& os, const std::string& figure, const std::string& description);

}  // namespace perfcloud::exp
