// Thread-pool runner for independent experiment tasks.
//
// The simulator itself is single-threaded by design (determinism), but whole
// experiment *runs* — one scheme x mix combination, one repetition — are
// independent: each builds its own Cluster, whose Engine, CloudManager,
// framework, and RNG are all self-contained. Nothing in the simulation layer
// touches global mutable state, so runs parallelize embarrassingly.
//
// Threading model: `run` spawns up to `threads` std::threads; workers claim
// task indices from a shared atomic counter and write results into their own
// slot of a pre-sized vector. Shared between workers: the counter, the task
// vector (read-only), and disjoint result/exception slots. Everything a task
// closure captures must be task-local (build the Cluster inside the task).
// Results are returned in submission order regardless of completion order,
// so output built from them is byte-identical across thread counts.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <functional>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace perfcloud::exp {

class ParallelRunner {
 public:
  /// `threads` = 0 picks std::thread::hardware_concurrency() (min 1).
  explicit ParallelRunner(unsigned threads = 0)
      : threads_(threads != 0 ? threads : default_threads()) {}

  [[nodiscard]] unsigned threads() const { return threads_; }

  /// Run all tasks to completion and return their results in submission
  /// order. If any task throws, the first exception (by submission index —
  /// deterministic) is rethrown after every worker has joined.
  template <typename T>
  std::vector<T> run(const std::vector<std::function<T()>>& tasks) const {
    std::vector<std::optional<T>> results(tasks.size());
    std::vector<std::exception_ptr> errors(tasks.size());
    std::atomic<std::size_t> next{0};

    const auto worker = [&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= tasks.size()) return;
        try {
          results[i].emplace(tasks[i]());
        } catch (...) {
          errors[i] = std::current_exception();
        }
      }
    };

    const std::size_t n_workers =
        std::min<std::size_t>(threads_, std::max<std::size_t>(tasks.size(), 1));
    std::vector<std::thread> pool;
    pool.reserve(n_workers);
    for (std::size_t w = 0; w < n_workers; ++w) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();

    for (const std::exception_ptr& e : errors) {
      if (e) std::rethrow_exception(e);
    }
    std::vector<T> out;
    out.reserve(tasks.size());
    for (std::optional<T>& r : results) out.push_back(std::move(*r));
    return out;
  }

  /// Thread count for bench binaries: PERFCLOUD_THREADS if set (so a
  /// sequential reference run of the same binary is one env var away),
  /// otherwise the hardware concurrency.
  static unsigned threads_from_env() {
    if (const char* env = std::getenv("PERFCLOUD_THREADS")) {
      const long v = std::strtol(env, nullptr, 10);
      if (v >= 1) return static_cast<unsigned>(v);
    }
    return default_threads();
  }

 private:
  static unsigned default_threads() {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw != 0 ? hw : 1;
  }

  unsigned threads_;
};

}  // namespace perfcloud::exp
