#include "exp/report.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace perfcloud::exp {

std::string fmt(double v, int precision) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(precision) << v;
  return ss.str();
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

Table& Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("Table row width mismatch");
  }
  rows_.push_back(std::move(cells));
  return *this;
}

Table& Table::add_row(const std::string& label, const std::vector<double>& values, int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size() + 1);
  cells.push_back(label);
  for (double v : values) cells.push_back(fmt(v, precision));
  return add_row(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());
  }
  const auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(width[c]) + 2) << row[c];
    }
    os << '\n';
  };
  print_row(headers_);
  std::size_t total = 0;
  for (std::size_t w : width) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

void Table::write_csv(const std::string& path) const {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("cannot open " + path);
  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) f << ',';
      f << row[c];
    }
    f << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

void print_banner(std::ostream& os, const std::string& figure, const std::string& description) {
  os << "\n=== " << figure << " — " << description << " ===\n\n";
}

}  // namespace perfcloud::exp
