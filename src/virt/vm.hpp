// Virtual machine: a cgroup, a shape (vCPUs/memory), a priority, and an
// optionally attached guest workload.
#pragma once

#include <memory>
#include <string>
#include <utility>

#include "sim/types.hpp"
#include "virt/cgroup.hpp"
#include "virt/guest.hpp"

namespace perfcloud::virt {

class Hypervisor;
/// Tell `hv` (may be null: detached VM) that a resident VM's activity state
/// changed — attach/detach/pause. Defined in hypervisor.cpp; forwards to
/// Hypervisor::note_activity, which ends the host's cached quiescence.
void notify_vm_activity(Hypervisor* hv);

/// Cloud-administrator-assigned priority (§III): PerfCloud protects
/// high-priority applications by throttling low-priority antagonists only.
enum class Priority { kHigh, kLow };

struct VmConfig {
  int id = 0;
  std::string name;
  int vcpus = 2;                              ///< Paper: 2 vCPU per node.
  sim::Bytes memory = 8.0 * 1024 * 1024 * 1024;  ///< Paper: 8 GB per node.
  Priority priority = Priority::kLow;
  /// VMs belonging to the same high-priority scale-out application share an
  /// application id; the cloud manager exposes this grouping (§III-D.2).
  std::string app_id;
  /// NUMA socket to pin the VM's memory to; -1 lets the hypervisor pick the
  /// least-loaded socket at boot (ignored on single-socket hosts).
  int numa_node = -1;
};

class Vm {
 public:
  explicit Vm(VmConfig cfg) : cfg_(std::move(cfg)), cgroup_("vm-" + std::to_string(cfg_.id)) {}

  Vm(const Vm&) = delete;
  Vm& operator=(const Vm&) = delete;

  [[nodiscard]] int id() const { return cfg_.id; }
  [[nodiscard]] const std::string& name() const { return cfg_.name; }
  [[nodiscard]] int vcpus() const { return cfg_.vcpus; }
  [[nodiscard]] Priority priority() const { return cfg_.priority; }
  [[nodiscard]] const std::string& app_id() const { return cfg_.app_id; }
  [[nodiscard]] const VmConfig& config() const { return cfg_; }

  [[nodiscard]] Cgroup& cgroup() { return cgroup_; }
  [[nodiscard]] const Cgroup& cgroup() const { return cgroup_; }

  /// Socket the hypervisor placed this VM on (set at boot/adoption).
  [[nodiscard]] int numa_node() const { return numa_node_; }
  void set_numa_node(int node) { numa_node_ = node; }

  /// Hosting hypervisor, set at boot/adoption and cleared at eviction, so
  /// activity transitions (attach/detach/pause) can end its quiescence.
  void set_host(Hypervisor* host) { host_ = host; }
  [[nodiscard]] Hypervisor* host() const { return host_; }

  /// Attach (or replace) the guest workload. Ownership transfers to the VM.
  void attach(std::unique_ptr<GuestWorkload> guest) {
    guest_ = std::move(guest);
    notify_vm_activity(host_);
  }
  void detach() {
    guest_.reset();
    notify_vm_activity(host_);
  }
  [[nodiscard]] GuestWorkload* guest() { return guest_.get(); }
  [[nodiscard]] const GuestWorkload* guest() const { return guest_.get(); }
  [[nodiscard]] bool idle(sim::SimTime now) const {
    return paused_ || guest_ == nullptr || guest_->finished(now);
  }

  /// Fault hook (VmStall): a paused VM presents no demand and receives no
  /// grants — its guest's progress freezes until the pause is lifted.
  void set_paused(bool paused) {
    paused_ = paused;
    notify_vm_activity(host_);
  }
  [[nodiscard]] bool paused() const { return paused_; }

 private:
  VmConfig cfg_;
  Cgroup cgroup_;
  std::unique_ptr<GuestWorkload> guest_;
  Hypervisor* host_ = nullptr;
  int numa_node_ = 0;
  bool paused_ = false;
};

}  // namespace perfcloud::virt
