#include "virt/hypervisor.hpp"

#include <atomic>
#include <algorithm>
#include <cstdlib>
#include <stdexcept>
#include <vector>
#include <string>

namespace perfcloud::virt {

namespace {
std::atomic<bool> g_idle_fastpath{std::getenv("PERFCLOUD_NO_IDLE_FASTPATH") == nullptr};
}  // namespace

bool idle_fastpath_enabled() { return g_idle_fastpath.load(std::memory_order_relaxed); }
void set_idle_fastpath_enabled(bool enabled) {
  g_idle_fastpath.store(enabled, std::memory_order_relaxed);
}

void notify_vm_activity(Hypervisor* hv) {
  if (hv != nullptr) hv->note_activity();
}

Vm& Hypervisor::boot(VmConfig cfg) {
  if (find(cfg.id) != nullptr) {
    throw std::invalid_argument("duplicate VM id " + std::to_string(cfg.id));
  }
  const int requested = cfg.numa_node;
  vms_.push_back(std::make_unique<Vm>(std::move(cfg)));
  Vm& vm = *vms_.back();
  vm.set_host(this);
  vm.set_numa_node(requested >= 0 ? requested : pick_numa_node(vm.vcpus()));
  note_activity();
  return vm;
}

int Hypervisor::pick_numa_node(int /*vcpus*/) const {
  // Least-loaded socket by resident vCPU count.
  const int sockets = server_.sockets();
  if (sockets <= 1) return 0;
  std::vector<int> load(static_cast<std::size_t>(sockets), 0);
  for (const auto& vm : vms_) {
    const int node = std::clamp(vm->numa_node(), 0, sockets - 1);
    load[static_cast<std::size_t>(node)] += vm->vcpus();
  }
  int best = 0;
  for (int s = 1; s < sockets; ++s) {
    if (load[static_cast<std::size_t>(s)] < load[static_cast<std::size_t>(best)]) best = s;
  }
  return best;
}

std::unique_ptr<Vm> Hypervisor::evict(int vm_id) {
  for (auto it = vms_.begin(); it != vms_.end(); ++it) {
    if ((*it)->id() == vm_id) {
      std::unique_ptr<Vm> vm = std::move(*it);
      vms_.erase(it);
      vm->set_host(nullptr);
      note_activity();
      return vm;
    }
  }
  throw std::invalid_argument("unknown VM id " + std::to_string(vm_id));
}

Vm& Hypervisor::adopt(std::unique_ptr<Vm> vm) {
  if (find(vm->id()) != nullptr) {
    throw std::invalid_argument("duplicate VM id " + std::to_string(vm->id()));
  }
  vms_.push_back(std::move(vm));
  vms_.back()->set_host(this);
  note_activity();
  return *vms_.back();
}

Vm* Hypervisor::find(int vm_id) {
  for (const auto& vm : vms_) {
    if (vm->id() == vm_id) return vm.get();
  }
  return nullptr;
}

const Vm* Hypervisor::find(int vm_id) const {
  return const_cast<Hypervisor*>(this)->find(vm_id);
}

Vm& Hypervisor::require(int vm_id) {
  Vm* vm = find(vm_id);
  if (vm == nullptr) throw std::invalid_argument("unknown VM id " + std::to_string(vm_id));
  return *vm;
}

const Vm& Hypervisor::require(int vm_id) const {
  return const_cast<Hypervisor*>(this)->require(vm_id);
}

void Hypervisor::begin_migration_in(int vm_id, double bytes_per_sec) {
  if (bytes_per_sec <= 0.0) {
    throw std::invalid_argument("migration bandwidth must be positive");
  }
  for (const MigrationInflow& f : migration_in_) {
    if (f.vm_id == vm_id) {
      throw std::logic_error("duplicate migration inflow for VM " + std::to_string(vm_id));
    }
  }
  migration_in_.push_back(MigrationInflow{vm_id, bytes_per_sec});
  note_activity();
}

void Hypervisor::end_migration_in(int vm_id) {
  const auto removed =
      std::erase_if(migration_in_, [&](const MigrationInflow& f) { return f.vm_id == vm_id; });
  if (removed > 0) note_activity();
}

bool Hypervisor::is_quiescent(sim::SimTime now) const {
  if (quiescent_) return true;
  // An incoming pre-copy stream keeps the disk busy every tick.
  if (!migration_in_.empty()) return false;
  if (server_.disk_degradation() != 1.0) return false;
  for (const auto& vm : vms_) {
    if (vm->paused()) return false;
    const GuestWorkload* guest = vm->guest();
    if (guest != nullptr && !guest->finished(now)) return false;
    const Cgroup& cg = vm->cgroup();
    if (cg.cpu_quota_cores() != hw::kNoCap || cg.blkio_throttle_bps() != hw::kNoCap ||
        cg.blkio_throttle_iops() != hw::kNoCap) {
      return false;
    }
  }
  quiescent_ = true;
  return true;
}

void Hypervisor::set_disk_degradation(double factor) {
  server_.set_disk_degradation(factor);
  note_activity();
}

void Hypervisor::tick(sim::SimTime now, double dt) {
  // Idle-host fast path: a quiescent host has all-zero demand, so the whole
  // arbitrate/account/apply round is a no-op — skip it.
  if (idle_fastpath_enabled() && is_quiescent(now)) return;

  std::vector<hw::TenantDemand> demands;
  demands.reserve(vms_.size() + migration_in_.size());
  for (const auto& vm : vms_) {
    hw::TenantDemand d{};
    if (!vm->idle(now)) {
      d = vm->guest()->demand(now, dt);
    }
    // The guest can never demand more CPU than its vCPUs can run.
    d.cpu_core_seconds = std::min(d.cpu_core_seconds, static_cast<double>(vm->vcpus()) * dt);
    // Attach the cgroup's caps.
    const Cgroup& cg = vm->cgroup();
    d.cpu_cap_cores = std::min(cg.cpu_quota_cores(), static_cast<double>(vm->vcpus()));
    d.io_cap_bytes_per_sec = cg.blkio_throttle_bps();
    d.io_cap_iops = cg.blkio_throttle_iops();
    d.numa_node = vm->numa_node();
    demands.push_back(d);
  }

  // Incoming pre-copy streams, after the resident VMs (positional jitter
  // state stays attached to the same VM). Pages land as large sequential
  // writes; the grants routed back to these slots are discarded below.
  constexpr double kMigrationIoBlockBytes = 1.0 * 1024 * 1024;
  for (const MigrationInflow& f : migration_in_) {
    hw::TenantDemand d{};
    d.io_bytes = f.bytes_per_sec * dt;
    d.io_ops = d.io_bytes / kMigrationIoBlockBytes;
    demands.push_back(d);
  }

  const std::vector<hw::TenantGrant> grants = server_.arbitrate(dt, demands);
  for (std::size_t i = 0; i < vms_.size(); ++i) {
    Vm& vm = *vms_[i];
    vm.cgroup().account(grants[i]);
    if (!vm.idle(now)) vm.guest()->apply(grants[i], now, dt);
  }
}

void Hypervisor::set_vcpu_quota(int vm_id, double cores) {
  require(vm_id).cgroup().set_cpu_quota_cores(cores);
  note_activity();
}

void Hypervisor::clear_vcpu_quota(int vm_id) {
  require(vm_id).cgroup().clear_cpu_quota();
  note_activity();
}

void Hypervisor::set_blkio_throttle(int vm_id, sim::Bytes bytes_per_sec) {
  require(vm_id).cgroup().set_blkio_throttle_bps(bytes_per_sec);
  note_activity();
}

void Hypervisor::clear_blkio_throttle(int vm_id) {
  require(vm_id).cgroup().clear_blkio_throttle();
  note_activity();
}

const CgroupStats& Hypervisor::dom_stats(int vm_id) const { return require(vm_id).cgroup().stats(); }

}  // namespace perfcloud::virt
