// Hypervisor: hosts VMs on one physical server, drives the per-tick
// arbitration, and exposes the libvirt-style control/observation API that
// PerfCloud's node manager uses.
#pragma once

#include <memory>
#include <vector>

#include "hw/server.hpp"
#include "sim/types.hpp"
#include "virt/vm.hpp"

namespace perfcloud::virt {

/// Per-host KVM-like hypervisor.
///
/// Each tick it collects demand from every resident VM's guest (clamped to
/// the VM's vCPU allotment and cgroup caps), lets the physical server
/// arbitrate, then routes grants back to the guests and accounts them into
/// the VMs' cgroups. Resident order is stable, which keeps the hardware
/// models' positional jitter state attached to the same VM over time.
class Hypervisor {
 public:
  explicit Hypervisor(hw::ServerConfig server_cfg, sim::Rng rng)
      : server_(std::move(server_cfg), rng) {}

  Hypervisor(const Hypervisor&) = delete;
  Hypervisor& operator=(const Hypervisor&) = delete;

  /// Boot a VM on this host. The hypervisor owns it.
  Vm& boot(VmConfig cfg);

  /// Remove a VM from this host and hand over ownership (live-migration
  /// source side). The VM keeps its cgroup counters and guest state.
  /// Throws if the VM is unknown.
  [[nodiscard]] std::unique_ptr<Vm> evict(int vm_id);

  /// Accept a VM migrated from another host (destination side).
  Vm& adopt(std::unique_ptr<Vm> vm);

  [[nodiscard]] const std::vector<std::unique_ptr<Vm>>& vms() const { return vms_; }
  [[nodiscard]] Vm* find(int vm_id);
  [[nodiscard]] const Vm* find(int vm_id) const;
  [[nodiscard]] hw::Server& server() { return server_; }

  /// Advance one arbitration tick ending at `now`.
  void tick(sim::SimTime now, double dt);

  // --- libvirt-style API used by the node manager ---
  /// Apply a CPU hard cap (vcpu_quota) in cores. Throws if the VM is unknown.
  void set_vcpu_quota(int vm_id, double cores);
  void clear_vcpu_quota(int vm_id);
  /// Apply a blkio throttle in bytes/second.
  void set_blkio_throttle(int vm_id, sim::Bytes bytes_per_sec);
  void clear_blkio_throttle(int vm_id);
  /// Read the VM's cumulative cgroup counters (blkio + perf_event + cpuacct).
  [[nodiscard]] const CgroupStats& dom_stats(int vm_id) const;

 private:
  Vm& require(int vm_id);
  [[nodiscard]] const Vm& require(int vm_id) const;
  [[nodiscard]] int pick_numa_node(int vcpus) const;

  hw::Server server_;
  std::vector<std::unique_ptr<Vm>> vms_;
};

}  // namespace perfcloud::virt
