// Hypervisor: hosts VMs on one physical server, drives the per-tick
// arbitration, and exposes the libvirt-style control/observation API that
// PerfCloud's node manager uses.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "hw/server.hpp"
#include "sim/types.hpp"
#include "virt/vm.hpp"

namespace perfcloud::virt {

/// Global kill switch for the idle-host fast paths (hypervisor tick
/// early-out, node-manager quiescent step). On by default; off when the
/// PERFCLOUD_NO_IDLE_FASTPATH environment variable is set. The override is
/// process-wide — bench/micro_balance and the state-identity tests A/B it.
[[nodiscard]] bool idle_fastpath_enabled();
void set_idle_fastpath_enabled(bool enabled);

/// Per-host KVM-like hypervisor.
///
/// Each tick it collects demand from every resident VM's guest (clamped to
/// the VM's vCPU allotment and cgroup caps), lets the physical server
/// arbitrate, then routes grants back to the guests and accounts them into
/// the VMs' cgroups. Resident order is stable, which keeps the hardware
/// models' positional jitter state attached to the same VM over time.
class Hypervisor {
 public:
  explicit Hypervisor(hw::ServerConfig server_cfg, sim::Rng rng)
      : server_(std::move(server_cfg), rng) {}

  Hypervisor(const Hypervisor&) = delete;
  Hypervisor& operator=(const Hypervisor&) = delete;

  /// Boot a VM on this host. The hypervisor owns it.
  Vm& boot(VmConfig cfg);

  /// Remove a VM from this host and hand over ownership (live-migration
  /// source side). The VM keeps its cgroup counters and guest state.
  /// Throws if the VM is unknown.
  [[nodiscard]] std::unique_ptr<Vm> evict(int vm_id);

  /// Accept a VM migrated from another host (destination side).
  Vm& adopt(std::unique_ptr<Vm> vm);

  [[nodiscard]] const std::vector<std::unique_ptr<Vm>>& vms() const { return vms_; }
  [[nodiscard]] Vm* find(int vm_id);
  [[nodiscard]] const Vm* find(int vm_id) const;
  [[nodiscard]] hw::Server& server() { return server_; }

  /// Advance one arbitration tick ending at `now`. Quiescent hosts take an
  /// O(1) early-out (see is_quiescent): with no demand anywhere, arbitration
  /// grants nothing and accounts nothing, so skipping it is state-identical
  /// on an empty host and unobservable on a host of finished guests (the
  /// disk's idle jitter stream freezes, but jitter only surfaces through
  /// served I/O, which quiescence rules out).
  void tick(sim::SimTime now, double dt);

  // --- Quiescence (idle-host fast path) ---
  /// True when nothing on this host can change simulation state during a
  /// tick: every resident VM is unpaused with no guest (or a finished one)
  /// and carries no cgroup cap, and the disk is not degraded by a fault.
  /// O(1) when the answer was true last time and no activity intervened
  /// (guest completion is monotone, so quiescence can only end through an
  /// explicit activity event); O(#vms) otherwise.
  [[nodiscard]] bool is_quiescent(sim::SimTime now) const;
  /// Counter bumped by every event that can end quiescence — boot, adopt,
  /// evict, guest attach/detach, pause/unpause, cap set/clear, disk
  /// degradation. Monitors key their cached "settled" state to it.
  [[nodiscard]] std::uint64_t activity_epoch() const { return activity_epoch_; }
  void note_activity() {
    ++activity_epoch_;
    quiescent_ = false;
  }

  // --- Live-migration inflows (destination side, DESIGN.md §5j) ---
  /// While a VM's pre-copy is in flight, the destination host's block
  /// device serves the page stream (received state landing in the image
  /// store) as one extra tenant at `bytes_per_sec`. The flow contends in
  /// arbitration like any VM — which is exactly how an incoming migration
  /// inflates the neighbours' iowait — but receives no guest-visible
  /// grants and is not rate-adaptive (the cost model fixes the copy
  /// duration; congestion shows up as neighbour interference, not as a
  /// longer copy). Throws on duplicate vm_id or non-positive bandwidth.
  void begin_migration_in(int vm_id, double bytes_per_sec);
  /// End the flow (migration finished or aborted); unknown id is a no-op.
  void end_migration_in(int vm_id);
  [[nodiscard]] std::size_t migration_inflow_count() const { return migration_in_.size(); }

  /// Fault hook (DiskDegrade), routed through the hypervisor so quiescence
  /// tracking sees it. 1.0 restores full throughput.
  void set_disk_degradation(double factor);

  // --- libvirt-style API used by the node manager ---
  /// Apply a CPU hard cap (vcpu_quota) in cores. Throws if the VM is unknown.
  void set_vcpu_quota(int vm_id, double cores);
  void clear_vcpu_quota(int vm_id);
  /// Apply a blkio throttle in bytes/second.
  void set_blkio_throttle(int vm_id, sim::Bytes bytes_per_sec);
  void clear_blkio_throttle(int vm_id);
  /// Read the VM's cumulative cgroup counters (blkio + perf_event + cpuacct).
  [[nodiscard]] const CgroupStats& dom_stats(int vm_id) const;

 private:
  Vm& require(int vm_id);
  [[nodiscard]] const Vm& require(int vm_id) const;
  [[nodiscard]] int pick_numa_node(int vcpus) const;

  struct MigrationInflow {
    int vm_id = 0;
    double bytes_per_sec = 0.0;
  };

  hw::Server server_;
  std::vector<std::unique_ptr<Vm>> vms_;
  /// Active incoming pre-copy streams, in begin order. Appended AFTER the
  /// resident VMs' demands each tick so the hardware models' positional
  /// jitter state stays attached to the same VM across a migration.
  std::vector<MigrationInflow> migration_in_;
  std::uint64_t activity_epoch_ = 1;
  /// Cached "is_quiescent returned true"; cleared by note_activity. Only a
  /// true answer is cached — false must be recomputed because guests finish
  /// without notifying anyone.
  mutable bool quiescent_ = false;
};

}  // namespace perfcloud::virt
