// Interface implemented by everything that runs inside a VM.
#pragma once

#include <string_view>

#include "hw/tenant.hpp"
#include "sim/types.hpp"

namespace perfcloud::virt {

/// A guest workload generates per-tick resource demand and consumes the
/// grant the hypervisor delivers. To the host — and to PerfCloud — a guest
/// is a black box observable only through its cgroup counters, exactly as in
/// the paper.
class GuestWorkload {
 public:
  virtual ~GuestWorkload() = default;

  /// Resource demand for the next tick of length `dt`. Cap fields are
  /// ignored (caps belong to the cgroup); demand fields describe what the
  /// guest would consume on an idle host.
  [[nodiscard]] virtual hw::TenantDemand demand(sim::SimTime now, double dt) = 0;

  /// Deliver what the host actually granted for the tick ending at `now`.
  virtual void apply(const hw::TenantGrant& grant, sim::SimTime now, double dt) = 0;

  /// True once the workload has run to completion (always false for
  /// open-ended antagonists).
  [[nodiscard]] virtual bool finished(sim::SimTime now) const = 0;

  [[nodiscard]] virtual std::string_view name() const = 0;
};

}  // namespace perfcloud::virt
