// Per-VM control group: cumulative resource counters and resource caps.
//
// Mirrors the pieces of the Linux cgroup interface PerfCloud reads and
// writes: the blkio subsystem counters (io_wait_time, io_serviced,
// io_service_bytes), the perf_event counters (cycles, instructions, LLC
// misses), the cfs CPU quota, and the blkio throttle knobs.
#pragma once

#include <string>

#include "hw/tenant.hpp"
#include "sim/types.hpp"

namespace perfcloud::virt {

/// Cumulative counter snapshot, as read from the cgroup filesystem. All
/// values are monotonically non-decreasing since VM boot; consumers compute
/// deltas between samples (§III-D.1).
struct CgroupStats {
  // blkio subsystem
  double io_wait_time_ms = 0.0;   ///< blkio.io_wait_time (milliseconds).
  double io_serviced_ops = 0.0;   ///< blkio.io_serviced (operation count).
  sim::Bytes io_service_bytes = 0.0;  ///< blkio.io_service_bytes.
  // perf_event (counting mode, per cgroup)
  double cycles = 0.0;
  double instructions = 0.0;
  double llc_misses = 0.0;
  // cpuacct
  double cpu_time_s = 0.0;
};

class Cgroup {
 public:
  explicit Cgroup(std::string name) : name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const { return name_; }

  /// Fold one tick's grant into the cumulative counters.
  void account(const hw::TenantGrant& g) {
    stats_.io_wait_time_ms += g.io_wait_seconds * 1e3;
    stats_.io_serviced_ops += g.io_ops;
    stats_.io_service_bytes += g.io_bytes;
    stats_.cycles += g.cycles;
    stats_.instructions += g.instructions;
    stats_.llc_misses += g.llc_misses;
    stats_.cpu_time_s += g.cpu_core_seconds;
  }

  [[nodiscard]] const CgroupStats& stats() const { return stats_; }

  // --- Resource caps (the actuators PerfCloud drives) ---
  void set_cpu_quota_cores(double cores) { cpu_quota_cores_ = cores; }
  void clear_cpu_quota() { cpu_quota_cores_ = hw::kNoCap; }
  [[nodiscard]] double cpu_quota_cores() const { return cpu_quota_cores_; }

  void set_blkio_throttle_bps(sim::Bytes bps) { blkio_throttle_bps_ = bps; }
  void clear_blkio_throttle() { blkio_throttle_bps_ = hw::kNoCap; }
  [[nodiscard]] sim::Bytes blkio_throttle_bps() const { return blkio_throttle_bps_; }

  void set_blkio_throttle_iops(double iops) { blkio_throttle_iops_ = iops; }
  [[nodiscard]] double blkio_throttle_iops() const { return blkio_throttle_iops_; }

 private:
  std::string name_;
  CgroupStats stats_;
  double cpu_quota_cores_ = hw::kNoCap;
  sim::Bytes blkio_throttle_bps_ = hw::kNoCap;
  double blkio_throttle_iops_ = hw::kNoCap;
};

}  // namespace perfcloud::virt
