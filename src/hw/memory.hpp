// Shared last-level cache and memory-bandwidth contention model.
//
// Substrate for the paper's second contention signal: CPI (cycles per
// instruction) measured per cgroup via hardware performance counters, whose
// deviation across a scale-out application's VMs rises when a colocated
// memory-intensive tenant (e.g. STREAM) squeezes the LLC and saturates
// memory bandwidth (§III-A.2).
#pragma once

#include <span>
#include <vector>

#include "hw/tenant.hpp"
#include "sim/rng.hpp"

namespace perfcloud::hw {

struct MemoryConfig {
  sim::Bytes llc_size = 60.0 * 1024 * 1024;  ///< ~2 sockets worth of L3.
  sim::Bytes bw_capacity = 60.0e9;           ///< DRAM bandwidth, bytes/s.
  /// Working sets at or below this size live in private L1/L2 caches and
  /// neither compete for the LLC nor suffer when it is thrashed (a
  /// prime-computing bystander is immune to a STREAM neighbour).
  sim::Bytes private_cache = 2.5 * 1024 * 1024;
  double miss_cpi_coeff = 1.0;   ///< CPI inflation at 100 % LLC miss fraction.
  double bw_cpi_coeff = 0.7;     ///< CPI inflation per unit of saturation past the knee.
  double bw_knee = 0.7;          ///< Bandwidth utilization where stalls begin.
  double bw_rho_ceiling = 1.5;   ///< Saturation term stops growing past this.
  double traffic_floor = 0.10;   ///< Compulsory DRAM traffic fraction at 0 misses.
  /// Per-tenant multiplicative CPI jitter sigma at foreign pressure 1.0;
  /// AR(1)-correlated for the same reason as the disk model (see DiskConfig).
  double cpi_jitter_sigma = 0.3;
  double jitter_correlation_time = 12.0;
  /// Persistent per-tenant spread of the contention penalty: VMs land on
  /// different sockets/NUMA nodes relative to the aggressor, so the same
  /// foreign pressure hits them unequally. Drawn once per slot as
  /// exp(sigma * N(0,1)) and applied to the contention CPI terms — this is
  /// the stable cross-VM asymmetry behind the paper's CPI-deviation signal.
  double placement_spread_sigma = 0.5;
};

struct MemoryGrant {
  double cpi = 1.0;            ///< Effective cycles-per-instruction.
  double miss_fraction = 0.0;  ///< Fraction of LLC accesses missing to DRAM.
  sim::Bytes bw_bytes = 0.0;   ///< DRAM traffic achieved this tick.
  double llc_misses = 0.0;     ///< Cache-line miss count this tick.
};

/// Computes per-tenant CPI, miss counts, and DRAM traffic for one tick,
/// given the CPU time each tenant was granted.
///
/// Model: LLC capacity is shared in proportion to each tenant's declared
/// working-set footprint (an LRU-like cache favours high-rate, large
/// working sets); the miss fraction is the part of the footprint that does
/// not fit in the tenant's share. DRAM traffic scales with CPU time, the
/// tenant's intrinsic traffic intensity, and its miss fraction. CPI is then
/// inflated by the miss fraction and by bandwidth saturation past a knee,
/// with slowly-varying per-tenant jitter proportional to foreign pressure.
class MemorySystem {
 public:
  MemorySystem(MemoryConfig cfg, sim::Rng rng) : cfg_(cfg), rng_(rng) {}

  [[nodiscard]] const MemoryConfig& config() const { return cfg_; }

  /// `cpu_core_seconds[i]` is the CPU time granted to demands[i] this tick.
  /// Tenant order must be stable across ticks (jitter state is positional).
  [[nodiscard]] std::vector<MemoryGrant> compute(double dt, std::span<const TenantDemand> demands,
                                                 std::span<const double> cpu_core_seconds);

  /// Bandwidth utilization (demand over capacity) of the last tick.
  [[nodiscard]] double last_bw_utilization() const { return last_bw_utilization_; }

 private:
  MemoryConfig cfg_;
  sim::Rng rng_;
  std::vector<double> jitter_z_;
  std::vector<double> placement_factor_;  ///< Per-slot persistent multiplier.
  double last_bw_utilization_ = 0.0;
};

}  // namespace perfcloud::hw
