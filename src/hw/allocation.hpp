// Weighted max-min fair allocation with per-claimant caps ("water-filling").
// Shared by the CPU scheduler, the block device, and the memory system.
#pragma once

#include <span>
#include <vector>

namespace perfcloud::hw {

/// One claimant in a fair-share allocation round.
struct Claim {
  double demand = 0.0;  ///< How much the claimant wants this round (>= 0).
  double weight = 1.0;  ///< Proportional-share weight (> 0).
  double cap = 0.0;     ///< Hard upper bound; use a huge value for "none".
};

/// Distribute `capacity` over the claims by weighted max-min fairness:
/// repeatedly hand every unsatisfied claimant its weight-proportional share,
/// freeze anyone whose demand (or cap) is met, and redistribute the surplus.
///
/// Properties (verified by tests):
///  - no claimant receives more than min(demand, cap);
///  - total allocated = min(capacity, total effective demand);
///  - work-conserving: capacity left over only if everyone is satisfied;
///  - weight-proportional between permanently unsatisfied claimants.
[[nodiscard]] std::vector<double> weighted_fair_allocate(double capacity,
                                                         std::span<const Claim> claims);

}  // namespace perfcloud::hw
