#include "hw/disk.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "hw/allocation.hpp"

namespace perfcloud::hw {

void BlockDevice::set_throughput_degradation(double factor) {
  if (!(factor > 0.0 && factor <= 1.0)) {
    throw std::invalid_argument("disk degradation factor must be in (0, 1]");
  }
  degradation_ = factor;
}

std::vector<DiskGrant> BlockDevice::serve(double dt, std::span<const TenantDemand> demands) {
  const std::size_t n = demands.size();
  std::vector<DiskGrant> grants(n);
  if (n == 0 || dt <= 0.0) return grants;

  const double t_op = 1.0 / (cfg_.iops_capacity * degradation_);  // seek/queue cost per op
  const double inv_bw = 1.0 / (cfg_.bw_capacity * degradation_);  // transfer cost per byte

  // Advance per-slot AR(1) jitter state (stationary standard normal).
  if (jitter_z_.size() < n) jitter_z_.resize(n, 0.0);
  const double phi = std::exp(-dt / cfg_.jitter_correlation_time);
  const double innov = std::sqrt(std::max(0.0, 1.0 - phi * phi));
  for (std::size_t i = 0; i < n; ++i) {
    jitter_z_[i] = phi * jitter_z_[i] + innov * rng_.normal();
  }

  // 1. Apply blkio throttles: scale ops and bytes together so the request
  //    mix is preserved (the throttler delays whole requests).
  std::vector<double> ops(n);
  std::vector<double> bytes(n);
  for (std::size_t i = 0; i < n; ++i) {
    const TenantDemand& d = demands[i];
    double scale = 1.0;
    if (d.io_bytes > 0.0 && d.io_cap_bytes_per_sec != kNoCap) {
      scale = std::min(scale, d.io_cap_bytes_per_sec * dt / d.io_bytes);
    }
    if (d.io_ops > 0.0 && d.io_cap_iops != kNoCap) {
      scale = std::min(scale, d.io_cap_iops * dt / d.io_ops);
    }
    scale = std::clamp(scale, 0.0, 1.0);
    ops[i] = d.io_ops * scale;
    bytes[i] = d.io_bytes * scale;
  }

  // 2. Convert to device-seconds (each op costs a seek plus its transfer)
  //    and water-fill the device's dt seconds of service capacity.
  std::vector<Claim> claims(n);
  double total_need = 0.0;
  double bursty_need = 0.0;  // device-seconds offered by deep-queue tenants
  for (std::size_t i = 0; i < n; ++i) {
    const double need = ops[i] * t_op + bytes[i] * inv_bw;
    claims[i] = Claim{.demand = need, .weight = demands[i].io_weight, .cap = need};
    total_need += need;
    // "Burstiness" of a stream: the fraction of its queue occupancy beyond
    // a fair shallow queue, 1 - 1/weight, times its offered device time.
    bursty_need += (1.0 - 1.0 / std::max(demands[i].io_weight, 1.0)) * need;
  }
  const std::vector<double> granted_sec = weighted_fair_allocate(dt, claims);

  const double rho = total_need / dt;
  last_utilization_ = rho;
  const double qfactor = std::min(rho, cfg_.queue_factor_max);

  // 3. Fill grants. Wait per op = own service time x queue factor x jitter;
  //    the jitter sigma is dominated by bursty foreign load (see header).
  for (std::size_t i = 0; i < n; ++i) {
    const double need = claims[i].demand;
    const double scale = need > 0.0 ? granted_sec[i] / need : 0.0;
    DiskGrant& g = grants[i];
    g.ops = ops[i] * scale;
    g.bytes = bytes[i] * scale;

    if (g.ops > 0.0) {
      const double my_share = total_need > 0.0 ? need / total_need : 0.0;
      const double plain_foreign = std::min(rho * (1.0 - my_share), cfg_.jitter_scale_cap);
      const double my_burst = (1.0 - 1.0 / std::max(demands[i].io_weight, 1.0)) * need;
      const double burst_foreign = (bursty_need - my_burst) / dt;
      const double sigma_scale =
          std::min(cfg_.plain_jitter_coeff * plain_foreign + cfg_.burst_jitter_coeff * burst_foreign,
                   cfg_.jitter_scale_cap);
      const double jitter = std::exp(cfg_.wait_jitter_sigma * sigma_scale * jitter_z_[i]);
      const double per_op_service = granted_sec[i] / g.ops;
      g.wait_seconds = g.ops * per_op_service * qfactor * jitter * cfg_.wait_scale;
    }
  }
  return grants;
}

}  // namespace perfcloud::hw
