#include "hw/cpu.hpp"

#include "hw/allocation.hpp"

namespace perfcloud::hw {

std::vector<double> CpuScheduler::allocate(double dt, std::span<const TenantDemand> demands) const {
  std::vector<Claim> claims;
  claims.reserve(demands.size());
  for (const TenantDemand& d : demands) {
    claims.push_back(Claim{
        .demand = d.cpu_core_seconds,
        .weight = d.cpu_weight,
        .cap = d.cpu_cap_cores * dt,
    });
  }
  return weighted_fair_allocate(capacity(dt), claims);
}

}  // namespace perfcloud::hw
