// CPU time allocation across tenants of one physical server.
#pragma once

#include <span>
#include <vector>

#include "hw/tenant.hpp"

namespace perfcloud::hw {

struct CpuConfig {
  int cores = 48;            ///< Dell R630 in the paper: 48 cores.
  double clock_hz = 2.3e9;   ///< 2.3 GHz.
};

/// Proportional-share core scheduler with per-tenant hard caps.
///
/// Models the host CFS scheduler as seen through cgroups: each tick the
/// tenants' runnable demand (core-seconds) is served up to min(demand,
/// quota), with weighted fair sharing when the host is oversubscribed.
class CpuScheduler {
 public:
  explicit CpuScheduler(CpuConfig cfg) : cfg_(cfg) {}

  [[nodiscard]] const CpuConfig& config() const { return cfg_; }

  /// Core-seconds available per tick of length dt.
  [[nodiscard]] double capacity(double dt) const { return cfg_.cores * dt; }

  /// Allocate core-seconds for one tick. Returns one grant per demand,
  /// in order. Only the CPU fields of the grant are filled in here;
  /// instruction retirement is computed by the memory model afterwards
  /// (CPI depends on LLC/bandwidth contention).
  [[nodiscard]] std::vector<double> allocate(double dt, std::span<const TenantDemand> demands) const;

 private:
  CpuConfig cfg_;
};

}  // namespace perfcloud::hw
