#include "hw/memory.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "hw/allocation.hpp"

namespace perfcloud::hw {

namespace {
constexpr double kCacheLineBytes = 64.0;
}

std::vector<MemoryGrant> MemorySystem::compute(double dt, std::span<const TenantDemand> demands,
                                               std::span<const double> cpu_core_seconds) {
  assert(demands.size() == cpu_core_seconds.size());
  const std::size_t n = demands.size();
  std::vector<MemoryGrant> grants(n);
  if (n == 0 || dt <= 0.0) return grants;

  if (jitter_z_.size() < n) jitter_z_.resize(n, 0.0);
  while (placement_factor_.size() < n) {
    placement_factor_.push_back(std::exp(cfg_.placement_spread_sigma * rng_.normal()));
  }
  const double phi = std::exp(-dt / cfg_.jitter_correlation_time);
  const double innov = std::sqrt(std::max(0.0, 1.0 - phi * phi));
  for (std::size_t i = 0; i < n; ++i) {
    jitter_z_[i] = phi * jitter_z_[i] + innov * rng_.normal();
  }

  // 1. LLC occupancy competition: a tenant's share of the cache follows its
  //    line-insertion bandwidth (an LRU-like cache is owned by whoever
  //    streams through it fastest), so a CPU-capped aggressor loses its
  //    occupancy along with its CPU time. The insertion potential is the
  //    tenant's granted CPU time times its intrinsic traffic intensity.
  std::vector<double> potential(n, 0.0);
  double total_potential = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    potential[i] = cpu_core_seconds[i] * demands[i].mem_bw_per_cpu_sec;
    total_potential += potential[i];
  }

  // 2. Miss fractions and DRAM traffic demand.
  std::vector<double> traffic(n, 0.0);
  double total_traffic = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const TenantDemand& d = demands[i];
    MemoryGrant& g = grants[i];
    // Only the part of the working set that spills out of private caches
    // competes for the LLC.
    const double llc_set = std::max(0.0, d.llc_footprint - cfg_.private_cache);
    if (cpu_core_seconds[i] <= 0.0 || llc_set <= 0.0) {
      g.miss_fraction = 0.0;
    } else {
      const double share = total_potential > 0.0
                               ? cfg_.llc_size * potential[i] / total_potential
                               : cfg_.llc_size;
      g.miss_fraction = llc_set > share ? 1.0 - share / llc_set : 0.0;
    }
    const double miss_scale = std::max(g.miss_fraction, cfg_.traffic_floor);
    traffic[i] = cpu_core_seconds[i] * d.mem_bw_per_cpu_sec * miss_scale;
    total_traffic += traffic[i];
  }

  const double bw_capacity_tick = cfg_.bw_capacity * dt;
  const double rho_bw = bw_capacity_tick > 0.0 ? total_traffic / bw_capacity_tick : 0.0;
  last_bw_utilization_ = rho_bw;
  const double saturation = std::max(0.0, std::min(rho_bw, cfg_.bw_rho_ceiling) - cfg_.bw_knee);

  // Memory controllers approximate fair bandwidth partitioning: a tenant
  // with a small demand is served in full under any load (its measured
  // traffic — and LLC miss rate — stays flat no matter who else streams),
  // while the big streamers split what remains.
  std::vector<Claim> bw_claims(n);
  for (std::size_t i = 0; i < n; ++i) {
    bw_claims[i] = Claim{.demand = traffic[i], .weight = 1.0, .cap = traffic[i]};
  }
  const std::vector<double> bw_granted = weighted_fair_allocate(bw_capacity_tick, bw_claims);

  // 3. Effective CPI with contention inflation and correlated jitter.
  for (std::size_t i = 0; i < n; ++i) {
    const TenantDemand& d = demands[i];
    MemoryGrant& g = grants[i];
    g.bw_bytes = bw_granted[i];
    g.llc_misses = g.bw_bytes / kCacheLineBytes;

    const double foreign_traffic = (total_traffic - traffic[i]) / std::max(bw_capacity_tick, 1.0);
    const double sigma = cfg_.cpi_jitter_sigma * std::min(foreign_traffic, 1.5);
    const double jitter = std::exp(sigma * jitter_z_[i]);

    // Additive stall components: LLC misses and bandwidth queuing delays
    // overlap in real pipelines, so their penalties add rather than multiply.
    // The persistent placement factor spreads the contention penalty across
    // tenants; the AR(1) jitter adds the slow time-varying component.
    const double miss_term = cfg_.miss_cpi_coeff * g.miss_fraction * d.mem_sensitivity;
    const double bw_term = cfg_.bw_cpi_coeff * saturation * d.mem_sensitivity;
    g.cpi = d.cpi_base * (1.0 + (miss_term + bw_term) * placement_factor_[i]) * jitter;
  }
  return grants;
}

}  // namespace perfcloud::hw
