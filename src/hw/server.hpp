// Physical server: composition of CPU scheduler, block device, and memory
// subsystem, arbitrated once per simulation tick.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "hw/cpu.hpp"
#include "hw/disk.hpp"
#include "hw/memory.hpp"
#include "hw/tenant.hpp"
#include "sim/rng.hpp"

namespace perfcloud::hw {

struct ServerConfig {
  std::string name = "server";
  CpuConfig cpu;
  DiskConfig disk;
  /// Per-socket memory subsystem configuration (LLC size and bandwidth are
  /// PER SOCKET when sockets > 1).
  MemoryConfig memory;
  /// NUMA sockets. 1 (default) reproduces the paper's single shared memory
  /// domain; 2 models the R630's dual-socket reality, where tenants only
  /// contend with same-socket neighbours (§IV-D future work).
  int sockets = 1;
  /// Installed DRAM — the capacity side of VM admission (placement and
  /// migration destinations must fit resident + inbound VM memory under
  /// this; bandwidth lives in MemoryConfig). Paper's R630: 256 GB.
  sim::Bytes dram = 256.0 * 1024 * 1024 * 1024;
};

/// One bare-metal host (the paper's Dell R630). The hypervisor presents the
/// demand vector of its resident VMs each tick; the server returns what each
/// VM actually received, from which cgroup counters are accumulated.
class Server {
 public:
  Server(ServerConfig cfg, sim::Rng rng);

  [[nodiscard]] const ServerConfig& config() const { return cfg_; }
  [[nodiscard]] const std::string& name() const { return cfg_.name; }

  /// Arbitrate one tick. Demand order must be stable across ticks (per-slot
  /// jitter state in the disk and memory models is positional).
  [[nodiscard]] std::vector<TenantGrant> arbitrate(double dt,
                                                   std::span<const TenantDemand> demands);

  [[nodiscard]] double last_disk_utilization() const { return disk_.last_utilization(); }

  /// Fault hook (DiskDegrade): forwarded to the block device. 1.0 = healthy.
  void set_disk_degradation(double factor) { disk_.set_throughput_degradation(factor); }
  [[nodiscard]] double disk_degradation() const { return disk_.throughput_degradation(); }
  /// Max over sockets: the most-contended memory domain's utilization.
  [[nodiscard]] double last_bw_utilization() const;

  [[nodiscard]] int sockets() const { return cfg_.sockets; }

 private:
  ServerConfig cfg_;
  CpuScheduler cpu_;
  BlockDevice disk_;
  std::vector<MemorySystem> memory_;  ///< One per socket.
};

}  // namespace perfcloud::hw
