// Per-tenant demand and grant records exchanged between the virtualization
// layer and the hardware models each arbitration tick.
#pragma once

#include <limits>

#include "sim/types.hpp"

namespace perfcloud::hw {

constexpr double kNoCap = std::numeric_limits<double>::infinity();

/// What one tenant (cgroup/VM) asks of the physical server for one tick.
struct TenantDemand {
  // --- CPU ---
  double cpu_core_seconds = 0.0;  ///< Runnable demand this tick.
  double cpu_weight = 1.0;
  double cpu_cap_cores = kNoCap;  ///< Hard cap in cores (cfs-quota style).

  // --- Block I/O ---
  double io_ops = 0.0;  ///< Operations demanded this tick.
  sim::Bytes io_bytes = 0.0;
  double io_weight = 1.0;
  sim::Bytes io_cap_bytes_per_sec = kNoCap;  ///< blkio throttle (bytes/s).
  double io_cap_iops = kNoCap;               ///< blkio throttle (ops/s).

  // --- Memory subsystem ---
  sim::Bytes llc_footprint = 0.0;      ///< Working set competing for LLC.
  double mem_bw_per_cpu_sec = 0.0;     ///< DRAM traffic (bytes) per core-second.
  double cpi_base = 1.0;               ///< CPI with zero contention.
  double mem_sensitivity = 1.0;        ///< Scales contention-induced CPI inflation.
  /// NUMA socket this tenant's memory lives on. LLC and bandwidth
  /// contention are per-socket: tenants on different sockets do not
  /// interfere through the memory subsystem. Ignored (treated as 0) on
  /// single-socket servers.
  int numa_node = 0;
};

/// What the server actually delivered to one tenant for one tick.
struct TenantGrant {
  double cpu_core_seconds = 0.0;
  double cycles = 0.0;        ///< cpu_core_seconds * clock_hz.
  double instructions = 0.0;  ///< cycles / effective CPI.
  double cpi = 0.0;           ///< Effective (contention-inflated) CPI.
  double llc_misses = 0.0;    ///< Cache-line misses this tick.

  double io_ops = 0.0;
  sim::Bytes io_bytes = 0.0;
  double io_wait_seconds = 0.0;  ///< Queue + service wait accumulated.

  sim::Bytes mem_bw_bytes = 0.0;  ///< DRAM traffic achieved.
};

}  // namespace perfcloud::hw
