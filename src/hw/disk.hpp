// Shared block device with queueing-induced wait times.
//
// This is the substrate for the paper's central I/O-contention signal: the
// blkio.io_wait_time / blkio.io_serviced ratio and its deviation across the
// VMs of a scale-out application (§III-A).
//
// Model. Each op costs a seek (1/iops) plus its transfer (bytes/bw) in
// device-seconds; the device's dt seconds per tick are shared by weighted
// water-filling. The wait of an op is its own service time multiplied by the
// queue length in service-time units (the demand-to-capacity ratio rho) —
// an M/M/1-flavoured but bounded law — and by a per-tenant multiplicative
// jitter. The jitter's sigma is driven almost entirely by *bursty* foreign
// load: queue-depth-1 streams interleave round-robin and give every tenant
// the same average wait (low deviation across victim VMs, as the paper
// observes for Hadoop running alone), while a deep-queue random stream
// (io_weight > 1, e.g. fio with iodepth 32) lands in unpredictable bursts
// that spread the victims' waits apart. Jitter state is AR(1)-correlated in
// time so 5-second monitor sampling does not average it away.
#pragma once

#include <span>
#include <vector>

#include "hw/tenant.hpp"
#include "sim/rng.hpp"

namespace perfcloud::hw {

struct DiskConfig {
  double iops_capacity = 500.0;       ///< Random-op ceiling (spinning-disk-like).
  sim::Bytes bw_capacity = 150.0e6;   ///< Sequential ceiling, bytes/s.
  /// Queue factor bound: wait per op = service_time * min(rho, qmax).
  double queue_factor_max = 20.0;
  /// Overall wait-time scale. Calibrated so that a busy scale-out
  /// application running *alone* shows a peak iowait-ratio deviation just
  /// below PerfCloud's threshold of 10 ms/op — the paper chooses H as "the
  /// peak standard deviation observed when there is no resource contention"
  /// (§III-C), which makes the controller regulate contention down to
  /// near-uncontended levels.
  double wait_scale = 2.5;
  /// Jitter sigma at full contention scaling (see above).
  double wait_jitter_sigma = 0.8;
  /// Weight of ordinary (fair, shallow-queue) foreign utilization in the
  /// jitter sigma — small: fair sharing spreads waits evenly.
  double plain_jitter_coeff = 0.1;
  /// Weight of bursty foreign load (io_weight above 1) in the jitter sigma —
  /// large: deep queues create unfairness between victims. Chosen so a
  /// saturating fio (its duty cycle spanning ~1.5-3 device-seconds/s of
  /// weighted burst) maps into the responsive part of the sigma range
  /// rather than pinning at the cap — the deviation signal must *track*
  /// antagonist intensity for cross-correlation to identify it.
  double burst_jitter_coeff = 0.4;
  /// Jitter sigma scale saturates at this value.
  double jitter_scale_cap = 1.5;
  /// Correlation time (seconds) of each tenant's wait-jitter AR(1) state.
  double jitter_correlation_time = 8.0;
};

struct DiskGrant {
  double ops = 0.0;
  sim::Bytes bytes = 0.0;
  double wait_seconds = 0.0;  ///< Total wait accumulated by this tenant's ops.
};

/// One shared block device. Unserved demand is carried by the workloads
/// (they re-issue it next tick), so the device models per-tick service,
/// waiting, and slot-indexed jitter state only.
class BlockDevice {
 public:
  BlockDevice(DiskConfig cfg, sim::Rng rng) : cfg_(cfg), rng_(rng) {}

  [[nodiscard]] const DiskConfig& config() const { return cfg_; }

  /// Fault hook (DiskDegrade): serve at `factor` times the healthy
  /// throughput — both the IOPS and the bandwidth ceiling scale, so every
  /// op's seek and transfer cost grow by 1/factor. 1.0 restores full health.
  /// Throws std::invalid_argument unless 0 < factor <= 1.
  void set_throughput_degradation(double factor);
  [[nodiscard]] double throughput_degradation() const { return degradation_; }

  /// Serve one tick of demand. Per-tenant throttle caps are applied first
  /// (scaling ops and bytes together), then device time (seek + transfer
  /// cost) is allocated by weighted fair sharing. Tenant order must be
  /// stable across ticks: jitter state is keyed by position.
  [[nodiscard]] std::vector<DiskGrant> serve(double dt, std::span<const TenantDemand> demands);

  /// Device utilization of the last served tick (demand over capacity; can
  /// exceed 1 when oversubscribed).
  [[nodiscard]] double last_utilization() const { return last_utilization_; }

 private:
  DiskConfig cfg_;
  sim::Rng rng_;
  std::vector<double> jitter_z_;  ///< Per-slot standard-normal AR(1) state.
  double last_utilization_ = 0.0;
  double degradation_ = 1.0;  ///< Fault-injected throughput multiplier.
};

}  // namespace perfcloud::hw
