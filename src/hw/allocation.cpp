#include "hw/allocation.hpp"

#include <algorithm>
#include <cassert>

namespace perfcloud::hw {

std::vector<double> weighted_fair_allocate(double capacity, std::span<const Claim> claims) {
  const std::size_t n = claims.size();
  std::vector<double> granted(n, 0.0);
  if (n == 0 || capacity <= 0.0) return granted;

  std::vector<double> want(n);
  for (std::size_t i = 0; i < n; ++i) {
    assert(claims[i].demand >= 0.0);
    assert(claims[i].weight > 0.0);
    want[i] = std::min(claims[i].demand, std::max(0.0, claims[i].cap));
  }

  std::vector<bool> frozen(n, false);
  double remaining = capacity;
  // Each round freezes at least one claimant, so at most n rounds.
  for (std::size_t round = 0; round < n; ++round) {
    double active_weight = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (!frozen[i] && granted[i] < want[i]) active_weight += claims[i].weight;
    }
    if (active_weight <= 0.0 || remaining <= 1e-15) break;

    bool any_frozen = false;
    double handed_out = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (frozen[i] || granted[i] >= want[i]) continue;
      const double share = remaining * claims[i].weight / active_weight;
      const double room = want[i] - granted[i];
      if (share >= room) {
        granted[i] = want[i];
        handed_out += room;
        frozen[i] = true;
        any_frozen = true;
      } else {
        granted[i] += share;
        handed_out += share;
      }
    }
    remaining -= handed_out;
    if (!any_frozen) break;  // everyone got exactly their proportional share
  }
  return granted;
}

}  // namespace perfcloud::hw
