#include "hw/server.hpp"

#include <algorithm>
#include <stdexcept>

namespace perfcloud::hw {

Server::Server(ServerConfig cfg, sim::Rng rng)
    : cfg_(std::move(cfg)), cpu_(cfg_.cpu), disk_(cfg_.disk, rng.split(0xd15c)) {
  if (cfg_.sockets < 1) throw std::invalid_argument("server needs at least one socket");
  memory_.reserve(static_cast<std::size_t>(cfg_.sockets));
  for (int s = 0; s < cfg_.sockets; ++s) {
    memory_.emplace_back(cfg_.memory, rng.split(0x3e3 + static_cast<std::uint64_t>(s)));
  }
}

double Server::last_bw_utilization() const {
  double u = 0.0;
  for (const MemorySystem& m : memory_) u = std::max(u, m.last_bw_utilization());
  return u;
}

std::vector<TenantGrant> Server::arbitrate(double dt, std::span<const TenantDemand> demands) {
  const std::size_t n = demands.size();
  std::vector<TenantGrant> grants(n);
  if (n == 0) return grants;

  // CPU first: instruction retirement depends on the memory model, which in
  // turn needs to know how much CPU time each tenant ran.
  const std::vector<double> cpu_sec = cpu_.allocate(dt, demands);

  // Memory contention is per NUMA socket: partition the tenants, run each
  // socket's model on its residents, and scatter the results back. The
  // partition order is stable (ascending original index), which keeps the
  // per-slot jitter state attached to the same tenant over time as long as
  // the resident set is stable.
  std::vector<MemoryGrant> mem(n);
  for (int s = 0; s < cfg_.sockets; ++s) {
    std::vector<TenantDemand> socket_demands;
    std::vector<double> socket_cpu;
    std::vector<std::size_t> index;
    for (std::size_t i = 0; i < n; ++i) {
      const int node = std::clamp(demands[i].numa_node, 0, cfg_.sockets - 1);
      if (node != s) continue;
      socket_demands.push_back(demands[i]);
      socket_cpu.push_back(cpu_sec[i]);
      index.push_back(i);
    }
    if (index.empty()) continue;
    const std::vector<MemoryGrant> socket_grants =
        memory_[static_cast<std::size_t>(s)].compute(dt, socket_demands, socket_cpu);
    for (std::size_t k = 0; k < index.size(); ++k) mem[index[k]] = socket_grants[k];
  }

  const std::vector<DiskGrant> disk = disk_.serve(dt, demands);

  const double clock = cpu_.config().clock_hz;
  for (std::size_t i = 0; i < n; ++i) {
    TenantGrant& g = grants[i];
    g.cpu_core_seconds = cpu_sec[i];
    g.cycles = cpu_sec[i] * clock;
    g.cpi = mem[i].cpi;
    g.instructions = g.cpi > 0.0 ? g.cycles / g.cpi : 0.0;
    g.llc_misses = mem[i].llc_misses;
    g.mem_bw_bytes = mem[i].bw_bytes;
    g.io_ops = disk[i].ops;
    g.io_bytes = disk[i].bytes;
    g.io_wait_seconds = disk[i].wait_seconds;
  }
  return grants;
}

}  // namespace perfcloud::hw
