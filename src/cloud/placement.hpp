// VM placement policies.
#pragma once

#include <string>
#include <vector>

#include "cloud/cloud_manager.hpp"
#include "sim/rng.hpp"

namespace perfcloud::cloud {

/// Boot `count` identically-shaped VMs for one application, spread
/// round-robin over the given hosts (the paper's virtual Hadoop clusters
/// distribute worker VMs evenly over the bare-metal servers). Returns the
/// booted VM ids in order. Names are "<app_id>-<index>".
std::vector<int> place_spread(CloudManager& cloud, const std::vector<std::string>& hosts,
                              int count, virt::VmConfig shape, const std::string& app_id);

/// Boot `count` VMs on hosts drawn uniformly at random (the paper's §IV-C
/// randomly distributes antagonistic VMs on each job execution). Returns the
/// booted VM ids.
std::vector<int> place_random(CloudManager& cloud, const std::vector<std::string>& hosts,
                              int count, virt::VmConfig shape, const std::string& name_prefix,
                              sim::Rng& rng);

/// Boot `count` VMs filling hosts in order, `per_host` VMs per host before
/// moving on (consolidation-style placement — the packing that makes
/// multi-tenant interference likely in the first place).
std::vector<int> place_packed(CloudManager& cloud, const std::vector<std::string>& hosts,
                              int count, int per_host, virt::VmConfig shape,
                              const std::string& app_id);

/// Old VM id -> its replacement after a host crash.
struct Replacement {
  int old_id = 0;
  int new_id = 0;
  std::string host;
};

/// Re-place the victims of a host crash on the surviving (up) hosts. The
/// `lost` configs come from CloudManager::crash_host — each carries the old
/// VM id, preserved in the returned mapping; the booted replacements get
/// fresh ids and keep their old names, shapes, priorities, and app ids, but
/// come back with NO guest attached (the guest died with the host). Spread
/// mode places each victim on the least-populated up host (ties broken by
/// provisioning order); packed mode piles every victim onto the first up
/// host. Throws when no host survives.
std::vector<Replacement> place_replacements(CloudManager& cloud,
                                            const std::vector<virt::VmConfig>& lost, bool packed);

}  // namespace perfcloud::cloud
