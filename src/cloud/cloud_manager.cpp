#include "cloud/cloud_manager.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <stdexcept>

namespace perfcloud::cloud {

virt::Hypervisor& CloudManager::add_host(hw::ServerConfig cfg) {
  if (find_host(cfg.name) != nullptr) {
    throw std::invalid_argument("duplicate host name " + cfg.name);
  }
  const std::string name = cfg.name;
  auto hv = std::make_unique<virt::Hypervisor>(
      std::move(cfg), engine_.rng().split(std::hash<std::string>{}(name)));
  hosts_.push_back(Host{name, std::move(hv)});
  return *hosts_.back().hypervisor;
}

std::vector<std::string> CloudManager::host_names() const {
  std::vector<std::string> names;
  names.reserve(hosts_.size());
  for (const Host& h : hosts_) names.push_back(h.name);
  return names;
}

const CloudManager::Host* CloudManager::find_host(const std::string& name) const {
  for (const Host& h : hosts_) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

CloudManager::Host* CloudManager::find_host(const std::string& name) {
  for (Host& h : hosts_) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

virt::Hypervisor& CloudManager::host(const std::string& name) {
  const Host* h = find_host(name);
  if (h == nullptr) throw std::invalid_argument("unknown host " + name);
  return *h->hypervisor;
}

virt::Vm& CloudManager::boot_vm(const std::string& host_name, virt::VmConfig cfg) {
  const Host* h = find_host(host_name);
  if (h == nullptr) throw std::invalid_argument("unknown host " + host_name);
  if (!h->up) throw std::invalid_argument("host " + host_name + " is down");
  cfg.id = next_vm_id_++;
  virt::Vm& vm = h->hypervisor->boot(cfg);
  const sim::Interner::Id app =
      vm.app_id().empty() ? sim::Interner::kInvalid : app_interner_.intern(vm.app_id());
  registry_.push_back(VmRecord{vm.id(), vm.name(), host_name, vm.priority(), vm.app_id(), app});
  ++registry_version_;
  return vm;
}

VmRecord* CloudManager::find_record(int vm_id) {
  for (VmRecord& r : registry_) {
    if (r.id == vm_id) return &r;
  }
  return nullptr;
}

const VmRecord* CloudManager::find_record(int vm_id) const {
  return const_cast<CloudManager*>(this)->find_record(vm_id);
}

CloudManager::Migration* CloudManager::find_migration(int vm_id) {
  for (Migration& m : migrations_) {
    if (m.vm_id == vm_id) return &m;
  }
  return nullptr;
}

bool CloudManager::migration_in_flight(int vm_id) const {
  for (const Migration& m : migrations_) {
    if (m.vm_id == vm_id) return true;
  }
  return false;
}

void CloudManager::set_migration_model(MigrationModel model) {
  if (!migrations_.empty()) {
    throw std::logic_error("cannot change the migration model mid-migration");
  }
  if (model.enabled() && model.downtime_s < 0.0) {
    throw std::invalid_argument("migration downtime must be non-negative");
  }
  migration_model_ = model;
}

void CloudManager::add_migration_listener(MigrationListener listener) {
  migration_listeners_.push_back(std::move(listener));
}

void CloudManager::notify_migration(int vm_id, MigrationPhase phase, const std::string& src,
                                    const std::string& dst) {
  const MigrationEvent ev{vm_id, phase, src, dst};
  for (const MigrationListener& listener : migration_listeners_) listener(ev);
}

void CloudManager::complete_handoff(VmRecord& record, Host& src, Host& dst) {
  // kDeparting while the VM is still resident on the source: listeners
  // (node managers) retire caps through the source hypervisor here.
  notify_migration(record.id, MigrationPhase::kDeparting, src.name, dst.name);
  dst.hypervisor->adopt(src.hypervisor->evict(record.id));
  record.host = dst.name;
  ++registry_version_;
  ++migrations_completed_;
  notify_migration(record.id, MigrationPhase::kArrived, src.name, dst.name);
  if (sink_ != nullptr) {
    sink_->emit_event(sink_source_, engine_.now(),
                      "migrate vm=" + std::to_string(record.id) + " dst=" + dst.name, 1.0);
    sink_->bump_counter(sink_source_, "migrations");
  }
}

void CloudManager::migrate_vm(int vm_id, const std::string& dst_host) {
  Host* dst = find_host(dst_host);
  if (dst == nullptr) throw std::invalid_argument("unknown host " + dst_host);
  if (!dst->up) throw std::invalid_argument("host " + dst_host + " is down");
  VmRecord* record = find_record(vm_id);
  if (record == nullptr) {
    throw std::invalid_argument("unknown VM id " + std::to_string(vm_id));
  }
  if (record->host == dst_host) {
    throw std::invalid_argument("VM " + std::to_string(vm_id) + " is already on host " +
                                dst_host + "; self-migration is a caller bug");
  }
  if (migration_in_flight(vm_id)) {
    throw std::logic_error("VM " + std::to_string(vm_id) + " is already migrating");
  }
  Host* src = find_host(record->host);
  ++migrations_started_;
  if (!migration_model_.enabled()) {
    complete_handoff(*record, *src, *dst);
    return;
  }
  start_live_migration(*record, *src, *dst);
}

void CloudManager::start_live_migration(VmRecord& record, Host& src, Host& dst) {
  const virt::Vm* vm = src.hypervisor->find(record.id);
  if (vm == nullptr) {
    throw std::logic_error("registry/hypervisor mismatch: VM " + std::to_string(record.id) +
                           " is registered on host " + src.name + " but not resident");
  }
  const double copy_s = vm->config().memory / migration_model_.bandwidth_bps;
  const double downtime_s = migration_model_.downtime_s;

  Migration m;
  m.vm_id = record.id;
  m.src = src.name;
  m.dst = dst.name;
  // The destination starts serving the page stream now; its node manager
  // sees the traffic in arbitration from the next tick on.
  dst.hypervisor->begin_migration_in(record.id, migration_model_.bandwidth_bps);
  const int vm_id = record.id;
  if (downtime_s > 0.0) {
    m.pause_event = engine_.at(engine_.now() + copy_s,
                               [this, vm_id](sim::SimTime) { pause_for_migration(vm_id); });
  }
  m.finish_event = engine_.at(engine_.now() + copy_s + downtime_s,
                              [this, vm_id](sim::SimTime) { finish_migration(vm_id); });
  migrations_.push_back(std::move(m));
  notify_migration(vm_id, MigrationPhase::kStarted, src.name, dst.name);
  if (sink_ != nullptr) {
    sink_->emit_event(sink_source_, engine_.now(),
                      "migrate_start vm=" + std::to_string(vm_id) + " dst=" + dst.name, copy_s);
    sink_->bump_counter(sink_source_, "migrations_started");
  }
}

void CloudManager::pause_for_migration(int vm_id) {
  Migration* m = find_migration(vm_id);
  if (m == nullptr) return;  // aborted; the event should have been cancelled
  Host* src = find_host(m->src);
  virt::Vm* vm = src->hypervisor->find(vm_id);
  if (vm == nullptr) return;
  // Stop-and-copy: freeze the guest for the downtime window. A VM a fault
  // already paused stays paused afterwards — the migration must not lift a
  // VmStall on its way out.
  m->resume_on_finish = !vm->paused();
  vm->set_paused(true);
  m->paused = true;
}

void CloudManager::finish_migration(int vm_id) {
  Migration* found = find_migration(vm_id);
  if (found == nullptr) return;
  const Migration m = *found;
  std::erase_if(migrations_, [&](const Migration& x) { return x.vm_id == vm_id; });

  Host* src = find_host(m.src);
  Host* dst = find_host(m.dst);
  dst->hypervisor->end_migration_in(vm_id);
  VmRecord* record = find_record(vm_id);
  complete_handoff(*record, *src, *dst);
  if (m.paused && m.resume_on_finish) {
    virt::Vm* vm = dst->hypervisor->find(vm_id);
    vm->set_paused(false);
  }
}

void CloudManager::abort_migrations_touching(const std::string& host) {
  for (std::size_t i = 0; i < migrations_.size();) {
    if (migrations_[i].src != host && migrations_[i].dst != host) {
      ++i;
      continue;
    }
    const Migration m = migrations_[i];
    migrations_.erase(migrations_.begin() + static_cast<std::ptrdiff_t>(i));
    engine_.cancel(m.pause_event);
    engine_.cancel(m.finish_event);
    if (Host* dst = find_host(m.dst); dst != nullptr) {
      dst->hypervisor->end_migration_in(m.vm_id);
    }
    // The VM survives only when its source survives: an inbound copy loses
    // its destination and the VM just keeps running on the source (undo
    // our stop-and-copy pause); an outbound VM is about to die with the
    // crashing source, so there is nothing to restore.
    if (m.src != host && m.paused && m.resume_on_finish) {
      if (virt::Vm* vm = find_host(m.src)->hypervisor->find(m.vm_id); vm != nullptr) {
        vm->set_paused(false);
      }
    }
    ++migrations_aborted_;
    notify_migration(m.vm_id, MigrationPhase::kAborted, m.src, m.dst);
    if (sink_ != nullptr) {
      sink_->emit_event(sink_source_, engine_.now(),
                        "migrate_abort vm=" + std::to_string(m.vm_id) + " dst=" + m.dst, 1.0);
      sink_->bump_counter(sink_source_, "migrations_aborted");
    }
  }
}

std::vector<virt::VmConfig> CloudManager::crash_host(const std::string& name) {
  Host* h = find_host(name);
  if (h == nullptr) throw std::invalid_argument("unknown host " + name);
  if (!h->up) throw std::invalid_argument("host " + name + " is already down");

  // In-flight migrations touching this host die with it: an inbound copy
  // loses its destination (the VM stays on its source, unpaused), and an
  // outbound VM is a crash victim below (it is still registered here).
  abort_migrations_touching(name);

  // Victims in registry (= boot) order, so re-placement order is stable.
  std::vector<virt::VmConfig> lost;
  for (const VmRecord& r : registry_) {
    if (r.host != name) continue;
    const virt::Vm* vm = h->hypervisor->find(r.id);
    if (vm == nullptr) {
      throw std::logic_error("registry/hypervisor mismatch: VM " + std::to_string(r.id) +
                             " is registered on host " + name + " but not resident");
    }
    virt::VmConfig cfg = vm->config();
    cfg.id = r.id;  // preserved so the caller can map old id -> replacement
    lost.push_back(std::move(cfg));
  }
  for (const virt::VmConfig& cfg : lost) {
    // The evicted VM is dropped on the floor: it and its guest die here.
    auto victim = h->hypervisor->evict(cfg.id);
    victim.reset();
  }
  std::erase_if(registry_, [&](const VmRecord& r) { return r.host == name; });
  ++registry_version_;
  h->up = false;

  if (sink_ != nullptr) {
    sink_->emit_event(sink_source_, engine_.now(), "host_crash host=" + name,
                      static_cast<double>(lost.size()));
    sink_->bump_counter(sink_source_, "host_crashes");
  }
  return lost;
}

void CloudManager::restore_host(const std::string& name) {
  Host* h = find_host(name);
  if (h == nullptr) throw std::invalid_argument("unknown host " + name);
  if (h->up) throw std::invalid_argument("host " + name + " is already up");
  h->up = true;
  ++registry_version_;
  if (sink_ != nullptr) {
    sink_->emit_event(sink_source_, engine_.now(), "host_restore host=" + name, 1.0);
    sink_->bump_counter(sink_source_, "host_restores");
  }
}

bool CloudManager::host_up(const std::string& name) const {
  const Host* h = find_host(name);
  if (h == nullptr) throw std::invalid_argument("unknown host " + name);
  return h->up;
}

std::vector<std::string> CloudManager::up_hosts() const {
  std::vector<std::string> names;
  for (const Host& h : hosts_) {
    if (h.up) names.push_back(h.name);
  }
  return names;
}

void CloudManager::set_emit_sink(sim::EmitSink* sink) {
  sink_ = sink;
  if (sink_ != nullptr) sink_source_ = sink_->add_event_source("cloud");
}

bool CloudManager::host_has_capacity(const Host& h, const virt::VmConfig& shape) const {
  int vcpus = shape.vcpus;
  sim::Bytes memory = shape.memory;
  for (const auto& vm : h.hypervisor->vms()) {
    vcpus += vm->vcpus();
    memory += vm->config().memory;
  }
  // Inbound in-flight migrations are commitments: their VMs are not
  // resident yet but will be, so admission must count them or concurrent
  // escalations would over-pack the same destination.
  for (const Migration& m : migrations_) {
    if (m.dst != h.name) continue;
    const Host* src = find_host(m.src);
    const virt::Vm* vm = src == nullptr ? nullptr : src->hypervisor->find(m.vm_id);
    if (vm != nullptr) {
      vcpus += vm->vcpus();
      memory += vm->config().memory;
    }
  }
  const hw::ServerConfig& cfg = h.hypervisor->server().config();
  return vcpus <= cfg.cpu.cores && memory <= cfg.dram;
}

bool CloudManager::has_capacity(const std::string& host, const virt::VmConfig& shape) const {
  const Host* h = find_host(host);
  if (h == nullptr) throw std::invalid_argument("unknown host " + host);
  return h->up && host_has_capacity(*h, shape);
}

int CloudManager::resolve_high_priority_collision(const std::string& host_name) {
  // Group the host's high-priority VMs by application.
  std::map<std::string, std::vector<int>> groups;
  for (const VmRecord& r : vms_on_host(host_name)) {
    if (r.priority == virt::Priority::kHigh && !r.app_id.empty()) {
      groups[r.app_id].push_back(r.id);
    }
  }
  if (groups.size() < 2) return 0;

  // Move the smallest group: fewest VMs to copy, least disruption.
  const auto smallest =
      std::min_element(groups.begin(), groups.end(), [](const auto& a, const auto& b) {
        return a.second.size() < b.second.size();
      });
  const std::string& moving_app = smallest->first;

  // Conflict of a host for this app: high-priority VMs of *other* apps
  // there, counting inbound in-flight migrations (they are tomorrow's
  // residents — ignoring them would stack two colliding apps onto the same
  // "clean" destination while the copies run).
  const auto conflict = [&](const std::string& h) {
    std::size_t n = 0;
    for (const VmRecord& r : vms_on_host(h)) {
      if (r.priority == virt::Priority::kHigh && !r.app_id.empty() && r.app_id != moving_app) ++n;
    }
    for (const Migration& m : migrations_) {
      if (m.dst != h) continue;
      const VmRecord* r = find_record(m.vm_id);
      if (r != nullptr && r->priority == virt::Priority::kHigh && !r->app_id.empty() &&
          r->app_id != moving_app) {
        ++n;
      }
    }
    return n;
  };
  const auto population = [&](const std::string& h) {
    std::size_t n = 0;
    for (const VmRecord& r : registry_) {
      if (r.host == h) ++n;
    }
    for (const Migration& m : migrations_) {
      if (m.dst == h) ++n;
    }
    return n;
  };
  const std::size_t here = conflict(host_name);

  int moved = 0;
  for (const int vm_id : smallest->second) {
    // A VM already on its way out resolves itself; re-migrating it would
    // throw and the collision is already being worked on.
    if (migration_in_flight(vm_id)) continue;
    const Host* src = find_host(host_name);
    const virt::Vm* vm = src == nullptr ? nullptr : src->hypervisor->find(vm_id);
    if (vm == nullptr) {
      throw std::logic_error("registry/hypervisor mismatch: VM " + std::to_string(vm_id) +
                             " is registered on host " + host_name + " but not resident");
    }
    // Destination with the fewest conflicting high-priority VMs (ties by
    // total population, then provisioning order). Only move on strict
    // improvement — otherwise two node managers would ping-pong the VM
    // between equally-bad hosts — and only where the VM actually fits.
    // With a destination scorer installed, the hard filters stay (up,
    // strictly fewer conflicts, capacity) but the pick among survivors is
    // the scorer's: load-aware / complementary ranking from the policy
    // layer instead of the raw (conflict, population) heuristic.
    const Host* best = nullptr;
    std::size_t best_conflict = 0;
    std::size_t best_count = 0;
    double best_score = 0.0;
    for (const Host& h : hosts_) {
      if (h.name == host_name || !h.up) continue;
      const std::size_t c = conflict(h.name);
      if (c >= here) continue;
      if (!host_has_capacity(h, vm->config())) continue;
      if (scorer_ != nullptr) {
        const double s = scorer_->score_destination(vm->config(), host_name, h.name);
        if (best == nullptr || s > best_score) {
          best = &h;
          best_score = s;
        }
        continue;
      }
      const std::size_t count = population(h.name);
      if (best == nullptr || c < best_conflict || (c == best_conflict && count < best_count)) {
        best = &h;
        best_conflict = c;
        best_count = count;
      }
    }
    // No admissible strictly-better host for THIS VM; a sibling with a
    // smaller shape might still fit somewhere, so keep scanning.
    if (best == nullptr) continue;
    migrate_vm(vm_id, best->name);
    ++moved;
  }
  if (moved > 0 && sink_ != nullptr) {
    sink_->emit_event(sink_source_, engine_.now(), "escalation host=" + host_name,
                      static_cast<double>(moved));
    sink_->bump_counter(sink_source_, "escalations");
  }
  return moved;
}

std::vector<VmRecord> CloudManager::vms_on_host(const std::string& host_name) const {
  std::vector<VmRecord> out;
  for (const VmRecord& r : registry_) {
    if (r.host == host_name) out.push_back(r);
  }
  return out;
}

void CloudManager::for_each_vm_on_host(const std::string& host_name,
                                       const std::function<void(const VmRecord&)>& fn) const {
  for (const VmRecord& r : registry_) {
    if (r.host == host_name) fn(r);
  }
}

std::vector<VmRecord> CloudManager::all_vms() const { return registry_; }

std::vector<std::string> CloudManager::hosts_of_app(const std::string& app_id) const {
  std::vector<std::string> out;
  for (const VmRecord& r : registry_) {
    if (r.app_id == app_id && std::find(out.begin(), out.end(), r.host) == out.end()) {
      out.push_back(r.host);
    }
  }
  return out;
}

void CloudManager::start_ticking(double dt) {
  if (tick_dt_ > 0.0) throw std::logic_error("start_ticking called twice");
  if (dt <= 0.0) throw std::invalid_argument("tick dt must be positive");
  tick_dt_ = dt;
  // One engine periodic sweeps every host: a tick is host-local (the
  // hypervisor, its server models, its guests), so the tasks fan out across
  // the shard pool; there is no cross-host phase.
  sim::ShardedPeriodic& sweep = engine_.every_sharded(dt, sim::SimTime(dt));
  for (Host& h : hosts_) {
    virt::Hypervisor* hv = h.hypervisor.get();
    sweep.add_task([hv, dt](sim::SimTime now) { hv->tick(now, dt); });
  }
}

void CloudManager::register_host_pipeline(double period, sim::Engine::PeriodicFn parallel_fn,
                                          sim::Engine::PeriodicFn barrier_fn) {
  if (period <= 0.0) throw std::invalid_argument("pipeline period must be positive");
  if (pipeline_sweep_ == nullptr) {
    pipeline_period_ = period;
    pipeline_sweep_ = &engine_.every_sharded(period, sim::SimTime(period));
    pipeline_sweep_->set_barrier([this](sim::SimTime now) {
      for (const sim::Engine::PeriodicFn& fn : pipeline_barriers_) fn(now);
    });
  } else if (period != pipeline_period_) {
    throw std::invalid_argument("host pipelines must share one period; sweep runs at " +
                                std::to_string(pipeline_period_) + " s");
  }
  if (parallel_fn) pipeline_sweep_->add_task(std::move(parallel_fn));
  if (barrier_fn) pipeline_barriers_.push_back(std::move(barrier_fn));
}

}  // namespace perfcloud::cloud
