#include "cloud/cloud_manager.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <stdexcept>

namespace perfcloud::cloud {

virt::Hypervisor& CloudManager::add_host(hw::ServerConfig cfg) {
  if (find_host(cfg.name) != nullptr) {
    throw std::invalid_argument("duplicate host name " + cfg.name);
  }
  const std::string name = cfg.name;
  auto hv = std::make_unique<virt::Hypervisor>(
      std::move(cfg), engine_.rng().split(std::hash<std::string>{}(name)));
  hosts_.push_back(Host{name, std::move(hv)});
  return *hosts_.back().hypervisor;
}

std::vector<std::string> CloudManager::host_names() const {
  std::vector<std::string> names;
  names.reserve(hosts_.size());
  for (const Host& h : hosts_) names.push_back(h.name);
  return names;
}

const CloudManager::Host* CloudManager::find_host(const std::string& name) const {
  for (const Host& h : hosts_) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

CloudManager::Host* CloudManager::find_host(const std::string& name) {
  for (Host& h : hosts_) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

virt::Hypervisor& CloudManager::host(const std::string& name) {
  const Host* h = find_host(name);
  if (h == nullptr) throw std::invalid_argument("unknown host " + name);
  return *h->hypervisor;
}

virt::Vm& CloudManager::boot_vm(const std::string& host_name, virt::VmConfig cfg) {
  const Host* h = find_host(host_name);
  if (h == nullptr) throw std::invalid_argument("unknown host " + host_name);
  if (!h->up) throw std::invalid_argument("host " + host_name + " is down");
  cfg.id = next_vm_id_++;
  virt::Vm& vm = h->hypervisor->boot(cfg);
  const sim::Interner::Id app =
      vm.app_id().empty() ? sim::Interner::kInvalid : app_interner_.intern(vm.app_id());
  registry_.push_back(VmRecord{vm.id(), vm.name(), host_name, vm.priority(), vm.app_id(), app});
  ++registry_version_;
  return vm;
}

void CloudManager::migrate_vm(int vm_id, const std::string& dst_host) {
  const Host* dst = find_host(dst_host);
  if (dst == nullptr) throw std::invalid_argument("unknown host " + dst_host);
  if (!dst->up) throw std::invalid_argument("host " + dst_host + " is down");
  VmRecord* record = nullptr;
  for (VmRecord& r : registry_) {
    if (r.id == vm_id) {
      record = &r;
      break;
    }
  }
  if (record == nullptr) {
    throw std::invalid_argument("unknown VM id " + std::to_string(vm_id));
  }
  if (record->host == dst_host) return;
  const Host* src = find_host(record->host);
  dst->hypervisor->adopt(src->hypervisor->evict(vm_id));
  record->host = dst_host;
  ++registry_version_;
  if (sink_ != nullptr) {
    sink_->emit_event(sink_source_, engine_.now(),
                      "migrate vm=" + std::to_string(vm_id) + " dst=" + dst_host, 1.0);
    sink_->bump_counter(sink_source_, "migrations");
  }
}

std::vector<virt::VmConfig> CloudManager::crash_host(const std::string& name) {
  Host* h = find_host(name);
  if (h == nullptr) throw std::invalid_argument("unknown host " + name);
  if (!h->up) throw std::invalid_argument("host " + name + " is already down");

  // Victims in registry (= boot) order, so re-placement order is stable.
  std::vector<virt::VmConfig> lost;
  for (const VmRecord& r : registry_) {
    if (r.host != name) continue;
    const virt::Vm* vm = h->hypervisor->find(r.id);
    virt::VmConfig cfg = vm->config();
    cfg.id = r.id;  // preserved so the caller can map old id -> replacement
    lost.push_back(std::move(cfg));
  }
  for (const virt::VmConfig& cfg : lost) {
    // The evicted VM is dropped on the floor: it and its guest die here.
    auto victim = h->hypervisor->evict(cfg.id);
    victim.reset();
  }
  std::erase_if(registry_, [&](const VmRecord& r) { return r.host == name; });
  ++registry_version_;
  h->up = false;

  if (sink_ != nullptr) {
    sink_->emit_event(sink_source_, engine_.now(), "host_crash host=" + name,
                      static_cast<double>(lost.size()));
    sink_->bump_counter(sink_source_, "host_crashes");
  }
  return lost;
}

void CloudManager::restore_host(const std::string& name) {
  Host* h = find_host(name);
  if (h == nullptr) throw std::invalid_argument("unknown host " + name);
  if (h->up) throw std::invalid_argument("host " + name + " is already up");
  h->up = true;
  ++registry_version_;
  if (sink_ != nullptr) {
    sink_->emit_event(sink_source_, engine_.now(), "host_restore host=" + name, 1.0);
    sink_->bump_counter(sink_source_, "host_restores");
  }
}

bool CloudManager::host_up(const std::string& name) const {
  const Host* h = find_host(name);
  if (h == nullptr) throw std::invalid_argument("unknown host " + name);
  return h->up;
}

std::vector<std::string> CloudManager::up_hosts() const {
  std::vector<std::string> names;
  for (const Host& h : hosts_) {
    if (h.up) names.push_back(h.name);
  }
  return names;
}

void CloudManager::set_emit_sink(sim::EmitSink* sink) {
  sink_ = sink;
  if (sink_ != nullptr) sink_source_ = sink_->add_event_source("cloud");
}

int CloudManager::resolve_high_priority_collision(const std::string& host_name) {
  // Group the host's high-priority VMs by application.
  std::map<std::string, std::vector<int>> groups;
  for (const VmRecord& r : vms_on_host(host_name)) {
    if (r.priority == virt::Priority::kHigh && !r.app_id.empty()) {
      groups[r.app_id].push_back(r.id);
    }
  }
  if (groups.size() < 2) return 0;

  // Move the smallest group: fewest VMs to copy, least disruption.
  const auto smallest =
      std::min_element(groups.begin(), groups.end(), [](const auto& a, const auto& b) {
        return a.second.size() < b.second.size();
      });
  const std::string& moving_app = smallest->first;

  // Conflict of a host for this app: high-priority VMs of *other* apps there.
  const auto conflict = [&](const std::string& h) {
    std::size_t n = 0;
    for (const VmRecord& r : vms_on_host(h)) {
      if (r.priority == virt::Priority::kHigh && !r.app_id.empty() && r.app_id != moving_app) ++n;
    }
    return n;
  };
  const std::size_t here = conflict(host_name);

  int moved = 0;
  for (const int vm_id : smallest->second) {
    // Destination with the fewest conflicting high-priority VMs (ties by
    // total population). Only move on strict improvement — otherwise two
    // node managers would ping-pong the VM between equally-bad hosts.
    std::string best_host;
    std::size_t best_conflict = here;
    std::size_t best_count = std::numeric_limits<std::size_t>::max();
    for (const Host& h : hosts_) {
      if (h.name == host_name || !h.up) continue;
      const std::size_t c = conflict(h.name);
      const std::size_t count = vms_on_host(h.name).size();
      if (c < best_conflict || (c == best_conflict && !best_host.empty() && count < best_count)) {
        best_conflict = c;
        best_count = count;
        best_host = h.name;
      }
    }
    if (best_host.empty()) break;  // no strictly better placement exists
    migrate_vm(vm_id, best_host);
    ++moved;
  }
  if (moved > 0 && sink_ != nullptr) {
    sink_->emit_event(sink_source_, engine_.now(), "escalation host=" + host_name,
                      static_cast<double>(moved));
    sink_->bump_counter(sink_source_, "escalations");
  }
  return moved;
}

std::vector<VmRecord> CloudManager::vms_on_host(const std::string& host_name) const {
  std::vector<VmRecord> out;
  for (const VmRecord& r : registry_) {
    if (r.host == host_name) out.push_back(r);
  }
  return out;
}

void CloudManager::for_each_vm_on_host(const std::string& host_name,
                                       const std::function<void(const VmRecord&)>& fn) const {
  for (const VmRecord& r : registry_) {
    if (r.host == host_name) fn(r);
  }
}

std::vector<VmRecord> CloudManager::all_vms() const { return registry_; }

std::vector<std::string> CloudManager::hosts_of_app(const std::string& app_id) const {
  std::vector<std::string> out;
  for (const VmRecord& r : registry_) {
    if (r.app_id == app_id && std::find(out.begin(), out.end(), r.host) == out.end()) {
      out.push_back(r.host);
    }
  }
  return out;
}

void CloudManager::start_ticking(double dt) {
  if (tick_dt_ > 0.0) throw std::logic_error("start_ticking called twice");
  if (dt <= 0.0) throw std::invalid_argument("tick dt must be positive");
  tick_dt_ = dt;
  // One engine periodic sweeps every host: a tick is host-local (the
  // hypervisor, its server models, its guests), so the tasks fan out across
  // the shard pool; there is no cross-host phase.
  sim::ShardedPeriodic& sweep = engine_.every_sharded(dt, sim::SimTime(dt));
  for (Host& h : hosts_) {
    virt::Hypervisor* hv = h.hypervisor.get();
    sweep.add_task([hv, dt](sim::SimTime now) { hv->tick(now, dt); });
  }
}

void CloudManager::register_host_pipeline(double period, sim::Engine::PeriodicFn parallel_fn,
                                          sim::Engine::PeriodicFn barrier_fn) {
  if (period <= 0.0) throw std::invalid_argument("pipeline period must be positive");
  if (pipeline_sweep_ == nullptr) {
    pipeline_period_ = period;
    pipeline_sweep_ = &engine_.every_sharded(period, sim::SimTime(period));
    pipeline_sweep_->set_barrier([this](sim::SimTime now) {
      for (const sim::Engine::PeriodicFn& fn : pipeline_barriers_) fn(now);
    });
  } else if (period != pipeline_period_) {
    throw std::invalid_argument("host pipelines must share one period; sweep runs at " +
                                std::to_string(pipeline_period_) + " s");
  }
  pipeline_sweep_->add_task(std::move(parallel_fn));
  if (barrier_fn) pipeline_barriers_.push_back(std::move(barrier_fn));
}

}  // namespace perfcloud::cloud
