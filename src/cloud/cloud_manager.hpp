// Cloud manager: the OpenStack-Nova-like registry the node managers query.
//
// Owns the physical hosts (hypervisors) and knows, for every VM: its host,
// its priority, and which high-priority application it belongs to. This is
// the information Algorithm 1 fetches each control interval so that node
// managers stay aware of placement changes.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/emit.hpp"
#include "sim/engine.hpp"
#include "sim/interner.hpp"
#include "virt/hypervisor.hpp"

namespace perfcloud::cloud {

/// What the Nova-like API reports about one VM.
struct VmRecord {
  int id = 0;
  std::string name;
  std::string host;
  virt::Priority priority = virt::Priority::kLow;
  std::string app_id;
  /// `app_id` interned through the manager's app interner at boot
  /// (kInvalid when the VM belongs to no application). Node managers key
  /// their per-app hot-path state by this dense id; the string stays for
  /// emission and reporting.
  sim::Interner::Id app = sim::Interner::kInvalid;
};

/// Live-migration cost model (§IV-D escalation made non-free; DESIGN.md
/// §5j). Default-constructed = disabled: migrate_vm is the legacy
/// instantaneous evict→adopt handoff. With a positive bandwidth, migration
/// is a timed two-phase process: a pre-copy of `memory / bandwidth_bps`
/// seconds during which the VM keeps running on the source while the
/// DESTINATION host's disk serves the page stream, then a stop-and-copy
/// pause of `downtime_s` (Vm::set_paused) before the VM switches hosts.
struct MigrationModel {
  double bandwidth_bps = 0.0;  ///< 0 disables the model (instantaneous).
  double downtime_s = 0.5;     ///< Stop-and-copy pause; 0 skips the pause.
  [[nodiscard]] bool enabled() const { return bandwidth_bps > 0.0; }
};

/// Lifecycle notifications for listeners that own per-VM state keyed to a
/// placement (node managers). kDeparting fires on the engine thread while
/// the VM is STILL resident on `src` (so caps can be retired through the
/// source hypervisor); kArrived fires right after adoption on `dst`;
/// kAborted fires when a host crash kills an in-flight migration (the VM is
/// back to normal on `src` if the source survived, dead otherwise).
enum class MigrationPhase { kStarted, kDeparting, kArrived, kAborted };

struct MigrationEvent {
  int vm_id = 0;
  MigrationPhase phase = MigrationPhase::kStarted;
  std::string src;
  std::string dst;
};

/// Pluggable destination ranking for §IV-D escalations. When installed (the
/// policy layer implements this, src/policy/), resolve_high_priority_collision
/// keeps its own hard filters — host up, strictly fewer conflicting
/// high-priority VMs, capacity-feasible — but picks among the surviving
/// candidates by score (higher wins; exact ties fall back to provisioning
/// order) instead of the built-in (conflict, population) tie-break. Called on
/// the engine thread only.
class DestinationScorer {
 public:
  virtual ~DestinationScorer() = default;
  /// Score `dst_host` as a destination for a VM of the given shape currently
  /// on `src_host`. Only invoked for hosts that passed the hard filters.
  [[nodiscard]] virtual double score_destination(const virt::VmConfig& shape,
                                                 const std::string& src_host,
                                                 const std::string& dst_host) = 0;
};

class CloudManager {
 public:
  explicit CloudManager(sim::Engine& engine) : engine_(engine) {}

  CloudManager(const CloudManager&) = delete;
  CloudManager& operator=(const CloudManager&) = delete;

  /// Provision a physical host. Host names must be unique.
  virt::Hypervisor& add_host(hw::ServerConfig cfg);

  [[nodiscard]] std::vector<std::string> host_names() const;
  [[nodiscard]] virt::Hypervisor& host(const std::string& name);
  [[nodiscard]] std::size_t host_count() const { return hosts_.size(); }

  // --- Host failure lifecycle (fault hooks, HostCrash) ---
  /// Kill a host: every resident VM is destroyed (guest state lost), its
  /// registry records are erased, and the host is marked down — it rejects
  /// boots and migrations and is skipped as an escalation destination until
  /// restored. The hypervisor object survives (its arbitration task keeps
  /// ticking an empty server, which is harmless and keeps per-host random
  /// streams untouched). Returns the victims' configs in boot order, each
  /// with `id` still set to the OLD VM id so callers can map old -> new
  /// after re-placement. Throws on unknown or already-down host.
  std::vector<virt::VmConfig> crash_host(const std::string& name);
  /// Bring a crashed host back, empty: it only rejoins placement. Throws on
  /// unknown or already-up host.
  void restore_host(const std::string& name);
  [[nodiscard]] bool host_up(const std::string& name) const;
  /// Names of hosts currently up, in provisioning order.
  [[nodiscard]] std::vector<std::string> up_hosts() const;

  /// Boot a VM on the named host; VM ids are assigned by the manager.
  virt::Vm& boot_vm(const std::string& host_name, virt::VmConfig cfg);

  /// Live-migrate a VM to another host (§IV-D: the cloud manager's
  /// complementary remedy when node managers report problems they cannot
  /// solve locally, e.g. two high-priority applications colocated). The
  /// VM's cgroup counters and guest workload move with it. Throws
  /// std::invalid_argument on unknown VM or host, and on a migration to the
  /// VM's CURRENT host — a self-migration is always a caller bug (it would
  /// otherwise thread a pre-copy, a pause, and the full listener handoff
  /// through state that never changes hosts).
  ///
  /// With the migration model disabled (default) the handoff is
  /// instantaneous. With it enabled, this only STARTS the migration: the
  /// VM keeps running on the source during the pre-copy, pauses for the
  /// stop-and-copy window, and switches hosts (registry update, listeners,
  /// "migrate" event) only when the copy finishes. Throws if the VM is
  /// already migrating.
  void migrate_vm(int vm_id, const std::string& dst_host);

  /// Configure the live-migration cost model. Call during setup; throws if
  /// migrations are currently in flight.
  void set_migration_model(MigrationModel model);
  [[nodiscard]] const MigrationModel& migration_model() const { return migration_model_; }
  [[nodiscard]] bool migration_in_flight(int vm_id) const;
  [[nodiscard]] std::size_t migrations_in_flight() const { return migrations_.size(); }
  // Lifetime counters (instantaneous handoffs count as started+completed).
  [[nodiscard]] long migrations_started() const { return migrations_started_; }
  [[nodiscard]] long migrations_completed() const { return migrations_completed_; }
  [[nodiscard]] long migrations_aborted() const { return migrations_aborted_; }

  /// Subscribe to migration lifecycle events (see MigrationPhase). Called
  /// on the engine thread, in registration order; listeners must outlive
  /// the manager's runs. Node managers use this to hand off / retire their
  /// per-VM state when a VM changes hosts.
  using MigrationListener = std::function<void(const MigrationEvent&)>;
  void add_migration_listener(MigrationListener listener);

  /// Node-manager escalation (§IV-D): called when a host has more than one
  /// high-priority application. The manager moves the smaller application
  /// group's VMs on that host to the least-populated other hosts (or, with a
  /// destination scorer installed, to the best-scored admissible hosts).
  /// Returns the number of VMs moved (0 when there is nowhere to move them
  /// or no collision exists).
  int resolve_high_priority_collision(const std::string& host_name);

  /// Install (nullptr: remove) the pluggable destination ranking used by
  /// resolve_high_priority_collision. The scorer must outlive the manager's
  /// runs; call during setup.
  void set_destination_scorer(DestinationScorer* scorer) { scorer_ = scorer; }

  /// Public face of the migration admission check: would a VM of `shape`
  /// fit on `host` given its residents plus every inbound in-flight
  /// migration? The policy layer shares this exact math so a migration it
  /// decides on can never be rejected by the mechanism. Throws on unknown
  /// host; a down host has no capacity.
  [[nodiscard]] bool has_capacity(const std::string& host, const virt::VmConfig& shape) const;

  // --- Nova-like queries (what the node manager fetches, §III-D.2) ---
  /// Bumped on every registry mutation (boot, migration, crash, restore).
  /// Node managers cache per-host registry summaries against it so the
  /// quiescent fast path skips the linear vms_on_host scan between
  /// placement changes.
  [[nodiscard]] std::uint64_t registry_version() const { return registry_version_; }
  [[nodiscard]] std::vector<VmRecord> vms_on_host(const std::string& host_name) const;
  /// Visit this host's records in registry (boot) order without building a
  /// vector of string copies — what the node managers' registry-view cache
  /// rebuild uses.
  void for_each_vm_on_host(const std::string& host_name,
                           const std::function<void(const VmRecord&)>& fn) const;
  /// The application-id interner shared by every node manager on this
  /// cloud. Mutable access because sinks may be attached (and their app
  /// names interned) before any VM of the app has booted.
  [[nodiscard]] sim::Interner& app_interner() { return app_interner_; }
  [[nodiscard]] const sim::Interner& app_interner() const { return app_interner_; }
  /// All registered VMs across the cloud.
  [[nodiscard]] std::vector<VmRecord> all_vms() const;
  /// Hosts that currently run at least one VM of the given application.
  [[nodiscard]] std::vector<std::string> hosts_of_app(const std::string& app_id) const;

  /// Register the arbitration ticks of all hosts with the engine as ONE
  /// sharded periodic (a host-shard sweep, not one periodic per hypervisor):
  /// every `dt` the engine runs each host's tick across its shard pool and
  /// barriers before anything else fires. Call once, after all hosts exist
  /// and before running.
  void start_ticking(double dt);

  /// Host-shard registry for per-host control pipelines (the node managers).
  /// All registrations share ONE batched engine periodic of this `period`
  /// (every call must pass the same value), created at the first call:
  /// each firing runs every `parallel_fn` across the engine's shard pool —
  /// `parallel_fn` must be thread-confined to its host — then, after the
  /// barrier, every non-null `barrier_fn` sequentially in registration
  /// order. Cross-host work (migration, escalation, the policy tick) belongs
  /// in barrier_fn; a registration may pass a null `parallel_fn` to hook the
  /// barrier phase only (the migration policy does — it has no per-host
  /// parallel half).
  void register_host_pipeline(double period, sim::Engine::PeriodicFn parallel_fn,
                              sim::Engine::PeriodicFn barrier_fn = nullptr);

  [[nodiscard]] sim::Engine& engine() { return engine_; }
  [[nodiscard]] double tick_dt() const { return tick_dt_; }

  /// Report cloud-level placement activity (VM migrations, escalation
  /// resolutions) through `sink` as events under one "cloud" source. These
  /// emissions happen on the engine thread (setup or the post-barrier
  /// escalation phase), never inside a shard task. Call during setup;
  /// nullptr detaches.
  void set_emit_sink(sim::EmitSink* sink);

 private:
  struct Host {
    std::string name;
    std::unique_ptr<virt::Hypervisor> hypervisor;
    bool up = true;
  };

  /// One in-flight live migration: the pre-copy/pause/finish events plus
  /// what finish/abort need to restore (whether WE paused the VM).
  struct Migration {
    int vm_id = 0;
    std::string src;
    std::string dst;
    sim::EventHandle pause_event;
    sim::EventHandle finish_event;
    bool paused = false;            ///< Stop-and-copy pause currently applied.
    bool resume_on_finish = true;   ///< False when a fault had it paused already.
  };

  [[nodiscard]] const Host* find_host(const std::string& name) const;
  [[nodiscard]] Host* find_host(const std::string& name);
  [[nodiscard]] VmRecord* find_record(int vm_id);
  [[nodiscard]] const VmRecord* find_record(int vm_id) const;
  [[nodiscard]] Migration* find_migration(int vm_id);

  /// Admission check for migration destinations: resident vCPUs + memory,
  /// plus every inbound in-flight migration, plus `shape`, must fit the
  /// host's cores and DRAM.
  [[nodiscard]] bool host_has_capacity(const Host& h, const virt::VmConfig& shape) const;

  void notify_migration(int vm_id, MigrationPhase phase, const std::string& src,
                        const std::string& dst);
  /// The actual host switch, shared by the instantaneous path and
  /// finish_migration: kDeparting notification (VM still on src), evict →
  /// adopt, registry update, kArrived notification, "migrate" emission.
  void complete_handoff(VmRecord& record, Host& src, Host& dst);
  void start_live_migration(VmRecord& record, Host& src, Host& dst);
  void pause_for_migration(int vm_id);
  void finish_migration(int vm_id);
  /// Kill every in-flight migration touching `host` (it is about to crash):
  /// cancel the pending events, end the destination inflow, unpause the VM
  /// if the source survives and we paused it, notify kAborted.
  void abort_migrations_touching(const std::string& host);

  sim::Engine& engine_;
  sim::Interner app_interner_;
  DestinationScorer* scorer_ = nullptr;
  sim::EmitSink* sink_ = nullptr;
  sim::EmitSink::SourceId sink_source_ = 0;
  std::vector<Host> hosts_;
  std::vector<VmRecord> registry_;
  std::uint64_t registry_version_ = 1;
  MigrationModel migration_model_;
  std::vector<Migration> migrations_;
  std::vector<MigrationListener> migration_listeners_;
  long migrations_started_ = 0;
  long migrations_completed_ = 0;
  long migrations_aborted_ = 0;
  int next_vm_id_ = 1;
  double tick_dt_ = 0.0;
  sim::ShardedPeriodic* pipeline_sweep_ = nullptr;
  double pipeline_period_ = 0.0;
  std::vector<sim::Engine::PeriodicFn> pipeline_barriers_;
};

}  // namespace perfcloud::cloud
