#include "cloud/placement.hpp"

#include <stdexcept>

namespace perfcloud::cloud {

std::vector<int> place_spread(CloudManager& cloud, const std::vector<std::string>& hosts,
                              int count, virt::VmConfig shape, const std::string& app_id) {
  if (hosts.empty()) throw std::invalid_argument("place_spread: no hosts");
  std::vector<int> ids;
  ids.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    virt::VmConfig cfg = shape;
    cfg.app_id = app_id;
    cfg.name = app_id + "-" + std::to_string(i);
    const virt::Vm& vm = cloud.boot_vm(hosts[static_cast<std::size_t>(i) % hosts.size()], cfg);
    ids.push_back(vm.id());
  }
  return ids;
}

std::vector<int> place_random(CloudManager& cloud, const std::vector<std::string>& hosts,
                              int count, virt::VmConfig shape, const std::string& name_prefix,
                              sim::Rng& rng) {
  if (hosts.empty()) throw std::invalid_argument("place_random: no hosts");
  std::vector<int> ids;
  ids.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    virt::VmConfig cfg = shape;
    cfg.name = name_prefix + "-" + std::to_string(i);
    const auto idx =
        static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(hosts.size()) - 1));
    const virt::Vm& vm = cloud.boot_vm(hosts[idx], cfg);
    ids.push_back(vm.id());
  }
  return ids;
}

std::vector<int> place_packed(CloudManager& cloud, const std::vector<std::string>& hosts,
                              int count, int per_host, virt::VmConfig shape,
                              const std::string& app_id) {
  if (hosts.empty()) throw std::invalid_argument("place_packed: no hosts");
  if (per_host <= 0) throw std::invalid_argument("place_packed: per_host must be positive");
  if (count > per_host * static_cast<int>(hosts.size())) {
    throw std::invalid_argument("place_packed: not enough host capacity");
  }
  std::vector<int> ids;
  ids.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    virt::VmConfig cfg = shape;
    cfg.app_id = app_id;
    cfg.name = app_id + "-" + std::to_string(i);
    const virt::Vm& vm = cloud.boot_vm(hosts[static_cast<std::size_t>(i / per_host)], cfg);
    ids.push_back(vm.id());
  }
  return ids;
}

std::vector<Replacement> place_replacements(CloudManager& cloud,
                                            const std::vector<virt::VmConfig>& lost,
                                            bool packed) {
  std::vector<Replacement> out;
  if (lost.empty()) return out;
  const std::vector<std::string> hosts = cloud.up_hosts();
  if (hosts.empty()) throw std::runtime_error("place_replacements: no surviving hosts");
  out.reserve(lost.size());
  for (const virt::VmConfig& victim : lost) {
    std::string dst = hosts.front();
    if (!packed) {
      std::size_t best = cloud.vms_on_host(dst).size();
      for (std::size_t i = 1; i < hosts.size(); ++i) {
        const std::size_t n = cloud.vms_on_host(hosts[i]).size();
        if (n < best) {
          best = n;
          dst = hosts[i];
        }
      }
    }
    virt::VmConfig cfg = victim;  // boot_vm assigns the fresh id
    const virt::Vm& vm = cloud.boot_vm(dst, cfg);
    out.push_back(Replacement{victim.id, vm.id(), dst});
  }
  return out;
}

}  // namespace perfcloud::cloud
