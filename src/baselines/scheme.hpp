// Enumeration of the isolation/mitigation schemes compared in the paper's
// evaluation, plus helpers shared by the experiment harness.
#pragma once

#include <string>

namespace perfcloud::base {

enum class Scheme {
  kDefault,    ///< No mitigation at all.
  kStatic,     ///< Operator-set fixed 20 % caps on known antagonists.
  kLate,       ///< LATE speculative execution.
  kDolly2,     ///< Dolly with 2 clones.
  kDolly4,
  kDolly6,
  kPerfCloud,  ///< This paper.
};

[[nodiscard]] inline std::string to_string(Scheme s) {
  switch (s) {
    case Scheme::kDefault: return "default";
    case Scheme::kStatic: return "static-cap";
    case Scheme::kLate: return "LATE";
    case Scheme::kDolly2: return "Dolly-2";
    case Scheme::kDolly4: return "Dolly-4";
    case Scheme::kDolly6: return "Dolly-6";
    case Scheme::kPerfCloud: return "PerfCloud";
  }
  return "?";
}

[[nodiscard]] inline int dolly_clones(Scheme s) {
  switch (s) {
    case Scheme::kDolly2: return 2;
    case Scheme::kDolly4: return 4;
    case Scheme::kDolly6: return 6;
    default: return 1;
  }
}

}  // namespace perfcloud::base
