#include "baselines/late.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "sim/stats.hpp"

namespace perfcloud::base {

std::vector<wl::TaskRef> LateSpeculator::pick(const std::vector<const wl::Job*>& running_jobs,
                                              sim::SimTime now, int free_slots) {
  struct Candidate {
    wl::TaskRef ref;
    double est_time_left = 0.0;
    double rate = 0.0;
  };

  std::vector<Candidate> candidates;
  std::vector<double> rates;  // of all mature running attempts, for the threshold
  int speculating = 0;

  for (const wl::Job* job : running_jobs) {
    if (job->current_stage() >= job->stage_count()) continue;
    const auto& tasks = job->stage(job->current_stage());
    for (std::size_t ti = 0; ti < tasks.size(); ++ti) {
      const wl::TaskState& t = tasks[ti];
      if (t.completed) continue;
      bool has_copy = false;
      const wl::AttemptRecord* original = nullptr;
      for (const wl::AttemptRecord& a : t.attempts) {
        if (!a.running) continue;
        if (a.speculative) {
          has_copy = true;
          ++speculating;
        } else {
          original = &a;
        }
      }
      if (original == nullptr) continue;
      const double age = now - original->start;
      if (age < p_.min_runtime_s) continue;
      const double rate = original->attempt->progress_rate(now);
      rates.push_back(rate);
      if (has_copy) continue;
      // A mature attempt with zero progress rate is the clearest straggler
      // there is (completely stalled), not a non-candidate: its estimated
      // time-to-finish is unbounded, so it sorts ahead of every task that
      // still crawls forward.
      const double est_time_left = rate > 0.0
                                       ? (1.0 - original->attempt->progress()) / rate
                                       : std::numeric_limits<double>::infinity();
      candidates.push_back(Candidate{
          wl::TaskRef{job->id(), job->current_stage(), ti},
          est_time_left,
          rate,
      });
    }
  }
  if (candidates.empty() || rates.empty()) return {};

  // SlowTaskThreshold: only tasks below the p-th percentile progress rate.
  const double slow_threshold = sim::percentile_of(rates, p_.slow_task_percentile);
  std::erase_if(candidates, [&](const Candidate& c) { return c.rate > slow_threshold; });

  // SpeculativeCap: bound concurrent speculative attempts cluster-wide.
  const int cap = static_cast<int>(std::floor(p_.speculative_cap * total_slots_));
  int budget = std::min(free_slots, std::max(0, cap - speculating));
  if (budget <= 0) return {};

  // Longest estimated time-to-finish first; stable so ties (several stalled
  // tasks, all at +inf) keep job/task discovery order — deterministic picks.
  std::stable_sort(
      candidates.begin(), candidates.end(),
      [](const Candidate& a, const Candidate& b) { return a.est_time_left > b.est_time_left; });

  std::vector<wl::TaskRef> picks;
  for (const Candidate& c : candidates) {
    if (budget-- <= 0) break;
    picks.push_back(c.ref);
  }
  return picks;
}

}  // namespace perfcloud::base
