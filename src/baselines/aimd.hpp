// AIMD cap controller — ablation baseline for PerfCloud's CUBIC choice.
//
// Classic TCP-Reno-style control: additive increase of the cap while the
// deviation signal is quiet, multiplicative decrease when it exceeds the
// threshold. The paper argues CUBIC's plateau gives better stability around
// the last known-bad operating point; `bench/ablation_controller` measures
// the difference.
#pragma once

#include "core/config.hpp"

namespace perfcloud::base {

class AimdController {
 public:
  struct Params {
    double beta = 0.8;            ///< Decrease: C <- (1 - beta) C (as in Eq. 1).
    double alpha = 0.08;          ///< Additive increase per interval (x baseline).
    double min_cap_fraction = 0.05;
    double cap_lift_fraction = 3.0;
  };

  AimdController(Params p, double baseline) : p_(p), baseline_(baseline) {}

  double step(bool contended) {
    if (contended) {
      cap_ = std::max((1.0 - p_.beta) * cap_, p_.min_cap_fraction);
    } else {
      cap_ += p_.alpha;
    }
    return cap_;
  }

  [[nodiscard]] double cap() const { return cap_; }
  [[nodiscard]] double cap_absolute() const { return cap_ * baseline_; }
  [[nodiscard]] bool lifted() const { return cap_ >= p_.cap_lift_fraction; }

 private:
  Params p_;
  double baseline_;
  double cap_ = 1.0;
};

}  // namespace perfcloud::base
