// Dolly job-level cloning (Ananthanarayanan et al., NSDI 2013) — the
// paper's second comparison baseline (§IV-C).
//
// Dolly avoids waiting and speculation altogether: each job is submitted as
// n full clones; the first clone to complete supplies the result and the
// others are killed. The paper uses Dolly's job-level cloning (not the
// finer-grained task-level variant) with n in {2, 4, 6}.
#pragma once

#include <vector>

#include "workloads/framework.hpp"

namespace perfcloud::base {

class DollySubmitter {
 public:
  DollySubmitter(wl::ScaleOutFramework& framework, int clones)
      : framework_(framework), clones_(clones) {}

  /// Submit `spec` as a clone group; returns the ids of all clones (the
  /// framework kills the losers automatically when the first completes).
  std::vector<wl::JobId> submit(const wl::JobSpec& spec) {
    return framework_.submit_cloned(spec, clones_);
  }

  [[nodiscard]] int clones() const { return clones_; }

 private:
  wl::ScaleOutFramework& framework_;
  int clones_;
};

}  // namespace perfcloud::base
