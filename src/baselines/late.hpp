// LATE speculative scheduler (Zaharia et al., OSDI 2008) — the paper's first
// comparison baseline (§IV-C).
//
// LATE estimates each running task's time-to-finish from its progress rate
// and speculatively re-executes the ones expected to finish farthest in the
// future, provided their progress rate is below the SlowTaskThreshold
// percentile, limited by a speculative-slot cap.
#pragma once

#include "workloads/framework.hpp"

namespace perfcloud::base {

class LateSpeculator : public wl::Speculator {
 public:
  struct Params {
    double speculative_cap = 0.10;  ///< Max fraction of cluster slots on copies.
    double slow_task_percentile = 0.25;
    double min_runtime_s = 10.0;    ///< Don't judge tasks younger than this.
  };

  LateSpeculator(Params p, int total_slots) : p_(p), total_slots_(total_slots) {}

  [[nodiscard]] std::vector<wl::TaskRef> pick(const std::vector<const wl::Job*>& running_jobs,
                                              sim::SimTime now, int free_slots) override;

 private:
  Params p_;
  int total_slots_;
};

}  // namespace perfcloud::base
