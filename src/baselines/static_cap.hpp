// Static resource-capping baseline (§IV-B, Fig 9c): a fixed 20 % I/O cap on
// the fio VM and a fixed 20 % CPU cap on the STREAM VM, applied up front by
// an operator who already knows who the antagonists are. It matches
// PerfCloud's isolation quality but permanently starves the antagonists —
// the contrast the paper draws in Fig 9/10.
#pragma once

#include "cloud/cloud_manager.hpp"

namespace perfcloud::base {

struct StaticCap {
  int vm_id = 0;
  /// Absolute caps; use hw::kNoCap to leave a dimension unrestricted.
  double io_bytes_per_sec = hw::kNoCap;
  double cpu_cores = hw::kNoCap;
};

/// Apply fixed caps immediately and leave them in place forever.
inline void apply_static_caps(cloud::CloudManager& cloud, const std::string& host,
                              const std::vector<StaticCap>& caps) {
  virt::Hypervisor& hv = cloud.host(host);
  for (const StaticCap& c : caps) {
    if (c.io_bytes_per_sec != hw::kNoCap) hv.set_blkio_throttle(c.vm_id, c.io_bytes_per_sec);
    if (c.cpu_cores != hw::kNoCap) hv.set_vcpu_quota(c.vm_id, c.cpu_cores);
  }
}

}  // namespace perfcloud::base
