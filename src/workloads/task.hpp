// Task model for scale-out data-processing frameworks.
//
// A task runs phases sequentially (read -> compute -> write); each phase
// carries an instruction budget and an I/O budget that must both complete.
// This reproduces the structure PerfCloud's detector relies on: evenly-sized
// tasks whose I/O and CPU behaviour should look alike across worker VMs
// unless something on the host interferes.
#pragma once

#include <string>
#include <vector>

#include "hw/tenant.hpp"
#include "sim/types.hpp"

namespace perfcloud::wl {

enum class PhaseKind { kRead, kCompute, kWrite };

struct PhaseSpec {
  PhaseKind kind = PhaseKind::kCompute;
  double instructions = 0.0;
  double io_ops = 0.0;
  sim::Bytes io_bytes = 0.0;
};

/// Memory-subsystem signature of a task while it runs.
struct MemoryProfile {
  sim::Bytes llc_footprint = 6.0 * 1024 * 1024;
  double bw_per_cpu_sec = 0.6e9;
  double cpi_base = 1.0;
  double mem_sensitivity = 1.0;
};

struct TaskSpec {
  std::vector<PhaseSpec> phases;
  MemoryProfile mem;
  sim::Bytes io_request_bytes = 512.0 * 1024;  ///< Request granularity.
  /// Per-task issue limit, bytes/s — a data-processing task is a shallow-
  /// queue synchronous reader whose parse/deserialize path bounds how fast
  /// it can consume input.
  double max_io_rate = 40.0e6;
};

/// For progress accounting, one byte of I/O counts as this many
/// instructions. Any consistent weighting works; LATE only compares
/// progress *rates* between peer tasks.
constexpr double kInstrPerIoByte = 25.0;

[[nodiscard]] double total_work(const TaskSpec& spec);

/// One execution attempt of one task on one worker slot. Multiple attempts
/// of the same task exist under speculative execution; the first to finish
/// wins.
class TaskAttempt {
 public:
  TaskAttempt(TaskSpec spec, sim::SimTime started);

  /// Resource demand if this attempt ran alone on one core for `dt`.
  [[nodiscard]] hw::TenantDemand demand(double dt) const;

  /// Consume granted work. The worker splits its aggregate grant across its
  /// attempts; `instructions` and `io_bytes`/`io_ops` are this attempt's
  /// portion.
  void advance(double instructions, double io_ops, sim::Bytes io_bytes);

  [[nodiscard]] bool done() const { return phase_ >= spec_.phases.size(); }
  /// Fraction of total work completed, in [0, 1].
  [[nodiscard]] double progress() const;
  /// Work completed per second since start; 0 before any time has passed.
  [[nodiscard]] double progress_rate(sim::SimTime now) const;
  [[nodiscard]] sim::SimTime started() const { return started_; }
  [[nodiscard]] const TaskSpec& spec() const { return spec_; }

 private:
  TaskSpec spec_;
  sim::SimTime started_;
  std::size_t phase_ = 0;
  double phase_instr_done_ = 0.0;
  double phase_ops_done_ = 0.0;
  sim::Bytes phase_bytes_done_ = 0.0;
  double work_done_ = 0.0;
  double work_total_ = 0.0;

  void maybe_advance_phase();
};

}  // namespace perfcloud::wl
