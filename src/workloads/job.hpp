// Job model: a barrier-synchronized sequence of task stages.
//
// MapReduce jobs have two stages (map, reduce); Spark jobs have one stage
// per computation stage (input scan plus iterations). A stage starts only
// when the previous stage has fully completed, which is where stragglers
// hurt: one slow task holds the barrier for the whole job.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sim/rng.hpp"
#include "sim/types.hpp"
#include "workloads/task.hpp"

namespace perfcloud::wl {

using JobId = int;

enum class JobType { kMapReduce, kSpark };

struct StageSpec {
  std::string name;
  int num_tasks = 1;
  TaskSpec task;  ///< Template; per-task work gets small lognormal jitter.
};

struct JobSpec {
  std::string name;
  JobType type = JobType::kMapReduce;
  std::vector<StageSpec> stages;
  /// Lognormal sigma applied to each task instance's work amounts —
  /// real task sizes vary slightly even on an idle cluster.
  double task_jitter_sigma = 0.08;
  /// Data skew: when > 0, each task's work is additionally multiplied by a
  /// bounded-Pareto draw from [1, skew_max] with this tail index. Real
  /// inputs (the paper uses Wikipedia text) are skewed, and data-skew
  /// stragglers are the kind speculative re-execution CANNOT fix — the
  /// copy processes the same oversized partition.
  double skew_alpha = 0.0;
  double skew_max = 8.0;
};

/// One placement of one task attempt (original or speculative copy).
struct AttemptRecord {
  std::unique_ptr<TaskAttempt> attempt;
  int worker_index = -1;  ///< Index into the framework's worker list.
  sim::SimTime start{};
  sim::SimTime end{};
  bool running = false;
  bool finished_ok = false;  ///< This attempt won the task.
  bool killed = false;       ///< Lost to a sibling, or the job was killed.
  bool speculative = false;
};

struct TaskState {
  TaskSpec spec;  ///< Jittered instance of the stage's template.
  std::vector<AttemptRecord> attempts;
  bool completed = false;
  sim::SimTime completed_at{};

  [[nodiscard]] int running_attempts() const;
  [[nodiscard]] bool schedulable() const { return !completed && running_attempts() == 0; }
};

class Job {
 public:
  Job(JobId id, JobSpec spec, sim::SimTime submitted, sim::Rng& rng);

  [[nodiscard]] JobId id() const { return id_; }
  [[nodiscard]] const JobSpec& spec() const { return spec_; }
  [[nodiscard]] sim::SimTime submitted() const { return submitted_; }
  [[nodiscard]] std::size_t current_stage() const { return current_stage_; }
  [[nodiscard]] std::size_t stage_count() const { return stages_.size(); }
  [[nodiscard]] std::vector<TaskState>& stage(std::size_t s) { return stages_.at(s); }
  [[nodiscard]] const std::vector<TaskState>& stage(std::size_t s) const { return stages_.at(s); }

  [[nodiscard]] bool completed() const { return completed_; }
  [[nodiscard]] bool killed() const { return killed_; }
  [[nodiscard]] bool finished() const { return completed_ || killed_; }
  [[nodiscard]] sim::SimTime finish_time() const { return finish_time_; }
  /// Job completion time; only meaningful once completed().
  [[nodiscard]] double jct() const { return finish_time_ - submitted_; }

  /// Advance the stage barrier: if every task of the current stage is done,
  /// move to the next stage; if it was the last, mark the job completed.
  void advance_barrier(sim::SimTime now);
  void mark_killed(sim::SimTime now);

  /// Dolly bookkeeping: jobs submitted as clones of the same logical job
  /// share a clone group; -1 means not cloned.
  int clone_group = -1;

 private:
  JobId id_;
  JobSpec spec_;
  sim::SimTime submitted_;
  std::vector<std::vector<TaskState>> stages_;
  std::size_t current_stage_ = 0;
  bool completed_ = false;
  bool killed_ = false;
  sim::SimTime finish_time_{};
};

}  // namespace perfcloud::wl
