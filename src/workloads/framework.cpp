#include "workloads/framework.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace perfcloud::wl {

ScaleOutFramework::ScaleOutFramework(sim::Engine& engine, std::string app_id)
    : engine_(engine), app_id_(std::move(app_id)), rng_(engine.rng().split(0xf4a)) {}

ScaleOutWorker& ScaleOutFramework::add_worker(virt::Vm& vm, std::string host_name) {
  auto worker = std::make_unique<ScaleOutWorker>(vm.vcpus());
  ScaleOutWorker* raw = worker.get();
  vm.attach(std::move(worker));
  workers_.push_back(WorkerRef{&vm, raw, std::move(host_name), vm.id()});
  return *raw;
}

void ScaleOutFramework::on_worker_vms_lost(const std::vector<int>& vm_ids, sim::SimTime now) {
  for (WorkerRef& w : workers_) {
    if (w.dead() || std::find(vm_ids.begin(), vm_ids.end(), w.vm_id) == vm_ids.end()) continue;
    const auto widx = static_cast<int>(&w - workers_.data());
    // Kill the attempts while the old worker object is still alive; the
    // tasks become schedulable again and re-run elsewhere.
    for (const auto& j : jobs_) {
      if (j->finished()) continue;
      for (std::size_t s = 0; s < j->stage_count(); ++s) {
        for (TaskState& t : j->stage(s)) {
          for (AttemptRecord& a : t.attempts) {
            if (a.running && a.worker_index == widx) {
              kill_attempt(a, now);
              ++crash_lost_attempts_;
            }
          }
        }
      }
    }
    w.vm = nullptr;
    w.worker = nullptr;
  }
}

bool ScaleOutFramework::has_worker_vm(int vm_id) const {
  return std::any_of(workers_.begin(), workers_.end(),
                     [vm_id](const WorkerRef& w) { return w.vm_id == vm_id; });
}

ScaleOutWorker& ScaleOutFramework::rebind_worker(int old_vm_id, virt::Vm& vm,
                                                 std::string host_name) {
  for (WorkerRef& w : workers_) {
    if (w.vm_id != old_vm_id) continue;
    if (!w.dead()) {
      throw std::logic_error("rebind_worker: worker vm " + std::to_string(old_vm_id) +
                             " is still alive");
    }
    auto worker = std::make_unique<ScaleOutWorker>(vm.vcpus());
    ScaleOutWorker* raw = worker.get();
    vm.attach(std::move(worker));
    w.vm = &vm;
    w.worker = raw;
    w.host = std::move(host_name);
    w.vm_id = vm.id();
    return *raw;
  }
  throw std::invalid_argument("rebind_worker: no worker had vm id " + std::to_string(old_vm_id));
}

void ScaleOutFramework::start(double period) {
  if (started_) throw std::logic_error("framework already started");
  started_ = true;
  poll_period_ = period;
  engine_.every(period, [this](sim::SimTime now) { poll(now); });
}

JobId ScaleOutFramework::submit(const JobSpec& spec) {
  const JobId id = next_job_id_++;
  jobs_.push_back(std::make_unique<Job>(id, spec, engine_.now(), rng_));
  return id;
}

std::vector<JobId> ScaleOutFramework::submit_cloned(const JobSpec& spec, int clones) {
  assert(clones >= 1);
  const int group = next_clone_group_++;
  std::vector<JobId> ids;
  ids.reserve(static_cast<std::size_t>(clones));
  for (int c = 0; c < clones; ++c) {
    const JobId id = submit(spec);
    jobs_.back()->clone_group = group;
    ids.push_back(id);
  }
  return ids;
}

Job* ScaleOutFramework::find_job(JobId id) {
  for (const auto& j : jobs_) {
    if (j->id() == id) return j.get();
  }
  return nullptr;
}

const Job* ScaleOutFramework::find_job(JobId id) const {
  return const_cast<ScaleOutFramework*>(this)->find_job(id);
}

void ScaleOutFramework::kill_job(JobId id) {
  Job* job = find_job(id);
  if (job == nullptr || job->finished()) return;
  const sim::SimTime now = engine_.now();
  for (std::size_t s = 0; s < job->stage_count(); ++s) {
    for (TaskState& t : job->stage(s)) {
      for (AttemptRecord& a : t.attempts) {
        if (a.running) kill_attempt(a, now);
      }
    }
  }
  job->mark_killed(now);
}

bool ScaleOutFramework::all_done() const {
  return std::all_of(jobs_.begin(), jobs_.end(),
                     [](const auto& j) { return j->finished(); });
}

double ScaleOutFramework::group_jct(int clone_group) const {
  double best = -1.0;
  for (const auto& j : jobs_) {
    if (j->clone_group == clone_group && j->completed()) {
      const double jct = j->jct();
      if (best < 0.0 || jct < best) best = jct;
    }
  }
  return best;
}

double ScaleOutFramework::utilization_efficiency() const {
  double useful = 0.0;
  double total = 0.0;
  const sim::SimTime now = engine_.now();
  for (const auto& j : jobs_) {
    for (std::size_t s = 0; s < j->stage_count(); ++s) {
      for (const TaskState& t : j->stage(s)) {
        for (const AttemptRecord& a : t.attempts) {
          const sim::SimTime end = a.running ? now : a.end;
          const double dur = end - a.start;
          total += dur;
          if (a.finished_ok) useful += dur;
        }
      }
    }
  }
  return total > 0.0 ? useful / total : 1.0;
}

void ScaleOutFramework::poll(sim::SimTime now) {
  inject_failures(now);
  reap(now);
  settle_clone_groups(now);
  schedule(now);
  speculate(now);
}

void ScaleOutFramework::inject_failures(sim::SimTime now) {
  if (failure_rate_ <= 0.0) return;
  const double p_fail = 1.0 - std::exp(-failure_rate_ * poll_period_);
  for (const auto& j : jobs_) {
    if (j->finished()) continue;
    for (std::size_t s = 0; s < j->stage_count(); ++s) {
      for (TaskState& t : j->stage(s)) {
        for (AttemptRecord& a : t.attempts) {
          if (a.running && rng_.bernoulli(p_fail)) {
            kill_attempt(a, now);
            ++failed_attempts_;
          }
        }
      }
    }
  }
}

void ScaleOutFramework::kill_attempt(AttemptRecord& rec, sim::SimTime now) {
  assert(rec.running);
  workers_[static_cast<std::size_t>(rec.worker_index)].worker->remove(rec.attempt.get());
  rec.running = false;
  rec.killed = true;
  rec.end = now;
}

void ScaleOutFramework::reap(sim::SimTime now) {
  for (const auto& j : jobs_) {
    if (j->finished()) continue;
    bool progressed = false;
    for (std::size_t s = 0; s < j->stage_count(); ++s) {
      for (TaskState& t : j->stage(s)) {
        if (t.completed) continue;
        // Find a finished attempt (the winner); kill the losers.
        for (AttemptRecord& a : t.attempts) {
          if (a.running && a.attempt->done()) {
            a.running = false;
            a.finished_ok = true;
            a.end = now;
            workers_[static_cast<std::size_t>(a.worker_index)].worker->remove(a.attempt.get());
            t.completed = true;
            t.completed_at = now;
            progressed = true;
            break;
          }
        }
        if (t.completed) {
          for (AttemptRecord& a : t.attempts) {
            if (a.running) kill_attempt(a, now);
          }
        }
      }
    }
    if (progressed) {
      j->advance_barrier(now);
      // Dolly: the instant a clone completes it wins its group — kill the
      // sibling clones before they get a chance to be reaped this round.
      if (j->completed() && j->clone_group >= 0) settle_clone_groups(now);
    }
  }
}

void ScaleOutFramework::settle_clone_groups(sim::SimTime now) {
  (void)now;  // kill_job stamps engine time, which equals `now` during polls
  for (const auto& j : jobs_) {
    if (j->clone_group < 0 || !j->completed()) continue;
    for (const auto& other : jobs_) {
      if (other.get() != j.get() && other->clone_group == j->clone_group && !other->finished()) {
        kill_job(other->id());
      }
    }
  }
}

int ScaleOutFramework::total_free_slots() const {
  int n = 0;
  for (const WorkerRef& w : workers_) {
    if (!w.dead()) n += w.worker->free_slots();
  }
  return n;
}

int ScaleOutFramework::pick_least_loaded_worker() const {
  // Scan from a rotating cursor so ties between equally-free workers spread
  // placements across the cluster instead of piling onto the first worker —
  // real schedulers randomize over data-local candidates, and Dolly's whole
  // benefit depends on clones landing on different machines.
  int best = -1;
  int best_free = 0;
  const std::size_t n = workers_.size();
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t i = (placement_cursor_ + k) % n;
    if (workers_[i].dead()) continue;
    const int f = workers_[i].worker->free_slots();
    if (f > best_free) {
      best_free = f;
      best = static_cast<int>(i);
    }
  }
  if (best >= 0) placement_cursor_ = (static_cast<std::size_t>(best) + 1) % n;
  return best;
}

void ScaleOutFramework::launch_attempt(Job& job, std::size_t stage, std::size_t task,
                                       bool speculative, sim::SimTime now) {
  const int widx = pick_least_loaded_worker();
  if (widx < 0) return;
  TaskState& t = job.stage(stage)[task];

  TaskSpec spec = t.spec;
  if (shared_memory_shuffle_ && stage > 0 && workers_.size() > 1) {
    // Shuffle inputs (stage > 0 reads) from colocated peers arrive via
    // shared memory; only the remote fraction touches the disk. With map
    // outputs spread evenly over the workers, the local fraction is the
    // share of peers on this worker's host.
    const std::string& host = workers_[static_cast<std::size_t>(widx)].host;
    if (!host.empty()) {
      std::size_t colocated = 0;
      for (const WorkerRef& w : workers_) {
        if (!w.dead() && w.host == host) ++colocated;
      }
      const double local = static_cast<double>(colocated - 1) /
                           static_cast<double>(workers_.size() - 1);
      for (PhaseSpec& p : spec.phases) {
        if (p.kind == PhaseKind::kRead) {
          p.io_bytes *= 1.0 - local;
          p.io_ops *= 1.0 - local;
        }
      }
    }
  }

  AttemptRecord rec;
  rec.attempt = std::make_unique<TaskAttempt>(std::move(spec), now);
  rec.worker_index = widx;
  rec.start = now;
  rec.running = true;
  rec.speculative = speculative;
  workers_[static_cast<std::size_t>(widx)].worker->place(rec.attempt.get());
  t.attempts.push_back(std::move(rec));
}

void ScaleOutFramework::schedule(sim::SimTime now) {
  // FIFO across jobs (by submission order), tasks in index order, placed on
  // the least-loaded worker for the even spread scale-out schedulers aim at.
  for (const auto& j : jobs_) {
    if (j->finished() || j->current_stage() >= j->stage_count()) continue;
    auto& tasks = j->stage(j->current_stage());
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      if (!tasks[i].schedulable()) continue;
      if (total_free_slots() <= 0) return;
      launch_attempt(*j, j->current_stage(), i, /*speculative=*/false, now);
    }
  }
}

void ScaleOutFramework::speculate(sim::SimTime now) {
  if (!speculator_) return;
  const int free = total_free_slots();
  if (free <= 0) return;
  std::vector<const Job*> running;
  for (const auto& j : jobs_) {
    if (!j->finished()) running.push_back(j.get());
  }
  if (running.empty()) return;
  const std::vector<TaskRef> picks = speculator_->pick(running, now, free);
  int budget = free;
  for (const TaskRef& ref : picks) {
    if (budget <= 0) return;
    Job* job = find_job(ref.job);
    if (job == nullptr || job->finished()) continue;
    if (ref.stage != job->current_stage()) continue;
    TaskState& t = job->stage(ref.stage)[ref.task];
    if (t.completed) continue;
    launch_attempt(*job, ref.stage, ref.task, /*speculative=*/true, now);
    --budget;
  }
}

}  // namespace perfcloud::wl
