// Benchmark job factories: the PUMA MapReduce suite (terasort, wordcount,
// inverted-index) and the SparkBench suite (page-rank, logistic regression,
// svm) used throughout the paper's evaluation.
//
// Work amounts are calibrated so that resource *signatures* match the real
// benchmarks: terasort is I/O-bound end to end, wordcount is map-CPU-bound
// with tiny output, inverted-index sits between; Spark jobs load once, then
// iterate in memory with high bandwidth demand and LLC sensitivity (which is
// why the paper finds Spark more vulnerable to processor-resource
// contention, §III-A.2).
#pragma once

#include <string>

#include "workloads/job.hpp"

namespace perfcloud::wl {

/// HDFS block size; one map task per block (paper §IV-A: default 64 MB).
constexpr sim::Bytes kHdfsBlock = 64.0 * 1024 * 1024;

// --- PUMA MapReduce (the three the paper evaluates) ---
[[nodiscard]] JobSpec make_terasort(int maps, int reduces);
[[nodiscard]] JobSpec make_wordcount(int maps, int reduces);
[[nodiscard]] JobSpec make_inverted_index(int maps, int reduces);

// --- PUMA MapReduce (additional suite members) ---
[[nodiscard]] JobSpec make_grep(int maps);                       // map-only, selective output
[[nodiscard]] JobSpec make_self_join(int maps, int reduces);     // shuffle-heavy
[[nodiscard]] JobSpec make_histogram_movies(int maps, int reduces);

// --- SparkBench (the three the paper evaluates) ---
[[nodiscard]] JobSpec make_spark_logreg(int tasks_per_stage, int iterations = 5);
[[nodiscard]] JobSpec make_spark_svm(int tasks_per_stage, int iterations = 7);
[[nodiscard]] JobSpec make_spark_pagerank(int tasks_per_stage, int iterations = 5);

// --- SparkBench (additional suite member) ---
[[nodiscard]] JobSpec make_spark_kmeans(int tasks_per_stage, int iterations = 6);

/// Factory by benchmark name. `size` is maps for MapReduce and
/// tasks-per-stage for Spark. Throws on unknown names.
[[nodiscard]] JobSpec make_benchmark(const std::string& name, int size);

/// The six benchmarks of the paper's evaluation, PUMA first.
[[nodiscard]] const std::vector<std::string>& benchmark_names();
/// The full suite including the additional PUMA/SparkBench members.
[[nodiscard]] const std::vector<std::string>& extended_benchmark_names();

}  // namespace perfcloud::wl
