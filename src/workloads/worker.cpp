#include "workloads/worker.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace perfcloud::wl {

namespace {
// Worker daemon baseline: heartbeats and log writes.
constexpr double kDaemonCpuCores = 0.02;
constexpr double kDaemonIops = 2.0;
constexpr sim::Bytes kDaemonIoBytes = 16.0 * 1024;
constexpr sim::Bytes kDaemonFootprint = 4.0 * 1024 * 1024;
}  // namespace

void ScaleOutWorker::place(TaskAttempt* attempt) {
  assert(attempt != nullptr);
  if (free_slots() <= 0) throw std::logic_error("ScaleOutWorker::place: no free slot");
  attempts_.push_back(attempt);
}

void ScaleOutWorker::remove(TaskAttempt* attempt) {
  const auto it = std::find(attempts_.begin(), attempts_.end(), attempt);
  if (it != attempts_.end()) attempts_.erase(it);
}

hw::TenantDemand ScaleOutWorker::demand(sim::SimTime /*now*/, double dt) {
  hw::TenantDemand total{};
  total.cpu_core_seconds = kDaemonCpuCores * dt;
  total.io_ops = kDaemonIops * dt;
  total.io_bytes = kDaemonIops * dt * kDaemonIoBytes;
  total.llc_footprint = kDaemonFootprint;
  total.cpi_base = 1.0;
  total.mem_sensitivity = 1.0;

  cpu_share_.assign(attempts_.size(), 0.0);
  io_share_.assign(attempts_.size(), 0.0);

  double cpu_sum = 0.0;
  double io_sum = 0.0;
  double bw_weighted = 0.0;
  double cpi_weighted = 0.0;
  double sens_weighted = 0.0;
  for (std::size_t i = 0; i < attempts_.size(); ++i) {
    const hw::TenantDemand d = attempts_[i]->demand(dt);
    cpu_share_[i] = d.cpu_core_seconds;
    io_share_[i] = d.io_bytes > 0.0 ? d.io_bytes : d.io_ops * 4096.0;
    cpu_sum += d.cpu_core_seconds;
    io_sum += io_share_[i];
    total.cpu_core_seconds += d.cpu_core_seconds;
    total.io_ops += d.io_ops;
    total.io_bytes += d.io_bytes;
    total.llc_footprint += d.llc_footprint;
    bw_weighted += d.mem_bw_per_cpu_sec * std::max(d.cpu_core_seconds, 1e-9);
    cpi_weighted += d.cpi_base * std::max(d.cpu_core_seconds, 1e-9);
    sens_weighted += d.mem_sensitivity * std::max(d.cpu_core_seconds, 1e-9);
  }
  if (cpu_sum > 0.0) {
    total.mem_bw_per_cpu_sec = bw_weighted / cpu_sum;
    total.cpi_base = cpi_weighted / cpu_sum;
    total.mem_sensitivity = sens_weighted / cpu_sum;
    for (double& s : cpu_share_) s /= cpu_sum;
  }
  if (io_sum > 0.0) {
    for (double& s : io_share_) s /= io_sum;
  }
  return total;
}

void ScaleOutWorker::apply(const hw::TenantGrant& grant, sim::SimTime /*now*/, double /*dt*/) {
  assert(cpu_share_.size() == attempts_.size());
  for (std::size_t i = 0; i < attempts_.size(); ++i) {
    attempts_[i]->advance(grant.instructions * cpu_share_[i], grant.io_ops * io_share_[i],
                          grant.io_bytes * io_share_[i]);
  }
}

}  // namespace perfcloud::wl
