// Cluster-level scale-out framework: the JobTracker / Spark-master analogue.
//
// Owns jobs and their task attempts, schedules attempts onto worker-VM
// slots, enforces stage barriers, and supports the two application-level
// straggler mitigations the paper compares against:
//  - speculative execution via a pluggable Speculator (LATE), and
//  - job-level cloning with first-finisher-wins (Dolly).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/engine.hpp"
#include "virt/vm.hpp"
#include "workloads/job.hpp"
#include "workloads/worker.hpp"

namespace perfcloud::wl {

/// Reference to one task inside one job.
struct TaskRef {
  JobId job = -1;
  std::size_t stage = 0;
  std::size_t task = 0;
};

/// Speculative-execution policy. Called once per scheduling round with the
/// number of slots still free after normal scheduling; returns tasks to
/// launch an extra attempt for, best candidates first.
class Speculator {
 public:
  virtual ~Speculator() = default;
  [[nodiscard]] virtual std::vector<TaskRef> pick(const std::vector<const Job*>& running_jobs,
                                                  sim::SimTime now, int free_slots) = 0;
};

class ScaleOutFramework {
 public:
  /// `app_id` ties the framework's worker VMs together in the cloud
  /// registry; PerfCloud protects them as one high-priority application.
  ScaleOutFramework(sim::Engine& engine, std::string app_id);

  ScaleOutFramework(const ScaleOutFramework&) = delete;
  ScaleOutFramework& operator=(const ScaleOutFramework&) = delete;

  /// Register `vm` as a worker with one slot per vCPU; attaches a
  /// ScaleOutWorker guest to the VM. `host_name` tags the worker's physical
  /// host (used by the shared-memory shuffle optimization; may be empty).
  ScaleOutWorker& add_worker(virt::Vm& vm, std::string host_name = {});

  /// §IV-D extension: shuffle data between colocated worker VMs moves over
  /// shared memory instead of the disk. When enabled, a task's shuffle-read
  /// volume (stage > 0 reads) shrinks by the fraction of its peers that
  /// share its host.
  void set_shared_memory_shuffle(bool enabled) { shared_memory_shuffle_ = enabled; }
  [[nodiscard]] bool shared_memory_shuffle() const { return shared_memory_shuffle_; }

  /// Begin the periodic scheduling loop (reap, barrier, schedule,
  /// speculate) with the given period in seconds. Call after the cloud has
  /// started ticking so scheduling runs after arbitration at equal times.
  void start(double period);

  void set_speculator(std::unique_ptr<Speculator> s) { speculator_ = std::move(s); }

  /// Failure injection: every running attempt fails independently with this
  /// rate (per attempt-second). Failed attempts are reaped like killed ones
  /// (their runtime counts as waste) and the task becomes schedulable
  /// again — the retry loop every real framework has.
  ///
  /// This is the primitive actuator behind the faults subsystem's
  /// TaskFailure kind: a kTaskFailure spec injected at t=0 that never
  /// recovers is exactly this knob, and the FaultInjector drives the rate
  /// through this setter on inject/recover.
  void set_task_failure_rate(double per_second) { failure_rate_ = per_second; }
  [[nodiscard]] double task_failure_rate() const { return failure_rate_; }
  /// Total attempts that were failed by injection so far.
  [[nodiscard]] int failed_attempts() const { return failed_attempts_; }

  // --- Fault hooks (HostCrash) ---
  /// The given worker VMs are about to die with their host: kill every
  /// attempt running on them (the task becomes schedulable again — lost
  /// work is re-executed, as real frameworks do on node loss) and mark the
  /// workers dead so scheduling skips them. MUST be called while the VMs
  /// still exist — removing an attempt touches the old worker object.
  void on_worker_vms_lost(const std::vector<int>& vm_ids, sim::SimTime now);
  /// A replacement VM has been booted for a crashed worker: attach a fresh
  /// ScaleOutWorker guest to it and take over the dead worker's slot in the
  /// roster (same worker index, new VM id and host). Throws if `old_vm_id`
  /// does not name a dead worker.
  ScaleOutWorker& rebind_worker(int old_vm_id, virt::Vm& vm, std::string host_name);
  /// Attempts killed by host crashes so far (distinct from failed_attempts).
  [[nodiscard]] int crash_lost_attempts() const { return crash_lost_attempts_; }
  /// Whether `vm_id` names one of this framework's workers (alive or dead) —
  /// lets the fault injector tell worker victims from bystander VMs.
  [[nodiscard]] bool has_worker_vm(int vm_id) const;

  JobId submit(const JobSpec& spec);
  /// Dolly: submit `clones` identical copies as one clone group; the first
  /// copy to complete wins and the rest are killed (§IV-C).
  std::vector<JobId> submit_cloned(const JobSpec& spec, int clones);
  void kill_job(JobId id);

  [[nodiscard]] const Job* find_job(JobId id) const;
  [[nodiscard]] Job* find_job(JobId id);
  [[nodiscard]] const std::vector<std::unique_ptr<Job>>& jobs() const { return jobs_; }
  [[nodiscard]] const std::string& app_id() const { return app_id_; }
  [[nodiscard]] std::size_t worker_count() const { return workers_.size(); }

  /// True when every submitted job has completed or been killed.
  [[nodiscard]] bool all_done() const;

  /// Completion time of a clone group (or of a single job, for group -1
  /// jobs pass the job id): first completion minus submit time.
  [[nodiscard]] double group_jct(int clone_group) const;

  /// The paper's resource-utilization-efficiency metric (§IV-C, Fig 11c):
  /// sum of successful attempt durations over the sum of all attempt
  /// durations, including killed speculative copies and killed clones.
  [[nodiscard]] double utilization_efficiency() const;

  /// Run one scheduling round now (also called by the periodic loop;
  /// exposed for tests and for drivers that need immediate placement).
  void poll(sim::SimTime now);

 private:
  struct WorkerRef {
    virt::Vm* vm;             ///< nullptr while dead (host crashed).
    ScaleOutWorker* worker;   ///< nullptr while dead.
    std::string host;
    int vm_id = -1;           ///< Stable key for rebinding after a crash.
    [[nodiscard]] bool dead() const { return worker == nullptr; }
  };

  void reap(sim::SimTime now);
  void inject_failures(sim::SimTime now);
  void settle_clone_groups(sim::SimTime now);
  void schedule(sim::SimTime now);
  void speculate(sim::SimTime now);
  void kill_attempt(AttemptRecord& rec, sim::SimTime now);
  void launch_attempt(Job& job, std::size_t stage, std::size_t task, bool speculative,
                      sim::SimTime now);
  [[nodiscard]] int total_free_slots() const;
  [[nodiscard]] int pick_least_loaded_worker() const;

  sim::Engine& engine_;
  std::string app_id_;
  std::vector<WorkerRef> workers_;
  std::vector<std::unique_ptr<Job>> jobs_;
  std::unique_ptr<Speculator> speculator_;
  sim::Rng rng_;
  JobId next_job_id_ = 1;
  int next_clone_group_ = 1;
  bool started_ = false;
  bool shared_memory_shuffle_ = false;
  double failure_rate_ = 0.0;
  double poll_period_ = 1.0;
  int failed_attempts_ = 0;
  int crash_lost_attempts_ = 0;
  mutable std::size_t placement_cursor_ = 0;
};

}  // namespace perfcloud::wl
