#include "workloads/task.hpp"

#include <algorithm>
#include <cmath>

namespace perfcloud::wl {

double total_work(const TaskSpec& spec) {
  double w = 0.0;
  for (const PhaseSpec& p : spec.phases) {
    w += p.instructions + p.io_bytes * kInstrPerIoByte;
  }
  return w;
}

TaskAttempt::TaskAttempt(TaskSpec spec, sim::SimTime started)
    : spec_(std::move(spec)), started_(started), work_total_(std::max(total_work(spec_), 1.0)) {}

hw::TenantDemand TaskAttempt::demand(double dt) const {
  hw::TenantDemand d{};
  if (done()) return d;
  const PhaseSpec& p = spec_.phases[phase_];

  if (phase_instr_done_ < p.instructions) {
    d.cpu_core_seconds = dt;  // one slot = one core
  }
  const sim::Bytes bytes_left = p.io_bytes - phase_bytes_done_;
  if (bytes_left > 0.0) {
    const sim::Bytes issue = std::min(bytes_left, spec_.max_io_rate * dt);
    d.io_bytes = issue;
    d.io_ops = p.io_bytes > 0.0
                   ? issue / std::max(spec_.io_request_bytes, 1.0)
                   : 0.0;
  } else if (p.io_ops - phase_ops_done_ > 0.0) {
    d.io_ops = std::min(p.io_ops - phase_ops_done_, spec_.max_io_rate * dt / 4096.0);
  }

  d.llc_footprint = spec_.mem.llc_footprint;
  d.mem_bw_per_cpu_sec = spec_.mem.bw_per_cpu_sec;
  d.cpi_base = spec_.mem.cpi_base;
  d.mem_sensitivity = spec_.mem.mem_sensitivity;
  return d;
}

void TaskAttempt::advance(double instructions, double io_ops, sim::Bytes io_bytes) {
  if (done()) return;
  const PhaseSpec& p = spec_.phases[phase_];

  const double instr_used = std::min(instructions, p.instructions - phase_instr_done_);
  phase_instr_done_ += instr_used;
  const sim::Bytes bytes_used = std::min(io_bytes, p.io_bytes - phase_bytes_done_);
  phase_bytes_done_ += bytes_used;
  const double ops_used = std::min(io_ops, std::max(p.io_ops - phase_ops_done_, 0.0));
  phase_ops_done_ += ops_used;

  work_done_ += instr_used + bytes_used * kInstrPerIoByte;
  maybe_advance_phase();
}

void TaskAttempt::maybe_advance_phase() {
  while (!done()) {
    const PhaseSpec& p = spec_.phases[phase_];
    const bool instr_ok = phase_instr_done_ >= p.instructions - 1e-6;
    const bool bytes_ok = phase_bytes_done_ >= p.io_bytes - 1e-6;
    const bool ops_ok = phase_ops_done_ >= p.io_ops - 1e-6;
    if (!(instr_ok && bytes_ok && ops_ok)) return;
    ++phase_;
    phase_instr_done_ = 0.0;
    phase_ops_done_ = 0.0;
    phase_bytes_done_ = 0.0;
  }
}

double TaskAttempt::progress() const {
  return std::clamp(work_done_ / work_total_, 0.0, 1.0);
}

double TaskAttempt::progress_rate(sim::SimTime now) const {
  const double elapsed = now - started_;
  return elapsed > 0.0 ? progress() / elapsed : 0.0;
}

}  // namespace perfcloud::wl
