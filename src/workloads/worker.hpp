// Worker-node guest: the Hadoop/Spark worker daemon running inside one VM.
//
// Aggregates the demand of the task attempts currently scheduled on its
// slots and splits the host's grant back across them. Also emits a small
// daemon baseline (heartbeats, logging) so the VM is never entirely dark.
#pragma once

#include <vector>

#include "virt/guest.hpp"
#include "workloads/task.hpp"

namespace perfcloud::wl {

class ScaleOutWorker : public virt::GuestWorkload {
 public:
  explicit ScaleOutWorker(int slots) : slots_(slots) {}

  [[nodiscard]] int slots() const { return slots_; }
  [[nodiscard]] int free_slots() const {
    return slots_ - static_cast<int>(attempts_.size());
  }
  [[nodiscard]] const std::vector<TaskAttempt*>& attempts() const { return attempts_; }

  /// Place an attempt on a free slot. The framework retains ownership and
  /// must remove the attempt when it completes or is killed.
  void place(TaskAttempt* attempt);
  void remove(TaskAttempt* attempt);

  hw::TenantDemand demand(sim::SimTime now, double dt) override;
  void apply(const hw::TenantGrant& grant, sim::SimTime now, double dt) override;
  [[nodiscard]] bool finished(sim::SimTime /*now*/) const override { return false; }
  [[nodiscard]] std::string_view name() const override { return "scaleout-worker"; }

 private:
  int slots_;
  std::vector<TaskAttempt*> attempts_;
  // Demand shares remembered between demand() and apply() of the same tick.
  std::vector<double> cpu_share_;
  std::vector<double> io_share_;
};

}  // namespace perfcloud::wl
