#include "workloads/antagonists.hpp"

#include <algorithm>
#include <cmath>

namespace perfcloud::wl {

namespace {
constexpr sim::Bytes kTinyFootprint = 2.0 * 1024 * 1024;

/// Sawtooth duty cycle in [duty_min, 1.0] with the given period. The phase
/// is global (simulation-clock based), not anchored to the workload's start:
/// a benchmark that begins mid-cycle is already at partial intensity, so
/// arrival times land at arbitrary points of the cycle.
double duty(double t, double period, double duty_min) {
  if (period <= 0.0) return 1.0;
  const double phase = std::fmod(t, period) / period;
  return duty_min + (1.0 - duty_min) * phase;
}
}  // namespace

// ---------------------------------------------------------------- fio ----

bool FioRandomRead::active(sim::SimTime now) const {
  if (now.seconds() < p_.start_s) return false;
  return p_.duration_s < 0.0 || now.seconds() < p_.start_s + p_.duration_s;
}

hw::TenantDemand FioRandomRead::demand(sim::SimTime now, double dt) {
  hw::TenantDemand d{};
  if (!active(now)) return d;
  const double load = duty(now.seconds(), p_.duty_period_s, p_.duty_min);
  d.cpu_core_seconds = p_.cpu_cores * load * dt;
  d.io_ops = p_.issue_iops * load * dt;
  d.io_bytes = d.io_ops * p_.block_size;
  // Deep asynchronous queue (iodepth 32): on a FCFS-ish virtio path the
  // share of device time a stream receives grows with its outstanding
  // requests, which is how one fio VM starves a whole Hadoop cluster in the
  // paper's motivation experiments.
  d.io_weight = 4.0;
  d.llc_footprint = kTinyFootprint;
  d.mem_bw_per_cpu_sec = 0.2e9;
  d.cpi_base = 1.1;
  d.mem_sensitivity = 0.3;  // I/O-bound: largely insensitive to LLC pressure.
  return d;
}

void FioRandomRead::apply(const hw::TenantGrant& grant, sim::SimTime now, double dt) {
  if (!active(now - dt)) return;
  ops_completed_ += grant.io_ops;
  active_seconds_ += dt;
}

bool FioRandomRead::finished(sim::SimTime now) const {
  return p_.duration_s >= 0.0 && now.seconds() >= p_.start_s + p_.duration_s;
}

// ------------------------------------------------------------- STREAM ----

bool StreamBenchmark::active(sim::SimTime now) const {
  if (now.seconds() < p_.start_s) return false;
  return p_.duration_s < 0.0 || now.seconds() < p_.start_s + p_.duration_s;
}

hw::TenantDemand StreamBenchmark::demand(sim::SimTime now, double dt) {
  hw::TenantDemand d{};
  if (!active(now)) return d;
  const double load = duty(now.seconds(), p_.duty_period_s, p_.duty_min);
  // Validation/reduction phases between kernel sweeps run on fewer threads.
  d.cpu_core_seconds = static_cast<double>(p_.threads) * (0.3 + 0.7 * load) * dt;
  // Cache occupancy follows the insertion rate: in low-intensity kernel
  // phases STREAM's lines age out and its effective LLC pressure drops.
  d.llc_footprint = p_.array_bytes * load;
  d.mem_bw_per_cpu_sec = p_.bw_per_cpu_sec * load;
  d.cpi_base = p_.cpi_base;
  // STREAM is itself bandwidth-bound, so contention slows it too — but less
  // than it slows latency-sensitive victims.
  d.mem_sensitivity = 0.8;
  return d;
}

void StreamBenchmark::apply(const hw::TenantGrant& grant, sim::SimTime now, double dt) {
  if (!active(now - dt)) return;
  bw_bytes_moved_ += grant.mem_bw_bytes;
  active_seconds_ += dt;
}

bool StreamBenchmark::finished(sim::SimTime now) const {
  return p_.duration_s >= 0.0 && now.seconds() >= p_.start_s + p_.duration_s;
}

// ------------------------------------------------------------- sysbench oltp ----

bool SysbenchOltp::active(sim::SimTime now) const {
  return now.seconds() >= p_.start_s && now.seconds() < p_.start_s + p_.duration_s;
}

hw::TenantDemand SysbenchOltp::demand(sim::SimTime now, double dt) {
  hw::TenantDemand d{};
  if (!active(now)) return d;
  // Sawtooth intensity in [0.35, 1.0]: ramps as the benchmark's query mix
  // cycles; keeps its I/O signature time-varying but uncorrelated with any
  // colocated application's phases.
  const double phase = std::fmod(now.seconds() - p_.start_s, p_.cycle_period_s) / p_.cycle_period_s;
  const double intensity = 0.35 + 0.65 * phase;
  d.cpu_core_seconds = p_.cpu_cores * intensity * dt;
  // Read-only OLTP on a 10M-row table: the InnoDB buffer pool caches the
  // hot set within tens of seconds, after which disk reads fall to a
  // trickle. This warmup decay is why a real oltp VM's I/O signature does
  // not track a victim's contention signal (Fig 5).
  const double warmup = 0.15 + 0.85 * std::exp(-(now.seconds() - p_.start_s) / 25.0);
  d.io_ops = p_.peak_iops * intensity * warmup * dt;
  d.io_bytes = d.io_ops * p_.request_bytes;
  d.llc_footprint = 12.0 * 1024 * 1024;  // buffer pool hot set
  d.mem_bw_per_cpu_sec = 1.0e9;
  d.cpi_base = 1.3;
  d.mem_sensitivity = 0.8;
  return d;
}

void SysbenchOltp::apply(const hw::TenantGrant& grant, sim::SimTime now, double /*dt*/) {
  if (!active(now)) return;
  // One "transaction" per ~4 I/O ops in the read-only point-select mix.
  transactions_ += grant.io_ops / 4.0;
}

bool SysbenchOltp::finished(sim::SimTime now) const {
  return now.seconds() >= p_.start_s + p_.duration_s;
}

// ------------------------------------------------------------- dd seq write ----

hw::TenantDemand DdSequentialWriter::demand(sim::SimTime now, double dt) {
  hw::TenantDemand d{};
  if (now.seconds() < p_.start_s || finished(now)) return d;
  const sim::Bytes want = std::min(p_.target_rate * dt, p_.total_bytes - bytes_written_);
  d.io_bytes = want;
  d.io_ops = want / p_.block_size;
  d.io_weight = 2.0;  // a couple of requests in flight, not a flood
  d.cpu_core_seconds = 0.15 * dt;
  d.llc_footprint = kTinyFootprint;
  d.mem_bw_per_cpu_sec = 0.5e9;
  d.cpi_base = 1.0;
  d.mem_sensitivity = 0.2;
  return d;
}

void DdSequentialWriter::apply(const hw::TenantGrant& grant, sim::SimTime /*now*/,
                               double /*dt*/) {
  bytes_written_ = std::min(bytes_written_ + grant.io_bytes, p_.total_bytes);
}

// ------------------------------------------------------------- sysbench cpu ----

hw::TenantDemand SysbenchCpu::demand(sim::SimTime now, double dt) {
  hw::TenantDemand d{};
  if (now.seconds() < p_.start_s || finished(now)) return d;
  d.cpu_core_seconds = static_cast<double>(p_.threads) * dt;
  d.llc_footprint = kTinyFootprint;  // fits in L1/L2; no LLC pressure
  d.mem_bw_per_cpu_sec = 0.05e9;
  d.cpi_base = 0.7;
  d.mem_sensitivity = 0.1;
  return d;
}

void SysbenchCpu::apply(const hw::TenantGrant& grant, sim::SimTime /*now*/, double /*dt*/) {
  instructions_done_ = std::min(instructions_done_ + grant.instructions, p_.total_instructions);
}

}  // namespace perfcloud::wl
