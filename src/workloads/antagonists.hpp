// Synthetic antagonist workloads used throughout the paper's evaluation:
// fio random read, STREAM, sysbench oltp, and sysbench cpu.
//
// Each is a GuestWorkload whose demand shape matches the real tool's
// resource signature; parameters default to the values the paper reports
// (§III-B: oltp 8 threads/120 s on a 10M-row table, cpu 4 threads primes up
// to 12M, STREAM 8 threads on 2G-element arrays).
#pragma once

#include <string>
#include <string_view>

#include "sim/rng.hpp"
#include "virt/guest.hpp"

namespace perfcloud::wl {

/// fio random-read: 4 KiB random reads at a fixed issue depth. IOPS-bound;
/// almost no CPU or memory-bandwidth pressure. Open-ended unless a duration
/// is set.
class FioRandomRead : public virt::GuestWorkload {
 public:
  struct Params {
    double issue_iops = 1500.0;      ///< Offered load; > device capacity saturates it.
    sim::Bytes block_size = 4096.0;
    double cpu_cores = 0.3;          ///< Issue-path CPU.
    double duration_s = -1.0;        ///< < 0 means run forever.
    double start_s = 0.0;            ///< Idle until this time.
    /// Intensity modulation: fio job files loop over runs with ramp-up and
    /// bookkeeping gaps, so offered load cycles between duty_min and 1.0
    /// with this period. This texture is what lets PerfCloud correlate the
    /// victim's deviation signal with the antagonist's throughput (§III-B).
    double duty_period_s = 31.0;
    double duty_min = 0.45;
  };

  explicit FioRandomRead(Params p) : p_(p) {}

  hw::TenantDemand demand(sim::SimTime now, double dt) override;
  void apply(const hw::TenantGrant& grant, sim::SimTime now, double dt) override;
  [[nodiscard]] bool finished(sim::SimTime now) const override;
  [[nodiscard]] std::string_view name() const override { return "fio-randread"; }

  /// Total operations completed — the tool's headline IOPS number comes from
  /// this divided by active time.
  [[nodiscard]] double ops_completed() const { return ops_completed_; }
  [[nodiscard]] double active_seconds() const { return active_seconds_; }
  [[nodiscard]] double achieved_iops() const {
    return active_seconds_ > 0.0 ? ops_completed_ / active_seconds_ : 0.0;
  }

 private:
  [[nodiscard]] bool active(sim::SimTime now) const;
  Params p_;
  double ops_completed_ = 0.0;
  double active_seconds_ = 0.0;
};

/// STREAM: memory-bandwidth benchmark. CPU-saturating on `threads` cores
/// with a working set far beyond any LLC, so it both squeezes cache shares
/// and saturates DRAM bandwidth. Runs a fixed number of sweep iterations if
/// `iterations > 0`, else forever.
class StreamBenchmark : public virt::GuestWorkload {
 public:
  struct Params {
    int threads = 8;
    sim::Bytes array_bytes = 48.0 * 1024 * 1024 * 1024;  ///< 3 arrays x 2G doubles.
    double bw_per_cpu_sec = 7.0e9;  ///< Achievable DRAM traffic per core-second.
    double cpi_base = 0.9;
    double duration_s = -1.0;
    double start_s = 0.0;
    /// STREAM cycles copy/scale/add/triad kernels with different traffic
    /// intensity, plus validation passes between sweeps: modelled as a duty
    /// cycle on the bandwidth demand. The low phase sits *below* memory-
    /// bandwidth saturation, so the benchmark's measured DRAM traffic (and
    /// hence its LLC miss rate, the identification signal of §III-B)
    /// actually tracks the cycle instead of pinning at the capacity.
    double duty_period_s = 37.0;
    double duty_min = 0.2;
  };

  explicit StreamBenchmark(Params p) : p_(p) {}

  hw::TenantDemand demand(sim::SimTime now, double dt) override;
  void apply(const hw::TenantGrant& grant, sim::SimTime now, double dt) override;
  [[nodiscard]] bool finished(sim::SimTime now) const override;
  [[nodiscard]] std::string_view name() const override { return "stream"; }

  /// Sustained DRAM traffic rate — STREAM's "triad" score analogue.
  [[nodiscard]] double achieved_bw() const {
    return active_seconds_ > 0.0 ? bw_bytes_moved_ / active_seconds_ : 0.0;
  }

 private:
  [[nodiscard]] bool active(sim::SimTime now) const;
  Params p_;
  double bw_bytes_moved_ = 0.0;
  double active_seconds_ = 0.0;
};

/// sysbench oltp (read-only MySQL): mixed moderate random I/O and CPU with a
/// sawtooth intensity (buffer-pool warmup / checkpoint cycles) that keeps it
/// decorrelated from a victim's contention signal.
class SysbenchOltp : public virt::GuestWorkload {
 public:
  struct Params {
    int threads = 8;
    double duration_s = 120.0;
    double start_s = 0.0;
    double peak_iops = 180.0;          ///< Random reads at peak of the cycle.
    sim::Bytes request_bytes = 16384.0;  ///< InnoDB page-sized reads.
    double cpu_cores = 1.6;
    double cycle_period_s = 23.0;      ///< Intensity sawtooth period.
  };

  explicit SysbenchOltp(Params p) : p_(p) {}

  hw::TenantDemand demand(sim::SimTime now, double dt) override;
  void apply(const hw::TenantGrant& grant, sim::SimTime now, double dt) override;
  [[nodiscard]] bool finished(sim::SimTime now) const override;
  [[nodiscard]] std::string_view name() const override { return "sysbench-oltp"; }

  [[nodiscard]] double transactions() const { return transactions_; }

 private:
  [[nodiscard]] bool active(sim::SimTime now) const;
  Params p_;
  double transactions_ = 0.0;
};

/// dd-style sequential writer (e.g. a tenant taking a backup): large-block
/// streaming writes at a modest queue depth. Sequential I/O consumes device
/// bandwidth rather than seeks, so it pressures throughput-bound victims
/// differently from fio's random reads.
class DdSequentialWriter : public virt::GuestWorkload {
 public:
  struct Params {
    sim::Bytes total_bytes = 8.0 * 1024 * 1024 * 1024;  ///< Volume to copy.
    double target_rate = 120.0e6;   ///< Offered write rate, bytes/s.
    sim::Bytes block_size = 1.0 * 1024 * 1024;
    double start_s = 0.0;
  };

  explicit DdSequentialWriter(Params p) : p_(p) {}

  hw::TenantDemand demand(sim::SimTime now, double dt) override;
  void apply(const hw::TenantGrant& grant, sim::SimTime now, double dt) override;
  [[nodiscard]] bool finished(sim::SimTime /*now*/) const override {
    return bytes_written_ >= p_.total_bytes;
  }
  [[nodiscard]] std::string_view name() const override { return "dd-seq-write"; }

  [[nodiscard]] double progress() const { return bytes_written_ / p_.total_bytes; }
  [[nodiscard]] sim::Bytes bytes_written() const { return bytes_written_; }

 private:
  Params p_;
  sim::Bytes bytes_written_ = 0.0;
};

/// sysbench cpu: prime computation, pure CPU, negligible cache footprint and
/// I/O. Finishes after computing its prime budget.
class SysbenchCpu : public virt::GuestWorkload {
 public:
  struct Params {
    int threads = 4;
    double total_instructions = 4.0e12;  ///< Prime search up to 12M, 4 threads.
    double start_s = 0.0;
  };

  explicit SysbenchCpu(Params p) : p_(p) {}

  hw::TenantDemand demand(sim::SimTime now, double dt) override;
  void apply(const hw::TenantGrant& grant, sim::SimTime now, double dt) override;
  [[nodiscard]] bool finished(sim::SimTime /*now*/) const override {
    return instructions_done_ >= p_.total_instructions;
  }
  [[nodiscard]] std::string_view name() const override { return "sysbench-cpu"; }

  [[nodiscard]] double progress() const { return instructions_done_ / p_.total_instructions; }

 private:
  Params p_;
  double instructions_done_ = 0.0;
};

}  // namespace perfcloud::wl
