#include "workloads/mix.hpp"

#include "workloads/benchmarks.hpp"

namespace perfcloud::wl {

namespace {

int draw_size(const MixParams& p, sim::Rng& rng) {
  if (rng.bernoulli(p.small_fraction)) {
    return static_cast<int>(rng.uniform_int(p.small_min, p.small_cutoff - 1));
  }
  return static_cast<int>(rng.uniform_int(p.small_cutoff, p.large_max));
}

std::vector<MixEntry> make_mix(const MixParams& p, sim::Rng& rng,
                               const std::vector<std::string>& names) {
  std::vector<MixEntry> mix;
  mix.reserve(static_cast<std::size_t>(p.num_jobs));
  double t = 0.0;
  for (int i = 0; i < p.num_jobs; ++i) {
    const std::string& name = names[static_cast<std::size_t>(i) % names.size()];
    const int size = draw_size(p, rng);
    mix.push_back(MixEntry{make_benchmark(name, size), t});
    t += rng.exponential(p.mean_interarrival_s);
  }
  return mix;
}

}  // namespace

std::vector<MixEntry> make_mapreduce_mix(const MixParams& p, sim::Rng& rng) {
  return make_mix(p, rng, {"terasort", "wordcount", "inverted-index"});
}

std::vector<MixEntry> make_spark_mix(const MixParams& p, sim::Rng& rng) {
  return make_mix(p, rng, {"pagerank", "logreg", "svm"});
}

}  // namespace perfcloud::wl
