#include "workloads/job.hpp"

namespace perfcloud::wl {

int TaskState::running_attempts() const {
  int n = 0;
  for (const AttemptRecord& a : attempts) {
    if (a.running) ++n;
  }
  return n;
}

namespace {
TaskSpec jittered(const TaskSpec& tmpl, const JobSpec& job, sim::Rng& rng) {
  TaskSpec t = tmpl;
  double scale = job.task_jitter_sigma > 0.0 ? rng.lognormal_median(1.0, job.task_jitter_sigma)
                                             : 1.0;
  if (job.skew_alpha > 0.0) {
    scale *= rng.pareto(1.0, job.skew_max, job.skew_alpha);
  }
  for (PhaseSpec& p : t.phases) {
    p.instructions *= scale;
    p.io_bytes *= scale;
    p.io_ops *= scale;
  }
  return t;
}
}  // namespace

Job::Job(JobId id, JobSpec spec, sim::SimTime submitted, sim::Rng& rng)
    : id_(id), spec_(std::move(spec)), submitted_(submitted) {
  stages_.reserve(spec_.stages.size());
  for (const StageSpec& s : spec_.stages) {
    std::vector<TaskState> tasks;
    tasks.reserve(static_cast<std::size_t>(s.num_tasks));
    for (int i = 0; i < s.num_tasks; ++i) {
      tasks.push_back(TaskState{jittered(s.task, spec_, rng), {}, false, {}});
    }
    stages_.push_back(std::move(tasks));
  }
}

void Job::advance_barrier(sim::SimTime now) {
  while (!finished() && current_stage_ < stages_.size()) {
    bool all_done = true;
    for (const TaskState& t : stages_[current_stage_]) {
      if (!t.completed) {
        all_done = false;
        break;
      }
    }
    if (!all_done) return;
    ++current_stage_;
  }
  if (!finished() && current_stage_ >= stages_.size()) {
    completed_ = true;
    finish_time_ = now;
  }
}

void Job::mark_killed(sim::SimTime now) {
  if (finished()) return;
  killed_ = true;
  finish_time_ = now;
}

}  // namespace perfcloud::wl
