#include "workloads/benchmarks.hpp"

#include <stdexcept>

namespace perfcloud::wl {

namespace {

constexpr sim::Bytes kMiB = 1024.0 * 1024.0;
constexpr sim::Bytes kRequest = 512.0 * 1024.0;

PhaseSpec read_phase(sim::Bytes bytes, double instructions) {
  return PhaseSpec{PhaseKind::kRead, instructions, bytes / kRequest, bytes};
}

PhaseSpec compute_phase(double instructions) {
  return PhaseSpec{PhaseKind::kCompute, instructions, 0.0, 0.0};
}

PhaseSpec write_phase(sim::Bytes bytes, double instructions) {
  return PhaseSpec{PhaseKind::kWrite, instructions, bytes / kRequest, bytes};
}

MemoryProfile mapreduce_mem() {
  return MemoryProfile{
      .llc_footprint = 8.0 * kMiB,
      .bw_per_cpu_sec = 0.7e9,
      .cpi_base = 1.0,
      .mem_sensitivity = 1.0,
  };
}

MemoryProfile spark_mem() {
  // Spark reuses cached RDD partitions: bigger hot set, heavier DRAM
  // traffic, and a steeper penalty when the LLC share shrinks.
  return MemoryProfile{
      .llc_footprint = 16.0 * kMiB,
      .bw_per_cpu_sec = 2.2e9,
      .cpi_base = 0.8,
      .mem_sensitivity = 2.2,
  };
}

}  // namespace

JobSpec make_terasort(int maps, int reduces) {
  TaskSpec map;
  map.phases = {read_phase(kHdfsBlock, 1.0e9), compute_phase(2.5e9),
                write_phase(kHdfsBlock, 0.2e9)};
  map.mem = mapreduce_mem();

  TaskSpec reduce;
  reduce.phases = {read_phase(kHdfsBlock, 0.5e9), compute_phase(2.5e9),
                   write_phase(kHdfsBlock, 0.3e9)};
  reduce.mem = mapreduce_mem();

  return JobSpec{"terasort", JobType::kMapReduce,
                 {StageSpec{"map", maps, map}, StageSpec{"reduce", reduces, reduce}},
                 0.08};
}

JobSpec make_wordcount(int maps, int reduces) {
  TaskSpec map;
  map.phases = {read_phase(kHdfsBlock, 0.5e9), compute_phase(3.5e9),
                write_phase(0.01 * kHdfsBlock, 0.1e9)};
  map.mem = mapreduce_mem();

  TaskSpec reduce;
  reduce.phases = {read_phase(6.0 * kMiB, 0.1e9), compute_phase(0.8e9),
                   write_phase(6.0 * kMiB, 0.1e9)};
  reduce.mem = mapreduce_mem();

  return JobSpec{"wordcount", JobType::kMapReduce,
                 {StageSpec{"map", maps, map}, StageSpec{"reduce", reduces, reduce}},
                 0.08};
}

JobSpec make_inverted_index(int maps, int reduces) {
  TaskSpec map;
  map.phases = {read_phase(kHdfsBlock, 0.8e9), compute_phase(2.5e9),
                write_phase(0.1 * kHdfsBlock, 0.15e9)};
  map.mem = mapreduce_mem();

  TaskSpec reduce;
  reduce.phases = {read_phase(15.0 * kMiB, 0.2e9), compute_phase(1.2e9),
                   write_phase(15.0 * kMiB, 0.15e9)};
  reduce.mem = mapreduce_mem();

  return JobSpec{"inverted-index", JobType::kMapReduce,
                 {StageSpec{"map", maps, map}, StageSpec{"reduce", reduces, reduce}},
                 0.08};
}

JobSpec make_grep(int maps) {
  // PUMA grep: scan the input for a pattern; output only matching lines
  // (~0.1 % selectivity). Map-only in PUMA's configuration.
  TaskSpec map;
  map.phases = {read_phase(kHdfsBlock, 0.4e9), compute_phase(0.9e9),
                write_phase(0.001 * kHdfsBlock, 0.02e9)};
  map.mem = mapreduce_mem();
  return JobSpec{"grep", JobType::kMapReduce, {StageSpec{"map", maps, map}}, 0.08};
}

JobSpec make_self_join(int maps, int reduces) {
  // PUMA self-join: candidate generation writes large intermediate data;
  // the shuffle/reduce side dominates.
  TaskSpec map;
  map.phases = {read_phase(kHdfsBlock, 0.7e9), compute_phase(1.8e9),
                write_phase(0.6 * kHdfsBlock, 0.2e9)};
  map.mem = mapreduce_mem();

  TaskSpec reduce;
  reduce.phases = {read_phase(0.6 * kHdfsBlock, 0.4e9), compute_phase(2.2e9),
                   write_phase(0.4 * kHdfsBlock, 0.2e9)};
  reduce.mem = mapreduce_mem();

  return JobSpec{"self-join", JobType::kMapReduce,
                 {StageSpec{"map", maps, map}, StageSpec{"reduce", reduces, reduce}},
                 0.08};
}

JobSpec make_histogram_movies(int maps, int reduces) {
  // PUMA histogram-movies: bin movie ratings; tiny aggregate output.
  TaskSpec map;
  map.phases = {read_phase(kHdfsBlock, 0.5e9), compute_phase(1.6e9),
                write_phase(0.002 * kHdfsBlock, 0.05e9)};
  map.mem = mapreduce_mem();

  TaskSpec reduce;
  reduce.phases = {read_phase(1.0 * kMiB, 0.05e9), compute_phase(0.3e9),
                   write_phase(1.0 * kMiB, 0.05e9)};
  reduce.mem = mapreduce_mem();

  return JobSpec{"histogram-movies", JobType::kMapReduce,
                 {StageSpec{"map", maps, map}, StageSpec{"reduce", reduces, reduce}},
                 0.08};
}

namespace {

JobSpec make_spark_iterative(const std::string& name, int tasks_per_stage, int iterations,
                             double iter_instructions, sim::Bytes shuffle_bytes) {
  TaskSpec load;
  load.phases = {read_phase(kHdfsBlock, 2.0e9)};
  load.mem = spark_mem();

  JobSpec spec{name, JobType::kSpark, {StageSpec{"load", tasks_per_stage, load}}, 0.08};
  for (int i = 0; i < iterations; ++i) {
    TaskSpec iter;
    if (shuffle_bytes > 0.0) {
      iter.phases = {read_phase(shuffle_bytes, 0.2e9), compute_phase(iter_instructions),
                     write_phase(shuffle_bytes, 0.1e9)};
    } else {
      iter.phases = {compute_phase(iter_instructions)};
    }
    iter.mem = spark_mem();
    spec.stages.push_back(StageSpec{"iter-" + std::to_string(i), tasks_per_stage, iter});
  }
  return spec;
}

}  // namespace

JobSpec make_spark_logreg(int tasks_per_stage, int iterations) {
  return make_spark_iterative("logreg", tasks_per_stage, iterations, 3.2e9, 8.0 * kMiB);
}

JobSpec make_spark_svm(int tasks_per_stage, int iterations) {
  return make_spark_iterative("svm", tasks_per_stage, iterations, 2.4e9, 8.0 * kMiB);
}

JobSpec make_spark_pagerank(int tasks_per_stage, int iterations) {
  return make_spark_iterative("pagerank", tasks_per_stage, iterations, 2.5e9, 16.0 * kMiB);
}

JobSpec make_spark_kmeans(int tasks_per_stage, int iterations) {
  // k-means: distance computations dominate; a small centroid broadcast is
  // exchanged between iterations.
  return make_spark_iterative("kmeans", tasks_per_stage, iterations, 2.9e9, 2.0 * kMiB);
}

JobSpec make_benchmark(const std::string& name, int size) {
  if (name == "terasort") return make_terasort(size, size);
  if (name == "wordcount") return make_wordcount(size, std::max(1, size / 2));
  if (name == "inverted-index") return make_inverted_index(size, std::max(1, size / 2));
  if (name == "grep") return make_grep(size);
  if (name == "self-join") return make_self_join(size, std::max(1, size / 2));
  if (name == "histogram-movies") return make_histogram_movies(size, std::max(1, size / 4));
  if (name == "logreg") return make_spark_logreg(size);
  if (name == "svm") return make_spark_svm(size);
  if (name == "pagerank") return make_spark_pagerank(size);
  if (name == "kmeans") return make_spark_kmeans(size);
  throw std::invalid_argument("unknown benchmark: " + name);
}

const std::vector<std::string>& benchmark_names() {
  static const std::vector<std::string> names = {"terasort", "wordcount", "inverted-index",
                                                 "pagerank", "logreg", "svm"};
  return names;
}

const std::vector<std::string>& extended_benchmark_names() {
  static const std::vector<std::string> names = {
      "terasort", "wordcount", "inverted-index", "grep", "self-join", "histogram-movies",
      "pagerank", "logreg",    "svm",            "kmeans"};
  return names;
}

}  // namespace perfcloud::wl
