// Migration policy: the cluster manager's deterministic throttle-escalation
// loop (DESIGN.md §5k).
//
// PerfCloud's node managers throttle identified antagonists locally (CUBIC
// caps); the cloud manager migrates colliding high-priority apps apart
// (§IV-D). This subsystem closes the remaining gap, after PANDA's
// throttle-then-migrate escalation: when an identified antagonist has been
// pinned at its cap floor for N consecutive policy windows while the victim
// application's deviation signal still exceeds the threshold, throttling is
// exhausted — the policy migrates the ANTAGONIST (never the victim's
// scale-out group) to the best-scored feasible host.
//
// Destination choice is pluggable (first-fit / load-aware / VUPIC-style
// complementary-usage scoring) and shared with the §IV-D escalation path:
// the policy installs itself as the cloud manager's DestinationScorer, so
// resolve_high_priority_collision ranks candidates through the same scorer.
//
// Runs on the engine thread in the post-barrier phase of the shared host
// pipeline (registered AFTER the node managers, so it reads the control
// state they just published — same injection discipline as src/faults/).
// Every decision is an EmitSink event under one "policy" source; byte-
// identical across shard counts, schedulers, and emission modes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cloud/cloud_manager.hpp"
#include "core/node_manager.hpp"
#include "policy/cluster_view.hpp"
#include "sim/emit.hpp"
#include "sim/slot_store.hpp"
#include "sim/types.hpp"

namespace perfcloud::policy {

/// Destination ranking among hosts that pass the hard feasibility filters.
enum class Scoring {
  kFirstFit,        ///< Lowest provisioning index wins.
  kLoadAware,       ///< Least normalized aggregate load wins.
  kComplementary,   ///< VUPIC-style: least usage-vector overlap wins.
};

struct PolicyParams {
  /// Policy evaluation period; must be a whole multiple of the node
  /// managers' sample_interval_s. <= 0 means every control interval.
  double interval_s = 0.0;
  /// Consecutive at-floor policy windows (with the victim still deviating)
  /// before escalation triggers.
  int floor_windows = 3;
  /// Minimum residency on the current host before the policy may move a VM
  /// again (counted from arrival, or from first policy sight for VMs that
  /// predate the policy).
  double dwell_min_s = 60.0;
  /// After any migration touches a host (as source or destination), the
  /// policy neither moves VMs off it nor targets it for this long.
  double host_cooldown_s = 60.0;
  /// Global cap on concurrently in-flight policy-initiated migrations.
  int max_in_flight = 1;
  /// How long a (vm, host-pair) stays blacklisted after a detected bounce.
  double blacklist_s = 3600.0;
  Scoring scoring = Scoring::kComplementary;
};

class MigrationPolicy final : public cloud::DestinationScorer {
 public:
  /// `nms` indexed by host provisioning order, outliving the policy.
  MigrationPolicy(cloud::CloudManager& cloud, std::vector<core::NodeManager*> nms,
                  PolicyParams params);

  /// Emit decisions/counters under a "policy" event source. Call during
  /// setup; nullptr detaches.
  void set_emit_sink(sim::EmitSink* sink);

  /// Arm the policy: joins the shared host pipeline (barrier phase only — no
  /// per-host parallel half), subscribes to migration lifecycle events, and
  /// installs itself as the cloud's escalation destination scorer. Call once
  /// during setup, AFTER the node managers have started (barrier hooks run
  /// in registration order; the policy must read post-control state).
  void start();

  /// One policy evaluation at `now`. start() drives this from the pipeline;
  /// tests may call it directly on the engine thread.
  void step(sim::SimTime now);

  // cloud::DestinationScorer — shared ranking for §IV-D escalations.
  [[nodiscard]] double score_destination(const virt::VmConfig& shape,
                                         const std::string& src_host,
                                         const std::string& dst_host) override;

  [[nodiscard]] ClusterView& view() { return view_; }
  [[nodiscard]] const PolicyParams& params() const { return params_; }

  // Lifetime decision counters (also emitted as run-summary counters).
  [[nodiscard]] long triggered() const { return triggered_; }
  [[nodiscard]] long migrated() const { return migrated_; }
  [[nodiscard]] long suppressed_dwell() const { return suppressed_dwell_; }
  [[nodiscard]] long suppressed_cooldown() const { return suppressed_cooldown_; }
  [[nodiscard]] long suppressed_budget() const { return suppressed_budget_; }
  [[nodiscard]] long suppressed_blacklist() const { return suppressed_blacklist_; }
  [[nodiscard]] long no_feasible() const { return no_feasible_; }
  [[nodiscard]] long aborted() const { return aborted_; }
  [[nodiscard]] int in_flight() const { return in_flight_; }

 private:
  enum class Res { kIo, kCpu };

  /// Per-VM hysteresis state. Keyed by VM id; entries of departed VMs
  /// linger unreachable (ids are never reused cloud-wide).
  struct VmState {
    sim::SimTime placed_at = sim::SimTime(0.0);
    bool placed_known = false;
    int io_floor_streak = 0;
    int cpu_floor_streak = 0;
    bool policy_in_flight = false;  ///< A migration WE started is in flight.
    // Last completed policy move (host indexes), for bounce detection.
    std::int32_t last_src = -1;
    std::int32_t last_dst = -1;
    // Blacklisted unordered host pair; active while now < bl_until.
    std::int32_t bl_a = -1;
    std::int32_t bl_b = -1;
    sim::SimTime bl_until = sim::SimTime(0.0);
  };

  void on_migration(const cloud::MigrationEvent& ev);
  void scan_host(const HostView& h, Res res, sim::SimTime now);
  void consider_migration(const HostView& src, const VmUsage& u, Res res, sim::SimTime now);
  [[nodiscard]] double score(const VmUsage& u, const HostView& dst) const;
  [[nodiscard]] bool pair_blacklisted(const VmState& st, std::size_t a, std::size_t b,
                                      sim::SimTime now) const;
  [[nodiscard]] VmState& state(int vm_id, sim::SimTime now);
  void emit(sim::SimTime t, std::string kind, double value);

  cloud::CloudManager& cloud_;
  PolicyParams params_;
  core::PerfCloudConfig cfg_;  ///< Thresholds/floor copied from the node managers.
  ClusterView view_;
  sim::EmitSink* sink_ = nullptr;
  sim::EmitSink::SourceId source_ = 0;
  /// Slot-keyed per-interval counter (see set_emit_sink): the armed-but-idle
  /// policy tick bumps it without any string lookup.
  sim::EmitSink::CounterId ctr_intervals_ = 0;
  sim::SlotMap<VmState> vm_state_;
  /// Last migration activity touching each host (seconds; by host index).
  std::vector<double> host_last_migration_s_;
  std::vector<core::NodeManager::AppId> victim_apps_;  ///< Scratch, reused.
  int in_flight_ = 0;
  int interval_ticks_ = 1;
  int tick_ = 0;
  bool started_ = false;
  long triggered_ = 0;
  long migrated_ = 0;
  long suppressed_dwell_ = 0;
  long suppressed_cooldown_ = 0;
  long suppressed_budget_ = 0;
  long suppressed_blacklist_ = 0;
  long no_feasible_ = 0;
  long aborted_ = 0;
};

}  // namespace perfcloud::policy
