// Cluster view: the slot-keyed, allocation-free aggregate the migration
// policy scores against (DESIGN.md §5k).
//
// Folds, once per policy interval, every host's usage vectors (CPU cores,
// disk throughput, LLC miss rate — the three interference axes of §III) and
// live interference verdicts (per-app deviation signals, per-VM caps with
// their at-floor status) into one dense per-host structure. Runs on the
// engine thread post-barrier, after the node managers' control steps, so it
// reads exactly the state those steps just published.
//
// Steady-state refreshes are allocation-free: resident-VM lists are cached
// against the cloud registry version (a rebuild — boot, migration, crash —
// is episodic and may allocate), and every numeric field is re-read in place
// through the monitors' and node managers' policy-facing accessors.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cloud/cloud_manager.hpp"
#include "core/node_manager.hpp"
#include "sim/interner.hpp"
#include "sim/types.hpp"
#include "virt/hypervisor.hpp"

namespace perfcloud::policy {

/// One resident VM's shape plus its smoothed usage vector and cap state.
struct VmUsage {
  int vm_id = 0;
  int vcpus = 0;
  sim::Bytes memory = 0.0;
  virt::Priority priority = virt::Priority::kLow;
  sim::Interner::Id app = sim::Interner::kInvalid;
  // Smoothed usage (the monitor's EWMAs), refreshed every interval.
  double cpu_cores = 0.0;
  double io_bps = 0.0;
  double llc_rate = 0.0;
  // Normalized caps (1.0 = baseline); negative when the VM is not capped
  // for that resource. A cap exists only for an identified antagonist.
  double io_cap = -1.0;
  double cpu_cap = -1.0;
  /// Cap driven down to the controller's floor by real decreases — the
  /// "throttling is exhausted" half of the escalation trigger.
  bool io_at_floor = false;
  bool cpu_at_floor = false;
};

/// One host's aggregate state for a policy interval.
struct HostView {
  std::string name;
  std::size_t index = 0;  ///< Provisioning order; ties break by this.
  bool up = true;
  // Static capacities (cached at construction; degradation faults do not
  // move the nameplate numbers scoring normalizes by).
  int cores = 0;
  sim::Bytes dram = 0.0;
  double disk_bw = 0.0;
  // Aggregate usage over resident VMs, refreshed every interval.
  double cpu_cores_used = 0.0;
  double io_bps = 0.0;
  double llc_rate = 0.0;
  /// Worst deviation signal over the host's protected apps; negative when
  /// no protected app has samples here.
  double max_io_dev = -1.0;
  double max_cpi_dev = -1.0;
  /// Residents in ascending VM-id order (deterministic regardless of
  /// adoption history). Rebuilt only when the cloud registry changes.
  std::vector<VmUsage> vms;
};

class ClusterView {
 public:
  /// `nms` must be indexed by host provisioning order (nms[i] manages
  /// cloud.host_names()[i]) and outlive the view. Engine thread only.
  ClusterView(cloud::CloudManager& cloud, std::vector<core::NodeManager*> nms);

  /// Fold current cluster state into the view. Idempotent per (time,
  /// registry version): a second call at the same timestamp with no
  /// placement change in between is a no-op, so the escalation scorer and
  /// the policy tick sharing one barrier phase never double-read.
  void refresh(sim::SimTime now);

  [[nodiscard]] std::size_t host_count() const { return hosts_.size(); }
  [[nodiscard]] const HostView& host(std::size_t index) const { return hosts_[index]; }
  /// Host index by name; npos when unknown.
  [[nodiscard]] std::size_t index_of(const std::string& name) const;
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  /// A resident VM's usage entry on the given host; nullptr when absent.
  [[nodiscard]] const VmUsage* find_vm(std::size_t host_index, int vm_id) const;

  /// Largest per-host aggregate LLC miss rate seen this refresh — the
  /// normalization denominator for the capacity-less third axis (CPU and
  /// disk normalize by nameplate capacity instead).
  [[nodiscard]] double max_host_llc_rate() const { return max_host_llc_rate_; }

  [[nodiscard]] const core::NodeManager& node_manager(std::size_t index) const {
    return *nms_[index];
  }

 private:
  void rebuild_residents(HostView& h);
  void refresh_host(HostView& h, core::NodeManager& nm);

  cloud::CloudManager& cloud_;
  std::vector<core::NodeManager*> nms_;
  std::vector<virt::Hypervisor*> hvs_;  ///< By host index; survive crashes.
  std::vector<HostView> hosts_;
  std::uint64_t seen_registry_version_ = 0;
  sim::SimTime last_refresh_ = sim::SimTime(-1.0);
  double max_host_llc_rate_ = 0.0;
};

}  // namespace perfcloud::policy
