#include "policy/cluster_view.hpp"

#include <algorithm>
#include <stdexcept>

namespace perfcloud::policy {

ClusterView::ClusterView(cloud::CloudManager& cloud, std::vector<core::NodeManager*> nms)
    : cloud_(cloud), nms_(std::move(nms)) {
  const std::vector<std::string> names = cloud_.host_names();
  if (nms_.size() != names.size()) {
    throw std::invalid_argument("ClusterView: need one node manager per host (" +
                                std::to_string(nms_.size()) + " for " +
                                std::to_string(names.size()) + " hosts)");
  }
  hosts_.resize(names.size());
  hvs_.reserve(names.size());
  for (std::size_t i = 0; i < names.size(); ++i) {
    virt::Hypervisor& hv = cloud_.host(names[i]);
    hvs_.push_back(&hv);
    HostView& h = hosts_[i];
    h.name = names[i];
    h.index = i;
    const hw::ServerConfig& cfg = hv.server().config();
    h.cores = cfg.cpu.cores;
    h.dram = cfg.dram;
    h.disk_bw = cfg.disk.bw_capacity;
  }
}

std::size_t ClusterView::index_of(const std::string& name) const {
  for (const HostView& h : hosts_) {
    if (h.name == name) return h.index;
  }
  return npos;
}

const VmUsage* ClusterView::find_vm(std::size_t host_index, int vm_id) const {
  for (const VmUsage& u : hosts_[host_index].vms) {
    if (u.vm_id == vm_id) return &u;
  }
  return nullptr;
}

void ClusterView::rebuild_residents(HostView& h) {
  h.vms.clear();
  for (const auto& vm : hvs_[h.index]->vms()) {
    const virt::VmConfig& cfg = vm->config();
    VmUsage u;
    u.vm_id = cfg.id;
    u.vcpus = cfg.vcpus;
    u.memory = cfg.memory;
    u.priority = cfg.priority;
    u.app = cloud_.app_interner().lookup(cfg.app_id);
    h.vms.push_back(u);
  }
  // Hypervisor order is adoption order, which depends on migration history;
  // VM ids are cloud-unique and monotone, so id order is the deterministic
  // canonical order.
  std::sort(h.vms.begin(), h.vms.end(),
            [](const VmUsage& a, const VmUsage& b) { return a.vm_id < b.vm_id; });
}

void ClusterView::refresh_host(HostView& h, core::NodeManager& nm) {
  const core::PerformanceMonitor& mon = nm.monitor();
  const double floor = nm.config().min_cap_fraction;
  h.cpu_cores_used = 0.0;
  h.io_bps = 0.0;
  h.llc_rate = 0.0;
  for (VmUsage& u : h.vms) {
    u.cpu_cores = mon.observed_cpu_cores(u.vm_id);
    u.io_bps = mon.observed_io_bps(u.vm_id);
    u.llc_rate = mon.observed_llc_rate(u.vm_id);
    u.io_cap = -1.0;
    u.cpu_cap = -1.0;
    u.io_at_floor = false;
    u.cpu_at_floor = false;
    h.cpu_cores_used += u.cpu_cores;
    h.io_bps += u.io_bps;
    h.llc_rate += u.llc_rate;
  }
  const auto fold_cap = [&](int vm_id, double cap, bool ever_decreased, bool io) {
    for (VmUsage& u : h.vms) {
      if (u.vm_id != vm_id) continue;
      // "At floor" means the controller actually drove the cap down to its
      // clamp, not that a fresh controller happens to start there.
      const bool at_floor = ever_decreased && cap <= floor + 1e-12;
      if (io) {
        u.io_cap = cap;
        u.io_at_floor = at_floor;
      } else {
        u.cpu_cap = cap;
        u.cpu_at_floor = at_floor;
      }
      return;
    }
  };
  nm.for_each_io_cap([&](int vm_id, double cap, bool dec) { fold_cap(vm_id, cap, dec, true); });
  nm.for_each_cpu_cap([&](int vm_id, double cap, bool dec) { fold_cap(vm_id, cap, dec, false); });
  h.max_io_dev = -1.0;
  h.max_cpi_dev = -1.0;
  nm.for_each_protected_app([&](core::NodeManager::AppId app) {
    h.max_io_dev = std::max(h.max_io_dev, nm.latest_io_deviation(app));
    h.max_cpi_dev = std::max(h.max_cpi_dev, nm.latest_cpi_deviation(app));
  });
}

void ClusterView::refresh(sim::SimTime now) {
  const std::uint64_t version = cloud_.registry_version();
  if (last_refresh_ == now && seen_registry_version_ == version) return;
  const bool rebuild = seen_registry_version_ != version;
  last_refresh_ = now;
  seen_registry_version_ = version;
  max_host_llc_rate_ = 0.0;
  for (std::size_t i = 0; i < hosts_.size(); ++i) {
    HostView& h = hosts_[i];
    h.up = cloud_.host_up(h.name);
    if (rebuild) rebuild_residents(h);
    refresh_host(h, *nms_[i]);
    max_host_llc_rate_ = std::max(max_host_llc_rate_, h.llc_rate);
  }
}

}  // namespace perfcloud::policy
