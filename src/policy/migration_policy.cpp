#include "policy/migration_policy.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace perfcloud::policy {

namespace {

const core::PerfCloudConfig& front_config(const std::vector<core::NodeManager*>& nms) {
  if (nms.empty()) {
    throw std::invalid_argument("MigrationPolicy: need at least one node manager");
  }
  return nms.front()->config();
}

}  // namespace

MigrationPolicy::MigrationPolicy(cloud::CloudManager& cloud,
                                 std::vector<core::NodeManager*> nms, PolicyParams params)
    : cloud_(cloud),
      params_(params),
      cfg_(front_config(nms)),
      view_(cloud, std::move(nms)) {
  if (params_.floor_windows < 1) {
    throw std::invalid_argument("PolicyParams::floor_windows must be >= 1");
  }
  if (params_.max_in_flight < 1) {
    throw std::invalid_argument("PolicyParams::max_in_flight must be >= 1");
  }
  if (params_.dwell_min_s < 0.0 || params_.host_cooldown_s < 0.0 || params_.blacklist_s < 0.0) {
    throw std::invalid_argument("PolicyParams durations must be non-negative");
  }
  // "Never": no host has migrated yet, and the cooldown guard subtracts.
  host_last_migration_s_.assign(view_.host_count(), -1e300);
}

void MigrationPolicy::set_emit_sink(sim::EmitSink* sink) {
  sink_ = sink;
  if (sink_ != nullptr) {
    source_ = sink_->add_event_source("policy");
    // The per-interval heartbeat is the policy layer's only hot counter;
    // the suppression/outcome counters below fire on episodes, not ticks.
    ctr_intervals_ = sink_->add_counter(source_, "policy_intervals");
  }
}

void MigrationPolicy::start() {
  if (started_) throw std::logic_error("MigrationPolicy::start called twice");
  const double period = cfg_.sample_interval_s;
  const double interval = params_.interval_s <= 0.0 ? period : params_.interval_s;
  interval_ticks_ = static_cast<int>(std::lround(interval / period));
  if (interval_ticks_ < 1 ||
      std::abs(interval_ticks_ * period - interval) > 1e-9 * std::max(1.0, interval)) {
    throw std::invalid_argument(
        "PolicyParams::interval_s must be a whole multiple of sample_interval_s");
  }
  // Barrier phase only: the policy has no per-host parallel half, and it
  // must run AFTER the node managers' barrier hooks (escalations) so it
  // reads this interval's final control state.
  cloud_.register_host_pipeline(period, nullptr, [this](sim::SimTime now) {
    if (++tick_ < interval_ticks_) return;
    tick_ = 0;
    step(now);
  });
  cloud_.add_migration_listener([this](const cloud::MigrationEvent& ev) { on_migration(ev); });
  cloud_.set_destination_scorer(this);
  started_ = true;
}

MigrationPolicy::VmState& MigrationPolicy::state(int vm_id, sim::SimTime now) {
  VmState& st = *vm_state_.try_emplace(vm_id).first;
  if (!st.placed_known) {
    // VMs that predate the policy dwell from first sight — conservative and
    // independent of anything before the policy was armed.
    st.placed_known = true;
    st.placed_at = now;
  }
  return st;
}

void MigrationPolicy::emit(sim::SimTime t, std::string kind, double value) {
  if (sink_ != nullptr) sink_->emit_event(source_, t, std::move(kind), value);
}

void MigrationPolicy::step(sim::SimTime now) {
  view_.refresh(now);
  if (sink_ != nullptr) sink_->bump_counter_id(ctr_intervals_);
  for (std::size_t i = 0; i < view_.host_count(); ++i) {
    const HostView& h = view_.host(i);
    if (!h.up) continue;
    scan_host(h, Res::kIo, now);
    scan_host(h, Res::kCpu, now);
  }
}

void MigrationPolicy::scan_host(const HostView& h, Res res, sim::SimTime now) {
  const bool io = res == Res::kIo;
  const double dev = io ? h.max_io_dev : h.max_cpi_dev;
  const double threshold = io ? cfg_.io_deviation_threshold : cfg_.cpi_deviation_threshold;
  const bool victim_suffering = dev > threshold;
  for (const VmUsage& u : h.vms) {
    VmState& st = state(u.vm_id, now);
    const bool at_floor = io ? u.io_at_floor : u.cpu_at_floor;
    int& streak = io ? st.io_floor_streak : st.cpu_floor_streak;
    // The trigger wants BOTH halves sustained: throttling exhausted (cap at
    // floor) while the victim still deviates. Either half recovering resets
    // the escalation clock.
    if (!(at_floor && victim_suffering)) {
      streak = 0;
      continue;
    }
    ++streak;
    if (streak < params_.floor_windows) continue;
    consider_migration(h, u, res, now);
  }
}

bool MigrationPolicy::pair_blacklisted(const VmState& st, std::size_t a, std::size_t b,
                                       sim::SimTime now) const {
  const auto lo = static_cast<std::int32_t>(std::min(a, b));
  const auto hi = static_cast<std::int32_t>(std::max(a, b));
  return st.bl_a == lo && st.bl_b == hi && now < st.bl_until;
}

void MigrationPolicy::consider_migration(const HostView& src, const VmUsage& u, Res res,
                                         sim::SimTime now) {
  VmState& st = vm_state_.at(u.vm_id);
  // A migration already in flight IS the remedy; don't double-decide.
  if (st.policy_in_flight || cloud_.migration_in_flight(u.vm_id)) return;
  const bool io = res == Res::kIo;
  const char* rn = io ? "io" : "cpu";
  const std::string tag = std::string(rn) + " vm=" + std::to_string(u.vm_id);
  ++triggered_;
  if (sink_ != nullptr) sink_->bump_counter(source_, "policy_triggered");
  emit(now, "trigger " + tag + " host=" + src.name, io ? src.max_io_dev : src.max_cpi_dev);

  // Guardrails, in fixed order; each suppression is counted and emitted so
  // the decision trail explains every interval the antagonist stayed put.
  if (in_flight_ >= params_.max_in_flight) {
    ++suppressed_budget_;
    if (sink_ != nullptr) sink_->bump_counter(source_, "policy_suppressed_budget");
    emit(now, "suppress_budget " + tag, static_cast<double>(in_flight_));
    return;
  }
  if (now - st.placed_at < params_.dwell_min_s) {
    ++suppressed_dwell_;
    if (sink_ != nullptr) sink_->bump_counter(source_, "policy_suppressed_dwell");
    emit(now, "suppress_dwell " + tag, now - st.placed_at);
    return;
  }
  if (now.seconds() - host_last_migration_s_[src.index] < params_.host_cooldown_s) {
    ++suppressed_cooldown_;
    if (sink_ != nullptr) sink_->bump_counter(source_, "policy_suppressed_cooldown");
    emit(now, "suppress_cooldown " + tag + " host=" + src.name,
         now.seconds() - host_last_migration_s_[src.index]);
    return;
  }

  // The antagonist must not land next to the application it is hurting:
  // collect the deviating protected apps on the source (the victims), then
  // refuse any destination hosting one of their VMs (VUPIC's complementary-
  // placement constraint applied to the interference verdict).
  victim_apps_.clear();
  const core::NodeManager& nm = view_.node_manager(src.index);
  const double threshold = io ? cfg_.io_deviation_threshold : cfg_.cpi_deviation_threshold;
  nm.for_each_protected_app([&](core::NodeManager::AppId app) {
    const double d = io ? nm.latest_io_deviation(app) : nm.latest_cpi_deviation(app);
    if (d > threshold) victim_apps_.push_back(app);
  });

  virt::VmConfig shape;  // Admission math reads vcpus + memory only.
  shape.id = u.vm_id;
  shape.vcpus = u.vcpus;
  shape.memory = u.memory;
  shape.priority = u.priority;
  std::size_t best = ClusterView::npos;
  double best_score = 0.0;
  bool any_blacklisted = false;
  for (std::size_t j = 0; j < view_.host_count(); ++j) {
    if (j == src.index) continue;
    const HostView& d = view_.host(j);
    if (!d.up) continue;
    if (now.seconds() - host_last_migration_s_[j] < params_.host_cooldown_s) continue;
    if (pair_blacklisted(st, src.index, j, now)) {
      any_blacklisted = true;
      continue;
    }
    const bool hosts_victim = std::any_of(d.vms.begin(), d.vms.end(), [&](const VmUsage& v) {
      return std::find(victim_apps_.begin(), victim_apps_.end(), v.app) != victim_apps_.end();
    });
    if (hosts_victim) continue;
    if (!cloud_.has_capacity(d.name, shape)) continue;
    const double s = score(u, d);
    if (best == ClusterView::npos || s > best_score) {
      best = j;
      best_score = s;
    }
  }
  if (best == ClusterView::npos) {
    if (any_blacklisted) {
      ++suppressed_blacklist_;
      if (sink_ != nullptr) sink_->bump_counter(source_, "policy_suppressed_blacklist");
      emit(now, "suppress_blacklist " + tag, 0.0);
    } else {
      ++no_feasible_;
      if (sink_ != nullptr) sink_->bump_counter(source_, "policy_no_feasible");
      emit(now, "no_feasible " + tag, 0.0);
    }
    return;
  }

  const HostView& dst = view_.host(best);
  // Ping-pong detector: moving the VM straight back along its last policy
  // move is allowed ONCE (the cluster may genuinely have changed), but the
  // pair is blacklisted as it happens — a third bounce is suppressed above,
  // so an oscillation converges after one round trip.
  if (st.last_src == static_cast<std::int32_t>(best) &&
      st.last_dst == static_cast<std::int32_t>(src.index)) {
    st.bl_a = static_cast<std::int32_t>(std::min(best, src.index));
    st.bl_b = static_cast<std::int32_t>(std::max(best, src.index));
    st.bl_until = now + params_.blacklist_s;
    if (sink_ != nullptr) sink_->bump_counter(source_, "policy_pingpong_blacklisted");
    emit(now, "blacklist " + tag + " pair=" + src.name + "|" + dst.name, params_.blacklist_s);
  }
  st.last_src = static_cast<std::int32_t>(src.index);
  st.last_dst = static_cast<std::int32_t>(best);
  (io ? st.io_floor_streak : st.cpu_floor_streak) = 0;
  st.policy_in_flight = true;
  ++in_flight_;
  ++migrated_;
  if (sink_ != nullptr) sink_->bump_counter(source_, "policy_migrated");
  emit(now, "migrate " + tag + " src=" + src.name + " dst=" + dst.name, best_score);
  // May complete synchronously (instantaneous model): the kArrived listener
  // clears policy_in_flight and stamps cooldowns during this call, so all
  // bookkeeping above happens first and `st` is not touched again.
  cloud_.migrate_vm(u.vm_id, dst.name);
}

double MigrationPolicy::score(const VmUsage& u, const HostView& dst) const {
  switch (params_.scoring) {
    case Scoring::kFirstFit:
      return -static_cast<double>(dst.index);
    case Scoring::kLoadAware: {
      const double lnorm = std::max(view_.max_host_llc_rate(), 1.0);
      return -(dst.cpu_cores_used / dst.cores + dst.io_bps / dst.disk_bw +
               dst.llc_rate / lnorm);
    }
    case Scoring::kComplementary: {
      // VUPIC-style complementary placement: prefer the destination whose
      // aggregate usage vector overlaps least with the VM's own (a disk-
      // heavy antagonist lands on a CPU-heavy host, not another disk-heavy
      // one). CPU and disk normalize by nameplate capacity; LLC miss rate
      // has no capacity, so it normalizes by the largest per-host aggregate
      // seen this refresh. Load breaks overlap ties toward emptier hosts.
      const double lnorm = std::max(view_.max_host_llc_rate(), 1.0);
      const double vm_cpu = u.cpu_cores / dst.cores;
      const double vm_io = u.io_bps / dst.disk_bw;
      const double vm_llc = u.llc_rate / lnorm;
      const double h_cpu = dst.cpu_cores_used / dst.cores;
      const double h_io = dst.io_bps / dst.disk_bw;
      const double h_llc = dst.llc_rate / lnorm;
      const double overlap = vm_cpu * h_cpu + vm_io * h_io + vm_llc * h_llc;
      const double load = h_cpu + h_io + h_llc;
      return -overlap - 1e-3 * load;
    }
  }
  return 0.0;
}

double MigrationPolicy::score_destination(const virt::VmConfig& shape,
                                          const std::string& src_host,
                                          const std::string& dst_host) {
  // Escalations run in earlier barrier hooks of the same interval; the
  // refresh is idempotent per (time, registry version), so ranking several
  // candidate hosts for one VM folds the cluster state exactly once.
  view_.refresh(cloud_.engine().now());
  const std::size_t di = view_.index_of(dst_host);
  if (di == ClusterView::npos) return 0.0;
  const std::size_t si = view_.index_of(src_host);
  const VmUsage* u = si == ClusterView::npos ? nullptr : view_.find_vm(si, shape.id);
  if (u != nullptr) return score(*u, view_.host(di));
  VmUsage synth;  // Not resident (just booted): shape only, zero usage.
  synth.vm_id = shape.id;
  synth.vcpus = shape.vcpus;
  synth.memory = shape.memory;
  synth.priority = shape.priority;
  return score(synth, view_.host(di));
}

void MigrationPolicy::on_migration(const cloud::MigrationEvent& ev) {
  const sim::SimTime now = cloud_.engine().now();
  const auto stamp = [&](const std::string& host) {
    const std::size_t i = view_.index_of(host);
    if (i != ClusterView::npos) host_last_migration_s_[i] = now.seconds();
  };
  switch (ev.phase) {
    case cloud::MigrationPhase::kStarted:
      // Timed model: copy traffic starts now; both ends enter cooldown.
      stamp(ev.src);
      stamp(ev.dst);
      break;
    case cloud::MigrationPhase::kDeparting:
      break;
    case cloud::MigrationPhase::kArrived: {
      // ANY arrival (policy move or §IV-D escalation) restarts the dwell
      // clock and the endpoint cooldowns.
      VmState& st = *vm_state_.try_emplace(ev.vm_id).first;
      st.placed_known = true;
      st.placed_at = now;
      if (st.policy_in_flight) {
        st.policy_in_flight = false;
        --in_flight_;
      }
      stamp(ev.src);
      stamp(ev.dst);
      break;
    }
    case cloud::MigrationPhase::kAborted: {
      VmState* st = vm_state_.find(ev.vm_id);
      if (st != nullptr && st->policy_in_flight) {
        st->policy_in_flight = false;
        --in_flight_;
        ++aborted_;
        if (sink_ != nullptr) sink_->bump_counter(source_, "policy_migrations_aborted");
      }
      break;
    }
  }
}

}  // namespace perfcloud::policy
