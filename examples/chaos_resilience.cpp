// Chaos-resilience experiment: the same noisy-neighbour scenario twice —
// once healthy, once under a six-fault chaos schedule — and a scorecard of
// what the faults cost.
//
// A 12-worker virtual Hadoop cluster on 4 hosts runs three jobs while a fio
// and a STREAM antagonist attack two hosts. The chaos run layers on top:
//
//   t= 80s  disk degrade       host-2 serves at 50 % throughput for 150 s
//   t=100s  monitor blackout   host-0's monitor goes dark for 40 s
//   t=100s  cap-command loss   host-0 drops 50 % of actuations for 300 s
//   t=120s  VM stall           one worker on host-2 freezes for 40 s
//   t=123s  host crash         host-3 dies for 250 s; its workers re-place
//   t=200s  task failures      attempts fail at 5e-4/s for 300 s
//
// Both runs are scored with exp::chaos_report: detection latency,
// identification latency/precision/recall against the ground-truth
// antagonist set, and the job-level summary. The interesting outputs are
// the deltas — how much later detection fires through a blackout, how much
// JCT the crash + stall + failures cost, and that every job still
// completes (exit status 1 if not).
//
//   $ ./chaos_resilience [outdir [sync|async]]
//
// With `outdir`, the chaos run streams its trace/events through an
// EventSink into <outdir>/chaos_trace.csv and <outdir>/chaos_events.jsonl
// (async writer by default; "sync" forces inline writes). scripts/check.sh
// diffs stdout and these files across shard counts and emission modes.
#include <algorithm>
#include <filesystem>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "exp/chaos.hpp"
#include "exp/cluster.hpp"
#include "exp/report.hpp"
#include "faults/fault_injector.hpp"
#include "faults/fault_plan.hpp"
#include "workloads/benchmarks.hpp"

using namespace perfcloud;

namespace {

struct ScenarioResult {
  exp::ChaosReport report;
  std::vector<double> jcts;        // per submitted job; -1 = incomplete
  double final_time_s = 0.0;
  int faults_injected = 0;
  int faults_recovered = 0;
  int faults_failed = 0;
  int crash_lost_attempts = 0;
  long cap_commands_dropped = 0;
};

/// One full run of the scenario. `plan` null = healthy baseline. `sink`
/// non-null = chaos run streams through it (the determinism-gate output).
ScenarioResult run_scenario(const faults::FaultPlan* plan, exp::EventSink* sink) {
  exp::ClusterParams params;
  params.hosts = 4;
  params.workers = 12;
  params.seed = 7311;
  exp::Cluster cluster = exp::make_cluster(params);

  const int fio = exp::add_fio(
      cluster, "host-0", wl::FioRandomRead::Params{.duration_s = 400.0, .start_s = 60.0});
  const int stream = exp::add_stream(
      cluster, "host-1",
      wl::StreamBenchmark::Params{.threads = 8, .duration_s = 400.0, .start_s = 90.0});

  const core::PerfCloudConfig cfg;
  exp::enable_perfcloud(cluster, cfg);
  if (sink != nullptr) exp::attach_sink(cluster, *sink);

  // The stall victim is resolved from the cluster, not hard-coded: the
  // first worker placed on host-2.
  faults::FaultPlan resolved;
  std::unique_ptr<faults::FaultInjector> injector;
  if (plan != nullptr) {
    resolved = *plan;
    for (const cloud::VmRecord& r : cluster.cloud->vms_on_host("host-2")) {
      if (std::find(cluster.worker_vm_ids.begin(), cluster.worker_vm_ids.end(), r.id) !=
          cluster.worker_vm_ids.end()) {
        resolved.vm_stall(r.id, 120.0, 40.0);
        break;
      }
    }
    injector = std::make_unique<faults::FaultInjector>(*cluster.cloud, resolved);
    exp::attach_faults(cluster, *injector, sink);
  }

  std::vector<wl::JobId> ids;
  const std::vector<std::pair<std::string, double>> submissions = {
      {"terasort", 0.0}, {"wordcount", 120.0}, {"kmeans", 240.0}};
  for (const auto& [name, at] : submissions) {
    const wl::JobSpec spec = wl::make_benchmark(name, 24);
    cluster.engine->at(sim::SimTime(at), [&cluster, &ids, spec](sim::SimTime) {
      ids.push_back(cluster.framework->submit(spec));
    });
  }
  cluster.engine->run_while(
      [&] { return ids.size() < submissions.size() || !cluster.framework->all_done(); },
      sim::SimTime(6000.0));

  ScenarioResult result;
  result.report = exp::chaos_report(cluster, cfg, {fio, stream});
  result.final_time_s = cluster.engine->now().seconds();
  for (const wl::JobId id : ids) {
    const wl::Job* job = cluster.framework->find_job(id);
    result.jcts.push_back(job != nullptr && job->completed() ? job->jct() : -1.0);
  }
  result.crash_lost_attempts = cluster.framework->crash_lost_attempts();
  for (const auto& nm : cluster.node_managers) {
    result.cap_commands_dropped += nm->cap_commands_dropped();
  }
  if (injector != nullptr) {
    result.faults_injected = injector->injected();
    result.faults_recovered = injector->recovered();
    result.faults_failed = injector->failed();
  }
  if (sink != nullptr) sink->close();
  return result;
}

void print_result(const char* title, const ScenarioResult& r) {
  std::cout << "--- " << title << " ---\n";
  exp::print(std::cout, r.report);
  exp::print(std::cout, r.report.summary);
  std::cout << "jcts:";
  for (const double jct : r.jcts) {
    std::cout << " " << (jct < 0.0 ? std::string("DNF") : exp::fmt(jct, 1));
  }
  std::cout << "\nfinal sim time: " << exp::fmt(r.final_time_s, 1) << " s\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::unique_ptr<exp::EventSink> sink;
  if (argc > 1) {
    const std::string outdir = argv[1];
    std::filesystem::create_directories(outdir);
    const bool async = !(argc > 2 && std::string(argv[2]) == "sync");
    sink = std::make_unique<exp::EventSink>(
        exp::EventSink::Options{.trace_csv_path = outdir + "/chaos_trace.csv",
                                .events_jsonl_path = outdir + "/chaos_events.jsonl",
                                .async = async});
  }

  faults::FaultPlan plan(0xc4a05);
  plan.disk_degrade("host-2", 80.0, 150.0, 0.5)
      .monitor_blackout("host-0", 100.0, 40.0)
      .cap_command_loss("host-0", 100.0, 300.0, 0.5)
      .host_crash("host-3", 123.0, 250.0)
      .task_failure(5.0e-4, 200.0, 300.0);
  // (the VM stall is appended inside run_scenario once the victim id exists)

  const ScenarioResult baseline = run_scenario(nullptr, nullptr);
  const ScenarioResult chaos = run_scenario(&plan, sink.get());

  print_result("baseline (no faults)", baseline);
  std::cout << "\n";
  print_result("chaos (6-fault schedule)", chaos);

  std::cout << "\n--- chaos vs baseline ---\n";
  std::cout << "faults: injected " << chaos.faults_injected << ", recovered "
            << chaos.faults_recovered << ", failed " << chaos.faults_failed << "\n";
  std::cout << "attempts lost to host crash: " << chaos.crash_lost_attempts << "\n";
  std::cout << "cap commands dropped:        " << chaos.cap_commands_dropped << "\n";
  for (std::size_t i = 0; i < baseline.jcts.size(); ++i) {
    const double b = baseline.jcts[i];
    const double c = i < chaos.jcts.size() ? chaos.jcts[i] : -1.0;
    std::cout << "job " << i << " jct: " << exp::fmt(b, 1) << " -> "
              << (c < 0.0 ? std::string("DNF") : exp::fmt(c, 1));
    if (b > 0.0 && c > 0.0) {
      std::cout << "  (" << exp::fmt(100.0 * (c - b) / b, 1) << " % degradation)";
    }
    std::cout << "\n";
  }

  // The resilience claim itself: every job completes despite the faults.
  const bool all_done =
      !chaos.jcts.empty() &&
      std::all_of(chaos.jcts.begin(), chaos.jcts.end(), [](double j) { return j > 0.0; });
  if (!all_done) {
    std::cout << "\nFAIL: not every job completed under the chaos schedule\n";
    return 1;
  }
  std::cout << "\nAll jobs completed under the chaos schedule.\n";
  return 0;
}
