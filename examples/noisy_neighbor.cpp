// Noisy-neighbour walkthrough: watch PerfCloud's detection, identification,
// and control pipeline operate step by step.
//
// A 10-worker virtual Hadoop cluster runs a Spark logistic regression while
// two antagonists move in at t=20s: a fio random-read VM and a 16-thread
// STREAM VM. A sysbench-cpu VM is also present as an innocent bystander.
// The example prints, per 5-second control interval, the two deviation
// signals, each suspect's correlation, and the caps PerfCloud applies —
// then shows the bystander untouched and the antagonists' caps recovering
// after the job completes.
//
//   $ ./noisy_neighbor
#include <iomanip>
#include <iostream>

#include "exp/cluster.hpp"
#include "exp/report.hpp"
#include "workloads/benchmarks.hpp"

using namespace perfcloud;

int main() {
  exp::ClusterParams params;
  params.workers = 10;
  params.seed = 2026;
  exp::Cluster cluster = exp::make_cluster(params);

  const int fio = exp::add_fio(cluster, "host-0", wl::FioRandomRead::Params{.start_s = 20.0});
  const int stream = exp::add_stream(
      cluster, "host-0", wl::StreamBenchmark::Params{.threads = 16, .start_s = 20.0});
  const int bystander = exp::add_sysbench_cpu(cluster, "host-0");

  exp::enable_perfcloud(cluster, core::PerfCloudConfig{});
  core::NodeManager& nm = cluster.node_manager(0);

  const wl::JobId job = cluster.framework->submit(wl::make_spark_logreg(30, 8));

  std::cout << "t(s)   io-dev  cpi-dev  corr(fio)  corr(stream)  cap(fio)  cap(stream)\n";
  std::cout << std::string(74, '-') << "\n";
  while (true) {
    exp::run_for(cluster, 5.0);
    const wl::Job* j = cluster.framework->find_job(job);
    const auto& io_sig = nm.io_signal("hadoop");
    const auto& cpi_sig = nm.cpi_signal("hadoop");
    double corr_fio = 0.0;
    double corr_stream = 0.0;
    for (const core::SuspectScore& s : nm.last_io_scores()) {
      if (s.vm_id == fio) corr_fio = s.correlation;
    }
    for (const core::SuspectScore& s : nm.last_cpu_scores()) {
      if (s.vm_id == stream) corr_stream = s.correlation;
    }
    const auto cap_of = [](const sim::TimeSeries& caps) {
      return caps.empty() ? std::string("-") : exp::fmt(caps.value(caps.size() - 1), 2);
    };
    std::cout << std::setw(4) << exp::fmt(cluster.engine->now().seconds(), 0) << "  "
              << std::setw(7) << exp::fmt(io_sig.empty() ? 0.0 : io_sig.value(io_sig.size() - 1), 1)
              << "  " << std::setw(7)
              << exp::fmt(cpi_sig.empty() ? 0.0 : cpi_sig.value(cpi_sig.size() - 1), 2) << "  "
              << std::setw(9) << exp::fmt(corr_fio, 2) << "  " << std::setw(12)
              << exp::fmt(corr_stream, 2) << "  " << std::setw(8) << cap_of(nm.io_cap_series(fio))
              << "  " << std::setw(8) << cap_of(nm.cpu_cap_series(stream)) << "\n";
    if (j->finished()) break;
  }

  const wl::Job* j = cluster.framework->find_job(job);
  std::cout << "\nSpark logreg finished in " << exp::fmt(j->jct(), 0) << " s.\n";

  // The bystander was never touched.
  const virt::Cgroup& cg = cluster.vm(bystander).cgroup();
  std::cout << "bystander sysbench-cpu: cpu quota "
            << (cg.cpu_quota_cores() == hw::kNoCap ? "uncapped" : "CAPPED") << ", blkio throttle "
            << (cg.blkio_throttle_bps() == hw::kNoCap ? "uncapped" : "CAPPED") << "\n";

  // Let the cubic probe and lift the caps now that contention is gone.
  exp::run_for(cluster, 120.0);
  std::cout << "120 s later: fio throttle "
            << (cluster.vm(fio).cgroup().blkio_throttle_bps() == hw::kNoCap ? "lifted"
                                                                            : "still active")
            << ", STREAM quota "
            << (cluster.vm(stream).cgroup().cpu_quota_cores() == hw::kNoCap ? "lifted"
                                                                            : "still active")
            << "\n";
  return 0;
}
