// Straggler-mitigation shoot-out: LATE vs Dolly vs PerfCloud on the same
// contended multi-host cluster.
//
// A 30-worker / 3-host cluster runs a batch of MapReduce and Spark jobs
// while antagonists occupy one host. Application-level mitigations (LATE's
// speculative copies, Dolly's job clones) pay for straggler tolerance with
// duplicated work; PerfCloud instead removes the interference at its source.
// The example prints mean job completion time and the utilization-efficiency
// cost of each approach.
//
//   $ ./straggler_mitigation
#include <iostream>
#include <memory>

#include "baselines/dolly.hpp"
#include "baselines/late.hpp"
#include "baselines/scheme.hpp"
#include "exp/cluster.hpp"
#include "exp/report.hpp"
#include "workloads/benchmarks.hpp"

using namespace perfcloud;

namespace {

struct Result {
  double mean_jct = 0.0;
  double efficiency = 1.0;
};

Result run(base::Scheme scheme) {
  exp::ClusterParams params;
  params.hosts = 3;
  params.workers = 30;
  params.seed = 7;
  exp::Cluster c = exp::make_cluster(params);

  // Antagonists camp on host-1.
  exp::add_fio(c, "host-1", wl::FioRandomRead::Params{.start_s = 10.0});
  exp::add_stream(c, "host-1", wl::StreamBenchmark::Params{.threads = 16, .start_s = 10.0});

  if (scheme == base::Scheme::kLate) {
    c.framework->set_speculator(
        std::make_unique<base::LateSpeculator>(base::LateSpeculator::Params{}, 60));
  }
  if (scheme == base::Scheme::kPerfCloud) {
    exp::enable_perfcloud(c, core::PerfCloudConfig{});
  }

  const std::vector<wl::JobSpec> batch = {
      wl::make_terasort(12, 12),
      wl::make_wordcount(12, 6),
      wl::make_spark_logreg(12, 6),
      wl::make_spark_pagerank(12, 4),
  };

  double total_jct = 0.0;
  for (const wl::JobSpec& spec : batch) {
    if (base::dolly_clones(scheme) > 1) {
      base::DollySubmitter dolly(*c.framework, base::dolly_clones(scheme));
      const auto ids = dolly.submit(spec);
      exp::run_until_done(c, 36000.0);
      total_jct += c.framework->group_jct(c.framework->find_job(ids[0])->clone_group);
    } else {
      total_jct += exp::run_job(c, spec);
    }
  }
  return Result{total_jct / static_cast<double>(batch.size()),
                c.framework->utilization_efficiency()};
}

}  // namespace

int main() {
  exp::Table t({"scheme", "mean JCT (s)", "utilization efficiency"});
  for (const base::Scheme s : {base::Scheme::kDefault, base::Scheme::kLate,
                               base::Scheme::kDolly2, base::Scheme::kDolly4,
                               base::Scheme::kPerfCloud}) {
    const Result r = run(s);
    t.add_row(base::to_string(s), {r.mean_jct, r.efficiency}, 3);
  }
  t.print(std::cout);
  std::cout << "\nLATE and Dolly tolerate stragglers by duplicating work (efficiency\n"
               "< 1); PerfCloud throttles the antagonists instead, so every task\n"
               "it runs is useful work.\n";
  return 0;
}
