// perfcloud_sim — scenario-driven command-line front end to the simulator.
//
// Compose a cluster, a workload, antagonists, and a mitigation scheme from
// the command line; get job completion times, deviation-signal stats, and
// (optionally) a CSV trace for plotting.
//
// Examples:
//   perfcloud_sim                                   # defaults: quickstart-ish
//   perfcloud_sim --benchmark logreg --size 30 --stream 1 --scheme perfcloud
//   perfcloud_sim --hosts 4 --workers 24 --fio 2 --scheme dolly-4 --runs 5
//   perfcloud_sim --benchmark terasort --fio 1 --scheme perfcloud
//                 --csv /tmp/trace.csv --seed 7
#include <cstdlib>
#include <iostream>
#include <map>
#include <memory>
#include <string>

#include "baselines/dolly.hpp"
#include "baselines/late.hpp"
#include "baselines/scheme.hpp"
#include "exp/cluster.hpp"
#include "exp/report.hpp"
#include "exp/summary.hpp"
#include "exp/trace.hpp"
#include "sim/stats.hpp"
#include "workloads/benchmarks.hpp"

using namespace perfcloud;

namespace {

struct Options {
  int hosts = 1;
  int workers = 10;
  std::string benchmark = "terasort";
  int size = 10;
  int fio = 0;
  int stream = 0;
  int oltp = 0;
  std::string scheme = "default";
  int runs = 1;
  std::uint64_t seed = 42;
  bool shm = false;
  int sockets = 1;
  std::string csv;
  double antagonist_start = 10.0;
};

[[noreturn]] void usage(const char* argv0, int exit_code) {
  std::cout
      << "usage: " << argv0 << " [options]\n\n"
      << "cluster:\n"
      << "  --hosts N            physical hosts (default 1)\n"
      << "  --workers N          worker VMs, spread over hosts (default 10)\n"
      << "  --sockets N          NUMA sockets per host (default 1)\n"
      << "  --shm                enable shared-memory shuffle between colocated workers\n"
      << "workload:\n"
      << "  --benchmark NAME     one of:";
  for (const std::string& n : wl::extended_benchmark_names()) std::cout << ' ' << n;
  std::cout
      << " (default terasort)\n"
      << "  --size N             maps / tasks-per-stage (default 10)\n"
      << "  --runs N             repeat the job N times, report stats (default 1)\n"
      << "antagonists (all start at --antagonist-start, default 10 s):\n"
      << "  --fio N              N fio random-read VMs on host-0\n"
      << "  --stream N           N 16-thread STREAM VMs on host-0\n"
      << "  --oltp N             N sysbench-oltp VMs on host-0\n"
      << "  --antagonist-start S arrival time in seconds\n"
      << "mitigation:\n"
      << "  --scheme S           default | late | dolly-2 | dolly-4 | dolly-6 | perfcloud\n"
      << "output:\n"
      << "  --seed N             RNG seed (default 42)\n"
      << "  --csv PATH           dump deviation-signal/cap traces to CSV\n"
      << "  --help               this text\n";
  std::exit(exit_code);
}

Options parse(int argc, char** argv) {
  Options o;
  const auto need_value = [&](int& i) -> std::string {
    if (i + 1 >= argc) {
      std::cerr << "missing value for " << argv[i] << "\n";
      usage(argv[0], 2);
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") usage(argv[0], 0);
    else if (arg == "--hosts") o.hosts = std::stoi(need_value(i));
    else if (arg == "--workers") o.workers = std::stoi(need_value(i));
    else if (arg == "--sockets") o.sockets = std::stoi(need_value(i));
    else if (arg == "--shm") o.shm = true;
    else if (arg == "--benchmark") o.benchmark = need_value(i);
    else if (arg == "--size") o.size = std::stoi(need_value(i));
    else if (arg == "--runs") o.runs = std::stoi(need_value(i));
    else if (arg == "--fio") o.fio = std::stoi(need_value(i));
    else if (arg == "--stream") o.stream = std::stoi(need_value(i));
    else if (arg == "--oltp") o.oltp = std::stoi(need_value(i));
    else if (arg == "--antagonist-start") o.antagonist_start = std::stod(need_value(i));
    else if (arg == "--scheme") o.scheme = need_value(i);
    else if (arg == "--seed") o.seed = std::stoull(need_value(i));
    else if (arg == "--csv") o.csv = need_value(i);
    else {
      std::cerr << "unknown option " << arg << "\n";
      usage(argv[0], 2);
    }
  }
  return o;
}

double run_once(const Options& o, std::uint64_t seed, bool dump_csv) {
  exp::ClusterParams p;
  p.hosts = o.hosts;
  p.workers = o.workers;
  p.seed = seed;
  p.server.sockets = o.sockets;
  exp::Cluster c = exp::make_cluster(p);
  c.framework->set_shared_memory_shuffle(o.shm);

  std::vector<int> fio_vms;
  for (int i = 0; i < o.fio; ++i) {
    fio_vms.push_back(
        exp::add_fio(c, c.hosts[0], wl::FioRandomRead::Params{.start_s = o.antagonist_start}));
  }
  std::vector<int> stream_vms;
  for (int i = 0; i < o.stream; ++i) {
    stream_vms.push_back(exp::add_stream(
        c, c.hosts[0],
        wl::StreamBenchmark::Params{.threads = 16, .start_s = o.antagonist_start}));
  }
  for (int i = 0; i < o.oltp; ++i) {
    exp::add_oltp(c, c.hosts[0], wl::SysbenchOltp::Params{.start_s = o.antagonist_start});
  }

  if (o.scheme == "late") {
    c.framework->set_speculator(std::make_unique<base::LateSpeculator>(
        base::LateSpeculator::Params{}, o.workers * 2));
  } else if (o.scheme == "perfcloud") {
    exp::enable_perfcloud(c, core::PerfCloudConfig{});
  } else if (o.scheme.rfind("dolly-", 0) == 0) {
    // handled at submission below
  } else if (o.scheme != "default") {
    std::cerr << "unknown scheme " << o.scheme << "\n";
    std::exit(2);
  }

  const wl::JobSpec job = wl::make_benchmark(o.benchmark, o.size);
  double jct = 0.0;
  if (o.scheme.rfind("dolly-", 0) == 0) {
    const int clones = std::stoi(o.scheme.substr(6));
    const auto ids = c.framework->submit_cloned(job, clones);
    exp::run_until_done(c, 36000.0);
    jct = c.framework->group_jct(c.framework->find_job(ids[0])->clone_group);
  } else {
    jct = exp::run_job(c, job);
  }

  if (dump_csv) {
    exp::print(std::cout, exp::summarize(*c.framework));
  }
  if (dump_csv && !o.csv.empty() && o.scheme == "perfcloud") {
    exp::TraceRecorder rec;
    rec.add("iowait_dev", c.node_manager(0).io_signal("hadoop"));
    rec.add("cpi_dev", c.node_manager(0).cpi_signal("hadoop"));
    for (const int vm : fio_vms) {
      rec.add("io_cap_vm" + std::to_string(vm), c.node_manager(0).io_cap_series(vm));
    }
    for (const int vm : stream_vms) {
      rec.add("cpu_cap_vm" + std::to_string(vm), c.node_manager(0).cpu_cap_series(vm));
    }
    rec.write_csv(o.csv);
    std::cout << "trace written to " << o.csv << "\n";
  }
  return jct;
}

}  // namespace

int main(int argc, char** argv) {
  const Options o = parse(argc, argv);

  std::cout << "cluster: " << o.hosts << " host(s), " << o.workers << " workers, " << o.sockets
            << " socket(s)" << (o.shm ? ", shared-memory shuffle" : "") << "\n"
            << "workload: " << o.benchmark << " size " << o.size << ", scheme " << o.scheme
            << ", antagonists: fio x" << o.fio << ", stream x" << o.stream << ", oltp x"
            << o.oltp << "\n\n";

  std::vector<double> jcts;
  for (int r = 0; r < o.runs; ++r) {
    const double jct = run_once(o, o.seed + static_cast<std::uint64_t>(r), r == 0);
    jcts.push_back(jct);
    std::cout << "run " << (r + 1) << ": JCT " << exp::fmt(jct, 1) << " s\n";
  }
  if (o.runs > 1) {
    const sim::BoxStats b = sim::box_stats_of(jcts);
    std::cout << "\nJCT over " << o.runs << " runs: median " << exp::fmt(b.median, 1) << " s, IQR ["
              << exp::fmt(b.q1, 1) << ", " << exp::fmt(b.q3, 1) << "], min/max "
              << exp::fmt(b.min, 1) << "/" << exp::fmt(b.max, 1) << " s\n";
  }
  return 0;
}
