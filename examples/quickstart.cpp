// Quickstart: the PerfCloud story in one file.
//
// Builds a single-host virtual Hadoop cluster, runs a MapReduce terasort
// job three ways — alone, with an I/O-hungry neighbour, and with the same
// neighbour but PerfCloud protecting the cluster — and prints the job
// completion times plus what happened to the neighbour.
//
//   $ ./quickstart
#include <iostream>

#include "exp/cluster.hpp"
#include "exp/report.hpp"
#include "workloads/benchmarks.hpp"

using namespace perfcloud;

namespace {

exp::Cluster make_hadoop_cluster(std::uint64_t seed) {
  exp::ClusterParams p;
  p.hosts = 1;
  p.workers = 10;  // the paper's 12-node cluster: 10 slaves + 2 masters
  p.seed = seed;
  return exp::make_cluster(p);
}

}  // namespace

int main() {
  const wl::JobSpec job = wl::make_terasort(/*maps=*/10, /*reduces=*/10);

  // 1. Alone on the host.
  exp::Cluster alone = make_hadoop_cluster(1);
  const double jct_alone = exp::run_job(alone, job);

  // 2. A low-priority VM running fio random reads moves in.
  exp::Cluster contended = make_hadoop_cluster(2);
  exp::add_fio(contended, contended.hosts[0], wl::FioRandomRead::Params{.start_s = 10.0});
  const double jct_contended = exp::run_job(contended, job);

  // 3. Same neighbour, but PerfCloud runs on the host.
  exp::Cluster protected_ = make_hadoop_cluster(3);
  const int fio_vm = exp::add_fio(protected_, protected_.hosts[0], wl::FioRandomRead::Params{.start_s = 10.0});
  exp::enable_perfcloud(protected_, core::PerfCloudConfig{});
  const double jct_protected = exp::run_job(protected_, job);
  const auto* fio =
      dynamic_cast<const wl::FioRandomRead*>(protected_.vm(fio_vm).guest());

  exp::Table t({"scenario", "terasort JCT (s)", "normalized"});
  t.add_row("alone", {jct_alone, 1.0});
  t.add_row("with fio neighbour", {jct_contended, jct_contended / jct_alone});
  t.add_row("with fio + PerfCloud", {jct_protected, jct_protected / jct_alone});
  t.print(std::cout);

  std::cout << "\nfio achieved " << exp::fmt(fio->achieved_iops(), 1)
            << " IOPS under PerfCloud throttling.\n";
  return 0;
}
