#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "baselines/aimd.hpp"
#include "core/cubic.hpp"
#include "exp/trace.hpp"

namespace perfcloud::exp {
namespace {

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream f(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(f, line)) lines.push_back(line);
  return lines;
}

TEST(TraceRecorder, WritesAlignedCsv) {
  sim::TimeSeries a("a");
  a.add(sim::SimTime(1.0), 10.0);
  a.add(sim::SimTime(2.0), 20.0);
  sim::TimeSeries b("b");
  b.add(sim::SimTime(2.0), 200.0);
  b.add(sim::SimTime(3.0), 300.0);

  TraceRecorder rec;
  rec.add("alpha", a);
  rec.add("beta", b);
  EXPECT_EQ(rec.columns(), 2u);
  const std::string path = "/tmp/perfcloud_trace_test.csv";
  rec.write_csv(path);

  const auto lines = read_lines(path);
  ASSERT_EQ(lines.size(), 4u);
  EXPECT_EQ(lines[0], "t,alpha,beta");
  EXPECT_EQ(lines[1], "1,10,");      // b missing at t=1
  EXPECT_EQ(lines[2], "2,20,200");   // both present
  EXPECT_EQ(lines[3], "3,,300");     // a missing at t=3
}

TEST(TraceRecorder, NearDuplicateTimestampsCollapseToOneRow) {
  // Two columns sampled at "the same" instant but drifted apart by
  // accumulated FP error in their periodic schedules: they must land in ONE
  // grid row, not two rows with spuriously empty cells.
  sim::TimeSeries a("a");
  a.add(sim::SimTime(1.0), 10.0);
  a.add(sim::SimTime(2.0), 20.0);
  sim::TimeSeries b("b");
  b.add(sim::SimTime(1.0 + 2e-7), 100.0);
  b.add(sim::SimTime(2.0 + 5e-7), 200.0);

  TraceRecorder rec;
  rec.add("alpha", a);
  rec.add("beta", b);
  const std::string path = "/tmp/perfcloud_trace_neardup.csv";
  rec.write_csv(path);

  const auto lines = read_lines(path);
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0], "t,alpha,beta");
  EXPECT_EQ(lines[1], "1,10,100");
  EXPECT_EQ(lines[2], "2,20,200");
}

TEST(TraceRecorder, WithinToleranceDuplicateInOneSeriesLastWins) {
  sim::TimeSeries a("a");
  a.add(sim::SimTime(1.0), 5.0);
  a.add(sim::SimTime(1.0 + 2e-7), 7.0);

  TraceRecorder rec;
  rec.add("alpha", a);
  const std::string path = "/tmp/perfcloud_trace_dupcol.csv";
  rec.write_csv(path);

  const auto lines = read_lines(path);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[1], "1,7");
}

TEST(TraceRecorder, EmptyRecorderWritesHeaderOnly) {
  TraceRecorder rec;
  const std::string path = "/tmp/perfcloud_trace_empty.csv";
  rec.write_csv(path);
  const auto lines = read_lines(path);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], "t");
}

TEST(TraceRecorder, BadPathThrows) {
  TraceRecorder rec;
  EXPECT_THROW(rec.write_csv("/nonexistent-dir/x.csv"), std::runtime_error);
}

}  // namespace

// --- AIMD ablation controller ---
namespace {

TEST(Aimd, StartsAtBaseline) {
  base::AimdController c({}, 2.0e6);
  EXPECT_DOUBLE_EQ(c.cap(), 1.0);
  EXPECT_DOUBLE_EQ(c.cap_absolute(), 2.0e6);
}

TEST(Aimd, MultiplicativeDecreaseAdditiveIncrease) {
  base::AimdController c(base::AimdController::Params{.beta = 0.8, .alpha = 0.1}, 1.0);
  EXPECT_NEAR(c.step(true), 0.2, 1e-12);
  EXPECT_NEAR(c.step(false), 0.3, 1e-12);
  EXPECT_NEAR(c.step(false), 0.4, 1e-12);
}

TEST(Aimd, BottomsOutAtMinCap) {
  base::AimdController c(base::AimdController::Params{.min_cap_fraction = 0.05}, 1.0);
  for (int i = 0; i < 10; ++i) c.step(true);
  EXPECT_DOUBLE_EQ(c.cap(), 0.05);
}

TEST(Aimd, LiftsAfterEnoughIncrease) {
  base::AimdController c(base::AimdController::Params{.alpha = 0.5, .cap_lift_fraction = 2.0}, 1.0);
  c.step(false);
  EXPECT_FALSE(c.lifted());
  c.step(false);
  EXPECT_TRUE(c.lifted());
}

TEST(Aimd, LinearRecoveryIsSlowerThanCubicProbing) {
  // After a decrease, CUBIC overtakes AIMD's linear ramp well before the
  // lift point — the probing-region advantage the ablation bench measures.
  core::PerfCloudConfig cfg;
  core::CubicController cubic(cfg, 1.0);
  base::AimdController aimd(base::AimdController::Params{}, 1.0);
  cubic.step(true);
  aimd.step(true);
  double cubic_cap = 0.0;
  double aimd_cap = 0.0;
  for (int i = 0; i < 10; ++i) {
    cubic_cap = cubic.step(false);
    aimd_cap = aimd.step(false);
  }
  EXPECT_GT(cubic_cap, aimd_cap);
}

}  // namespace
}  // namespace perfcloud::exp
