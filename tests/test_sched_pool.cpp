// ShardPool edge cases: batches smaller than the pool, empty batches,
// custom claim orders, and exceptions thrown inside tasks — under both claim
// disciplines. A deadlocked barrier hangs these tests, so completing at all
// is part of what they assert.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "sim/shard_pool.hpp"

namespace perfcloud::sim {
namespace {

constexpr ShardSchedule kBoth[] = {ShardSchedule::kStatic, ShardSchedule::kWorkStealing};

TEST(ShardPool, MoreShardsThanTasksRunsEachTaskExactlyOnce) {
  ShardPool pool(8);
  for (const ShardSchedule sched : kBoth) {
    std::vector<std::atomic<int>> hits(3);
    pool.run(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); }, sched);
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1) << to_string(sched);
  }
}

TEST(ShardPool, ZeroTasksReturnsImmediately) {
  ShardPool pool(4);
  for (const ShardSchedule sched : kBoth) {
    bool ran = false;
    pool.run(0, [&](std::size_t) { ran = true; }, sched);
    EXPECT_FALSE(ran);
  }
  // The pool is still usable after an empty batch.
  std::atomic<int> count{0};
  pool.run(5, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 5);
}

TEST(ShardPool, LargeBatchCoversEveryIndexOnce) {
  ShardPool pool(4);
  for (const ShardSchedule sched : kBoth) {
    // One slot per index: exactly-once execution shows up as all-ones.
    std::vector<std::atomic<int>> hits(1000);
    pool.run(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); }, sched);
    int total = 0;
    for (const auto& h : hits) {
      EXPECT_EQ(h.load(), 1) << to_string(sched);
      total += h.load();
    }
    EXPECT_EQ(total, 1000);
  }
}

TEST(ShardPool, CustomClaimOrderStillRunsEveryTask) {
  ShardPool pool(4);
  const std::size_t n = 64;
  std::vector<std::uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  std::reverse(order.begin(), order.end());
  std::vector<std::atomic<int>> hits(n);
  pool.run(n, [&](std::size_t i) { hits[i].fetch_add(1); }, ShardSchedule::kWorkStealing,
           &order);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ShardPool, WrongSizedClaimOrderThrows) {
  ShardPool pool(2);
  const std::vector<std::uint32_t> order = {0, 1, 2};
  EXPECT_THROW(
      pool.run(5, [](std::size_t) {}, ShardSchedule::kWorkStealing, &order),
      std::invalid_argument);
}

TEST(ShardPool, TaskExceptionPropagatesWithoutDeadlockingTheBarrier) {
  ShardPool pool(4);
  for (const ShardSchedule sched : kBoth) {
    std::atomic<int> survivors{0};
    EXPECT_THROW(pool.run(
                     16,
                     [&](std::size_t i) {
                       if (i == 3) throw std::runtime_error("task 3 failed");
                       survivors.fetch_add(1);
                     },
                     sched),
                 std::runtime_error);
    // The failing batch still completed: every other task ran, and the pool
    // accepts the next batch (a deadlocked barrier would hang right here).
    EXPECT_EQ(survivors.load(), 15) << to_string(sched);
    std::atomic<int> next{0};
    pool.run(8, [&](std::size_t) { next.fetch_add(1); }, sched);
    EXPECT_EQ(next.load(), 8) << to_string(sched);
  }
}

TEST(ShardPool, SingleShardPoolRunsInline) {
  ShardPool pool(1);
  EXPECT_EQ(pool.shards(), 1u);
  std::vector<std::size_t> seen;
  pool.run(4, [&](std::size_t i) { seen.push_back(i); }, ShardSchedule::kStatic);
  EXPECT_EQ(seen, (std::vector<std::size_t>{0, 1, 2, 3}));
}

}  // namespace
}  // namespace perfcloud::sim
