// Golden-trace gate for the sharded execution mode: a multi-host scenario
// with antagonists, PerfCloud control, and jobs must produce EXACTLY the
// same results — job completion times, deviation-signal series, suspect
// series, cap series, and final simulated time — regardless of how many
// shards execute the per-quantum host sweeps. Sharding may only change
// wall-clock time, never a single output bit.
#include <gtest/gtest.h>

#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "exp/cluster.hpp"
#include "exp/summary.hpp"
#include "workloads/benchmarks.hpp"

namespace perfcloud {
namespace {

/// Everything observable about one run, flattened for exact comparison.
struct RunTrace {
  double final_time_s = 0.0;
  std::vector<double> jcts;
  // (time, value) samples from every inspected series, concatenated in a
  // fixed order. Exact double equality is intentional: the determinism
  // contract is byte-identical, not merely close.
  std::vector<std::pair<double, double>> samples;
  // EventSink output files, byte for byte (empty when no sink was attached).
  std::string trace_csv;
  std::string events_jsonl;

  bool operator==(const RunTrace&) const = default;
};

std::string slurp(const std::string& path) {
  std::ifstream f(path);
  std::ostringstream os;
  os << f.rdbuf();
  return os.str();
}

void append_series(RunTrace& trace, const sim::TimeSeries& s) {
  for (std::size_t i = 0; i < s.size(); ++i) {
    trace.samples.emplace_back(s.time(i).seconds(), s.value(i));
  }
}

/// When `sink_tag` is non-empty, an EventSink (async or sync per
/// `sink_async`) is attached for the whole run and its output files are
/// captured into the returned trace.
RunTrace run_scenario(unsigned shards, const std::string& sink_tag = "",
                      bool sink_async = true,
                      sim::ShardSchedule schedule = sim::ShardSchedule::kWorkStealing) {
  exp::ClusterParams p;
  p.hosts = 4;
  p.workers = 12;
  p.seed = 2024;
  p.shards = shards;
  p.schedule = schedule;
  exp::Cluster c = exp::make_cluster(p);

  // Antagonists on three of the four hosts, overlapping the jobs.
  const int fio = exp::add_fio(
      c, "host-0", wl::FioRandomRead::Params{.duration_s = 300.0, .start_s = 60.0});
  const int stream = exp::add_stream(
      c, "host-1",
      wl::StreamBenchmark::Params{.threads = 8, .duration_s = 300.0, .start_s = 90.0});
  exp::add_oltp(c, "host-2", wl::SysbenchOltp::Params{.duration_s = 200.0, .start_s = 120.0});

  exp::enable_perfcloud(c, core::PerfCloudConfig{});

  std::unique_ptr<exp::EventSink> sink;
  std::string csv_path;
  std::string jsonl_path;
  exp::EventSink::SourceId summary_src = 0;
  if (!sink_tag.empty()) {
    csv_path = "/tmp/perfcloud_shard_sink_" + sink_tag + ".csv";
    jsonl_path = "/tmp/perfcloud_shard_sink_" + sink_tag + ".jsonl";
    sink = std::make_unique<exp::EventSink>(exp::EventSink::Options{
        .trace_csv_path = csv_path, .events_jsonl_path = jsonl_path, .async = sink_async});
    exp::attach_sink(c, *sink);
    summary_src = sink->add_event_source("run");
  }

  std::vector<wl::JobId> ids;
  const std::vector<std::pair<std::string, double>> submissions = {
      {"terasort", 0.0}, {"wordcount", 120.0}, {"kmeans", 240.0}};
  for (const auto& [name, at] : submissions) {
    const wl::JobSpec spec = wl::make_benchmark(name, 8);
    c.engine->at(sim::SimTime(at),
                 [&c, &ids, spec](sim::SimTime) { ids.push_back(c.framework->submit(spec)); });
  }
  c.engine->run_while(
      [&] { return ids.size() < submissions.size() || !c.framework->all_done(); },
      sim::SimTime(4000.0));

  RunTrace trace;
  trace.final_time_s = c.engine->now().seconds();
  for (const wl::JobId id : ids) {
    const wl::Job* job = c.framework->find_job(id);
    trace.jcts.push_back(job != nullptr && job->completed() ? job->jct() : -1.0);
  }
  for (std::size_t h = 0; h < c.hosts.size(); ++h) {
    core::NodeManager& nm = c.node_manager(h);
    append_series(trace, nm.io_signal(p.app_id));
    append_series(trace, nm.cpi_signal(p.app_id));
    append_series(trace, nm.monitor().io_throughput_series(fio));
    append_series(trace, nm.monitor().llc_miss_series(stream));
    append_series(trace, nm.io_cap_series(fio));
    append_series(trace, nm.cpu_cap_series(stream));
  }
  if (sink != nullptr) {
    exp::record(*sink, summary_src, exp::summarize(*c.framework));
    sink->close();
    trace.trace_csv = slurp(csv_path);
    trace.events_jsonl = slurp(jsonl_path);
  }
  return trace;
}

TEST(ShardDeterminism, TraceIsIdenticalForAnyShardCount) {
  const RunTrace sequential = run_scenario(1);

  // The scenario must actually exercise the machinery it gates on: jobs
  // completed and the monitors produced signal samples.
  for (const double jct : sequential.jcts) EXPECT_GT(jct, 0.0);
  EXPECT_FALSE(sequential.samples.empty());

  const RunTrace sharded = run_scenario(4);
  EXPECT_EQ(sequential, sharded);

  // Run-to-run determinism of the parallel path itself.
  EXPECT_EQ(run_scenario(4), sharded);
}

/// The same golden-trace gate across claim disciplines: the static baseline
/// partition and the cost-sorted work-stealing scheduler may only differ in
/// wall-clock time, never in a single output bit — the EWMA cost model and
/// its rebalance epochs feed claim order and nothing else.
TEST(ShardDeterminism, TraceIsIdenticalAcrossSchedulers) {
  const RunTrace ws = run_scenario(4, "", true, sim::ShardSchedule::kWorkStealing);
  const RunTrace st = run_scenario(4, "", true, sim::ShardSchedule::kStatic);
  EXPECT_FALSE(ws.samples.empty());
  EXPECT_EQ(ws, st);
  // And against the sequential reference.
  EXPECT_EQ(run_scenario(1, "", true, sim::ShardSchedule::kStatic), ws);
}

/// Same gate for the emission subsystem: the EventSink's files must be
/// byte-identical between sync and async modes and for any shard count, and
/// attaching a sink must not perturb the simulation itself.
TEST(ShardDeterminism, SinkFilesAreIdenticalAcrossModesAndShardCounts) {
  const RunTrace plain = run_scenario(1);
  const RunTrace sync1 = run_scenario(1, "sync1", /*sink_async=*/false);
  const RunTrace async1 = run_scenario(1, "async1", /*sink_async=*/true);
  const RunTrace async4 = run_scenario(4, "async4", /*sink_async=*/true);
  const RunTrace static4 =
      run_scenario(4, "static4", /*sink_async=*/true, sim::ShardSchedule::kStatic);

  // The sink actually produced output.
  EXPECT_FALSE(sync1.trace_csv.empty());
  EXPECT_NE(sync1.events_jsonl.find("\"summary\""), std::string::npos);

  // Observation must not change the observed: simulation results with the
  // sink attached match the sink-free run exactly.
  RunTrace sim_only = sync1;
  sim_only.trace_csv.clear();
  sim_only.events_jsonl.clear();
  EXPECT_EQ(sim_only, plain);

  // Byte-identity across emission modes and shard counts.
  EXPECT_EQ(async1.trace_csv, sync1.trace_csv);
  EXPECT_EQ(async1.events_jsonl, sync1.events_jsonl);
  EXPECT_EQ(async4.trace_csv, sync1.trace_csv);
  EXPECT_EQ(async4.events_jsonl, sync1.events_jsonl);
  EXPECT_EQ(static4.trace_csv, sync1.trace_csv);
  EXPECT_EQ(static4.events_jsonl, sync1.events_jsonl);
}

}  // namespace
}  // namespace perfcloud
