// Golden-trace gates for the fault subsystem, extending the shard/emission
// determinism contract to chaos runs:
//   1. attaching an EMPTY FaultPlan (injector armed, sink routed) changes
//      nothing — the no-fault run and the empty-plan run are byte-identical;
//   2. a run under a six-fault plan (host crash, blackout, disk degrade,
//      cap-command loss, VM stall, task failures) is byte-identical for any
//      shard count and for sync vs async emission, files included.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "exp/cluster.hpp"
#include "faults/fault_injector.hpp"
#include "faults/fault_plan.hpp"
#include "workloads/benchmarks.hpp"

namespace perfcloud {
namespace {

struct RunTrace {
  double final_time_s = 0.0;
  std::vector<double> jcts;
  std::vector<std::pair<double, double>> samples;
  int faults_injected = 0;
  int faults_recovered = 0;
  int faults_failed = 0;
  int crash_lost_attempts = 0;
  long cap_commands_dropped = 0;
  std::string trace_csv;
  std::string events_jsonl;

  bool operator==(const RunTrace&) const = default;
};

std::string slurp(const std::string& path) {
  std::ifstream f(path);
  std::ostringstream os;
  os << f.rdbuf();
  return os.str();
}

void append_series(RunTrace& trace, const sim::TimeSeries& s) {
  for (std::size_t i = 0; i < s.size(); ++i) {
    trace.samples.emplace_back(s.time(i).seconds(), s.value(i));
  }
}

faults::FaultPlan chaos_plan() {
  faults::FaultPlan plan(0xc4a05);
  plan.disk_degrade("host-2", 80.0, 150.0, 0.5)
      .monitor_blackout("host-0", 100.0, 40.0)
      .cap_command_loss("host-0", 100.0, 300.0, 0.5)
      .host_crash("host-3", 123.0, 250.0)
      .task_failure(5.0e-4, 200.0, 300.0);
  return plan;
}

/// `plan` null = no injector at all; an empty plan = injector armed on
/// nothing. `sink_tag` non-empty = EventSink attached (fault records
/// included) and its files captured.
RunTrace run_scenario(unsigned shards, const faults::FaultPlan* plan,
                      const std::string& sink_tag = "", bool sink_async = true) {
  exp::ClusterParams p;
  p.hosts = 4;
  p.workers = 12;
  p.seed = 7311;
  p.shards = shards;
  exp::Cluster c = exp::make_cluster(p);

  const int fio = exp::add_fio(
      c, "host-0", wl::FioRandomRead::Params{.duration_s = 400.0, .start_s = 60.0});
  const int stream = exp::add_stream(
      c, "host-1",
      wl::StreamBenchmark::Params{.threads = 8, .duration_s = 400.0, .start_s = 90.0});
  exp::enable_perfcloud(c, core::PerfCloudConfig{});

  std::unique_ptr<exp::EventSink> sink;
  std::string csv_path;
  std::string jsonl_path;
  if (!sink_tag.empty()) {
    csv_path = "/tmp/perfcloud_faults_sink_" + sink_tag + ".csv";
    jsonl_path = "/tmp/perfcloud_faults_sink_" + sink_tag + ".jsonl";
    sink = std::make_unique<exp::EventSink>(exp::EventSink::Options{
        .trace_csv_path = csv_path, .events_jsonl_path = jsonl_path, .async = sink_async});
    exp::attach_sink(c, *sink);
  }

  std::unique_ptr<faults::FaultInjector> injector;
  if (plan != nullptr) {
    faults::FaultPlan resolved = *plan;
    if (!resolved.empty()) {
      for (const cloud::VmRecord& r : c.cloud->vms_on_host("host-2")) {
        if (std::find(c.worker_vm_ids.begin(), c.worker_vm_ids.end(), r.id) !=
            c.worker_vm_ids.end()) {
          resolved.vm_stall(r.id, 120.0, 40.0);
          break;
        }
      }
    }
    injector = std::make_unique<faults::FaultInjector>(*c.cloud, resolved);
    exp::attach_faults(c, *injector, sink.get());
  }

  std::vector<wl::JobId> ids;
  const std::vector<std::pair<std::string, double>> submissions = {
      {"terasort", 0.0}, {"wordcount", 120.0}, {"kmeans", 240.0}};
  for (const auto& [name, at] : submissions) {
    const wl::JobSpec spec = wl::make_benchmark(name, 24);
    c.engine->at(sim::SimTime(at),
                 [&c, &ids, spec](sim::SimTime) { ids.push_back(c.framework->submit(spec)); });
  }
  c.engine->run_while(
      [&] { return ids.size() < submissions.size() || !c.framework->all_done(); },
      sim::SimTime(6000.0));

  RunTrace trace;
  trace.final_time_s = c.engine->now().seconds();
  for (const wl::JobId id : ids) {
    const wl::Job* job = c.framework->find_job(id);
    trace.jcts.push_back(job != nullptr && job->completed() ? job->jct() : -1.0);
  }
  for (std::size_t h = 0; h < c.hosts.size(); ++h) {
    core::NodeManager& nm = c.node_manager(h);
    append_series(trace, nm.io_signal(p.app_id));
    append_series(trace, nm.cpi_signal(p.app_id));
    append_series(trace, nm.monitor().io_throughput_series(fio));
    append_series(trace, nm.monitor().llc_miss_series(stream));
    append_series(trace, nm.io_cap_series(fio));
    append_series(trace, nm.cpu_cap_series(stream));
    trace.cap_commands_dropped += nm.cap_commands_dropped();
  }
  trace.crash_lost_attempts = c.framework->crash_lost_attempts();
  if (injector != nullptr) {
    trace.faults_injected = injector->injected();
    trace.faults_recovered = injector->recovered();
    trace.faults_failed = injector->failed();
  }
  if (sink != nullptr) {
    sink->close();
    trace.trace_csv = slurp(csv_path);
    trace.events_jsonl = slurp(jsonl_path);
  }
  return trace;
}

TEST(FaultDeterminism, EmptyPlanAttachedChangesNothing) {
  const faults::FaultPlan empty;
  const RunTrace without = run_scenario(1, nullptr, "noinj", /*sink_async=*/false);
  const RunTrace with = run_scenario(1, &empty, "emptyplan", /*sink_async=*/false);
  EXPECT_FALSE(without.samples.empty());
  EXPECT_EQ(without, with);
}

TEST(FaultDeterminism, ChaosTraceIsIdenticalAcrossShardCounts) {
  const faults::FaultPlan plan = chaos_plan();
  const RunTrace sequential = run_scenario(1, &plan);

  // The scenario exercises what it gates on: jobs complete under the plan,
  // faults fire, the crash costs attempts, the lossy channel eats commands.
  for (const double jct : sequential.jcts) EXPECT_GT(jct, 0.0);
  EXPECT_EQ(sequential.faults_injected, 6);
  EXPECT_EQ(sequential.faults_failed, 0);
  EXPECT_GT(sequential.crash_lost_attempts, 0);
  EXPECT_GT(sequential.cap_commands_dropped, 0L);

  const RunTrace sharded = run_scenario(4, &plan);
  EXPECT_EQ(sequential, sharded);
  // Run-to-run determinism of the parallel chaos path itself.
  EXPECT_EQ(run_scenario(4, &plan), sharded);
}

TEST(FaultDeterminism, ChaosSinkFilesAreIdenticalAcrossModesAndShardCounts) {
  const faults::FaultPlan plan = chaos_plan();
  const RunTrace sync1 = run_scenario(1, &plan, "sync1", /*sink_async=*/false);
  const RunTrace async1 = run_scenario(1, &plan, "async1", /*sink_async=*/true);
  const RunTrace async4 = run_scenario(4, &plan, "async4", /*sink_async=*/true);

  // Fault records are really in the stream.
  EXPECT_NE(sync1.events_jsonl.find("\"inject host_crash host=host-3\""), std::string::npos);
  EXPECT_NE(sync1.events_jsonl.find("\"recover monitor_blackout host=host-0\""),
            std::string::npos);
  EXPECT_NE(sync1.events_jsonl.find("faults_injected"), std::string::npos);

  EXPECT_EQ(async1.trace_csv, sync1.trace_csv);
  EXPECT_EQ(async1.events_jsonl, sync1.events_jsonl);
  EXPECT_EQ(async4.trace_csv, sync1.trace_csv);
  EXPECT_EQ(async4.events_jsonl, sync1.events_jsonl);
}

}  // namespace
}  // namespace perfcloud
