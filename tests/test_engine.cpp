#include <gtest/gtest.h>

#include <vector>

#include "sim/engine.hpp"

namespace perfcloud::sim {
namespace {

TEST(Engine, StartsAtZero) {
  Engine e;
  EXPECT_DOUBLE_EQ(e.now().seconds(), 0.0);
}

TEST(Engine, RunsOneShotEvents) {
  Engine e;
  std::vector<double> fired;
  e.at(SimTime(1.0), [&](SimTime t) { fired.push_back(t.seconds()); });
  e.after(2.5, [&](SimTime t) { fired.push_back(t.seconds()); });
  e.run_until(SimTime(10.0));
  EXPECT_EQ(fired, (std::vector<double>{1.0, 2.5}));
  EXPECT_DOUBLE_EQ(e.now().seconds(), 10.0);
}

TEST(Engine, RunUntilStopsBeforeLaterEvents) {
  Engine e;
  int fired = 0;
  e.at(SimTime(5.0), [&](SimTime) { ++fired; });
  e.run_until(SimTime(3.0));
  EXPECT_EQ(fired, 0);
  EXPECT_DOUBLE_EQ(e.now().seconds(), 3.0);
  e.run_until(SimTime(6.0));
  EXPECT_EQ(fired, 1);
}

TEST(Engine, PeriodicFiresAtMultiples) {
  Engine e;
  std::vector<double> fired;
  e.every(2.0, [&](SimTime t) { fired.push_back(t.seconds()); }, SimTime(2.0));
  e.run_until(SimTime(7.0));
  EXPECT_EQ(fired, (std::vector<double>{2.0, 4.0, 6.0}));
}

TEST(Engine, PeriodicWithCustomStart) {
  Engine e;
  std::vector<double> fired;
  e.every(5.0, [&](SimTime t) { fired.push_back(t.seconds()); }, SimTime(1.0));
  e.run_until(SimTime(12.0));
  EXPECT_EQ(fired, (std::vector<double>{1.0, 6.0, 11.0}));
}

TEST(Engine, PeriodicsAtSameTimeFireInRegistrationOrder) {
  Engine e;
  std::vector<int> order;
  e.every(1.0, [&](SimTime) { order.push_back(1); }, SimTime(1.0));
  e.every(1.0, [&](SimTime) { order.push_back(2); }, SimTime(1.0));
  e.run_until(SimTime(2.5));
  EXPECT_EQ(order, (std::vector<int>{1, 2, 1, 2}));
}

TEST(Engine, PeriodicBeatsOneShotAtSameTimestamp) {
  Engine e;
  std::vector<int> order;
  e.at(SimTime(1.0), [&](SimTime) { order.push_back(2); });
  e.every(1.0, [&](SimTime) { order.push_back(1); }, SimTime(1.0));
  e.run_until(SimTime(1.5));
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Engine, InterleavesPeriodicsAndEvents) {
  Engine e;
  std::vector<double> fired;
  e.every(3.0, [&](SimTime t) { fired.push_back(t.seconds()); }, SimTime(3.0));
  e.at(SimTime(4.0), [&](SimTime t) { fired.push_back(t.seconds()); });
  e.run_until(SimTime(7.0));
  EXPECT_EQ(fired, (std::vector<double>{3.0, 4.0, 6.0}));
}

TEST(Engine, RunWhilePredicateStops) {
  Engine e;
  int count = 0;
  e.every(1.0, [&](SimTime) { ++count; }, SimTime(1.0));
  e.run_while([&] { return count < 5; }, SimTime(100.0));
  EXPECT_EQ(count, 5);
  EXPECT_LE(e.now().seconds(), 6.0);
}

TEST(Engine, StopEndsRunEarly) {
  Engine e;
  int count = 0;
  e.every(1.0,
          [&](SimTime) {
            if (++count == 3) e.stop();
          },
          SimTime(1.0));
  e.run_until(SimTime(100.0));
  EXPECT_EQ(count, 3);
  EXPECT_DOUBLE_EQ(e.now().seconds(), 3.0);
  // A later run resumes.
  e.run_until(SimTime(5.0));
  EXPECT_EQ(count, 5);
}

TEST(Engine, CancelScheduledEvent) {
  Engine e;
  int fired = 0;
  const EventHandle h = e.at(SimTime(1.0), [&](SimTime) { ++fired; });
  EXPECT_TRUE(e.cancel(h));
  e.run_until(SimTime(2.0));
  EXPECT_EQ(fired, 0);
}

TEST(Engine, RngIsSeeded) {
  Engine a(7);
  Engine b(7);
  EXPECT_EQ(a.rng()(), b.rng()());
  Engine c(8);
  Engine d(9);
  EXPECT_NE(c.rng()(), d.rng()());
}

TEST(Engine, EventSchedulingFromCallback) {
  Engine e;
  std::vector<double> fired;
  e.at(SimTime(1.0), [&](SimTime) {
    e.after(1.0, [&](SimTime t) { fired.push_back(t.seconds()); });
  });
  e.run_until(SimTime(5.0));
  EXPECT_EQ(fired, (std::vector<double>{2.0}));
}

TEST(Engine, DrainsAndReportsFinalTime) {
  Engine e;
  e.at(SimTime(2.0), [](SimTime) {});
  const SimTime end = e.run_until(SimTime(10.0));
  EXPECT_DOUBLE_EQ(end.seconds(), 10.0);
}

}  // namespace
}  // namespace perfcloud::sim
