#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "sim/engine.hpp"

namespace perfcloud::sim {
namespace {

TEST(Engine, StartsAtZero) {
  Engine e;
  EXPECT_DOUBLE_EQ(e.now().seconds(), 0.0);
}

TEST(Engine, RunsOneShotEvents) {
  Engine e;
  std::vector<double> fired;
  e.at(SimTime(1.0), [&](SimTime t) { fired.push_back(t.seconds()); });
  e.after(2.5, [&](SimTime t) { fired.push_back(t.seconds()); });
  e.run_until(SimTime(10.0));
  EXPECT_EQ(fired, (std::vector<double>{1.0, 2.5}));
  EXPECT_DOUBLE_EQ(e.now().seconds(), 10.0);
}

TEST(Engine, RunUntilStopsBeforeLaterEvents) {
  Engine e;
  int fired = 0;
  e.at(SimTime(5.0), [&](SimTime) { ++fired; });
  e.run_until(SimTime(3.0));
  EXPECT_EQ(fired, 0);
  EXPECT_DOUBLE_EQ(e.now().seconds(), 3.0);
  e.run_until(SimTime(6.0));
  EXPECT_EQ(fired, 1);
}

TEST(Engine, PeriodicFiresAtMultiples) {
  Engine e;
  std::vector<double> fired;
  e.every(2.0, [&](SimTime t) { fired.push_back(t.seconds()); }, SimTime(2.0));
  e.run_until(SimTime(7.0));
  EXPECT_EQ(fired, (std::vector<double>{2.0, 4.0, 6.0}));
}

TEST(Engine, PeriodicWithCustomStart) {
  Engine e;
  std::vector<double> fired;
  e.every(5.0, [&](SimTime t) { fired.push_back(t.seconds()); }, SimTime(1.0));
  e.run_until(SimTime(12.0));
  EXPECT_EQ(fired, (std::vector<double>{1.0, 6.0, 11.0}));
}

TEST(Engine, PeriodicsAtSameTimeFireInRegistrationOrder) {
  Engine e;
  std::vector<int> order;
  e.every(1.0, [&](SimTime) { order.push_back(1); }, SimTime(1.0));
  e.every(1.0, [&](SimTime) { order.push_back(2); }, SimTime(1.0));
  e.run_until(SimTime(2.5));
  EXPECT_EQ(order, (std::vector<int>{1, 2, 1, 2}));
}

TEST(Engine, PeriodicBeatsOneShotAtSameTimestamp) {
  Engine e;
  std::vector<int> order;
  e.at(SimTime(1.0), [&](SimTime) { order.push_back(2); });
  e.every(1.0, [&](SimTime) { order.push_back(1); }, SimTime(1.0));
  e.run_until(SimTime(1.5));
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Engine, InterleavesPeriodicsAndEvents) {
  Engine e;
  std::vector<double> fired;
  e.every(3.0, [&](SimTime t) { fired.push_back(t.seconds()); }, SimTime(3.0));
  e.at(SimTime(4.0), [&](SimTime t) { fired.push_back(t.seconds()); });
  e.run_until(SimTime(7.0));
  EXPECT_EQ(fired, (std::vector<double>{3.0, 4.0, 6.0}));
}

TEST(Engine, RunWhilePredicateStops) {
  Engine e;
  int count = 0;
  e.every(1.0, [&](SimTime) { ++count; }, SimTime(1.0));
  e.run_while([&] { return count < 5; }, SimTime(100.0));
  EXPECT_EQ(count, 5);
  EXPECT_LE(e.now().seconds(), 6.0);
}

TEST(Engine, StopEndsRunEarly) {
  Engine e;
  int count = 0;
  e.every(1.0,
          [&](SimTime) {
            if (++count == 3) e.stop();
          },
          SimTime(1.0));
  e.run_until(SimTime(100.0));
  EXPECT_EQ(count, 3);
  EXPECT_DOUBLE_EQ(e.now().seconds(), 3.0);
  // A later run resumes.
  e.run_until(SimTime(5.0));
  EXPECT_EQ(count, 5);
}

TEST(Engine, CancelScheduledEvent) {
  Engine e;
  int fired = 0;
  const EventHandle h = e.at(SimTime(1.0), [&](SimTime) { ++fired; });
  EXPECT_TRUE(e.cancel(h));
  e.run_until(SimTime(2.0));
  EXPECT_EQ(fired, 0);
}

TEST(Engine, RngIsSeeded) {
  Engine a(7);
  Engine b(7);
  EXPECT_EQ(a.rng()(), b.rng()());
  Engine c(8);
  Engine d(9);
  EXPECT_NE(c.rng()(), d.rng()());
}

TEST(Engine, EventSchedulingFromCallback) {
  Engine e;
  std::vector<double> fired;
  e.at(SimTime(1.0), [&](SimTime) {
    e.after(1.0, [&](SimTime t) { fired.push_back(t.seconds()); });
  });
  e.run_until(SimTime(5.0));
  EXPECT_EQ(fired, (std::vector<double>{2.0}));
}

TEST(Engine, DrainsAndReportsFinalTime) {
  Engine e;
  e.at(SimTime(2.0), [](SimTime) {});
  const SimTime end = e.run_until(SimTime(10.0));
  EXPECT_DOUBLE_EQ(end.seconds(), 10.0);
}

TEST(Engine, AtInThePastThrows) {
  Engine e;
  e.at(SimTime(1.0), [](SimTime) {});
  e.run_until(SimTime(2.0));
  EXPECT_THROW(e.at(SimTime(1.5), [](SimTime) {}), std::invalid_argument);
  e.at(SimTime(2.0), [](SimTime) {});  // exactly now is fine
}

TEST(Engine, AfterNegativeDelayThrows) {
  Engine e;
  EXPECT_THROW(e.after(-0.1, [](SimTime) {}), std::invalid_argument);
  e.after(0.0, [](SimTime) {});  // zero delay is fine
}

TEST(Engine, EveryNonPositivePeriodThrows) {
  Engine e;
  EXPECT_THROW(e.every(0.0, [](SimTime) {}), std::invalid_argument);
  EXPECT_THROW(e.every(-1.0, [](SimTime) {}), std::invalid_argument);
}

TEST(Engine, PeriodicRegisteredFromCallbackJoinsSameBatchInOrder) {
  Engine e;
  std::vector<int> order;
  e.every(10.0,
          [&](SimTime) {
            order.push_back(1);
            if (order.size() == 1) {
              // Registered mid-batch with start <= now: fires right after the
              // already-due periodics of this timestamp, by registration index.
              e.every(10.0, [&](SimTime) { order.push_back(2); }, SimTime(0.0));
            }
          },
          SimTime(10.0));
  e.run_until(SimTime(25.0));
  EXPECT_EQ(order, (std::vector<int>{1, 2, 1, 2}));
}

TEST(Engine, ShardedPeriodicRunsTasksThenBarrier) {
  Engine e;
  e.set_shards(1);
  std::vector<int> order;
  ShardedPeriodic& sp = e.every_sharded(1.0, SimTime(1.0));
  sp.add_task([&](SimTime) { order.push_back(0); });
  sp.add_task([&](SimTime) { order.push_back(1); });
  sp.set_barrier([&](SimTime) { order.push_back(9); });
  EXPECT_EQ(sp.task_count(), 2u);
  e.run_until(SimTime(2.5));
  // With one shard the tasks run inline in index order, then the barrier.
  EXPECT_EQ(order, (std::vector<int>{0, 1, 9, 0, 1, 9}));
}

TEST(Engine, ShardedPeriodicKeepsRegistrationOrderWithPlainPeriodics) {
  Engine e;
  e.set_shards(1);
  std::vector<int> order;
  e.every(1.0, [&](SimTime) { order.push_back(1); }, SimTime(1.0));
  ShardedPeriodic& sp = e.every_sharded(1.0, SimTime(1.0));
  sp.add_task([&](SimTime) { order.push_back(2); });
  e.every(1.0, [&](SimTime) { order.push_back(3); }, SimTime(1.0));
  e.run_until(SimTime(1.5));
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Engine, ShardedPeriodicParallelMatchesSequential) {
  const auto run = [](unsigned shards, ShardSchedule schedule) {
    Engine e;
    e.set_shards(shards);
    e.set_schedule(schedule);
    // One result slot per task: tasks write disjoint elements, so the
    // parallel sweep is race-free and comparable bit-for-bit. Long enough
    // to cross the work-stealing rebalance epochs.
    std::vector<double> slots(16, 0.0);
    ShardedPeriodic& sp = e.every_sharded(1.0, SimTime(1.0));
    for (std::size_t i = 0; i < slots.size(); ++i) {
      sp.add_task([&slots, i](SimTime t) {
        slots[i] += t.seconds() * static_cast<double>(i + 1);
      });
    }
    e.run_until(SimTime(40.5));
    return slots;
  };
  const std::vector<double> sequential = run(1, ShardSchedule::kWorkStealing);
  EXPECT_EQ(sequential, run(4, ShardSchedule::kWorkStealing));
  EXPECT_EQ(sequential, run(4, ShardSchedule::kStatic));
}

TEST(Engine, TasksAddedBetweenFiringsJoinTheWorkStealingOrder) {
  for (const unsigned shards : {1u, 4u}) {
    Engine e;
    e.set_shards(shards);
    e.set_schedule(ShardSchedule::kWorkStealing);
    std::vector<double> slots(8, 0.0);
    ShardedPeriodic& sp = e.every_sharded(1.0, SimTime(1.0));
    for (std::size_t i = 0; i < 4; ++i) {
      sp.add_task([&slots, i](SimTime t) { slots[i] += t.seconds(); });
    }
    e.run_until(SimTime(3.5));  // 3 firings with 4 tasks
    for (std::size_t i = 4; i < 8; ++i) {
      sp.add_task([&slots, i](SimTime t) { slots[i] += t.seconds(); });
    }
    e.run_until(SimTime(6.5));  // 3 more with 8
    for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(slots[i], 1.0 + 2.0 + 3.0 + 4.0 + 5.0 + 6.0);
    for (std::size_t i = 4; i < 8; ++i) EXPECT_EQ(slots[i], 4.0 + 5.0 + 6.0);
  }
}

TEST(Engine, SetShardsZeroThrows) {
  Engine e;
  EXPECT_THROW(e.set_shards(0), std::invalid_argument);
}

TEST(Engine, SetShardsAfterPoolExistsThrows) {
  Engine e;
  e.set_shards(2);
  ShardedPeriodic& sp = e.every_sharded(1.0, SimTime(1.0));
  sp.add_task([](SimTime) {});
  sp.add_task([](SimTime) {});
  e.run_until(SimTime(1.5));  // first multi-task fire creates the pool
  EXPECT_THROW(e.set_shards(4), std::logic_error);
}

TEST(Engine, ShardTaskExceptionPropagates) {
  for (const unsigned shards : {1u, 4u}) {
    Engine e;
    e.set_shards(shards);
    ShardedPeriodic& sp = e.every_sharded(1.0, SimTime(1.0));
    sp.add_task([](SimTime) { throw std::runtime_error("shard task failed"); });
    sp.add_task([](SimTime) {});
    EXPECT_THROW(e.run_until(SimTime(2.0)), std::runtime_error);
  }
}

/// The documented dispatch order — (time, registration-index) for periodics,
/// periodics before same-timestamp one-shot events, FIFO among simultaneous
/// events — pinned against a hand-computed golden trace. Any scheduler
/// change that reorders the seed semantics fails here.
TEST(Engine, GoldenTraceDeterminism) {
  const auto run_trace = [] {
    Engine e(123);
    std::vector<std::pair<std::string, double>> trace;
    const auto rec = [&trace](std::string tag) {
      return [&trace, tag = std::move(tag)](SimTime t) { trace.emplace_back(tag, t.seconds()); };
    };
    e.every(2.0, rec("p0/2s"), SimTime(2.0));
    e.every(3.0, rec("p1/3s"), SimTime(0.0));
    e.every(2.0, rec("p2/2s"), SimTime(2.0));
    e.at(SimTime(2.0), rec("e@2"));
    e.at(SimTime(2.0), rec("e@2b"));
    e.at(SimTime(3.0), [&, rec](SimTime t) {
      trace.emplace_back("e@3", t.seconds());
      e.after(1.0, rec("e@3+1"));
      e.every(4.0, rec("p3/4s"), SimTime(4.0));
    });
    const EventHandle doomed = e.at(SimTime(5.0), rec("cancelled"));
    e.at(SimTime(4.0), [&e, doomed](SimTime) { e.cancel(doomed); });
    e.run_until(SimTime(6.5));
    return trace;
  };

  const std::vector<std::pair<std::string, double>> expected = {
      {"p1/3s", 0.0},
      {"p0/2s", 2.0}, {"p2/2s", 2.0}, {"e@2", 2.0}, {"e@2b", 2.0},
      {"p1/3s", 3.0}, {"e@3", 3.0},
      {"p0/2s", 4.0}, {"p2/2s", 4.0}, {"p3/4s", 4.0}, {"e@3+1", 4.0},
      // e@5 was cancelled by the event at t=4; at t=6 all three original
      // periodics are due and fire in registration-index order.
      {"p0/2s", 6.0}, {"p1/3s", 6.0}, {"p2/2s", 6.0},
  };
  const auto a = run_trace();
  EXPECT_EQ(a, expected);
  EXPECT_EQ(run_trace(), a);  // run-to-run determinism
}

}  // namespace
}  // namespace perfcloud::sim
