#include <gtest/gtest.h>

#include <cmath>

#include "core/cubic.hpp"

namespace perfcloud::core {
namespace {

PerfCloudConfig paper_cfg() { return PerfCloudConfig{}; }  // beta .8, gamma .005

TEST(Cubic, InitialCapEqualsBaseline) {
  CubicController c(paper_cfg(), 2.0e6);
  EXPECT_DOUBLE_EQ(c.cap(), 1.0);
  EXPECT_DOUBLE_EQ(c.cap_absolute(), 2.0e6);
  EXPECT_DOUBLE_EQ(c.baseline(), 2.0e6);
  EXPECT_FALSE(c.ever_decreased());
}

TEST(Cubic, MultiplicativeDecrease) {
  CubicController c(paper_cfg(), 1.0);
  c.step(/*contended=*/true);
  EXPECT_NEAR(c.cap(), 0.2, 1e-12);  // (1 - 0.8) * 1.0
  EXPECT_DOUBLE_EQ(c.cap_max(), 1.0);
  EXPECT_TRUE(c.ever_decreased());
  EXPECT_EQ(c.intervals_since_decrease(), 0);
}

TEST(Cubic, RepeatedDecreaseBottomsOutAtMinCap) {
  PerfCloudConfig cfg = paper_cfg();
  cfg.min_cap_fraction = 0.05;
  CubicController c(cfg, 1.0);
  for (int i = 0; i < 10; ++i) c.step(true);
  EXPECT_DOUBLE_EQ(c.cap(), 0.05);
}

TEST(Cubic, CurvePassesThroughPostDecreasePoint) {
  // By construction K = cbrt(beta*C_max/gamma) makes the cubic equal
  // (1-beta)*C_max at T=0, so recovery is continuous.
  const PerfCloudConfig cfg = paper_cfg();
  const double k = std::cbrt(cfg.beta * 1.0 / cfg.gamma);
  const double at_zero = cfg.gamma * std::pow(0.0 - k, 3.0) + 1.0;
  EXPECT_NEAR(at_zero, 1.0 - cfg.beta, 1e-9);
}

TEST(Cubic, RecoveryReachesBaselineNearK) {
  // With beta=.8, gamma=.005, C_max=1: K = cbrt(160) ~ 5.43 intervals, i.e.
  // ~27 s at the 5 s control period — the paper's Fig 10 recovery window.
  CubicController c(paper_cfg(), 1.0);
  c.step(true);
  int intervals = 0;
  while (c.cap() < 0.999 && intervals < 100) {
    c.step(false);
    ++intervals;
  }
  EXPECT_GE(intervals, 4);
  EXPECT_LE(intervals, 7);
}

TEST(Cubic, ThreeRegionsOfGrowth) {
  CubicController c(paper_cfg(), 1.0);
  c.step(true);  // cap 0.2, cap_max 1.0
  std::vector<double> caps;
  for (int i = 0; i < 12; ++i) caps.push_back(c.step(false));

  // Region 1 (initial growth): big early steps.
  const double early_step = caps[1] - caps[0];
  // Region 2 (plateau around cap_max): small steps near K.
  const double plateau_step = caps[5] - caps[4];
  // Region 3 (probing): steps grow again past the plateau.
  const double probe_step = caps[11] - caps[10];
  EXPECT_GT(early_step, 3.0 * plateau_step);
  EXPECT_GT(probe_step, 3.0 * plateau_step);
}

TEST(Cubic, MonotoneDuringRecovery) {
  CubicController c(paper_cfg(), 1.0);
  c.step(true);
  double last = c.cap();
  for (int i = 0; i < 30; ++i) {
    const double cap = c.step(false);
    EXPECT_GE(cap, last - 1e-12);
    last = cap;
  }
}

TEST(Cubic, LiftsAfterProbingPastThreshold) {
  PerfCloudConfig cfg = paper_cfg();
  cfg.cap_lift_fraction = 1.5;
  CubicController c(cfg, 1.0);
  c.step(true);
  int i = 0;
  while (!c.lifted() && i++ < 200) c.step(false);
  EXPECT_TRUE(c.lifted());
  EXPECT_GE(c.cap(), 1.5);
}

TEST(Cubic, NoDecreaseMeansProbingFromStart) {
  // Never contended: the cap grows beyond baseline and eventually lifts.
  CubicController c(paper_cfg(), 1.0);
  for (int i = 0; i < 50 && !c.lifted(); ++i) c.step(false);
  EXPECT_TRUE(c.lifted());
}

TEST(Cubic, SecondDecreaseScalesFromCurrentCap) {
  CubicController c(paper_cfg(), 1.0);
  c.step(true);           // 0.2
  c.step(false);          // recovering...
  const double mid = c.cap();
  c.step(true);
  EXPECT_NEAR(c.cap(), std::max(0.2 * mid, 0.05), 1e-12);
  EXPECT_DOUBLE_EQ(c.cap_max(), mid);
}

TEST(Cubic, AbsoluteCapScalesWithBaseline) {
  CubicController c(paper_cfg(), 40.0e6);
  c.step(true);
  EXPECT_NEAR(c.cap_absolute(), 8.0e6, 1e-3);
}

// Parameter sweep: recovery time grows as gamma shrinks.
class CubicGammaSweep : public ::testing::TestWithParam<double> {};

TEST_P(CubicGammaSweep, RecoveryTimeTracksK) {
  PerfCloudConfig cfg = paper_cfg();
  cfg.gamma = GetParam();
  CubicController c(cfg, 1.0);
  c.step(true);
  int intervals = 0;
  while (c.cap() < 0.999 && intervals < 1000) {
    c.step(false);
    ++intervals;
  }
  const double k = std::cbrt(cfg.beta / cfg.gamma);
  EXPECT_NEAR(intervals, k, k * 0.4 + 1.0);
}

INSTANTIATE_TEST_SUITE_P(Gammas, CubicGammaSweep,
                         ::testing::Values(0.001, 0.002, 0.005, 0.01, 0.05));

}  // namespace
}  // namespace perfcloud::core
