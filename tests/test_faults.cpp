// Fault subsystem: plan validation and the observable effect of every fault
// kind, injected through exp::attach_faults into real clusters.
#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "exp/cluster.hpp"
#include "faults/fault_injector.hpp"
#include "faults/fault_plan.hpp"
#include "workloads/benchmarks.hpp"

namespace perfcloud {
namespace {

exp::Cluster small_cluster(int hosts, int workers, std::uint64_t seed = 11) {
  exp::ClusterParams p;
  p.hosts = hosts;
  p.workers = workers;
  p.seed = seed;
  return exp::make_cluster(p);
}

// --- FaultPlan validation ---

TEST(FaultPlan, RejectsMalformedSpecs) {
  faults::FaultPlan plan;
  EXPECT_THROW(plan.disk_degrade("host-0", -1.0, 10.0, 0.5), std::invalid_argument);
  EXPECT_THROW(plan.disk_degrade("host-0", 0.0, 10.0, 0.0), std::invalid_argument);
  EXPECT_THROW(plan.disk_degrade("host-0", 0.0, 10.0, 1.5), std::invalid_argument);
  EXPECT_THROW(plan.disk_degrade("", 0.0, 10.0, 0.5), std::invalid_argument);
  EXPECT_THROW(plan.vm_stall(-1, 0.0, 10.0), std::invalid_argument);
  EXPECT_THROW(plan.vm_stall(3, 0.0, -1.0), std::invalid_argument);  // must end
  EXPECT_THROW(plan.cap_command_loss("host-0", 0.0, 10.0, 1.5), std::invalid_argument);
  EXPECT_THROW(plan.host_crash("", 0.0), std::invalid_argument);
  EXPECT_THROW(plan.task_failure(-0.1, 0.0), std::invalid_argument);
  EXPECT_TRUE(plan.empty());

  // Degenerate-but-legal magnitudes are accepted.
  plan.disk_degrade("host-0", 0.0, 10.0, 1.0).cap_command_loss("host-1", 0.0, 10.0, 1.0);
  EXPECT_EQ(plan.size(), 2u);
}

TEST(FaultPlan, RejectsOverlapOnSameTargetOnly) {
  faults::FaultPlan plan;
  plan.disk_degrade("host-0", 10.0, 20.0, 0.5);
  // Overlapping window, same kind + target: rejected.
  EXPECT_THROW(plan.disk_degrade("host-0", 25.0, 10.0, 0.5), std::invalid_argument);
  // Back-to-back (prior recovers exactly when the next injects) is fine, as
  // are other targets and other kinds over the same window.
  plan.disk_degrade("host-0", 30.0, 10.0, 0.5);
  plan.disk_degrade("host-1", 15.0, 10.0, 0.5);
  plan.monitor_blackout("host-0", 15.0, 10.0);
  EXPECT_EQ(plan.size(), 4u);

  // A never-recovering fault occupies [t, inf): everything later collides.
  plan.host_crash("host-2", 50.0);
  EXPECT_THROW(plan.host_crash("host-2", 500.0), std::invalid_argument);
}

// --- Injector lifecycle ---

TEST(FaultInjector, EmptyPlanIsANoOpAndArmIsOnce) {
  exp::Cluster c = small_cluster(1, 2);
  faults::FaultInjector injector(*c.cloud, faults::FaultPlan{});
  exp::attach_faults(c, injector);
  EXPECT_THROW(injector.arm(), std::logic_error);
  exp::run_for(c, 20.0);
  EXPECT_EQ(injector.injected(), 0);
  EXPECT_EQ(injector.recovered(), 0);
  EXPECT_EQ(injector.failed(), 0);
  EXPECT_EQ(injector.pending(), 0);
}

TEST(FaultInjector, MissingTargetMarksSpecFailedAndRunContinues) {
  exp::Cluster c = small_cluster(1, 2);
  faults::FaultPlan plan;
  plan.vm_stall(9999, 5.0, 10.0);  // no such VM
  faults::FaultInjector injector(*c.cloud, plan);
  exp::attach_faults(c, injector);
  exp::run_for(c, 30.0);
  EXPECT_EQ(injector.injected(), 0);
  EXPECT_EQ(injector.failed(), 1);
  EXPECT_EQ(injector.recovered(), 0);  // revert of a failed inject is skipped
  EXPECT_EQ(c.engine->now().seconds(), 30.0);
}

// --- DiskDegrade ---

TEST(FaultInjector, DiskDegradeAppliesAndReverts) {
  exp::Cluster c = small_cluster(1, 2);
  faults::FaultPlan plan;
  plan.disk_degrade("host-0", 10.0, 20.0, 0.25);
  faults::FaultInjector injector(*c.cloud, plan);
  exp::attach_faults(c, injector);

  exp::run_for(c, 15.0);
  EXPECT_DOUBLE_EQ(c.cloud->host("host-0").server().disk_degradation(), 0.25);
  EXPECT_EQ(injector.active(), 1);
  exp::run_for(c, 20.0);
  EXPECT_DOUBLE_EQ(c.cloud->host("host-0").server().disk_degradation(), 1.0);
  EXPECT_EQ(injector.injected(), 1);
  EXPECT_EQ(injector.recovered(), 1);
  EXPECT_EQ(injector.active(), 0);
}

TEST(FaultInjector, DiskDegradeSlowsAnIoBoundJob) {
  const auto jct_with_factor = [](double factor) {
    exp::Cluster c = small_cluster(1, 4);
    if (factor < 1.0) {
      faults::FaultPlan plan;
      plan.disk_degrade("host-0", 0.5, -1.0, factor);
      // The injector only lives for this run; keep it on the stack.
      faults::FaultInjector injector(*c.cloud, plan);
      exp::attach_faults(c, injector);
      return exp::run_job(c, wl::make_terasort(8, 4));
    }
    return exp::run_job(c, wl::make_terasort(8, 4));
  };
  const double healthy = jct_with_factor(1.0);
  const double degraded = jct_with_factor(0.2);
  EXPECT_GT(degraded, healthy);
}

// --- VmStall ---

TEST(FaultInjector, VmStallFreezesAndResumesAWorker) {
  exp::Cluster baseline = small_cluster(1, 2, 17);
  const double healthy_jct = exp::run_job(baseline, wl::make_terasort(8, 4));

  exp::Cluster c = small_cluster(1, 2, 17);
  faults::FaultPlan plan;
  plan.vm_stall(c.worker_vm_ids.front(), 2.0, 60.0);
  faults::FaultInjector injector(*c.cloud, plan);
  exp::attach_faults(c, injector);

  exp::run_for(c, 5.0);
  EXPECT_TRUE(c.vm(c.worker_vm_ids.front()).paused());
  const double stalled_jct = exp::run_job(c, wl::make_terasort(8, 4));
  EXPECT_FALSE(c.vm(c.worker_vm_ids.front()).paused());
  // The job straddled the stall: half the cluster was frozen, so it must
  // have taken visibly longer than the healthy run.
  EXPECT_GT(stalled_jct, healthy_jct);
  EXPECT_EQ(injector.recovered(), 1);
}

// --- MonitorBlackout ---

TEST(FaultInjector, MonitorBlackoutDropsSamplesAndReprimesWithoutSpike) {
  exp::Cluster c = small_cluster(1, 2);
  const int fio = exp::add_fio(c, "host-0", wl::FioRandomRead::Params{.duration_s = 300.0});
  exp::enable_perfcloud(c, core::PerfCloudConfig{});
  core::NodeManager& nm = c.node_manager(0);

  faults::FaultPlan plan;
  plan.monitor_blackout("host-0", 50.0, 50.0, fio);
  faults::FaultInjector injector(*c.cloud, plan);
  exp::attach_faults(c, injector);

  exp::run_for(c, 50.0);
  const std::size_t before = nm.monitor().io_throughput_series(fio).size();
  ASSERT_GT(before, 0u);
  double peak_before = 0.0;
  for (std::size_t i = 0; i < before; ++i) {
    peak_before = std::max(peak_before, nm.monitor().io_throughput_series(fio).value(i));
  }

  exp::run_for(c, 48.0);  // inside the blackout
  EXPECT_EQ(nm.monitor().io_throughput_series(fio).size(), before);
  EXPECT_EQ(nm.monitor().latest(fio), nullptr);
  EXPECT_TRUE(nm.monitor().blacked_out(fio));

  exp::run_for(c, 52.0);  // recovered; samples flow again
  const sim::TimeSeries& series = nm.monitor().io_throughput_series(fio);
  EXPECT_GT(series.size(), before);
  EXPECT_FALSE(nm.monitor().blacked_out(fio));
  // Re-priming, not catch-up: the first post-blackout samples must be in
  // line with the steady-state throughput, not one giant delta carrying the
  // whole blackout's worth of I/O.
  for (std::size_t i = before; i < series.size(); ++i) {
    EXPECT_LT(series.value(i), 3.0 * peak_before);
  }
}

// --- CapCommandLoss ---

TEST(FaultInjector, CapCommandLossEatsEveryActuation) {
  // Noisy-neighbour scenario where PerfCloud definitely throttles the fio
  // antagonist — but every libvirt call is dropped (p = 1), so the cgroup
  // never sees a cap even while the CUBIC controller runs.
  exp::Cluster c = small_cluster(1, 10, 2026);
  const int fio = exp::add_fio(c, "host-0", wl::FioRandomRead::Params{.start_s = 20.0});
  exp::enable_perfcloud(c, core::PerfCloudConfig{});
  core::NodeManager& nm = c.node_manager(0);

  faults::FaultPlan plan;
  plan.cap_command_loss("host-0", 1.0, -1.0, 1.0);
  faults::FaultInjector injector(*c.cloud, plan);
  exp::attach_faults(c, injector);

  (void)exp::run_job(c, wl::make_spark_logreg(30, 8));
  ASSERT_FALSE(nm.io_cap_series(fio).empty()) << "controller never engaged";
  EXPECT_GT(nm.cap_commands_dropped(), 0L);
  EXPECT_EQ(c.vm(fio).cgroup().blkio_throttle_bps(), hw::kNoCap);
}

// --- TaskFailure (and the set_task_failure_rate unification) ---

TEST(FaultInjector, TaskFailurePlanDrivesTheFrameworkRate) {
  exp::Cluster c = small_cluster(1, 2);
  faults::FaultPlan plan;
  plan.task_failure(0.02, 10.0, 20.0);
  faults::FaultInjector injector(*c.cloud, plan);
  exp::attach_faults(c, injector);

  EXPECT_DOUBLE_EQ(c.framework->task_failure_rate(), 0.0);
  exp::run_for(c, 15.0);
  EXPECT_DOUBLE_EQ(c.framework->task_failure_rate(), 0.02);
  exp::run_for(c, 20.0);
  EXPECT_DOUBLE_EQ(c.framework->task_failure_rate(), 0.0);
}

// --- HostCrash ---

TEST(FaultInjector, HostCrashReplacesWorkersAndJobsStillComplete) {
  exp::ClusterParams p;
  p.hosts = 4;
  p.workers = 8;
  p.seed = 99;
  exp::Cluster c = exp::make_cluster(p);

  const std::vector<cloud::VmRecord> doomed = c.cloud->vms_on_host("host-3");
  ASSERT_FALSE(doomed.empty());

  faults::FaultPlan plan;
  plan.host_crash("host-3", 3.0, 120.0);
  faults::FaultInjector injector(*c.cloud, plan);
  exp::attach_faults(c, injector);

  const wl::JobId id = c.framework->submit(wl::make_terasort(24, 12));
  c.engine->run_while([&] { return !c.framework->all_done(); }, sim::SimTime(3000.0));

  const wl::Job* job = c.framework->find_job(id);
  ASSERT_NE(job, nullptr);
  EXPECT_TRUE(job->completed());
  // The crash caught attempts mid-flight and the framework re-ran them.
  EXPECT_GT(c.framework->crash_lost_attempts(), 0);
  // The victims' worker slots were rebound to fresh VMs on survivors: the
  // old ids are gone from the framework and from the cloud registry.
  for (const cloud::VmRecord& r : doomed) {
    EXPECT_FALSE(c.framework->has_worker_vm(r.id));
  }
  // Replacements are 1:1 — the cluster still has all 8 workers.
  EXPECT_EQ(c.cloud->all_vms().size(), 8u);
  // The job finished before the host's recovery; run past it.
  exp::run_for(c, 150.0);
  // The host came back (empty) after 120 s and can take placements again.
  EXPECT_TRUE(c.cloud->host_up("host-3"));
  EXPECT_TRUE(c.cloud->vms_on_host("host-3").empty());
  virt::VmConfig cfg;
  cfg.priority = virt::Priority::kLow;
  EXPECT_NO_THROW(c.cloud->boot_vm("host-3", cfg));
  EXPECT_EQ(injector.injected(), 1);
  EXPECT_EQ(injector.recovered(), 1);
}

TEST(FaultInjector, HostCrashWhileDownRejectsPlacement) {
  exp::Cluster c = small_cluster(2, 2);
  faults::FaultPlan plan;
  plan.host_crash("host-1", 1.0);  // never recovers
  faults::FaultInjector injector(*c.cloud, plan);
  exp::attach_faults(c, injector);
  exp::run_for(c, 5.0);
  EXPECT_FALSE(c.cloud->host_up("host-1"));
  EXPECT_EQ(c.cloud->up_hosts(), std::vector<std::string>{"host-0"});
  virt::VmConfig cfg;
  EXPECT_THROW(c.cloud->boot_vm("host-1", cfg), std::invalid_argument);
}

}  // namespace
}  // namespace perfcloud
