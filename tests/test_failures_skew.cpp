// Failure injection and data skew: framework resilience properties.
#include <gtest/gtest.h>

#include <memory>

#include "baselines/late.hpp"
#include "exp/cluster.hpp"
#include "workloads/benchmarks.hpp"

namespace perfcloud::wl {
namespace {

exp::Cluster small_cluster(std::uint64_t seed) {
  exp::ClusterParams p;
  p.workers = 6;
  p.seed = seed;
  return exp::make_cluster(p);
}

TEST(FailureInjection, JobsStillCompleteUnderFailures) {
  exp::Cluster c = small_cluster(3);
  c.framework->set_task_failure_rate(0.01);  // ~1 %/s per attempt
  const double jct = exp::run_job(c, make_terasort(12, 12), 3600.0);
  EXPECT_GT(jct, 0.0);
  EXPECT_GT(c.framework->failed_attempts(), 0);
}

TEST(FailureInjection, RetriesCostUtilizationEfficiency) {
  exp::Cluster c = small_cluster(5);
  c.framework->set_task_failure_rate(0.02);
  exp::run_job(c, make_terasort(12, 12), 3600.0);
  EXPECT_LT(c.framework->utilization_efficiency(), 1.0);
}

TEST(FailureInjection, FailuresSlowJobsDown) {
  auto run = [](double rate) {
    exp::Cluster c = small_cluster(7);
    c.framework->set_task_failure_rate(rate);
    return exp::run_job(c, make_terasort(12, 12), 3600.0);
  };
  EXPECT_GT(run(0.03), run(0.0));
}

TEST(FailureInjection, ZeroRateInjectsNothing) {
  exp::Cluster c = small_cluster(9);
  exp::run_job(c, make_terasort(8, 8));
  EXPECT_EQ(c.framework->failed_attempts(), 0);
  EXPECT_DOUBLE_EQ(c.framework->utilization_efficiency(), 1.0);
}

TEST(FailureInjection, EveryTaskStillCompletesExactlyOnce) {
  exp::Cluster c = small_cluster(11);
  c.framework->set_task_failure_rate(0.02);
  const JobId id = c.framework->submit(make_wordcount(10, 5));
  exp::run_until_done(c, 3600.0);
  const Job* j = c.framework->find_job(id);
  ASSERT_TRUE(j->completed());
  for (std::size_t s = 0; s < j->stage_count(); ++s) {
    for (const TaskState& t : j->stage(s)) {
      int winners = 0;
      for (const AttemptRecord& a : t.attempts) winners += a.finished_ok ? 1 : 0;
      EXPECT_EQ(winners, 1);
    }
  }
}

TEST(DataSkew, SkewedJobsHaveLongerTails) {
  auto run = [](double alpha) {
    exp::Cluster c = small_cluster(13);
    JobSpec spec = make_wordcount(12, 6);
    spec.skew_alpha = alpha;
    return exp::run_job(c, spec);
  };
  const double uniform = run(0.0);
  const double skewed = run(1.1);
  EXPECT_GT(skewed, 1.1 * uniform);
}

TEST(DataSkew, SkewMultipliersAreBounded) {
  sim::Rng rng(1);
  JobSpec spec = make_wordcount(50, 1);
  spec.skew_alpha = 1.2;
  spec.skew_max = 4.0;
  const Job job(1, spec, sim::SimTime(0.0), rng);
  const double base = make_wordcount(50, 1).stages[0].task.phases[1].instructions;
  for (const TaskState& t : job.stage(0)) {
    const double mult = t.spec.phases[1].instructions / base;
    EXPECT_GE(mult, 0.6);              // lognormal jitter can dip slightly
    EXPECT_LE(mult, 4.0 * 1.4);        // pareto bound x jitter headroom
  }
}

TEST(DataSkew, SpeculationCannotFixDataSkew) {
  // A speculative copy re-processes the same oversized partition, so LATE
  // gains almost nothing against pure data skew (unlike against slow-host
  // or interference stragglers). Its copies are pure waste here.
  auto run = [](bool late) {
    exp::Cluster c = small_cluster(17);
    if (late) {
      c.framework->set_speculator(std::make_unique<base::LateSpeculator>(
          base::LateSpeculator::Params{.min_runtime_s = 4.0}, 12));
    }
    JobSpec spec = make_wordcount(12, 6);
    spec.skew_alpha = 1.1;
    return exp::run_job(c, spec);
  };
  const double without = run(false);
  const double with_late = run(true);
  EXPECT_GT(with_late, 0.9 * without);  // no meaningful win
}

}  // namespace
}  // namespace perfcloud::wl
