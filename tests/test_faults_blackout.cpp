// Monitor-blackout semantics of the identification pipeline: the paper's
// missing-as-zero rule under long sample gaps, and the guarantee that a
// suspect whose monitor is dark can never NEWLY cross the identification
// threshold on zero-filled data.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/identifier.hpp"
#include "exp/cluster.hpp"
#include "faults/fault_injector.hpp"
#include "faults/fault_plan.hpp"
#include "sim/correlation.hpp"
#include "sim/time_series.hpp"
#include "workloads/benchmarks.hpp"

namespace perfcloud {
namespace {

constexpr double kDt = 5.0;

/// Victim and suspect move together until `blackout_from`; the suspect then
/// records nothing until `blackout_to`, after which it tracks again.
void build_pair(sim::TimeSeries& victim, sim::TimeSeries& suspect, double until_s,
                double blackout_from, double blackout_to) {
  for (double t = 0.0; t <= until_s; t += kDt) {
    const double v = 10.0 + 8.0 * std::sin(t / 7.0);
    victim.add(sim::SimTime(t), v);
    if (t < blackout_from || t >= blackout_to) suspect.add(sim::SimTime(t), v * 3.0);
  }
}

TEST(MissingAsZero, CorrelationDecaysUnderBlackoutWithoutNanAndRecovers) {
  const std::size_t window = 12;

  // Fully before the blackout: near-perfect correlation.
  {
    sim::TimeSeries victim("v");
    sim::TimeSeries suspect("s");
    build_pair(victim, suspect, 100.0, 200.0, 200.0);
    EXPECT_GT(sim::pearson_missing_as_zero(victim, suspect, window), 0.95);
  }

  // The victim keeps sampling through a long blackout: every new interval
  // swaps a real pair for a zero-fill pair, so the evidence decays (not
  // necessarily monotonically — the zero-fill beats against the signal) —
  // and once the window is ALL zeros the suspect side has no variance,
  // which must read as 0, never NaN.
  sim::TimeSeries victim("v");
  sim::TimeSeries suspect("s");
  double last = 1.0;
  for (double until = 100.0; until <= 160.0; until += kDt) {
    victim.clear();
    suspect.clear();
    build_pair(victim, suspect, until, 100.0, 1e9);
    const double corr = sim::pearson_missing_as_zero(victim, suspect, window);
    EXPECT_TRUE(std::isfinite(corr)) << "at t=" << until;
    EXPECT_LT(std::abs(corr), 0.95) << "stale evidence held at t=" << until;
    last = std::abs(corr);
  }
  EXPECT_LT(last, 0.3);  // after 60 s dark, the evidence is mostly gone

  // Window fully inside the blackout: exactly zero, and the windowed mean
  // (the magnitude gate's input) is zero too — a fully-dark suspect cannot
  // pass `usage >= f * max_usage` while any live suspect has usage.
  victim.clear();
  suspect.clear();
  build_pair(victim, suspect, 200.0, 100.0, 1e9);
  EXPECT_DOUBLE_EQ(sim::pearson_missing_as_zero(victim, suspect, window), 0.0);
  EXPECT_DOUBLE_EQ(sim::windowed_mean_missing_as_zero(victim, suspect, window), 0.0);

  // Samples resume: one full window later the correlation is back.
  victim.clear();
  suspect.clear();
  build_pair(victim, suspect, 200.0 + kDt * static_cast<double>(window), 100.0, 200.0);
  EXPECT_GT(sim::pearson_missing_as_zero(victim, suspect, window), 0.95);
  EXPECT_GT(sim::windowed_mean_missing_as_zero(victim, suspect, window), 0.0);
}

TEST(Identifier, FullyDarkSuspectScoresZeroWhileLiveSuspectCrosses) {
  core::PerfCloudConfig cfg;
  sim::TimeSeries victim("v");
  sim::TimeSeries live("live");
  sim::TimeSeries dark("dark");
  // The dark suspect stopped reporting long before the current window.
  for (double t = 0.0; t <= 40.0; t += kDt) dark.add(sim::SimTime(t), 30.0);
  for (double t = 200.0; t <= 400.0; t += kDt) {
    const double v = 10.0 + 8.0 * std::sin(t / 7.0);
    victim.add(sim::SimTime(t), v);
    live.add(sim::SimTime(t), v * 3.0);
  }

  const std::vector<core::SuspectSignal> suspects{{1, &live}, {2, &dark}};
  core::AntagonistIdentifier identifier(cfg);
  const std::vector<core::SuspectScore> scores = identifier.score(victim, suspects);
  ASSERT_EQ(scores.size(), 2u);
  EXPECT_TRUE(scores[0].antagonist);
  EXPECT_FALSE(scores[1].antagonist);
  EXPECT_TRUE(std::isfinite(scores[1].correlation));
  EXPECT_DOUBLE_EQ(scores[1].correlation, 0.0);

  // Same verdicts from the incremental scorer the node manager uses.
  core::AntagonistIdentifier incremental(cfg);
  const std::vector<core::SuspectScore> inc =
      incremental.score_incremental(0, victim, suspects);
  ASSERT_EQ(inc.size(), 2u);
  EXPECT_TRUE(inc[0].antagonist);
  EXPECT_FALSE(inc[1].antagonist);
}

TEST(NodeManagerBlackout, DarkSuspectIsOnlyIdentifiedAfterSamplesResume) {
  exp::ClusterParams p;
  p.hosts = 1;
  p.workers = 10;
  p.seed = 2026;
  exp::Cluster c = exp::make_cluster(p);
  const int fio = exp::add_fio(
      c, "host-0", wl::FioRandomRead::Params{.duration_s = 400.0, .start_s = 20.0});
  exp::enable_perfcloud(c, core::PerfCloudConfig{});
  core::NodeManager& nm = c.node_manager(0);

  // fio's monitor is dark from before it even starts until t=100: whatever
  // pressure it exerts, the node manager sees only zero-fill for it.
  faults::FaultPlan plan;
  plan.monitor_blackout("host-0", 0.0, 100.0, fio);
  faults::FaultInjector injector(*c.cloud, plan);
  exp::attach_faults(c, injector);

  // Keep the cluster contended well past the blackout.
  for (const double at : {0.0, 100.0, 200.0}) {
    c.engine->at(sim::SimTime(at), [&c](sim::SimTime) {
      (void)c.framework->submit(wl::make_spark_logreg(30, 8));
    });
  }

  exp::run_for(c, 100.0);
  EXPECT_FALSE(nm.io_first_identified().contains(fio))
      << "a dark suspect must not be newly identified on zero-filled data";
  EXPECT_FALSE(nm.cpu_first_identified().contains(fio));

  exp::run_for(c, 200.0);
  ASSERT_TRUE(nm.io_first_identified().contains(fio))
      << "identification must recover once samples resume";
  EXPECT_GE(nm.io_first_identified().at(fio).seconds(), 100.0);
}

}  // namespace
}  // namespace perfcloud
