#include <gtest/gtest.h>

#include "hw/disk.hpp"
#include "sim/stats.hpp"

namespace perfcloud::hw {
namespace {

DiskConfig small_disk() {
  DiskConfig cfg;
  cfg.iops_capacity = 100.0;   // 10 ms per op
  cfg.bw_capacity = 100.0e6;   // 100 MB/s
  return cfg;
}

BlockDevice make_disk(DiskConfig cfg = small_disk(), std::uint64_t seed = 1) {
  return BlockDevice(cfg, sim::Rng(seed));
}

TenantDemand io_demand(double ops, sim::Bytes bytes, double cap_bps = kNoCap) {
  TenantDemand d;
  d.io_ops = ops;
  d.io_bytes = bytes;
  d.io_cap_bytes_per_sec = cap_bps;
  return d;
}

TEST(BlockDevice, NoDemandNoGrant) {
  BlockDevice disk = make_disk();
  const std::vector<TenantDemand> d = {io_demand(0.0, 0.0)};
  const auto g = disk.serve(1.0, d);
  EXPECT_DOUBLE_EQ(g[0].ops, 0.0);
  EXPECT_DOUBLE_EQ(g[0].bytes, 0.0);
  EXPECT_DOUBLE_EQ(g[0].wait_seconds, 0.0);
}

TEST(BlockDevice, LightLoadFullyServed) {
  BlockDevice disk = make_disk();
  const std::vector<TenantDemand> d = {io_demand(10.0, 1.0e6)};
  const auto g = disk.serve(1.0, d);
  EXPECT_NEAR(g[0].ops, 10.0, 1e-9);
  EXPECT_NEAR(g[0].bytes, 1.0e6, 1e-9);
  EXPECT_LT(disk.last_utilization(), 0.2);
}

TEST(BlockDevice, OpsBoundSaturation) {
  BlockDevice disk = make_disk();
  // 400 small ops demanded; device does 100 ops/s -> 4x oversubscribed.
  const std::vector<TenantDemand> d = {io_demand(400.0, 400.0 * 4096)};
  const auto g = disk.serve(1.0, d);
  EXPECT_NEAR(g[0].ops, 100.0, 2.0);
  EXPECT_GT(disk.last_utilization(), 3.5);
}

TEST(BlockDevice, BytesBoundSaturation) {
  BlockDevice disk = make_disk();
  // 300 MB in large requests; bw 100 MB/s dominates.
  const std::vector<TenantDemand> d = {io_demand(300.0, 300.0e6)};
  const auto g = disk.serve(1.0, d);
  EXPECT_LT(g[0].bytes, 110.0e6);
  EXPECT_GT(g[0].bytes, 20.0e6);
}

TEST(BlockDevice, ThrottleCapsThroughput) {
  BlockDevice disk = make_disk();
  const std::vector<TenantDemand> d = {io_demand(50.0, 50.0e6, /*cap=*/10.0e6)};
  const auto g = disk.serve(1.0, d);
  EXPECT_LE(g[0].bytes, 10.0e6 + 1e-6);
  // Ops scale down with bytes (request mix preserved).
  EXPECT_NEAR(g[0].ops / 50.0, g[0].bytes / 50.0e6, 1e-9);
}

TEST(BlockDevice, ThrottleIopsCap) {
  BlockDevice disk = make_disk();
  TenantDemand d = io_demand(80.0, 80.0 * 4096);
  d.io_cap_iops = 20.0;
  const auto g = disk.serve(1.0, {&d, 1});
  EXPECT_LE(g[0].ops, 20.0 + 1e-6);
}

TEST(BlockDevice, EqualTenantsGetEqualService) {
  BlockDevice disk = make_disk();
  const std::vector<TenantDemand> d = {io_demand(400.0, 400.0 * 4096),
                                       io_demand(400.0, 400.0 * 4096)};
  const auto g = disk.serve(1.0, d);
  EXPECT_NEAR(g[0].ops, g[1].ops, 1e-6);
}

TEST(BlockDevice, WeightedTenantsSplitProportionally) {
  BlockDevice disk = make_disk();
  std::vector<TenantDemand> d = {io_demand(400.0, 400.0 * 4096), io_demand(400.0, 400.0 * 4096)};
  d[0].io_weight = 3.0;
  const auto g = disk.serve(1.0, d);
  EXPECT_NEAR(g[0].ops / g[1].ops, 3.0, 0.01);
}

TEST(BlockDevice, WaitGrowsWithContention) {
  // Same tenant demand; measure its wait ratio alone vs next to a hog.
  BlockDevice alone = make_disk(small_disk(), 7);
  BlockDevice shared = make_disk(small_disk(), 7);
  const TenantDemand victim = io_demand(20.0, 20.0 * 512 * 1024);
  const TenantDemand hog = io_demand(500.0, 500.0 * 4096);

  double wait_alone = 0.0;
  double ops_alone = 0.0;
  double wait_shared = 0.0;
  double ops_shared = 0.0;
  for (int t = 0; t < 50; ++t) {
    const auto ga = alone.serve(1.0, {&victim, 1});
    wait_alone += ga[0].wait_seconds;
    ops_alone += ga[0].ops;
    const std::vector<TenantDemand> both = {victim, hog};
    const auto gs = shared.serve(1.0, both);
    wait_shared += gs[0].wait_seconds;
    ops_shared += gs[0].ops;
  }
  const double ratio_alone = wait_alone / ops_alone;
  const double ratio_shared = wait_shared / ops_shared;
  EXPECT_GT(ratio_shared, 3.0 * ratio_alone);
}

TEST(BlockDevice, WaitPerOpScalesWithUtilization) {
  DiskConfig cfg = small_disk();
  cfg.wait_jitter_sigma = 0.0;
  BlockDevice light = make_disk(cfg);
  BlockDevice heavy = make_disk(cfg);
  // Same request mix at 20 % vs 400 % of the op capacity.
  const std::vector<TenantDemand> d_light = {io_demand(20.0, 20.0 * 4096)};
  const std::vector<TenantDemand> d_heavy = {io_demand(400.0, 400.0 * 4096)};
  const auto gl = light.serve(1.0, d_light);
  const auto gh = heavy.serve(1.0, d_heavy);
  const double ratio_light = gl[0].wait_seconds / gl[0].ops;
  const double ratio_heavy = gh[0].wait_seconds / gh[0].ops;
  EXPECT_GT(ratio_heavy, 10.0 * ratio_light);
}

TEST(BlockDevice, BurstyNeighbourSpreadsWaits) {
  // Two identical fair victims next to a deep-queue tenant: their wait
  // ratios diverge; next to an equal-demand fair tenant they stay close.
  DiskConfig cfg = small_disk();
  BlockDevice fair_world = make_disk(cfg, 5);
  BlockDevice bursty_world = make_disk(cfg, 5);
  TenantDemand victim = io_demand(10.0, 10.0 * 512 * 1024);
  TenantDemand fair_hog = io_demand(300.0, 300.0 * 4096);
  TenantDemand bursty_hog = fair_hog;
  bursty_hog.io_weight = 8.0;

  double fair_gap = 0.0;
  double bursty_gap = 0.0;
  for (int t = 0; t < 100; ++t) {
    const std::vector<TenantDemand> fw = {victim, victim, fair_hog};
    const auto gf = fair_world.serve(0.1, fw);
    fair_gap += std::abs(gf[0].wait_seconds / gf[0].ops - gf[1].wait_seconds / gf[1].ops);
    const std::vector<TenantDemand> bw = {victim, victim, bursty_hog};
    const auto gb = bursty_world.serve(0.1, bw);
    bursty_gap += std::abs(gb[0].wait_seconds / gb[0].ops - gb[1].wait_seconds / gb[1].ops);
  }
  EXPECT_GT(bursty_gap, 3.0 * fair_gap);
}

TEST(BlockDevice, JitterIsDeterministicPerSeed) {
  BlockDevice a = make_disk(small_disk(), 42);
  BlockDevice b = make_disk(small_disk(), 42);
  const std::vector<TenantDemand> d = {io_demand(50.0, 50.0 * 4096),
                                       io_demand(80.0, 80.0 * 4096)};
  for (int t = 0; t < 10; ++t) {
    const auto ga = a.serve(0.5, d);
    const auto gb = b.serve(0.5, d);
    for (std::size_t i = 0; i < d.size(); ++i) {
      EXPECT_DOUBLE_EQ(ga[i].wait_seconds, gb[i].wait_seconds);
      EXPECT_DOUBLE_EQ(ga[i].ops, gb[i].ops);
    }
  }
}

TEST(BlockDevice, ZeroTickIsSafe) {
  BlockDevice disk = make_disk();
  const std::vector<TenantDemand> d = {io_demand(10.0, 1e6)};
  const auto g = disk.serve(0.0, d);
  EXPECT_DOUBLE_EQ(g[0].ops, 0.0);
}

TEST(BlockDevice, ThrottledTenantDoesNotBlockOthers) {
  BlockDevice disk = make_disk();
  const std::vector<TenantDemand> d = {io_demand(500.0, 500.0 * 4096, /*cap=*/4096.0 * 5),
                                       io_demand(50.0, 50.0 * 512 * 1024)};
  const auto g = disk.serve(1.0, d);
  EXPECT_LE(g[0].ops, 5.5);
  // Tenant 1 gets nearly its full demand now that the hog is throttled.
  EXPECT_GT(g[1].ops, 40.0);
}

}  // namespace
}  // namespace perfcloud::hw
