#include <gtest/gtest.h>

#include "workloads/worker.hpp"

namespace perfcloud::wl {
namespace {

TaskSpec compute_task(double instructions) {
  TaskSpec t;
  t.phases = {PhaseSpec{PhaseKind::kCompute, instructions, 0.0, 0.0}};
  return t;
}

TaskSpec io_task(sim::Bytes bytes) {
  TaskSpec t;
  t.phases = {PhaseSpec{PhaseKind::kRead, 0.0, bytes / (512.0 * 1024), bytes}};
  return t;
}

TEST(ScaleOutWorker, SlotAccounting) {
  ScaleOutWorker w(2);
  EXPECT_EQ(w.free_slots(), 2);
  TaskAttempt a(compute_task(1e9), sim::SimTime(0.0));
  TaskAttempt b(compute_task(1e9), sim::SimTime(0.0));
  w.place(&a);
  EXPECT_EQ(w.free_slots(), 1);
  w.place(&b);
  EXPECT_EQ(w.free_slots(), 0);
  TaskAttempt c(compute_task(1e9), sim::SimTime(0.0));
  EXPECT_THROW(w.place(&c), std::logic_error);
  w.remove(&a);
  EXPECT_EQ(w.free_slots(), 1);
}

TEST(ScaleOutWorker, RemoveUnknownIsNoop) {
  ScaleOutWorker w(2);
  TaskAttempt a(compute_task(1e9), sim::SimTime(0.0));
  w.remove(&a);
  EXPECT_EQ(w.free_slots(), 2);
}

TEST(ScaleOutWorker, IdleWorkerEmitsDaemonBaseline) {
  ScaleOutWorker w(2);
  const hw::TenantDemand d = w.demand(sim::SimTime(0.0), 1.0);
  EXPECT_GT(d.cpu_core_seconds, 0.0);
  EXPECT_LT(d.cpu_core_seconds, 0.1);
  EXPECT_GT(d.io_ops, 0.0);
}

TEST(ScaleOutWorker, AggregatesTaskDemands) {
  ScaleOutWorker w(2);
  TaskAttempt a(compute_task(1e9), sim::SimTime(0.0));
  TaskAttempt b(io_task(64.0e6), sim::SimTime(0.0));
  w.place(&a);
  w.place(&b);
  const hw::TenantDemand d = w.demand(sim::SimTime(0.0), 1.0);
  EXPECT_GT(d.cpu_core_seconds, 1.0);  // compute task wants a full core
  EXPECT_GT(d.io_bytes, 1.0e6);        // io task reads
}

TEST(ScaleOutWorker, DistributesGrantByShares) {
  ScaleOutWorker w(2);
  TaskAttempt cpu_heavy(compute_task(1e9), sim::SimTime(0.0));
  TaskAttempt io_heavy(io_task(64.0e6), sim::SimTime(0.0));
  w.place(&cpu_heavy);
  w.place(&io_heavy);
  const hw::TenantDemand d = w.demand(sim::SimTime(0.0), 1.0);
  hw::TenantGrant g;
  g.instructions = 1e8;
  g.io_ops = d.io_ops;
  g.io_bytes = d.io_bytes;
  w.apply(g, sim::SimTime(1.0), 1.0);
  EXPECT_GT(cpu_heavy.progress(), 0.0);
  EXPECT_GT(io_heavy.progress(), 0.0);
}

TEST(ScaleOutWorker, TaskRunsToCompletionUnderRepeatedTicks) {
  ScaleOutWorker w(2);
  TaskAttempt a(compute_task(1e8), sim::SimTime(0.0));
  w.place(&a);
  for (int t = 0; t < 1000 && !a.done(); ++t) {
    const hw::TenantDemand d = w.demand(sim::SimTime(t * 0.1), 0.1);
    hw::TenantGrant g;
    g.cpu_core_seconds = d.cpu_core_seconds;
    g.instructions = d.cpu_core_seconds * 2.3e9;
    g.io_ops = d.io_ops;
    g.io_bytes = d.io_bytes;
    w.apply(g, sim::SimTime(t * 0.1), 0.1);
  }
  EXPECT_TRUE(a.done());
}

TEST(ScaleOutWorker, MemoryProfileIsCpuWeightedAverage) {
  ScaleOutWorker w(2);
  TaskSpec heavy = compute_task(1e9);
  heavy.mem.bw_per_cpu_sec = 4.0e9;
  TaskSpec light = compute_task(1e9);
  light.mem.bw_per_cpu_sec = 1.0e9;
  TaskAttempt a(heavy, sim::SimTime(0.0));
  TaskAttempt b(light, sim::SimTime(0.0));
  w.place(&a);
  w.place(&b);
  const hw::TenantDemand d = w.demand(sim::SimTime(0.0), 1.0);
  EXPECT_NEAR(d.mem_bw_per_cpu_sec, 2.5e9, 0.1e9);
}

TEST(ScaleOutWorker, FootprintsSum) {
  ScaleOutWorker w(2);
  TaskSpec t1 = compute_task(1e9);
  t1.mem.llc_footprint = 8.0e6;
  TaskSpec t2 = compute_task(1e9);
  t2.mem.llc_footprint = 6.0e6;
  TaskAttempt a(t1, sim::SimTime(0.0));
  TaskAttempt b(t2, sim::SimTime(0.0));
  w.place(&a);
  w.place(&b);
  const hw::TenantDemand d = w.demand(sim::SimTime(0.0), 1.0);
  EXPECT_GT(d.llc_footprint, 14.0e6);  // sum + daemon
}

}  // namespace
}  // namespace perfcloud::wl
