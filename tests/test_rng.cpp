#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <vector>

#include "sim/rng.hpp"
#include "sim/stats.hpp"

namespace perfcloud::sim {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int differing = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() != b()) ++differing;
  }
  EXPECT_GT(differing, 95);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespected) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Rng r(11);
  RunningStats s;
  for (int i = 0; i < 100000; ++i) s.add(r.uniform());
  EXPECT_NEAR(s.mean(), 0.5, 0.01);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng r(13);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = r.uniform_int(2, 5);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 5);
    saw_lo |= v == 2;
    saw_hi |= v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformIntSingleton) {
  Rng r(17);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(r.uniform_int(9, 9), 9);
}

TEST(Rng, NormalMomentsMatch) {
  Rng r(19);
  RunningStats s;
  for (int i = 0; i < 100000; ++i) s.add(r.normal());
  EXPECT_NEAR(s.mean(), 0.0, 0.02);
  EXPECT_NEAR(s.stddev(), 1.0, 0.02);
}

TEST(Rng, NormalWithParams) {
  Rng r(23);
  RunningStats s;
  for (int i = 0; i < 50000; ++i) s.add(r.normal(10.0, 2.0));
  EXPECT_NEAR(s.mean(), 10.0, 0.05);
  EXPECT_NEAR(s.stddev(), 2.0, 0.05);
}

TEST(Rng, LognormalMedianIsMedian) {
  Rng r(29);
  std::vector<double> xs;
  xs.reserve(50000);
  for (int i = 0; i < 50000; ++i) xs.push_back(r.lognormal_median(4.0, 0.8));
  EXPECT_NEAR(percentile_of(xs, 0.5), 4.0, 0.1);
  for (double x : xs) EXPECT_GT(x, 0.0);
}

TEST(Rng, ExponentialMean) {
  Rng r(31);
  RunningStats s;
  for (int i = 0; i < 100000; ++i) s.add(r.exponential(7.0));
  EXPECT_NEAR(s.mean(), 7.0, 0.15);
}

TEST(Rng, BernoulliFrequency) {
  Rng r(37);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += r.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / 100000.0, 0.3, 0.01);
}

TEST(Rng, BernoulliDegenerate) {
  Rng r(41);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.bernoulli(0.0));
    EXPECT_TRUE(r.bernoulli(1.0));
  }
}

TEST(Rng, ParetoStaysInBounds) {
  Rng r(43);
  for (int i = 0; i < 10000; ++i) {
    const double v = r.pareto(1.0, 100.0, 1.2);
    EXPECT_GE(v, 1.0 - 1e-9);
    EXPECT_LE(v, 100.0 + 1e-9);
  }
}

TEST(Rng, ParetoIsHeavyTailedTowardLow) {
  Rng r(47);
  int low = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    if (r.pareto(1.0, 100.0, 1.5) < 10.0) ++low;
  }
  // Most mass near the lower bound for alpha > 1.
  EXPECT_GT(low, n * 8 / 10);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(51);
  Rng child = parent.split(1);
  Rng child2 = parent.split(1);  // parent state advanced -> different stream
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (child() == child2()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Rng, SplitWithDifferentSaltDiffers) {
  Rng p1(53);
  Rng p2(53);
  Rng a = p1.split(1);
  Rng b = p2.split(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Rng, SplitIsReproducible) {
  Rng p1(59);
  Rng p2(59);
  Rng a = p1.split(77);
  Rng b = p2.split(77);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Rng>);
  EXPECT_EQ(Rng::min(), 0u);
  EXPECT_EQ(Rng::max(), ~std::uint64_t{0});
}

TEST(SplitMix64, KnownSequenceIsStable) {
  std::uint64_t s = 0;
  const std::uint64_t a = splitmix64(s);
  const std::uint64_t b = splitmix64(s);
  EXPECT_NE(a, b);
  std::uint64_t s2 = 0;
  EXPECT_EQ(splitmix64(s2), a);
  EXPECT_EQ(splitmix64(s2), b);
}

}  // namespace
}  // namespace perfcloud::sim
