// Regression tests for the identifier's pair-state keying (DESIGN.md §5i).
//
// Pair state used to be keyed by the victim TimeSeries' address; when a
// victim died and the allocator handed its address to a new series, the new
// victim silently inherited the old accumulators (an ABA hazard). State is
// now keyed by a caller-assigned VictimKey, so identity is explicit and
// address-independent. These tests run under ASan/TSan via the regular
// sanitizer ctest sweeps of the perf suite.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/identifier.hpp"
#include "sim/rng.hpp"
#include "sim/time_series.hpp"

namespace perfcloud::core {
namespace {

sim::TimeSeries linear_series(int n, double slope, double start_t = 0.0) {
  sim::TimeSeries ts;
  for (int i = 0; i < n; ++i) ts.add(sim::SimTime(start_t + 5.0 * i), slope * i);
  return ts;
}

TEST(IdentifierKeys, DeadVictimsStateNeverResurrectsAtReusedAddress) {
  PerfCloudConfig cfg;
  cfg.correlation_window = 8;
  AntagonistIdentifier ident(cfg);
  const AntagonistIdentifier batch(cfg);

  sim::TimeSeries suspect = linear_series(40, 2.0);
  const std::vector<SuspectSignal> suspects{{1, &suspect}};

  // Victim A accumulates 30 samples of pair state under key 0, then dies.
  auto victim_a = std::make_unique<sim::TimeSeries>(linear_series(30, 1.0));
  (void)ident.score_incremental(0, *victim_a, suspects);
  victim_a.reset();

  // Victim B — very possibly at victim A's freed address — has MORE samples
  // than A had. Under address keying the identifier would treat it as A and
  // consume only the tail; under key-based state (key 1) it starts fresh
  // and must reproduce the batch scorer exactly.
  auto victim_b = std::make_unique<sim::TimeSeries>(linear_series(40, -3.0));
  const auto got = ident.score_incremental(1, *victim_b, suspects);
  const auto want = batch.score(*victim_b, suspects);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got[i].correlation, want[i].correlation, 1e-9) << i;
    EXPECT_EQ(got[i].antagonist, want[i].antagonist) << i;
  }
}

TEST(IdentifierKeys, DistinctKeysKeepIndependentStateForSameSeries) {
  // One physical series scored under two keys (as the node manager scores
  // an app's I/O and CPI signals with keys 2a and 2a+1): the two states
  // must not bleed into each other.
  PerfCloudConfig cfg;
  cfg.correlation_window = 8;
  AntagonistIdentifier ident(cfg);
  const AntagonistIdentifier batch(cfg);

  sim::TimeSeries suspect = linear_series(50, 1.5);
  const std::vector<SuspectSignal> suspects{{3, &suspect}};
  sim::TimeSeries victim = linear_series(20, 1.0);

  // Key 0 consumes the first 20 samples; key 1 has seen nothing yet.
  (void)ident.score_incremental(0, victim, suspects);
  for (int i = 20; i < 35; ++i) victim.add(sim::SimTime(5.0 * i), 7.0 * i);

  // Scoring under key 1 must ingest the WHOLE window afresh — identical to
  // batch — even though key 0 already consumed most of the series.
  const auto got1 = ident.score_incremental(1, victim, suspects);
  const auto want = batch.score(victim, suspects);
  ASSERT_EQ(got1.size(), want.size());
  EXPECT_NEAR(got1[0].correlation, want[0].correlation, 1e-9);

  // And key 0 continues incrementally from sample 20 — also matching batch.
  const auto got0 = ident.score_incremental(0, victim, suspects);
  EXPECT_NEAR(got0[0].correlation, want[0].correlation, 1e-9);
}

TEST(IdentifierKeys, SuspectSetGrowsAndShrinksWithoutCrossTalk) {
  PerfCloudConfig cfg;
  cfg.correlation_window = 12;
  cfg.min_correlation_samples = 3;
  AntagonistIdentifier ident(cfg);
  const AntagonistIdentifier batch(cfg);

  sim::Rng rng(17);
  sim::TimeSeries victim("victim");
  sim::TimeSeries s1("s1");
  sim::TimeSeries s2("s2");
  sim::TimeSeries s3("s3");

  const auto expect_matches_batch = [&](const std::vector<SuspectSignal>& suspects, int tag) {
    const auto got = ident.score_incremental(0, victim, suspects);
    const auto want = batch.score(victim, suspects);
    ASSERT_EQ(got.size(), want.size()) << tag;
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].vm_id, want[i].vm_id) << tag;
      EXPECT_NEAR(got[i].correlation, want[i].correlation, 1e-9) << tag << " i=" << i;
      EXPECT_EQ(got[i].antagonist, want[i].antagonist) << tag << " i=" << i;
    }
  };

  for (int i = 0; i < 60; ++i) {
    const sim::SimTime t(5.0 * i);
    const double x = rng.uniform(0.0, 20.0);
    victim.add(t, x);
    s1.add(t, 2.0 * x + rng.uniform(0.0, 2.0));
    if (rng.uniform() < 0.7) s2.add(t, rng.uniform(0.0, 20.0));
    s3.add(t, 30.0 - x);

    if (i < 20) {
      expect_matches_batch({{1, &s1}, {2, &s2}}, i);
    } else if (i < 40) {
      // Suspect 3 appears mid-run: its pair state starts at the current
      // window, exactly like the batch scorer's windowed view.
      expect_matches_batch({{1, &s1}, {2, &s2}, {3, &s3}}, i);
    } else {
      // Suspects 1 and 3 left (throttled away / evicted): scoring must not
      // touch their lingering states, and suspect 2 stays incremental.
      expect_matches_batch({{2, &s2}}, i);
    }
  }
}

TEST(IdentifierKeys, AppendingOverloadAccumulatesAcrossVictims) {
  // The node manager accumulates several victims' scores in one retained
  // vector; the out-param overload must append, not clobber.
  PerfCloudConfig cfg;
  cfg.correlation_window = 8;
  cfg.min_correlation_samples = 3;
  AntagonistIdentifier ident(cfg);

  sim::TimeSeries suspect = linear_series(20, 2.0);
  const std::vector<SuspectSignal> suspects{{5, &suspect}};
  sim::TimeSeries io_victim = linear_series(20, 1.0);
  sim::TimeSeries cpi_victim = linear_series(20, -1.0);

  std::vector<SuspectScore> out;
  ident.score_incremental(0, io_victim, suspects, out);
  ASSERT_EQ(out.size(), 1u);
  ident.score_incremental(1, cpi_victim, suspects, out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].vm_id, 5);
  EXPECT_EQ(out[1].vm_id, 5);
  // Opposite-slope victims: correlations are mirrored, states independent.
  EXPECT_NEAR(out[0].correlation, -out[1].correlation, 1e-9);
}

}  // namespace
}  // namespace perfcloud::core
