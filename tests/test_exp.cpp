#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "exp/cluster.hpp"
#include "exp/report.hpp"
#include "workloads/benchmarks.hpp"

namespace perfcloud::exp {
namespace {

TEST(ClusterBuilder, ShapeMatchesParams) {
  ClusterParams p;
  p.hosts = 3;
  p.workers = 7;
  Cluster c = make_cluster(p);
  EXPECT_EQ(c.hosts.size(), 3u);
  EXPECT_EQ(c.worker_vm_ids.size(), 7u);
  EXPECT_EQ(c.framework->worker_count(), 7u);
  // Workers spread round-robin: 3 + 2 + 2.
  EXPECT_EQ(c.cloud->vms_on_host("host-0").size(), 3u);
  EXPECT_EQ(c.cloud->vms_on_host("host-1").size(), 2u);
}

TEST(ClusterBuilder, WorkersAreHighPriorityAppVms) {
  ClusterParams p;
  p.workers = 2;
  Cluster c = make_cluster(p);
  for (const cloud::VmRecord& r : c.cloud->all_vms()) {
    EXPECT_EQ(r.priority, virt::Priority::kHigh);
    EXPECT_EQ(r.app_id, "hadoop");
  }
}

TEST(ClusterBuilder, VmLookupWorksAcrossHosts) {
  ClusterParams p;
  p.hosts = 2;
  p.workers = 4;
  Cluster c = make_cluster(p);
  for (int id : c.worker_vm_ids) EXPECT_EQ(c.vm(id).id(), id);
  EXPECT_THROW(static_cast<void>(c.vm(999)), std::invalid_argument);
}

TEST(ClusterBuilder, AntagonistHelpersBootLowPriorityVms) {
  ClusterParams p;
  p.workers = 2;
  Cluster c = make_cluster(p);
  const int fio = add_fio(c, "host-0");
  const int stream = add_stream(c, "host-0", wl::StreamBenchmark::Params{.threads = 8});
  const int oltp = add_oltp(c, "host-0");
  const int cpu = add_sysbench_cpu(c, "host-0");
  for (int id : {fio, stream, oltp, cpu}) {
    EXPECT_EQ(c.vm(id).priority(), virt::Priority::kLow);
    EXPECT_NE(c.vm(id).guest(), nullptr);
  }
  EXPECT_EQ(c.vm(stream).vcpus(), 8);  // sized to the thread count
}

TEST(ClusterBuilder, EnablePerfcloudOncePerCluster) {
  ClusterParams p;
  p.workers = 2;
  Cluster c = make_cluster(p);
  enable_perfcloud(c, core::PerfCloudConfig{});
  EXPECT_EQ(c.node_managers.size(), 1u);
  EXPECT_THROW(enable_perfcloud(c, core::PerfCloudConfig{}), std::logic_error);
}

TEST(RunHelpers, RunJobThrowsOnTimeout) {
  ClusterParams p;
  p.workers = 2;
  Cluster c = make_cluster(p);
  EXPECT_THROW(run_job(c, wl::make_terasort(50, 50), /*t_max_s=*/1.0), std::runtime_error);
}

TEST(RunHelpers, RunForAdvancesClock) {
  ClusterParams p;
  p.workers = 2;
  Cluster c = make_cluster(p);
  run_for(c, 12.5);
  EXPECT_NEAR(c.engine->now().seconds(), 12.5, 1e-9);
}

TEST(Report, TablePrintsAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row("beta", {2.5}, 1);
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("2.5"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Report, RowWidthMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Report, CsvRoundTrip) {
  Table t({"x", "y"});
  t.add_row({"1", "2"});
  const std::string path = "/tmp/perfcloud_test_table.csv";
  t.write_csv(path);
  std::ifstream f(path);
  std::string line;
  std::getline(f, line);
  EXPECT_EQ(line, "x,y");
  std::getline(f, line);
  EXPECT_EQ(line, "1,2");
}

TEST(Report, FmtPrecision) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(2.0, 0), "2");
}

}  // namespace
}  // namespace perfcloud::exp
