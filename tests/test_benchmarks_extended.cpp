// The extended PUMA/SparkBench suite, plus property sweeps over every
// benchmark: all of them must build valid specs, run to completion on an
// idle cluster, and scale sensibly with input size.
#include <gtest/gtest.h>

#include "exp/cluster.hpp"
#include "workloads/benchmarks.hpp"

namespace perfcloud::wl {
namespace {

TEST(ExtendedBenchmarks, SuiteContainsPaperSixPlusExtras) {
  const auto& paper = benchmark_names();
  const auto& all = extended_benchmark_names();
  EXPECT_EQ(paper.size(), 6u);
  EXPECT_EQ(all.size(), 10u);
  for (const std::string& name : paper) {
    EXPECT_NE(std::find(all.begin(), all.end(), name), all.end()) << name;
  }
}

TEST(ExtendedBenchmarks, GrepIsMapOnlyAndSelective) {
  const JobSpec g = make_grep(8);
  EXPECT_EQ(g.stages.size(), 1u);
  sim::Bytes written = 0.0;
  sim::Bytes read = 0.0;
  for (const PhaseSpec& p : g.stages[0].task.phases) {
    if (p.kind == PhaseKind::kWrite) written += p.io_bytes;
    if (p.kind == PhaseKind::kRead) read += p.io_bytes;
  }
  EXPECT_LT(written, 0.01 * read);
}

TEST(ExtendedBenchmarks, SelfJoinIsShuffleHeavy) {
  const JobSpec sj = make_self_join(8, 4);
  sim::Bytes map_out = 0.0;
  for (const PhaseSpec& p : sj.stages[0].task.phases) {
    if (p.kind == PhaseKind::kWrite) map_out += p.io_bytes;
  }
  EXPECT_GT(map_out, 0.4 * kHdfsBlock);  // large intermediate data
}

TEST(ExtendedBenchmarks, KmeansIterationsAreComputeDominated) {
  const JobSpec km = make_spark_kmeans(8, 4);
  EXPECT_EQ(km.stages.size(), 5u);
  const TaskSpec& iter = km.stages[1].task;
  double instr = 0.0;
  sim::Bytes io = 0.0;
  for (const PhaseSpec& p : iter.phases) {
    instr += p.instructions;
    io += p.io_bytes;
  }
  EXPECT_GT(instr, 2.5e9);
  EXPECT_LT(io, 8.0 * 1024 * 1024);
}

// Property sweep: every benchmark in the extended suite completes on an
// idle cluster, within a sane time, deterministically.
class EveryBenchmark : public ::testing::TestWithParam<std::string> {};

TEST_P(EveryBenchmark, CompletesOnIdleCluster) {
  exp::ClusterParams p;
  p.workers = 8;
  p.seed = 11;
  exp::Cluster c = exp::make_cluster(p);
  const double jct = exp::run_job(c, make_benchmark(GetParam(), 8));
  EXPECT_GT(jct, 0.0);
  EXPECT_LT(jct, 300.0);
}

TEST_P(EveryBenchmark, DeterministicPerSeed) {
  auto run = [&] {
    exp::ClusterParams p;
    p.workers = 6;
    p.seed = 21;
    exp::Cluster c = exp::make_cluster(p);
    return exp::run_job(c, make_benchmark(GetParam(), 6));
  };
  EXPECT_DOUBLE_EQ(run(), run());
}

TEST_P(EveryBenchmark, BiggerInputsTakeAtLeastAsLong) {
  auto run = [&](int size) {
    exp::ClusterParams p;
    p.workers = 6;
    p.seed = 31;
    exp::Cluster c = exp::make_cluster(p);
    return exp::run_job(c, make_benchmark(GetParam(), size));
  };
  const double small = run(4);
  const double large = run(24);
  EXPECT_GE(large, small);
}

INSTANTIATE_TEST_SUITE_P(AllSuiteMembers, EveryBenchmark,
                         ::testing::ValuesIn(extended_benchmark_names()),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& ch : name) {
                             if (ch == '-') ch = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace perfcloud::wl
