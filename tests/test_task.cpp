#include <gtest/gtest.h>

#include "workloads/task.hpp"

namespace perfcloud::wl {
namespace {

TaskSpec simple_spec() {
  TaskSpec t;
  t.phases = {
      PhaseSpec{PhaseKind::kRead, 100.0, 2.0, 1024.0},
      PhaseSpec{PhaseKind::kCompute, 1000.0, 0.0, 0.0},
      PhaseSpec{PhaseKind::kWrite, 50.0, 1.0, 512.0},
  };
  return t;
}

TEST(TaskSpecFn, TotalWorkCombinesInstrAndIo) {
  const TaskSpec t = simple_spec();
  EXPECT_DOUBLE_EQ(total_work(t), 1150.0 + (1024.0 + 512.0) * kInstrPerIoByte);
}

TEST(TaskAttempt, StartsAtZeroProgress) {
  TaskAttempt a(simple_spec(), sim::SimTime(5.0));
  EXPECT_FALSE(a.done());
  EXPECT_DOUBLE_EQ(a.progress(), 0.0);
  EXPECT_DOUBLE_EQ(a.started().seconds(), 5.0);
}

TEST(TaskAttempt, DemandsCpuAndIoInReadPhase) {
  TaskAttempt a(simple_spec(), sim::SimTime(0.0));
  const hw::TenantDemand d = a.demand(0.1);
  EXPECT_DOUBLE_EQ(d.cpu_core_seconds, 0.1);
  EXPECT_GT(d.io_bytes, 0.0);
  EXPECT_GT(d.io_ops, 0.0);
}

TEST(TaskAttempt, ComputePhaseHasNoIo) {
  TaskAttempt a(simple_spec(), sim::SimTime(0.0));
  a.advance(100.0, 2.0, 1024.0);  // completes the read phase exactly
  const hw::TenantDemand d = a.demand(0.1);
  EXPECT_DOUBLE_EQ(d.io_bytes, 0.0);
  EXPECT_DOUBLE_EQ(d.io_ops, 0.0);
  EXPECT_DOUBLE_EQ(d.cpu_core_seconds, 0.1);
}

TEST(TaskAttempt, PhaseRequiresBothBudgets) {
  TaskAttempt a(simple_spec(), sim::SimTime(0.0));
  a.advance(100.0, 0.0, 0.0);  // instructions done, I/O not
  EXPECT_LT(a.progress(), 1.0);
  const hw::TenantDemand d = a.demand(0.1);
  EXPECT_DOUBLE_EQ(d.cpu_core_seconds, 0.0);  // no more instructions needed
  EXPECT_GT(d.io_bytes, 0.0);                 // still reading
}

TEST(TaskAttempt, CompletesThroughAllPhases) {
  TaskAttempt a(simple_spec(), sim::SimTime(0.0));
  int guard = 0;
  while (!a.done() && guard++ < 10000) {
    const hw::TenantDemand d = a.demand(0.1);
    a.advance(d.cpu_core_seconds > 0.0 ? 200.0 : 0.0, d.io_ops, d.io_bytes);
  }
  EXPECT_TRUE(a.done());
  EXPECT_DOUBLE_EQ(a.progress(), 1.0);
  EXPECT_DOUBLE_EQ(a.demand(0.1).cpu_core_seconds, 0.0);
}

TEST(TaskAttempt, ProgressIsMonotone) {
  TaskAttempt a(simple_spec(), sim::SimTime(0.0));
  double last = 0.0;
  for (int i = 0; i < 50 && !a.done(); ++i) {
    a.advance(30.0, 0.2, 100.0);
    EXPECT_GE(a.progress(), last);
    last = a.progress();
  }
}

TEST(TaskAttempt, ProgressRateUsesElapsedTime) {
  TaskAttempt a(simple_spec(), sim::SimTime(10.0));
  EXPECT_DOUBLE_EQ(a.progress_rate(sim::SimTime(10.0)), 0.0);
  a.advance(100.0, 2.0, 1024.0);
  const double rate = a.progress_rate(sim::SimTime(20.0));
  EXPECT_NEAR(rate, a.progress() / 10.0, 1e-12);
}

TEST(TaskAttempt, OverdeliveryIsClampedPerPhase) {
  TaskAttempt a(simple_spec(), sim::SimTime(0.0));
  // Over-delivery completes at most the current phase; leftover budget is
  // dropped, not carried into the next phase.
  a.advance(1e12, 1e12, 1e12);
  EXPECT_FALSE(a.done());
  a.advance(1e12, 1e12, 1e12);
  a.advance(1e12, 1e12, 1e12);
  EXPECT_TRUE(a.done());
  EXPECT_DOUBLE_EQ(a.progress(), 1.0);
  a.advance(1.0, 1.0, 1.0);  // advancing a done task is a no-op
  EXPECT_TRUE(a.done());
}

TEST(TaskAttempt, IoRateLimitBoundsDemand) {
  TaskSpec t;
  t.phases = {PhaseSpec{PhaseKind::kRead, 0.0, 1000.0, 1.0e9}};
  t.max_io_rate = 10.0e6;
  TaskAttempt a(t, sim::SimTime(0.0));
  const hw::TenantDemand d = a.demand(0.5);
  EXPECT_LE(d.io_bytes, 5.0e6 + 1.0);
}

TEST(TaskAttempt, MemoryProfilePropagates) {
  TaskSpec t = simple_spec();
  t.mem.llc_footprint = 123.0;
  t.mem.bw_per_cpu_sec = 456.0;
  t.mem.cpi_base = 1.5;
  t.mem.mem_sensitivity = 2.0;
  TaskAttempt a(t, sim::SimTime(0.0));
  const hw::TenantDemand d = a.demand(0.1);
  EXPECT_DOUBLE_EQ(d.llc_footprint, 123.0);
  EXPECT_DOUBLE_EQ(d.mem_bw_per_cpu_sec, 456.0);
  EXPECT_DOUBLE_EQ(d.cpi_base, 1.5);
  EXPECT_DOUBLE_EQ(d.mem_sensitivity, 2.0);
}

TEST(TaskAttempt, EmptySpecIsImmediatelyDone) {
  TaskSpec t;
  TaskAttempt a(t, sim::SimTime(0.0));
  EXPECT_TRUE(a.done());
  EXPECT_DOUBLE_EQ(a.progress(), 0.0);
}

}  // namespace
}  // namespace perfcloud::wl
