// NUMA extension (§IV-D future work): per-socket memory domains and
// NUMA-aware VM mapping.
#include <gtest/gtest.h>

#include "exp/cluster.hpp"
#include "hw/server.hpp"
#include "workloads/antagonists.hpp"
#include "workloads/benchmarks.hpp"

namespace perfcloud::hw {
namespace {

ServerConfig dual_socket() {
  ServerConfig cfg;
  cfg.sockets = 2;
  cfg.memory.cpi_jitter_sigma = 0.0;
  cfg.memory.placement_spread_sigma = 0.0;
  return cfg;
}

TenantDemand streamer(int node) {
  TenantDemand d;
  d.cpu_core_seconds = 8.0;
  d.llc_footprint = 1e12;
  d.mem_bw_per_cpu_sec = 10e9;
  d.numa_node = node;
  return d;
}

TenantDemand victim(int node) {
  TenantDemand d;
  d.cpu_core_seconds = 1.0;
  d.llc_footprint = 16.0 * 1024 * 1024;
  d.mem_bw_per_cpu_sec = 1.0e9;
  d.cpi_base = 1.0;
  d.numa_node = node;
  return d;
}

TEST(Numa, ZeroSocketsRejected) {
  ServerConfig cfg;
  cfg.sockets = 0;
  EXPECT_THROW(Server(cfg, sim::Rng(1)), std::invalid_argument);
}

TEST(Numa, CrossSocketTenantsDoNotInterfere) {
  Server s(dual_socket(), sim::Rng(1));
  // Victim on socket 1, streamer on socket 0: victim keeps its base CPI.
  const std::vector<TenantDemand> d = {streamer(0), victim(1)};
  const auto g = s.arbitrate(1.0, d);
  EXPECT_NEAR(g[1].cpi, 1.0, 0.05);
}

TEST(Numa, SameSocketTenantsDoInterfere) {
  Server s(dual_socket(), sim::Rng(1));
  const std::vector<TenantDemand> d = {streamer(0), victim(0)};
  const auto g = s.arbitrate(1.0, d);
  EXPECT_GT(g[1].cpi, 1.3);
}

TEST(Numa, OutOfRangeNodeIsClamped) {
  Server s(dual_socket(), sim::Rng(1));
  const std::vector<TenantDemand> d = {victim(99)};  // clamped to socket 1
  const auto g = s.arbitrate(1.0, d);
  EXPECT_GT(g[0].instructions, 0.0);
}

TEST(Numa, SingleSocketIgnoresNodeTags) {
  ServerConfig cfg;  // default: one socket
  cfg.memory.cpi_jitter_sigma = 0.0;
  cfg.memory.placement_spread_sigma = 0.0;
  Server s(cfg, sim::Rng(1));
  const std::vector<TenantDemand> d = {streamer(0), victim(1)};
  const auto g = s.arbitrate(1.0, d);
  EXPECT_GT(g[1].cpi, 1.3);  // everyone shares the one domain
}

TEST(Numa, BandwidthUtilizationIsMaxOverSockets) {
  Server s(dual_socket(), sim::Rng(1));
  const std::vector<TenantDemand> d = {streamer(0), victim(1)};
  (void)s.arbitrate(1.0, d);
  EXPECT_GT(s.last_bw_utilization(), 1.0);  // socket 0 saturated by streamer
}

}  // namespace
}  // namespace perfcloud::hw

namespace perfcloud::virt {
namespace {

hw::ServerConfig dual_cfg() {
  hw::ServerConfig cfg;
  cfg.sockets = 2;
  return cfg;
}

TEST(NumaPlacement, AutoAssignmentBalancesSockets) {
  Hypervisor hv(dual_cfg(), sim::Rng(1));
  std::vector<int> nodes;
  for (int i = 0; i < 4; ++i) {
    nodes.push_back(hv.boot(VmConfig{.id = i + 1, .vcpus = 2}).numa_node());
  }
  int on0 = 0;
  for (int n : nodes) on0 += n == 0 ? 1 : 0;
  EXPECT_EQ(on0, 2);  // perfectly balanced for identical shapes
}

TEST(NumaPlacement, ExplicitPinIsHonoured) {
  Hypervisor hv(dual_cfg(), sim::Rng(1));
  const Vm& vm = hv.boot(VmConfig{.id = 1, .numa_node = 1});
  EXPECT_EQ(vm.numa_node(), 1);
}

TEST(NumaPlacement, SingleSocketHostPutsEveryoneOnZero) {
  hw::ServerConfig cfg;  // one socket
  Hypervisor hv(cfg, sim::Rng(1));
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(hv.boot(VmConfig{.id = i + 1}).numa_node(), 0);
  }
}

TEST(NumaPlacement, NumaAwareMappingShieldsVictims) {
  // §IV-D: NUMA-aware VM mapping as an interference remedy. The same Spark
  // job runs next to a STREAM VM; pinning the workers to the other socket
  // removes most of the penalty.
  auto run = [](int worker_node, int stream_node) {
    exp::ClusterParams p;
    p.workers = 6;
    p.seed = 5;
    p.server.sockets = 2;
    exp::Cluster c = exp::make_cluster(p);
    for (const int id : c.worker_vm_ids) c.vm(id).set_numa_node(worker_node);
    const int stream = exp::add_stream(
        c, "host-0", wl::StreamBenchmark::Params{.threads = 16, .duty_period_s = 0.0});
    c.vm(stream).set_numa_node(stream_node);
    return exp::run_job(c, wl::make_spark_logreg(12, 6));
  };
  const double colocated = run(0, 0);
  const double separated = run(1, 0);
  EXPECT_LT(separated, 0.9 * colocated);
}

}  // namespace
}  // namespace perfcloud::virt
