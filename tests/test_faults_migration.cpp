// Host crashes interacting with in-flight live migrations: the abort path
// (DESIGN.md §5j) must leave no dangling pre-copy inflows, no cancelled
// events that later fire, no stuck-paused VMs — and stay byte-identical
// across shard counts like every other fault.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "exp/cluster.hpp"
#include "faults/fault_injector.hpp"
#include "faults/fault_plan.hpp"
#include "workloads/benchmarks.hpp"

namespace perfcloud {
namespace {

TEST(FaultMigration, SourceCrashMidCopyKillsVmAndMigration) {
  exp::ClusterParams p;
  p.hosts = 3;
  p.workers = 3;
  p.seed = 5;
  p.migration = {.bandwidth_bps = 1.0e9, .downtime_s = 0.5};
  exp::Cluster c = exp::make_cluster(p);
  const int fio = exp::add_fio(c, "host-0", wl::FioRandomRead::Params{.duration_s = 500.0});
  exp::enable_perfcloud(c, core::PerfCloudConfig{});

  faults::FaultPlan plan;
  plan.host_crash("host-0", 15.0);
  faults::FaultInjector injector(*c.cloud, plan);
  exp::attach_faults(c, injector);

  exp::run_for(c, 10.0);
  c.cloud->migrate_vm(fio, "host-1");  // ~8.6 s copy: in flight at the crash
  ASSERT_EQ(c.cloud->migrations_in_flight(), 1u);
  ASSERT_EQ(c.cloud->host("host-1").migration_inflow_count(), 1u);

  exp::run_for(c, 10.0);  // crash at t=15
  EXPECT_FALSE(c.cloud->host_up("host-0"));
  EXPECT_EQ(c.cloud->migrations_in_flight(), 0u);
  EXPECT_EQ(c.cloud->migrations_aborted(), 1);
  EXPECT_EQ(c.cloud->migrations_completed(), 0);
  EXPECT_EQ(c.cloud->host("host-1").migration_inflow_count(), 0u);
  // The VM died with its source host; it never materializes on host-1.
  EXPECT_THROW((void)c.vm(fio), std::invalid_argument);
  EXPECT_EQ(c.cloud->host("host-1").find(fio), nullptr);

  // The cancelled pause/finish events never fire and the run stays healthy.
  exp::run_for(c, 20.0);
  EXPECT_EQ(c.cloud->migrations_completed(), 0);
}

TEST(FaultMigration, DestinationCrashMidPauseLeavesVmOnSource) {
  exp::ClusterParams p;
  p.hosts = 3;
  p.workers = 3;
  p.seed = 5;
  // Default 8 GiB VM at 4 GB/s: 2.147 s copy, pause [12.147, 12.647) for a
  // migration started at t=10 — the crash at 12.3 lands inside the pause.
  p.migration = {.bandwidth_bps = 4.0e9, .downtime_s = 0.5};
  exp::Cluster c = exp::make_cluster(p);
  const int fio = exp::add_fio(c, "host-0", wl::FioRandomRead::Params{.duration_s = 500.0});
  exp::enable_perfcloud(c, core::PerfCloudConfig{});

  faults::FaultPlan plan;
  plan.host_crash("host-1", 12.3);
  faults::FaultInjector injector(*c.cloud, plan);
  exp::attach_faults(c, injector);

  exp::run_for(c, 10.0);
  c.cloud->migrate_vm(fio, "host-1");
  exp::run_for(c, 5.0);  // crash hits during the stop-and-copy pause

  // The VM never left the source: still there, unpaused, not migrating.
  ASSERT_NE(c.cloud->host("host-0").find(fio), nullptr);
  EXPECT_FALSE(c.vm(fio).paused());
  EXPECT_EQ(c.cloud->migrations_aborted(), 1);
  EXPECT_EQ(c.cloud->migrations_in_flight(), 0u);

  // And it is re-migratable to a surviving host.
  c.cloud->migrate_vm(fio, "host-2");
  exp::run_for(c, 10.0);
  EXPECT_NE(c.cloud->host("host-2").find(fio), nullptr);
  EXPECT_EQ(c.cloud->migrations_completed(), 1);
}

/// One fingerprint of a chaos run: crash a migration destination while a
/// migration is in flight, with escalation-driven migrations earlier and a
/// disk degradation later.
struct Fingerprint {
  double final_time_s = 0.0;
  std::vector<double> jcts;
  long started = 0;
  long completed = 0;
  long aborted = 0;
  std::vector<std::pair<int, std::string>> placement;
  std::vector<std::pair<double, double>> samples;

  bool operator==(const Fingerprint&) const = default;
};

Fingerprint run_chaos(unsigned shards) {
  exp::ClusterParams p;
  p.hosts = 4;
  p.workers = 6;
  p.seed = 31;
  p.shards = shards;
  p.placement = exp::Placement::kPacked;  // everything lands on host-0
  p.migration = {.bandwidth_bps = 2.0e9, .downtime_s = 0.25};
  exp::Cluster c = exp::make_cluster(p);
  virt::VmConfig rival;
  rival.priority = virt::Priority::kHigh;
  rival.app_id = "rival";
  rival.vcpus = 2;
  c.cloud->boot_vm("host-0", rival);
  c.cloud->boot_vm("host-0", rival);
  const int fio = exp::add_fio(
      c, "host-0", wl::FioRandomRead::Params{.duration_s = 300.0, .start_s = 10.0});

  core::PerfCloudConfig cfg;
  cfg.escalate_app_collisions = true;
  exp::enable_perfcloud(c, cfg);

  faults::FaultPlan plan;
  plan.host_crash("host-1", 20.0, 40.0);
  plan.disk_degrade("host-0", 60.0, 30.0, 0.5);
  faults::FaultInjector injector(*c.cloud, plan);
  exp::attach_faults(c, injector);

  // An explicit migration timed so the copy is in flight when host-1
  // crashes at t=20 (4.3 s copy started at 18).
  c.engine->at(sim::SimTime(18.0), [&c, fio](sim::SimTime) {
    if (c.cloud->host_up("host-1") && !c.cloud->migration_in_flight(fio)) {
      c.cloud->migrate_vm(fio, "host-1");
    }
  });

  std::vector<wl::JobId> ids;
  c.engine->at(sim::SimTime(0.0), [&c, &ids](sim::SimTime) {
    ids.push_back(c.framework->submit(wl::make_benchmark("terasort", 8)));
  });
  c.engine->run_while([&] { return ids.empty() || !c.framework->all_done(); },
                      sim::SimTime(3000.0));

  Fingerprint fp;
  fp.final_time_s = c.engine->now().seconds();
  fp.started = c.cloud->migrations_started();
  fp.completed = c.cloud->migrations_completed();
  fp.aborted = c.cloud->migrations_aborted();
  for (const cloud::VmRecord& r : c.cloud->all_vms()) fp.placement.emplace_back(r.id, r.host);
  for (const wl::JobId id : ids) {
    const wl::Job* job = c.framework->find_job(id);
    fp.jcts.push_back(job != nullptr && job->completed() ? job->jct() : -1.0);
  }
  for (std::size_t h = 0; h < c.hosts.size(); ++h) {
    core::NodeManager& nm = c.node_manager(h);
    const sim::TimeSeries& io = nm.io_signal(p.app_id);
    for (std::size_t i = 0; i < io.size(); ++i) {
      fp.samples.emplace_back(io.time(i).seconds(), io.value(i));
    }
    const sim::TimeSeries& mon = nm.monitor().io_throughput_series(fio);
    for (std::size_t i = 0; i < mon.size(); ++i) {
      fp.samples.emplace_back(mon.time(i).seconds(), mon.value(i));
    }
  }
  return fp;
}

TEST(FaultMigration, ChaosWithAbortedMigrationsIsDeterministicAcrossShards) {
  const Fingerprint sequential = run_chaos(1);
  // The chaos actually happened: escalation migrations completed, the
  // explicit one was killed by the destination crash, the job finished.
  EXPECT_GE(sequential.completed, 2);
  EXPECT_GE(sequential.aborted, 1);
  for (const double jct : sequential.jcts) EXPECT_GT(jct, 0.0);

  EXPECT_EQ(run_chaos(4), sequential);
}

}  // namespace
}  // namespace perfcloud
