// Edge-case gates for the hierarchical timer-wheel time core (DESIGN.md
// §5l): slab-generation safety after node recycling, cancellation of a
// timer that already cascaded levels, FIFO stability for simultaneous
// deadlines split across a cascade boundary, far-future deadlines beyond
// the top wheel level, and the allocation discipline of a warmed engine
// under both time-queue backends (this binary links the counting
// operator-new hook).
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "sim/alloc_gauge.hpp"
#include "sim/engine.hpp"
#include "sim/event_queue.hpp"
#include "sim/timer_wheel.hpp"

namespace perfcloud::sim {
namespace {

constexpr double kTick = TimerWheel::kDefaultTickSeconds;

TEST(TimerWheel, GenerationTagStopsStaleHandlesAfterSlabRecycling) {
  TimerWheel w;
  const TimerWheel::Handle a = w.insert(1.0, 1, 11);
  TimerWheel::Entry e;
  ASSERT_TRUE(w.pop(e));  // a fires; its slab node returns to the free list
  EXPECT_EQ(e.payload, 11u);
  EXPECT_EQ(w.locate(a), TimerWheel::kDead);

  // The cursor sits at a's tick now; b lands on the same tick, so it goes
  // straight to the ready heap — whose erase path releases immediately.
  const TimerWheel::Handle b = w.insert(1.01, 2, 22);
  ASSERT_EQ(b.id, a.id);    // the same slab node, recycled...
  EXPECT_NE(b.gen, a.gen);  // ...under a new generation
  EXPECT_FALSE(w.erase(a));  // the stale handle cannot touch b
  EXPECT_EQ(w.size(), 1u);
  ASSERT_EQ(w.locate(b), TimerWheel::kInReady);

  // Recycling through erase (not just pop) bumps the generation too.
  EXPECT_TRUE(w.erase(b));
  EXPECT_TRUE(w.empty());
  const TimerWheel::Handle c = w.insert(3.0, 3, 33);
  ASSERT_EQ(c.id, b.id);
  EXPECT_FALSE(w.erase(b));
  EXPECT_EQ(w.locate(c), 0);
  EXPECT_TRUE(w.erase(c));
}

TEST(TimerWheel, CancelOfAlreadyCascadedTimerDiesInPlace) {
  TimerWheel w;
  // 100 ticks out: beyond level 0's 64-tick span, so it starts on level 1.
  const TimerWheel::Handle far = w.insert(100 * kTick, 7, 77);
  EXPECT_EQ(w.locate(far), 1);

  // Popping an earlier entry advances the cursor; the slot containing it on
  // level 1 cascades, and `far` relocates strictly below its old level.
  w.insert(90 * kTick, 1, 11);
  TimerWheel::Entry e;
  ASSERT_TRUE(w.pop(e));
  EXPECT_EQ(e.key, 1u);
  EXPECT_EQ(w.locate(far), 0);

  // O(1) erase of the relocated timer: it is marked dead in place (buckets
  // are singly-linked) and never fires; the queue reads empty immediately.
  EXPECT_TRUE(w.erase(far));
  EXPECT_EQ(w.locate(far), TimerWheel::kDead);
  EXPECT_TRUE(w.empty());
  EXPECT_FALSE(w.pop(e));
  // A second erase through the same handle finds the corpse, not a timer.
  EXPECT_FALSE(w.erase(far));
}

TEST(TimerWheel, SimultaneousDeadlinesKeepFifoAcrossCascadeBoundary) {
  TimerWheel w;
  const double t = 200 * kTick;
  // Keys 0..9 join the deadline while it maps to level 1...
  for (std::uint64_t k = 0; k < 10; ++k) w.insert(t, k, k);
  // ...a pop advances the cursor (cascading level 1's earlier slot)...
  w.insert(150 * kTick, 100, 100);
  TimerWheel::Entry e;
  ASSERT_TRUE(w.pop(e));
  EXPECT_EQ(e.key, 100u);
  // ...and keys 10..19 join the SAME deadline afterwards, landing on level
  // 0. The batch now straddles two levels; it must still pop in key order.
  for (std::uint64_t k = 10; k < 20; ++k) w.insert(t, k, k);

  std::vector<std::uint64_t> order;
  while (w.pop(e)) order.push_back(e.key);
  ASSERT_EQ(order.size(), 20u);
  for (std::uint64_t k = 0; k < 20; ++k) EXPECT_EQ(order[k], k);
}

TEST(TimerWheel, FarFutureDeadlinesWaitInOverflowAndStillOrder) {
  TimerWheel w;
  const double horizon_s = static_cast<double>(TimerWheel::kHorizonTicks) * kTick;
  const TimerWheel::Handle far = w.insert(2.0 * horizon_s, 2, 22);
  const TimerWheel::Handle never =
      w.insert(std::numeric_limits<double>::infinity(), 3, 33);
  EXPECT_EQ(w.locate(far), TimerWheel::kInOverflow);
  EXPECT_EQ(w.locate(never), TimerWheel::kInOverflow);
  w.insert(1.0, 1, 11);

  TimerWheel::Entry e;
  std::vector<std::uint64_t> keys;
  while (w.pop(e)) keys.push_back(e.key);
  EXPECT_EQ(keys, (std::vector<std::uint64_t>{1, 2, 3}));

  // Popping the finite overflow entry jumped the cursor to its tick, so a
  // deadline shortly after it routes through the wheel proper — the queue
  // does not degenerate to a permanent overflow heap after a far jump.
  const TimerWheel::Handle next = w.insert(2.0 * horizon_s + kTick, 4, 44);
  EXPECT_EQ(w.locate(next), 0);
  ASSERT_TRUE(w.pop(e));
  EXPECT_EQ(e.key, 4u);
}

// --- The same edges through the EventQueue, under both backends ---

class EventQueueBackend : public ::testing::TestWithParam<TimeQueueKind> {};

TEST_P(EventQueueBackend, CancelOfCascadedEventStaysDead) {
  EventQueue q(GetParam());
  int fired = 0;
  // 100 ticks out: on the wheel this starts above level 0 and cascades when
  // the earlier event pops; the cancel must catch it wherever it lives.
  const EventHandle victim = q.schedule(SimTime(100 * kTick), [&](SimTime) { fired += 10; });
  q.schedule(SimTime(90 * kTick), [&](SimTime) { fired += 1; });
  EXPECT_TRUE(q.run_next());
  EXPECT_TRUE(q.cancel(victim));
  EXPECT_FALSE(q.cancel(victim));
  while (q.run_next()) {
  }
  EXPECT_EQ(fired, 1);
}

TEST_P(EventQueueBackend, SimultaneousFifoAcrossCascadeBoundary) {
  EventQueue q(GetParam());
  std::vector<int> order;
  const SimTime t(200 * kTick);
  for (int i = 0; i < 5; ++i) {
    q.schedule(t, [&order, i](SimTime) { order.push_back(i); });
  }
  q.schedule(SimTime(150 * kTick), [&order](SimTime) { order.push_back(-1); });
  EXPECT_TRUE(q.run_next());  // advances past the cascade boundary
  for (int i = 5; i < 10; ++i) {
    q.schedule(t, [&order, i](SimTime) { order.push_back(i); });
  }
  while (q.run_next()) {
  }
  EXPECT_EQ(order, (std::vector<int>{-1, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9}));
}

TEST_P(EventQueueBackend, FarFutureEventsBeyondTopLevelFire) {
  EventQueue q(GetParam());
  const double horizon_s = static_cast<double>(TimerWheel::kHorizonTicks) * kTick;
  std::vector<int> order;
  q.schedule(SimTime(2.0 * horizon_s), [&](SimTime) { order.push_back(2); });
  q.schedule(SimTime(1.0), [&](SimTime) { order.push_back(1); });
  const EventHandle cancelled =
      q.schedule(SimTime(3.0 * horizon_s), [&](SimTime) { order.push_back(3); });
  EXPECT_TRUE(q.cancel(cancelled));
  while (q.run_next()) {
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

INSTANTIATE_TEST_SUITE_P(TimeQueues, EventQueueBackend,
                         ::testing::Values(TimeQueueKind::kHeap, TimeQueueKind::kWheel),
                         [](const ::testing::TestParamInfo<TimeQueueKind>& info) {
                           return info.param == TimeQueueKind::kWheel ? "wheel" : "heap";
                         });

// --- Engine: firing order and allocation discipline across backends ---

TEST(EngineTimeQueue, PeriodicAndEventOrderIdenticalAcrossBackends) {
  const auto run = [](TimeQueueKind kind) {
    Engine eng(7, kind);
    std::vector<std::pair<double, int>> fired;
    for (int i = 0; i < 5; ++i) {
      eng.every(0.7 + 0.3 * i, [&fired, i](SimTime t) { fired.emplace_back(t.seconds(), i); });
    }
    // One-shots colliding with periodic fire times: periodics must still
    // fire first at equal timestamps, under either backend.
    for (int i = 0; i < 20; ++i) {
      eng.at(SimTime(0.7 * (i + 1)),
             [&fired, i](SimTime t) { fired.emplace_back(t.seconds(), 100 + i); });
    }
    eng.run_until(SimTime(40.0));
    return fired;
  };
  const auto heap = run(TimeQueueKind::kHeap);
  const auto wheel = run(TimeQueueKind::kWheel);
  EXPECT_FALSE(heap.empty());
  EXPECT_EQ(heap, wheel);
}

TEST(EngineTimeQueue, WarmedPeriodicRearmIsAllocationFreeBothBackends) {
  ASSERT_TRUE(alloc_gauge_linked());
  for (const TimeQueueKind kind : {TimeQueueKind::kHeap, TimeQueueKind::kWheel}) {
    Engine eng(5, kind);
    long fires = 0;
    for (int i = 0; i < 32; ++i) {
      eng.every(0.25 + 0.01 * i, [&fires](SimTime) { ++fires; });
    }
    // Warm: slab and heap vectors at capacity, every periodic re-armed many
    // times, the wheel's cursor well past its first full level-0 rotation.
    eng.run_until(SimTime(60.0));
    const long warm_fires = fires;

    const AllocGaugeSnapshot before = alloc_gauge_read();
    eng.run_until(SimTime(240.0));
    const AllocGaugeSnapshot after = alloc_gauge_read();
    EXPECT_EQ(after.allocs - before.allocs, 0u)
        << (kind == TimeQueueKind::kWheel ? "wheel" : "heap") << " backend allocated "
        << (after.bytes - before.bytes) << " bytes in steady state";
    EXPECT_GT(fires, warm_fires);
  }
}

}  // namespace
}  // namespace perfcloud::sim
