#include <gtest/gtest.h>

#include "workloads/antagonists.hpp"

namespace perfcloud::wl {
namespace {

TEST(FioRandomRead, DemandShape) {
  FioRandomRead fio({.issue_iops = 1000.0, .block_size = 4096.0, .duty_period_s = 0.0});
  const hw::TenantDemand d = fio.demand(sim::SimTime(1.0), 0.1);
  EXPECT_DOUBLE_EQ(d.io_ops, 100.0);
  EXPECT_DOUBLE_EQ(d.io_bytes, 100.0 * 4096.0);
  EXPECT_GT(d.io_weight, 1.0);  // deep queue
  EXPECT_LT(d.mem_bw_per_cpu_sec, 1e9);  // no memory pressure
}

TEST(FioRandomRead, DutyCycleModulatesLoad) {
  FioRandomRead fio({.issue_iops = 1000.0, .duty_period_s = 30.0, .duty_min = 0.5});
  const double early = fio.demand(sim::SimTime(0.5), 0.1).io_ops;
  const double late = fio.demand(sim::SimTime(29.5), 0.1).io_ops;
  EXPECT_GT(late, 1.5 * early);
}

TEST(FioRandomRead, RespectsStartTime) {
  FioRandomRead fio({.start_s = 10.0});
  EXPECT_DOUBLE_EQ(fio.demand(sim::SimTime(5.0), 0.1).io_ops, 0.0);
  EXPECT_GT(fio.demand(sim::SimTime(10.0), 0.1).io_ops, 0.0);
}

TEST(FioRandomRead, FinishesAfterDuration) {
  FioRandomRead fio({.duration_s = 30.0});
  EXPECT_FALSE(fio.finished(sim::SimTime(29.0)));
  EXPECT_TRUE(fio.finished(sim::SimTime(30.0)));
}

TEST(FioRandomRead, OpenEndedNeverFinishes) {
  FioRandomRead fio({});
  EXPECT_FALSE(fio.finished(sim::SimTime(1e9)));
}

TEST(FioRandomRead, TracksAchievedIops) {
  FioRandomRead fio({.issue_iops = 1000.0});
  hw::TenantGrant g;
  g.io_ops = 50.0;
  for (int t = 1; t <= 10; ++t) fio.apply(g, sim::SimTime(t * 0.1), 0.1);
  EXPECT_NEAR(fio.achieved_iops(), 500.0, 1e-6);
  EXPECT_NEAR(fio.ops_completed(), 500.0, 1e-6);
}

TEST(StreamBenchmark, DemandShape) {
  StreamBenchmark st({.threads = 8, .duty_period_s = 0.0});
  const hw::TenantDemand d = st.demand(sim::SimTime(0.0), 0.1);
  EXPECT_DOUBLE_EQ(d.cpu_core_seconds, 0.8);
  EXPECT_GT(d.llc_footprint, 1e9);  // way beyond any LLC
  EXPECT_GT(d.mem_bw_per_cpu_sec, 5e9);
  EXPECT_DOUBLE_EQ(d.io_ops, 0.0);
}

TEST(StreamBenchmark, DutyCycleModulatesPressure) {
  StreamBenchmark st({.threads = 8, .duty_period_s = 30.0, .duty_min = 0.25});
  const hw::TenantDemand lo = st.demand(sim::SimTime(0.5), 0.1);
  const hw::TenantDemand hi = st.demand(sim::SimTime(29.5), 0.1);
  EXPECT_GT(hi.mem_bw_per_cpu_sec, 2.0 * lo.mem_bw_per_cpu_sec);
  EXPECT_GT(hi.llc_footprint, 2.0 * lo.llc_footprint);
}

TEST(StreamBenchmark, ThreadCountScalesCpu) {
  StreamBenchmark st8({.threads = 8});
  StreamBenchmark st16({.threads = 16});
  EXPECT_DOUBLE_EQ(st16.demand(sim::SimTime(0.0), 1.0).cpu_core_seconds,
                   2.0 * st8.demand(sim::SimTime(0.0), 1.0).cpu_core_seconds);
}

TEST(StreamBenchmark, TracksBandwidth) {
  StreamBenchmark st({});
  hw::TenantGrant g;
  g.mem_bw_bytes = 1e9;
  for (int t = 1; t <= 10; ++t) st.apply(g, sim::SimTime(t * 1.0), 1.0);
  EXPECT_NEAR(st.achieved_bw(), 1e9, 1e-3);
}

TEST(SysbenchOltp, FinishesAfterDuration) {
  SysbenchOltp oltp({.duration_s = 120.0});
  EXPECT_FALSE(oltp.finished(sim::SimTime(119.0)));
  EXPECT_TRUE(oltp.finished(sim::SimTime(120.0)));
  EXPECT_DOUBLE_EQ(oltp.demand(sim::SimTime(121.0), 0.1).io_ops, 0.0);
}

TEST(SysbenchOltp, IntensityVariesOverCycle) {
  SysbenchOltp oltp({.cycle_period_s = 20.0});
  const double low = oltp.demand(sim::SimTime(0.1), 0.1).cpu_core_seconds;
  const double high = oltp.demand(sim::SimTime(19.9), 0.1).cpu_core_seconds;
  EXPECT_GT(high, 2.0 * low);
}

TEST(SysbenchOltp, BufferPoolWarmupDecaysIo) {
  SysbenchOltp oltp({.duration_s = 300.0, .cycle_period_s = 20.0});
  // Compare the same sawtooth phase early vs late: reads die down once the
  // buffer pool is warm.
  const double early = oltp.demand(sim::SimTime(10.0), 0.1).io_ops;
  const double late = oltp.demand(sim::SimTime(210.0), 0.1).io_ops;
  EXPECT_LT(late, 0.5 * early);
  EXPECT_GT(late, 0.0);
}

TEST(SysbenchOltp, CountsTransactions) {
  SysbenchOltp oltp({});
  hw::TenantGrant g;
  g.io_ops = 8.0;
  oltp.apply(g, sim::SimTime(1.0), 0.1);
  EXPECT_DOUBLE_EQ(oltp.transactions(), 2.0);
}

TEST(SysbenchCpu, PureCpuProfile) {
  SysbenchCpu sb({.threads = 4});
  const hw::TenantDemand d = sb.demand(sim::SimTime(0.0), 0.5);
  EXPECT_DOUBLE_EQ(d.cpu_core_seconds, 2.0);
  EXPECT_DOUBLE_EQ(d.io_ops, 0.0);
  EXPECT_LT(d.llc_footprint, 16.0 * 1024 * 1024);
}

TEST(SysbenchCpu, FinishesAfterInstructionBudget) {
  SysbenchCpu sb({.total_instructions = 1000.0});
  hw::TenantGrant g;
  g.instructions = 600.0;
  sb.apply(g, sim::SimTime(1.0), 1.0);
  EXPECT_FALSE(sb.finished(sim::SimTime(1.0)));
  EXPECT_NEAR(sb.progress(), 0.6, 1e-9);
  sb.apply(g, sim::SimTime(2.0), 1.0);
  EXPECT_TRUE(sb.finished(sim::SimTime(2.0)));
  EXPECT_DOUBLE_EQ(sb.progress(), 1.0);
  EXPECT_DOUBLE_EQ(sb.demand(sim::SimTime(3.0), 1.0).cpu_core_seconds, 0.0);
}

}  // namespace
}  // namespace perfcloud::wl
