// System-level property tests of the full PerfCloud pipeline across random
// scenario draws: safety (never touch high-priority VMs), effectiveness
// (never make things much worse), and cleanup (no caps left behind).
#include <gtest/gtest.h>

#include "exp/cluster.hpp"
#include "workloads/benchmarks.hpp"

namespace perfcloud::core {
namespace {

struct Scenario {
  exp::Cluster cluster;
  std::vector<int> antagonists;
};

Scenario random_scenario(std::uint64_t seed) {
  sim::Rng rng(seed * 2654435761ULL + 7);
  exp::ClusterParams p;
  p.workers = 4 + static_cast<int>(rng.uniform_int(0, 6));
  p.seed = seed;
  Scenario s{exp::make_cluster(p), {}};
  const int n_antagonists = static_cast<int>(rng.uniform_int(1, 3));
  for (int i = 0; i < n_antagonists; ++i) {
    const double start = rng.uniform(5.0, 25.0);
    switch (rng.uniform_int(0, 2)) {
      case 0:
        s.antagonists.push_back(
            exp::add_fio(s.cluster, "host-0", wl::FioRandomRead::Params{.start_s = start}));
        break;
      case 1:
        s.antagonists.push_back(exp::add_stream(
            s.cluster, "host-0",
            wl::StreamBenchmark::Params{.threads = 16, .start_s = start}));
        break;
      default:
        s.antagonists.push_back(
            exp::add_oltp(s.cluster, "host-0", wl::SysbenchOltp::Params{.start_s = start}));
        break;
    }
  }
  return s;
}

wl::JobSpec random_job(std::uint64_t seed) {
  sim::Rng rng(seed * 40503 + 1);
  const auto& names = wl::benchmark_names();
  const auto idx = static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(names.size()) - 1));
  return wl::make_benchmark(names[idx], 6 + static_cast<int>(rng.uniform_int(0, 10)));
}

class PipelineProperties : public ::testing::TestWithParam<int> {};

TEST_P(PipelineProperties, HighPriorityVmsAreNeverCapped) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  Scenario s = random_scenario(seed);
  exp::enable_perfcloud(s.cluster, PerfCloudConfig{});
  exp::run_job(s.cluster, random_job(seed));
  for (const int id : s.cluster.worker_vm_ids) {
    const virt::Cgroup& cg = s.cluster.vm(id).cgroup();
    EXPECT_EQ(cg.blkio_throttle_bps(), hw::kNoCap) << "worker VM " << id;
    EXPECT_EQ(cg.cpu_quota_cores(), hw::kNoCap) << "worker VM " << id;
    EXPECT_TRUE(s.cluster.node_manager(0).io_cap_series(id).empty());
    EXPECT_TRUE(s.cluster.node_manager(0).cpu_cap_series(id).empty());
  }
}

TEST_P(PipelineProperties, PerfCloudNeverMuchWorseThanDefault) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const wl::JobSpec job = random_job(seed);

  Scenario plain = random_scenario(seed);
  const double jct_default = exp::run_job(plain.cluster, job);

  Scenario guarded = random_scenario(seed);
  exp::enable_perfcloud(guarded.cluster, PerfCloudConfig{});
  const double jct_guarded = exp::run_job(guarded.cluster, job);

  // Control cannot be guaranteed to help every draw, but it must never be
  // a catastrophe: identical seeds, so any gap is the controller's doing.
  EXPECT_LE(jct_guarded, 1.15 * jct_default + 2.0)
      << "job " << job.name << " seed " << seed;
}

TEST_P(PipelineProperties, AllCapsEventuallyLifted) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  Scenario s = random_scenario(seed);
  // Finite antagonists: everything is quiet at the end.
  exp::enable_perfcloud(s.cluster, PerfCloudConfig{});
  exp::run_job(s.cluster, random_job(seed));
  // Silence the antagonists and give the cubic time to probe and lift.
  for (const int id : s.antagonists) s.cluster.vm(id).detach();
  exp::run_for(s.cluster, 180.0);
  for (const int id : s.antagonists) {
    const virt::Cgroup& cg = s.cluster.vm(id).cgroup();
    EXPECT_EQ(cg.blkio_throttle_bps(), hw::kNoCap) << "antagonist VM " << id;
    EXPECT_EQ(cg.cpu_quota_cores(), hw::kNoCap) << "antagonist VM " << id;
  }
}

TEST_P(PipelineProperties, MonitorCountersAreMonotone) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  Scenario s = random_scenario(seed);
  s.cluster.framework->submit(random_job(seed));
  virt::CgroupStats prev{};
  const int vm = s.cluster.worker_vm_ids.front();
  for (int step = 0; step < 20; ++step) {
    exp::run_for(s.cluster, 2.0);
    const virt::CgroupStats& cur = s.cluster.vm(vm).cgroup().stats();
    EXPECT_GE(cur.io_wait_time_ms, prev.io_wait_time_ms);
    EXPECT_GE(cur.io_serviced_ops, prev.io_serviced_ops);
    EXPECT_GE(cur.io_service_bytes, prev.io_service_bytes);
    EXPECT_GE(cur.cycles, prev.cycles);
    EXPECT_GE(cur.instructions, prev.instructions);
    EXPECT_GE(cur.llc_misses, prev.llc_misses);
    EXPECT_GE(cur.cpu_time_s, prev.cpu_time_s);
    prev = cur;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomScenarios, PipelineProperties, ::testing::Range(1, 13));

}  // namespace
}  // namespace perfcloud::core
