// Golden-trace gate for the migration-policy subsystem: a packed-placement
// scenario where the throttle-escalation trigger actually fires, timed
// policy migrations are in flight while jobs run, AND a chaos plan crashes
// the preferred destination mid-copy (aborting a policy migration) must
// produce EXACTLY the same results for any shard count, either claim
// discipline, and sync or async emission — sink files byte for byte. The
// policy folds cross-host state (every monitor, every controller, the
// registry) each interval, which is the most schedule-dependent surface the
// repo has; hence its own golden gate next to the migration and faults ones.
#include <gtest/gtest.h>

#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "exp/cluster.hpp"
#include "faults/fault_injector.hpp"
#include "faults/fault_plan.hpp"
#include "workloads/antagonists.hpp"
#include "workloads/benchmarks.hpp"

namespace perfcloud::policy {
namespace {

/// Everything observable about one run, flattened for exact comparison.
struct RunTrace {
  double final_time_s = 0.0;
  std::vector<double> jcts;
  long migrations_started = 0;
  long migrations_completed = 0;
  long migrations_aborted = 0;
  long policy_triggered = 0;
  long policy_migrated = 0;
  long policy_suppressed = 0;  // dwell + cooldown + budget + blacklist
  long policy_no_feasible = 0;
  long policy_aborted = 0;
  std::vector<std::pair<int, std::string>> placement;
  std::vector<std::pair<double, double>> samples;
  std::string trace_csv;
  std::string events_jsonl;

  bool operator==(const RunTrace&) const = default;
};

std::string slurp(const std::string& path) {
  std::ifstream f(path);
  std::ostringstream os;
  os << f.rdbuf();
  return os.str();
}

void append_series(RunTrace& trace, const sim::TimeSeries& s) {
  for (std::size_t i = 0; i < s.size(); ++i) {
    trace.samples.emplace_back(s.time(i).seconds(), s.value(i));
  }
}

RunTrace run_scenario(unsigned shards, bool with_faults, const std::string& sink_tag = "",
                      bool sink_async = true,
                      sim::ShardSchedule schedule = sim::ShardSchedule::kWorkStealing) {
  exp::ClusterParams p;
  p.hosts = 4;
  p.workers = 6;
  p.seed = 911;
  p.shards = shards;
  p.schedule = schedule;
  p.placement = exp::Placement::kPacked;  // all workers on host-0
  // Timed migrations, slow enough that a crash can land mid-copy.
  p.migration = {.bandwidth_bps = 100.0e6, .downtime_s = 0.5};
  PolicyParams pol;
  pol.floor_windows = 2;
  pol.dwell_min_s = 0.0;
  pol.host_cooldown_s = 30.0;
  pol.max_in_flight = 2;
  p.policy = pol;
  exp::Cluster c = exp::make_cluster(p);

  const int fio = exp::add_fio(
      c, "host-0", wl::FioRandomRead::Params{.duration_s = 10000.0, .start_s = 30.0});
  core::PerfCloudConfig cfg;
  cfg.min_cap_fraction = 0.9;  // toothless throttle: escalation must fire
  exp::enable_perfcloud(c, cfg);

  std::unique_ptr<exp::EventSink> sink;
  std::string csv_path;
  std::string jsonl_path;
  if (!sink_tag.empty()) {
    csv_path = "/tmp/perfcloud_policy_sink_" + sink_tag + ".csv";
    jsonl_path = "/tmp/perfcloud_policy_sink_" + sink_tag + ".jsonl";
    sink = std::make_unique<exp::EventSink>(exp::EventSink::Options{
        .trace_csv_path = csv_path, .events_jsonl_path = jsonl_path, .async = sink_async});
    exp::attach_sink(c, *sink);
  }

  std::unique_ptr<faults::FaultInjector> injector;
  if (with_faults) {
    // host-1 is the empty lowest-index destination the scorer prefers;
    // crashing it across the escalation window aborts an in-flight policy
    // migration, forces a re-decision, and exercises the down-host filter.
    faults::FaultPlan plan(0xbeef);
    plan.host_crash("host-1", 100.0, 250.0).monitor_blackout("host-0", 180.0, 20.0);
    injector = std::make_unique<faults::FaultInjector>(*c.cloud, plan);
    exp::attach_faults(c, *injector, sink.get());
  }

  std::vector<wl::JobId> ids;
  const std::vector<std::pair<std::string, double>> submissions = {
      {"terasort", 0.0}, {"wordcount", 150.0}, {"kmeans", 300.0}};
  for (const auto& [name, at] : submissions) {
    const wl::JobSpec spec = wl::make_benchmark(name, 16);
    c.engine->at(sim::SimTime(at),
                 [&c, &ids, spec](sim::SimTime) { ids.push_back(c.framework->submit(spec)); });
  }
  c.engine->run_while(
      [&] { return ids.size() < submissions.size() || !c.framework->all_done(); },
      sim::SimTime(5000.0));

  RunTrace trace;
  trace.final_time_s = c.engine->now().seconds();
  trace.migrations_started = c.cloud->migrations_started();
  trace.migrations_completed = c.cloud->migrations_completed();
  trace.migrations_aborted = c.cloud->migrations_aborted();
  trace.policy_triggered = c.policy->triggered();
  trace.policy_migrated = c.policy->migrated();
  trace.policy_suppressed = c.policy->suppressed_dwell() + c.policy->suppressed_cooldown() +
                            c.policy->suppressed_budget() + c.policy->suppressed_blacklist();
  trace.policy_no_feasible = c.policy->no_feasible();
  trace.policy_aborted = c.policy->aborted();
  for (const cloud::VmRecord& r : c.cloud->all_vms()) {
    trace.placement.emplace_back(r.id, r.host);
  }
  for (const wl::JobId id : ids) {
    const wl::Job* job = c.framework->find_job(id);
    trace.jcts.push_back(job != nullptr && job->completed() ? job->jct() : -1.0);
  }
  for (std::size_t h = 0; h < c.hosts.size(); ++h) {
    core::NodeManager& nm = c.node_manager(h);
    append_series(trace, nm.io_signal(p.app_id));
    append_series(trace, nm.cpi_signal(p.app_id));
    append_series(trace, nm.monitor().io_throughput_series(fio));
    append_series(trace, nm.io_cap_series(fio));
  }
  if (sink != nullptr) {
    sink->close();
    trace.trace_csv = slurp(csv_path);
    trace.events_jsonl = slurp(jsonl_path);
  }
  return trace;
}

TEST(PolicyDeterminism, TraceIsIdenticalForAnyShardCountAndScheduler) {
  const RunTrace sequential = run_scenario(1, /*with_faults=*/false);

  // The scenario must exercise what it gates on: the throttle-escalation
  // path really triggered and moved the antagonist while jobs ran.
  EXPECT_GE(sequential.policy_triggered, 1);
  EXPECT_GE(sequential.policy_migrated, 1);
  EXPECT_GE(sequential.migrations_completed, 1);
  for (const double jct : sequential.jcts) EXPECT_GT(jct, 0.0);
  EXPECT_FALSE(sequential.samples.empty());

  const RunTrace sharded = run_scenario(4, false);
  EXPECT_EQ(sequential, sharded);
  EXPECT_EQ(run_scenario(4, false), sharded);  // run-to-run of the parallel path

  const RunTrace st = run_scenario(4, false, "", true, sim::ShardSchedule::kStatic);
  EXPECT_EQ(sequential, st);
}

TEST(PolicyDeterminism, ChaosAbortRunIsIdenticalAcrossShardCounts) {
  const RunTrace sequential = run_scenario(1, /*with_faults=*/true);

  // The crash window really intersected the escalation: a policy-initiated
  // migration was aborted, and the policy still got the antagonist moved
  // (or honestly recorded that it could not).
  EXPECT_GE(sequential.policy_triggered, 1);
  EXPECT_GE(sequential.migrations_aborted, 1);
  EXPECT_GE(sequential.policy_aborted, 1);

  const RunTrace sharded = run_scenario(4, true);
  EXPECT_EQ(sequential, sharded);
}

TEST(PolicyDeterminism, SinkFilesAreIdenticalAcrossModesAndShardCounts) {
  const RunTrace plain = run_scenario(1, true);
  const RunTrace sync1 = run_scenario(1, true, "sync1", /*sink_async=*/false);
  const RunTrace async4 = run_scenario(4, true, "async4", /*sink_async=*/true);

  // The policy's decision trail reached the sink.
  EXPECT_NE(sync1.events_jsonl.find("trigger io vm="), std::string::npos);
  EXPECT_NE(sync1.events_jsonl.find("migrate io vm="), std::string::npos);

  // Observation must not change the observed.
  RunTrace sim_only = sync1;
  sim_only.trace_csv.clear();
  sim_only.events_jsonl.clear();
  EXPECT_EQ(sim_only, plain);

  EXPECT_EQ(async4.trace_csv, sync1.trace_csv);
  EXPECT_EQ(async4.events_jsonl, sync1.events_jsonl);
}

}  // namespace
}  // namespace perfcloud::policy
