#include <gtest/gtest.h>

#include <memory>

#include "core/monitor.hpp"
#include "workloads/antagonists.hpp"

namespace perfcloud::core {
namespace {

hw::ServerConfig quiet_server() {
  hw::ServerConfig cfg;
  cfg.disk.wait_jitter_sigma = 0.0;
  cfg.memory.cpi_jitter_sigma = 0.0;
  return cfg;
}

struct MonitorRig {
  virt::Hypervisor hv{quiet_server(), sim::Rng(1)};
  PerfCloudConfig cfg;
  std::unique_ptr<PerformanceMonitor> mon;

  MonitorRig() { mon = std::make_unique<PerformanceMonitor>(hv, cfg); }

  void run_interval(double t0) {
    for (int i = 1; i <= 50; ++i) hv.tick(sim::SimTime(t0 + i * 0.1), 0.1);
    mon->sample(sim::SimTime(t0 + 5.0));
  }
};

TEST(Monitor, NoSampleBeforeFirstInterval) {
  MonitorRig rig;
  rig.hv.boot(virt::VmConfig{.id = 1});
  EXPECT_EQ(rig.mon->latest(1), nullptr);
  rig.mon->sample(sim::SimTime(5.0));  // primes the delta baseline
  EXPECT_EQ(rig.mon->latest(1), nullptr);
  rig.mon->sample(sim::SimTime(10.0));
  EXPECT_NE(rig.mon->latest(1), nullptr);
}

TEST(Monitor, IdleVmHasMissingMetrics) {
  MonitorRig rig;
  rig.hv.boot(virt::VmConfig{.id = 1});
  rig.mon->sample(sim::SimTime(0.0));
  rig.run_interval(0.0);
  const VmSample* s = rig.mon->latest(1);
  ASSERT_NE(s, nullptr);
  EXPECT_FALSE(s->iowait_ratio_ms.has_value());
  EXPECT_FALSE(s->cpi.has_value());
  EXPECT_FALSE(s->llc_miss_rate.has_value());
  EXPECT_DOUBLE_EQ(s->io_throughput_bps, 0.0);
  EXPECT_DOUBLE_EQ(s->cpu_usage_cores, 0.0);
}

TEST(Monitor, BusyVmProducesAllMetrics) {
  MonitorRig rig;
  virt::Vm& vm = rig.hv.boot(virt::VmConfig{.id = 1, .vcpus = 2});
  vm.attach(std::make_unique<wl::FioRandomRead>(wl::FioRandomRead::Params{}));
  rig.mon->sample(sim::SimTime(0.0));
  rig.run_interval(0.0);
  rig.run_interval(5.0);  // ratio/CPI metrics report from the 2nd update on
  const VmSample* s = rig.mon->latest(1);
  ASSERT_NE(s, nullptr);
  EXPECT_TRUE(s->iowait_ratio_ms.has_value());
  EXPECT_TRUE(s->cpi.has_value());
  EXPECT_TRUE(s->llc_miss_rate.has_value());
  EXPECT_GT(s->io_throughput_bps, 0.0);
  EXPECT_GT(s->cpu_usage_cores, 0.0);
  EXPECT_GT(*s->iowait_ratio_ms, 0.0);
  EXPECT_GT(*s->cpi, 0.5);
}

TEST(Monitor, SuspectSeriesGrowPerInterval) {
  MonitorRig rig;
  virt::Vm& vm = rig.hv.boot(virt::VmConfig{.id = 1, .vcpus = 2});
  vm.attach(std::make_unique<wl::FioRandomRead>(wl::FioRandomRead::Params{}));
  rig.mon->sample(sim::SimTime(0.0));
  rig.run_interval(0.0);
  rig.run_interval(5.0);
  rig.run_interval(10.0);
  EXPECT_EQ(rig.mon->io_throughput_series(1).size(), 3u);
  EXPECT_EQ(rig.mon->llc_miss_series(1).size(), 3u);
}

TEST(Monitor, IdleVmContributesNoLlcSamples) {
  MonitorRig rig;
  rig.hv.boot(virt::VmConfig{.id = 1});
  rig.mon->sample(sim::SimTime(0.0));
  rig.run_interval(0.0);
  rig.run_interval(5.0);
  // The IO-throughput series still records zeros; the LLC series records
  // nothing ("not counted when the VM is not running any workload").
  EXPECT_EQ(rig.mon->io_throughput_series(1).size(), 2u);
  EXPECT_EQ(rig.mon->llc_miss_series(1).size(), 0u);
}

TEST(Monitor, ObservedBaselinesReflectUsage) {
  MonitorRig rig;
  virt::Vm& vm = rig.hv.boot(virt::VmConfig{.id = 1, .vcpus = 4});
  vm.attach(std::make_unique<wl::SysbenchCpu>(wl::SysbenchCpu::Params{.threads = 2}));
  rig.mon->sample(sim::SimTime(0.0));
  rig.run_interval(0.0);
  EXPECT_NEAR(rig.mon->observed_cpu_cores(1), 2.0, 0.1);
  EXPECT_NEAR(rig.mon->observed_io_bps(1), 0.0, 1.0);
}

TEST(Monitor, UnknownVmQueriesAreSafe) {
  MonitorRig rig;
  EXPECT_EQ(rig.mon->latest(42), nullptr);
  EXPECT_TRUE(rig.mon->io_throughput_series(42).empty());
  EXPECT_TRUE(rig.mon->llc_miss_series(42).empty());
  EXPECT_DOUBLE_EQ(rig.mon->observed_io_bps(42), 0.0);
}

TEST(Monitor, FirstIntervalReportsThroughputButNotRatios) {
  MonitorRig rig;
  virt::Vm& vm = rig.hv.boot(virt::VmConfig{.id = 1, .vcpus = 2});
  vm.attach(std::make_unique<wl::FioRandomRead>(wl::FioRandomRead::Params{}));
  rig.mon->sample(sim::SimTime(0.0));  // primes the delta baseline
  rig.run_interval(0.0);               // first real interval
  const VmSample* s = rig.mon->latest(1);
  ASSERT_NE(s, nullptr);
  // Ratio metrics are EWMA-warmup gated: the first update is the raw sample
  // and must not masquerade as a trend, so they report from the 2nd update.
  EXPECT_FALSE(s->iowait_ratio_ms.has_value());
  EXPECT_FALSE(s->cpi.has_value());
  // Suspect-side usage metrics carry no such gate — they exist immediately.
  EXPECT_GT(s->io_throughput_bps, 0.0);
  EXPECT_GT(s->cpu_usage_cores, 0.0);
  EXPECT_TRUE(s->llc_miss_rate.has_value());
}

TEST(Monitor, IowaitRatioGatedOnMinOps) {
  // A VM doing only trickle I/O (10 ops per 5 s interval, below
  // min_ops_per_interval = 20) carries no contention evidence: its iowait
  // ratio would be pure noise and must never be reported.
  MonitorRig rig;
  virt::Vm& vm = rig.hv.boot(virt::VmConfig{.id = 1, .vcpus = 2});
  vm.attach(std::make_unique<wl::FioRandomRead>(
      wl::FioRandomRead::Params{.issue_iops = 2.0}));
  rig.mon->sample(sim::SimTime(0.0));
  for (int i = 0; i < 4; ++i) rig.run_interval(5.0 * i);
  const VmSample* s = rig.mon->latest(1);
  ASSERT_NE(s, nullptr);
  EXPECT_GT(s->io_ops_per_s, 0.0);  // it *is* doing I/O...
  EXPECT_FALSE(s->iowait_ratio_ms.has_value());  // ...but below the gate
}

TEST(Monitor, LlcSamplesSuppressedBelowCpuFloor) {
  // §III-B: "LLC miss rates are not counted when the VM is not running any
  // workload" — a VM that burned less than 5 % of one core the whole
  // interval contributes no LLC sample, while its I/O series keeps growing.
  MonitorRig rig;
  virt::Vm& vm = rig.hv.boot(virt::VmConfig{.id = 1, .vcpus = 2});
  vm.attach(std::make_unique<wl::FioRandomRead>(
      wl::FioRandomRead::Params{.cpu_cores = 0.01}));
  rig.mon->sample(sim::SimTime(0.0));
  rig.run_interval(0.0);
  rig.run_interval(5.0);
  const VmSample* s = rig.mon->latest(1);
  ASSERT_NE(s, nullptr);
  EXPECT_FALSE(s->llc_miss_rate.has_value());
  EXPECT_EQ(rig.mon->llc_miss_series(1).size(), 0u);
  EXPECT_EQ(rig.mon->io_throughput_series(1).size(), 2u);
  EXPECT_GT(s->io_throughput_bps, 0.0);
}

TEST(Monitor, BoundedSeriesEvictsOldestSamples) {
  MonitorRig rig;
  rig.cfg.monitor_series_capacity = 4;
  rig.mon = std::make_unique<PerformanceMonitor>(rig.hv, rig.cfg);
  virt::Vm& vm = rig.hv.boot(virt::VmConfig{.id = 1, .vcpus = 2});
  vm.attach(std::make_unique<wl::FioRandomRead>(wl::FioRandomRead::Params{}));
  rig.mon->sample(sim::SimTime(0.0));
  // Six sampled intervals at t = 5, 10, ..., 30; capacity 4 must keep only
  // the newest four (15..30), evicting in arrival order.
  for (int i = 0; i < 6; ++i) rig.run_interval(5.0 * i);
  const sim::TimeSeries& io = rig.mon->io_throughput_series(1);
  ASSERT_EQ(io.size(), 4u);
  EXPECT_DOUBLE_EQ(io.time(0).seconds(), 15.0);
  EXPECT_DOUBLE_EQ(io.time(3).seconds(), 30.0);
}

TEST(Monitor, EwmaSmoothsStepChange) {
  PerfCloudConfig cfg;
  cfg.ewma_alpha = 0.5;
  MonitorRig rig;
  rig.cfg = cfg;
  rig.mon = std::make_unique<PerformanceMonitor>(rig.hv, cfg);
  virt::Vm& vm = rig.hv.boot(virt::VmConfig{.id = 1, .vcpus = 2});
  // Two intervals busy, then the workload stops: throughput EWMA must decay
  // gradually, not drop to zero instantly.
  vm.attach(std::make_unique<wl::FioRandomRead>(
      wl::FioRandomRead::Params{.issue_iops = 400.0, .duration_s = 10.0}));
  rig.mon->sample(sim::SimTime(0.0));
  rig.run_interval(0.0);
  rig.run_interval(5.0);
  const double busy = rig.mon->latest(1)->io_throughput_bps;
  ASSERT_GT(busy, 0.0);
  rig.run_interval(10.0);  // fio finished at t=10
  const double after = rig.mon->latest(1)->io_throughput_bps;
  EXPECT_LT(after, busy);
  EXPECT_GT(after, 0.0);
}

}  // namespace
}  // namespace perfcloud::core
