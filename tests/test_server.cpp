#include <gtest/gtest.h>

#include "hw/server.hpp"

namespace perfcloud::hw {
namespace {

ServerConfig r630() {
  ServerConfig cfg;
  cfg.name = "r630";
  cfg.memory.cpi_jitter_sigma = 0.0;
  cfg.disk.wait_jitter_sigma = 0.0;
  return cfg;
}

TEST(Server, NameAndConfig) {
  Server s(r630(), sim::Rng(1));
  EXPECT_EQ(s.name(), "r630");
  EXPECT_EQ(s.config().cpu.cores, 48);
}

TEST(Server, GrantCombinesAllSubsystems) {
  Server s(r630(), sim::Rng(1));
  TenantDemand d;
  d.cpu_core_seconds = 2.0;
  d.io_ops = 10.0;
  d.io_bytes = 10.0 * 4096;
  d.llc_footprint = 4.0 * 1024 * 1024;
  d.mem_bw_per_cpu_sec = 0.5e9;
  d.cpi_base = 1.0;
  const auto g = s.arbitrate(1.0, {&d, 1});
  ASSERT_EQ(g.size(), 1u);
  EXPECT_DOUBLE_EQ(g[0].cpu_core_seconds, 2.0);
  EXPECT_DOUBLE_EQ(g[0].cycles, 2.0 * 2.3e9);
  EXPECT_GT(g[0].instructions, 0.0);
  EXPECT_NEAR(g[0].instructions, g[0].cycles / g[0].cpi, 1.0);
  EXPECT_NEAR(g[0].io_ops, 10.0, 1e-9);
  EXPECT_GT(g[0].io_wait_seconds, 0.0);
}

TEST(Server, InstructionsInverseToCpi) {
  Server s(r630(), sim::Rng(1));
  TenantDemand light;
  light.cpu_core_seconds = 1.0;
  light.llc_footprint = 1.0 * 1024 * 1024;
  light.mem_bw_per_cpu_sec = 0.1e9;
  light.cpi_base = 1.0;

  TenantDemand heavy = light;
  heavy.cpi_base = 2.0;

  const std::vector<TenantDemand> d = {light, heavy};
  const auto g = s.arbitrate(1.0, d);
  EXPECT_NEAR(g[0].instructions / g[1].instructions, 2.0, 0.01);
}

TEST(Server, EmptyDemandsAreFine) {
  Server s(r630(), sim::Rng(1));
  EXPECT_TRUE(s.arbitrate(1.0, {}).empty());
}

TEST(Server, UtilizationAccessorsReflectLoad) {
  Server s(r630(), sim::Rng(1));
  TenantDemand d;
  d.cpu_core_seconds = 1.0;
  d.io_ops = 2000.0;  // 4x the disk's 500 IOPS
  d.io_bytes = 2000.0 * 4096;
  d.llc_footprint = 1e12;
  d.mem_bw_per_cpu_sec = 100e9;
  const auto g = s.arbitrate(1.0, {&d, 1});
  (void)g;
  EXPECT_GT(s.last_disk_utilization(), 2.0);
  EXPECT_GT(s.last_bw_utilization(), 1.0);
}

TEST(Server, DeterministicForSameSeed) {
  Server a(r630(), sim::Rng(9));
  Server b(r630(), sim::Rng(9));
  TenantDemand d;
  d.cpu_core_seconds = 1.0;
  d.io_ops = 100.0;
  d.io_bytes = 100.0 * 65536;
  d.llc_footprint = 64.0 * 1024 * 1024;
  d.mem_bw_per_cpu_sec = 1e9;
  for (int t = 0; t < 20; ++t) {
    const auto ga = a.arbitrate(0.1, {&d, 1});
    const auto gb = b.arbitrate(0.1, {&d, 1});
    EXPECT_DOUBLE_EQ(ga[0].io_wait_seconds, gb[0].io_wait_seconds);
    EXPECT_DOUBLE_EQ(ga[0].cpi, gb[0].cpi);
  }
}

}  // namespace
}  // namespace perfcloud::hw
