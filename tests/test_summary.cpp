#include <gtest/gtest.h>

#include <sstream>

#include "exp/cluster.hpp"
#include "exp/summary.hpp"
#include "workloads/benchmarks.hpp"

namespace perfcloud::exp {
namespace {

exp::Cluster small_cluster(std::uint64_t seed = 1) {
  exp::ClusterParams p;
  p.workers = 6;
  p.seed = seed;
  return exp::make_cluster(p);
}

TEST(Summary, EmptyFramework) {
  exp::Cluster c = small_cluster();
  const RunSummary s = summarize(*c.framework);
  EXPECT_EQ(s.jobs_submitted, 0);
  EXPECT_EQ(s.jobs_completed, 0);
  EXPECT_DOUBLE_EQ(s.utilization_efficiency, 1.0);
}

TEST(Summary, CountsCompletedJobsAndAttempts) {
  exp::Cluster c = small_cluster(3);
  run_job(c, wl::make_terasort(8, 4));
  run_job(c, wl::make_wordcount(6, 3));
  const RunSummary s = summarize(*c.framework);
  EXPECT_EQ(s.jobs_submitted, 2);
  EXPECT_EQ(s.jobs_completed, 2);
  EXPECT_EQ(s.jobs_killed, 0);
  EXPECT_EQ(s.attempts_total, 8 + 4 + 6 + 3);
  EXPECT_EQ(s.attempts_killed, 0);
  EXPECT_GT(s.mean_jct, 0.0);
  EXPECT_GE(s.max_jct, s.p95_jct);
  EXPECT_GE(s.p95_jct, s.median_jct);
}

TEST(Summary, TracksCloneKills) {
  exp::Cluster c = small_cluster(5);
  c.framework->submit_cloned(wl::make_wordcount(4, 2), 3);
  run_until_done(c, 3600.0);
  const RunSummary s = summarize(*c.framework);
  EXPECT_EQ(s.jobs_submitted, 3);
  EXPECT_EQ(s.jobs_completed, 1);
  EXPECT_EQ(s.jobs_killed, 2);
  EXPECT_GT(s.attempts_killed, 0);
  EXPECT_LT(s.utilization_efficiency, 1.0);
}

TEST(Summary, TracksInjectedFailures) {
  exp::Cluster c = small_cluster(7);
  c.framework->set_task_failure_rate(0.02);
  run_job(c, wl::make_terasort(10, 10), 3600.0);
  const RunSummary s = summarize(*c.framework);
  EXPECT_GT(s.attempts_total, 20);  // retries created extra attempts
  EXPECT_EQ(s.attempts_killed, c.framework->failed_attempts());
}

TEST(Summary, PrintIsHumanReadable) {
  exp::Cluster c = small_cluster(9);
  run_job(c, wl::make_grep(6));
  std::ostringstream os;
  print(os, summarize(*c.framework));
  const std::string out = os.str();
  EXPECT_NE(out.find("jobs: 1/1 completed"), std::string::npos);
  EXPECT_NE(out.find("utilization efficiency: 1.000"), std::string::npos);
}

}  // namespace
}  // namespace perfcloud::exp
