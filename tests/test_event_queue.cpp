#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hpp"

namespace perfcloud::sim {
namespace {

TEST(EventQueue, EmptyInitially) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.pending(), 0u);
  EXPECT_EQ(q.next_time(), SimTime::infinity());
  EXPECT_FALSE(q.run_next());
}

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(SimTime(3.0), [&](SimTime) { order.push_back(3); });
  q.schedule(SimTime(1.0), [&](SimTime) { order.push_back(1); });
  q.schedule(SimTime(2.0), [&](SimTime) { order.push_back(2); });
  while (q.run_next()) {
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SimultaneousEventsFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule(SimTime(5.0), [&order, i](SimTime) { order.push_back(i); });
  }
  while (q.run_next()) {
  }
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, CallbackReceivesEventTime) {
  EventQueue q;
  double seen = -1.0;
  q.schedule(SimTime(7.5), [&](SimTime t) { seen = t.seconds(); });
  q.run_next();
  EXPECT_DOUBLE_EQ(seen, 7.5);
}

TEST(EventQueue, CancelPreventsFiring) {
  EventQueue q;
  int fired = 0;
  const EventHandle h = q.schedule(SimTime(1.0), [&](SimTime) { ++fired; });
  q.schedule(SimTime(2.0), [&](SimTime) { ++fired; });
  EXPECT_TRUE(q.cancel(h));
  while (q.run_next()) {
  }
  EXPECT_EQ(fired, 1);
}

TEST(EventQueue, CancelTwiceIsFalse) {
  EventQueue q;
  const EventHandle h = q.schedule(SimTime(1.0), [](SimTime) {});
  EXPECT_TRUE(q.cancel(h));
  EXPECT_FALSE(q.cancel(h));
}

TEST(EventQueue, CancelAfterFireIsFalse) {
  EventQueue q;
  const EventHandle h = q.schedule(SimTime(1.0), [](SimTime) {});
  q.run_next();
  EXPECT_FALSE(q.cancel(h));
}

TEST(EventQueue, CancelInvalidHandleIsFalse) {
  EventQueue q;
  EXPECT_FALSE(q.cancel(EventHandle{}));
  EXPECT_FALSE(q.cancel(EventHandle{9999, 1}));  // slot that never existed
}

TEST(EventQueue, CancelWhilePendingReleasesSlotForReuse) {
  EventQueue q;
  int fired = 0;
  const EventHandle a = q.schedule(SimTime(1.0), [&](SimTime) { fired += 1; });
  EXPECT_TRUE(q.cancel(a));
  // The replacement likely reuses a's slot; a's stale handle must not be
  // able to cancel it.
  const EventHandle b = q.schedule(SimTime(2.0), [&](SimTime) { fired += 10; });
  EXPECT_FALSE(q.cancel(a));
  while (q.run_next()) {
  }
  EXPECT_EQ(fired, 10);
  EXPECT_FALSE(q.cancel(b));  // already fired
}

TEST(EventQueue, StaleHandleAfterFireCannotCancelSlotReuser) {
  EventQueue q;
  int fired = 0;
  const EventHandle a = q.schedule(SimTime(1.0), [&](SimTime) { fired += 1; });
  EXPECT_TRUE(q.run_next());  // a fires; its slot goes back on the free list
  const EventHandle b = q.schedule(SimTime(2.0), [&](SimTime) { fired += 10; });
  EXPECT_FALSE(q.cancel(a));  // generation mismatch: b is untouched
  EXPECT_EQ(q.pending(), 1u);
  while (q.run_next()) {
  }
  EXPECT_EQ(fired, 11);
  EXPECT_FALSE(q.cancel(b));  // b already fired
}

TEST(EventQueue, ManyCancelScheduleCyclesKeepHandlesDistinct) {
  EventQueue q;
  // Hammer one slot through many generations; every stale handle must stay
  // dead and the newest must stay live.
  EventHandle current = q.schedule(SimTime(1.0), [](SimTime) {});
  std::vector<EventHandle> stale;
  for (int i = 0; i < 100; ++i) {
    stale.push_back(current);
    EXPECT_TRUE(q.cancel(current));
    current = q.schedule(SimTime(1.0), [](SimTime) {});
  }
  for (const EventHandle& h : stale) EXPECT_FALSE(q.cancel(h));
  EXPECT_EQ(q.pending(), 1u);
  EXPECT_TRUE(q.cancel(current));
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, PendingTracksLiveEvents) {
  EventQueue q;
  const EventHandle a = q.schedule(SimTime(1.0), [](SimTime) {});
  q.schedule(SimTime(2.0), [](SimTime) {});
  EXPECT_EQ(q.pending(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.pending(), 1u);
  q.run_next();
  EXPECT_EQ(q.pending(), 0u);
}

TEST(EventQueue, NextTimeSkipsCancelled) {
  EventQueue q;
  const EventHandle a = q.schedule(SimTime(1.0), [](SimTime) {});
  q.schedule(SimTime(5.0), [](SimTime) {});
  q.cancel(a);
  EXPECT_DOUBLE_EQ(q.next_time().seconds(), 5.0);
}

TEST(EventQueue, EventsCanScheduleMoreEvents) {
  EventQueue q;
  std::vector<double> fired;
  q.schedule(SimTime(1.0), [&](SimTime t) {
    fired.push_back(t.seconds());
    q.schedule(SimTime(2.0), [&](SimTime t2) { fired.push_back(t2.seconds()); });
  });
  while (q.run_next()) {
  }
  EXPECT_EQ(fired, (std::vector<double>{1.0, 2.0}));
}

TEST(EventQueue, EventCanCancelLaterEvent) {
  EventQueue q;
  int fired = 0;
  EventHandle victim = q.schedule(SimTime(2.0), [&](SimTime) { ++fired; });
  q.schedule(SimTime(1.0), [&](SimTime) { q.cancel(victim); });
  while (q.run_next()) {
  }
  EXPECT_EQ(fired, 0);
}

TEST(EventQueue, ManyEventsStressOrdering) {
  EventQueue q;
  std::vector<double> times;
  // Insert in a scrambled order.
  for (int i = 0; i < 1000; ++i) {
    const double t = static_cast<double>((i * 7919) % 1000);
    q.schedule(SimTime(t), [&times](SimTime at) { times.push_back(at.seconds()); });
  }
  while (q.run_next()) {
  }
  ASSERT_EQ(times.size(), 1000u);
  EXPECT_TRUE(std::is_sorted(times.begin(), times.end()));
}

}  // namespace
}  // namespace perfcloud::sim
