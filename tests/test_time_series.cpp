#include <gtest/gtest.h>

#include "sim/ewma.hpp"
#include "sim/time_series.hpp"

namespace perfcloud::sim {
namespace {

TEST(Ewma, FirstSampleSeeds) {
  Ewma e(0.3);
  EXPECT_FALSE(e.seeded());
  EXPECT_DOUBLE_EQ(e.update(10.0), 10.0);
  EXPECT_TRUE(e.seeded());
}

TEST(Ewma, SmoothsTowardNewSamples) {
  Ewma e(0.5);
  e.update(0.0);
  EXPECT_DOUBLE_EQ(e.update(10.0), 5.0);
  EXPECT_DOUBLE_EQ(e.update(10.0), 7.5);
}

TEST(Ewma, AlphaOneIsPassThrough) {
  Ewma e(1.0);
  e.update(3.0);
  EXPECT_DOUBLE_EQ(e.update(42.0), 42.0);
}

TEST(Ewma, ResetForgets) {
  Ewma e(0.5);
  e.update(100.0);
  e.reset();
  EXPECT_FALSE(e.seeded());
  EXPECT_DOUBLE_EQ(e.update(1.0), 1.0);
}

TEST(Ewma, ConvergesToConstantInput) {
  Ewma e(0.2);
  e.update(0.0);
  for (int i = 0; i < 100; ++i) e.update(8.0);
  EXPECT_NEAR(e.value(), 8.0, 1e-6);
}

TEST(TimeSeries, AddAndAccess) {
  TimeSeries ts("x");
  ts.add(SimTime(1.0), 10.0);
  ts.add(SimTime(2.0), 20.0);
  EXPECT_EQ(ts.name(), "x");
  EXPECT_EQ(ts.size(), 2u);
  EXPECT_DOUBLE_EQ(ts.time(1).seconds(), 2.0);
  EXPECT_DOUBLE_EQ(ts.value(1), 20.0);
}

TEST(TimeSeries, TailReturnsNewestFirstInOrder) {
  TimeSeries ts;
  for (int i = 0; i < 5; ++i) ts.add(SimTime(i), static_cast<double>(i));
  const auto t = ts.tail(3);
  ASSERT_EQ(t.size(), 3u);
  EXPECT_DOUBLE_EQ(t[0], 2.0);
  EXPECT_DOUBLE_EQ(t[2], 4.0);
  EXPECT_EQ(ts.tail(99).size(), 5u);
}

TEST(TimeSeries, PeakIsMaxAbsolute) {
  TimeSeries ts;
  ts.add(SimTime(0.0), -7.0);
  ts.add(SimTime(1.0), 3.0);
  EXPECT_DOUBLE_EQ(ts.peak(), 7.0);
}

TEST(TimeSeries, NormalizedByPeak) {
  TimeSeries ts;
  ts.add(SimTime(0.0), 2.0);
  ts.add(SimTime(1.0), 4.0);
  const auto n = ts.normalized_by_peak();
  EXPECT_DOUBLE_EQ(n[0], 0.5);
  EXPECT_DOUBLE_EQ(n[1], 1.0);
}

TEST(TimeSeries, NormalizeAllZerosStaysZero) {
  TimeSeries ts;
  ts.add(SimTime(0.0), 0.0);
  const auto n = ts.normalized_by_peak();
  EXPECT_DOUBLE_EQ(n[0], 0.0);
}

TEST(TimeSeries, AtOrBefore) {
  TimeSeries ts;
  ts.add(SimTime(5.0), 1.0);
  ts.add(SimTime(10.0), 2.0);
  EXPECT_FALSE(ts.at_or_before(SimTime(4.9)).has_value());
  EXPECT_DOUBLE_EQ(ts.at_or_before(SimTime(5.0)).value(), 1.0);
  EXPECT_DOUBLE_EQ(ts.at_or_before(SimTime(7.0)).value(), 1.0);
  EXPECT_DOUBLE_EQ(ts.at_or_before(SimTime(100.0)).value(), 2.0);
}

TEST(TimeSeries, ClearEmpties) {
  TimeSeries ts;
  ts.add(SimTime(0.0), 1.0);
  ts.clear();
  EXPECT_TRUE(ts.empty());
}

TEST(AlignTo, ExactMatchesPassThrough) {
  TimeSeries ref;
  TimeSeries s;
  for (int i = 0; i < 4; ++i) {
    ref.add(SimTime(i * 5.0), 0.0);
    s.add(SimTime(i * 5.0), static_cast<double>(i));
  }
  const auto a = align_to(ref, s);
  ASSERT_EQ(a.size(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(a[static_cast<std::size_t>(i)], i);
}

TEST(AlignTo, MissingSamplesBecomeZero) {
  TimeSeries ref;
  for (int i = 0; i < 4; ++i) ref.add(SimTime(i * 5.0), 0.0);
  TimeSeries s;
  s.add(SimTime(5.0), 42.0);  // only one sample, at the second grid point
  const auto a = align_to(ref, s);
  ASSERT_EQ(a.size(), 4u);
  EXPECT_DOUBLE_EQ(a[0], 0.0);
  EXPECT_DOUBLE_EQ(a[1], 42.0);
  EXPECT_DOUBLE_EQ(a[2], 0.0);
  EXPECT_DOUBLE_EQ(a[3], 0.0);
}

TEST(AlignTo, CustomMissingValue) {
  TimeSeries ref;
  ref.add(SimTime(0.0), 0.0);
  TimeSeries s;  // empty
  const auto a = align_to(ref, s, -1.0);
  ASSERT_EQ(a.size(), 1u);
  EXPECT_DOUBLE_EQ(a[0], -1.0);
}

TEST(AlignTo, ToleranceMatchesNearbySamples) {
  TimeSeries ref;
  ref.add(SimTime(5.0), 0.0);
  TimeSeries s;
  s.add(SimTime(5.0 + 1e-9), 3.0);
  const auto a = align_to(ref, s);
  EXPECT_DOUBLE_EQ(a[0], 3.0);
}

TEST(TimeSeries, BoundedCapacityEvictsOldest) {
  TimeSeries s("bounded", 3);
  EXPECT_EQ(s.capacity(), 3u);
  for (int i = 0; i < 5; ++i) s.add(SimTime(i * 1.0), static_cast<double>(i * 10));
  ASSERT_EQ(s.size(), 3u);
  // Holds exactly the most recent 3 samples, oldest first.
  EXPECT_DOUBLE_EQ(s.time(0).seconds(), 2.0);
  EXPECT_DOUBLE_EQ(s.value(0), 20.0);
  EXPECT_DOUBLE_EQ(s.time(2).seconds(), 4.0);
  EXPECT_DOUBLE_EQ(s.value(2), 40.0);
}

TEST(TimeSeries, BoundedCapacitySpansStayCoherent) {
  TimeSeries s("bounded", 4);
  for (int i = 0; i < 9; ++i) s.add(SimTime(i * 1.0), static_cast<double>(i));
  const auto vals = s.values();
  const auto times = s.times();
  ASSERT_EQ(vals.size(), 4u);
  ASSERT_EQ(times.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(vals[i], static_cast<double>(i + 5));
    EXPECT_DOUBLE_EQ(times[i].seconds(), static_cast<double>(i + 5));
  }
}

TEST(TimeSeries, SetCapacityTrimsExistingSamples) {
  TimeSeries s;
  for (int i = 0; i < 10; ++i) s.add(SimTime(i * 1.0), static_cast<double>(i));
  s.set_capacity(4);
  ASSERT_EQ(s.size(), 4u);
  EXPECT_DOUBLE_EQ(s.value(0), 6.0);
  s.set_capacity(0);  // unbounded again: growth resumes
  s.add(SimTime(10.0), 10.0);
  s.add(SimTime(11.0), 11.0);
  EXPECT_EQ(s.size(), 6u);
}

TEST(TimeSeries, ValueAtExactTime) {
  TimeSeries s;
  s.add(SimTime(5.0), 1.0);
  s.add(SimTime(10.0), 2.0);
  s.add(SimTime(15.0), 3.0);
  EXPECT_EQ(s.value_at(SimTime(10.0)).value_or(-1.0), 2.0);
  EXPECT_EQ(s.value_at(SimTime(15.0)).value_or(-1.0), 3.0);  // newest: O(1) path
  EXPECT_FALSE(s.value_at(SimTime(12.0)).has_value());
  EXPECT_FALSE(s.value_at(SimTime(20.0)).has_value());
  EXPECT_EQ(s.value_at(SimTime(5.0 + 1e-9)).value_or(-1.0), 1.0);  // within tol
  EXPECT_FALSE(TimeSeries{}.value_at(SimTime(0.0)).has_value());
}

TEST(AlignTo, SkipsSamplesBetweenGridPoints) {
  TimeSeries ref;
  ref.add(SimTime(0.0), 0.0);
  ref.add(SimTime(10.0), 0.0);
  TimeSeries s;
  s.add(SimTime(0.0), 1.0);
  s.add(SimTime(4.0), 99.0);  // off-grid; must not leak into t=10
  s.add(SimTime(10.0), 2.0);
  const auto a = align_to(ref, s);
  EXPECT_DOUBLE_EQ(a[0], 1.0);
  EXPECT_DOUBLE_EQ(a[1], 2.0);
}

}  // namespace
}  // namespace perfcloud::sim
