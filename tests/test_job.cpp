#include <gtest/gtest.h>

#include "sim/rng.hpp"
#include "workloads/benchmarks.hpp"
#include "workloads/job.hpp"

namespace perfcloud::wl {
namespace {

JobSpec two_stage_spec(int tasks_per_stage = 3) {
  TaskSpec t;
  t.phases = {PhaseSpec{PhaseKind::kCompute, 100.0, 0.0, 0.0}};
  return JobSpec{"test", JobType::kMapReduce,
                 {StageSpec{"map", tasks_per_stage, t}, StageSpec{"reduce", 2, t}},
                 0.0};
}

TEST(Job, ConstructionInstantiatesAllStages) {
  sim::Rng rng(1);
  Job job(1, two_stage_spec(), sim::SimTime(10.0), rng);
  EXPECT_EQ(job.id(), 1);
  EXPECT_EQ(job.stage_count(), 2u);
  EXPECT_EQ(job.stage(0).size(), 3u);
  EXPECT_EQ(job.stage(1).size(), 2u);
  EXPECT_EQ(job.current_stage(), 0u);
  EXPECT_FALSE(job.finished());
  EXPECT_DOUBLE_EQ(job.submitted().seconds(), 10.0);
}

TEST(Job, JitterVariesTaskSizes) {
  sim::Rng rng(2);
  JobSpec spec = two_stage_spec(20);
  spec.task_jitter_sigma = 0.2;
  Job job(1, spec, sim::SimTime(0.0), rng);
  double min_instr = 1e18;
  double max_instr = 0.0;
  for (const TaskState& t : job.stage(0)) {
    min_instr = std::min(min_instr, t.spec.phases[0].instructions);
    max_instr = std::max(max_instr, t.spec.phases[0].instructions);
  }
  EXPECT_GT(max_instr, min_instr * 1.05);
}

TEST(Job, ZeroJitterKeepsTemplateSizes) {
  sim::Rng rng(3);
  Job job(1, two_stage_spec(), sim::SimTime(0.0), rng);
  for (const TaskState& t : job.stage(0)) {
    EXPECT_DOUBLE_EQ(t.spec.phases[0].instructions, 100.0);
  }
}

TEST(Job, BarrierHoldsUntilStageComplete) {
  sim::Rng rng(4);
  Job job(1, two_stage_spec(), sim::SimTime(0.0), rng);
  job.stage(0)[0].completed = true;
  job.stage(0)[1].completed = true;
  job.advance_barrier(sim::SimTime(5.0));
  EXPECT_EQ(job.current_stage(), 0u);  // one task still pending
  job.stage(0)[2].completed = true;
  job.advance_barrier(sim::SimTime(6.0));
  EXPECT_EQ(job.current_stage(), 1u);
  EXPECT_FALSE(job.finished());
}

TEST(Job, CompletesAfterLastStage) {
  sim::Rng rng(5);
  Job job(1, two_stage_spec(), sim::SimTime(2.0), rng);
  for (std::size_t s = 0; s < job.stage_count(); ++s) {
    for (TaskState& t : job.stage(s)) t.completed = true;
  }
  job.advance_barrier(sim::SimTime(42.0));
  EXPECT_TRUE(job.completed());
  EXPECT_DOUBLE_EQ(job.finish_time().seconds(), 42.0);
  EXPECT_DOUBLE_EQ(job.jct(), 40.0);
}

TEST(Job, KillMarksFinished) {
  sim::Rng rng(6);
  Job job(1, two_stage_spec(), sim::SimTime(0.0), rng);
  job.mark_killed(sim::SimTime(9.0));
  EXPECT_TRUE(job.killed());
  EXPECT_TRUE(job.finished());
  EXPECT_FALSE(job.completed());
  // Killing twice or completing after kill is a no-op.
  job.advance_barrier(sim::SimTime(10.0));
  EXPECT_TRUE(job.killed());
}

TEST(TaskState, RunningAttemptCount) {
  TaskState t;
  t.attempts.push_back(AttemptRecord{});
  t.attempts.back().running = true;
  t.attempts.push_back(AttemptRecord{});
  EXPECT_EQ(t.running_attempts(), 1);
  EXPECT_FALSE(t.schedulable());
  t.attempts[0].running = false;
  EXPECT_TRUE(t.schedulable());
  t.completed = true;
  EXPECT_FALSE(t.schedulable());
}

TEST(Benchmarks, AllFactoriesProduceValidSpecs) {
  for (const std::string& name : benchmark_names()) {
    const JobSpec spec = make_benchmark(name, 8);
    EXPECT_FALSE(spec.stages.empty()) << name;
    for (const StageSpec& s : spec.stages) {
      EXPECT_GT(s.num_tasks, 0) << name;
      EXPECT_GT(total_work(s.task), 0.0) << name;
    }
  }
}

TEST(Benchmarks, UnknownNameThrows) {
  EXPECT_THROW(make_benchmark("nope", 4), std::invalid_argument);
}

TEST(Benchmarks, TerasortIsIoDominant) {
  const JobSpec ts = make_terasort(4, 4);
  const TaskSpec& map = ts.stages[0].task;
  sim::Bytes io = 0.0;
  for (const PhaseSpec& p : map.phases) io += p.io_bytes;
  EXPECT_GT(io, 100.0e6);  // read + write a full block
}

TEST(Benchmarks, WordcountWritesLittle) {
  const JobSpec wc = make_wordcount(4, 2);
  const PhaseSpec& write = wc.stages[0].task.phases.back();
  EXPECT_EQ(write.kind, PhaseKind::kWrite);
  EXPECT_LT(write.io_bytes, 0.02 * kHdfsBlock);
}

TEST(Benchmarks, SparkJobsIterate) {
  const JobSpec lr = make_spark_logreg(10, 5);
  EXPECT_EQ(lr.stages.size(), 6u);  // load + 5 iterations
  EXPECT_EQ(lr.type, JobType::kSpark);
  // Iterations are compute-dominated with a modest spill/shuffle footprint.
  for (std::size_t s = 1; s < lr.stages.size(); ++s) {
    double instr = 0.0;
    sim::Bytes io = 0.0;
    for (const PhaseSpec& p : lr.stages[s].task.phases) {
      instr += p.instructions;
      io += p.io_bytes;
    }
    EXPECT_GT(instr, 3.0e9);
    EXPECT_LT(io, 0.5 * kHdfsBlock);
  }
}

TEST(Benchmarks, SparkMemoryProfileIsHungrier) {
  const JobSpec lr = make_spark_logreg(10);
  const JobSpec ts = make_terasort(10, 10);
  EXPECT_GT(lr.stages[1].task.mem.bw_per_cpu_sec, ts.stages[0].task.mem.bw_per_cpu_sec);
  EXPECT_GT(lr.stages[1].task.mem.mem_sensitivity, ts.stages[0].task.mem.mem_sensitivity);
}

TEST(Benchmarks, PagerankShufflesEachIteration) {
  const JobSpec pr = make_spark_pagerank(10, 3);
  EXPECT_EQ(pr.stages.size(), 4u);
  const TaskSpec& iter = pr.stages[1].task;
  EXPECT_EQ(iter.phases.size(), 3u);
  EXPECT_GT(iter.phases[0].io_bytes, 0.0);
  EXPECT_GT(iter.phases[2].io_bytes, 0.0);
}

}  // namespace
}  // namespace perfcloud::wl
