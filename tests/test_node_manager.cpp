// End-to-end tests of Algorithm 1 on a small simulated host.
#include <gtest/gtest.h>

#include "exp/cluster.hpp"
#include "workloads/benchmarks.hpp"

namespace perfcloud::core {
namespace {

exp::Cluster hadoop_cluster(std::uint64_t seed) {
  exp::ClusterParams p;
  p.workers = 6;
  p.seed = seed;
  return exp::make_cluster(p);
}

TEST(NodeManager, QuietClusterNeverTriggers) {
  exp::Cluster c = hadoop_cluster(11);
  exp::enable_perfcloud(c, PerfCloudConfig{});
  c.framework->submit(wl::make_terasort(10, 10));
  exp::run_until_done(c, 600.0);

  NodeManager& nm = c.node_manager(0);
  const sim::TimeSeries& io_sig = nm.io_signal("hadoop");
  const sim::TimeSeries& cpi_sig = nm.cpi_signal("hadoop");
  ASSERT_GT(io_sig.size(), 3u);
  // Paper §III-A: deviations stay below the thresholds when running alone.
  EXPECT_LT(io_sig.peak(), 10.0);
  EXPECT_LT(cpi_sig.peak(), 1.0);
  // And nothing was throttled.
  for (const auto& vm : c.cloud->host("host-0").vms()) {
    EXPECT_EQ(vm->cgroup().blkio_throttle_bps(), hw::kNoCap);
    EXPECT_EQ(vm->cgroup().cpu_quota_cores(), hw::kNoCap);
  }
}

TEST(NodeManager, DetectsAndThrottlesIoAntagonist) {
  exp::Cluster c = hadoop_cluster(13);
  const int fio = exp::add_fio(c, "host-0", wl::FioRandomRead::Params{.start_s = 12.0});
  exp::enable_perfcloud(c, PerfCloudConfig{});
  c.framework->submit(wl::make_terasort(12, 12));
  exp::run_until_done(c, 600.0);

  NodeManager& nm = c.node_manager(0);
  EXPECT_GT(nm.io_signal("hadoop").peak(), 10.0);
  // fio was identified and its cap history shows a decrease below 1.
  const sim::TimeSeries& caps = nm.io_cap_series(fio);
  ASSERT_FALSE(caps.empty());
  double min_cap = 1e9;
  for (std::size_t i = 0; i < caps.size(); ++i) min_cap = std::min(min_cap, caps.value(i));
  EXPECT_LT(min_cap, 0.5);
}

TEST(NodeManager, ThrottlingImprovesJct) {
  // Long enough that identification (>= 3 samples after the fio VM starts)
  // leaves a meaningful throttled window within the job.
  const wl::JobSpec job = wl::make_terasort(24, 24);
  exp::Cluster base = hadoop_cluster(17);
  const double jct_alone = exp::run_job(base, job);

  exp::Cluster noisy = hadoop_cluster(17);
  exp::add_fio(noisy, "host-0", wl::FioRandomRead::Params{.start_s = 12.0});
  const double jct_noisy = exp::run_job(noisy, job);

  exp::Cluster guarded = hadoop_cluster(17);
  exp::add_fio(guarded, "host-0", wl::FioRandomRead::Params{.start_s = 12.0});
  exp::enable_perfcloud(guarded, PerfCloudConfig{});
  const double jct_guarded = exp::run_job(guarded, job);

  EXPECT_GT(jct_noisy, 1.3 * jct_alone);
  EXPECT_LT(jct_guarded, 0.80 * jct_noisy);
}

TEST(NodeManager, MonitoringOnlyModeNeverActuates) {
  exp::Cluster c = hadoop_cluster(19);
  const int fio = exp::add_fio(c, "host-0", wl::FioRandomRead::Params{.start_s = 12.0});
  exp::enable_perfcloud(c, PerfCloudConfig{}, /*control=*/false);
  c.framework->submit(wl::make_terasort(12, 12));
  exp::run_until_done(c, 600.0);

  NodeManager& nm = c.node_manager(0);
  EXPECT_GT(nm.io_signal("hadoop").peak(), 10.0);  // detection still works
  EXPECT_TRUE(nm.io_cap_series(fio).empty());      // but no control
  EXPECT_EQ(c.vm(fio).cgroup().blkio_throttle_bps(), hw::kNoCap);
}

TEST(NodeManager, CpuAntagonistGetsCpuCapNotIoCap) {
  exp::Cluster c = hadoop_cluster(23);
  const int stream = exp::add_stream(c, "host-0", wl::StreamBenchmark::Params{.threads = 16, .start_s = 12.0});
  exp::enable_perfcloud(c, PerfCloudConfig{});
  c.framework->submit(wl::make_spark_logreg(24, 10));
  exp::run_until_done(c, 600.0);

  NodeManager& nm = c.node_manager(0);
  EXPECT_GT(nm.cpi_signal("hadoop").peak(), 1.0);
  EXPECT_FALSE(nm.cpu_cap_series(stream).empty());
  EXPECT_TRUE(nm.io_cap_series(stream).empty());
}

TEST(NodeManager, InnocentBystanderNotThrottled) {
  exp::Cluster c = hadoop_cluster(29);
  exp::add_fio(c, "host-0", wl::FioRandomRead::Params{.start_s = 12.0});
  const int cpu_vm = exp::add_sysbench_cpu(c, "host-0");
  exp::enable_perfcloud(c, PerfCloudConfig{});
  c.framework->submit(wl::make_terasort(12, 12));
  exp::run_until_done(c, 600.0);

  NodeManager& nm = c.node_manager(0);
  EXPECT_TRUE(nm.io_cap_series(cpu_vm).empty());
  EXPECT_TRUE(nm.cpu_cap_series(cpu_vm).empty());
}

TEST(NodeManager, CapLiftsAfterJobEnds) {
  exp::Cluster c = hadoop_cluster(31);
  const int fio = exp::add_fio(c, "host-0", wl::FioRandomRead::Params{.start_s = 12.0});
  exp::enable_perfcloud(c, PerfCloudConfig{});
  c.framework->submit(wl::make_terasort(12, 12));
  exp::run_until_done(c, 600.0);
  // After the job ends contention vanishes; give the cubic time to probe.
  exp::run_for(c, 120.0);
  EXPECT_EQ(c.vm(fio).cgroup().blkio_throttle_bps(), hw::kNoCap);
}

TEST(NodeManager, SuspectScoresExposeCorrelations) {
  exp::Cluster c = hadoop_cluster(37);
  const int fio = exp::add_fio(c, "host-0", wl::FioRandomRead::Params{.start_s = 12.0});
  exp::enable_perfcloud(c, PerfCloudConfig{});
  c.framework->submit(wl::make_terasort(12, 12));
  exp::run_for(c, 60.0);
  // fio appears in the score list every interval...
  bool found = false;
  for (const SuspectScore& s : c.node_manager(0).last_io_scores()) {
    found |= s.vm_id == fio;
  }
  EXPECT_TRUE(found);
  // ...and its correlation crossed the 0.8 threshold at some point (a
  // controller exists), even though throttling then flattens its signal.
  EXPECT_FALSE(c.node_manager(0).io_cap_series(fio).empty());
}

}  // namespace
}  // namespace perfcloud::core
