#include <gtest/gtest.h>

#include "hw/cpu.hpp"

namespace perfcloud::hw {
namespace {

CpuScheduler make_sched(int cores = 4) {
  CpuConfig cfg;
  cfg.cores = cores;
  return CpuScheduler(cfg);
}

TenantDemand cpu_demand(double core_seconds, double cap_cores = kNoCap) {
  TenantDemand d;
  d.cpu_core_seconds = core_seconds;
  d.cpu_cap_cores = cap_cores;
  return d;
}

TEST(CpuScheduler, CapacityScalesWithDt) {
  const CpuScheduler s = make_sched(48);
  EXPECT_DOUBLE_EQ(s.capacity(1.0), 48.0);
  EXPECT_DOUBLE_EQ(s.capacity(0.1), 4.8);
}

TEST(CpuScheduler, UndersubscribedFullGrant) {
  const CpuScheduler s = make_sched(4);
  const std::vector<TenantDemand> d = {cpu_demand(1.0), cpu_demand(2.0)};
  const auto g = s.allocate(1.0, d);
  EXPECT_DOUBLE_EQ(g[0], 1.0);
  EXPECT_DOUBLE_EQ(g[1], 2.0);
}

TEST(CpuScheduler, OversubscribedFairSplit) {
  const CpuScheduler s = make_sched(4);
  const std::vector<TenantDemand> d = {cpu_demand(10.0), cpu_demand(10.0)};
  const auto g = s.allocate(1.0, d);
  EXPECT_DOUBLE_EQ(g[0], 2.0);
  EXPECT_DOUBLE_EQ(g[1], 2.0);
}

TEST(CpuScheduler, QuotaCapsGrantEvenWhenIdle) {
  const CpuScheduler s = make_sched(8);
  const std::vector<TenantDemand> d = {cpu_demand(5.0, /*cap=*/1.0)};
  const auto g = s.allocate(1.0, d);
  EXPECT_DOUBLE_EQ(g[0], 1.0);
}

TEST(CpuScheduler, QuotaScalesWithTickLength) {
  const CpuScheduler s = make_sched(8);
  const std::vector<TenantDemand> d = {cpu_demand(5.0, /*cap=*/2.0)};
  const auto g = s.allocate(0.5, d);
  EXPECT_DOUBLE_EQ(g[0], 1.0);  // 2 cores * 0.5 s
}

TEST(CpuScheduler, WeightsRespectedUnderContention) {
  const CpuScheduler s = make_sched(4);
  std::vector<TenantDemand> d = {cpu_demand(100.0), cpu_demand(100.0)};
  d[0].cpu_weight = 3.0;
  const auto g = s.allocate(1.0, d);
  EXPECT_DOUBLE_EQ(g[0], 3.0);
  EXPECT_DOUBLE_EQ(g[1], 1.0);
}

TEST(CpuScheduler, NoDemandNoGrant) {
  const CpuScheduler s = make_sched(4);
  const std::vector<TenantDemand> d = {cpu_demand(0.0), cpu_demand(1.0)};
  const auto g = s.allocate(1.0, d);
  EXPECT_DOUBLE_EQ(g[0], 0.0);
  EXPECT_DOUBLE_EQ(g[1], 1.0);
}

}  // namespace
}  // namespace perfcloud::hw
