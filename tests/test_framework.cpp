#include <gtest/gtest.h>

#include "exp/cluster.hpp"
#include "workloads/benchmarks.hpp"
#include "workloads/framework.hpp"

namespace perfcloud::wl {
namespace {

exp::Cluster small_cluster(std::uint64_t seed = 1, int workers = 4) {
  exp::ClusterParams p;
  p.workers = workers;
  p.seed = seed;
  return exp::make_cluster(p);
}

JobSpec tiny_job(int maps = 4, int reduces = 2) {
  TaskSpec t;
  t.phases = {PhaseSpec{PhaseKind::kCompute, 2.0e8, 0.0, 0.0}};
  return JobSpec{"tiny", JobType::kMapReduce,
                 {StageSpec{"map", maps, t}, StageSpec{"reduce", reduces, t}},
                 0.05};
}

TEST(Framework, JobRunsToCompletion) {
  exp::Cluster c = small_cluster();
  const double jct = exp::run_job(c, tiny_job());
  EXPECT_GT(jct, 0.0);
  EXPECT_LT(jct, 120.0);
  EXPECT_TRUE(c.framework->all_done());
}

TEST(Framework, JobsCompleteInSubmissionOrderForEqualWork) {
  exp::Cluster c = small_cluster();
  const JobId a = c.framework->submit(tiny_job());
  const JobId b = c.framework->submit(tiny_job());
  exp::run_until_done(c);
  const Job* ja = c.framework->find_job(a);
  const Job* jb = c.framework->find_job(b);
  ASSERT_NE(ja, nullptr);
  ASSERT_NE(jb, nullptr);
  EXPECT_TRUE(ja->completed());
  EXPECT_TRUE(jb->completed());
  EXPECT_LE(ja->finish_time().seconds(), jb->finish_time().seconds());
}

TEST(Framework, AttemptsSpreadAcrossWorkers) {
  exp::Cluster c = small_cluster(2, 4);
  const JobId id = c.framework->submit(tiny_job(8, 0));
  exp::run_until_done(c);
  const Job* job = c.framework->find_job(id);
  std::vector<int> per_worker(4, 0);
  for (const TaskState& t : job->stage(0)) {
    for (const AttemptRecord& a : t.attempts) {
      per_worker[static_cast<std::size_t>(a.worker_index)]++;
    }
  }
  // 8 tasks over 4 x 2-slot workers: everyone should get exactly 2.
  for (int n : per_worker) EXPECT_EQ(n, 2);
}

TEST(Framework, UtilizationEfficiencyIsOneWithoutKills) {
  exp::Cluster c = small_cluster();
  c.framework->submit(tiny_job());
  exp::run_until_done(c);
  EXPECT_DOUBLE_EQ(c.framework->utilization_efficiency(), 1.0);
}

TEST(Framework, CloneGroupFirstFinisherWins) {
  exp::Cluster c = small_cluster(3, 6);
  const std::vector<JobId> clones = c.framework->submit_cloned(tiny_job(), 3);
  ASSERT_EQ(clones.size(), 3u);
  exp::run_until_done(c);
  int completed = 0;
  int killed = 0;
  for (const JobId id : clones) {
    const Job* j = c.framework->find_job(id);
    completed += j->completed() ? 1 : 0;
    killed += j->killed() ? 1 : 0;
  }
  EXPECT_EQ(completed, 1);
  EXPECT_EQ(killed, 2);
  const int group = c.framework->find_job(clones[0])->clone_group;
  EXPECT_GT(c.framework->group_jct(group), 0.0);
}

TEST(Framework, CloningReducesUtilizationEfficiency) {
  exp::Cluster c = small_cluster(4, 6);
  c.framework->submit_cloned(tiny_job(), 4);
  exp::run_until_done(c);
  EXPECT_LT(c.framework->utilization_efficiency(), 0.9);
}

TEST(Framework, KillJobStopsItsWork) {
  exp::Cluster c = small_cluster();
  JobSpec slow = tiny_job(8, 4);
  for (StageSpec& s : slow.stages) s.task.phases[0].instructions = 5.0e10;  // ~22 s/task
  const JobId id = c.framework->submit(slow);
  exp::run_for(c, 3.0);  // let it start
  c.framework->kill_job(id);
  EXPECT_TRUE(c.framework->find_job(id)->killed());
  EXPECT_TRUE(c.framework->all_done());
  // No attempt is left running.
  const Job* j = c.framework->find_job(id);
  for (std::size_t s = 0; s < j->stage_count(); ++s) {
    for (const TaskState& t : j->stage(s)) {
      EXPECT_EQ(t.running_attempts(), 0);
    }
  }
}

TEST(Framework, KillUnknownOrFinishedIsNoop) {
  exp::Cluster c = small_cluster();
  c.framework->kill_job(999);
  const JobId id = c.framework->submit(tiny_job());
  exp::run_until_done(c);
  c.framework->kill_job(id);
  EXPECT_TRUE(c.framework->find_job(id)->completed());
}

TEST(Framework, GroupJctNegativeWhenNothingCompleted) {
  exp::Cluster c = small_cluster();
  EXPECT_LT(c.framework->group_jct(1), 0.0);
}

TEST(Framework, StartTwiceThrows) {
  exp::Cluster c = small_cluster();
  EXPECT_THROW(c.framework->start(1.0), std::logic_error);
}

/// A speculator that duplicates every running task once.
class EagerSpeculator : public Speculator {
 public:
  std::vector<TaskRef> pick(const std::vector<const Job*>& jobs, sim::SimTime,
                            int /*free_slots*/) override {
    std::vector<TaskRef> out;
    for (const Job* j : jobs) {
      if (j->current_stage() >= j->stage_count()) continue;
      const auto& tasks = j->stage(j->current_stage());
      for (std::size_t i = 0; i < tasks.size(); ++i) {
        if (tasks[i].completed || tasks[i].running_attempts() != 1) continue;
        out.push_back(TaskRef{j->id(), j->current_stage(), i});
      }
    }
    return out;
  }
};

TEST(Framework, SpeculationCreatesAndReapsDuplicates) {
  exp::Cluster c = small_cluster(5, 6);
  c.framework->set_speculator(std::make_unique<EagerSpeculator>());
  const JobId id = c.framework->submit(tiny_job(4, 0));
  exp::run_until_done(c);
  const Job* j = c.framework->find_job(id);
  EXPECT_TRUE(j->completed());
  int speculative = 0;
  int killed = 0;
  int winners = 0;
  for (const TaskState& t : j->stage(0)) {
    for (const AttemptRecord& a : t.attempts) {
      speculative += a.speculative ? 1 : 0;
      killed += a.killed ? 1 : 0;
      winners += a.finished_ok ? 1 : 0;
    }
  }
  EXPECT_GT(speculative, 0);
  EXPECT_EQ(winners, 4);       // exactly one winner per task
  EXPECT_EQ(killed, speculative);  // equal work: originals win, copies die
  EXPECT_LT(c.framework->utilization_efficiency(), 1.0);
}

}  // namespace
}  // namespace perfcloud::wl
