// Memory-layout primitives: app-id interning and the dense slot store the
// hot path is keyed by (DESIGN.md §5i).
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "exp/cluster.hpp"
#include "sim/interner.hpp"
#include "sim/slot_store.hpp"
#include "workloads/benchmarks.hpp"

namespace perfcloud::sim {
namespace {

TEST(Interner, DuplicateRegistrationReturnsSameId) {
  Interner in;
  const Interner::Id a = in.intern("hadoop");
  const Interner::Id b = in.intern("spark");
  EXPECT_NE(a, b);
  EXPECT_EQ(in.intern("hadoop"), a);
  EXPECT_EQ(in.intern("spark"), b);
  EXPECT_EQ(in.size(), 2u);
  EXPECT_EQ(in.name(a), "hadoop");
  EXPECT_EQ(in.name(b), "spark");
}

TEST(Interner, IdsAreDenseInRegistrationOrder) {
  Interner in;
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(in.intern("app-" + std::to_string(i)), static_cast<Interner::Id>(i));
  }
}

TEST(Interner, UnknownLookupReturnsInvalid) {
  Interner in;
  (void)in.intern("known");
  EXPECT_EQ(in.lookup("unknown"), Interner::kInvalid);
  EXPECT_EQ(in.lookup(""), Interner::kInvalid);
  EXPECT_EQ(in.lookup("known"), 0);
  // Heterogeneous lookup: a string_view into a larger buffer resolves too.
  const std::string buf = "known-with-suffix";
  EXPECT_EQ(in.lookup(std::string_view(buf).substr(0, 5)), 0);
}

TEST(Interner, NameOfInvalidIdThrows) {
  Interner in;
  EXPECT_THROW((void)in.name(Interner::kInvalid), std::out_of_range);
  EXPECT_THROW((void)in.name(7), std::out_of_range);
}

TEST(SlotMap, TryEmplaceFindEraseRoundTrip) {
  SlotMap<std::string> m;
  EXPECT_TRUE(m.empty());
  const auto [v, inserted] = m.try_emplace(5, "five");
  EXPECT_TRUE(inserted);
  EXPECT_EQ(*v, "five");
  // Existing key: same value back, nothing constructed.
  const auto [v2, inserted2] = m.try_emplace(5, "other");
  EXPECT_FALSE(inserted2);
  EXPECT_EQ(*v2, "five");
  EXPECT_EQ(m.size(), 1u);
  EXPECT_TRUE(m.contains(5));
  EXPECT_FALSE(m.contains(4));
  EXPECT_EQ(m.find(4), nullptr);
  EXPECT_EQ(m.at(5), "five");
  EXPECT_THROW((void)m.at(4), std::out_of_range);
  EXPECT_TRUE(m.erase(5));
  EXPECT_FALSE(m.erase(5));
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.find(5), nullptr);
}

TEST(SlotMap, NegativeKeyThrows) {
  SlotMap<int> m;
  EXPECT_THROW(m.try_emplace(-1, 0), std::invalid_argument);
  EXPECT_FALSE(m.contains(-1));
  EXPECT_EQ(m.find(-1), nullptr);
}

TEST(SlotMap, KeyOrderedScanMatchesSortedKeys) {
  SlotMap<int> m;
  for (int key : {9, 2, 40, 0, 17}) m.try_emplace(key, key * 10);
  std::vector<int> walked;
  for (int k = m.first_key(); k != SlotMap<int>::kEnd; k = m.next_key(k)) {
    walked.push_back(k);
    EXPECT_EQ(m.at(k), k * 10);
  }
  EXPECT_EQ(walked, (std::vector<int>{0, 2, 9, 17, 40}));
}

TEST(SlotMap, EraseDuringScanOfCurrentKey) {
  SlotMap<int> m;
  for (int key : {1, 3, 5, 7}) m.try_emplace(key, key);
  std::vector<int> walked;
  for (int k = m.first_key(); k != SlotMap<int>::kEnd;) {
    const int next = m.next_key(k);
    walked.push_back(k);
    if (k == 3 || k == 7) m.erase(k);
    k = next;
  }
  EXPECT_EQ(walked, (std::vector<int>{1, 3, 5, 7}));
  EXPECT_EQ(m.size(), 2u);
  EXPECT_TRUE(m.contains(1));
  EXPECT_FALSE(m.contains(3));
}

TEST(SlotMap, RecycledSlotGetsFreshValueNeverStaleState) {
  // The fault path depends on this: an evicted VM's slot may be reused by a
  // later VM under a different key, and the new key must never observe the
  // old value.
  SlotMap<std::vector<int>> m;
  auto [old_vm, ins] = m.try_emplace(3);
  old_vm->assign({1, 2, 3});  // "accumulated state" of the dying VM
  ASSERT_TRUE(ins);
  m.erase(3);
  // The next insertion recycles slot 0 (LIFO free list)...
  const auto [fresh, inserted] = m.try_emplace(11);
  ASSERT_TRUE(inserted);
  // ...but the value is freshly constructed, not the corpse.
  EXPECT_TRUE(fresh->empty());
  EXPECT_FALSE(m.contains(3));
}

TEST(SlotMap, ValuesSurviveGrowthByKeyLookup) {
  SlotMap<double> m;
  for (int k = 0; k < 200; ++k) m.try_emplace(k, k * 0.5);
  for (int k = 0; k < 200; ++k) EXPECT_EQ(m.at(k), k * 0.5) << k;
  EXPECT_EQ(m.size(), 200u);
}

// End to end through the cloud manager: VM ids are cloud-wide monotonic and
// never reused, so after a host crash (all resident VMs destroyed) the
// replacement VMs observe fresh monitor state — nothing resurrects.
TEST(SlotReuse, CrashedVmStateDoesNotResurrectUnderNewIds) {
  exp::ClusterParams p;
  p.hosts = 2;
  p.workers = 4;
  p.worker_host_limit = 1;  // keep the framework off the crash victim host
  p.seed = 91;
  exp::Cluster c = exp::make_cluster(p);
  const int fio = exp::add_fio(c, "host-1", wl::FioRandomRead::Params{.start_s = 2.0});
  exp::enable_perfcloud(c, core::PerfCloudConfig{});
  exp::run_for(c, 100.0);

  core::NodeManager& nm = c.node_manager(1);
  const std::size_t stale_samples = nm.monitor().io_throughput_series(fio).size();
  ASSERT_GT(stale_samples, 3u);

  // Crash the host (destroys the fio VM) and run the HostCrash cleanup the
  // fault injector performs, then bring the host back empty.
  (void)c.cloud->crash_host("host-1");
  nm.forget_vm(fio);
  c.cloud->restore_host("host-1");
  exp::run_for(c, 50.0);

  // A new antagonist boots; its id is strictly larger — ids never recycle.
  const int fio2 = exp::add_fio(c, "host-1", wl::FioRandomRead::Params{.start_s = 1.0});
  EXPECT_GT(fio2, fio);
  exp::run_for(c, 50.0);

  // The new VM accumulated only its own samples; the dead VM's series is
  // frozen at its crash-time length (lingering, unreachable, harmless).
  const sim::TimeSeries& fresh = nm.monitor().io_throughput_series(fio2);
  const sim::TimeSeries& stale = nm.monitor().io_throughput_series(fio);
  ASSERT_FALSE(fresh.empty());
  EXPECT_EQ(stale.size(), stale_samples);
  EXPECT_LT(fresh.size(), stale_samples + 1);
}

}  // namespace
}  // namespace perfcloud::sim
