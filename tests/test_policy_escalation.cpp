// Throttle-escalation end-to-end and hysteresis-edge tests (DESIGN.md §5k).
//
// The honest way to pin a cap at its floor: raise min_cap_fraction so the
// CUBIC controller's clamp makes throttling ineffective — the antagonist is
// identified and capped, the cap sits at the floor with ever_decreased set,
// and the victim's deviation genuinely persists. The policy must then move
// the ANTAGONIST (never the victim's VMs) to the best-scored host, after
// which the victim recovers — unless a guardrail (dwell, cooldown, budget,
// blacklist) or infeasibility (no host without the victim app) suppresses
// the move, each with its own counter and decision-trail event.
#include <gtest/gtest.h>

#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "exp/chaos.hpp"
#include "exp/cluster.hpp"
#include "workloads/antagonists.hpp"
#include "workloads/benchmarks.hpp"

namespace perfcloud::policy {
namespace {

struct Scenario {
  int hosts = 3;
  int workers = 6;
  std::uint64_t seed = 91;
  exp::Placement placement = exp::Placement::kPacked;
  PolicyParams policy;
  cloud::MigrationModel migration;  // default: instantaneous
  double min_cap_fraction = 0.9;    // throttle to 90 % of baseline: toothless
};

exp::Cluster build(const Scenario& s) {
  exp::ClusterParams p;
  p.hosts = s.hosts;
  p.workers = s.workers;
  p.seed = s.seed;
  p.placement = s.placement;
  p.migration = s.migration;
  p.policy = s.policy;
  return exp::make_cluster(p);
}

core::PerfCloudConfig control_cfg(const Scenario& s) {
  core::PerfCloudConfig cfg;
  cfg.min_cap_fraction = s.min_cap_fraction;
  return cfg;
}

PolicyParams eager_policy() {
  PolicyParams params;
  params.floor_windows = 2;
  params.dwell_min_s = 0.0;
  params.host_cooldown_s = 0.0;
  params.max_in_flight = 4;
  return params;
}

/// Keep the victim app's I/O flowing for the whole observation window.
void submit_stream_of_jobs(exp::Cluster& c) {
  for (double at : {0.0, 150.0, 300.0, 450.0}) {
    c.engine->at(sim::SimTime(at), [&c](sim::SimTime) {
      c.framework->submit(wl::make_terasort(16, 16));
    });
  }
}

std::string slurp(const std::string& path) {
  std::ifstream f(path);
  std::ostringstream os;
  os << f.rdbuf();
  return os.str();
}

TEST(ThrottleEscalation, MigratesAntagonistAndVictimRecovers) {
  Scenario s;
  s.policy = eager_policy();
  exp::Cluster c = build(s);
  const int fio = exp::add_fio(
      c, "host-0", wl::FioRandomRead::Params{.duration_s = 10000.0, .start_s = 30.0});
  exp::enable_perfcloud(c, control_cfg(s));

  const std::string jsonl = "/tmp/perfcloud_policy_escalation.jsonl";
  exp::EventSink sink(exp::EventSink::Options{.events_jsonl_path = jsonl, .async = false});
  exp::attach_sink(c, sink);

  submit_stream_of_jobs(c);
  exp::run_for(c, 600.0);

  ASSERT_NE(c.policy, nullptr);
  EXPECT_GE(c.policy->triggered(), 1);
  EXPECT_GE(c.policy->migrated(), 1);
  EXPECT_GE(c.cloud->migrations_completed(), 1);

  // The ANTAGONIST moved; every worker of the protected app stayed put.
  std::string fio_host;
  for (const cloud::VmRecord& r : c.cloud->all_vms()) {
    if (r.id == fio) fio_host = r.host;
  }
  EXPECT_NE(fio_host, "host-0");
  EXPECT_FALSE(fio_host.empty());
  for (const int id : c.worker_vm_ids) {
    for (const cloud::VmRecord& r : c.cloud->all_vms()) {
      if (r.id == id) {
        EXPECT_EQ(r.host, "host-0");
      }
    }
  }

  // With the antagonist gone the victim's deviation signal recovered.
  const sim::TimeSeries& dev = c.node_manager(0).io_signal("hadoop");
  ASSERT_FALSE(dev.empty());
  EXPECT_LT(dev.value(dev.size() - 1), control_cfg(s).io_deviation_threshold);

  // Decision trail: trigger and migrate events under the "policy" source.
  sink.close();
  const std::string events = slurp(jsonl);
  EXPECT_NE(events.find("\"policy\""), std::string::npos);
  EXPECT_NE(events.find("trigger io vm="), std::string::npos);
  EXPECT_NE(events.find("migrate io vm="), std::string::npos);

  // chaos_report folds the placement-churn counters.
  const exp::ChaosReport report = exp::chaos_report(c, control_cfg(s), {fio});
  EXPECT_EQ(report.migrations_started, c.cloud->migrations_started());
  EXPECT_GE(report.policy_triggered, 1);
  EXPECT_GE(report.policy_migrated, 1);
}

TEST(ThrottleEscalation, ViewShowsCapPinnedAtFloorBeforeTheMove) {
  // Freeze the policy (huge dwell) so the pinned-at-floor state is
  // observable instead of being resolved by a migration.
  Scenario s;
  s.policy = eager_policy();
  s.policy.dwell_min_s = 1.0e9;
  exp::Cluster c = build(s);
  const int fio = exp::add_fio(
      c, "host-0", wl::FioRandomRead::Params{.duration_s = 10000.0, .start_s = 30.0});
  exp::enable_perfcloud(c, control_cfg(s));
  submit_stream_of_jobs(c);
  exp::run_for(c, 400.0);

  EXPECT_GE(c.policy->triggered(), 1);
  EXPECT_EQ(c.policy->migrated(), 0);
  EXPECT_GE(c.policy->suppressed_dwell(), 1);

  c.policy->view().refresh(c.engine->now());
  const VmUsage* u = c.policy->view().find_vm(0, fio);
  ASSERT_NE(u, nullptr);
  EXPECT_GE(u->io_cap, 0.0);
  EXPECT_TRUE(u->io_at_floor);
  // The deviation signal is bursty (the antagonist duty-cycles), so the
  // instantaneous value at the arbitrary end time proves nothing; samples
  // must exist, and triggered() >= 1 above already proves the deviation
  // exceeded the threshold inside the policy's own windows.
  EXPECT_GE(c.policy->view().host(0).max_io_dev, 0.0);
}

TEST(Hysteresis, HostCooldownHoldsTheSecondAntagonist) {
  Scenario s;
  s.policy = eager_policy();
  s.policy.host_cooldown_s = 1.0e9;
  exp::Cluster c = build(s);
  exp::add_fio(c, "host-0",
               wl::FioRandomRead::Params{.duration_s = 10000.0, .start_s = 30.0});
  exp::add_dd_writer(c, "host-0",
                     wl::DdSequentialWriter::Params{.total_bytes = 1.0e12, .start_s = 30.0});
  exp::enable_perfcloud(c, control_cfg(s));
  submit_stream_of_jobs(c);
  exp::run_for(c, 600.0);

  // The first escalation lands; the second is then locked out by the source
  // host's cooldown stamp for the rest of the run.
  EXPECT_EQ(c.policy->migrated(), 1);
  EXPECT_GE(c.policy->suppressed_cooldown(), 1);
}

TEST(Hysteresis, InFlightBudgetHoldsTheSecondMigration) {
  Scenario s;
  s.policy = eager_policy();
  s.policy.max_in_flight = 1;
  // Timed migrations: 8 GB over 10 MB/s = 800 s of pre-copy, longer than
  // the whole run, so the first move holds the budget of one for every
  // remaining policy window and the second antagonist cannot go anywhere.
  s.migration = {.bandwidth_bps = 10.0e6, .downtime_s = 0.5};
  exp::Cluster c = build(s);
  // Two duty-cycled antagonists at DIFFERENT periods and phases: both stay
  // individually correlatable with the victim's deviation signal even while
  // the other is still resident, so both reach their cap floors and trigger
  // (a constant-rate writer would stay unidentified until the first fio
  // actually departed — which it never does here).
  exp::add_fio(c, "host-0",
               wl::FioRandomRead::Params{.duration_s = 10000.0, .start_s = 30.0});
  exp::add_fio(c, "host-0",
               wl::FioRandomRead::Params{.duration_s = 10000.0, .start_s = 45.0,
                                         .duty_period_s = 17.0});
  exp::enable_perfcloud(c, control_cfg(s));
  submit_stream_of_jobs(c);
  exp::run_for(c, 600.0);

  EXPECT_EQ(c.policy->migrated(), 1);
  EXPECT_EQ(c.cloud->migrations_completed(), 0);  // still copying at the end
  EXPECT_GE(c.policy->suppressed_budget(), 1);
}

TEST(Hysteresis, NoFeasibleWhenAloneOrVictimEverywhere) {
  // Single host: the trigger fires but there is nowhere to go.
  Scenario one;
  one.hosts = 1;
  one.policy = eager_policy();
  exp::Cluster c1 = build(one);
  exp::add_fio(c1, "host-0",
               wl::FioRandomRead::Params{.duration_s = 10000.0, .start_s = 30.0});
  exp::enable_perfcloud(c1, control_cfg(one));
  submit_stream_of_jobs(c1);
  exp::run_for(c1, 400.0);
  EXPECT_GE(c1.policy->triggered(), 1);
  EXPECT_GE(c1.policy->no_feasible(), 1);
  EXPECT_EQ(c1.policy->migrated(), 0);

  // Two hosts, the victim app spread over both: the complementary
  // constraint refuses to co-place the antagonist with its victim's other
  // half, so again nothing moves.
  Scenario spread;
  spread.hosts = 2;
  spread.workers = 6;
  spread.placement = exp::Placement::kSpread;
  spread.policy = eager_policy();
  exp::Cluster c2 = build(spread);
  const int fio = exp::add_fio(
      c2, "host-0", wl::FioRandomRead::Params{.duration_s = 10000.0, .start_s = 30.0});
  exp::enable_perfcloud(c2, control_cfg(spread));
  submit_stream_of_jobs(c2);
  exp::run_for(c2, 400.0);
  EXPECT_GE(c2.policy->triggered(), 1);
  EXPECT_GE(c2.policy->no_feasible(), 1);
  EXPECT_EQ(c2.policy->migrated(), 0);
  for (const cloud::VmRecord& r : c2.cloud->all_vms()) {
    if (r.id == fio) {
      EXPECT_EQ(r.host, "host-0");
    }
  }
}

TEST(Hysteresis, PingPongBlacklistConverges) {
  // Two protected apps, one per host: hadoop (the framework) packed on
  // host-0, a second I/O-bound app on host-1. Wherever the fio antagonist
  // sits, the local app suffers and the resident policy trigger pushes it
  // to the other host — a genuine oscillation. The bounce detector must
  // blacklist the (vm, pair) on the SECOND move and suppress the third, so
  // the system converges after one round trip.
  Scenario s;
  s.hosts = 2;
  s.workers = 4;
  s.policy = eager_policy();
  s.policy.blacklist_s = 1.0e9;
  exp::Cluster c = build(s);
  const int fio = exp::add_fio(
      c, "host-0", wl::FioRandomRead::Params{.duration_s = 10000.0, .start_s = 30.0});
  virt::VmConfig other;
  other.priority = virt::Priority::kHigh;
  other.app_id = "oltp-app";
  other.vcpus = 4;
  for (int i = 0; i < 2; ++i) {
    virt::Vm& vm = c.cloud->boot_vm("host-1", other);
    vm.attach(std::make_unique<wl::SysbenchOltp>(
        wl::SysbenchOltp::Params{.duration_s = 10000.0}));
  }
  exp::enable_perfcloud(c, control_cfg(s));
  submit_stream_of_jobs(c);
  exp::run_for(c, 900.0);

  // One round trip, then the blacklist holds: exactly two policy moves, at
  // least one suppression by the blacklist, and the antagonist ends where
  // the bounce returned it.
  EXPECT_EQ(c.policy->migrated(), 2);
  EXPECT_GE(c.policy->suppressed_blacklist(), 1);
  std::string fio_host;
  for (const cloud::VmRecord& r : c.cloud->all_vms()) {
    if (r.id == fio) fio_host = r.host;
  }
  EXPECT_EQ(fio_host, "host-0");
}

}  // namespace
}  // namespace perfcloud::policy
