#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <span>
#include <stdexcept>
#include <vector>

#include "core/identifier.hpp"
#include "sim/correlation.hpp"
#include "sim/rng.hpp"
#include "sim/rolling_correlation.hpp"
#include "sim/time_series.hpp"

namespace perfcloud::sim {
namespace {

TEST(RollingCorrelation, ZeroWindowThrows) {
  EXPECT_THROW(RollingCorrelation(0), std::invalid_argument);
}

TEST(RollingCorrelation, FewerThanTwoSamplesIsZero) {
  RollingCorrelation rc(8);
  EXPECT_DOUBLE_EQ(rc.correlation(), 0.0);
  rc.push(1.0, 2.0);
  EXPECT_DOUBLE_EQ(rc.correlation(), 0.0);
  EXPECT_DOUBLE_EQ(rc.mean_y(), 2.0);
}

TEST(RollingCorrelation, ZeroVarianceIsZeroLikeBatch) {
  RollingCorrelation rc(8);
  for (int i = 0; i < 5; ++i) rc.push(3.0, static_cast<double>(i));
  EXPECT_DOUBLE_EQ(rc.correlation(), 0.0);  // x side is constant
}

TEST(RollingCorrelation, PerfectCorrelationClampsToOne) {
  RollingCorrelation rc(10);
  for (int i = 0; i < 10; ++i) rc.push(i, 2.0 * i + 5.0);
  EXPECT_DOUBLE_EQ(rc.correlation(), 1.0);
  // Ten more pushes fully evict the first set; the window is now exactly the
  // anticorrelated run.
  for (int i = 0; i < 10; ++i) rc.push(i, -3.0 * i);
  EXPECT_DOUBLE_EQ(rc.correlation(), -1.0);
}

TEST(RollingCorrelation, MatchesBatchPearsonOverWindow) {
  const std::size_t window = 12;
  RollingCorrelation rc(window);
  Rng rng(77);
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 0; i < 200; ++i) {
    const double x = rng.uniform(-5.0, 5.0);
    const double y = 0.7 * x + rng.uniform(-1.0, 1.0);
    xs.push_back(x);
    ys.push_back(y);
    rc.push(x, y);
    const std::size_t n = std::min<std::size_t>(xs.size(), window);
    const std::span<const double> wx(xs.data() + xs.size() - n, n);
    const std::span<const double> wy(ys.data() + ys.size() - n, n);
    EXPECT_NEAR(rc.correlation(), pearson(wx, wy), 1e-9) << "at i=" << i;
  }
}

TEST(RollingCorrelation, WindowEvictionForgetsOldSamples) {
  RollingCorrelation rc(4);
  // An anticorrelated prefix followed by a perfectly correlated run: once the
  // prefix is evicted only the correlated samples remain.
  rc.push(0.0, 10.0);
  rc.push(1.0, 9.0);
  rc.push(2.0, 8.0);
  EXPECT_LT(rc.correlation(), -0.99);
  for (int i = 0; i < 4; ++i) rc.push(i, static_cast<double>(i));
  EXPECT_EQ(rc.size(), 4u);
  EXPECT_DOUBLE_EQ(rc.correlation(), 1.0);
  EXPECT_DOUBLE_EQ(rc.mean_y(), 1.5);
}

TEST(RollingCorrelation, ResetForgetsEverything) {
  RollingCorrelation rc(8);
  for (int i = 0; i < 8; ++i) rc.push(i, i);
  rc.reset();
  EXPECT_EQ(rc.size(), 0u);
  EXPECT_DOUBLE_EQ(rc.correlation(), 0.0);
  EXPECT_DOUBLE_EQ(rc.mean_y(), 0.0);
}

TEST(RollingCorrelation, HighMagnitudeNearConstantSignalStaysSane) {
  // A steady antagonist hammering ~1e8 B/s with tiny jitter: naive
  // n·Σyy − (Σy)² cancels catastrophically here. Anchored sums must keep the
  // incremental result glued to the two-pass batch value.
  const std::size_t window = 60;
  RollingCorrelation rc(window);
  Rng rng(31337);
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 0; i < 5000; ++i) {
    const double x = 50.0 + rng.uniform(-0.5, 0.5);
    const double y = 1.0e8 + rng.uniform(-10.0, 10.0);
    xs.push_back(x);
    ys.push_back(y);
    rc.push(x, y);
  }
  const std::span<const double> wx(xs.data() + xs.size() - window, window);
  const std::span<const double> wy(ys.data() + ys.size() - window, window);
  EXPECT_NEAR(rc.correlation(), pearson(wx, wy), 1e-9);
}

TEST(RollingCorrelation, LongRunDriftBoundedByResum) {
  // Many multiples of the resum interval with eviction active throughout.
  const std::size_t window = 7;
  RollingCorrelation rc(window);
  Rng rng(9);
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 0; i < 20000; ++i) {
    const double x = rng.uniform(0.0, 100.0);
    const double y = rng.uniform(0.0, 100.0);
    xs.push_back(x);
    ys.push_back(y);
    rc.push(x, y);
  }
  const std::span<const double> wx(xs.data() + xs.size() - window, window);
  const std::span<const double> wy(ys.data() + ys.size() - window, window);
  EXPECT_NEAR(rc.correlation(), pearson(wx, wy), 1e-9);
  double mean = 0.0;
  for (const double v : wy) mean += v;
  mean /= static_cast<double>(window);
  EXPECT_NEAR(rc.mean_y(), mean, 1e-9);
}

/// The satellite acceptance test: feed a rolling accumulator the same
/// missing-as-zero aligned stream the batch path sees and require agreement
/// to 1e-9 against `pearson_missing_as_zero` on randomized gappy series.
TEST(RollingCorrelation, AgreesWithBatchMissingAsZeroOnRandomGappySeries) {
  Rng rng(4242);
  for (int trial = 0; trial < 5; ++trial) {
    const std::size_t window = 5 + static_cast<std::size_t>(trial) * 7;  // 5..33
    TimeSeries victim("victim");
    TimeSeries suspect("suspect");
    RollingCorrelation rc(window);
    for (int i = 0; i < 300; ++i) {
      const SimTime t(i * 1.0);
      const double x = rng.uniform(0.0, 40.0);
      victim.add(t, x);
      double y = 0.0;
      if (rng.uniform() < 0.7) {  // gappy: suspect present ~70% of ticks
        y = 0.5 * x + rng.uniform(0.0, 20.0);
        suspect.add(t, y);
      }
      rc.push(x, suspect.value_at(t).value_or(0.0));
      if (victim.size() >= 2) {
        const double batch = pearson_missing_as_zero(victim, suspect, window);
        EXPECT_NEAR(rc.correlation(), batch, 1e-9)
            << "trial=" << trial << " i=" << i << " window=" << window;
        EXPECT_NEAR(rc.mean_y(), windowed_mean_missing_as_zero(victim, suspect, window), 1e-9);
      }
    }
  }
}

/// End-to-end equivalence of the identifier's two paths: incremental scoring
/// from per-pair RollingCorrelation state must reproduce the batch scores
/// (and antagonist verdicts) on growing gappy series — including when the
/// suspect series is a bounded ring covering the correlation window.
TEST(AntagonistIdentifierIncremental, MatchesBatchScores) {
  core::PerfCloudConfig cfg;
  cfg.correlation_window = 12;
  cfg.min_correlation_samples = 3;

  TimeSeries victim("victim");
  TimeSeries hot("hot-suspect", cfg.correlation_window);  // bounded ring
  TimeSeries cold("cold-suspect");
  const std::vector<core::SuspectSignal> suspects = {{7, &hot}, {8, &cold}};

  const core::AntagonistIdentifier batch(cfg);
  core::AntagonistIdentifier incremental(cfg);

  Rng rng(55);
  for (int i = 0; i < 120; ++i) {
    const SimTime t(i * 2.0);
    const double x = rng.uniform(0.0, 30.0);
    victim.add(t, x);
    if (rng.uniform() < 0.8) hot.add(t, 3.0 * x + rng.uniform(0.0, 5.0));
    if (rng.uniform() < 0.6) cold.add(t, rng.uniform(0.0, 30.0));

    const auto want = batch.score(victim, suspects);
    const auto got = incremental.score_incremental(0, victim, suspects);
    ASSERT_EQ(got.size(), want.size()) << "i=" << i;
    for (std::size_t s = 0; s < want.size(); ++s) {
      EXPECT_EQ(got[s].vm_id, want[s].vm_id);
      EXPECT_NEAR(got[s].correlation, want[s].correlation, 1e-9) << "i=" << i << " s=" << s;
      EXPECT_EQ(got[s].antagonist, want[s].antagonist) << "i=" << i << " s=" << s;
    }
  }
}

/// §III-B magnitude gate: when every suspect's windowed usage is zero there
/// is no "heaviest user" to compare against, and nothing idle can be the
/// antagonist — a zero-mean signal with a perfect (artifact) correlation must
/// NOT be flagged. Before the fix, max_usage == 0 made the
/// `usage >= fraction * max_usage` comparison vacuously true for everyone.
TEST(AntagonistIdentifier, AllZeroUsageSuspectsAreNeverFlagged) {
  core::PerfCloudConfig cfg;
  cfg.correlation_window = 8;
  cfg.min_correlation_samples = 3;

  TimeSeries victim("victim");
  TimeSeries balanced("balanced");  // windowed mean exactly zero, corr = 1
  TimeSeries idle("idle");          // all-zero samples
  for (int i = 0; i < 8; ++i) {
    const SimTime t(i * 1.0);
    victim.add(t, static_cast<double>(i));
    balanced.add(t, static_cast<double>(i) - 3.5);
    idle.add(t, 0.0);
  }
  const std::vector<core::SuspectSignal> suspects = {{1, &balanced}, {2, &idle}};

  const core::AntagonistIdentifier batch(cfg);
  const auto scores = batch.score(victim, suspects);
  ASSERT_EQ(scores.size(), 2u);
  EXPECT_NEAR(scores[0].correlation, 1.0, 1e-9);  // the artifact is real...
  EXPECT_FALSE(scores[0].antagonist);             // ...but an idle VM never flags
  EXPECT_FALSE(scores[1].antagonist);

  core::AntagonistIdentifier incremental(cfg);
  const auto inc = incremental.score_incremental(0, victim, suspects);
  ASSERT_EQ(inc.size(), 2u);
  EXPECT_FALSE(inc[0].antagonist);
  EXPECT_FALSE(inc[1].antagonist);

  // Sanity: with an actually-heavy suspect present the gate works as before —
  // the heavy correlated suspect flags, the zero-usage one still cannot.
  TimeSeries heavy("heavy");
  for (int i = 0; i < 8; ++i) heavy.add(SimTime(i * 1.0), 10.0 * i);
  const std::vector<core::SuspectSignal> with_heavy = {{1, &balanced}, {3, &heavy}};
  const auto scores2 = batch.score(victim, with_heavy);
  ASSERT_EQ(scores2.size(), 2u);
  EXPECT_FALSE(scores2[0].antagonist);
  EXPECT_TRUE(scores2[1].antagonist);
}

TEST(AntagonistIdentifierIncremental, VictimResetRebuildsState) {
  core::PerfCloudConfig cfg;
  cfg.correlation_window = 8;
  TimeSeries victim("victim");
  TimeSeries suspect("suspect");
  const std::vector<core::SuspectSignal> suspects = {{1, &suspect}};
  core::AntagonistIdentifier incremental(cfg);
  const core::AntagonistIdentifier batch(cfg);

  for (int i = 0; i < 20; ++i) {
    const SimTime t(i * 1.0);
    victim.add(t, static_cast<double>(i % 5));
    suspect.add(t, static_cast<double>((i * 3) % 7));
    (void)incremental.score_incremental(0, victim, suspects);
  }
  victim.clear();  // victim shrank: pair state must reset, not corrupt
  for (int i = 0; i < 10; ++i) {
    const SimTime t(100.0 + i);
    victim.add(t, static_cast<double>(i));
    suspect.add(t, 2.0 * i);
    const auto want = batch.score(victim, suspects);
    const auto got = incremental.score_incremental(0, victim, suspects);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t s = 0; s < want.size(); ++s) {
      EXPECT_NEAR(got[s].correlation, want[s].correlation, 1e-9) << "i=" << i;
    }
  }
}

}  // namespace
}  // namespace perfcloud::sim
