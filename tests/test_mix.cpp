#include <gtest/gtest.h>

#include "workloads/mix.hpp"

namespace perfcloud::wl {
namespace {

TEST(Mix, GeneratesRequestedJobCount) {
  sim::Rng rng(1);
  const auto mix = make_mapreduce_mix(MixParams{.num_jobs = 100}, rng);
  EXPECT_EQ(mix.size(), 100u);
}

TEST(Mix, EightyTwentySizeSplit) {
  sim::Rng rng(2);
  MixParams p;
  p.num_jobs = 1000;
  const auto mix = make_mapreduce_mix(p, rng);
  int small = 0;
  for (const MixEntry& e : mix) {
    const int tasks = e.spec.stages[0].num_tasks;
    EXPECT_GE(tasks, p.small_min);
    EXPECT_LE(tasks, p.large_max);
    if (tasks < p.small_cutoff) ++small;
  }
  EXPECT_NEAR(static_cast<double>(small) / 1000.0, 0.8, 0.04);
}

TEST(Mix, SubmitTimesAreNondecreasing) {
  sim::Rng rng(3);
  const auto mix = make_spark_mix(MixParams{.num_jobs = 50}, rng);
  for (std::size_t i = 1; i < mix.size(); ++i) {
    EXPECT_GE(mix[i].submit_time_s, mix[i - 1].submit_time_s);
  }
  EXPECT_DOUBLE_EQ(mix[0].submit_time_s, 0.0);
}

TEST(Mix, InterarrivalMatchesMean) {
  sim::Rng rng(4);
  MixParams p;
  p.num_jobs = 2000;
  p.mean_interarrival_s = 10.0;
  const auto mix = make_mapreduce_mix(p, rng);
  const double span = mix.back().submit_time_s;
  EXPECT_NEAR(span / static_cast<double>(p.num_jobs - 1), 10.0, 1.0);
}

TEST(Mix, MapReduceMixUsesPumaBenchmarks) {
  sim::Rng rng(5);
  const auto mix = make_mapreduce_mix(MixParams{.num_jobs = 9}, rng);
  int terasort = 0;
  for (const MixEntry& e : mix) {
    EXPECT_EQ(e.spec.type, JobType::kMapReduce);
    if (e.spec.name == "terasort") ++terasort;
  }
  EXPECT_EQ(terasort, 3);  // cycled evenly
}

TEST(Mix, SparkMixUsesSparkBenchmarks) {
  sim::Rng rng(6);
  const auto mix = make_spark_mix(MixParams{.num_jobs = 9}, rng);
  for (const MixEntry& e : mix) {
    EXPECT_EQ(e.spec.type, JobType::kSpark);
  }
}

TEST(Mix, DeterministicPerSeed) {
  sim::Rng r1(7);
  sim::Rng r2(7);
  const auto a = make_mapreduce_mix(MixParams{.num_jobs = 20}, r1);
  const auto b = make_mapreduce_mix(MixParams{.num_jobs = 20}, r2);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].spec.name, b[i].spec.name);
    EXPECT_EQ(a[i].spec.stages[0].num_tasks, b[i].spec.stages[0].num_tasks);
    EXPECT_DOUBLE_EQ(a[i].submit_time_s, b[i].submit_time_s);
  }
}

}  // namespace
}  // namespace perfcloud::wl
