// Strict environment parsing for the shard scheduler: garbage values of
// PERFCLOUD_SHARDS / PERFCLOUD_SCHED must fail loudly at Engine
// construction, never fall back silently (a typo degrading a CI run to
// sequential execution is exactly the failure mode that hides for months).
#include <gtest/gtest.h>

#include <cstdlib>
#include <optional>
#include <stdexcept>
#include <string>

#include "sim/engine.hpp"

namespace perfcloud::sim {
namespace {

/// Sets (or unsets) one environment variable for the test's scope and
/// restores the previous value on destruction — the TSan suite runs these
/// binaries with PERFCLOUD_SHARDS already exported.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    if (const char* old = std::getenv(name)) saved_ = old;
    if (value != nullptr) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
  }
  ~ScopedEnv() {
    if (saved_.has_value()) {
      ::setenv(name_.c_str(), saved_->c_str(), 1);
    } else {
      ::unsetenv(name_.c_str());
    }
  }

 private:
  std::string name_;
  std::optional<std::string> saved_;
};

TEST(SchedulerEnv, UnsetShardsDefaultsToOne) {
  ScopedEnv env("PERFCLOUD_SHARDS", nullptr);
  EXPECT_EQ(Engine().shards(), 1u);
}

TEST(SchedulerEnv, ValidShardsParses) {
  ScopedEnv env("PERFCLOUD_SHARDS", "8");
  EXPECT_EQ(Engine().shards(), 8u);
}

TEST(SchedulerEnv, GarbageShardsThrows) {
  for (const char* bad : {"abc", "0", "-2", "4x", "", " 4", "1e3", "4096000"}) {
    ScopedEnv env("PERFCLOUD_SHARDS", bad);
    EXPECT_THROW(Engine{}, std::invalid_argument) << "PERFCLOUD_SHARDS='" << bad << "'";
  }
}

TEST(SchedulerEnv, GarbageShardsErrorNamesTheVariable) {
  ScopedEnv env("PERFCLOUD_SHARDS", "abc");
  try {
    Engine e;
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& err) {
    EXPECT_NE(std::string(err.what()).find("PERFCLOUD_SHARDS"), std::string::npos);
    EXPECT_NE(std::string(err.what()).find("abc"), std::string::npos);
  }
}

TEST(SchedulerEnv, UnsetScheduleDefaultsToWorkStealing) {
  ScopedEnv env("PERFCLOUD_SCHED", nullptr);
  EXPECT_EQ(Engine().schedule(), ShardSchedule::kWorkStealing);
}

TEST(SchedulerEnv, ScheduleSpellingsParse) {
  for (const char* ws : {"ws", "work-stealing", "work_stealing"}) {
    ScopedEnv env("PERFCLOUD_SCHED", ws);
    EXPECT_EQ(Engine().schedule(), ShardSchedule::kWorkStealing) << ws;
  }
  ScopedEnv env("PERFCLOUD_SCHED", "static");
  EXPECT_EQ(Engine().schedule(), ShardSchedule::kStatic);
}

TEST(SchedulerEnv, GarbageScheduleThrows) {
  for (const char* bad : {"Static", "dynamic", "", "ws "}) {
    ScopedEnv env("PERFCLOUD_SCHED", bad);
    EXPECT_THROW(Engine{}, std::invalid_argument) << "PERFCLOUD_SCHED='" << bad << "'";
  }
}

TEST(SchedulerEnv, SetShardsRejectsOutOfRange) {
  ScopedEnv env("PERFCLOUD_SHARDS", nullptr);
  Engine e;
  EXPECT_THROW(e.set_shards(0), std::invalid_argument);
  EXPECT_THROW(e.set_shards(5000), std::invalid_argument);
  e.set_shards(4096);  // the documented ceiling itself is accepted
  EXPECT_EQ(e.shards(), 4096u);
}

TEST(SchedulerEnv, SetScheduleOverridesEnvDefault) {
  ScopedEnv env("PERFCLOUD_SCHED", "static");
  Engine e;
  EXPECT_EQ(e.schedule(), ShardSchedule::kStatic);
  e.set_schedule(ShardSchedule::kWorkStealing);
  EXPECT_EQ(e.schedule(), ShardSchedule::kWorkStealing);
}

}  // namespace
}  // namespace perfcloud::sim
