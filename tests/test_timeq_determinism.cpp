// Golden-trace gate for the time-core backends: the hierarchical timer
// wheel (PERFCLOUD_TIMEQ=wheel, the default) and the binary-heap reference
// (PERFCLOUD_TIMEQ=heap) must produce EXACTLY the same results — job
// completion times, deviation-signal series, cap series, final simulated
// time, and the EventSink's files byte for byte — across shard counts,
// claim disciplines, emission modes, and a six-fault chaos plan. The wheel
// may only change wall-clock time, never a single output bit.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "exp/cluster.hpp"
#include "exp/summary.hpp"
#include "faults/fault_injector.hpp"
#include "faults/fault_plan.hpp"
#include "workloads/benchmarks.hpp"

namespace perfcloud {
namespace {

struct RunTrace {
  double final_time_s = 0.0;
  std::vector<double> jcts;
  // (time, value) samples from every inspected series, concatenated in a
  // fixed order. Exact double equality is intentional: the contract is
  // byte-identical, not merely close.
  std::vector<std::pair<double, double>> samples;
  int faults_injected = 0;
  long cap_commands_dropped = 0;
  std::string trace_csv;
  std::string events_jsonl;

  bool operator==(const RunTrace&) const = default;
};

std::string slurp(const std::string& path) {
  std::ifstream f(path);
  std::ostringstream os;
  os << f.rdbuf();
  return os.str();
}

void append_series(RunTrace& trace, const sim::TimeSeries& s) {
  for (std::size_t i = 0; i < s.size(); ++i) {
    trace.samples.emplace_back(s.time(i).seconds(), s.value(i));
  }
}

faults::FaultPlan chaos_plan() {
  faults::FaultPlan plan(0xc4a05);
  plan.disk_degrade("host-2", 80.0, 150.0, 0.5)
      .monitor_blackout("host-0", 100.0, 40.0)
      .cap_command_loss("host-0", 100.0, 300.0, 0.5)
      .host_crash("host-3", 123.0, 250.0)
      .task_failure(5.0e-4, 200.0, 300.0);
  return plan;
}

/// One full control run under an explicit time-queue backend. A sink is
/// always attached (its files are the strongest equality witness); `plan`
/// non-null arms the chaos plan on top.
RunTrace run_scenario(sim::TimeQueueKind timeq, unsigned shards, sim::ShardSchedule schedule,
                      bool sink_async, const std::string& sink_tag,
                      const faults::FaultPlan* plan = nullptr) {
  exp::ClusterParams p;
  p.hosts = 4;
  p.workers = 12;
  p.seed = 3131;
  p.shards = shards;
  p.schedule = schedule;
  p.timeq = timeq;
  exp::Cluster c = exp::make_cluster(p);

  const int fio = exp::add_fio(
      c, "host-0", wl::FioRandomRead::Params{.duration_s = 300.0, .start_s = 60.0});
  const int stream = exp::add_stream(
      c, "host-1",
      wl::StreamBenchmark::Params{.threads = 8, .duration_s = 300.0, .start_s = 90.0});
  exp::add_oltp(c, "host-2", wl::SysbenchOltp::Params{.duration_s = 200.0, .start_s = 120.0});

  exp::enable_perfcloud(c, core::PerfCloudConfig{});

  const std::string csv_path = "/tmp/perfcloud_timeq_sink_" + sink_tag + ".csv";
  const std::string jsonl_path = "/tmp/perfcloud_timeq_sink_" + sink_tag + ".jsonl";
  auto sink = std::make_unique<exp::EventSink>(exp::EventSink::Options{
      .trace_csv_path = csv_path, .events_jsonl_path = jsonl_path, .async = sink_async});
  exp::attach_sink(c, *sink);
  const exp::EventSink::SourceId summary_src = sink->add_event_source("run");

  std::unique_ptr<faults::FaultInjector> injector;
  if (plan != nullptr) {
    faults::FaultPlan resolved = *plan;
    for (const cloud::VmRecord& r : c.cloud->vms_on_host("host-2")) {
      if (std::find(c.worker_vm_ids.begin(), c.worker_vm_ids.end(), r.id) !=
          c.worker_vm_ids.end()) {
        resolved.vm_stall(r.id, 120.0, 40.0);
        break;
      }
    }
    injector = std::make_unique<faults::FaultInjector>(*c.cloud, resolved);
    exp::attach_faults(c, *injector, sink.get());
  }

  std::vector<wl::JobId> ids;
  const std::vector<std::pair<std::string, double>> submissions = {
      {"terasort", 0.0}, {"wordcount", 120.0}, {"kmeans", 240.0}};
  for (const auto& [name, at] : submissions) {
    const wl::JobSpec spec = wl::make_benchmark(name, 8);
    c.engine->at(sim::SimTime(at),
                 [&c, &ids, spec](sim::SimTime) { ids.push_back(c.framework->submit(spec)); });
  }
  c.engine->run_while(
      [&] { return ids.size() < submissions.size() || !c.framework->all_done(); },
      sim::SimTime(6000.0));

  RunTrace trace;
  trace.final_time_s = c.engine->now().seconds();
  for (const wl::JobId id : ids) {
    const wl::Job* job = c.framework->find_job(id);
    trace.jcts.push_back(job != nullptr && job->completed() ? job->jct() : -1.0);
  }
  for (std::size_t h = 0; h < c.hosts.size(); ++h) {
    core::NodeManager& nm = c.node_manager(h);
    append_series(trace, nm.io_signal(p.app_id));
    append_series(trace, nm.cpi_signal(p.app_id));
    append_series(trace, nm.monitor().io_throughput_series(fio));
    append_series(trace, nm.monitor().llc_miss_series(stream));
    append_series(trace, nm.io_cap_series(fio));
    append_series(trace, nm.cpu_cap_series(stream));
    trace.cap_commands_dropped += nm.cap_commands_dropped();
  }
  if (injector != nullptr) trace.faults_injected = injector->injected();
  exp::record(*sink, summary_src, exp::summarize(*c.framework));
  sink->close();
  trace.trace_csv = slurp(csv_path);
  trace.events_jsonl = slurp(jsonl_path);
  return trace;
}

constexpr auto kWheel = sim::TimeQueueKind::kWheel;
constexpr auto kHeap = sim::TimeQueueKind::kHeap;
constexpr auto kWs = sim::ShardSchedule::kWorkStealing;
constexpr auto kStatic = sim::ShardSchedule::kStatic;

TEST(TimeQueueDeterminism, WheelMatchesHeapAcrossShardsSchedulersAndSinkModes) {
  const RunTrace heap = run_scenario(kHeap, 1, kWs, /*sink_async=*/false, "heap-s1-ws-sync");

  // The scenario exercises what it gates on: jobs completed, monitors
  // produced samples, the sink wrote both files.
  for (const double jct : heap.jcts) EXPECT_GT(jct, 0.0);
  EXPECT_FALSE(heap.samples.empty());
  EXPECT_FALSE(heap.trace_csv.empty());
  EXPECT_NE(heap.events_jsonl.find("\"summary\""), std::string::npos);

  // The wheel against the heap reference, across every execution mode the
  // engine offers. Full-trace equality includes the files byte for byte.
  EXPECT_EQ(run_scenario(kWheel, 1, kWs, false, "wheel-s1-ws-sync"), heap);
  EXPECT_EQ(run_scenario(kWheel, 4, kWs, true, "wheel-s4-ws-async"), heap);
  EXPECT_EQ(run_scenario(kWheel, 4, kStatic, true, "wheel-s4-static-async"), heap);
  // And the heap under the sharded/async mode, closing the square.
  EXPECT_EQ(run_scenario(kHeap, 4, kWs, true, "heap-s4-ws-async"), heap);
}

TEST(TimeQueueDeterminism, WheelMatchesHeapUnderChaosPlan) {
  const faults::FaultPlan plan = chaos_plan();
  const RunTrace heap = run_scenario(kHeap, 1, kWs, false, "chaos-heap-s1", &plan);

  // Faults really fired, jobs still completed under them, and the fault
  // records are in the stream the files witness. (cap_commands_dropped is
  // compared as part of the trace either way.)
  EXPECT_EQ(heap.faults_injected, 6);
  for (const double jct : heap.jcts) EXPECT_GT(jct, 0.0);
  EXPECT_NE(heap.events_jsonl.find("\"inject host_crash host=host-3\""), std::string::npos);

  EXPECT_EQ(run_scenario(kWheel, 1, kWs, false, "chaos-wheel-s1", &plan), heap);
  EXPECT_EQ(run_scenario(kWheel, 4, kWs, true, "chaos-wheel-s4-async", &plan), heap);
}

}  // namespace
}  // namespace perfcloud
