// VM live migration and the §IV-D escalation path (high-priority
// application collisions resolved by the cloud manager).
#include <gtest/gtest.h>

#include "cloud/cloud_manager.hpp"
#include "exp/cluster.hpp"
#include "workloads/antagonists.hpp"
#include "workloads/benchmarks.hpp"

namespace perfcloud::cloud {
namespace {

hw::ServerConfig host_cfg(const std::string& name) {
  hw::ServerConfig cfg;
  cfg.name = name;
  return cfg;
}

struct TwoHostRig {
  sim::Engine engine{1};
  CloudManager cloud{engine};
  TwoHostRig() {
    cloud.add_host(host_cfg("h0"));
    cloud.add_host(host_cfg("h1"));
  }
};

TEST(Migration, MovesVmBetweenHosts) {
  TwoHostRig rig;
  const virt::Vm& vm = rig.cloud.boot_vm("h0", virt::VmConfig{.name = "a"});
  rig.cloud.migrate_vm(vm.id(), "h1");
  EXPECT_EQ(rig.cloud.host("h0").find(vm.id()), nullptr);
  EXPECT_NE(rig.cloud.host("h1").find(vm.id()), nullptr);
  const auto records = rig.cloud.vms_on_host("h1");
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].id, vm.id());
}

TEST(Migration, ToSameHostIsNoop) {
  TwoHostRig rig;
  const virt::Vm& vm = rig.cloud.boot_vm("h0", virt::VmConfig{});
  rig.cloud.migrate_vm(vm.id(), "h0");
  EXPECT_NE(rig.cloud.host("h0").find(vm.id()), nullptr);
}

TEST(Migration, UnknownVmOrHostThrows) {
  TwoHostRig rig;
  const virt::Vm& vm = rig.cloud.boot_vm("h0", virt::VmConfig{});
  EXPECT_THROW(rig.cloud.migrate_vm(999, "h1"), std::invalid_argument);
  EXPECT_THROW(rig.cloud.migrate_vm(vm.id(), "nope"), std::invalid_argument);
}

TEST(Migration, CgroupStateTravelsWithVm) {
  TwoHostRig rig;
  virt::Vm& vm = rig.cloud.boot_vm("h0", virt::VmConfig{.vcpus = 2});
  vm.attach(std::make_unique<wl::SysbenchCpu>(wl::SysbenchCpu::Params{.threads = 2}));
  rig.cloud.start_ticking(0.1);
  rig.engine.run_until(sim::SimTime(1.0));
  const double cpu_before = rig.cloud.host("h0").dom_stats(vm.id()).cpu_time_s;
  ASSERT_GT(cpu_before, 0.0);

  rig.cloud.migrate_vm(vm.id(), "h1");
  rig.engine.run_until(sim::SimTime(2.0));
  const double cpu_after = rig.cloud.host("h1").dom_stats(vm.id()).cpu_time_s;
  // Counters are cumulative across the migration, and the guest kept running.
  EXPECT_GT(cpu_after, cpu_before + 0.5);
}

TEST(Migration, GuestWorkloadKeepsRunningOnNewHost) {
  TwoHostRig rig;
  virt::Vm& vm = rig.cloud.boot_vm("h0", virt::VmConfig{.vcpus = 4});
  auto guest = std::make_unique<wl::SysbenchCpu>(
      wl::SysbenchCpu::Params{.threads = 4, .total_instructions = 1e12});
  const auto* raw = guest.get();
  vm.attach(std::move(guest));
  rig.cloud.start_ticking(0.1);
  rig.engine.run_until(sim::SimTime(1.0));
  const double before = raw->progress();
  rig.cloud.migrate_vm(vm.id(), "h1");
  rig.engine.run_until(sim::SimTime(2.0));
  EXPECT_GT(raw->progress(), before);
}

TEST(CollisionResolution, SeparatesTwoHighPriorityApps) {
  TwoHostRig rig;
  virt::VmConfig high;
  high.priority = virt::Priority::kHigh;
  high.app_id = "app-a";
  rig.cloud.boot_vm("h0", high);
  rig.cloud.boot_vm("h0", high);
  rig.cloud.boot_vm("h0", high);
  high.app_id = "app-b";
  rig.cloud.boot_vm("h0", high);
  rig.cloud.boot_vm("h0", high);

  const int moved = rig.cloud.resolve_high_priority_collision("h0");
  EXPECT_EQ(moved, 2);  // the smaller group (app-b) moved
  EXPECT_EQ(rig.cloud.hosts_of_app("app-a"), (std::vector<std::string>{"h0"}));
  EXPECT_EQ(rig.cloud.hosts_of_app("app-b"), (std::vector<std::string>{"h1"}));
}

TEST(CollisionResolution, NoCollisionIsNoop) {
  TwoHostRig rig;
  virt::VmConfig high;
  high.priority = virt::Priority::kHigh;
  high.app_id = "only-app";
  rig.cloud.boot_vm("h0", high);
  EXPECT_EQ(rig.cloud.resolve_high_priority_collision("h0"), 0);
}

TEST(CollisionResolution, SingleHostCloudHasNowhereToGo) {
  sim::Engine engine{1};
  CloudManager cloud{engine};
  cloud.add_host(host_cfg("only"));
  virt::VmConfig high;
  high.priority = virt::Priority::kHigh;
  high.app_id = "a";
  cloud.boot_vm("only", high);
  high.app_id = "b";
  cloud.boot_vm("only", high);
  EXPECT_EQ(cloud.resolve_high_priority_collision("only"), 0);
}

TEST(CollisionResolution, NodeManagerEscalatesWhenEnabled) {
  // A second high-priority app lands on the hadoop-heaviest host of a
  // 3-host cloud; a node manager with escalation enabled moves it to the
  // least-conflicted host within one control interval.
  exp::ClusterParams p;
  p.hosts = 3;
  p.workers = 4;  // hadoop: 2 VMs on host-0, 1 each on hosts 1-2
  exp::Cluster c = exp::make_cluster(p);
  // Boot a second high-priority app squarely onto host-0.
  virt::VmConfig other;
  other.priority = virt::Priority::kHigh;
  other.app_id = "other-app";
  c.cloud->boot_vm("host-0", other);

  core::PerfCloudConfig cfg;
  cfg.escalate_app_collisions = true;
  exp::enable_perfcloud(c, cfg);
  exp::run_for(c, 11.0);  // two control intervals

  // host-0 now hosts only one high-priority app, and the moved app does
  // not bounce back (strict-improvement rule).
  int apps_on_h0 = 0;
  std::vector<std::string> seen;
  for (const VmRecord& r : c.cloud->vms_on_host("host-0")) {
    if (r.priority == virt::Priority::kHigh &&
        std::find(seen.begin(), seen.end(), r.app_id) == seen.end()) {
      seen.push_back(r.app_id);
      ++apps_on_h0;
    }
  }
  EXPECT_EQ(apps_on_h0, 1);
}

TEST(Heterogeneity, SpeedFactorsScaleHostClocks) {
  exp::ClusterParams p;
  p.hosts = 3;
  p.workers = 3;
  p.host_speed_factors = {1.0, 0.5};
  exp::Cluster c = exp::make_cluster(p);
  const double base = p.server.cpu.clock_hz;
  EXPECT_DOUBLE_EQ(c.cloud->host("host-0").server().config().cpu.clock_hz, base);
  EXPECT_DOUBLE_EQ(c.cloud->host("host-1").server().config().cpu.clock_hz, 0.5 * base);
  EXPECT_DOUBLE_EQ(c.cloud->host("host-2").server().config().cpu.clock_hz, base);  // cycled
}

TEST(Heterogeneity, SlowHostCreatesStragglers) {
  // Same CPU-bound job on a homogeneous vs heterogeneous cluster: the
  // barrier waits for tasks on the slow host, so the job takes longer.
  auto run = [](std::vector<double> factors) {
    exp::ClusterParams p;
    p.hosts = 3;
    p.workers = 6;
    p.seed = 4;
    p.host_speed_factors = std::move(factors);
    exp::Cluster c = exp::make_cluster(p);
    return exp::run_job(c, wl::make_wordcount(12, 6));
  };
  const double homogeneous = run({});
  const double heterogeneous = run({1.0, 1.0, 0.5});
  EXPECT_GT(heterogeneous, 1.15 * homogeneous);
}

}  // namespace
}  // namespace perfcloud::cloud
