// VM live migration and the §IV-D escalation path (high-priority
// application collisions resolved by the cloud manager).
#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "cloud/cloud_manager.hpp"
#include "exp/cluster.hpp"
#include "workloads/antagonists.hpp"
#include "workloads/benchmarks.hpp"

namespace perfcloud::cloud {
namespace {

hw::ServerConfig host_cfg(const std::string& name) {
  hw::ServerConfig cfg;
  cfg.name = name;
  return cfg;
}

struct TwoHostRig {
  sim::Engine engine{1};
  CloudManager cloud{engine};
  TwoHostRig() {
    cloud.add_host(host_cfg("h0"));
    cloud.add_host(host_cfg("h1"));
  }
};

TEST(Migration, MovesVmBetweenHosts) {
  TwoHostRig rig;
  const virt::Vm& vm = rig.cloud.boot_vm("h0", virt::VmConfig{.name = "a"});
  rig.cloud.migrate_vm(vm.id(), "h1");
  EXPECT_EQ(rig.cloud.host("h0").find(vm.id()), nullptr);
  EXPECT_NE(rig.cloud.host("h1").find(vm.id()), nullptr);
  const auto records = rig.cloud.vms_on_host("h1");
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].id, vm.id());
}

TEST(Migration, ToSameHostIsHardError) {
  TwoHostRig rig;
  const virt::Vm& vm = rig.cloud.boot_vm("h0", virt::VmConfig{});
  // A self-migration is always a caller bug; it must fail loudly instead of
  // silently threading a no-op through the listener handoff.
  EXPECT_THROW(rig.cloud.migrate_vm(vm.id(), "h0"), std::invalid_argument);
  EXPECT_NE(rig.cloud.host("h0").find(vm.id()), nullptr);
  // The VM stays fully migratable afterwards.
  rig.cloud.migrate_vm(vm.id(), "h1");
  EXPECT_NE(rig.cloud.host("h1").find(vm.id()), nullptr);
  EXPECT_THROW(rig.cloud.migrate_vm(vm.id(), "h1"), std::invalid_argument);
}

TEST(Migration, UnknownVmOrHostThrows) {
  TwoHostRig rig;
  const virt::Vm& vm = rig.cloud.boot_vm("h0", virt::VmConfig{});
  EXPECT_THROW(rig.cloud.migrate_vm(999, "h1"), std::invalid_argument);
  EXPECT_THROW(rig.cloud.migrate_vm(vm.id(), "nope"), std::invalid_argument);
}

TEST(Migration, CgroupStateTravelsWithVm) {
  TwoHostRig rig;
  virt::Vm& vm = rig.cloud.boot_vm("h0", virt::VmConfig{.vcpus = 2});
  vm.attach(std::make_unique<wl::SysbenchCpu>(wl::SysbenchCpu::Params{.threads = 2}));
  rig.cloud.start_ticking(0.1);
  rig.engine.run_until(sim::SimTime(1.0));
  const double cpu_before = rig.cloud.host("h0").dom_stats(vm.id()).cpu_time_s;
  ASSERT_GT(cpu_before, 0.0);

  rig.cloud.migrate_vm(vm.id(), "h1");
  rig.engine.run_until(sim::SimTime(2.0));
  const double cpu_after = rig.cloud.host("h1").dom_stats(vm.id()).cpu_time_s;
  // Counters are cumulative across the migration, and the guest kept running.
  EXPECT_GT(cpu_after, cpu_before + 0.5);
}

TEST(Migration, GuestWorkloadKeepsRunningOnNewHost) {
  TwoHostRig rig;
  virt::Vm& vm = rig.cloud.boot_vm("h0", virt::VmConfig{.vcpus = 4});
  auto guest = std::make_unique<wl::SysbenchCpu>(
      wl::SysbenchCpu::Params{.threads = 4, .total_instructions = 1e12});
  const auto* raw = guest.get();
  vm.attach(std::move(guest));
  rig.cloud.start_ticking(0.1);
  rig.engine.run_until(sim::SimTime(1.0));
  const double before = raw->progress();
  rig.cloud.migrate_vm(vm.id(), "h1");
  rig.engine.run_until(sim::SimTime(2.0));
  EXPECT_GT(raw->progress(), before);
}

TEST(CollisionResolution, SeparatesTwoHighPriorityApps) {
  TwoHostRig rig;
  virt::VmConfig high;
  high.priority = virt::Priority::kHigh;
  high.app_id = "app-a";
  rig.cloud.boot_vm("h0", high);
  rig.cloud.boot_vm("h0", high);
  rig.cloud.boot_vm("h0", high);
  high.app_id = "app-b";
  rig.cloud.boot_vm("h0", high);
  rig.cloud.boot_vm("h0", high);

  const int moved = rig.cloud.resolve_high_priority_collision("h0");
  EXPECT_EQ(moved, 2);  // the smaller group (app-b) moved
  EXPECT_EQ(rig.cloud.hosts_of_app("app-a"), (std::vector<std::string>{"h0"}));
  EXPECT_EQ(rig.cloud.hosts_of_app("app-b"), (std::vector<std::string>{"h1"}));
}

TEST(CollisionResolution, NoCollisionIsNoop) {
  TwoHostRig rig;
  virt::VmConfig high;
  high.priority = virt::Priority::kHigh;
  high.app_id = "only-app";
  rig.cloud.boot_vm("h0", high);
  EXPECT_EQ(rig.cloud.resolve_high_priority_collision("h0"), 0);
}

TEST(CollisionResolution, SingleHostCloudHasNowhereToGo) {
  sim::Engine engine{1};
  CloudManager cloud{engine};
  cloud.add_host(host_cfg("only"));
  virt::VmConfig high;
  high.priority = virt::Priority::kHigh;
  high.app_id = "a";
  cloud.boot_vm("only", high);
  high.app_id = "b";
  cloud.boot_vm("only", high);
  EXPECT_EQ(cloud.resolve_high_priority_collision("only"), 0);
}

TEST(CollisionResolution, NodeManagerEscalatesWhenEnabled) {
  // A second high-priority app lands on the hadoop-heaviest host of a
  // 3-host cloud; a node manager with escalation enabled moves it to the
  // least-conflicted host within one control interval.
  exp::ClusterParams p;
  p.hosts = 3;
  p.workers = 4;  // hadoop: 2 VMs on host-0, 1 each on hosts 1-2
  exp::Cluster c = exp::make_cluster(p);
  // Boot a second high-priority app squarely onto host-0.
  virt::VmConfig other;
  other.priority = virt::Priority::kHigh;
  other.app_id = "other-app";
  c.cloud->boot_vm("host-0", other);

  core::PerfCloudConfig cfg;
  cfg.escalate_app_collisions = true;
  exp::enable_perfcloud(c, cfg);
  exp::run_for(c, 11.0);  // two control intervals

  // host-0 now hosts only one high-priority app, and the moved app does
  // not bounce back (strict-improvement rule).
  int apps_on_h0 = 0;
  std::vector<std::string> seen;
  for (const VmRecord& r : c.cloud->vms_on_host("host-0")) {
    if (r.priority == virt::Priority::kHigh &&
        std::find(seen.begin(), seen.end(), r.app_id) == seen.end()) {
      seen.push_back(r.app_id);
      ++apps_on_h0;
    }
  }
  EXPECT_EQ(apps_on_h0, 1);
}

// --- Live-migration cost model (DESIGN.md §5j) ---

TEST(LiveMigration, PrecopiesThenPausesThenSwitchesHosts) {
  TwoHostRig rig;
  // 8 GiB VM over 4 GiB/s: exactly 2 s of pre-copy, then a 0.5 s
  // stop-and-copy pause, then the handoff.
  rig.cloud.set_migration_model(
      {.bandwidth_bps = 4.0 * 1024 * 1024 * 1024, .downtime_s = 0.5});
  virt::VmConfig cfg;
  cfg.name = "a";
  cfg.memory = 8.0 * 1024 * 1024 * 1024;
  const virt::Vm& vm = rig.cloud.boot_vm("h0", cfg);
  const int id = vm.id();
  std::vector<MigrationPhase> phases;
  rig.cloud.add_migration_listener(
      [&phases](const MigrationEvent& ev) { phases.push_back(ev.phase); });
  rig.cloud.start_ticking(0.1);
  rig.engine.run_until(sim::SimTime(0.5));

  rig.cloud.migrate_vm(id, "h1");  // copy [0.5, 2.5), pause [2.5, 3.0)
  EXPECT_TRUE(rig.cloud.migration_in_flight(id));
  EXPECT_EQ(rig.cloud.migrations_started(), 1);
  EXPECT_EQ(rig.cloud.migrations_completed(), 0);
  EXPECT_EQ(rig.cloud.host("h1").migration_inflow_count(), 1u);

  rig.engine.run_until(sim::SimTime(2.0));  // mid-copy: running on the source
  ASSERT_NE(rig.cloud.host("h0").find(id), nullptr);
  EXPECT_FALSE(rig.cloud.host("h0").find(id)->paused());
  EXPECT_EQ(rig.cloud.host("h1").find(id), nullptr);

  rig.engine.run_until(sim::SimTime(2.8));  // stop-and-copy window
  ASSERT_NE(rig.cloud.host("h0").find(id), nullptr);
  EXPECT_TRUE(rig.cloud.host("h0").find(id)->paused());

  rig.engine.run_until(sim::SimTime(3.5));  // handoff done
  EXPECT_EQ(rig.cloud.host("h0").find(id), nullptr);
  ASSERT_NE(rig.cloud.host("h1").find(id), nullptr);
  EXPECT_FALSE(rig.cloud.host("h1").find(id)->paused());
  EXPECT_EQ(rig.cloud.migrations_in_flight(), 0u);
  EXPECT_EQ(rig.cloud.migrations_completed(), 1);
  EXPECT_EQ(rig.cloud.host("h1").migration_inflow_count(), 0u);
  EXPECT_EQ(phases, (std::vector<MigrationPhase>{MigrationPhase::kStarted,
                                                 MigrationPhase::kDeparting,
                                                 MigrationPhase::kArrived}));
}

TEST(LiveMigration, PageStreamLoadsTheDestinationDisk) {
  TwoHostRig rig;
  rig.cloud.set_migration_model(
      {.bandwidth_bps = 1.0 * 1024 * 1024 * 1024, .downtime_s = 0.5});
  const virt::Vm& vm = rig.cloud.boot_vm("h0", virt::VmConfig{});
  rig.cloud.start_ticking(0.1);
  rig.engine.run_until(sim::SimTime(0.5));
  EXPECT_DOUBLE_EQ(rig.cloud.host("h1").server().last_disk_utilization(), 0.0);

  rig.cloud.migrate_vm(vm.id(), "h1");
  rig.engine.run_until(sim::SimTime(1.5));  // mid-copy (8 GiB / 1 GiB/s = 8 s)
  // The destination runs no VMs, yet its disk is busy serving the page
  // stream — migration traffic is visible to that host's arbitration, so
  // resident tenants there would feel it.
  EXPECT_EQ(rig.cloud.host("h1").find(vm.id()), nullptr);
  EXPECT_GT(rig.cloud.host("h1").server().last_disk_utilization(), 0.0);
}

TEST(LiveMigration, ModelValidationAndInFlightGuards) {
  TwoHostRig rig;
  EXPECT_THROW(rig.cloud.set_migration_model({.bandwidth_bps = 1e9, .downtime_s = -0.1}),
               std::invalid_argument);
  rig.cloud.set_migration_model({.bandwidth_bps = 1e9, .downtime_s = 0.5});
  const virt::Vm& vm = rig.cloud.boot_vm("h0", virt::VmConfig{});
  rig.cloud.start_ticking(0.1);
  rig.cloud.migrate_vm(vm.id(), "h1");
  // While the copy is in flight: no model swap, no second migration.
  EXPECT_THROW(rig.cloud.set_migration_model({}), std::logic_error);
  EXPECT_THROW(rig.cloud.migrate_vm(vm.id(), "h1"), std::logic_error);
}

TEST(LiveMigration, SourceCrashKillsTheVmAndAbortsTheMigration) {
  TwoHostRig rig;
  rig.cloud.set_migration_model({.bandwidth_bps = 1e9, .downtime_s = 0.5});
  const virt::Vm& vm = rig.cloud.boot_vm("h0", virt::VmConfig{});
  const int id = vm.id();
  rig.cloud.start_ticking(0.1);
  rig.engine.run_until(sim::SimTime(0.5));
  rig.cloud.migrate_vm(id, "h1");  // ~8.6 s copy
  rig.engine.run_until(sim::SimTime(2.0));

  rig.cloud.crash_host("h0");
  EXPECT_EQ(rig.cloud.migrations_in_flight(), 0u);
  EXPECT_EQ(rig.cloud.migrations_aborted(), 1);
  EXPECT_EQ(rig.cloud.host("h1").migration_inflow_count(), 0u);
  EXPECT_TRUE(rig.cloud.all_vms().empty());
  // The cancelled pause/finish events must never fire.
  rig.engine.run_until(sim::SimTime(12.0));
  EXPECT_EQ(rig.cloud.migrations_completed(), 0);
}

TEST(LiveMigration, DestinationCrashLeavesVmRunningOnSource) {
  TwoHostRig rig;
  rig.cloud.add_host(host_cfg("h2"));
  rig.cloud.set_migration_model(
      {.bandwidth_bps = 4.0 * 1024 * 1024 * 1024, .downtime_s = 0.5});
  virt::VmConfig cfg;
  cfg.memory = 8.0 * 1024 * 1024 * 1024;
  const virt::Vm& vm = rig.cloud.boot_vm("h0", cfg);
  const int id = vm.id();
  rig.cloud.start_ticking(0.1);
  rig.cloud.migrate_vm(id, "h1");  // copy [0, 2), pause [2, 2.5)
  rig.engine.run_until(sim::SimTime(2.2));
  ASSERT_TRUE(rig.cloud.host("h0").find(id)->paused());

  rig.cloud.crash_host("h1");
  // The VM never left: still on the source, unpaused, and re-migratable.
  ASSERT_NE(rig.cloud.host("h0").find(id), nullptr);
  EXPECT_FALSE(rig.cloud.host("h0").find(id)->paused());
  EXPECT_EQ(rig.cloud.migrations_aborted(), 1);
  EXPECT_EQ(rig.cloud.migrations_in_flight(), 0u);

  rig.cloud.migrate_vm(id, "h2");
  rig.engine.run_until(sim::SimTime(6.0));
  EXPECT_NE(rig.cloud.host("h2").find(id), nullptr);
  EXPECT_EQ(rig.cloud.migrations_completed(), 1);
}

TEST(HostCrash, RegistryHypervisorMismatchFailsLoudly) {
  TwoHostRig rig;
  const virt::Vm& vm = rig.cloud.boot_vm("h0", virt::VmConfig{});
  // Rip the VM out behind the registry's back: crash_host must refuse to
  // paper over the inconsistency.
  auto orphan = rig.cloud.host("h0").evict(vm.id());
  EXPECT_THROW(rig.cloud.crash_host("h0"), std::logic_error);
}

// --- Escalation destination capacity (§IV-D) ---

hw::ServerConfig small_host(const std::string& name, int cores) {
  hw::ServerConfig cfg;
  cfg.name = name;
  cfg.cpu.cores = cores;
  return cfg;
}

TEST(CollisionResolution, SkipsDestinationsWithoutCapacity) {
  sim::Engine engine{1};
  CloudManager cloud{engine};
  cloud.add_host(small_host("h0", 4));
  cloud.add_host(small_host("h1", 4));  // less populated, but full
  cloud.add_host(small_host("h2", 4));  // busier, but the VM fits
  virt::VmConfig high;
  high.priority = virt::Priority::kHigh;
  high.vcpus = 2;
  high.app_id = "app-a";
  cloud.boot_vm("h0", high);
  cloud.boot_vm("h0", high);
  high.app_id = "app-b";  // the smaller group: this is what moves
  cloud.boot_vm("h0", high);

  virt::VmConfig filler;
  filler.priority = virt::Priority::kLow;
  filler.vcpus = 4;
  cloud.boot_vm("h1", filler);  // 4/4 cores used: nothing fits
  filler.vcpus = 1;
  cloud.boot_vm("h2", filler);  // 2/4 cores used: a 2-vcpu VM fits
  cloud.boot_vm("h2", filler);

  // The population tie-break would prefer h1 (1 VM < 2 VMs), but h1 cannot
  // admit the mover; the feasible h2 must win.
  EXPECT_EQ(cloud.resolve_high_priority_collision("h0"), 1);
  EXPECT_EQ(cloud.hosts_of_app("app-a"), (std::vector<std::string>{"h0"}));
  EXPECT_EQ(cloud.hosts_of_app("app-b"), (std::vector<std::string>{"h2"}));
}

TEST(CollisionResolution, NoFeasibleDestinationMovesNothing) {
  sim::Engine engine{1};
  CloudManager cloud{engine};
  cloud.add_host(small_host("h0", 4));
  cloud.add_host(small_host("h1", 4));
  virt::VmConfig high;
  high.priority = virt::Priority::kHigh;
  high.vcpus = 2;
  high.app_id = "app-a";
  cloud.boot_vm("h0", high);
  high.app_id = "app-b";
  cloud.boot_vm("h0", high);
  virt::VmConfig filler;
  filler.priority = virt::Priority::kLow;
  filler.vcpus = 4;
  cloud.boot_vm("h1", filler);

  EXPECT_EQ(cloud.resolve_high_priority_collision("h0"), 0);
  EXPECT_EQ(cloud.resolve_high_priority_collision("h0"), 0);  // stable no-op
  EXPECT_EQ(cloud.hosts_of_app("app-a"), (std::vector<std::string>{"h0"}));
  EXPECT_EQ(cloud.hosts_of_app("app-b"), (std::vector<std::string>{"h0"}));
}

TEST(CollisionResolution, SkipsVmsAlreadyInFlight) {
  TwoHostRig rig;
  rig.cloud.set_migration_model({.bandwidth_bps = 1e9, .downtime_s = 0.5});
  virt::VmConfig high;
  high.priority = virt::Priority::kHigh;
  high.app_id = "app-a";
  rig.cloud.boot_vm("h0", high);
  rig.cloud.boot_vm("h0", high);
  high.app_id = "app-b";
  rig.cloud.boot_vm("h0", high);
  rig.cloud.start_ticking(0.1);

  EXPECT_EQ(rig.cloud.resolve_high_priority_collision("h0"), 1);
  EXPECT_EQ(rig.cloud.migrations_in_flight(), 1u);
  // The registry still shows the mover on h0 until the copy finishes, so
  // the collision is still visible — but re-resolving must not try to
  // double-migrate the in-flight VM.
  EXPECT_EQ(rig.cloud.resolve_high_priority_collision("h0"), 0);
  EXPECT_EQ(rig.cloud.migrations_in_flight(), 1u);
}

// --- Node-manager state handoff on migration (DESIGN.md §5j) ---

TEST(MigrationHandoff, CapsAreRetiredAndSourceForgets) {
  // A noisy-neighbour host (all ten workers packed with the fio antagonist
  // on host-0, host-1 empty) where the CUBIC controller reliably throttles
  // fio — then fio migrates away while its cap is applied.
  exp::ClusterParams p;
  p.hosts = 2;
  p.workers = 10;
  p.worker_host_limit = 1;
  p.seed = 2026;
  exp::Cluster c = exp::make_cluster(p);
  const int fio = exp::add_fio(
      c, "host-0", wl::FioRandomRead::Params{.duration_s = 10000.0, .start_s = 20.0});
  exp::enable_perfcloud(c, core::PerfCloudConfig{});
  core::NodeManager& src = c.node_manager(0);
  core::NodeManager& dst = c.node_manager(1);

  c.framework->submit(wl::make_spark_logreg(60, 8));
  double waited = 0.0;
  while (c.vm(fio).cgroup().blkio_throttle_bps() == hw::kNoCap && waited < 600.0) {
    exp::run_for(c, 20.0);
    waited += 20.0;
  }
  ASSERT_NE(c.vm(fio).cgroup().blkio_throttle_bps(), hw::kNoCap) << "controller never engaged";
  ASSERT_FALSE(src.monitor().io_throughput_series(fio).empty());
  const std::size_t cap_points = src.io_cap_series(fio).size();
  ASSERT_GT(cap_points, 0u);

  c.cloud->migrate_vm(fio, "host-1");

  // The applied cap was retired through the source cgroup at departure (no
  // controller travels with the VM, so nothing may stay throttled)...
  EXPECT_EQ(c.vm(fio).cgroup().blkio_throttle_bps(), hw::kNoCap);
  // ...the source's monitor state is gone (a returning VM must re-prime)...
  EXPECT_TRUE(src.monitor().io_throughput_series(fio).empty());
  EXPECT_EQ(src.monitor().latest(fio), nullptr);
  // ...but cap history survives: it is plot data, not control state.
  EXPECT_EQ(src.io_cap_series(fio).size(), cap_points);

  // The run continues cleanly (no stale controller actuating a departed VM
  // id) and the destination starts monitoring the arrival.
  exp::run_for(c, 60.0);
  EXPECT_FALSE(dst.monitor().io_throughput_series(fio).empty());
}

TEST(MigrationHandoff, ReturningVmRePrimesTheCounterBaseline) {
  // Migrate a VM away, let it do 100 s of I/O elsewhere, bring it back.
  // Its cumulative cgroup counters travelled with it, so a source monitor
  // that kept the old baseline would book all that I/O as one interval's
  // delta — a giant phantom spike.
  exp::ClusterParams p;
  p.hosts = 2;
  p.workers = 2;
  p.seed = 7;
  exp::Cluster c = exp::make_cluster(p);
  const int fio = exp::add_fio(c, "host-0", wl::FioRandomRead::Params{.duration_s = 10000.0});
  exp::enable_perfcloud(c, core::PerfCloudConfig{}, /*control=*/false);
  core::NodeManager& nm = c.node_manager(0);

  exp::run_for(c, 100.0);
  double peak_before = 0.0;
  {
    const sim::TimeSeries& series = nm.monitor().io_throughput_series(fio);
    ASSERT_GT(series.size(), 3u);
    for (std::size_t i = 0; i < series.size(); ++i) {
      peak_before = std::max(peak_before, series.value(i));
    }
  }
  ASSERT_GT(peak_before, 0.0);

  c.cloud->migrate_vm(fio, "host-1");
  exp::run_for(c, 100.0);
  c.cloud->migrate_vm(fio, "host-0");
  exp::run_for(c, 30.0);

  const sim::TimeSeries& after = nm.monitor().io_throughput_series(fio);
  ASSERT_GT(after.size(), 1u);
  for (std::size_t i = 0; i < after.size(); ++i) {
    EXPECT_LT(after.value(i), 3.0 * peak_before);
  }
}

TEST(Heterogeneity, SpeedFactorsScaleHostClocks) {
  exp::ClusterParams p;
  p.hosts = 3;
  p.workers = 3;
  p.host_speed_factors = {1.0, 0.5};
  exp::Cluster c = exp::make_cluster(p);
  const double base = p.server.cpu.clock_hz;
  EXPECT_DOUBLE_EQ(c.cloud->host("host-0").server().config().cpu.clock_hz, base);
  EXPECT_DOUBLE_EQ(c.cloud->host("host-1").server().config().cpu.clock_hz, 0.5 * base);
  EXPECT_DOUBLE_EQ(c.cloud->host("host-2").server().config().cpu.clock_hz, base);  // cycled
}

TEST(Heterogeneity, SlowHostCreatesStragglers) {
  // Same CPU-bound job on a homogeneous vs heterogeneous cluster: the
  // barrier waits for tasks on the slow host, so the job takes longer.
  auto run = [](std::vector<double> factors) {
    exp::ClusterParams p;
    p.hosts = 3;
    p.workers = 6;
    p.seed = 4;
    p.host_speed_factors = std::move(factors);
    exp::Cluster c = exp::make_cluster(p);
    return exp::run_job(c, wl::make_wordcount(12, 6));
  };
  const double homogeneous = run({});
  const double heterogeneous = run({1.0, 1.0, 0.5});
  EXPECT_GT(heterogeneous, 1.15 * homogeneous);
}

}  // namespace
}  // namespace perfcloud::cloud
