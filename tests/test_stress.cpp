// Long-running chaos/stress scenario: job stream + antagonist churn +
// injected task failures + a live migration, all under PerfCloud, with
// global invariants checked throughout.
#include <gtest/gtest.h>

#include "cloud/placement.hpp"
#include "exp/cluster.hpp"
#include "exp/summary.hpp"
#include "workloads/benchmarks.hpp"
#include "workloads/mix.hpp"

namespace perfcloud {
namespace {

TEST(Stress, ChaosScenarioKeepsAllInvariants) {
  exp::ClusterParams p;
  p.hosts = 3;
  p.workers = 18;
  p.seed = 99;
  exp::Cluster c = exp::make_cluster(p);
  c.framework->set_task_failure_rate(0.005);
  c.framework->set_shared_memory_shuffle(true);

  // Antagonist churn across the run.
  std::vector<int> antagonists;
  antagonists.push_back(exp::add_fio(
      c, "host-0", wl::FioRandomRead::Params{.duration_s = 90.0, .start_s = 20.0}));
  antagonists.push_back(exp::add_stream(
      c, "host-1",
      wl::StreamBenchmark::Params{.threads = 16, .duration_s = 120.0, .start_s = 60.0}));
  antagonists.push_back(exp::add_dd_writer(
      c, "host-2", wl::DdSequentialWriter::Params{.start_s = 150.0}));
  antagonists.push_back(exp::add_oltp(c, "host-2", wl::SysbenchOltp::Params{.start_s = 40.0}));

  exp::enable_perfcloud(c, core::PerfCloudConfig{});

  // A stream of jobs over the whole window.
  sim::Rng mix_rng(17);
  wl::MixParams mp;
  mp.num_jobs = 12;
  mp.mean_interarrival_s = 25.0;
  std::vector<wl::JobId> ids;
  for (const wl::MixEntry& e : wl::make_mapreduce_mix(mp, mix_rng)) {
    c.engine->at(sim::SimTime(e.submit_time_s),
                 [&c, &ids, spec = e.spec](sim::SimTime) { ids.push_back(c.framework->submit(spec)); });
  }

  // Mid-run, migrate one worker VM to another host (placement change the
  // node managers must absorb via the registry).
  c.engine->at(sim::SimTime(100.0), [&c](sim::SimTime) {
    c.cloud->migrate_vm(c.worker_vm_ids[0], "host-2");
  });

  // Periodic invariant checks while everything churns.
  int checks = 0;
  c.engine->every(10.0, [&](sim::SimTime) {
    ++checks;
    for (const int id : c.worker_vm_ids) {
      const virt::Cgroup& cg = c.vm(id).cgroup();
      ASSERT_EQ(cg.blkio_throttle_bps(), hw::kNoCap);
      ASSERT_EQ(cg.cpu_quota_cores(), hw::kNoCap);
    }
  }, sim::SimTime(10.0));

  c.engine->run_while(
      [&] { return ids.size() < 12 || !c.framework->all_done(); }, sim::SimTime(4000.0));

  // Every job completed despite failures, churn, and migration.
  const exp::RunSummary s = exp::summarize(*c.framework);
  EXPECT_EQ(s.jobs_submitted, 12);
  EXPECT_EQ(s.jobs_completed, 12);
  EXPECT_GT(checks, 10);

  // The migrated worker kept participating: it ran some attempts.
  EXPECT_GT(c.vm(c.worker_vm_ids[0]).cgroup().stats().cpu_time_s, 1.0);
  // The migrated VM is on host-2 now.
  bool found = false;
  for (const auto& r : c.cloud->vms_on_host("host-2")) {
    found |= r.id == c.worker_vm_ids[0];
  }
  EXPECT_TRUE(found);

  // Quiet period: every cap lifts (finite antagonists are done or idle).
  for (const int id : antagonists) c.vm(id).detach();
  exp::run_for(c, 200.0);
  for (const int id : antagonists) {
    EXPECT_EQ(c.vm(id).cgroup().blkio_throttle_bps(), hw::kNoCap);
    EXPECT_EQ(c.vm(id).cgroup().cpu_quota_cores(), hw::kNoCap);
  }
}

TEST(Stress, DdWriterDegradesAndIsControlled) {
  exp::ClusterParams p;
  p.workers = 6;
  p.seed = 55;

  exp::Cluster clean = exp::make_cluster(p);
  const double base = exp::run_job(clean, wl::make_terasort(16, 16));

  exp::Cluster noisy = exp::make_cluster(p);
  exp::add_dd_writer(noisy, "host-0", wl::DdSequentialWriter::Params{.start_s = 10.0});
  const double contended = exp::run_job(noisy, wl::make_terasort(16, 16));
  EXPECT_GT(contended, 1.1 * base);

  exp::Cluster guarded = exp::make_cluster(p);
  const int dd = exp::add_dd_writer(guarded, "host-0",
                                    wl::DdSequentialWriter::Params{.start_s = 10.0});
  exp::enable_perfcloud(guarded, core::PerfCloudConfig{});
  const double protected_jct = exp::run_job(guarded, wl::make_terasort(16, 16));
  EXPECT_LT(protected_jct, contended);
  // The sequential writer still made progress.
  const auto* guest = dynamic_cast<const wl::DdSequentialWriter*>(guarded.vm(dd).guest());
  EXPECT_GT(guest->bytes_written(), 0.0);
}

TEST(Stress, PackedPlacementConcentratesLoad) {
  sim::Engine engine(1);
  cloud::CloudManager cl(engine);
  hw::ServerConfig h;
  h.name = "h0";
  cl.add_host(h);
  h.name = "h1";
  cl.add_host(h);
  const auto ids =
      cloud::place_packed(cl, cl.host_names(), 5, 4, virt::VmConfig{}, "packed-app");
  EXPECT_EQ(ids.size(), 5u);
  EXPECT_EQ(cl.vms_on_host("h0").size(), 4u);
  EXPECT_EQ(cl.vms_on_host("h1").size(), 1u);
  EXPECT_THROW(cloud::place_packed(cl, cl.host_names(), 20, 4, virt::VmConfig{}, "x"),
               std::invalid_argument);
}

}  // namespace
}  // namespace perfcloud
