// ClusterView aggregation and destination-scoring unit tests (DESIGN.md §5k):
// the policy's per-host usage vectors, cap folding, registry-version-keyed
// rebuilds, and the pluggable scorers' preferences.
#include <gtest/gtest.h>

#include <vector>

#include "exp/cluster.hpp"
#include "policy/cluster_view.hpp"
#include "policy/migration_policy.hpp"
#include "workloads/antagonists.hpp"
#include "workloads/benchmarks.hpp"

namespace perfcloud::policy {
namespace {

std::vector<core::NodeManager*> managers(exp::Cluster& c) {
  std::vector<core::NodeManager*> nms;
  for (const auto& nm : c.node_managers) nms.push_back(nm.get());
  return nms;
}

TEST(ClusterView, AggregatesShapePlacementAndUsage) {
  exp::ClusterParams p;
  p.hosts = 3;
  p.workers = 4;
  p.seed = 51;
  p.placement = exp::Placement::kPacked;  // all workers on host-0
  exp::Cluster c = exp::make_cluster(p);
  const int dd = exp::add_dd_writer(
      c, "host-1", wl::DdSequentialWriter::Params{.total_bytes = 1.0e12});
  const int cpu = exp::add_sysbench_cpu(
      c, "host-2", wl::SysbenchCpu::Params{.threads = 8, .total_instructions = 1.0e14});
  exp::enable_perfcloud(c, core::PerfCloudConfig{}, /*control=*/false);
  c.framework->submit(wl::make_terasort(12, 12));
  exp::run_for(c, 120.0);

  ClusterView view(*c.cloud, managers(c));
  view.refresh(c.engine->now());

  ASSERT_EQ(view.host_count(), 3u);
  EXPECT_EQ(view.index_of("host-1"), 1u);
  EXPECT_EQ(view.index_of("nope"), ClusterView::npos);

  const HostView& h0 = view.host(0);
  EXPECT_TRUE(h0.up);
  EXPECT_EQ(h0.cores, p.server.cpu.cores);
  EXPECT_EQ(h0.disk_bw, p.server.disk.bw_capacity);
  ASSERT_EQ(h0.vms.size(), 4u);
  for (std::size_t i = 1; i < h0.vms.size(); ++i) {
    EXPECT_LT(h0.vms[i - 1].vm_id, h0.vms[i].vm_id);  // canonical id order
  }
  // Workers are the protected app; their usage folded into the aggregates.
  EXPECT_GT(h0.cpu_cores_used, 0.0);
  for (const VmUsage& u : h0.vms) {
    EXPECT_EQ(u.priority, virt::Priority::kHigh);
    EXPECT_EQ(u.app, c.cloud->app_interner().lookup(p.app_id));
    EXPECT_LT(u.io_cap, 0.0);  // monitoring-only: nothing capped
  }

  // Antagonist hosts: the dd writer shows up as disk throughput, the
  // sysbench as CPU cores; neither host has a protected app, so their
  // deviation maxima stay at the "no samples" sentinel.
  const VmUsage* dd_u = view.find_vm(1, dd);
  ASSERT_NE(dd_u, nullptr);
  EXPECT_GT(dd_u->io_bps, 0.0);
  EXPECT_GT(view.host(1).io_bps, 0.0);
  const VmUsage* cpu_u = view.find_vm(2, cpu);
  ASSERT_NE(cpu_u, nullptr);
  EXPECT_GT(cpu_u->cpu_cores, 0.5);
  EXPECT_LT(view.host(1).max_io_dev, 0.0);
  EXPECT_LT(view.host(2).max_cpi_dev, 0.0);
  EXPECT_EQ(view.find_vm(0, dd), nullptr);
}

TEST(ClusterView, RebuildFollowsRegistryChanges) {
  exp::ClusterParams p;
  p.hosts = 2;
  p.workers = 2;
  p.seed = 52;
  p.placement = exp::Placement::kPacked;
  exp::Cluster c = exp::make_cluster(p);
  const int fio = exp::add_fio(c, "host-0", wl::FioRandomRead::Params{.duration_s = 10000.0});
  exp::enable_perfcloud(c, core::PerfCloudConfig{}, /*control=*/false);
  exp::run_for(c, 30.0);

  ClusterView view(*c.cloud, managers(c));
  view.refresh(c.engine->now());
  EXPECT_NE(view.find_vm(0, fio), nullptr);
  EXPECT_EQ(view.host(1).vms.size(), 0u);

  c.cloud->migrate_vm(fio, "host-1");
  // Same timestamp, changed registry: the version key forces the rebuild.
  view.refresh(c.engine->now());
  EXPECT_EQ(view.find_vm(0, fio), nullptr);
  ASSERT_NE(view.find_vm(1, fio), nullptr);

  exp::run_for(c, 30.0);
  view.refresh(c.engine->now());
  EXPECT_GT(view.find_vm(1, fio)->io_bps, 0.0);

  // A crashed host folds as down with its residents gone.
  c.cloud->crash_host("host-1");
  view.refresh(c.engine->now());
  EXPECT_FALSE(view.host(1).up);
  EXPECT_EQ(view.host(1).vms.size(), 0u);
  EXPECT_TRUE(view.host(0).up);
}

TEST(Scoring, ComplementaryPrefersOrthogonalHostFirstFitPrefersLowIndex) {
  // host-1 is saturated-disk-busy (dd writer), host-2 CPU-busy (sysbench),
  // host-3 idle. The antagonists are stark — a saturating large-block fio
  // vs a 500 MB/s dd — so the disk axis dominates every other overlap term:
  // the fio from host-0 must land on host-2, not host-1, under
  // complementary scoring; first-fit only looks at the index; load-aware
  // prefers the idle host over either busy one.
  exp::ClusterParams p;
  p.hosts = 4;
  p.workers = 2;
  p.seed = 53;
  p.placement = exp::Placement::kPacked;
  exp::Cluster c = exp::make_cluster(p);
  const int fio = exp::add_fio(
      c, "host-0",
      wl::FioRandomRead::Params{
          .issue_iops = 4000.0, .block_size = 262144.0, .duration_s = 10000.0});
  exp::add_dd_writer(c, "host-1",
                     wl::DdSequentialWriter::Params{.total_bytes = 1.0e12,
                                                    .target_rate = 500.0e6});
  exp::add_sysbench_cpu(c, "host-2",
                        wl::SysbenchCpu::Params{.threads = 8, .total_instructions = 1.0e14});
  exp::enable_perfcloud(c, core::PerfCloudConfig{}, /*control=*/false);
  c.framework->submit(wl::make_terasort(8, 8));
  exp::run_for(c, 150.0);

  const virt::VmConfig& shape = c.vm(fio).config();

  PolicyParams comp;
  comp.scoring = Scoring::kComplementary;
  MigrationPolicy complementary(*c.cloud, managers(c), comp);
  EXPECT_GT(complementary.score_destination(shape, "host-0", "host-2"),
            complementary.score_destination(shape, "host-0", "host-1"));

  PolicyParams ff;
  ff.scoring = Scoring::kFirstFit;
  MigrationPolicy first_fit(*c.cloud, managers(c), ff);
  EXPECT_GT(first_fit.score_destination(shape, "host-0", "host-1"),
            first_fit.score_destination(shape, "host-0", "host-2"));

  PolicyParams load;
  load.scoring = Scoring::kLoadAware;
  MigrationPolicy load_aware(*c.cloud, managers(c), load);
  EXPECT_GT(load_aware.score_destination(shape, "host-0", "host-3"),
            load_aware.score_destination(shape, "host-0", "host-1"));
  EXPECT_GT(load_aware.score_destination(shape, "host-0", "host-3"),
            load_aware.score_destination(shape, "host-0", "host-2"));
}

TEST(MigrationPolicy, ValidatesParameters) {
  exp::ClusterParams p;
  p.hosts = 1;
  p.workers = 1;
  p.seed = 54;
  exp::Cluster c = exp::make_cluster(p);
  exp::enable_perfcloud(c, core::PerfCloudConfig{}, /*control=*/false);

  PolicyParams bad;
  bad.floor_windows = 0;
  EXPECT_THROW(MigrationPolicy(*c.cloud, managers(c), bad), std::invalid_argument);
  bad = PolicyParams{};
  bad.max_in_flight = 0;
  EXPECT_THROW(MigrationPolicy(*c.cloud, managers(c), bad), std::invalid_argument);
  bad = PolicyParams{};
  bad.dwell_min_s = -1.0;
  EXPECT_THROW(MigrationPolicy(*c.cloud, managers(c), bad), std::invalid_argument);
  EXPECT_THROW(MigrationPolicy(*c.cloud, {}, PolicyParams{}), std::invalid_argument);

  // A policy interval that is not a whole multiple of the control interval
  // cannot share the host pipeline.
  PolicyParams off;
  off.interval_s = 7.5;  // sample_interval_s is 5.0
  MigrationPolicy policy(*c.cloud, managers(c), off);
  EXPECT_THROW(policy.start(), std::invalid_argument);

  PolicyParams ok;
  ok.interval_s = 10.0;
  MigrationPolicy fine(*c.cloud, managers(c), ok);
  fine.start();
  EXPECT_THROW(fine.start(), std::logic_error);
}

}  // namespace
}  // namespace perfcloud::policy
