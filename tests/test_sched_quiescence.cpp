// The idle-host fast path: hypervisor quiescence tracking, the monitor's
// settled-sample replay, and — the contract that matters — byte-identical
// simulation results with the fast path on and off on a cluster where most
// hosts are idle.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/monitor.hpp"
#include "exp/cluster.hpp"
#include "sim/rng.hpp"
#include "virt/hypervisor.hpp"
#include "workloads/benchmarks.hpp"

namespace perfcloud {
namespace {

/// Minimal guest: demands one core until `until_s`, then reports finished.
class FakeGuest : public virt::GuestWorkload {
 public:
  explicit FakeGuest(double until_s) : until_s_(until_s) {}
  hw::TenantDemand demand(sim::SimTime now, double dt) override {
    hw::TenantDemand d{};
    if (!finished(now)) d.cpu_core_seconds = dt;
    return d;
  }
  void apply(const hw::TenantGrant&, sim::SimTime, double) override {}
  [[nodiscard]] bool finished(sim::SimTime now) const override {
    return now.seconds() >= until_s_;
  }
  [[nodiscard]] std::string_view name() const override { return "fake"; }

 private:
  double until_s_;
};

/// RAII save/restore of the global fast-path switch.
class ScopedFastpath {
 public:
  explicit ScopedFastpath(bool enabled) : saved_(virt::idle_fastpath_enabled()) {
    virt::set_idle_fastpath_enabled(enabled);
  }
  ~ScopedFastpath() { virt::set_idle_fastpath_enabled(saved_); }

 private:
  bool saved_;
};

TEST(Quiescence, HypervisorTracksActivityTransitions) {
  hw::ServerConfig cfg;
  cfg.name = "h";
  virt::Hypervisor hv(cfg, sim::Rng(1));
  EXPECT_TRUE(hv.is_quiescent(sim::SimTime(0.0)));

  virt::VmConfig vmc;
  vmc.id = 1;
  virt::Vm& vm = hv.boot(vmc);
  // A VM with no guest presents no demand: still quiescent.
  EXPECT_TRUE(hv.is_quiescent(sim::SimTime(0.0)));

  vm.attach(std::make_unique<FakeGuest>(10.0));
  EXPECT_FALSE(hv.is_quiescent(sim::SimTime(0.0)));
  // Guest completion is monotone, so quiescence returns — and stays (cached).
  EXPECT_TRUE(hv.is_quiescent(sim::SimTime(10.0)));
  EXPECT_TRUE(hv.is_quiescent(sim::SimTime(11.0)));

  const std::uint64_t epoch = hv.activity_epoch();
  vm.set_paused(true);
  EXPECT_GT(hv.activity_epoch(), epoch);  // pause ended the cached answer
  EXPECT_FALSE(hv.is_quiescent(sim::SimTime(11.0)));
  vm.set_paused(false);
  EXPECT_TRUE(hv.is_quiescent(sim::SimTime(11.0)));

  hv.set_vcpu_quota(1, 1.0);
  EXPECT_FALSE(hv.is_quiescent(sim::SimTime(11.0)));
  hv.clear_vcpu_quota(1);
  EXPECT_TRUE(hv.is_quiescent(sim::SimTime(11.0)));

  hv.set_disk_degradation(0.5);
  EXPECT_FALSE(hv.is_quiescent(sim::SimTime(11.0)));
  hv.set_disk_degradation(1.0);
  EXPECT_TRUE(hv.is_quiescent(sim::SimTime(11.0)));
}

TEST(Quiescence, FastSampleReplaysExactlyWhatFullSamplingRecords) {
  hw::ServerConfig cfg;
  cfg.name = "h";
  virt::Hypervisor hv(cfg, sim::Rng(7));
  virt::VmConfig vmc;
  vmc.id = 1;
  virt::Vm& vm = hv.boot(vmc);
  vm.attach(std::make_unique<FakeGuest>(5.0));

  // Two monitors observing the same host: `full` always takes the slow
  // path, `fast` switches to record_settled whenever it may. Their series
  // must stay bit-identical, including the EWMA decay after activity ends.
  core::PerfCloudConfig mcfg;
  mcfg.sample_interval_s = 1.0;
  core::PerformanceMonitor full(hv, mcfg);
  core::PerformanceMonitor fast(hv, mcfg);

  int fast_samples = 0;
  for (int t = 1; t <= 30; ++t) {
    const sim::SimTime now(static_cast<double>(t));
    hv.tick(now, 1.0);
    full.sample(now);
    if (hv.is_quiescent(now) && fast.can_fast_sample()) {
      fast.record_settled(now);
      ++fast_samples;
    } else {
      fast.sample(now);
    }
  }
  // The fast path must actually have engaged once the guest finished.
  EXPECT_GT(fast_samples, 15);

  const sim::TimeSeries& a = full.io_throughput_series(1);
  const sim::TimeSeries& b = fast.io_throughput_series(1);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.time(i), b.time(i));
    EXPECT_EQ(a.value(i), b.value(i));
  }
  EXPECT_EQ(full.observed_cpu_cores(1), fast.observed_cpu_cores(1));
  EXPECT_EQ(full.observed_io_bps(1), fast.observed_io_bps(1));
}

TEST(Quiescence, BlackoutEndsFastSampling) {
  hw::ServerConfig cfg;
  cfg.name = "h";
  virt::Hypervisor hv(cfg, sim::Rng(3));
  virt::VmConfig vmc;
  vmc.id = 1;
  hv.boot(vmc);

  core::PerfCloudConfig mcfg;
  mcfg.sample_interval_s = 1.0;
  core::PerformanceMonitor m(hv, mcfg);
  m.sample(sim::SimTime(1.0));
  m.sample(sim::SimTime(2.0));
  EXPECT_TRUE(m.can_fast_sample());
  m.set_blackout(1, true);
  EXPECT_FALSE(m.can_fast_sample());
  m.set_blackout(1, false);
  // Still not fast-sampleable: the next full sample must re-prime first.
  EXPECT_FALSE(m.can_fast_sample());
  m.sample(sim::SimTime(3.0));  // re-primes the baseline
  m.sample(sim::SimTime(4.0));  // first settled sample after recovery
  EXPECT_TRUE(m.can_fast_sample());
}

/// Everything observable about one run of a mostly-idle cluster.
struct IdleRunTrace {
  double final_time_s = 0.0;
  double jct = 0.0;
  std::vector<std::pair<double, double>> samples;
  bool operator==(const IdleRunTrace&) const = default;
};

IdleRunTrace run_mostly_idle(bool fastpath) {
  ScopedFastpath guard(fastpath);
  exp::ClusterParams p;
  p.hosts = 6;
  p.workers = 6;
  p.worker_host_limit = 2;  // hosts 2..5 carry no workers
  p.seed = 11;
  exp::Cluster c = exp::make_cluster(p);
  // A finite antagonist on an otherwise-empty host: once it completes, the
  // host is quiescent and its monitor series decay through the fast path.
  const int fio = exp::add_fio(
      c, "host-2", wl::FioRandomRead::Params{.duration_s = 60.0, .start_s = 10.0});
  exp::enable_perfcloud(c, core::PerfCloudConfig{});

  IdleRunTrace trace;
  trace.jct = exp::run_job(c, wl::make_benchmark("terasort", 4));
  exp::run_for(c, 400.0);
  trace.final_time_s = c.engine->now().seconds();
  for (std::size_t h = 0; h < c.hosts.size(); ++h) {
    core::NodeManager& nm = c.node_manager(h);
    const sim::TimeSeries& io = nm.io_signal(p.app_id);
    for (std::size_t i = 0; i < io.size(); ++i) {
      trace.samples.emplace_back(io.time(i).seconds(), io.value(i));
    }
    const sim::TimeSeries& fio_io = nm.monitor().io_throughput_series(fio);
    for (std::size_t i = 0; i < fio_io.size(); ++i) {
      trace.samples.emplace_back(fio_io.time(i).seconds(), fio_io.value(i));
    }
  }
  if (fastpath) {
    // The fast path's preconditions actually held on the drained host —
    // otherwise this test exercises nothing.
    EXPECT_TRUE(c.cloud->host("host-2").is_quiescent(c.engine->now()));
    EXPECT_TRUE(c.node_manager(2).monitor().can_fast_sample());
    EXPECT_TRUE(c.cloud->host("host-5").is_quiescent(c.engine->now()));
  }
  return trace;
}

TEST(Quiescence, FastPathIsStateIdenticalOnMostlyIdleCluster) {
  const IdleRunTrace off = run_mostly_idle(false);
  const IdleRunTrace on = run_mostly_idle(true);
  EXPECT_GT(on.jct, 0.0);
  EXPECT_FALSE(on.samples.empty());
  EXPECT_EQ(on, off);
}

}  // namespace
}  // namespace perfcloud
