// EventSink: the staged, optionally-asynchronous emission subsystem. The
// load-bearing property is byte-identity — sync inline writes, the async
// writer thread, and the batch TraceRecorder path must all produce the same
// files for the same records.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "exp/event_sink.hpp"
#include "exp/report.hpp"
#include "exp/summary.hpp"
#include "exp/trace.hpp"
#include "sim/time_series.hpp"

namespace perfcloud::exp {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream f(path);
  std::ostringstream os;
  os << f.rdbuf();
  return os.str();
}

// --- CsvGridWriter ---

TEST(CsvGridWriter, StreamsAlignedGrid) {
  std::ostringstream os;
  CsvGridWriter w(os, {"alpha", "beta"});
  w.add(0, 1.0, 10.0);
  w.add(0, 2.0, 20.0);
  w.add(1, 2.0, 200.0);
  w.add(1, 3.0, 300.0);
  w.finish();
  EXPECT_EQ(os.str(), "t,alpha,beta\n1,10,\n2,20,200\n3,,300\n");
  EXPECT_EQ(w.rows_written(), 3u);
}

TEST(CsvGridWriter, ToleranceCollapsesRowsAndLastRecordWins) {
  std::ostringstream os;
  CsvGridWriter w(os, {"a"});
  w.add(0, 1.0, 1.0);
  w.add(0, 1.0 + 2e-7, 2.0);  // same instant up to tolerance: one row, last wins
  w.finish();
  EXPECT_EQ(os.str(), "t,a\n1,2\n");
}

TEST(CsvGridWriter, TimeRegressionThrows) {
  std::ostringstream os;
  CsvGridWriter w(os, {"a"});
  w.add(0, 5.0, 1.0);
  EXPECT_THROW(w.add(0, 1.0, 2.0), std::logic_error);
}

TEST(CsvGridWriter, UnknownColumnThrows) {
  std::ostringstream os;
  CsvGridWriter w(os, {"a"});
  EXPECT_THROW(w.add(1, 0.0, 0.0), std::out_of_range);
}

TEST(CsvGridWriter, SealFlushesOnlyProvenClosedRows) {
  std::ostringstream os;
  CsvGridWriter w(os, {"a"});
  w.add(0, 1.0, 1.0);
  w.seal(1.0);  // a later sweep could still fire at the watermark itself
  EXPECT_EQ(w.rows_written(), 0u);
  w.seal(2.0);  // now the row is provably complete
  EXPECT_EQ(w.rows_written(), 1u);
  w.finish();
  EXPECT_EQ(w.rows_written(), 1u);  // finish is idempotent, no empty extra row
}

// --- EventSink ---

/// Drive one sink through a deterministic record stream with interleaved
/// drains, the way the engine's post-barrier hook does.
void emit_workload(EventSink& sink) {
  const auto io = sink.add_trace_column("h0/io_dev");
  const auto cpi = sink.add_trace_column("h0/cpi_dev");
  const auto cloud = sink.add_event_source("cloud");
  const auto node = sink.add_event_source("host-0");
  for (int i = 0; i < 200; ++i) {
    const sim::SimTime t(i * 0.1);
    sink.emit_sample(io, t, 1.5 * i);
    if (i % 3 == 0) sink.emit_sample(cpi, t, 0.25 * i);
    if (i % 7 == 0) sink.emit_event(cloud, t, "migrate vm=" + std::to_string(i), 1.0);
    if (i % 11 == 0) sink.emit_event(node, t, "io_cap vm=3", 1.0e6 / (i + 1));
    sink.bump_counter(node, "control_intervals");
    if (i % 10 == 0) sink.drain(t);
  }
  sink.bump_counter(cloud, "migrations", 29.0);
  sink.close();
}

TEST(EventSink, SyncAndAsyncProduceByteIdenticalFiles) {
  const std::string sync_csv = "/tmp/perfcloud_sink_sync.csv";
  const std::string sync_jsonl = "/tmp/perfcloud_sink_sync.jsonl";
  const std::string async_csv = "/tmp/perfcloud_sink_async.csv";
  const std::string async_jsonl = "/tmp/perfcloud_sink_async.jsonl";
  {
    EventSink sink({.trace_csv_path = sync_csv, .events_jsonl_path = sync_jsonl, .async = false});
    emit_workload(sink);
    EXPECT_FALSE(sink.async());
    EXPECT_EQ(sink.samples_recorded(), 200u + 67u);
    EXPECT_GT(sink.batches_drained(), 0u);
  }
  {
    EventSink sink(
        {.trace_csv_path = async_csv, .events_jsonl_path = async_jsonl, .async = true});
    emit_workload(sink);
    EXPECT_TRUE(sink.async());
  }
  const std::string want_csv = slurp(sync_csv);
  const std::string want_jsonl = slurp(sync_jsonl);
  EXPECT_FALSE(want_csv.empty());
  EXPECT_FALSE(want_jsonl.empty());
  EXPECT_EQ(slurp(async_csv), want_csv);
  EXPECT_EQ(slurp(async_jsonl), want_jsonl);
}

TEST(EventSink, MatchesTraceRecorderBytesForIdenticalSamples) {
  // The streaming sink and the batch recorder share one merge/format path;
  // feeding both the same gappy two-column sample set must give equal bytes.
  sim::TimeSeries a("a");
  sim::TimeSeries b("b");
  for (int i = 0; i < 50; ++i) {
    const sim::SimTime t(i * 2.0);
    a.add(t, 3.0 * i);
    if (i % 4 != 0) b.add(t, 100.0 - i);
  }
  TraceRecorder rec;
  rec.add("left", a);
  rec.add("right", b);
  const std::string rec_path = "/tmp/perfcloud_sink_recorder.csv";
  rec.write_csv(rec_path);

  const std::string sink_path = "/tmp/perfcloud_sink_streamed.csv";
  {
    EventSink sink({.trace_csv_path = sink_path, .async = true});
    const auto left = sink.add_trace_column("left");
    const auto right = sink.add_trace_column("right");
    for (std::size_t i = 0; i < a.size(); ++i) {
      sink.emit_sample(left, a.time(i), a.value(i));
      if (const auto v = b.value_at(a.time(i))) sink.emit_sample(right, a.time(i), *v);
      if (i % 5 == 0) sink.drain(a.time(i));
    }
    sink.close();
  }
  EXPECT_EQ(slurp(sink_path), slurp(rec_path));
}

TEST(EventSink, WritesEventsAndSummaryJsonl) {
  const std::string path = "/tmp/perfcloud_sink_events.jsonl";
  {
    EventSink sink({.events_jsonl_path = path, .async = false});
    const auto src = sink.add_event_source("cloud");
    sink.emit_event(src, sim::SimTime(1.5), "migrate vm=7 dst=host-1", 1.0);
    sink.bump_counter(src, "migrations");
    sink.bump_counter(src, "migrations");
    sink.drain(sim::SimTime(2.0));
    sink.close();
  }
  std::ifstream f(path);
  std::string line;
  ASSERT_TRUE(std::getline(f, line));
  EXPECT_EQ(line, R"({"t":1.5,"source":"cloud","kind":"migrate vm=7 dst=host-1","value":1})");
  ASSERT_TRUE(std::getline(f, line));
  EXPECT_EQ(line, R"({"summary":{"cloud":{"migrations":2}}})");
  EXPECT_FALSE(std::getline(f, line));
}

TEST(EventSink, EmptySinkWritesHeaderOnlyCsvLikeEmptyRecorder) {
  const std::string path = "/tmp/perfcloud_sink_empty.csv";
  {
    EventSink sink({.trace_csv_path = path, .async = true});
    sink.add_trace_column("only");
    sink.close();
  }
  EXPECT_EQ(slurp(path), "t,only\n");
}

TEST(EventSink, RegistrationAfterFirstDrainThrows) {
  EventSink sink({.async = false});
  sink.add_trace_column("a");
  sink.drain(sim::SimTime(0.0));
  EXPECT_THROW(sink.add_trace_column("b"), std::logic_error);
  EXPECT_THROW(sink.add_event_source("s"), std::logic_error);
}

TEST(EventSink, EmitAfterCloseThrows) {
  EventSink sink({.async = false});
  const auto col = sink.add_trace_column("a");
  const auto src = sink.add_event_source("s");
  sink.close();
  EXPECT_THROW(sink.emit_sample(col, sim::SimTime(0.0), 0.0), std::logic_error);
  EXPECT_THROW(sink.emit_event(src, sim::SimTime(0.0), "x", 0.0), std::logic_error);
  EXPECT_THROW(sink.bump_counter(src, "k"), std::logic_error);
}

TEST(EventSink, BadPathThrows) {
  EXPECT_THROW(EventSink({.trace_csv_path = "/nonexistent-dir/x.csv"}), std::runtime_error);
}

TEST(EventSink, SummaryRecordRoundTripsRunSummary) {
  const std::string path = "/tmp/perfcloud_sink_summary.jsonl";
  RunSummary s;
  s.jobs_submitted = 5;
  s.jobs_completed = 4;
  s.mean_jct = 123.5;
  s.attempts_total = 40;
  {
    EventSink sink({.events_jsonl_path = path, .async = false});
    const auto src = sink.add_event_source("run");
    record(sink, src, s);
    sink.close();
  }
  const std::string got = slurp(path);
  EXPECT_NE(got.find("\"jobs_submitted\":5"), std::string::npos);
  EXPECT_NE(got.find("\"jobs_completed\":4"), std::string::npos);
  EXPECT_NE(got.find("\"mean_jct_s\":123.5"), std::string::npos);
  EXPECT_NE(got.find("\"attempts_total\":40"), std::string::npos);
}

TEST(JsonEscape, EscapesControlAndStructuralCharacters) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(json_escape("x\ny"), "x\\ny");
  EXPECT_EQ(json_escape(std::string("\x01", 1)), "\\u0001");
}

}  // namespace
}  // namespace perfcloud::exp
