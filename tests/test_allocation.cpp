#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "hw/allocation.hpp"
#include "hw/tenant.hpp"
#include "sim/rng.hpp"

namespace perfcloud::hw {
namespace {

constexpr double kBig = 1e18;

TEST(WeightedFairAllocate, EmptyClaims) {
  EXPECT_TRUE(weighted_fair_allocate(10.0, {}).empty());
}

TEST(WeightedFairAllocate, UndersubscribedEveryoneSatisfied) {
  const std::vector<Claim> claims = {{2.0, 1.0, kBig}, {3.0, 1.0, kBig}};
  const auto g = weighted_fair_allocate(10.0, claims);
  EXPECT_DOUBLE_EQ(g[0], 2.0);
  EXPECT_DOUBLE_EQ(g[1], 3.0);
}

TEST(WeightedFairAllocate, OversubscribedEqualWeightsSplitEvenly) {
  const std::vector<Claim> claims = {{10.0, 1.0, kBig}, {10.0, 1.0, kBig}};
  const auto g = weighted_fair_allocate(10.0, claims);
  EXPECT_DOUBLE_EQ(g[0], 5.0);
  EXPECT_DOUBLE_EQ(g[1], 5.0);
}

TEST(WeightedFairAllocate, WeightsProportionalWhenUnsatisfied) {
  const std::vector<Claim> claims = {{100.0, 3.0, kBig}, {100.0, 1.0, kBig}};
  const auto g = weighted_fair_allocate(8.0, claims);
  EXPECT_DOUBLE_EQ(g[0], 6.0);
  EXPECT_DOUBLE_EQ(g[1], 2.0);
}

TEST(WeightedFairAllocate, SurplusRedistributedToHungry) {
  // First claimant needs little; its leftover share goes to the second.
  const std::vector<Claim> claims = {{1.0, 1.0, kBig}, {100.0, 1.0, kBig}};
  const auto g = weighted_fair_allocate(10.0, claims);
  EXPECT_DOUBLE_EQ(g[0], 1.0);
  EXPECT_DOUBLE_EQ(g[1], 9.0);
}

TEST(WeightedFairAllocate, CapsBindBeforeDemand) {
  const std::vector<Claim> claims = {{100.0, 1.0, 2.0}, {100.0, 1.0, kBig}};
  const auto g = weighted_fair_allocate(10.0, claims);
  EXPECT_DOUBLE_EQ(g[0], 2.0);
  EXPECT_DOUBLE_EQ(g[1], 8.0);
}

TEST(WeightedFairAllocate, ZeroCapGetsNothing) {
  const std::vector<Claim> claims = {{5.0, 1.0, 0.0}, {5.0, 1.0, kBig}};
  const auto g = weighted_fair_allocate(4.0, claims);
  EXPECT_DOUBLE_EQ(g[0], 0.0);
  EXPECT_DOUBLE_EQ(g[1], 4.0);
}

TEST(WeightedFairAllocate, ZeroDemandGetsNothing) {
  const std::vector<Claim> claims = {{0.0, 1.0, kBig}, {5.0, 1.0, kBig}};
  const auto g = weighted_fair_allocate(10.0, claims);
  EXPECT_DOUBLE_EQ(g[0], 0.0);
  EXPECT_DOUBLE_EQ(g[1], 5.0);
}

TEST(WeightedFairAllocate, ZeroCapacity) {
  const std::vector<Claim> claims = {{5.0, 1.0, kBig}};
  const auto g = weighted_fair_allocate(0.0, claims);
  EXPECT_DOUBLE_EQ(g[0], 0.0);
}

TEST(WeightedFairAllocate, ThreeTierWaterfill) {
  // capacity 12, equal weights: fair share 4; A capped at 1 -> surplus to
  // B and C; B needs only 5, C soaks the rest.
  const std::vector<Claim> claims = {{10.0, 1.0, 1.0}, {5.0, 1.0, kBig}, {100.0, 1.0, kBig}};
  const auto g = weighted_fair_allocate(12.0, claims);
  EXPECT_DOUBLE_EQ(g[0], 1.0);
  EXPECT_DOUBLE_EQ(g[1], 5.0);
  EXPECT_DOUBLE_EQ(g[2], 6.0);
}

// Property-based sweep over random claim sets.
class AllocationProperties : public ::testing::TestWithParam<int> {};

TEST_P(AllocationProperties, InvariantsHold) {
  sim::Rng rng(static_cast<std::uint64_t>(GetParam()) * 977 + 5);
  const int n = 1 + static_cast<int>(rng.uniform_int(0, 9));
  std::vector<Claim> claims;
  for (int i = 0; i < n; ++i) {
    Claim c;
    c.demand = rng.uniform(0.0, 20.0);
    c.weight = rng.uniform(0.1, 5.0);
    c.cap = rng.bernoulli(0.3) ? rng.uniform(0.0, 10.0) : kBig;
    claims.push_back(c);
  }
  const double capacity = rng.uniform(0.0, 40.0);
  const auto g = weighted_fair_allocate(capacity, claims);

  ASSERT_EQ(g.size(), claims.size());
  double total = 0.0;
  double effective_demand = 0.0;
  for (std::size_t i = 0; i < g.size(); ++i) {
    const double want = std::min(claims[i].demand, claims[i].cap);
    EXPECT_GE(g[i], -1e-9);
    EXPECT_LE(g[i], want + 1e-9);
    total += g[i];
    effective_demand += want;
  }
  // Total never exceeds capacity.
  EXPECT_LE(total, capacity + 1e-6);
  // Work conservation: total == min(capacity, total effective demand).
  EXPECT_NEAR(total, std::min(capacity, effective_demand), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(RandomClaims, AllocationProperties, ::testing::Range(0, 40));

}  // namespace
}  // namespace perfcloud::hw
