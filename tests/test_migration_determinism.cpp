// Golden-trace gate for the migration path: a packed-placement scenario
// where escalation actually fires and live migrations (pre-copy, page-stream
// inflow, stop-and-copy pause, handoff, node-manager state retirement) are
// in flight while jobs run must produce EXACTLY the same results for any
// shard count, either claim discipline, and sync or async emission.
// Migrations mutate cross-host state (two hypervisors, the registry, every
// listener) — precisely the machinery with the most ways to go
// schedule-dependent, hence its own golden gate next to the general one in
// test_shard_determinism.cpp.
#include <gtest/gtest.h>

#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "exp/cluster.hpp"
#include "exp/summary.hpp"
#include "workloads/benchmarks.hpp"

namespace perfcloud {
namespace {

/// Everything observable about one run, flattened for exact comparison.
struct RunTrace {
  double final_time_s = 0.0;
  std::vector<double> jcts;
  long migrations_started = 0;
  long migrations_completed = 0;
  // Final placement: (vm id, host) in registry order.
  std::vector<std::pair<int, std::string>> placement;
  // (time, value) samples from every inspected series, concatenated in a
  // fixed order. Exact double equality is intentional.
  std::vector<std::pair<double, double>> samples;
  // EventSink output files, byte for byte (empty when no sink was attached).
  std::string trace_csv;
  std::string events_jsonl;

  bool operator==(const RunTrace&) const = default;
};

std::string slurp(const std::string& path) {
  std::ifstream f(path);
  std::ostringstream os;
  os << f.rdbuf();
  return os.str();
}

void append_series(RunTrace& trace, const sim::TimeSeries& s) {
  for (std::size_t i = 0; i < s.size(); ++i) {
    trace.samples.emplace_back(s.time(i).seconds(), s.value(i));
  }
}

RunTrace run_scenario(unsigned shards, const std::string& sink_tag = "",
                      bool sink_async = true,
                      sim::ShardSchedule schedule = sim::ShardSchedule::kWorkStealing) {
  exp::ClusterParams p;
  p.hosts = 4;
  p.workers = 6;
  p.seed = 77;
  p.shards = shards;
  p.schedule = schedule;
  p.placement = exp::Placement::kPacked;  // all six workers land on host-0
  p.migration = {.bandwidth_bps = 2.0e9, .downtime_s = 0.25};
  exp::Cluster c = exp::make_cluster(p);

  // A rival high-priority application squarely on the packed host: the
  // first control interval detects the collision and escalates, so live
  // migrations are in flight while the first job runs.
  virt::VmConfig rival;
  rival.priority = virt::Priority::kHigh;
  rival.app_id = "spark";
  rival.vcpus = 2;
  const int rival0 = c.cloud->boot_vm("host-0", rival).id();
  c.cloud->boot_vm("host-0", rival);
  const int fio = exp::add_fio(
      c, "host-0", wl::FioRandomRead::Params{.duration_s = 300.0, .start_s = 30.0});

  core::PerfCloudConfig cfg;
  cfg.escalate_app_collisions = true;
  exp::enable_perfcloud(c, cfg);

  std::unique_ptr<exp::EventSink> sink;
  std::string csv_path;
  std::string jsonl_path;
  exp::EventSink::SourceId summary_src = 0;
  if (!sink_tag.empty()) {
    csv_path = "/tmp/perfcloud_migr_sink_" + sink_tag + ".csv";
    jsonl_path = "/tmp/perfcloud_migr_sink_" + sink_tag + ".jsonl";
    sink = std::make_unique<exp::EventSink>(exp::EventSink::Options{
        .trace_csv_path = csv_path, .events_jsonl_path = jsonl_path, .async = sink_async});
    exp::attach_sink(c, *sink);
    summary_src = sink->add_event_source("run");
  }

  std::vector<wl::JobId> ids;
  const std::vector<std::pair<std::string, double>> submissions = {{"terasort", 0.0},
                                                                   {"wordcount", 60.0}};
  for (const auto& [name, at] : submissions) {
    const wl::JobSpec spec = wl::make_benchmark(name, 8);
    c.engine->at(sim::SimTime(at),
                 [&c, &ids, spec](sim::SimTime) { ids.push_back(c.framework->submit(spec)); });
  }
  c.engine->run_while(
      [&] { return ids.size() < submissions.size() || !c.framework->all_done(); },
      sim::SimTime(4000.0));

  RunTrace trace;
  trace.final_time_s = c.engine->now().seconds();
  trace.migrations_started = c.cloud->migrations_started();
  trace.migrations_completed = c.cloud->migrations_completed();
  for (const cloud::VmRecord& r : c.cloud->all_vms()) {
    trace.placement.emplace_back(r.id, r.host);
  }
  for (const wl::JobId id : ids) {
    const wl::Job* job = c.framework->find_job(id);
    trace.jcts.push_back(job != nullptr && job->completed() ? job->jct() : -1.0);
  }
  for (std::size_t h = 0; h < c.hosts.size(); ++h) {
    core::NodeManager& nm = c.node_manager(h);
    append_series(trace, nm.io_signal(p.app_id));
    append_series(trace, nm.cpi_signal(p.app_id));
    append_series(trace, nm.io_signal("spark"));
    append_series(trace, nm.monitor().io_throughput_series(fio));
    append_series(trace, nm.monitor().io_throughput_series(rival0));
    append_series(trace, nm.io_cap_series(fio));
  }
  if (sink != nullptr) {
    exp::record(*sink, summary_src, exp::summarize(*c.framework));
    sink->close();
    trace.trace_csv = slurp(csv_path);
    trace.events_jsonl = slurp(jsonl_path);
  }
  return trace;
}

TEST(MigrationDeterminism, TraceIsIdenticalForAnyShardCount) {
  const RunTrace sequential = run_scenario(1);

  // The scenario must actually exercise what it gates on: packed placement
  // caused a collision, the escalation moved the rival app through real
  // (timed) migrations, and the jobs still completed.
  EXPECT_GE(sequential.migrations_started, 2);
  EXPECT_GE(sequential.migrations_completed, 2);
  for (const double jct : sequential.jcts) EXPECT_GT(jct, 0.0);
  EXPECT_FALSE(sequential.samples.empty());

  const RunTrace sharded = run_scenario(4);
  EXPECT_EQ(sequential, sharded);

  // Run-to-run determinism of the parallel path itself.
  EXPECT_EQ(run_scenario(4), sharded);
}

TEST(MigrationDeterminism, TraceIsIdenticalAcrossSchedulers) {
  const RunTrace ws = run_scenario(4, "", true, sim::ShardSchedule::kWorkStealing);
  const RunTrace st = run_scenario(4, "", true, sim::ShardSchedule::kStatic);
  EXPECT_GE(ws.migrations_completed, 2);
  EXPECT_EQ(ws, st);
  EXPECT_EQ(run_scenario(1, "", true, sim::ShardSchedule::kStatic), ws);
}

TEST(MigrationDeterminism, SinkFilesAreIdenticalAcrossModesAndShardCounts) {
  const RunTrace plain = run_scenario(1);
  const RunTrace sync1 = run_scenario(1, "sync1", /*sink_async=*/false);
  const RunTrace async4 = run_scenario(4, "async4", /*sink_async=*/true);

  // The migration lifecycle actually reached the sink.
  EXPECT_NE(sync1.events_jsonl.find("migrate_start vm="), std::string::npos);
  EXPECT_NE(sync1.events_jsonl.find("migrate vm="), std::string::npos);
  EXPECT_NE(sync1.events_jsonl.find("escalation host="), std::string::npos);

  // Observation must not change the observed.
  RunTrace sim_only = sync1;
  sim_only.trace_csv.clear();
  sim_only.events_jsonl.clear();
  EXPECT_EQ(sim_only, plain);

  EXPECT_EQ(async4.trace_csv, sync1.trace_csv);
  EXPECT_EQ(async4.events_jsonl, sync1.events_jsonl);
}

}  // namespace
}  // namespace perfcloud
