#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "sim/rng.hpp"
#include "sim/stats.hpp"

namespace perfcloud::sim {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(RunningStats, SingleSample) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 5.0);
  EXPECT_EQ(s.max(), 5.0);
}

TEST(RunningStats, KnownBatch) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeEqualsCombined) {
  Rng r(1);
  RunningStats a;
  RunningStats b;
  RunningStats all;
  for (int i = 0; i < 500; ++i) {
    const double x = r.normal(3.0, 2.0);
    a.add(x);
    all.add(x);
  }
  for (int i = 0; i < 300; ++i) {
    const double x = r.normal(-1.0, 0.5);
    b.add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmptyIsIdentity) {
  RunningStats a;
  a.add(1.0);
  a.add(2.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  RunningStats b;
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.5);
}

TEST(RunningStats, ResetClearsEverything) {
  RunningStats s;
  s.add(42.0);
  s.reset();
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
}

TEST(RunningStats, NumericallyStableWithLargeOffset) {
  RunningStats s;
  const double offset = 1e9;
  for (double x : {offset + 1.0, offset + 2.0, offset + 3.0}) s.add(x);
  EXPECT_NEAR(s.variance(), 1.0, 1e-6);
}

TEST(BatchStats, MeanAndStddev) {
  const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(mean_of(xs), 5.0);
  EXPECT_NEAR(stddev_of(xs), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_NEAR(population_stddev_of(xs), 2.0, 1e-12);
}

TEST(BatchStats, DegenerateInputs) {
  EXPECT_EQ(mean_of({}), 0.0);
  EXPECT_EQ(stddev_of({}), 0.0);
  const std::vector<double> one = {3.0};
  EXPECT_EQ(stddev_of(one), 0.0);
  EXPECT_EQ(population_stddev_of(one), 0.0);
}

TEST(BatchStats, StddevOfConstantIsZero) {
  const std::vector<double> xs(100, 7.7);
  EXPECT_NEAR(stddev_of(xs), 0.0, 1e-12);
}

TEST(Percentile, InterpolatesLinearly) {
  const std::vector<double> xs = {10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(percentile_of(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile_of(xs, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(percentile_of(xs, 0.5), 25.0);
  EXPECT_DOUBLE_EQ(percentile_of(xs, 1.0 / 3.0), 20.0);
}

TEST(Percentile, UnsortedInputIsHandled) {
  const std::vector<double> xs = {40.0, 10.0, 30.0, 20.0};
  EXPECT_DOUBLE_EQ(percentile_of(xs, 0.5), 25.0);
}

TEST(Percentile, EmptyReturnsZero) { EXPECT_EQ(percentile_of({}, 0.5), 0.0); }

TEST(BoxStats, FiveNumberSummary) {
  std::vector<double> xs;
  for (int i = 1; i <= 101; ++i) xs.push_back(static_cast<double>(i));
  const BoxStats b = box_stats_of(xs);
  EXPECT_EQ(b.count, 101u);
  EXPECT_DOUBLE_EQ(b.min, 1.0);
  EXPECT_DOUBLE_EQ(b.q1, 26.0);
  EXPECT_DOUBLE_EQ(b.median, 51.0);
  EXPECT_DOUBLE_EQ(b.q3, 76.0);
  EXPECT_DOUBLE_EQ(b.max, 101.0);
  EXPECT_DOUBLE_EQ(b.mean, 51.0);
}

TEST(BoxStats, EmptyIsAllZero) {
  const BoxStats b = box_stats_of({});
  EXPECT_EQ(b.count, 0u);
  EXPECT_EQ(b.median, 0.0);
}

TEST(Histogram, BinningAgainstEdges) {
  Histogram h({0.1, 0.3});  // bins: (-inf,0.1), [0.1,0.3), [0.3,inf)
  h.add(0.05);
  h.add(0.1);
  h.add(0.2);
  h.add(0.3);
  h.add(5.0);
  EXPECT_EQ(h.bin_count(), 3u);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(1), 2u);
  EXPECT_EQ(h.count(2), 2u);
  EXPECT_EQ(h.total(), 5u);
  EXPECT_DOUBLE_EQ(h.fraction(1), 0.4);
}

TEST(Histogram, FractionOfEmptyIsZero) {
  Histogram h({1.0});
  EXPECT_EQ(h.fraction(0), 0.0);
}

TEST(Histogram, RejectsUnsortedEdges) {
  EXPECT_THROW(Histogram({2.0, 1.0}), std::invalid_argument);
}

// Property sweep: stddev_of agrees with RunningStats on random batches.
class StatsAgreement : public ::testing::TestWithParam<int> {};

TEST_P(StatsAgreement, StreamingMatchesBatch) {
  Rng r(static_cast<std::uint64_t>(GetParam()));
  const int n = 2 + GetParam() * 13 % 97;
  std::vector<double> xs;
  RunningStats s;
  for (int i = 0; i < n; ++i) {
    const double x = r.uniform(-50.0, 50.0);
    xs.push_back(x);
    s.add(x);
  }
  EXPECT_NEAR(s.mean(), mean_of(xs), 1e-9);
  EXPECT_NEAR(s.stddev(), stddev_of(xs), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(RandomBatches, StatsAgreement, ::testing::Range(1, 21));

}  // namespace
}  // namespace perfcloud::sim
