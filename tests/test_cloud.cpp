#include <gtest/gtest.h>

#include "cloud/cloud_manager.hpp"
#include "cloud/placement.hpp"
#include "sim/engine.hpp"

namespace perfcloud::cloud {
namespace {

hw::ServerConfig host_cfg(const std::string& name) {
  hw::ServerConfig cfg;
  cfg.name = name;
  return cfg;
}

TEST(CloudManager, AddAndQueryHosts) {
  sim::Engine e;
  CloudManager cloud(e);
  cloud.add_host(host_cfg("h0"));
  cloud.add_host(host_cfg("h1"));
  EXPECT_EQ(cloud.host_count(), 2u);
  EXPECT_EQ(cloud.host_names(), (std::vector<std::string>{"h0", "h1"}));
  EXPECT_NO_THROW(static_cast<void>(cloud.host("h1")));
  EXPECT_THROW(static_cast<void>(cloud.host("nope")), std::invalid_argument);
}

TEST(CloudManager, DuplicateHostThrows) {
  sim::Engine e;
  CloudManager cloud(e);
  cloud.add_host(host_cfg("h0"));
  EXPECT_THROW(cloud.add_host(host_cfg("h0")), std::invalid_argument);
}

TEST(CloudManager, BootAssignsUniqueIds) {
  sim::Engine e;
  CloudManager cloud(e);
  cloud.add_host(host_cfg("h0"));
  const virt::Vm& a = cloud.boot_vm("h0", virt::VmConfig{.name = "a"});
  const virt::Vm& b = cloud.boot_vm("h0", virt::VmConfig{.name = "b"});
  EXPECT_NE(a.id(), b.id());
}

TEST(CloudManager, RegistryReflectsBootedVms) {
  sim::Engine e;
  CloudManager cloud(e);
  cloud.add_host(host_cfg("h0"));
  cloud.add_host(host_cfg("h1"));
  virt::VmConfig high;
  high.priority = virt::Priority::kHigh;
  high.app_id = "hadoop";
  cloud.boot_vm("h0", high);
  cloud.boot_vm("h1", high);
  cloud.boot_vm("h0", virt::VmConfig{.name = "fio"});

  const auto on_h0 = cloud.vms_on_host("h0");
  EXPECT_EQ(on_h0.size(), 2u);
  EXPECT_EQ(cloud.all_vms().size(), 3u);
  EXPECT_EQ(cloud.hosts_of_app("hadoop"), (std::vector<std::string>{"h0", "h1"}));
  EXPECT_TRUE(cloud.hosts_of_app("nothing").empty());
}

TEST(CloudManager, StartTickingRunsHypervisors) {
  sim::Engine e;
  CloudManager cloud(e);
  cloud.add_host(host_cfg("h0"));
  virt::Vm& vm = cloud.boot_vm("h0", virt::VmConfig{.vcpus = 2});

  class Burner : public virt::GuestWorkload {
   public:
    hw::TenantDemand demand(sim::SimTime, double dt) override {
      hw::TenantDemand d;
      d.cpu_core_seconds = 1.0 * dt;
      return d;
    }
    void apply(const hw::TenantGrant&, sim::SimTime, double) override {}
    [[nodiscard]] bool finished(sim::SimTime) const override { return false; }
    [[nodiscard]] std::string_view name() const override { return "burner"; }
  };
  vm.attach(std::make_unique<Burner>());

  cloud.start_ticking(0.1);
  e.run_until(sim::SimTime(1.0));
  EXPECT_NEAR(vm.cgroup().stats().cpu_time_s, 1.0, 1e-6);
}

TEST(CloudManager, StartTickingTwiceThrows) {
  sim::Engine e;
  CloudManager cloud(e);
  cloud.add_host(host_cfg("h0"));
  cloud.start_ticking(0.1);
  EXPECT_THROW(cloud.start_ticking(0.1), std::logic_error);
}

TEST(Placement, SpreadIsRoundRobin) {
  sim::Engine e;
  CloudManager cloud(e);
  cloud.add_host(host_cfg("h0"));
  cloud.add_host(host_cfg("h1"));
  cloud.add_host(host_cfg("h2"));
  const auto ids = place_spread(cloud, cloud.host_names(), 7, virt::VmConfig{}, "app");
  EXPECT_EQ(ids.size(), 7u);
  EXPECT_EQ(cloud.vms_on_host("h0").size(), 3u);
  EXPECT_EQ(cloud.vms_on_host("h1").size(), 2u);
  EXPECT_EQ(cloud.vms_on_host("h2").size(), 2u);
  for (const auto& r : cloud.all_vms()) EXPECT_EQ(r.app_id, "app");
}

TEST(Placement, RandomCoversHostsEventually) {
  sim::Engine e;
  CloudManager cloud(e);
  for (int i = 0; i < 4; ++i) cloud.add_host(host_cfg("h" + std::to_string(i)));
  sim::Rng rng(3);
  place_random(cloud, cloud.host_names(), 100, virt::VmConfig{}, "ant", rng);
  for (int i = 0; i < 4; ++i) {
    EXPECT_GT(cloud.vms_on_host("h" + std::to_string(i)).size(), 10u);
  }
}

TEST(Placement, EmptyHostListThrows) {
  sim::Engine e;
  CloudManager cloud(e);
  sim::Rng rng(1);
  EXPECT_THROW(place_spread(cloud, {}, 1, virt::VmConfig{}, "a"), std::invalid_argument);
  EXPECT_THROW(place_random(cloud, {}, 1, virt::VmConfig{}, "a", rng), std::invalid_argument);
}

}  // namespace
}  // namespace perfcloud::cloud
