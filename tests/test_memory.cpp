#include <gtest/gtest.h>

#include "hw/memory.hpp"
#include "sim/stats.hpp"

namespace perfcloud::hw {
namespace {

MemoryConfig tight_llc() {
  MemoryConfig cfg;
  cfg.llc_size = 32.0 * 1024 * 1024;
  cfg.bw_capacity = 50.0e9;
  cfg.cpi_jitter_sigma = 0.0;  // deterministic for CPI assertions
  return cfg;
}

MemorySystem make_mem(MemoryConfig cfg = tight_llc(), std::uint64_t seed = 1) {
  return MemorySystem(cfg, sim::Rng(seed));
}

TenantDemand mem_demand(sim::Bytes footprint, double bw_per_cpu, double cpi_base = 1.0,
                        double sens = 1.0) {
  TenantDemand d;
  d.llc_footprint = footprint;
  d.mem_bw_per_cpu_sec = bw_per_cpu;
  d.cpi_base = cpi_base;
  d.mem_sensitivity = sens;
  return d;
}

TEST(MemorySystem, FittingWorkingSetHasBaseCpi) {
  MemorySystem mem = make_mem();
  const std::vector<TenantDemand> d = {mem_demand(8.0 * 1024 * 1024, 0.5e9, 1.2)};
  const std::vector<double> cpu = {1.0};
  const auto g = mem.compute(1.0, d, cpu);
  EXPECT_DOUBLE_EQ(g[0].miss_fraction, 0.0);
  EXPECT_NEAR(g[0].cpi, 1.2, 1e-9);
}

TEST(MemorySystem, OversizedWorkingSetMisses) {
  MemorySystem mem = make_mem();
  const std::vector<TenantDemand> d = {mem_demand(64.0 * 1024 * 1024, 0.5e9)};
  const std::vector<double> cpu = {1.0};
  const auto g = mem.compute(1.0, d, cpu);
  // LLC-competing set = 64 MiB - 2.5 MiB private; 32 MiB of it fits.
  const double llc_set = (64.0 - 2.5) * 1024 * 1024;
  EXPECT_NEAR(g[0].miss_fraction, 1.0 - 32.0 * 1024 * 1024 / llc_set, 1e-9);
  EXPECT_GT(g[0].cpi, 1.0);
}

TEST(MemorySystem, PrivateCacheResidentSetNeverMisses) {
  MemorySystem mem = make_mem();
  // A 2 MiB working set lives in L1/L2: no LLC competition even next to a
  // monster streamer.
  const std::vector<TenantDemand> d = {mem_demand(2.0 * 1024 * 1024, 0.05e9),
                                       mem_demand(1e12, 8.0e9)};
  const std::vector<double> cpu = {1.0, 8.0};
  const auto g = mem.compute(1.0, d, cpu);
  EXPECT_DOUBLE_EQ(g[0].miss_fraction, 0.0);
}

TEST(MemorySystem, SmallConsumerBandwidthNeverSqueezed) {
  MemorySystem mem = make_mem();
  // Fair bandwidth partitioning: the tiny consumer gets its full demand
  // even when streamers oversubscribe the controller.
  const std::vector<TenantDemand> d = {mem_demand(2.0 * 1024 * 1024, 0.05e9),
                                       mem_demand(1e12, 40.0e9)};
  const std::vector<double> cpu = {1.0, 8.0};
  const auto g = mem.compute(1.0, d, cpu);
  const double small_demand = 1.0 * 0.05e9 * 0.1;  // traffic floor applies
  EXPECT_NEAR(g[0].bw_bytes, small_demand, 1.0);
}

TEST(MemorySystem, BigNeighbourSqueezesShare) {
  MemorySystem mem = make_mem();
  // Tenant 0 fits alone; a huge tenant walks in and takes most of the LLC.
  const std::vector<TenantDemand> d = {mem_demand(16.0 * 1024 * 1024, 0.5e9),
                                       mem_demand(16.0 * 1024 * 1024 * 1024, 8.0e9)};
  const std::vector<double> cpu = {1.0, 8.0};
  const auto g = mem.compute(1.0, d, cpu);
  EXPECT_GT(g[0].miss_fraction, 0.9);
  EXPECT_GT(g[0].cpi, 1.4);
}

TEST(MemorySystem, IdleTenantHoldsNoCache) {
  MemorySystem mem = make_mem();
  const std::vector<TenantDemand> d = {mem_demand(16.0 * 1024 * 1024, 0.5e9),
                                       mem_demand(1e12, 8.0e9)};
  const std::vector<double> cpu = {1.0, 0.0};  // the monster is idle
  const auto g = mem.compute(1.0, d, cpu);
  EXPECT_DOUBLE_EQ(g[0].miss_fraction, 0.0);
  EXPECT_DOUBLE_EQ(g[1].llc_misses, 0.0);
}

TEST(MemorySystem, BandwidthSaturationInflatesCpi) {
  MemoryConfig cfg = tight_llc();
  MemorySystem calm = make_mem(cfg);
  MemorySystem busy = make_mem(cfg);
  const TenantDemand victim = mem_demand(4.0 * 1024 * 1024, 1.0e9, 1.0, 1.5);
  const TenantDemand hog = mem_demand(1e12, 10.0e9);

  const std::vector<double> cpu1 = {1.0};
  const auto g1 = calm.compute(1.0, {&victim, 1}, cpu1);

  const std::vector<TenantDemand> both = {victim, hog};
  const std::vector<double> cpu2 = {1.0, 8.0};
  const auto g2 = busy.compute(1.0, both, cpu2);

  EXPECT_GT(g2[0].cpi, g1[0].cpi * 1.2);
  EXPECT_GT(busy.last_bw_utilization(), 1.0);
}

TEST(MemorySystem, TrafficScaledDownAtSaturation) {
  MemorySystem mem = make_mem();
  const std::vector<TenantDemand> d = {mem_demand(1e12, 10.0e9), mem_demand(1e12, 10.0e9)};
  const std::vector<double> cpu = {8.0, 8.0};
  const auto g = mem.compute(1.0, d, cpu);
  const double total_bw = g[0].bw_bytes + g[1].bw_bytes;
  EXPECT_LE(total_bw, 50.0e9 + 1e6);
}

TEST(MemorySystem, MissesTrackTraffic) {
  MemorySystem mem = make_mem();
  const std::vector<TenantDemand> d = {mem_demand(1e9, 2.0e9)};
  const std::vector<double> cpu = {2.0};
  const auto g = mem.compute(1.0, d, cpu);
  EXPECT_NEAR(g[0].llc_misses, g[0].bw_bytes / 64.0, 1e-6);
  EXPECT_GT(g[0].llc_misses, 0.0);
}

TEST(MemorySystem, SensitivityScalesPenalty) {
  MemorySystem mem = make_mem();
  const std::vector<TenantDemand> d = {mem_demand(1e9, 1.0e9, 1.0, 0.5),
                                       mem_demand(1e9, 1.0e9, 1.0, 2.0)};
  const std::vector<double> cpu = {1.0, 1.0};
  const auto g = mem.compute(1.0, d, cpu);
  // Same miss fraction, different CPI inflation.
  EXPECT_NEAR(g[0].miss_fraction, g[1].miss_fraction, 1e-9);
  EXPECT_GT(g[1].cpi, g[0].cpi * 1.5);
}

TEST(MemorySystem, CpiJitterSpreadsUnderForeignPressureOnly) {
  MemoryConfig cfg = tight_llc();
  cfg.cpi_jitter_sigma = 0.35;
  const TenantDemand solo = mem_demand(4.0 * 1024 * 1024, 0.2e9);
  const TenantDemand hog = mem_demand(1e12, 10.0e9);

  MemorySystem alone = MemorySystem(cfg, sim::Rng(3));
  MemorySystem crowded = MemorySystem(cfg, sim::Rng(3));
  sim::RunningStats cpi_alone;
  sim::RunningStats cpi_crowded;
  for (int t = 0; t < 300; ++t) {
    const std::vector<double> cpu1 = {1.0};
    cpi_alone.add(alone.compute(0.1, {&solo, 1}, cpu1)[0].cpi);
    const std::vector<TenantDemand> both = {solo, hog};
    const std::vector<double> cpu2 = {1.0, 8.0};
    cpi_crowded.add(crowded.compute(0.1, both, cpu2)[0].cpi);
  }
  EXPECT_LT(cpi_alone.stddev(), 0.02);
  EXPECT_GT(cpi_crowded.stddev(), 5.0 * cpi_alone.stddev() + 0.05);
}

TEST(MemorySystem, EmptyTenantsSafe) {
  MemorySystem mem = make_mem();
  const auto g = mem.compute(1.0, {}, {});
  EXPECT_TRUE(g.empty());
}

}  // namespace
}  // namespace perfcloud::hw
