// Cross-cutting integration tests: determinism, the paper's qualitative
// claims at small scale, and multi-host behaviour.
#include <gtest/gtest.h>

#include "baselines/late.hpp"
#include "exp/cluster.hpp"
#include "workloads/benchmarks.hpp"

namespace perfcloud {
namespace {

exp::Cluster cluster_with(std::uint64_t seed, int workers, int hosts = 1) {
  exp::ClusterParams p;
  p.workers = workers;
  p.hosts = hosts;
  p.seed = seed;
  return exp::make_cluster(p);
}

TEST(Integration, SameSeedSameResult) {
  auto run = [](std::uint64_t seed) {
    exp::Cluster c = cluster_with(seed, 6);
    exp::add_fio(c, "host-0", wl::FioRandomRead::Params{.start_s = 10.0});
    exp::enable_perfcloud(c, core::PerfCloudConfig{});
    return exp::run_job(c, wl::make_terasort(10, 10));
  };
  EXPECT_DOUBLE_EQ(run(99), run(99));
  // Different seeds will generally differ (jitter paths diverge).
  EXPECT_TRUE(true);
}

TEST(Integration, InterferenceDegradesAndPerfCloudRecovers) {
  // Long enough that the control loop (5 s sampling, >= 3 samples to
  // identify) has room to act within the job.
  const wl::JobSpec job = wl::make_terasort(20, 20);

  exp::Cluster alone = cluster_with(7, 6);
  const double jct_alone = exp::run_job(alone, job);

  exp::Cluster noisy = cluster_with(7, 6);
  exp::add_fio(noisy, "host-0", wl::FioRandomRead::Params{.start_s = 10.0});
  const double jct_noisy = exp::run_job(noisy, job);

  exp::Cluster guarded = cluster_with(7, 6);
  exp::add_fio(guarded, "host-0", wl::FioRandomRead::Params{.start_s = 10.0});
  exp::enable_perfcloud(guarded, core::PerfCloudConfig{});
  const double jct_guarded = exp::run_job(guarded, job);

  EXPECT_GT(jct_noisy, jct_alone);
  EXPECT_LT(jct_guarded, jct_noisy);
  EXPECT_GE(jct_guarded, 0.9 * jct_alone);  // not faster than uncontended
}

TEST(Integration, SparkSuffersMoreFromMemoryContention) {
  // Paper §III-A.2: Spark is hit harder than MapReduce by LLC/bandwidth
  // contention because it iterates over in-memory data.
  auto degradation = [](const wl::JobSpec& job, std::uint64_t seed) {
    exp::Cluster alone = cluster_with(seed, 6);
    const double base = exp::run_job(alone, job);
    exp::Cluster noisy = cluster_with(seed, 6);
    exp::add_stream(noisy, "host-0", wl::StreamBenchmark::Params{.threads = 16});
    return exp::run_job(noisy, job) / base;
  };
  const double spark = degradation(wl::make_spark_logreg(12, 6), 11);
  const double mapreduce = degradation(wl::make_wordcount(12, 6), 11);
  EXPECT_GT(spark, 1.1);
  EXPECT_GT(spark, mapreduce);
}

TEST(Integration, FioHurtsMapReduceMoreThanSysbenchCpuDoes) {
  const wl::JobSpec job = wl::make_terasort(10, 10);
  exp::Cluster alone = cluster_with(21, 6);
  const double base = exp::run_job(alone, job);

  exp::Cluster with_fio = cluster_with(21, 6);
  exp::add_fio(with_fio, "host-0");
  const double fio_jct = exp::run_job(with_fio, job);

  exp::Cluster with_cpu = cluster_with(21, 6);
  exp::add_sysbench_cpu(with_cpu, "host-0");
  const double cpu_jct = exp::run_job(with_cpu, job);

  EXPECT_GT(fio_jct / base, 1.2);
  EXPECT_LT(cpu_jct / base, 1.15);  // plenty of spare cores: no real harm
}

TEST(Integration, MultiHostClusterOnlyThrottlesAffectedHost) {
  exp::Cluster c = cluster_with(31, 8, /*hosts=*/2);
  const int fio = exp::add_fio(c, "host-1", wl::FioRandomRead::Params{.start_s = 10.0});
  exp::enable_perfcloud(c, core::PerfCloudConfig{});
  exp::run_job(c, wl::make_terasort(16, 16));
  // Node manager 1 (host-1) saw the antagonist; node manager 0 did not.
  EXPECT_TRUE(c.node_manager(0).io_cap_series(fio).empty());
  EXPECT_FALSE(c.node_manager(1).io_cap_series(fio).empty());
}

TEST(Integration, ThrottledFioStillMakesProgress) {
  exp::Cluster c = cluster_with(41, 6);
  const int fio = exp::add_fio(c, "host-0", wl::FioRandomRead::Params{.start_s = 10.0});
  exp::enable_perfcloud(c, core::PerfCloudConfig{});
  exp::run_job(c, wl::make_terasort(12, 12));
  const auto* guest = dynamic_cast<const wl::FioRandomRead*>(c.vm(fio).guest());
  ASSERT_NE(guest, nullptr);
  EXPECT_GT(guest->achieved_iops(), 10.0);  // throttled, not strangled
}

TEST(Integration, LateHelpsAgainstAsymmetricSlowdown) {
  // With a straggler-inducing neighbour, LATE should beat doing nothing.
  auto run = [](bool late) {
    exp::Cluster c = cluster_with(51, 6);
    exp::add_stream(c, "host-0", wl::StreamBenchmark::Params{.threads = 16});
    if (late) {
      c.framework->set_speculator(std::make_unique<base::LateSpeculator>(
          base::LateSpeculator::Params{.min_runtime_s = 5.0}, 12));
    }
    return exp::run_job(c, wl::make_spark_logreg(10, 6));
  };
  const double without = run(false);
  const double with_late = run(true);
  // LATE is not guaranteed to win every time, but it should not be a
  // catastrophe, and on this straggler-heavy scenario it usually helps.
  EXPECT_LT(with_late, 1.15 * without);
}

TEST(Integration, EngineTimeAdvancesThroughFullScenario) {
  exp::Cluster c = cluster_with(61, 4);
  c.framework->submit(wl::make_wordcount(4, 2));
  const sim::SimTime end = exp::run_until_done(c, 600.0);
  EXPECT_GT(end.seconds(), 1.0);
  EXPECT_LT(end.seconds(), 600.0);
}

}  // namespace
}  // namespace perfcloud
