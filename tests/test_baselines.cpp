#include <gtest/gtest.h>

#include "baselines/dolly.hpp"
#include "baselines/late.hpp"
#include "baselines/scheme.hpp"
#include "baselines/static_cap.hpp"
#include "exp/cluster.hpp"
#include "workloads/benchmarks.hpp"

namespace perfcloud::base {
namespace {

TEST(Scheme, NamesAreUnique) {
  const Scheme all[] = {Scheme::kDefault, Scheme::kStatic,  Scheme::kLate,     Scheme::kDolly2,
                        Scheme::kDolly4,  Scheme::kDolly6, Scheme::kPerfCloud};
  std::vector<std::string> names;
  for (Scheme s : all) names.push_back(to_string(s));
  std::sort(names.begin(), names.end());
  EXPECT_EQ(std::unique(names.begin(), names.end()), names.end());
}

TEST(Scheme, DollyCloneCounts) {
  EXPECT_EQ(dolly_clones(Scheme::kDolly2), 2);
  EXPECT_EQ(dolly_clones(Scheme::kDolly4), 4);
  EXPECT_EQ(dolly_clones(Scheme::kDolly6), 6);
  EXPECT_EQ(dolly_clones(Scheme::kLate), 1);
}

TEST(DollySubmitter, SubmitsRequestedClones) {
  exp::ClusterParams p;
  p.workers = 6;
  exp::Cluster c = exp::make_cluster(p);
  DollySubmitter dolly(*c.framework, 4);
  EXPECT_EQ(dolly.clones(), 4);
  const auto ids = dolly.submit(wl::make_wordcount(3, 1));
  EXPECT_EQ(ids.size(), 4u);
  exp::run_until_done(c, 600.0);
  int completed = 0;
  for (const wl::JobId id : ids) {
    completed += c.framework->find_job(id)->completed() ? 1 : 0;
  }
  EXPECT_EQ(completed, 1);
}

TEST(StaticCaps, AppliedImmediately) {
  exp::ClusterParams p;
  p.workers = 2;
  exp::Cluster c = exp::make_cluster(p);
  const int fio = exp::add_fio(c, "host-0");
  apply_static_caps(*c.cloud, "host-0",
                    {StaticCap{.vm_id = fio, .io_bytes_per_sec = 1.0e5, .cpu_cores = 0.5}});
  EXPECT_DOUBLE_EQ(c.vm(fio).cgroup().blkio_throttle_bps(), 1.0e5);
  EXPECT_DOUBLE_EQ(c.vm(fio).cgroup().cpu_quota_cores(), 0.5);
}

TEST(StaticCaps, NoCapDimensionsUntouched) {
  exp::ClusterParams p;
  p.workers = 2;
  exp::Cluster c = exp::make_cluster(p);
  const int fio = exp::add_fio(c, "host-0");
  apply_static_caps(*c.cloud, "host-0", {StaticCap{.vm_id = fio, .io_bytes_per_sec = 5.0e5}});
  EXPECT_DOUBLE_EQ(c.vm(fio).cgroup().blkio_throttle_bps(), 5.0e5);
  EXPECT_EQ(c.vm(fio).cgroup().cpu_quota_cores(), hw::kNoCap);
}

// --- LATE ---

exp::Cluster straggler_cluster(std::uint64_t seed) {
  exp::ClusterParams p;
  p.workers = 6;
  p.seed = seed;
  exp::Cluster c = exp::make_cluster(p);
  // An unthrottled fio on the host makes tasks on it stragglers... but with
  // one host everything is slow; instead, a STREAM VM with a strong placement
  // asymmetry slows some VMs more than others, creating stragglers.
  exp::add_stream(c, "host-0", wl::StreamBenchmark::Params{.threads = 16});
  return c;
}

TEST(Late, SpeculatesOnSlowTasks) {
  exp::Cluster c = straggler_cluster(3);
  const int total_slots = 12;
  c.framework->set_speculator(std::make_unique<LateSpeculator>(
      LateSpeculator::Params{.speculative_cap = 0.25, .min_runtime_s = 5.0}, total_slots));
  const wl::JobId id = c.framework->submit(wl::make_spark_logreg(10, 5));
  exp::run_until_done(c, 1200.0);
  const wl::Job* job = c.framework->find_job(id);
  ASSERT_TRUE(job->completed());
  int speculative = 0;
  for (std::size_t s = 0; s < job->stage_count(); ++s) {
    for (const wl::TaskState& t : job->stage(s)) {
      for (const wl::AttemptRecord& a : t.attempts) speculative += a.speculative ? 1 : 0;
    }
  }
  EXPECT_GT(speculative, 0);
  EXPECT_LT(c.framework->utilization_efficiency(), 1.0);
}

TEST(Late, RespectsSpeculativeCap) {
  exp::Cluster c = straggler_cluster(5);
  // Cap of 0: LATE must never speculate.
  c.framework->set_speculator(std::make_unique<LateSpeculator>(
      LateSpeculator::Params{.speculative_cap = 0.0, .min_runtime_s = 1.0}, 12));
  const wl::JobId id = c.framework->submit(wl::make_terasort(8, 8));
  exp::run_until_done(c, 1200.0);
  const wl::Job* job = c.framework->find_job(id);
  for (std::size_t s = 0; s < job->stage_count(); ++s) {
    for (const wl::TaskState& t : job->stage(s)) {
      for (const wl::AttemptRecord& a : t.attempts) EXPECT_FALSE(a.speculative);
    }
  }
  EXPECT_DOUBLE_EQ(c.framework->utilization_efficiency(), 1.0);
}

TEST(Late, YoungTasksAreNotJudged) {
  LateSpeculator late(LateSpeculator::Params{.min_runtime_s = 1e9}, 12);
  exp::ClusterParams p;
  p.workers = 4;
  exp::Cluster c = exp::make_cluster(p);
  c.framework->submit(wl::make_terasort(4, 2));
  exp::run_for(c, 5.0);
  std::vector<const wl::Job*> jobs;
  for (const auto& j : c.framework->jobs()) jobs.push_back(j.get());
  EXPECT_TRUE(late.pick(jobs, c.engine->now(), 4).empty());
}

TEST(Late, EmptyJobListIsSafe) {
  LateSpeculator late(LateSpeculator::Params{}, 12);
  EXPECT_TRUE(late.pick({}, sim::SimTime(0.0), 4).empty());
}

}  // namespace
}  // namespace perfcloud::base
