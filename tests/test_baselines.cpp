#include <gtest/gtest.h>

#include <memory>
#include <utility>

#include "baselines/dolly.hpp"
#include "baselines/late.hpp"
#include "baselines/scheme.hpp"
#include "baselines/static_cap.hpp"
#include "exp/cluster.hpp"
#include "sim/rng.hpp"
#include "workloads/benchmarks.hpp"
#include "workloads/job.hpp"

namespace perfcloud::base {
namespace {

TEST(Scheme, NamesAreUnique) {
  const Scheme all[] = {Scheme::kDefault, Scheme::kStatic,  Scheme::kLate,     Scheme::kDolly2,
                        Scheme::kDolly4,  Scheme::kDolly6, Scheme::kPerfCloud};
  std::vector<std::string> names;
  for (Scheme s : all) names.push_back(to_string(s));
  std::sort(names.begin(), names.end());
  EXPECT_EQ(std::unique(names.begin(), names.end()), names.end());
}

TEST(Scheme, DollyCloneCounts) {
  EXPECT_EQ(dolly_clones(Scheme::kDolly2), 2);
  EXPECT_EQ(dolly_clones(Scheme::kDolly4), 4);
  EXPECT_EQ(dolly_clones(Scheme::kDolly6), 6);
  EXPECT_EQ(dolly_clones(Scheme::kLate), 1);
}

TEST(DollySubmitter, SubmitsRequestedClones) {
  exp::ClusterParams p;
  p.workers = 6;
  exp::Cluster c = exp::make_cluster(p);
  DollySubmitter dolly(*c.framework, 4);
  EXPECT_EQ(dolly.clones(), 4);
  const auto ids = dolly.submit(wl::make_wordcount(3, 1));
  EXPECT_EQ(ids.size(), 4u);
  exp::run_until_done(c, 600.0);
  int completed = 0;
  for (const wl::JobId id : ids) {
    completed += c.framework->find_job(id)->completed() ? 1 : 0;
  }
  EXPECT_EQ(completed, 1);
}

TEST(StaticCaps, AppliedImmediately) {
  exp::ClusterParams p;
  p.workers = 2;
  exp::Cluster c = exp::make_cluster(p);
  const int fio = exp::add_fio(c, "host-0");
  apply_static_caps(*c.cloud, "host-0",
                    {StaticCap{.vm_id = fio, .io_bytes_per_sec = 1.0e5, .cpu_cores = 0.5}});
  EXPECT_DOUBLE_EQ(c.vm(fio).cgroup().blkio_throttle_bps(), 1.0e5);
  EXPECT_DOUBLE_EQ(c.vm(fio).cgroup().cpu_quota_cores(), 0.5);
}

TEST(StaticCaps, NoCapDimensionsUntouched) {
  exp::ClusterParams p;
  p.workers = 2;
  exp::Cluster c = exp::make_cluster(p);
  const int fio = exp::add_fio(c, "host-0");
  apply_static_caps(*c.cloud, "host-0", {StaticCap{.vm_id = fio, .io_bytes_per_sec = 5.0e5}});
  EXPECT_DOUBLE_EQ(c.vm(fio).cgroup().blkio_throttle_bps(), 5.0e5);
  EXPECT_EQ(c.vm(fio).cgroup().cpu_quota_cores(), hw::kNoCap);
}

// --- LATE ---

exp::Cluster straggler_cluster(std::uint64_t seed) {
  exp::ClusterParams p;
  p.workers = 6;
  p.seed = seed;
  exp::Cluster c = exp::make_cluster(p);
  // An unthrottled fio on the host makes tasks on it stragglers... but with
  // one host everything is slow; instead, a STREAM VM with a strong placement
  // asymmetry slows some VMs more than others, creating stragglers.
  exp::add_stream(c, "host-0", wl::StreamBenchmark::Params{.threads = 16});
  return c;
}

TEST(Late, SpeculatesOnSlowTasks) {
  exp::Cluster c = straggler_cluster(3);
  const int total_slots = 12;
  c.framework->set_speculator(std::make_unique<LateSpeculator>(
      LateSpeculator::Params{.speculative_cap = 0.25, .min_runtime_s = 5.0}, total_slots));
  const wl::JobId id = c.framework->submit(wl::make_spark_logreg(10, 5));
  exp::run_until_done(c, 1200.0);
  const wl::Job* job = c.framework->find_job(id);
  ASSERT_TRUE(job->completed());
  int speculative = 0;
  for (std::size_t s = 0; s < job->stage_count(); ++s) {
    for (const wl::TaskState& t : job->stage(s)) {
      for (const wl::AttemptRecord& a : t.attempts) speculative += a.speculative ? 1 : 0;
    }
  }
  EXPECT_GT(speculative, 0);
  EXPECT_LT(c.framework->utilization_efficiency(), 1.0);
}

TEST(Late, RespectsSpeculativeCap) {
  exp::Cluster c = straggler_cluster(5);
  // Cap of 0: LATE must never speculate.
  c.framework->set_speculator(std::make_unique<LateSpeculator>(
      LateSpeculator::Params{.speculative_cap = 0.0, .min_runtime_s = 1.0}, 12));
  const wl::JobId id = c.framework->submit(wl::make_terasort(8, 8));
  exp::run_until_done(c, 1200.0);
  const wl::Job* job = c.framework->find_job(id);
  for (std::size_t s = 0; s < job->stage_count(); ++s) {
    for (const wl::TaskState& t : job->stage(s)) {
      for (const wl::AttemptRecord& a : t.attempts) EXPECT_FALSE(a.speculative);
    }
  }
  EXPECT_DOUBLE_EQ(c.framework->utilization_efficiency(), 1.0);
}

TEST(Late, YoungTasksAreNotJudged) {
  LateSpeculator late(LateSpeculator::Params{.min_runtime_s = 1e9}, 12);
  exp::ClusterParams p;
  p.workers = 4;
  exp::Cluster c = exp::make_cluster(p);
  c.framework->submit(wl::make_terasort(4, 2));
  exp::run_for(c, 5.0);
  std::vector<const wl::Job*> jobs;
  for (const auto& j : c.framework->jobs()) jobs.push_back(j.get());
  EXPECT_TRUE(late.pick(jobs, c.engine->now(), 4).empty());
}

TEST(Late, EmptyJobListIsSafe) {
  LateSpeculator late(LateSpeculator::Params{}, 12);
  EXPECT_TRUE(late.pick({}, sim::SimTime(0.0), 4).empty());
}

TEST(Late, ZeroProgressStragglerIsPickedFirst) {
  // A mature attempt with zero progress rate is the clearest straggler there
  // is — completely stalled, unbounded time-to-finish. It must be speculated
  // (and sorted ahead of tasks that still crawl forward), not silently
  // dropped by the est_time_left division.
  wl::TaskSpec ts;
  ts.phases.push_back(wl::PhaseSpec{.kind = wl::PhaseKind::kCompute, .instructions = 1.0e9});
  wl::JobSpec spec;
  spec.name = "stall";
  spec.task_jitter_sigma = 0.0;
  spec.stages.push_back(wl::StageSpec{.name = "s0", .num_tasks = 2, .task = ts});
  sim::Rng rng(1);
  wl::Job job(1, spec, sim::SimTime(0.0), rng);

  auto& tasks = job.stage(0);
  ASSERT_EQ(tasks.size(), 2u);
  for (wl::TaskState& t : tasks) {
    wl::AttemptRecord rec;
    rec.attempt = std::make_unique<wl::TaskAttempt>(t.spec, sim::SimTime(0.0));
    rec.start = sim::SimTime(0.0);
    rec.running = true;
    t.attempts.push_back(std::move(rec));
  }
  // Task 1 crawls forward; task 0 never advances at all.
  tasks[1].attempts[0].attempt->advance(1.0e8, 0.0, 0.0);

  LateSpeculator late(
      LateSpeculator::Params{
          .speculative_cap = 1.0, .slow_task_percentile = 1.0, .min_runtime_s = 1.0},
      4);
  const auto picks = late.pick({&job}, sim::SimTime(100.0), 2);
  ASSERT_EQ(picks.size(), 2u);
  EXPECT_EQ(picks[0].job, 1);
  EXPECT_EQ(picks[0].stage, 0u);
  EXPECT_EQ(picks[0].task, 0u);  // the stalled task sorts first (est = +inf)
  EXPECT_EQ(picks[1].task, 1u);
}

}  // namespace
}  // namespace perfcloud::base
