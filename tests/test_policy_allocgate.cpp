// The policy-armed zero-steady-state-allocation gate (DESIGN.md §5k).
//
// The migration policy folds cluster-wide state every interval forever, so
// it inherits the §5i steady-state contract: with the policy armed and NOT
// triggering (caps off their floors), a policy interval — ClusterView
// refresh over every host and VM, counter bump, and the full floor-streak
// scan — must perform zero heap allocations. Decisions (triggers, emits,
// migrations) are episodic and may allocate; the every-interval path may
// not. This binary links pc_alloc_hook, so the gauge below counts for real.
#include <gtest/gtest.h>

#include "exp/cluster.hpp"
#include "exp/event_sink.hpp"
#include "sim/alloc_gauge.hpp"
#include "workloads/antagonists.hpp"
#include "workloads/benchmarks.hpp"

namespace perfcloud::policy {
namespace {

TEST(PolicyAllocGate, ArmedNonTriggeringIntervalIsAllocationFree) {
  ASSERT_TRUE(sim::alloc_gauge_linked());

  // A busy but healthy cluster: packed workers under terasort plus a
  // monitored fio antagonist on another host. Monitoring only — no
  // controllers means no cap ever reaches its floor, so the policy scans
  // every interval and never escalates: exactly the steady state the gate
  // covers. The policy itself is armed the production way (pipeline hook,
  // migration listener, destination scorer all registered).
  exp::ClusterParams p;
  p.hosts = 2;
  p.workers = 4;
  p.seed = 47;
  p.shards = 1;  // measured region runs single-threaded, counters exact
  p.placement = exp::Placement::kPacked;
  p.policy = PolicyParams{};
  exp::Cluster c = exp::make_cluster(p);
  exp::add_fio(c, "host-1", wl::FioRandomRead::Params{.duration_s = 10000.0, .start_s = 12.0});
  core::PerfCloudConfig cfg;
  // Bound the monitor rings so steady-state appends recycle slots (§5i).
  cfg.monitor_series_capacity = 32;
  exp::enable_perfcloud(c, cfg, /*control=*/false);
  exp::EventSink sink(exp::EventSink::Options{.async = false});
  exp::attach_sink(c, sink);
  c.framework->submit(wl::make_terasort(16, 16));

  // Warm: series past growth boundaries, per-VM policy states inserted,
  // counter keys interned in the sink.
  exp::run_for(c, 200.0);
  ASSERT_NE(c.policy, nullptr);
  ASSERT_EQ(c.policy->triggered(), 0);
  c.policy->view().refresh(c.engine->now());
  ASSERT_EQ(c.policy->view().host(0).vms.size(), 4u);

  // Drive further policy intervals by hand (the engine is idle, this thread
  // owns all state). Each interval gets a fresh timestamp so the refresh
  // guard cannot short-circuit the fold — a gate over cached refreshes
  // would be vacuous. Two warm-up steps consolidate scratch first.
  sim::SimTime now = c.engine->now();
  for (int i = 0; i < 2; ++i) {
    now += cfg.sample_interval_s;
    c.policy->step(now);
  }

  const sim::AllocGaugeSnapshot before = sim::alloc_gauge_read();
  constexpr int kIntervals = 8;
  for (int i = 0; i < kIntervals; ++i) {
    now += cfg.sample_interval_s;
    c.policy->step(now);
  }
  const sim::AllocGaugeSnapshot after = sim::alloc_gauge_read();

  EXPECT_EQ(after.allocs - before.allocs, 0u)
      << "policy-armed steady state allocated: " << (after.allocs - before.allocs)
      << " allocations, " << (after.bytes - before.bytes) << " bytes over " << kIntervals
      << " intervals";
  EXPECT_EQ(after.frees - before.frees, 0u);
  EXPECT_EQ(c.policy->triggered(), 0);  // the gate really covered the quiet path
}

}  // namespace
}  // namespace perfcloud::policy
