#include <gtest/gtest.h>

#include <cmath>

#include "core/detector.hpp"
#include "core/identifier.hpp"

namespace perfcloud::core {
namespace {

VmSample sample(double ratio, double cpi) {
  VmSample s;
  s.iowait_ratio_ms = ratio;
  s.cpi = cpi;
  return s;
}

TEST(Detector, UniformSamplesNotContended) {
  const InterferenceDetector det{PerfCloudConfig{}};
  const VmSample a = sample(3.0, 1.0);
  const VmSample b = sample(3.2, 1.05);
  const VmSample c = sample(2.9, 0.98);
  const std::vector<const VmSample*> vms = {&a, &b, &c};
  const DetectionResult r = det.evaluate(vms);
  EXPECT_FALSE(r.io_contended);
  EXPECT_FALSE(r.cpu_contended);
  EXPECT_LT(r.io_deviation, 10.0);
  EXPECT_LT(r.cpi_deviation, 1.0);
  EXPECT_EQ(r.io_samples, 3u);
}

TEST(Detector, SpreadIowaitRatiosTriggerIo) {
  const InterferenceDetector det{PerfCloudConfig{}};
  const VmSample a = sample(5.0, 1.0);
  const VmSample b = sample(60.0, 1.0);
  const VmSample c = sample(110.0, 1.0);
  const std::vector<const VmSample*> vms = {&a, &b, &c};
  const DetectionResult r = det.evaluate(vms);
  EXPECT_TRUE(r.io_contended);
  EXPECT_FALSE(r.cpu_contended);
}

TEST(Detector, SpreadCpiTriggersCpu) {
  const InterferenceDetector det{PerfCloudConfig{}};
  const VmSample a = sample(3.0, 1.0);
  const VmSample b = sample(3.0, 2.8);
  const VmSample c = sample(3.0, 4.5);
  const std::vector<const VmSample*> vms = {&a, &b, &c};
  const DetectionResult r = det.evaluate(vms);
  EXPECT_FALSE(r.io_contended);
  EXPECT_TRUE(r.cpu_contended);
}

TEST(Detector, MissingMetricsAreSkipped) {
  const InterferenceDetector det{PerfCloudConfig{}};
  VmSample idle;  // no iowait ratio, no cpi
  const VmSample a = sample(3.0, 1.0);
  const std::vector<const VmSample*> vms = {&a, &idle, nullptr};
  const DetectionResult r = det.evaluate(vms);
  EXPECT_EQ(r.io_samples, 1u);
  EXPECT_EQ(r.cpi_samples, 1u);
  EXPECT_DOUBLE_EQ(r.io_deviation, 0.0);  // single sample, no deviation
}

TEST(Detector, EmptyGroupIsQuiet) {
  const InterferenceDetector det{PerfCloudConfig{}};
  const DetectionResult r = det.evaluate({});
  EXPECT_FALSE(r.io_contended);
  EXPECT_FALSE(r.cpu_contended);
}

TEST(Detector, CustomThresholds) {
  PerfCloudConfig cfg;
  cfg.io_deviation_threshold = 0.01;
  cfg.cpi_deviation_threshold = 0.01;
  const InterferenceDetector det{cfg};
  const VmSample a = sample(1.0, 1.0);
  const VmSample b = sample(1.1, 1.1);
  const std::vector<const VmSample*> vms = {&a, &b};
  const DetectionResult r = det.evaluate(vms);
  EXPECT_TRUE(r.io_contended);
  EXPECT_TRUE(r.cpu_contended);
}

// --- Identifier ---

sim::TimeSeries series_of(const std::vector<double>& vals) {
  sim::TimeSeries ts;
  for (std::size_t i = 0; i < vals.size(); ++i) {
    ts.add(sim::SimTime(5.0 * static_cast<double>(i + 1)), vals[i]);
  }
  return ts;
}

TEST(Identifier, RequiresMinimumSamples) {
  PerfCloudConfig cfg;
  cfg.min_correlation_samples = 3;
  const AntagonistIdentifier ident{cfg};
  const sim::TimeSeries victim = series_of({1.0, 2.0});
  const sim::TimeSeries suspect = series_of({1.0, 2.0});
  const std::vector<SuspectSignal> suspects{{1, &suspect}};
  EXPECT_TRUE(ident.score(victim, suspects).empty());
}

TEST(Identifier, FlagsCorrelatedSuspect) {
  const AntagonistIdentifier ident{PerfCloudConfig{}};
  const sim::TimeSeries victim = series_of({1.0, 8.0, 2.0, 9.0, 1.5});
  const sim::TimeSeries correlated = series_of({10.0, 80.0, 20.0, 90.0, 15.0});
  const sim::TimeSeries uncorrelated = series_of({5.0, 4.8, 5.1, 5.2, 4.9});
  const std::vector<SuspectSignal> suspects{{1, &correlated}, {2, &uncorrelated}};
  const auto scores = ident.score(victim, suspects);
  ASSERT_EQ(scores.size(), 2u);
  EXPECT_TRUE(scores[0].antagonist);
  EXPECT_GT(scores[0].correlation, 0.95);
  EXPECT_FALSE(scores[1].antagonist);
  EXPECT_LT(std::abs(scores[1].correlation), 0.5);
}

TEST(Identifier, AntiCorrelationIsEvidenceByDefault) {
  // Strong inverse co-movement flags the suspect too (a grant-limited
  // antagonist is squeezed exactly when the victims' waits grow); the
  // paper's positive-only rule is available as a config switch.
  const sim::TimeSeries victim = series_of({1.0, 8.0, 2.0, 9.0, 1.5});
  const sim::TimeSeries anti = series_of({9.0, 2.0, 8.0, 1.0, 8.5});

  const std::vector<SuspectSignal> suspects{{1, &anti}};
  const AntagonistIdentifier abs_ident{PerfCloudConfig{}};
  const auto abs_scores = abs_ident.score(victim, suspects);
  EXPECT_TRUE(abs_scores[0].antagonist);
  EXPECT_LT(abs_scores[0].correlation, -0.9);

  PerfCloudConfig paper_cfg;
  paper_cfg.use_absolute_correlation = false;
  const AntagonistIdentifier paper_ident{paper_cfg};
  const auto paper_scores = paper_ident.score(victim, suspects);
  EXPECT_FALSE(paper_scores[0].antagonist);
}

TEST(Identifier, NullSeriesScoresZero) {
  const AntagonistIdentifier ident{PerfCloudConfig{}};
  const sim::TimeSeries victim = series_of({1.0, 2.0, 3.0, 4.0});
  const std::vector<SuspectSignal> suspects{{7, nullptr}};
  const auto scores = ident.score(victim, suspects);
  ASSERT_EQ(scores.size(), 1u);
  EXPECT_DOUBLE_EQ(scores[0].correlation, 0.0);
  EXPECT_FALSE(scores[0].antagonist);
  EXPECT_EQ(scores[0].vm_id, 7);
}

TEST(Identifier, ThreeSamplesSuffice) {
  // Fig 5c: an antagonist is identifiable with a dataset as small as three.
  const AntagonistIdentifier ident{PerfCloudConfig{}};
  const sim::TimeSeries victim = series_of({1.0, 9.0, 3.0});
  const sim::TimeSeries suspect = series_of({2.0, 18.0, 6.0});
  const std::vector<SuspectSignal> suspects{{1, &suspect}};
  const auto scores = ident.score(victim, suspects);
  ASSERT_EQ(scores.size(), 1u);
  EXPECT_TRUE(scores[0].antagonist);
}

TEST(Identifier, IdleSuspectWithMissingSamplesNotOveremphasized) {
  // Suspect reported only once; missing-as-zero keeps its correlation low
  // even though its single sample coincides with a victim peak.
  const AntagonistIdentifier ident{PerfCloudConfig{}};
  const sim::TimeSeries victim = series_of({2.0, 2.1, 8.0, 2.0, 2.05, 1.95});
  sim::TimeSeries sparse;
  sparse.add(sim::SimTime(15.0), 100.0);
  const std::vector<SuspectSignal> suspects{{1, &sparse}};
  const auto scores = ident.score(victim, suspects);
  ASSERT_EQ(scores.size(), 1u);
  EXPECT_TRUE(scores[0].antagonist);  // actually aligned with the only spike
  // But a sparse suspect aligned with a *flat* victim is not flagged:
  const sim::TimeSeries flat = series_of({2.0, 2.1, 2.0, 2.0, 2.05, 1.95});
  const auto scores2 = ident.score(flat, suspects);
  EXPECT_FALSE(scores2[0].antagonist);
}

}  // namespace
}  // namespace perfcloud::core
