#include <gtest/gtest.h>

#include <memory>

#include "virt/hypervisor.hpp"

namespace perfcloud::virt {
namespace {

/// Minimal guest: constant demand, counts what it receives.
class ConstantGuest : public GuestWorkload {
 public:
  explicit ConstantGuest(hw::TenantDemand d) : d_(d) {}
  hw::TenantDemand demand(sim::SimTime, double dt) override {
    hw::TenantDemand scaled = d_;
    scaled.cpu_core_seconds *= dt;
    scaled.io_ops *= dt;
    scaled.io_bytes *= dt;
    return scaled;
  }
  void apply(const hw::TenantGrant& g, sim::SimTime, double) override {
    total_instructions += g.instructions;
    total_io_bytes += g.io_bytes;
  }
  [[nodiscard]] bool finished(sim::SimTime) const override { return false; }
  [[nodiscard]] std::string_view name() const override { return "constant"; }

  double total_instructions = 0.0;
  double total_io_bytes = 0.0;

 private:
  hw::TenantDemand d_;
};

hw::TenantDemand busy_demand() {
  hw::TenantDemand d;
  d.cpu_core_seconds = 4.0;  // per second; will exceed 2 vCPUs
  d.io_ops = 50.0;
  d.io_bytes = 50.0 * 65536;
  d.llc_footprint = 4.0 * 1024 * 1024;
  d.mem_bw_per_cpu_sec = 0.3e9;
  return d;
}

hw::ServerConfig quiet_server() {
  hw::ServerConfig cfg;
  cfg.disk.wait_jitter_sigma = 0.0;
  cfg.memory.cpi_jitter_sigma = 0.0;
  return cfg;
}

TEST(Cgroup, AccountAccumulates) {
  Cgroup cg("test");
  hw::TenantGrant g;
  g.io_wait_seconds = 0.5;
  g.io_ops = 10.0;
  g.io_bytes = 4096.0;
  g.cycles = 100.0;
  g.instructions = 80.0;
  g.llc_misses = 5.0;
  g.cpu_core_seconds = 0.25;
  cg.account(g);
  cg.account(g);
  EXPECT_DOUBLE_EQ(cg.stats().io_wait_time_ms, 1000.0);
  EXPECT_DOUBLE_EQ(cg.stats().io_serviced_ops, 20.0);
  EXPECT_DOUBLE_EQ(cg.stats().io_service_bytes, 8192.0);
  EXPECT_DOUBLE_EQ(cg.stats().cycles, 200.0);
  EXPECT_DOUBLE_EQ(cg.stats().instructions, 160.0);
  EXPECT_DOUBLE_EQ(cg.stats().llc_misses, 10.0);
  EXPECT_DOUBLE_EQ(cg.stats().cpu_time_s, 0.5);
}

TEST(Cgroup, CapsDefaultToUncapped) {
  Cgroup cg("c");
  EXPECT_EQ(cg.cpu_quota_cores(), hw::kNoCap);
  EXPECT_EQ(cg.blkio_throttle_bps(), hw::kNoCap);
  cg.set_cpu_quota_cores(1.5);
  cg.set_blkio_throttle_bps(1e6);
  EXPECT_DOUBLE_EQ(cg.cpu_quota_cores(), 1.5);
  EXPECT_DOUBLE_EQ(cg.blkio_throttle_bps(), 1e6);
  cg.clear_cpu_quota();
  cg.clear_blkio_throttle();
  EXPECT_EQ(cg.cpu_quota_cores(), hw::kNoCap);
  EXPECT_EQ(cg.blkio_throttle_bps(), hw::kNoCap);
}

TEST(Vm, ConfigAccessors) {
  VmConfig cfg;
  cfg.id = 7;
  cfg.name = "worker";
  cfg.vcpus = 2;
  cfg.priority = Priority::kHigh;
  cfg.app_id = "hadoop";
  Vm vm(cfg);
  EXPECT_EQ(vm.id(), 7);
  EXPECT_EQ(vm.name(), "worker");
  EXPECT_EQ(vm.priority(), Priority::kHigh);
  EXPECT_EQ(vm.app_id(), "hadoop");
  EXPECT_TRUE(vm.idle(sim::SimTime(0.0)));
}

TEST(Vm, AttachedGuestMakesItBusy) {
  Vm vm(VmConfig{.id = 1});
  vm.attach(std::make_unique<ConstantGuest>(busy_demand()));
  EXPECT_FALSE(vm.idle(sim::SimTime(0.0)));
  vm.detach();
  EXPECT_TRUE(vm.idle(sim::SimTime(0.0)));
}

TEST(Hypervisor, BootAndFind) {
  Hypervisor hv(quiet_server(), sim::Rng(1));
  hv.boot(VmConfig{.id = 1, .name = "a"});
  hv.boot(VmConfig{.id = 2, .name = "b"});
  EXPECT_NE(hv.find(1), nullptr);
  EXPECT_EQ(hv.find(3), nullptr);
  EXPECT_EQ(hv.vms().size(), 2u);
}

TEST(Hypervisor, DuplicateIdThrows) {
  Hypervisor hv(quiet_server(), sim::Rng(1));
  hv.boot(VmConfig{.id = 1});
  EXPECT_THROW(hv.boot(VmConfig{.id = 1}), std::invalid_argument);
}

TEST(Hypervisor, UnknownVmThrows) {
  Hypervisor hv(quiet_server(), sim::Rng(1));
  EXPECT_THROW(hv.set_vcpu_quota(99, 1.0), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(hv.dom_stats(99)), std::invalid_argument);
}

TEST(Hypervisor, TickAccountsIntoCgroups) {
  Hypervisor hv(quiet_server(), sim::Rng(1));
  Vm& vm = hv.boot(VmConfig{.id = 1, .vcpus = 2});
  vm.attach(std::make_unique<ConstantGuest>(busy_demand()));
  for (int t = 1; t <= 10; ++t) hv.tick(sim::SimTime(t * 0.1), 0.1);
  const CgroupStats& st = hv.dom_stats(1);
  EXPECT_GT(st.io_serviced_ops, 0.0);
  EXPECT_GT(st.instructions, 0.0);
  // vCPU clamp: 2 vCPUs for 1 simulated second.
  EXPECT_NEAR(st.cpu_time_s, 2.0, 1e-6);
}

TEST(Hypervisor, VcpuQuotaLimitsCpu) {
  Hypervisor hv(quiet_server(), sim::Rng(1));
  Vm& vm = hv.boot(VmConfig{.id = 1, .vcpus = 2});
  vm.attach(std::make_unique<ConstantGuest>(busy_demand()));
  hv.set_vcpu_quota(1, 0.5);
  for (int t = 1; t <= 10; ++t) hv.tick(sim::SimTime(t * 0.1), 0.1);
  EXPECT_NEAR(hv.dom_stats(1).cpu_time_s, 0.5, 1e-6);
  hv.clear_vcpu_quota(1);
  for (int t = 11; t <= 20; ++t) hv.tick(sim::SimTime(t * 0.1), 0.1);
  EXPECT_NEAR(hv.dom_stats(1).cpu_time_s, 2.5, 1e-6);
}

TEST(Hypervisor, BlkioThrottleLimitsBytes) {
  Hypervisor hv(quiet_server(), sim::Rng(1));
  Vm& vm = hv.boot(VmConfig{.id = 1, .vcpus = 2});
  vm.attach(std::make_unique<ConstantGuest>(busy_demand()));
  hv.set_blkio_throttle(1, 65536.0);  // 1 op/s worth
  for (int t = 1; t <= 10; ++t) hv.tick(sim::SimTime(t * 0.1), 0.1);
  EXPECT_LE(hv.dom_stats(1).io_service_bytes, 65536.0 + 1e-6);
}

TEST(Hypervisor, IdleVmAccruesNothing) {
  Hypervisor hv(quiet_server(), sim::Rng(1));
  hv.boot(VmConfig{.id = 1});
  for (int t = 1; t <= 5; ++t) hv.tick(sim::SimTime(t * 0.1), 0.1);
  EXPECT_DOUBLE_EQ(hv.dom_stats(1).cpu_time_s, 0.0);
  EXPECT_DOUBLE_EQ(hv.dom_stats(1).io_serviced_ops, 0.0);
}

TEST(Hypervisor, GuestReceivesGrants) {
  Hypervisor hv(quiet_server(), sim::Rng(1));
  Vm& vm = hv.boot(VmConfig{.id = 1, .vcpus = 2});
  auto guest = std::make_unique<ConstantGuest>(busy_demand());
  ConstantGuest* raw = guest.get();
  vm.attach(std::move(guest));
  for (int t = 1; t <= 10; ++t) hv.tick(sim::SimTime(t * 0.1), 0.1);
  EXPECT_GT(raw->total_instructions, 0.0);
  EXPECT_GT(raw->total_io_bytes, 0.0);
}

}  // namespace
}  // namespace perfcloud::virt
