#include <gtest/gtest.h>

#include <atomic>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "exp/parallel_runner.hpp"
#include "sim/engine.hpp"

namespace perfcloud::exp {
namespace {

TEST(ParallelRunner, ResultsComeBackInSubmissionOrder) {
  const ParallelRunner pool(4);
  std::vector<std::function<int()>> tasks;
  for (int i = 0; i < 64; ++i) {
    tasks.emplace_back([i] {
      // Uneven work so completion order differs from submission order.
      volatile int spin = (i % 7) * 10000;
      while (spin > 0) spin = spin - 1;
      return i * i;
    });
  }
  const std::vector<int> out = pool.run(tasks);
  ASSERT_EQ(out.size(), 64u);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(out[static_cast<std::size_t>(i)], i * i);
}

TEST(ParallelRunner, SameResultsAcrossThreadCounts) {
  // Each task runs a self-contained deterministic simulation; the aggregate
  // must be identical no matter how many workers execute it.
  const auto make_tasks = [] {
    std::vector<std::function<double()>> tasks;
    for (int s = 0; s < 12; ++s) {
      tasks.emplace_back([s] {
        sim::Engine e(static_cast<std::uint64_t>(s) + 1);
        double acc = 0.0;
        e.every(1.0, [&](sim::SimTime t) { acc += e.rng().uniform() * t.seconds(); },
                sim::SimTime(1.0));
        e.run_until(sim::SimTime(50.0));
        return acc;
      });
    }
    return tasks;
  };
  const std::vector<double> seq = ParallelRunner(1).run(make_tasks());
  const std::vector<double> par4 = ParallelRunner(4).run(make_tasks());
  const std::vector<double> par8 = ParallelRunner(8).run(make_tasks());
  EXPECT_EQ(seq, par4);  // bitwise: same engine, same seed, same work
  EXPECT_EQ(seq, par8);
}

TEST(ParallelRunner, AllTasksRunExactlyOnce) {
  std::atomic<int> calls{0};
  std::vector<std::function<int()>> tasks;
  for (int i = 0; i < 100; ++i) {
    tasks.emplace_back([&calls] { return calls.fetch_add(1) >= 0 ? 1 : 0; });
  }
  const auto out = ParallelRunner(8).run(tasks);
  EXPECT_EQ(calls.load(), 100);
  EXPECT_EQ(out.size(), 100u);
}

TEST(ParallelRunner, FirstExceptionBySubmissionIndexWins) {
  std::vector<std::function<int()>> tasks;
  for (int i = 0; i < 16; ++i) {
    tasks.emplace_back([i]() -> int {
      if (i == 3) throw std::runtime_error("boom-3");
      if (i == 11) throw std::runtime_error("boom-11");
      return i;
    });
  }
  // Regardless of which worker hits its error first, the rethrow is the
  // lowest-index failure: deterministic error reporting.
  for (unsigned threads : {1u, 4u}) {
    try {
      (void)ParallelRunner(threads).run(tasks);
      FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
      EXPECT_EQ(std::string(e.what()), "boom-3");
    }
  }
}

TEST(ParallelRunner, EmptyTaskListReturnsEmpty) {
  const std::vector<std::function<int()>> tasks;
  EXPECT_TRUE(ParallelRunner(4).run(tasks).empty());
}

TEST(ParallelRunner, MoreThreadsThanTasksIsFine) {
  std::vector<std::function<int()>> tasks;
  tasks.emplace_back([] { return 42; });
  const auto out = ParallelRunner(16).run(tasks);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 42);
}

TEST(ParallelRunner, ZeroMeansHardwareConcurrency) {
  EXPECT_GE(ParallelRunner(0).threads(), 1u);
  EXPECT_EQ(ParallelRunner(3).threads(), 3u);
}

}  // namespace
}  // namespace perfcloud::exp
