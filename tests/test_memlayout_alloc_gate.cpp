// The zero-steady-state-allocation gate (DESIGN.md §5i).
//
// This binary links the counting operator new/delete (pc_alloc_hook), so a
// code region can be bracketed with alloc_gauge_read() and asserted to have
// performed zero heap allocations. The headline gate: one steady-state
// control quantum of a warmed node manager — monitor sample, detection,
// deviation-signal appends, incremental identification against a live
// suspect, identification bookkeeping — allocates nothing. check.sh runs
// these tests as a release-build gate.
#include <gtest/gtest.h>

#include <string_view>

#include "exp/cluster.hpp"
#include "exp/event_sink.hpp"
#include "sim/alloc_gauge.hpp"
#include "workloads/benchmarks.hpp"

namespace perfcloud::core {
namespace {

TEST(AllocGate, HookIsLinkedAndCounts) {
  // A gate that reads zeros because the hook was never linked would pass
  // vacuously; prove the counters move before trusting any zero below.
  ASSERT_TRUE(sim::alloc_gauge_linked());
  const sim::AllocGaugeSnapshot before = sim::alloc_gauge_read();
  // A direct operator-new call: new-EXPRESSIONS may legally be elided by the
  // optimizer, replaceable-function calls may not.
  void* p = ::operator new(64);
  ::operator delete(p);
  const sim::AllocGaugeSnapshot after = sim::alloc_gauge_read();
  EXPECT_GE(after.allocs - before.allocs, 1u);
  EXPECT_GE(after.frees - before.frees, 1u);
  EXPECT_GE(after.bytes - before.bytes, 64u);
}

TEST(AllocGate, CounterBumpSteadyStateIsAllocationFree) {
  // bump_counter takes string_view and the counter map uses a transparent
  // comparator: bumping an existing counter — the every-quantum case — must
  // not build a temporary std::string. The key is far beyond SSO so a
  // hidden temporary would show up as a heap allocation.
  exp::EventSink sink(exp::EventSink::Options{.async = false});
  const auto src = sink.add_event_source("host-x");
  constexpr std::string_view kKey = "a_counter_key_well_beyond_any_sso_buffer";
  sink.bump_counter(src, kKey);  // first bump inserts (allocates; episodic)

  const sim::AllocGaugeSnapshot before = sim::alloc_gauge_read();
  for (int i = 0; i < 100; ++i) sink.bump_counter(src, kKey);
  const sim::AllocGaugeSnapshot after = sim::alloc_gauge_read();
  EXPECT_EQ(after.allocs - before.allocs, 0u);
}

TEST(AllocGate, CounterIdBumpIsAllocationFreeFromTheFirstBump) {
  // Slot counters go one better than the transparent-comparator path: after
  // registration (add_counter, setup-time), bump_counter_id is an indexed
  // add into a flat slot — no hashing, no lookup, and unlike bump_counter
  // not even the FIRST bump allocates. The hot per-quantum counters
  // (control_intervals, identifications, policy_intervals) ride this path.
  exp::EventSink sink(exp::EventSink::Options{.async = false});
  const auto src = sink.add_event_source("host-y");
  const sim::EmitSink::CounterId ctr =
      sink.add_counter(src, "another_counter_key_well_beyond_any_sso_buffer");

  const sim::AllocGaugeSnapshot before = sim::alloc_gauge_read();
  for (int i = 0; i < 100; ++i) sink.bump_counter_id(ctr);
  const sim::AllocGaugeSnapshot after = sim::alloc_gauge_read();
  EXPECT_EQ(after.allocs - before.allocs, 0u);
}

TEST(AllocGate, SteadyStateQuantumPerformsZeroHeapAllocations) {
  ASSERT_TRUE(sim::alloc_gauge_linked());

  // A realistic host: six Hadoop workers under terasort plus a long-lived
  // fio antagonist, monitored (not actuated — controller episodes are
  // allowed to allocate; the steady-state contract covers the monitoring/
  // identification pipeline that runs every single interval forever).
  exp::ClusterParams p;
  p.workers = 6;
  p.seed = 41;
  p.shards = 1;  // measured region runs single-threaded, counters exact
  exp::Cluster c = exp::make_cluster(p);
  const int fio = exp::add_fio(
      c, "host-0", wl::FioRandomRead::Params{.duration_s = 10000.0, .start_s = 12.0});
  PerfCloudConfig cfg;
  // Bound the suspect-side monitor rings (>= correlation window) so a
  // steady-state append recycles ring slots instead of growing a vector.
  cfg.monitor_series_capacity = 32;
  exp::enable_perfcloud(c, cfg, /*control=*/false);
  c.framework->submit(wl::make_terasort(24, 24));

  // Warm the cluster: series past their growth boundaries, EWMAs primed,
  // pair states built, identification episodes (map inserts) done.
  exp::run_for(c, 200.0);
  NodeManager& nm = c.node_manager(0);
  ASSERT_GT(nm.io_signal("hadoop").size(), 20u);
  ASSERT_FALSE(nm.monitor().io_throughput_series(fio).empty());

  // Drive further control intervals by hand (the engine is idle, so this
  // thread owns all node-manager state). Two warm-up steps let this
  // thread's scratch arena consolidate before the bracket closes around
  // the measured quanta.
  sim::SimTime now = c.engine->now();
  for (int i = 0; i < 2; ++i) {
    now += 5.0;
    nm.local_step(now);
  }

  const sim::AllocGaugeSnapshot before = sim::alloc_gauge_read();
  constexpr int kQuanta = 8;
  for (int i = 0; i < kQuanta; ++i) {
    now += 5.0;
    nm.local_step(now);
  }
  const sim::AllocGaugeSnapshot after = sim::alloc_gauge_read();

  EXPECT_EQ(after.allocs - before.allocs, 0u)
      << "steady-state quantum allocated: " << (after.allocs - before.allocs) << " allocations, "
      << (after.bytes - before.bytes) << " bytes over " << kQuanta << " quanta";
  EXPECT_EQ(after.frees - before.frees, 0u);
}

TEST(AllocGate, UnresolvableCollisionQuantumIsAllocationFree) {
  // Two high-priority applications stuck on a single-host cloud: the
  // escalation has nowhere to move anything. Without the no-op version gate
  // the node manager would re-run the whole §IV-D scan — which builds its
  // grouping map on the heap — every quantum forever; with it, the scan runs
  // once, records the registry version, and the warmed steady state is
  // allocation-free even with escalation enabled.
  ASSERT_TRUE(sim::alloc_gauge_linked());

  exp::ClusterParams p;
  p.hosts = 1;
  p.workers = 2;
  p.seed = 43;
  p.shards = 1;
  exp::Cluster c = exp::make_cluster(p);
  virt::VmConfig other;
  other.priority = virt::Priority::kHigh;
  other.app_id = "other-app";
  c.cloud->boot_vm("host-0", other);
  // Keep the host busy so every quantum takes the full pipeline (a
  // quiescent host would skip escalation anyway and prove nothing).
  exp::add_fio(c, "host-0", wl::FioRandomRead::Params{.duration_s = 10000.0});

  PerfCloudConfig cfg;
  cfg.escalate_app_collisions = true;
  cfg.monitor_series_capacity = 32;
  exp::enable_perfcloud(c, cfg, /*control=*/false);
  exp::run_for(c, 100.0);

  NodeManager& nm = c.node_manager(0);
  sim::SimTime now = c.engine->now();
  for (int i = 0; i < 2; ++i) {
    now += 5.0;
    nm.control_step(now);
  }

  const sim::AllocGaugeSnapshot before = sim::alloc_gauge_read();
  constexpr int kQuanta = 8;
  for (int i = 0; i < kQuanta; ++i) {
    now += 5.0;
    nm.control_step(now);
  }
  const sim::AllocGaugeSnapshot after = sim::alloc_gauge_read();

  EXPECT_EQ(after.allocs - before.allocs, 0u)
      << "escalation-armed steady state allocated: " << (after.allocs - before.allocs)
      << " allocations over " << kQuanta << " quanta";
}

}  // namespace
}  // namespace perfcloud::core
