// Randomized property tests for the hardware models: for arbitrary demand
// vectors, the arbitration invariants must hold.
#include <gtest/gtest.h>

#include "hw/server.hpp"
#include "sim/rng.hpp"

namespace perfcloud::hw {
namespace {

TenantDemand random_demand(sim::Rng& rng) {
  TenantDemand d;
  d.cpu_core_seconds = rng.uniform(0.0, 8.0);
  d.cpu_weight = rng.uniform(0.5, 4.0);
  if (rng.bernoulli(0.3)) d.cpu_cap_cores = rng.uniform(0.0, 4.0);
  d.io_ops = rng.uniform(0.0, 300.0);
  d.io_bytes = d.io_ops * rng.uniform(512.0, 1024.0 * 1024.0);
  d.io_weight = rng.bernoulli(0.2) ? rng.uniform(2.0, 8.0) : 1.0;
  if (rng.bernoulli(0.3)) d.io_cap_bytes_per_sec = rng.uniform(1e4, 1e8);
  d.llc_footprint = rng.uniform(0.0, 1e9);
  d.mem_bw_per_cpu_sec = rng.uniform(0.0, 10e9);
  d.cpi_base = rng.uniform(0.5, 2.0);
  d.mem_sensitivity = rng.uniform(0.0, 2.5);
  return d;
}

class ServerProperties : public ::testing::TestWithParam<int> {};

TEST_P(ServerProperties, ArbitrationInvariants) {
  sim::Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 3);
  hw::ServerConfig cfg;
  Server server(cfg, sim::Rng(static_cast<std::uint64_t>(GetParam())));

  for (int tick = 0; tick < 20; ++tick) {
    const int n = 1 + static_cast<int>(rng.uniform_int(0, 11));
    std::vector<TenantDemand> demands;
    for (int i = 0; i < n; ++i) demands.push_back(random_demand(rng));
    const double dt = rng.uniform(0.05, 1.0);
    const auto grants = server.arbitrate(dt, demands);
    ASSERT_EQ(grants.size(), demands.size());

    double cpu_total = 0.0;
    for (std::size_t i = 0; i < grants.size(); ++i) {
      const TenantDemand& d = demands[i];
      const TenantGrant& g = grants[i];

      // No negative grants.
      EXPECT_GE(g.cpu_core_seconds, 0.0);
      EXPECT_GE(g.io_ops, -1e-9);
      EXPECT_GE(g.io_bytes, -1e-9);
      EXPECT_GE(g.io_wait_seconds, 0.0);
      EXPECT_GE(g.instructions, 0.0);
      EXPECT_GE(g.llc_misses, 0.0);

      // Never more than demanded.
      EXPECT_LE(g.cpu_core_seconds, d.cpu_core_seconds + 1e-9);
      EXPECT_LE(g.io_ops, d.io_ops + 1e-9);
      EXPECT_LE(g.io_bytes, d.io_bytes + 1e-6);

      // CPU caps respected.
      EXPECT_LE(g.cpu_core_seconds, d.cpu_cap_cores * dt + 1e-9);
      // I/O byte throttle respected.
      if (d.io_cap_bytes_per_sec != kNoCap) {
        EXPECT_LE(g.io_bytes, d.io_cap_bytes_per_sec * dt + 1e-6);
      }
      // Request mix preserved: ops/bytes ratio matches the demand's.
      if (g.io_ops > 1e-9 && d.io_ops > 1e-9) {
        EXPECT_NEAR(g.io_bytes / g.io_ops, d.io_bytes / d.io_ops,
                    1e-6 * d.io_bytes / d.io_ops + 1e-9);
      }
      // CPI is physical: at least the base, finite.
      if (g.cpu_core_seconds > 0.0) {
        EXPECT_GE(g.cpi, 0.1);
        EXPECT_LT(g.cpi, 100.0);
        // cycles = core-seconds * clock; instructions = cycles / cpi.
        EXPECT_NEAR(g.cycles, g.cpu_core_seconds * cfg.cpu.clock_hz, 1.0);
        EXPECT_NEAR(g.instructions * g.cpi, g.cycles, g.cycles * 1e-9 + 1.0);
      }
      cpu_total += g.cpu_core_seconds;
    }
    // CPU never oversubscribed.
    EXPECT_LE(cpu_total, cfg.cpu.cores * dt + 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomTenantSets, ServerProperties, ::testing::Range(0, 25));

class DiskConservation : public ::testing::TestWithParam<int> {};

TEST_P(DiskConservation, DeviceTimeNeverOversubscribed) {
  sim::Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729 + 17);
  DiskConfig cfg;
  BlockDevice disk(cfg, sim::Rng(99));
  for (int tick = 0; tick < 30; ++tick) {
    const int n = 1 + static_cast<int>(rng.uniform_int(0, 7));
    std::vector<TenantDemand> demands;
    for (int i = 0; i < n; ++i) demands.push_back(random_demand(rng));
    const double dt = rng.uniform(0.05, 0.5);
    const auto grants = disk.serve(dt, demands);

    double device_seconds = 0.0;
    for (const DiskGrant& g : grants) {
      device_seconds += g.ops / cfg.iops_capacity + g.bytes / cfg.bw_capacity;
    }
    EXPECT_LE(device_seconds, dt + 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomIoLoads, DiskConservation, ::testing::Range(0, 15));

class MemoryConservation : public ::testing::TestWithParam<int> {};

TEST_P(MemoryConservation, BandwidthAndMissInvariants) {
  sim::Rng rng(static_cast<std::uint64_t>(GetParam()) * 65537 + 29);
  MemoryConfig cfg;
  MemorySystem mem(cfg, sim::Rng(5));
  for (int tick = 0; tick < 30; ++tick) {
    const int n = 1 + static_cast<int>(rng.uniform_int(0, 7));
    std::vector<TenantDemand> demands;
    std::vector<double> cpu;
    for (int i = 0; i < n; ++i) {
      demands.push_back(random_demand(rng));
      cpu.push_back(rng.uniform(0.0, 4.0));
    }
    const double dt = rng.uniform(0.05, 0.5);
    const auto grants = mem.compute(dt, demands, cpu);

    double bw_total = 0.0;
    for (std::size_t i = 0; i < grants.size(); ++i) {
      EXPECT_GE(grants[i].miss_fraction, 0.0);
      EXPECT_LE(grants[i].miss_fraction, 1.0);
      EXPECT_GE(grants[i].bw_bytes, 0.0);
      EXPECT_NEAR(grants[i].llc_misses, grants[i].bw_bytes / 64.0, 1e-6);
      bw_total += grants[i].bw_bytes;
      if (cpu[i] == 0.0) {
        EXPECT_DOUBLE_EQ(grants[i].bw_bytes, 0.0);
      }
    }
    EXPECT_LE(bw_total, cfg.bw_capacity * dt + 1e-3);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomMemLoads, MemoryConservation, ::testing::Range(0, 15));

}  // namespace
}  // namespace perfcloud::hw
