#include <gtest/gtest.h>

#include <vector>

#include "sim/correlation.hpp"
#include "sim/rng.hpp"

namespace perfcloud::sim {
namespace {

TEST(Pearson, PerfectPositive) {
  const std::vector<double> x = {1.0, 2.0, 3.0, 4.0};
  const std::vector<double> y = {2.0, 4.0, 6.0, 8.0};
  EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
}

TEST(Pearson, PerfectNegative) {
  const std::vector<double> x = {1.0, 2.0, 3.0};
  const std::vector<double> y = {3.0, 2.0, 1.0};
  EXPECT_NEAR(pearson(x, y), -1.0, 1e-12);
}

TEST(Pearson, ShiftAndScaleInvariance) {
  Rng r(5);
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 0; i < 50; ++i) {
    const double v = r.normal();
    x.push_back(v);
    y.push_back(100.0 + 42.0 * v);
  }
  EXPECT_NEAR(pearson(x, y), 1.0, 1e-9);
}

TEST(Pearson, IndependentSeriesNearZero) {
  Rng r(6);
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 0; i < 5000; ++i) {
    x.push_back(r.normal());
    y.push_back(r.normal());
  }
  EXPECT_NEAR(pearson(x, y), 0.0, 0.05);
}

TEST(Pearson, ZeroVarianceGivesZero) {
  const std::vector<double> flat(5, 3.0);
  const std::vector<double> ramp = {1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_EQ(pearson(flat, ramp), 0.0);
  EXPECT_EQ(pearson(ramp, flat), 0.0);
}

TEST(Pearson, TooFewSamplesGivesZero) {
  const std::vector<double> x = {1.0};
  const std::vector<double> y = {2.0};
  EXPECT_EQ(pearson(x, y), 0.0);
  EXPECT_EQ(pearson({}, {}), 0.0);
}

TEST(Pearson, SymmetricInArguments) {
  Rng r(7);
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 0; i < 30; ++i) {
    x.push_back(r.uniform());
    y.push_back(r.uniform() + 0.5 * x.back());
  }
  EXPECT_NEAR(pearson(x, y), pearson(y, x), 1e-12);
}

TEST(Pearson, BoundedByOne) {
  Rng r(8);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<double> x;
    std::vector<double> y;
    for (int i = 0; i < 20; ++i) {
      x.push_back(r.normal());
      y.push_back(r.normal());
    }
    const double c = pearson(x, y);
    EXPECT_LE(c, 1.0 + 1e-12);
    EXPECT_GE(c, -1.0 - 1e-12);
  }
}

// --- The paper's missing-as-zero policy (§III-B) ---

TimeSeries grid_series(const std::vector<double>& values, double period = 5.0) {
  TimeSeries ts;
  for (std::size_t i = 0; i < values.size(); ++i) {
    ts.add(SimTime(static_cast<double>(i + 1) * period), values[i]);
  }
  return ts;
}

TEST(PearsonMissingAsZero, FullOverlapMatchesPlainPearson) {
  const TimeSeries victim = grid_series({1.0, 5.0, 2.0, 8.0});
  const TimeSeries suspect = grid_series({2.0, 10.0, 4.0, 16.0});
  EXPECT_NEAR(pearson_missing_as_zero(victim, suspect), 1.0, 1e-12);
}

TEST(PearsonMissingAsZero, MissingSamplesCountAsZeroNotOmitted) {
  // Victim sampled at t=5..20; suspect only reported at t=10 and t=15.
  const TimeSeries victim = grid_series({0.0, 6.0, 6.0, 0.0});
  TimeSeries suspect;
  suspect.add(SimTime(10.0), 9.0);
  suspect.add(SimTime(15.0), 9.0);
  // With zeros substituted the series are perfectly aligned square waves.
  EXPECT_NEAR(pearson_missing_as_zero(victim, suspect), 1.0, 1e-12);
}

TEST(PearsonMissingAsZero, AvoidsOverEmphasizingSparseSuspects) {
  // A suspect with a single burst that happens to coincide with one victim
  // peak: if missing samples were dropped, the pair count would collapse to
  // 1 and any correlation estimate would be meaningless. With zeros it is a
  // well-defined moderate value < 1.
  const TimeSeries victim = grid_series({1.0, 2.0, 8.0, 7.5, 2.0, 1.5});
  TimeSeries suspect;
  suspect.add(SimTime(15.0), 5.0);  // only at the third sample
  const double c = pearson_missing_as_zero(victim, suspect);
  EXPECT_GT(c, 0.0);
  EXPECT_LT(c, 0.95);
}

TEST(PearsonMissingAsZero, WindowRestrictsToRecentSamples) {
  // Old history anti-correlated, recent window perfectly correlated.
  const TimeSeries victim = grid_series({10.0, 1.0, 10.0, 1.0, 2.0, 4.0, 8.0});
  const TimeSeries suspect = grid_series({1.0, 10.0, 1.0, 10.0, 2.0, 4.0, 8.0});
  const double full = pearson_missing_as_zero(victim, suspect, 99);
  const double recent = pearson_missing_as_zero(victim, suspect, 3);
  EXPECT_LT(full, 0.5);
  EXPECT_NEAR(recent, 1.0, 1e-12);
}

TEST(WindowedMean, MatchesManualComputation) {
  const TimeSeries victim = grid_series({1.0, 2.0, 3.0, 4.0});
  TimeSeries suspect;
  suspect.add(SimTime(10.0), 6.0);   // aligned with victim sample 2
  suspect.add(SimTime(20.0), 12.0);  // aligned with victim sample 4
  // Window 3 covers victim samples at t=10,15,20 -> suspect 6, 0, 12.
  EXPECT_DOUBLE_EQ(windowed_mean_missing_as_zero(victim, suspect, 3), 6.0);
  // Full window: (0 + 6 + 0 + 12) / 4.
  EXPECT_DOUBLE_EQ(windowed_mean_missing_as_zero(victim, suspect, 99), 4.5);
}

TEST(WindowedMean, EmptyInputsGiveZero) {
  const TimeSeries victim = grid_series({1.0, 2.0});
  EXPECT_DOUBLE_EQ(windowed_mean_missing_as_zero(victim, TimeSeries{}, 2), 0.0);
  EXPECT_DOUBLE_EQ(windowed_mean_missing_as_zero(TimeSeries{}, victim, 2), 0.0);
}

TEST(WindowedPearson, AgreesWithFullAlignmentReference) {
  // The O(window)-tail implementation must equal the naive full align_to
  // reference on random series.
  Rng rng(77);
  TimeSeries victim;
  TimeSeries suspect;
  double t = 0.0;
  for (int i = 0; i < 60; ++i) {
    t += 5.0;
    victim.add(SimTime(t), rng.uniform());
    if (rng.bernoulli(0.7)) suspect.add(SimTime(t), rng.uniform());
  }
  for (const std::size_t w : {std::size_t{3}, std::size_t{12}, std::size_t{60}}) {
    const auto aligned = align_to(victim, suspect);
    const std::size_t start = victim.size() - std::min(w, victim.size());
    const double reference =
        pearson(victim.values().subspan(start), std::span<const double>(aligned).subspan(start));
    EXPECT_NEAR(pearson_missing_as_zero(victim, suspect, w), reference, 1e-12);
  }
}

TEST(PearsonMissingAsZero, EmptySuspectGivesZero) {
  const TimeSeries victim = grid_series({1.0, 2.0, 3.0});
  const TimeSeries suspect;
  EXPECT_EQ(pearson_missing_as_zero(victim, suspect), 0.0);
}

}  // namespace
}  // namespace perfcloud::sim
