// §IV-D extension: shared-memory shuffle between colocated worker VMs.
#include <gtest/gtest.h>

#include "exp/cluster.hpp"
#include "workloads/benchmarks.hpp"

namespace perfcloud::wl {
namespace {

double run_terasort(bool shm, int hosts, std::uint64_t seed) {
  exp::ClusterParams p;
  p.hosts = hosts;
  p.workers = 6;
  p.seed = seed;
  exp::Cluster c = exp::make_cluster(p);
  c.framework->set_shared_memory_shuffle(shm);
  return exp::run_job(c, make_terasort(12, 12));
}

TEST(SharedMemoryShuffle, DisabledByDefault) {
  exp::ClusterParams p;
  p.workers = 2;
  exp::Cluster c = exp::make_cluster(p);
  EXPECT_FALSE(c.framework->shared_memory_shuffle());
}

TEST(SharedMemoryShuffle, SpeedsUpShuffleHeavyJobOnOneHost) {
  // All workers colocated: the entire shuffle moves via shared memory, so
  // the reduce stage's read I/O disappears and the job finishes earlier.
  const double without = run_terasort(false, 1, 5);
  const double with_shm = run_terasort(true, 1, 5);
  EXPECT_LT(with_shm, 0.95 * without);
}

TEST(SharedMemoryShuffle, WeakerWhenWorkersAreSpreadOut) {
  // 3 hosts, 2 workers each: only 1 of 5 peers is local, so ~20 % of the
  // shuffle is saved — a much smaller effect than full colocation.
  const double one_host_gain = run_terasort(false, 1, 7) - run_terasort(true, 1, 7);
  const double spread_gain = run_terasort(false, 3, 7) - run_terasort(true, 3, 7);
  EXPECT_GE(one_host_gain, spread_gain);
}

TEST(SharedMemoryShuffle, MapOnlyJobUnaffected) {
  // grep has no shuffle stage: shared memory changes nothing.
  auto run = [](bool shm) {
    exp::ClusterParams p;
    p.workers = 6;
    p.seed = 9;
    exp::Cluster c = exp::make_cluster(p);
    c.framework->set_shared_memory_shuffle(shm);
    return exp::run_job(c, make_grep(12));
  };
  EXPECT_DOUBLE_EQ(run(false), run(true));
}

TEST(SharedMemoryShuffle, FirstStageReadsStillHitDisk) {
  // HDFS input reads (stage 0) are not shuffle traffic; with shared memory
  // on, a terasort's map stage is unchanged — only the reduce stage
  // accelerates, so the job can never finish faster than its map stage.
  exp::ClusterParams p;
  p.workers = 6;
  p.seed = 11;
  exp::Cluster c = exp::make_cluster(p);
  c.framework->set_shared_memory_shuffle(true);
  const double maps_only = exp::run_job(c, make_terasort(12, 1));
  EXPECT_GT(maps_only, 5.0);  // map reads still take real disk time
}

}  // namespace
}  // namespace perfcloud::wl
