# Empty dependencies file for pc_tests.
# This may be replaced when dependencies are built.
