
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_allocation.cpp" "tests/CMakeFiles/pc_tests.dir/test_allocation.cpp.o" "gcc" "tests/CMakeFiles/pc_tests.dir/test_allocation.cpp.o.d"
  "/root/repo/tests/test_antagonists.cpp" "tests/CMakeFiles/pc_tests.dir/test_antagonists.cpp.o" "gcc" "tests/CMakeFiles/pc_tests.dir/test_antagonists.cpp.o.d"
  "/root/repo/tests/test_baselines.cpp" "tests/CMakeFiles/pc_tests.dir/test_baselines.cpp.o" "gcc" "tests/CMakeFiles/pc_tests.dir/test_baselines.cpp.o.d"
  "/root/repo/tests/test_benchmarks_extended.cpp" "tests/CMakeFiles/pc_tests.dir/test_benchmarks_extended.cpp.o" "gcc" "tests/CMakeFiles/pc_tests.dir/test_benchmarks_extended.cpp.o.d"
  "/root/repo/tests/test_cloud.cpp" "tests/CMakeFiles/pc_tests.dir/test_cloud.cpp.o" "gcc" "tests/CMakeFiles/pc_tests.dir/test_cloud.cpp.o.d"
  "/root/repo/tests/test_correlation.cpp" "tests/CMakeFiles/pc_tests.dir/test_correlation.cpp.o" "gcc" "tests/CMakeFiles/pc_tests.dir/test_correlation.cpp.o.d"
  "/root/repo/tests/test_cpu.cpp" "tests/CMakeFiles/pc_tests.dir/test_cpu.cpp.o" "gcc" "tests/CMakeFiles/pc_tests.dir/test_cpu.cpp.o.d"
  "/root/repo/tests/test_cubic.cpp" "tests/CMakeFiles/pc_tests.dir/test_cubic.cpp.o" "gcc" "tests/CMakeFiles/pc_tests.dir/test_cubic.cpp.o.d"
  "/root/repo/tests/test_detector.cpp" "tests/CMakeFiles/pc_tests.dir/test_detector.cpp.o" "gcc" "tests/CMakeFiles/pc_tests.dir/test_detector.cpp.o.d"
  "/root/repo/tests/test_disk.cpp" "tests/CMakeFiles/pc_tests.dir/test_disk.cpp.o" "gcc" "tests/CMakeFiles/pc_tests.dir/test_disk.cpp.o.d"
  "/root/repo/tests/test_engine.cpp" "tests/CMakeFiles/pc_tests.dir/test_engine.cpp.o" "gcc" "tests/CMakeFiles/pc_tests.dir/test_engine.cpp.o.d"
  "/root/repo/tests/test_event_queue.cpp" "tests/CMakeFiles/pc_tests.dir/test_event_queue.cpp.o" "gcc" "tests/CMakeFiles/pc_tests.dir/test_event_queue.cpp.o.d"
  "/root/repo/tests/test_exp.cpp" "tests/CMakeFiles/pc_tests.dir/test_exp.cpp.o" "gcc" "tests/CMakeFiles/pc_tests.dir/test_exp.cpp.o.d"
  "/root/repo/tests/test_failures_skew.cpp" "tests/CMakeFiles/pc_tests.dir/test_failures_skew.cpp.o" "gcc" "tests/CMakeFiles/pc_tests.dir/test_failures_skew.cpp.o.d"
  "/root/repo/tests/test_framework.cpp" "tests/CMakeFiles/pc_tests.dir/test_framework.cpp.o" "gcc" "tests/CMakeFiles/pc_tests.dir/test_framework.cpp.o.d"
  "/root/repo/tests/test_hw_properties.cpp" "tests/CMakeFiles/pc_tests.dir/test_hw_properties.cpp.o" "gcc" "tests/CMakeFiles/pc_tests.dir/test_hw_properties.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/pc_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/pc_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_job.cpp" "tests/CMakeFiles/pc_tests.dir/test_job.cpp.o" "gcc" "tests/CMakeFiles/pc_tests.dir/test_job.cpp.o.d"
  "/root/repo/tests/test_memory.cpp" "tests/CMakeFiles/pc_tests.dir/test_memory.cpp.o" "gcc" "tests/CMakeFiles/pc_tests.dir/test_memory.cpp.o.d"
  "/root/repo/tests/test_migration.cpp" "tests/CMakeFiles/pc_tests.dir/test_migration.cpp.o" "gcc" "tests/CMakeFiles/pc_tests.dir/test_migration.cpp.o.d"
  "/root/repo/tests/test_mix.cpp" "tests/CMakeFiles/pc_tests.dir/test_mix.cpp.o" "gcc" "tests/CMakeFiles/pc_tests.dir/test_mix.cpp.o.d"
  "/root/repo/tests/test_monitor.cpp" "tests/CMakeFiles/pc_tests.dir/test_monitor.cpp.o" "gcc" "tests/CMakeFiles/pc_tests.dir/test_monitor.cpp.o.d"
  "/root/repo/tests/test_node_manager.cpp" "tests/CMakeFiles/pc_tests.dir/test_node_manager.cpp.o" "gcc" "tests/CMakeFiles/pc_tests.dir/test_node_manager.cpp.o.d"
  "/root/repo/tests/test_numa.cpp" "tests/CMakeFiles/pc_tests.dir/test_numa.cpp.o" "gcc" "tests/CMakeFiles/pc_tests.dir/test_numa.cpp.o.d"
  "/root/repo/tests/test_perfcloud_properties.cpp" "tests/CMakeFiles/pc_tests.dir/test_perfcloud_properties.cpp.o" "gcc" "tests/CMakeFiles/pc_tests.dir/test_perfcloud_properties.cpp.o.d"
  "/root/repo/tests/test_rng.cpp" "tests/CMakeFiles/pc_tests.dir/test_rng.cpp.o" "gcc" "tests/CMakeFiles/pc_tests.dir/test_rng.cpp.o.d"
  "/root/repo/tests/test_server.cpp" "tests/CMakeFiles/pc_tests.dir/test_server.cpp.o" "gcc" "tests/CMakeFiles/pc_tests.dir/test_server.cpp.o.d"
  "/root/repo/tests/test_shared_memory.cpp" "tests/CMakeFiles/pc_tests.dir/test_shared_memory.cpp.o" "gcc" "tests/CMakeFiles/pc_tests.dir/test_shared_memory.cpp.o.d"
  "/root/repo/tests/test_stats.cpp" "tests/CMakeFiles/pc_tests.dir/test_stats.cpp.o" "gcc" "tests/CMakeFiles/pc_tests.dir/test_stats.cpp.o.d"
  "/root/repo/tests/test_stress.cpp" "tests/CMakeFiles/pc_tests.dir/test_stress.cpp.o" "gcc" "tests/CMakeFiles/pc_tests.dir/test_stress.cpp.o.d"
  "/root/repo/tests/test_summary.cpp" "tests/CMakeFiles/pc_tests.dir/test_summary.cpp.o" "gcc" "tests/CMakeFiles/pc_tests.dir/test_summary.cpp.o.d"
  "/root/repo/tests/test_task.cpp" "tests/CMakeFiles/pc_tests.dir/test_task.cpp.o" "gcc" "tests/CMakeFiles/pc_tests.dir/test_task.cpp.o.d"
  "/root/repo/tests/test_time_series.cpp" "tests/CMakeFiles/pc_tests.dir/test_time_series.cpp.o" "gcc" "tests/CMakeFiles/pc_tests.dir/test_time_series.cpp.o.d"
  "/root/repo/tests/test_trace.cpp" "tests/CMakeFiles/pc_tests.dir/test_trace.cpp.o" "gcc" "tests/CMakeFiles/pc_tests.dir/test_trace.cpp.o.d"
  "/root/repo/tests/test_virt.cpp" "tests/CMakeFiles/pc_tests.dir/test_virt.cpp.o" "gcc" "tests/CMakeFiles/pc_tests.dir/test_virt.cpp.o.d"
  "/root/repo/tests/test_worker.cpp" "tests/CMakeFiles/pc_tests.dir/test_worker.cpp.o" "gcc" "tests/CMakeFiles/pc_tests.dir/test_worker.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/exp/CMakeFiles/pc_exp.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/pc_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/pc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/pc_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/cloud/CMakeFiles/pc_cloud.dir/DependInfo.cmake"
  "/root/repo/build/src/virt/CMakeFiles/pc_virt.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/pc_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
