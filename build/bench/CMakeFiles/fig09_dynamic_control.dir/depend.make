# Empty dependencies file for fig09_dynamic_control.
# This may be replaced when dependencies are built.
