file(REMOVE_RECURSE
  "CMakeFiles/fig09_dynamic_control.dir/fig09_dynamic_control.cpp.o"
  "CMakeFiles/fig09_dynamic_control.dir/fig09_dynamic_control.cpp.o.d"
  "fig09_dynamic_control"
  "fig09_dynamic_control.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_dynamic_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
