# Empty dependencies file for fig06_cpu_antagonist_id.
# This may be replaced when dependencies are built.
