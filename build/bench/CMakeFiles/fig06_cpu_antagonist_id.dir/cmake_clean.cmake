file(REMOVE_RECURSE
  "CMakeFiles/fig06_cpu_antagonist_id.dir/fig06_cpu_antagonist_id.cpp.o"
  "CMakeFiles/fig06_cpu_antagonist_id.dir/fig06_cpu_antagonist_id.cpp.o.d"
  "fig06_cpu_antagonist_id"
  "fig06_cpu_antagonist_id.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_cpu_antagonist_id.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
