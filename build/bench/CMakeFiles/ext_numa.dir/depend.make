# Empty dependencies file for ext_numa.
# This may be replaced when dependencies are built.
