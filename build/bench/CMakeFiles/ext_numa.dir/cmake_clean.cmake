file(REMOVE_RECURSE
  "CMakeFiles/ext_numa.dir/ext_numa.cpp.o"
  "CMakeFiles/ext_numa.dir/ext_numa.cpp.o.d"
  "ext_numa"
  "ext_numa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_numa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
