file(REMOVE_RECURSE
  "CMakeFiles/fig03_iowait_signal.dir/fig03_iowait_signal.cpp.o"
  "CMakeFiles/fig03_iowait_signal.dir/fig03_iowait_signal.cpp.o.d"
  "fig03_iowait_signal"
  "fig03_iowait_signal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_iowait_signal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
