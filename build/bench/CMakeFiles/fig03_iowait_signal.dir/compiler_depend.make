# Empty compiler generated dependencies file for fig03_iowait_signal.
# This may be replaced when dependencies are built.
