file(REMOVE_RECURSE
  "CMakeFiles/fig02_memory_interference.dir/fig02_memory_interference.cpp.o"
  "CMakeFiles/fig02_memory_interference.dir/fig02_memory_interference.cpp.o.d"
  "fig02_memory_interference"
  "fig02_memory_interference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_memory_interference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
