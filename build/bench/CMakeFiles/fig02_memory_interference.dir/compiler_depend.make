# Empty compiler generated dependencies file for fig02_memory_interference.
# This may be replaced when dependencies are built.
