# Empty dependencies file for fig12_variability.
# This may be replaced when dependencies are built.
