file(REMOVE_RECURSE
  "CMakeFiles/fig12_variability.dir/fig12_variability.cpp.o"
  "CMakeFiles/fig12_variability.dir/fig12_variability.cpp.o.d"
  "fig12_variability"
  "fig12_variability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_variability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
