# Empty dependencies file for fig04_cpi_signal.
# This may be replaced when dependencies are built.
