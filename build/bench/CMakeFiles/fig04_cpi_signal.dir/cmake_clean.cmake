file(REMOVE_RECURSE
  "CMakeFiles/fig04_cpi_signal.dir/fig04_cpi_signal.cpp.o"
  "CMakeFiles/fig04_cpi_signal.dir/fig04_cpi_signal.cpp.o.d"
  "fig04_cpi_signal"
  "fig04_cpi_signal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_cpi_signal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
