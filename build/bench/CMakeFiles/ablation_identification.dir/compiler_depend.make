# Empty compiler generated dependencies file for ablation_identification.
# This may be replaced when dependencies are built.
