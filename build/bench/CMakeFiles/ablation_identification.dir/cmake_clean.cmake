file(REMOVE_RECURSE
  "CMakeFiles/ablation_identification.dir/ablation_identification.cpp.o"
  "CMakeFiles/ablation_identification.dir/ablation_identification.cpp.o.d"
  "ablation_identification"
  "ablation_identification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_identification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
