# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig01_io_cap_sweep.
