# Empty compiler generated dependencies file for fig01_io_cap_sweep.
# This may be replaced when dependencies are built.
