file(REMOVE_RECURSE
  "CMakeFiles/fig01_io_cap_sweep.dir/fig01_io_cap_sweep.cpp.o"
  "CMakeFiles/fig01_io_cap_sweep.dir/fig01_io_cap_sweep.cpp.o.d"
  "fig01_io_cap_sweep"
  "fig01_io_cap_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_io_cap_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
