# Empty compiler generated dependencies file for fig07_cubic_regions.
# This may be replaced when dependencies are built.
