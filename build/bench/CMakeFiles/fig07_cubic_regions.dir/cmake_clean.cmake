file(REMOVE_RECURSE
  "CMakeFiles/fig07_cubic_regions.dir/fig07_cubic_regions.cpp.o"
  "CMakeFiles/fig07_cubic_regions.dir/fig07_cubic_regions.cpp.o.d"
  "fig07_cubic_regions"
  "fig07_cubic_regions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_cubic_regions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
