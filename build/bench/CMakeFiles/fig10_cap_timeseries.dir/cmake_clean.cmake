file(REMOVE_RECURSE
  "CMakeFiles/fig10_cap_timeseries.dir/fig10_cap_timeseries.cpp.o"
  "CMakeFiles/fig10_cap_timeseries.dir/fig10_cap_timeseries.cpp.o.d"
  "fig10_cap_timeseries"
  "fig10_cap_timeseries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_cap_timeseries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
