# Empty compiler generated dependencies file for fig10_cap_timeseries.
# This may be replaced when dependencies are built.
