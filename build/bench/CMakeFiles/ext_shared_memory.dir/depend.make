# Empty dependencies file for ext_shared_memory.
# This may be replaced when dependencies are built.
