file(REMOVE_RECURSE
  "CMakeFiles/ext_shared_memory.dir/ext_shared_memory.cpp.o"
  "CMakeFiles/ext_shared_memory.dir/ext_shared_memory.cpp.o.d"
  "ext_shared_memory"
  "ext_shared_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_shared_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
