file(REMOVE_RECURSE
  "CMakeFiles/fig05_io_antagonist_id.dir/fig05_io_antagonist_id.cpp.o"
  "CMakeFiles/fig05_io_antagonist_id.dir/fig05_io_antagonist_id.cpp.o.d"
  "fig05_io_antagonist_id"
  "fig05_io_antagonist_id.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_io_antagonist_id.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
