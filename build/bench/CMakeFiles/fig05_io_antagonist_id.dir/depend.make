# Empty dependencies file for fig05_io_antagonist_id.
# This may be replaced when dependencies are built.
