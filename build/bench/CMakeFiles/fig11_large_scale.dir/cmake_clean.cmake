file(REMOVE_RECURSE
  "CMakeFiles/fig11_large_scale.dir/fig11_large_scale.cpp.o"
  "CMakeFiles/fig11_large_scale.dir/fig11_large_scale.cpp.o.d"
  "fig11_large_scale"
  "fig11_large_scale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_large_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
