# Empty compiler generated dependencies file for fig11_large_scale.
# This may be replaced when dependencies are built.
