file(REMOVE_RECURSE
  "CMakeFiles/noisy_neighbor.dir/noisy_neighbor.cpp.o"
  "CMakeFiles/noisy_neighbor.dir/noisy_neighbor.cpp.o.d"
  "noisy_neighbor"
  "noisy_neighbor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/noisy_neighbor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
