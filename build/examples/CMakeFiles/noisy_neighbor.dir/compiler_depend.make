# Empty compiler generated dependencies file for noisy_neighbor.
# This may be replaced when dependencies are built.
