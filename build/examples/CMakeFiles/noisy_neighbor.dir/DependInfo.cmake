
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/noisy_neighbor.cpp" "examples/CMakeFiles/noisy_neighbor.dir/noisy_neighbor.cpp.o" "gcc" "examples/CMakeFiles/noisy_neighbor.dir/noisy_neighbor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/exp/CMakeFiles/pc_exp.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/pc_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/pc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/pc_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/cloud/CMakeFiles/pc_cloud.dir/DependInfo.cmake"
  "/root/repo/build/src/virt/CMakeFiles/pc_virt.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/pc_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
