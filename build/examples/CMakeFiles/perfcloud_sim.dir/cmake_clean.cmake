file(REMOVE_RECURSE
  "CMakeFiles/perfcloud_sim.dir/perfcloud_sim.cpp.o"
  "CMakeFiles/perfcloud_sim.dir/perfcloud_sim.cpp.o.d"
  "perfcloud_sim"
  "perfcloud_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perfcloud_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
