# Empty compiler generated dependencies file for perfcloud_sim.
# This may be replaced when dependencies are built.
