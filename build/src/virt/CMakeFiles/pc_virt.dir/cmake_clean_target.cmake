file(REMOVE_RECURSE
  "libpc_virt.a"
)
