# Empty compiler generated dependencies file for pc_virt.
# This may be replaced when dependencies are built.
