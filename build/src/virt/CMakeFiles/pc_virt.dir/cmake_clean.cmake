file(REMOVE_RECURSE
  "CMakeFiles/pc_virt.dir/hypervisor.cpp.o"
  "CMakeFiles/pc_virt.dir/hypervisor.cpp.o.d"
  "libpc_virt.a"
  "libpc_virt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pc_virt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
