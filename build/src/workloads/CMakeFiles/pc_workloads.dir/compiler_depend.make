# Empty compiler generated dependencies file for pc_workloads.
# This may be replaced when dependencies are built.
