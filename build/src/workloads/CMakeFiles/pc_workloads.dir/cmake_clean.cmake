file(REMOVE_RECURSE
  "CMakeFiles/pc_workloads.dir/antagonists.cpp.o"
  "CMakeFiles/pc_workloads.dir/antagonists.cpp.o.d"
  "CMakeFiles/pc_workloads.dir/benchmarks.cpp.o"
  "CMakeFiles/pc_workloads.dir/benchmarks.cpp.o.d"
  "CMakeFiles/pc_workloads.dir/framework.cpp.o"
  "CMakeFiles/pc_workloads.dir/framework.cpp.o.d"
  "CMakeFiles/pc_workloads.dir/job.cpp.o"
  "CMakeFiles/pc_workloads.dir/job.cpp.o.d"
  "CMakeFiles/pc_workloads.dir/mix.cpp.o"
  "CMakeFiles/pc_workloads.dir/mix.cpp.o.d"
  "CMakeFiles/pc_workloads.dir/task.cpp.o"
  "CMakeFiles/pc_workloads.dir/task.cpp.o.d"
  "CMakeFiles/pc_workloads.dir/worker.cpp.o"
  "CMakeFiles/pc_workloads.dir/worker.cpp.o.d"
  "libpc_workloads.a"
  "libpc_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pc_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
