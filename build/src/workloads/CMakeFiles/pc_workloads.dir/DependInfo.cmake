
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/antagonists.cpp" "src/workloads/CMakeFiles/pc_workloads.dir/antagonists.cpp.o" "gcc" "src/workloads/CMakeFiles/pc_workloads.dir/antagonists.cpp.o.d"
  "/root/repo/src/workloads/benchmarks.cpp" "src/workloads/CMakeFiles/pc_workloads.dir/benchmarks.cpp.o" "gcc" "src/workloads/CMakeFiles/pc_workloads.dir/benchmarks.cpp.o.d"
  "/root/repo/src/workloads/framework.cpp" "src/workloads/CMakeFiles/pc_workloads.dir/framework.cpp.o" "gcc" "src/workloads/CMakeFiles/pc_workloads.dir/framework.cpp.o.d"
  "/root/repo/src/workloads/job.cpp" "src/workloads/CMakeFiles/pc_workloads.dir/job.cpp.o" "gcc" "src/workloads/CMakeFiles/pc_workloads.dir/job.cpp.o.d"
  "/root/repo/src/workloads/mix.cpp" "src/workloads/CMakeFiles/pc_workloads.dir/mix.cpp.o" "gcc" "src/workloads/CMakeFiles/pc_workloads.dir/mix.cpp.o.d"
  "/root/repo/src/workloads/task.cpp" "src/workloads/CMakeFiles/pc_workloads.dir/task.cpp.o" "gcc" "src/workloads/CMakeFiles/pc_workloads.dir/task.cpp.o.d"
  "/root/repo/src/workloads/worker.cpp" "src/workloads/CMakeFiles/pc_workloads.dir/worker.cpp.o" "gcc" "src/workloads/CMakeFiles/pc_workloads.dir/worker.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/virt/CMakeFiles/pc_virt.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/pc_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
