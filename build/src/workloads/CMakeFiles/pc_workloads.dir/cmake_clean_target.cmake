file(REMOVE_RECURSE
  "libpc_workloads.a"
)
