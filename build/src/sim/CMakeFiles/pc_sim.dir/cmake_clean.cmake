file(REMOVE_RECURSE
  "CMakeFiles/pc_sim.dir/correlation.cpp.o"
  "CMakeFiles/pc_sim.dir/correlation.cpp.o.d"
  "CMakeFiles/pc_sim.dir/engine.cpp.o"
  "CMakeFiles/pc_sim.dir/engine.cpp.o.d"
  "CMakeFiles/pc_sim.dir/event_queue.cpp.o"
  "CMakeFiles/pc_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/pc_sim.dir/rng.cpp.o"
  "CMakeFiles/pc_sim.dir/rng.cpp.o.d"
  "CMakeFiles/pc_sim.dir/stats.cpp.o"
  "CMakeFiles/pc_sim.dir/stats.cpp.o.d"
  "CMakeFiles/pc_sim.dir/time_series.cpp.o"
  "CMakeFiles/pc_sim.dir/time_series.cpp.o.d"
  "libpc_sim.a"
  "libpc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
