file(REMOVE_RECURSE
  "libpc_sim.a"
)
