# Empty compiler generated dependencies file for pc_sim.
# This may be replaced when dependencies are built.
