file(REMOVE_RECURSE
  "libpc_core.a"
)
