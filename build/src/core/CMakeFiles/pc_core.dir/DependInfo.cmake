
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/cubic.cpp" "src/core/CMakeFiles/pc_core.dir/cubic.cpp.o" "gcc" "src/core/CMakeFiles/pc_core.dir/cubic.cpp.o.d"
  "/root/repo/src/core/detector.cpp" "src/core/CMakeFiles/pc_core.dir/detector.cpp.o" "gcc" "src/core/CMakeFiles/pc_core.dir/detector.cpp.o.d"
  "/root/repo/src/core/identifier.cpp" "src/core/CMakeFiles/pc_core.dir/identifier.cpp.o" "gcc" "src/core/CMakeFiles/pc_core.dir/identifier.cpp.o.d"
  "/root/repo/src/core/monitor.cpp" "src/core/CMakeFiles/pc_core.dir/monitor.cpp.o" "gcc" "src/core/CMakeFiles/pc_core.dir/monitor.cpp.o.d"
  "/root/repo/src/core/node_manager.cpp" "src/core/CMakeFiles/pc_core.dir/node_manager.cpp.o" "gcc" "src/core/CMakeFiles/pc_core.dir/node_manager.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cloud/CMakeFiles/pc_cloud.dir/DependInfo.cmake"
  "/root/repo/build/src/virt/CMakeFiles/pc_virt.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/pc_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
