file(REMOVE_RECURSE
  "CMakeFiles/pc_core.dir/cubic.cpp.o"
  "CMakeFiles/pc_core.dir/cubic.cpp.o.d"
  "CMakeFiles/pc_core.dir/detector.cpp.o"
  "CMakeFiles/pc_core.dir/detector.cpp.o.d"
  "CMakeFiles/pc_core.dir/identifier.cpp.o"
  "CMakeFiles/pc_core.dir/identifier.cpp.o.d"
  "CMakeFiles/pc_core.dir/monitor.cpp.o"
  "CMakeFiles/pc_core.dir/monitor.cpp.o.d"
  "CMakeFiles/pc_core.dir/node_manager.cpp.o"
  "CMakeFiles/pc_core.dir/node_manager.cpp.o.d"
  "libpc_core.a"
  "libpc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
