# Empty dependencies file for pc_core.
# This may be replaced when dependencies are built.
