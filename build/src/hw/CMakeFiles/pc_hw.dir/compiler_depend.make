# Empty compiler generated dependencies file for pc_hw.
# This may be replaced when dependencies are built.
