
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hw/allocation.cpp" "src/hw/CMakeFiles/pc_hw.dir/allocation.cpp.o" "gcc" "src/hw/CMakeFiles/pc_hw.dir/allocation.cpp.o.d"
  "/root/repo/src/hw/cpu.cpp" "src/hw/CMakeFiles/pc_hw.dir/cpu.cpp.o" "gcc" "src/hw/CMakeFiles/pc_hw.dir/cpu.cpp.o.d"
  "/root/repo/src/hw/disk.cpp" "src/hw/CMakeFiles/pc_hw.dir/disk.cpp.o" "gcc" "src/hw/CMakeFiles/pc_hw.dir/disk.cpp.o.d"
  "/root/repo/src/hw/memory.cpp" "src/hw/CMakeFiles/pc_hw.dir/memory.cpp.o" "gcc" "src/hw/CMakeFiles/pc_hw.dir/memory.cpp.o.d"
  "/root/repo/src/hw/server.cpp" "src/hw/CMakeFiles/pc_hw.dir/server.cpp.o" "gcc" "src/hw/CMakeFiles/pc_hw.dir/server.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/pc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
