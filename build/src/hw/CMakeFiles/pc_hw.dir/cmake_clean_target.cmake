file(REMOVE_RECURSE
  "libpc_hw.a"
)
