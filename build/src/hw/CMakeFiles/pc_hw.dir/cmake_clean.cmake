file(REMOVE_RECURSE
  "CMakeFiles/pc_hw.dir/allocation.cpp.o"
  "CMakeFiles/pc_hw.dir/allocation.cpp.o.d"
  "CMakeFiles/pc_hw.dir/cpu.cpp.o"
  "CMakeFiles/pc_hw.dir/cpu.cpp.o.d"
  "CMakeFiles/pc_hw.dir/disk.cpp.o"
  "CMakeFiles/pc_hw.dir/disk.cpp.o.d"
  "CMakeFiles/pc_hw.dir/memory.cpp.o"
  "CMakeFiles/pc_hw.dir/memory.cpp.o.d"
  "CMakeFiles/pc_hw.dir/server.cpp.o"
  "CMakeFiles/pc_hw.dir/server.cpp.o.d"
  "libpc_hw.a"
  "libpc_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pc_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
