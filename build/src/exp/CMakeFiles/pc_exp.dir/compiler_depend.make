# Empty compiler generated dependencies file for pc_exp.
# This may be replaced when dependencies are built.
