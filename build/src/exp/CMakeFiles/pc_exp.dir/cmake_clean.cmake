file(REMOVE_RECURSE
  "CMakeFiles/pc_exp.dir/cluster.cpp.o"
  "CMakeFiles/pc_exp.dir/cluster.cpp.o.d"
  "CMakeFiles/pc_exp.dir/report.cpp.o"
  "CMakeFiles/pc_exp.dir/report.cpp.o.d"
  "CMakeFiles/pc_exp.dir/summary.cpp.o"
  "CMakeFiles/pc_exp.dir/summary.cpp.o.d"
  "CMakeFiles/pc_exp.dir/trace.cpp.o"
  "CMakeFiles/pc_exp.dir/trace.cpp.o.d"
  "libpc_exp.a"
  "libpc_exp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pc_exp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
