file(REMOVE_RECURSE
  "libpc_exp.a"
)
