# Empty compiler generated dependencies file for pc_baselines.
# This may be replaced when dependencies are built.
