file(REMOVE_RECURSE
  "CMakeFiles/pc_baselines.dir/late.cpp.o"
  "CMakeFiles/pc_baselines.dir/late.cpp.o.d"
  "libpc_baselines.a"
  "libpc_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pc_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
