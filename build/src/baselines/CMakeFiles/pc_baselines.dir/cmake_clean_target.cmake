file(REMOVE_RECURSE
  "libpc_baselines.a"
)
