file(REMOVE_RECURSE
  "libpc_cloud.a"
)
