# Empty compiler generated dependencies file for pc_cloud.
# This may be replaced when dependencies are built.
