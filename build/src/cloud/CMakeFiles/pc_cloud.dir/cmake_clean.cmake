file(REMOVE_RECURSE
  "CMakeFiles/pc_cloud.dir/cloud_manager.cpp.o"
  "CMakeFiles/pc_cloud.dir/cloud_manager.cpp.o.d"
  "CMakeFiles/pc_cloud.dir/placement.cpp.o"
  "CMakeFiles/pc_cloud.dir/placement.cpp.o.d"
  "libpc_cloud.a"
  "libpc_cloud.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pc_cloud.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
