// Ablation — the antagonist-identification design choices.
//
// DESIGN.md §5b documents three departures/choices in the identification
// path: absolute-value correlation, identification memory, and the
// correlation window. This bench reruns a standard episodic-antagonist
// scenario (5 hosts, 50 workers, job stream, fio/STREAM episodes) for each
// configuration and reports:
//   - episode coverage: fraction of antagonist episodes that acquired a cap
//     controller;
//   - bystander safety: whether any sysbench-cpu VM was ever throttled;
//   - mean job completion time of the stream.
#include <iostream>
#include <vector>

#include "common.hpp"
#include "exp/report.hpp"
#include "workloads/mix.hpp"

using namespace perfcloud;

namespace {

struct Outcome {
  double coverage = 0.0;
  int innocents_throttled = 0;
  double mean_jct = 0.0;
};

Outcome run(const core::PerfCloudConfig& cfg, std::uint64_t seed) {
  exp::ClusterParams p;
  p.hosts = 5;
  p.workers = 50;
  p.seed = seed;
  p.tick_dt = 0.25;
  exp::Cluster c = exp::make_cluster(p);

  struct Episode {
    int vm;
    std::size_t host;
  };
  std::vector<Episode> episodes;
  std::vector<int> innocents;
  sim::Rng rng(seed * 31 + 7);
  for (int i = 0; i < 16; ++i) {
    const auto host = static_cast<std::size_t>(rng.uniform_int(0, 4));
    const double start = rng.uniform(0.0, 1400.0);
    const double dur = rng.uniform(150.0, 400.0);
    int vm = 0;
    if (i % 2 == 0) {
      vm = exp::add_fio(c, c.hosts[host],
                        wl::FioRandomRead::Params{.duration_s = dur, .start_s = start});
    } else {
      vm = exp::add_stream(c, c.hosts[host],
                           wl::StreamBenchmark::Params{.threads = 16, .duration_s = dur,
                                                       .start_s = start});
    }
    episodes.push_back(Episode{vm, host});
  }
  // Innocent bystanders on every host.
  for (std::size_t h = 0; h < c.hosts.size(); ++h) {
    innocents.push_back(exp::add_sysbench_cpu(
        c, c.hosts[h], wl::SysbenchCpu::Params{.total_instructions = 1e14}));
  }

  exp::enable_perfcloud(c, cfg);

  sim::Rng mix_rng(seed);
  wl::MixParams mp;
  mp.num_jobs = 40;
  mp.mean_interarrival_s = 45.0;
  const auto mix = wl::make_mapreduce_mix(mp, mix_rng);
  std::vector<wl::JobId> ids;
  for (const wl::MixEntry& e : mix) {
    c.engine->at(sim::SimTime(e.submit_time_s),
                 [&c, &e, &ids](sim::SimTime) { ids.push_back(c.framework->submit(e.spec)); });
  }
  c.engine->run_while(
      [&] { return ids.size() < mix.size() || !c.framework->all_done(); },
      sim::SimTime(20000.0));

  Outcome o;
  int covered = 0;
  for (const Episode& e : episodes) {
    core::NodeManager& nm = c.node_manager(e.host);
    if (!nm.io_cap_series(e.vm).empty() || !nm.cpu_cap_series(e.vm).empty()) ++covered;
  }
  o.coverage = static_cast<double>(covered) / static_cast<double>(episodes.size());
  for (std::size_t h = 0; h < c.hosts.size(); ++h) {
    for (const int vm : innocents) {
      core::NodeManager& nm = c.node_manager(h);
      if (!nm.io_cap_series(vm).empty() || !nm.cpu_cap_series(vm).empty()) {
        ++o.innocents_throttled;
      }
    }
  }
  double total = 0.0;
  int done = 0;
  for (const wl::JobId id : ids) {
    const wl::Job* j = c.framework->find_job(id);
    if (j != nullptr && j->completed()) {
      total += j->jct();
      ++done;
    }
  }
  o.mean_jct = done > 0 ? total / done : 0.0;
  return o;
}

}  // namespace

int main() {
  constexpr std::uint64_t kSeed = 404;
  exp::print_banner(std::cout, "Ablation", "antagonist-identification design choices");
  exp::Table t({"configuration", "episode coverage", "innocents throttled", "mean JCT (s)"});

  const auto row = [&](const std::string& name, const core::PerfCloudConfig& cfg) {
    const Outcome o = run(cfg, kSeed);
    t.add_row({name, exp::fmt(o.coverage, 2), std::to_string(o.innocents_throttled),
               exp::fmt(o.mean_jct, 1)});
  };

  core::PerfCloudConfig base;
  row("default (|r|, memory 600s, window 12)", base);

  core::PerfCloudConfig paper = base;
  paper.use_absolute_correlation = false;
  row("paper rule: positive r only", paper);

  core::PerfCloudConfig no_memory = base;
  no_memory.identification_memory_s = 0.0;
  row("no identification memory", no_memory);

  core::PerfCloudConfig wide = base;
  wide.correlation_window = 24;
  row("correlation window 24", wide);

  core::PerfCloudConfig narrow = base;
  narrow.correlation_window = 6;
  row("correlation window 6", narrow);

  core::PerfCloudConfig no_gate = base;
  no_gate.min_usage_fraction = 0.0;
  row("no usage-magnitude gate", no_gate);

  t.print(std::cout);
  std::cout << "\nReading: coverage should fall without |r| or without memory; the\n"
               "magnitude gate exists to keep 'innocents throttled' at zero.\n";
  return 0;
}
