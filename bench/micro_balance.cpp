// Load-balance microbenchmark for the shard scheduler and the idle-host
// fast path, on a deliberately skewed cluster: all workers (and all
// antagonists) packed onto the first 3 of 12 hosts, the other 9 idle.
//
// Two comparisons, same scenario:
//  - static vs work-stealing at shards=4. The static partition hands the
//    three hot hosts to ONE shard as a contiguous block (ceil(12/4) = 3) and
//    leaves the other shards idle; the cost-sorted work-stealing order
//    spreads them across shards. Needs >= 2 cores to show as wall time.
//  - idle fast path on vs off at shards=1. Quiescent hosts take the O(1)
//    hypervisor/node-manager early-out, so per-quantum engine work shrinks
//    even on a single core.
//
// Every run must produce an identical result fingerprint — a scheduler or
// fast path that changed an output would be a correctness bug, so the bench
// hard-fails on any mismatch. Results go to stdout and BENCH_balance.json.
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common.hpp"
#include "exp/report.hpp"
#include "hw_context.hpp"
#include "virt/hypervisor.hpp"
#include "workloads/mix.hpp"

using namespace perfcloud;

namespace {

constexpr std::uint64_t kSeed = 71;
constexpr int kJobs = 10;
constexpr int kHosts = 12;
constexpr int kHotHosts = 3;
constexpr double kTickDt = 0.1;

double now_seconds() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// RAII save/restore of the global idle-fast-path switch.
class ScopedFastpath {
 public:
  explicit ScopedFastpath(bool enabled) : saved_(virt::idle_fastpath_enabled()) {
    virt::set_idle_fastpath_enabled(enabled);
  }
  ~ScopedFastpath() { virt::set_idle_fastpath_enabled(saved_); }

 private:
  bool saved_;
};

struct RunResult {
  std::string label;
  double wall_s = 0.0;
  double us_per_quantum = 0.0;
  // Result fingerprint — must be identical for every configuration.
  double jct_sum = 0.0;
  int completed = 0;
  double efficiency = 0.0;
  double final_time_s = 0.0;
};

RunResult run_once(const std::string& label, unsigned shards,
                   std::optional<sim::ShardSchedule> schedule, bool fastpath) {
  ScopedFastpath guard(fastpath);
  exp::ClusterParams p;
  p.hosts = kHosts;
  p.workers = 10 * kHotHosts;
  p.worker_host_limit = kHotHosts;  // hosts 3..11 stay empty
  p.seed = kSeed;
  p.tick_dt = kTickDt;
  p.shards = shards;
  p.schedule = schedule;

  const double t0 = now_seconds();
  exp::Cluster c = exp::make_cluster(p);
  // Antagonists pile onto the hot hosts too. Every idle host gets a short
  // finite fio: once it drains (t >= 45 s) the host is quiescent but still
  // carries a resident VM, so the fast path has real per-quantum monitor
  // work to bypass — an empty host is already nearly free to tick.
  for (int h = 0; h < kHotHosts; ++h) {
    const std::string host = "host-" + std::to_string(h);
    exp::add_fio(c, host, wl::FioRandomRead::Params{.duration_s = 500.0, .start_s = 30.0});
    exp::add_stream(c, host,
                    wl::StreamBenchmark::Params{.threads = 8, .duration_s = 400.0,
                                                .start_s = 60.0});
  }
  for (int h = kHotHosts; h < kHosts; ++h) {
    exp::add_fio(c, "host-" + std::to_string(h),
                 wl::FioRandomRead::Params{.duration_s = 40.0, .start_s = 5.0});
  }

  core::PerfCloudConfig cfg;
  cfg.monitor_series_capacity = cfg.correlation_window;
  exp::enable_perfcloud(c, cfg);

  sim::Rng mix_rng(kSeed);
  wl::MixParams mp;
  mp.num_jobs = kJobs;
  mp.mean_interarrival_s = 60.0;
  const std::vector<wl::MixEntry> mix = wl::make_mapreduce_mix(mp, mix_rng);
  std::vector<wl::JobId> ids;
  ids.reserve(mix.size());
  for (const wl::MixEntry& e : mix) {
    c.engine->at(sim::SimTime(e.submit_time_s),
                 [&c, &ids, &e](sim::SimTime) { ids.push_back(c.framework->submit(e.spec)); });
  }
  c.engine->run_while(
      [&] { return ids.size() < mix.size() || !c.framework->all_done(); },
      sim::SimTime(20000.0));

  RunResult r;
  r.label = label;
  r.wall_s = now_seconds() - t0;
  r.efficiency = c.framework->utilization_efficiency();
  r.final_time_s = c.engine->now().seconds();
  r.us_per_quantum = r.wall_s * 1e6 / (r.final_time_s / kTickDt);
  for (const wl::JobId id : ids) {
    const wl::Job* job = c.framework->find_job(id);
    if (job != nullptr && job->completed()) {
      r.jct_sum += job->jct();
      ++r.completed;
    }
  }
  return r;
}

}  // namespace

int main() {
  std::cout << "micro_balance: skewed cluster (" << kHotHosts << " hot hosts of " << kHosts
            << ", rest idle), " << kJobs << " jobs, antagonist pile-up, PerfCloud on\n"
            << "hardware threads available: " << std::thread::hardware_concurrency() << "\n\n";

  std::vector<RunResult> results;
  const auto run = [&](const std::string& label, unsigned shards,
                       std::optional<sim::ShardSchedule> schedule, bool fastpath) {
    std::cout << "  " << label << " ..." << std::flush;
    results.push_back(run_once(label, shards, schedule, fastpath));
    std::cout << " " << results.back().wall_s << " s wall\n";
  };
  run("shards=4 static", 4, sim::ShardSchedule::kStatic, true);
  run("shards=4 work-stealing", 4, sim::ShardSchedule::kWorkStealing, true);
  run("shards=1 fastpath off", 1, std::nullopt, false);
  run("shards=1 fastpath on", 1, std::nullopt, true);
  std::cout << "\n";

  // Determinism gate: scheduler choice, shard count, and the idle fast path
  // may change wall-clock time only. A tolerance would hide real bugs.
  const RunResult& base = results.front();
  for (std::size_t i = 1; i < results.size(); ++i) {
    const RunResult& r = results[i];
    if (r.jct_sum != base.jct_sum || r.completed != base.completed ||
        r.efficiency != base.efficiency || r.final_time_s != base.final_time_s) {
      std::cerr << "FAIL: '" << r.label
                << "' produced a different result fingerprint than '" << base.label << "'\n";
      return 1;
    }
  }

  exp::Table t({"configuration", "wall s", "us/quantum"});
  for (const RunResult& r : results) {
    t.add_row(r.label, {r.wall_s, r.us_per_quantum}, 2);
  }
  t.print(std::cout);

  const double balance_speedup = results[0].wall_s / results[1].wall_s;
  const double fastpath_speedup = results[2].wall_s / results[3].wall_s;
  std::cout << "\nwork-stealing vs static at shards=4: " << balance_speedup << "x\n"
            << "idle fast path at shards=1:          " << fastpath_speedup << "x\n";
  if (std::thread::hardware_concurrency() < 2) {
    std::cout << "\nnote: only 1 hardware thread available — the static-vs-work-stealing\n"
                 "comparison measures overhead, not balance; the fast-path number stands.\n";
  }
  std::cout << "\nfingerprint: " << base.completed << "/" << kJobs << " jobs completed, JCT sum "
            << base.jct_sum << " s, efficiency " << base.efficiency << ", final sim time "
            << base.final_time_s << " s (identical across all configurations)\n";

  std::ofstream json("BENCH_balance.json");
  json << "{\n"
       << "  \"topology\": {\"hosts\": " << kHosts << ", \"hot_hosts\": " << kHotHosts
       << ", \"workers\": " << 10 * kHotHosts << ", \"jobs\": " << kJobs << "},\n"
       << "  \"hw_context\": " << bench::hw_context_json() << ",\n"
       << "  \"runs\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const RunResult& r = results[i];
    json << "    {\"configuration\": \"" << r.label << "\", \"wall_s\": " << r.wall_s
         << ", \"us_per_quantum\": " << r.us_per_quantum << "}"
         << (i + 1 < results.size() ? ",\n" : "\n");
  }
  json << "  ],\n"
       << "  \"work_stealing_speedup_over_static\": " << balance_speedup << ",\n"
       << "  \"idle_fastpath_speedup\": " << fastpath_speedup << ",\n"
       << "  \"fingerprint_identical\": true,\n"
       << "  \"jct_sum_s\": " << base.jct_sum << ",\n"
       << "  \"utilization_efficiency\": " << base.efficiency << "\n"
       << "}\n";
  std::cout << "\nwrote BENCH_balance.json\n";
  return 0;
}
