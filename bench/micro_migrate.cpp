// Placement-discipline and migration-cost microbenchmark: the same job
// sequence under spread vs packed placement, each with instantaneous and
// with live (timed pre-copy + stop-and-copy) migration, escalation enabled.
// Packed placement manufactures the §IV-D high-priority collision, so the
// escalation actually migrates VMs; the live model then charges the real
// price — page-stream disk traffic on the destination and a paused VM —
// which shows up in the job completion times.
//
// Everything printed to STDOUT is simulation output and therefore
// deterministic: scripts/check.sh runs this binary under PERFCLOUD_SHARDS=1
// and =4 (the reported runs leave ClusterParams::shards = 0, inheriting the
// env) and diffs the two stdouts byte for byte. Wall-clock timings go only
// to BENCH_migrate.json. An internal gate additionally re-runs the
// packed+live configuration at explicit shards 1 and 4 and hard-fails on
// any fingerprint mismatch, so the bench polices its own determinism even
// when run by hand.
#include <chrono>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "exp/cluster.hpp"
#include "exp/report.hpp"
#include "hw_context.hpp"
#include "workloads/benchmarks.hpp"

using namespace perfcloud;

namespace {

constexpr std::uint64_t kSeed = 17;
constexpr int kHosts = 4;
constexpr int kWorkers = 8;

double now_seconds() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct RunResult {
  std::string label;
  double wall_s = 0.0;
  // Simulation fingerprint: identical across shard counts per configuration.
  double final_time_s = 0.0;
  double jct_sum = 0.0;
  int completed = 0;
  long migrations_started = 0;
  long migrations_completed = 0;

  [[nodiscard]] bool same_results(const RunResult& o) const {
    return final_time_s == o.final_time_s && jct_sum == o.jct_sum && completed == o.completed &&
           migrations_started == o.migrations_started &&
           migrations_completed == o.migrations_completed;
  }
};

RunResult run_once(const std::string& label, exp::Placement placement, bool live,
                   unsigned shards) {
  exp::ClusterParams p;
  p.hosts = kHosts;
  p.workers = kWorkers;
  p.seed = kSeed;
  p.shards = shards;  // 0 = inherit PERFCLOUD_SHARDS (the reported runs)
  p.placement = placement;
  if (live) p.migration = {.bandwidth_bps = 1.0e9, .downtime_s = 0.25};

  const double t0 = now_seconds();
  exp::Cluster c = exp::make_cluster(p);
  // The rival high-priority application lands on host-0 — under packed
  // placement that is where ALL the hadoop workers sit, so the first
  // control interval escalates and the cloud manager migrates the rival
  // out; under spread only a quarter of them do, with spare hosts close by.
  // The rivals run a disk-heavy guest and carry 32 GiB each, so the live
  // model's ~34 s pre-copy keeps them contending on host-0 long after the
  // instantaneous handoff would have removed them.
  virt::VmConfig rival;
  rival.priority = virt::Priority::kHigh;
  rival.app_id = "rival";
  rival.vcpus = 2;
  rival.memory = 32.0 * 1024 * 1024 * 1024;
  for (int i = 0; i < 2; ++i) {
    virt::Vm& vm = c.cloud->boot_vm("host-0", rival);
    vm.attach(std::make_unique<wl::FioRandomRead>(
        wl::FioRandomRead::Params{.duration_s = 400.0}));
  }
  exp::add_fio(c, "host-0",
               wl::FioRandomRead::Params{.duration_s = 300.0, .start_s = 30.0});

  core::PerfCloudConfig cfg;
  cfg.escalate_app_collisions = true;
  exp::enable_perfcloud(c, cfg);

  const std::vector<std::pair<std::string, double>> submissions = {
      {"terasort", 0.0}, {"wordcount", 90.0}, {"kmeans", 180.0}};
  std::vector<wl::JobId> ids;
  for (const auto& [name, at] : submissions) {
    const wl::JobSpec spec = wl::make_benchmark(name, 8);
    c.engine->at(sim::SimTime(at),
                 [&c, &ids, spec](sim::SimTime) { ids.push_back(c.framework->submit(spec)); });
  }
  c.engine->run_while(
      [&] { return ids.size() < submissions.size() || !c.framework->all_done(); },
      sim::SimTime(8000.0));

  RunResult r;
  r.label = label;
  r.wall_s = now_seconds() - t0;
  r.final_time_s = c.engine->now().seconds();
  r.migrations_started = c.cloud->migrations_started();
  r.migrations_completed = c.cloud->migrations_completed();
  for (const wl::JobId id : ids) {
    const wl::Job* job = c.framework->find_job(id);
    if (job != nullptr && job->completed()) {
      r.jct_sum += job->jct();
      ++r.completed;
    }
  }
  return r;
}

}  // namespace

int main() {
  std::cout << "micro_migrate: " << kWorkers << " workers on " << kHosts
            << " hosts, rival high-priority app + fio on host-0, escalation on\n\n";

  std::vector<RunResult> results;
  results.push_back(run_once("spread instantaneous", exp::Placement::kSpread, false, 0));
  results.push_back(run_once("spread live-migration", exp::Placement::kSpread, true, 0));
  results.push_back(run_once("packed instantaneous", exp::Placement::kPacked, false, 0));
  results.push_back(run_once("packed live-migration", exp::Placement::kPacked, true, 0));

  // Internal determinism gate: the hardest configuration (packed placement,
  // live migrations in flight) must be byte-identical at shards 1 and 4.
  const RunResult s1 = run_once("gate shards=1", exp::Placement::kPacked, true, 1);
  const RunResult s4 = run_once("gate shards=4", exp::Placement::kPacked, true, 4);
  if (!s1.same_results(s4)) {
    std::cerr << "FAIL: packed live-migration run differs between shards=1 and shards=4\n";
    return 1;
  }
  if (!s1.same_results(results[3])) {
    std::cerr << "FAIL: env-sharded packed live-migration run differs from explicit shards\n";
    return 1;
  }

  exp::Table t({"configuration", "jobs done", "JCT sum s", "migr started", "migr done",
                "final sim s"});
  for (const RunResult& r : results) {
    t.add_row(r.label,
              {static_cast<double>(r.completed), r.jct_sum,
               static_cast<double>(r.migrations_started),
               static_cast<double>(r.migrations_completed), r.final_time_s},
              2);
  }
  t.print(std::cout);

  const double packed_cost = results[3].jct_sum - results[2].jct_sum;
  std::cout << "\nescalation under packed placement moved "
            << results[2].migrations_completed << " VMs; the live model charges "
            << packed_cost << " s of extra JCT over instantaneous handoffs\n"
            << "shard determinism gate: pass (shards 1 == 4, env == explicit)\n";

  std::ofstream json("BENCH_migrate.json");
  json << "{\n"
       << "  \"topology\": {\"hosts\": " << kHosts << ", \"workers\": " << kWorkers
       << ", \"rival_vms\": 2},\n"
       << "  \"hw_context\": " << bench::hw_context_json() << ",\n"
       << "  \"runs\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const RunResult& r = results[i];
    json << "    {\"configuration\": \"" << r.label << "\", \"wall_s\": " << r.wall_s
         << ", \"jct_sum_s\": " << r.jct_sum << ", \"jobs_completed\": " << r.completed
         << ", \"migrations_completed\": " << r.migrations_completed << "}"
         << (i + 1 < results.size() ? ",\n" : "\n");
  }
  json << "  ],\n"
       << "  \"packed_live_minus_instant_jct_s\": " << packed_cost << ",\n"
       << "  \"shard_determinism_identical\": true\n"
       << "}\n";
  std::cout << "\nwrote BENCH_migrate.json\n";
  return 0;
}
