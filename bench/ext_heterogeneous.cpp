// §IV-D extension — heterogeneous clusters and PerfCloud ⊕ LATE.
//
// The paper's future-work discussion: PerfCloud's decentralized design
// cannot fix hardware heterogeneity ("VMs running on slower machines may
// still cause some tasks to straggle. In such cases, application-level
// approaches such as speculative execution can complement PerfCloud").
//
// This bench builds a 6-host cluster where two hosts run at 0.55x clock,
// adds fio/STREAM antagonists, and measures mean JCT of a job batch under:
// nothing, LATE alone, PerfCloud alone, and PerfCloud + LATE. Expected
// shape: PerfCloud fixes the interference share, LATE fixes the
// heterogeneity share, and the combination beats both.
#include <iostream>
#include <memory>

#include "baselines/late.hpp"
#include "common.hpp"
#include "exp/report.hpp"

using namespace perfcloud;

namespace {

double run(bool late, bool perfcloud, std::uint64_t seed) {
  exp::ClusterParams p;
  p.hosts = 6;
  p.workers = 24;
  p.seed = seed;
  // One slow host: stragglers are a minority, which is the regime LATE's
  // 25th-percentile SlowTaskThreshold is designed for.
  p.host_speed_factors = {1.0, 1.0, 1.0, 1.0, 1.0, 0.45};
  exp::Cluster c = exp::make_cluster(p);

  exp::add_fio(c, "host-0", wl::FioRandomRead::Params{.start_s = 10.0});
  exp::add_stream(c, "host-3", wl::StreamBenchmark::Params{.threads = 16, .start_s = 10.0});

  if (late) {
    // Short tasks need early, eager speculation to beat a 0.45x straggler.
    c.framework->set_speculator(std::make_unique<base::LateSpeculator>(
        base::LateSpeculator::Params{.speculative_cap = 0.2,
                                     .slow_task_percentile = 0.35,
                                     .min_runtime_s = 4.0},
        48));
  }
  if (perfcloud) exp::enable_perfcloud(c, core::PerfCloudConfig{});

  double total = 0.0;
  // Jobs large enough that every wave lands tasks on the slow hosts too.
  const std::vector<wl::JobSpec> batch = {
      wl::make_wordcount(24, 12),
      wl::make_spark_logreg(24, 8),
      wl::make_terasort(24, 24),
  };
  for (const wl::JobSpec& spec : batch) total += exp::run_job(c, spec);
  return total / static_cast<double>(batch.size());
}

}  // namespace

int main() {
  constexpr std::uint64_t kSeed = 71;
  exp::print_banner(std::cout, "Extension (§IV-D)",
                    "heterogeneous 6-host cluster (2 hosts at 0.55x clock) + antagonists");

  const double none = run(false, false, kSeed);
  const double late = run(true, false, kSeed);
  const double pc = run(false, true, kSeed);
  const double both = run(true, true, kSeed);

  exp::Table t({"scheme", "mean JCT (s)", "vs nothing %"});
  const auto row = [&](const char* name, double jct) {
    t.add_row({name, exp::fmt(jct, 1), exp::fmt((1.0 - jct / none) * 100.0, 1)});
  };
  row("nothing", none);
  row("LATE only", late);
  row("PerfCloud only", pc);
  row("PerfCloud + LATE", both);
  t.print(std::cout);
  std::cout << "\nExpected shape: LATE addresses slow-host stragglers, PerfCloud\n"
               "addresses interference; the combination is the best of the four —\n"
               "the complementarity the paper's future-work section predicts.\n";
  return 0;
}
