// Sharded-execution microbenchmark: wall-clock scaling of ONE fig11-sized
// run (150 workers / 15 hosts, antagonist churn, PerfCloud control, a
// MapReduce job mix) as the engine's host-shard count grows 1 -> 2 -> 4 -> 8.
//
// This is the complement of PERFCLOUD_THREADS: the parallel runner speeds up
// *many independent* runs, the shard pool speeds up a *single large* run by
// executing the per-quantum host-local pipelines (hypervisor ticks, monitor
// sampling, node-manager detect/identify/control) concurrently and fencing
// cross-host logic behind a barrier.
//
// Every run must produce an identical result fingerprint — sharding that
// changed an output would be a correctness bug, so the bench hard-fails on
// any mismatch. Results go to stdout and BENCH_shard.json.
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <thread>
#include <vector>

#include "common.hpp"
#include "exp/report.hpp"
#include "hw_context.hpp"
#include "workloads/mix.hpp"

using namespace perfcloud;

namespace {

constexpr std::uint64_t kSeed = 101;
constexpr int kJobs = 40;

double now_seconds() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Antagonist churn in the fig11 style: fio and STREAM VMs coming and going
/// on hosts drawn from a dedicated placement stream.
void add_antagonists(exp::Cluster& c, std::uint64_t seed) {
  sim::Rng rng(seed);
  sim::Rng placement_rng = rng.split(0x9fac);
  for (int i = 0; i < 40; ++i) {
    const auto host_idx = static_cast<std::size_t>(
        placement_rng.uniform_int(0, static_cast<std::int64_t>(c.hosts.size()) - 1));
    const std::string& host = c.hosts[host_idx];
    const double start = rng.uniform(0.0, 900.0);
    const double duration = rng.uniform(240.0, 600.0);
    if (i % 2 == 0) {
      exp::add_fio(c, host,
                   wl::FioRandomRead::Params{.duration_s = duration, .start_s = start});
    } else {
      exp::add_stream(c, host,
                      wl::StreamBenchmark::Params{.threads = 16, .duration_s = duration,
                                                  .start_s = start});
    }
  }
}

struct RunResult {
  double wall_s = 0.0;
  // Result fingerprint — must be identical for every shard count.
  double jct_sum = 0.0;
  int completed = 0;
  double efficiency = 0.0;
  double final_time_s = 0.0;
};

RunResult run_once(unsigned shards) {
  exp::ClusterParams p;
  p.hosts = 15;
  p.workers = 150;
  p.seed = kSeed;
  p.tick_dt = 0.1;
  p.shards = shards;

  const double t0 = now_seconds();
  exp::Cluster c = exp::make_cluster(p);
  add_antagonists(c, kSeed + 33);

  core::PerfCloudConfig cfg;
  cfg.monitor_series_capacity = cfg.correlation_window;
  exp::enable_perfcloud(c, cfg);

  sim::Rng mix_rng(kSeed);
  wl::MixParams mp;
  mp.num_jobs = kJobs;
  mp.mean_interarrival_s = 30.0;
  const std::vector<wl::MixEntry> mix = wl::make_mapreduce_mix(mp, mix_rng);
  std::vector<wl::JobId> ids;
  ids.reserve(mix.size());
  for (const wl::MixEntry& e : mix) {
    c.engine->at(sim::SimTime(e.submit_time_s),
                 [&c, &ids, &e](sim::SimTime) { ids.push_back(c.framework->submit(e.spec)); });
  }
  c.engine->run_while(
      [&] { return ids.size() < mix.size() || !c.framework->all_done(); },
      sim::SimTime(20000.0));

  RunResult r;
  r.wall_s = now_seconds() - t0;
  r.efficiency = c.framework->utilization_efficiency();
  r.final_time_s = c.engine->now().seconds();
  for (const wl::JobId id : ids) {
    const wl::Job* job = c.framework->find_job(id);
    if (job != nullptr && job->completed()) {
      r.jct_sum += job->jct();
      ++r.completed;
    }
  }
  return r;
}

}  // namespace

int main() {
  const std::vector<unsigned> shard_counts = {1, 2, 4, 8};
  std::cout << "micro_shard: one fig11-sized run (150 workers / 15 hosts, " << kJobs
            << " jobs,\nantagonist churn, PerfCloud on) at increasing host-shard counts\n"
            << "hardware threads available: " << std::thread::hardware_concurrency() << "\n\n";

  std::vector<RunResult> results;
  for (const unsigned s : shard_counts) {
    std::cout << "  shards=" << s << " ..." << std::flush;
    results.push_back(run_once(s));
    std::cout << " " << results.back().wall_s << " s wall\n";
  }
  std::cout << "\n";

  // Determinism gate: every shard count must reproduce the shards=1 results
  // exactly. A tolerance would hide real bugs — sharding moves work across
  // threads but every FP operation sequence per host is unchanged.
  const RunResult& base = results.front();
  for (std::size_t i = 1; i < results.size(); ++i) {
    const RunResult& r = results[i];
    if (r.jct_sum != base.jct_sum || r.completed != base.completed ||
        r.efficiency != base.efficiency || r.final_time_s != base.final_time_s) {
      std::cerr << "FAIL: shards=" << shard_counts[i]
                << " produced a different result fingerprint than shards=1\n";
      return 1;
    }
  }

  exp::Table t({"shards", "wall s", "speedup vs 1"});
  for (std::size_t i = 0; i < results.size(); ++i) {
    t.add_row(std::to_string(shard_counts[i]),
              {results[i].wall_s, base.wall_s / results[i].wall_s}, 2);
  }
  t.print(std::cout);
  if (std::thread::hardware_concurrency() < shard_counts.back()) {
    std::cout << "\nnote: only " << std::thread::hardware_concurrency()
              << " hardware thread(s) available — shard counts beyond that measure\n"
                 "pure sharding overhead, not scaling; run on >= "
              << shard_counts.back() << " cores to see the speedup curve.\n";
  }
  std::cout << "\nfingerprint: " << base.completed << "/" << kJobs
            << " jobs completed, JCT sum " << base.jct_sum << " s, efficiency "
            << base.efficiency << ", final sim time " << base.final_time_s
            << " s (identical across all shard counts)\n";

  std::ofstream json("BENCH_shard.json");
  json << "{\n"
       << "  \"topology\": {\"hosts\": 15, \"workers\": 150, \"jobs\": " << kJobs << "},\n"
       << "  \"hw_context\": " << bench::hw_context_json() << ",\n"
       << "  \"runs\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    json << "    {\"shards\": " << shard_counts[i] << ", \"wall_s\": " << results[i].wall_s
         << ", \"speedup\": " << base.wall_s / results[i].wall_s << "}"
         << (i + 1 < results.size() ? ",\n" : "\n");
  }
  json << "  ],\n"
       << "  \"fingerprint_identical\": true,\n"
       << "  \"jct_sum_s\": " << base.jct_sum << ",\n"
       << "  \"utilization_efficiency\": " << base.efficiency << "\n"
       << "}\n";
  std::cout << "\nwrote BENCH_shard.json\n";
  return 0;
}
