// Figure 7 — The CUBIC cap-recovery function and its three regions.
//
// A controller with the paper's parameters (beta = 0.8, gamma = 0.005) is
// driven through one multiplicative decrease and then left uncontended; the
// printed trajectory shows the initial-growth region (steep), the plateau
// around C_max, and the probing region (steep again).
#include <iostream>

#include "core/cubic.hpp"
#include "exp/report.hpp"

using namespace perfcloud;

int main() {
  core::PerfCloudConfig cfg;
  cfg.cap_lift_fraction = 2.0;  // keep probing visible a bit longer
  core::CubicController ctrl(cfg, /*baseline=*/1.0);

  exp::print_banner(std::cout, "Fig 7",
                    "CUBIC cap trajectory after one decrease (beta=0.8, gamma=0.005)");
  exp::Table t({"interval (5 s each)", "cap (x baseline)", "region"});
  t.add_row({"0 (decrease)", exp::fmt(ctrl.step(true), 3), "multiplicative decrease"});
  double prev = ctrl.cap();
  double prev_step = 0.0;
  for (int i = 1; i <= 14 && !ctrl.lifted(); ++i) {
    const double cap = ctrl.step(false);
    const double step = cap - prev;
    const char* region = "plateau";
    if (cap < 0.9 * ctrl.cap_max()) {
      region = "initial growth";
    } else if (cap > 1.05 * ctrl.cap_max() && step > prev_step) {
      region = "probing";
    }
    t.add_row({std::to_string(i), exp::fmt(cap, 3), region});
    prev = cap;
    prev_step = step;
  }
  t.print(std::cout);
  std::cout << "\nK = cbrt(beta*C_max/gamma) = ~5.4 intervals: the curve regains the\n"
               "pre-decrease cap after ~27 s and probes aggressively afterwards.\n";
  return 0;
}
