// Figure 2 — Performance degradation due to a colocated memory-intensive
// workload (STREAM).
//
// All six benchmarks run on the motivation cluster, alone and next to a
// 16-thread STREAM VM. Expected shape: every benchmark degrades, and the
// Spark benchmarks (in-memory iteration) degrade more than MapReduce.
#include <iostream>

#include "common.hpp"
#include "exp/report.hpp"

using namespace perfcloud;

int main() {
  constexpr std::uint64_t kSeed = 7;

  exp::print_banner(std::cout, "Fig 2",
                    "degradation due to colocated memory-intensive STREAM (16 threads)");
  exp::Table t({"benchmark", "alone JCT (s)", "with STREAM (s)", "norm JCT", "degradation %"});

  double mr_total = 0.0;
  double spark_total = 0.0;
  for (const std::string& name : wl::benchmark_names()) {
    const wl::JobSpec job = bench::motivation_job(name);
    const double base = bench::baseline_jct(job, kSeed);

    exp::Cluster c = bench::motivation_cluster(kSeed);
    exp::add_stream(c, "host-0", wl::StreamBenchmark::Params{.threads = 16});
    const double jct = exp::run_job(c, job);

    const double norm = jct / base;
    t.add_row(name, {base, jct, norm, (norm - 1.0) * 100.0}, 2);
    if (job.type == wl::JobType::kMapReduce) {
      mr_total += norm;
    } else {
      spark_total += norm;
    }
  }
  t.print(std::cout);
  std::cout << "\nmean normalized JCT  MapReduce: " << exp::fmt(mr_total / 3.0, 2)
            << "   Spark: " << exp::fmt(spark_total / 3.0, 2) << "\n";
  std::cout << "Paper shape: both suffer; Spark suffers more (it reuses in-memory\n"
               "intermediate data, so it is more sensitive to LLC/bandwidth contention).\n";
  return 0;
}
