// Migration-policy microbenchmark: the same interference scenario with the
// policy off (throttling only), with first-fit destination choice, and with
// the default complementary (VUPIC-style) scoring. Packed placement plus a
// deliberately toothless throttle floor (min_cap_fraction = 0.9) means
// local control cannot defend the victim, so the runs isolate what the
// policy layer itself buys: the off run keeps both antagonists on the
// victim's host forever, the policy runs escalate and move them — and the
// two scorers differ in WHERE, which the victim app's job completion times
// then price.
//
// Everything printed to STDOUT is simulation output and therefore
// deterministic: scripts/check.sh runs this binary under PERFCLOUD_SHARDS=1
// and =4 (the reported runs leave ClusterParams::shards = 0, inheriting the
// env) and diffs the two stdouts byte for byte. Wall-clock timings go only
// to BENCH_policy.json. An internal gate additionally re-runs the scored
// configuration at explicit shards 1 and 4 and hard-fails on any
// fingerprint mismatch. One caveat for absolute wall numbers: CI runs this
// on a 1-core box, where sharding only adds coordination cost.
#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "exp/cluster.hpp"
#include "exp/report.hpp"
#include "hw_context.hpp"
#include "workloads/antagonists.hpp"
#include "workloads/benchmarks.hpp"

using namespace perfcloud;

namespace {

constexpr std::uint64_t kSeed = 23;
constexpr int kHosts = 4;
constexpr int kWorkers = 8;

double now_seconds() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct RunResult {
  std::string label;
  double wall_s = 0.0;
  // Simulation fingerprint: identical across shard counts per configuration.
  double final_time_s = 0.0;
  double jct_sum = 0.0;
  int completed = 0;
  long migrations_completed = 0;
  long policy_triggered = 0;
  long policy_migrated = 0;
  long policy_suppressed = 0;
  std::string antagonist_hosts;  // final placement of the two fio VMs

  [[nodiscard]] bool same_results(const RunResult& o) const {
    return final_time_s == o.final_time_s && jct_sum == o.jct_sum && completed == o.completed &&
           migrations_completed == o.migrations_completed &&
           policy_triggered == o.policy_triggered && policy_migrated == o.policy_migrated &&
           policy_suppressed == o.policy_suppressed && antagonist_hosts == o.antagonist_hosts;
  }
};

enum class Mode { kOff, kFirstFit, kScored };

RunResult run_once(const std::string& label, Mode mode, unsigned shards) {
  exp::ClusterParams p;
  p.hosts = kHosts;
  p.workers = kWorkers;
  p.seed = kSeed;
  p.shards = shards;  // 0 = inherit PERFCLOUD_SHARDS (the reported runs)
  p.placement = exp::Placement::kPacked;  // all workers (the victim) on host-0
  p.migration = {.bandwidth_bps = 1.0e9, .downtime_s = 0.25};
  if (mode != Mode::kOff) {
    policy::PolicyParams pol;
    pol.floor_windows = 2;
    pol.dwell_min_s = 0.0;
    pol.host_cooldown_s = 0.0;
    pol.max_in_flight = 4;
    pol.scoring = mode == Mode::kFirstFit ? policy::Scoring::kFirstFit
                                          : policy::Scoring::kComplementary;
    p.policy = pol;
  }

  const double t0 = now_seconds();
  exp::Cluster c = exp::make_cluster(p);
  // Two duty-cycled disk antagonists on the victim's host (different
  // periods/phases so both stay individually correlatable), plus background
  // load elsewhere that the scorers must price: host-1 is disk-busy, host-2
  // CPU-busy, host-3 idle. First-fit dumps both antagonists on the already
  // disk-saturated host-1; complementary scoring steers them toward the
  // CPU-busy and idle hosts.
  std::vector<int> antagonists;
  antagonists.push_back(exp::add_fio(
      c, "host-0", wl::FioRandomRead::Params{.duration_s = 10000.0, .start_s = 30.0}));
  antagonists.push_back(exp::add_fio(
      c, "host-0", wl::FioRandomRead::Params{.duration_s = 10000.0, .start_s = 45.0,
                                             .duty_period_s = 17.0}));
  exp::add_dd_writer(c, "host-1",
                     wl::DdSequentialWriter::Params{.total_bytes = 1.0e12,
                                                    .target_rate = 500.0e6});
  exp::add_sysbench_cpu(c, "host-2",
                        wl::SysbenchCpu::Params{.threads = 8, .total_instructions = 1.0e15});

  core::PerfCloudConfig cfg;
  cfg.min_cap_fraction = 0.9;  // toothless throttle: only migration can help
  exp::enable_perfcloud(c, cfg);

  const std::vector<std::pair<std::string, double>> submissions = {
      {"terasort", 0.0}, {"wordcount", 150.0}, {"kmeans", 300.0}};
  std::vector<wl::JobId> ids;
  for (const auto& [name, at] : submissions) {
    const wl::JobSpec spec = wl::make_benchmark(name, 8);
    c.engine->at(sim::SimTime(at),
                 [&c, &ids, spec](sim::SimTime) { ids.push_back(c.framework->submit(spec)); });
  }
  c.engine->run_while(
      [&] { return ids.size() < submissions.size() || !c.framework->all_done(); },
      sim::SimTime(8000.0));

  RunResult r;
  r.label = label;
  r.wall_s = now_seconds() - t0;
  r.final_time_s = c.engine->now().seconds();
  r.migrations_completed = c.cloud->migrations_completed();
  if (c.policy != nullptr) {
    r.policy_triggered = c.policy->triggered();
    r.policy_migrated = c.policy->migrated();
    r.policy_suppressed = c.policy->suppressed_dwell() + c.policy->suppressed_cooldown() +
                          c.policy->suppressed_budget() + c.policy->suppressed_blacklist();
  }
  for (const wl::JobId id : ids) {
    const wl::Job* job = c.framework->find_job(id);
    if (job != nullptr && job->completed()) {
      r.jct_sum += job->jct();
      ++r.completed;
    }
  }
  for (const int vm : antagonists) {
    for (const cloud::VmRecord& rec : c.cloud->all_vms()) {
      if (rec.id != vm) continue;
      if (!r.antagonist_hosts.empty()) r.antagonist_hosts += " ";
      r.antagonist_hosts += rec.host;
    }
  }
  return r;
}

}  // namespace

int main() {
  std::cout << "micro_policy: " << kWorkers << " workers packed on host-0 of " << kHosts
            << " hosts, 2 fio antagonists, toothless throttle (floor 0.9)\n\n";

  std::vector<RunResult> results;
  results.push_back(run_once("policy off (throttle only)", Mode::kOff, 0));
  results.push_back(run_once("policy first-fit", Mode::kFirstFit, 0));
  results.push_back(run_once("policy complementary", Mode::kScored, 0));

  // Internal determinism gate: the scored configuration (cluster-wide folds
  // plus live migrations in flight) must be byte-identical at shards 1 and 4.
  const RunResult s1 = run_once("gate shards=1", Mode::kScored, 1);
  const RunResult s4 = run_once("gate shards=4", Mode::kScored, 4);
  if (!s1.same_results(s4)) {
    std::cerr << "FAIL: scored policy run differs between shards=1 and shards=4\n";
    return 1;
  }
  if (!s1.same_results(results[2])) {
    std::cerr << "FAIL: env-sharded scored policy run differs from explicit shards\n";
    return 1;
  }

  exp::Table t({"configuration", "jobs done", "JCT sum s", "migr done", "pol trig",
                "pol moved", "pol suppr", "final sim s"});
  for (const RunResult& r : results) {
    t.add_row(r.label,
              {static_cast<double>(r.completed), r.jct_sum,
               static_cast<double>(r.migrations_completed),
               static_cast<double>(r.policy_triggered),
               static_cast<double>(r.policy_migrated),
               static_cast<double>(r.policy_suppressed), r.final_time_s},
              2);
  }
  t.print(std::cout);

  // The victim's JCT only prices getting the antagonists OFF host-0; where
  // they land is the scorers' difference, so print the final placements.
  std::cout << "\n";
  for (const RunResult& r : results) {
    std::cout << "antagonists end on: [" << r.antagonist_hosts << "]  (" << r.label << ")\n";
  }
  const double policy_gain = results[0].jct_sum - results[2].jct_sum;
  std::cout << "\nescalating past the exhausted throttle saves " << policy_gain
            << " s of summed JCT vs throttling alone; first-fit dumps the antagonists on "
               "the disk-saturated host-1, complementary scoring steers them to the "
               "CPU-busy/idle hosts\n"
            << "shard determinism gate: pass (shards 1 == 4, env == explicit)\n";

  std::ofstream json("BENCH_policy.json");
  json << "{\n"
       << "  \"topology\": {\"hosts\": " << kHosts << ", \"workers\": " << kWorkers
       << ", \"antagonists\": 4},\n"
       << "  \"hw_context\": " << bench::hw_context_json() << ",\n"
       << "  \"runs\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const RunResult& r = results[i];
    json << "    {\"configuration\": \"" << r.label << "\", \"wall_s\": " << r.wall_s
         << ", \"jct_sum_s\": " << r.jct_sum << ", \"jobs_completed\": " << r.completed
         << ", \"migrations_completed\": " << r.migrations_completed
         << ", \"policy_triggered\": " << r.policy_triggered
         << ", \"policy_migrated\": " << r.policy_migrated
         << ", \"antagonist_hosts\": \"" << r.antagonist_hosts << "\"}"
         << (i + 1 < results.size() ? ",\n" : "\n");
  }
  json << "  ],\n"
       << "  \"policy_vs_throttle_only_jct_s\": " << policy_gain << ",\n"
       << "  \"shard_determinism_identical\": true\n"
       << "}\n";
  std::cout << "\nwrote BENCH_policy.json\n";
  return 0;
}
